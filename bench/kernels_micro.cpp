// google-benchmark microbenches for the compute kernels underlying the
// pipeline: GEMM variants, softmax, RMSNorm, Cholesky/GPTQ factor, RTN vs
// GPTQ solver cost, bit-packing and the fused dequantize-matmul.
#include <benchmark/benchmark.h>

#include "model/forward.hpp"
#include "quant/gptq.hpp"
#include "quant/hessian.hpp"
#include "tensor/cholesky.hpp"
#include "tensor/ops.hpp"

namespace aptq {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  Rng rng(seed);
  return Matrix::randn(r, c, rng);
}

void BM_GemmNN(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(n, n, 1);
  const Matrix b = random_matrix(n, n, 2);
  Matrix c(n, n);
  for (auto _ : state) {
    gemm(a, Trans::no, b, Trans::no, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmNN)->Arg(48)->Arg(128)->Arg(256);

void BM_GemmNT(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(n, n, 3);
  const Matrix b = random_matrix(n, n, 4);
  Matrix c(n, n);
  for (auto _ : state) {
    gemm(a, Trans::no, b, Trans::yes, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmNT)->Arg(48)->Arg(128)->Arg(256);

void BM_SoftmaxCausal(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix src = random_matrix(n, n, 5);
  for (auto _ : state) {
    Matrix m = src;
    softmax_rows(m, 0);
    benchmark::DoNotOptimize(m.data());
  }
}
BENCHMARK(BM_SoftmaxCausal)->Arg(48)->Arg(128);

void BM_RmsNorm(benchmark::State& state) {
  const Matrix in = random_matrix(128, 64, 6);
  const std::vector<float> gain(64, 1.0f);
  Matrix out;
  std::vector<float> inv_rms;
  for (auto _ : state) {
    rmsnorm_forward(in, gain, 1e-5f, out, inv_rms);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_RmsNorm);

void BM_CholeskyGptqFactor(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix x = random_matrix(4 * n, n, 7);
  HessianAccumulator acc(n);
  acc.add_matrix(x);
  const Matrix h = acc.finalized_damped(0.01);
  for (auto _ : state) {
    const Matrix u = gptq_inverse_factor(h);
    benchmark::DoNotOptimize(u.data());
  }
}
BENCHMARK(BM_CholeskyGptqFactor)->Arg(48)->Arg(128)->Arg(192);

void BM_HessianAccumulate(benchmark::State& state) {
  const Matrix x = random_matrix(48, 64, 8);
  for (auto _ : state) {
    HessianAccumulator acc(64);
    acc.add_matrix(x);
    benchmark::DoNotOptimize(acc.tokens_seen());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 48);
}
BENCHMARK(BM_HessianAccumulate);

void BM_RtnQuantize(benchmark::State& state) {
  const Matrix w = random_matrix(64, 192, 9);
  QuantSpec spec;
  spec.bits = static_cast<int>(state.range(0));
  spec.group_size = 16;
  for (auto _ : state) {
    const Matrix q = rtn_quantize(w, spec);
    benchmark::DoNotOptimize(q.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.size()));
}
BENCHMARK(BM_RtnQuantize)->Arg(2)->Arg(4);

void BM_GptqSolve(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const Matrix w = random_matrix(d, d, 10);
  const Matrix x = random_matrix(4 * d, d, 11);
  HessianAccumulator acc(d);
  acc.add_matrix(x);
  const Matrix h = acc.finalized();
  GptqConfig cfg;
  cfg.spec.bits = 4;
  cfg.spec.group_size = 16;
  for (auto _ : state) {
    const GptqResult res = gptq_quantize(w, h, cfg);
    benchmark::DoNotOptimize(res.weight.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.size()));
}
BENCHMARK(BM_GptqSolve)->Arg(48)->Arg(128);

void BM_PackWeights(benchmark::State& state) {
  const Matrix w = random_matrix(128, 128, 12);
  QuantSpec spec;
  spec.bits = static_cast<int>(state.range(0));
  spec.group_size = 16;
  for (auto _ : state) {
    const QuantizedLinear packed(w, spec);
    benchmark::DoNotOptimize(packed.storage_bytes());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.size()));
}
BENCHMARK(BM_PackWeights)->Arg(2)->Arg(4);

void BM_DequantizeWeights(benchmark::State& state) {
  const Matrix w = random_matrix(128, 128, 13);
  QuantSpec spec;
  spec.bits = static_cast<int>(state.range(0));
  spec.group_size = 16;
  const QuantizedLinear packed(w, spec);
  for (auto _ : state) {
    const Matrix dq = packed.dequantize();
    benchmark::DoNotOptimize(dq.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.size()));
}
BENCHMARK(BM_DequantizeWeights)->Arg(2)->Arg(4);

void BM_FusedDequantMatmul(benchmark::State& state) {
  const Matrix w = random_matrix(128, 128, 14);
  const Matrix x = random_matrix(48, 128, 15);
  QuantSpec spec;
  spec.bits = 4;
  spec.group_size = 16;
  const QuantizedLinear packed(w, spec);
  for (auto _ : state) {
    const Matrix y = packed.matmul_transposed(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(2 * x.rows() * w.rows() * w.cols()));
}
BENCHMARK(BM_FusedDequantMatmul);

void BM_ModelForward(benchmark::State& state) {
  ModelConfig mc;
  mc.vocab_size = 64;
  mc.dim = 48;
  mc.n_layers = 4;
  mc.n_heads = 4;
  mc.ffn_dim = 128;
  const Model m = Model::init(mc, 16);
  Rng rng(17);
  TokenSeq tokens(48);
  for (auto& t : tokens) {
    t = static_cast<TokenId>(rng.index(64));
  }
  ForwardCache cache;
  for (auto _ : state) {
    const Matrix logits = model_forward(m, tokens, cache);
    benchmark::DoNotOptimize(logits.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 48);
}
BENCHMARK(BM_ModelForward);

}  // namespace
}  // namespace aptq

BENCHMARK_MAIN();
