// google-benchmark microbenches for the compute kernels underlying the
// pipeline: GEMM variants, softmax, RMSNorm, Cholesky/GPTQ factor, RTN vs
// GPTQ solver cost, bit-packing and the fused dequantize-matmul.
//
// Before the google-benchmark suite runs, a threads sweep times the hot
// kernels (matmul, Hessian accumulation, GPTQ solve, and the blocked
// dequant-GEMV behind packed decode) at 1/2/4 threads plus any
// `--threads N`, for both the naive reference (aptq::ref) and the
// vectorized production path, and writes seconds / GFLOP/s /
// speedup-vs-serial / speedup-vs-naive to BENCH_kernels.json. Each timing
// is min-of-5 after 2 warmup runs. Flags: `--threads N` (pool size for the
// gbench suite and an extra sweep point), `--sweep-out PATH`, `--no-sweep`,
// `--sweep-only` (skip the gbench suite), `--smoke` (reduced sizes/reps —
// the CI bench-smoke configuration is `--smoke --sweep-only`).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <limits>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "model/forward.hpp"
#include "quant/gptq.hpp"
#include "quant/hessian.hpp"
#include "quant/qformat.hpp"
#include "tensor/cholesky.hpp"
#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"
#include "util/threadpool.hpp"
#include "util/timer.hpp"

namespace aptq {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  Rng rng(seed);
  return Matrix::randn(r, c, rng);
}

void BM_GemmNN(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(n, n, 1);
  const Matrix b = random_matrix(n, n, 2);
  Matrix c(n, n);
  for (auto _ : state) {
    gemm(a, Trans::no, b, Trans::no, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmNN)->Arg(48)->Arg(128)->Arg(256);

// Same GEMM at a fixed 256³ problem across pool sizes — the quick in-suite
// view of the threading win (the standalone sweep below covers 512³).
void BM_GemmNNThreads(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  ThreadPool::set_global_threads(threads);
  const std::size_t n = 256;
  const Matrix a = random_matrix(n, n, 1);
  const Matrix b = random_matrix(n, n, 2);
  Matrix c(n, n);
  for (auto _ : state) {
    gemm(a, Trans::no, b, Trans::no, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
  ThreadPool::set_global_threads(1);
}
BENCHMARK(BM_GemmNNThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_GemmNT(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(n, n, 3);
  const Matrix b = random_matrix(n, n, 4);
  Matrix c(n, n);
  for (auto _ : state) {
    gemm(a, Trans::no, b, Trans::yes, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmNT)->Arg(48)->Arg(128)->Arg(256);

void BM_SoftmaxCausal(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix src = random_matrix(n, n, 5);
  for (auto _ : state) {
    Matrix m = src;
    softmax_rows(m, 0);
    benchmark::DoNotOptimize(m.data());
  }
}
BENCHMARK(BM_SoftmaxCausal)->Arg(48)->Arg(128);

void BM_RmsNorm(benchmark::State& state) {
  const Matrix in = random_matrix(128, 64, 6);
  const std::vector<float> gain(64, 1.0f);
  Matrix out;
  std::vector<float> inv_rms;
  for (auto _ : state) {
    rmsnorm_forward(in, gain, 1e-5f, out, inv_rms);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_RmsNorm);

void BM_CholeskyGptqFactor(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix x = random_matrix(4 * n, n, 7);
  HessianAccumulator acc(n);
  acc.add_matrix(x);
  const Matrix h = acc.finalized_damped(0.01);
  for (auto _ : state) {
    const Matrix u = gptq_inverse_factor(h);
    benchmark::DoNotOptimize(u.data());
  }
}
BENCHMARK(BM_CholeskyGptqFactor)->Arg(48)->Arg(128)->Arg(192);

void BM_HessianAccumulate(benchmark::State& state) {
  const Matrix x = random_matrix(48, 64, 8);
  for (auto _ : state) {
    HessianAccumulator acc(64);
    acc.add_matrix(x);
    benchmark::DoNotOptimize(acc.tokens_seen());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 48);
}
BENCHMARK(BM_HessianAccumulate);

void BM_RtnQuantize(benchmark::State& state) {
  const Matrix w = random_matrix(64, 192, 9);
  QuantSpec spec;
  spec.bits = static_cast<int>(state.range(0));
  spec.group_size = 16;
  for (auto _ : state) {
    const Matrix q = rtn_quantize(w, spec);
    benchmark::DoNotOptimize(q.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.size()));
}
BENCHMARK(BM_RtnQuantize)->Arg(2)->Arg(4);

void BM_GptqSolve(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const Matrix w = random_matrix(d, d, 10);
  const Matrix x = random_matrix(4 * d, d, 11);
  HessianAccumulator acc(d);
  acc.add_matrix(x);
  const Matrix h = acc.finalized();
  GptqConfig cfg;
  cfg.spec.bits = 4;
  cfg.spec.group_size = 16;
  for (auto _ : state) {
    const GptqResult res = gptq_quantize(w, h, cfg);
    benchmark::DoNotOptimize(res.weight.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.size()));
}
BENCHMARK(BM_GptqSolve)->Arg(48)->Arg(128);

void BM_PackWeights(benchmark::State& state) {
  const Matrix w = random_matrix(128, 128, 12);
  QuantSpec spec;
  spec.bits = static_cast<int>(state.range(0));
  spec.group_size = 16;
  for (auto _ : state) {
    const QuantizedLinear packed(w, spec);
    benchmark::DoNotOptimize(packed.storage_bytes());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.size()));
}
BENCHMARK(BM_PackWeights)->Arg(2)->Arg(4);

void BM_DequantizeWeights(benchmark::State& state) {
  const Matrix w = random_matrix(128, 128, 13);
  QuantSpec spec;
  spec.bits = static_cast<int>(state.range(0));
  spec.group_size = 16;
  const QuantizedLinear packed(w, spec);
  for (auto _ : state) {
    const Matrix dq = packed.dequantize();
    benchmark::DoNotOptimize(dq.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.size()));
}
BENCHMARK(BM_DequantizeWeights)->Arg(2)->Arg(4);

void BM_FusedDequantMatmul(benchmark::State& state) {
  const Matrix w = random_matrix(128, 128, 14);
  const Matrix x = random_matrix(48, 128, 15);
  QuantSpec spec;
  spec.bits = 4;
  spec.group_size = 16;
  const QuantizedLinear packed(w, spec);
  for (auto _ : state) {
    const Matrix y = packed.matmul_transposed(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(2 * x.rows() * w.rows() * w.cols()));
}
BENCHMARK(BM_FusedDequantMatmul);

void BM_ModelForward(benchmark::State& state) {
  ModelConfig mc;
  mc.vocab_size = 64;
  mc.dim = 48;
  mc.n_layers = 4;
  mc.n_heads = 4;
  mc.ffn_dim = 128;
  const Model m = Model::init(mc, 16);
  Rng rng(17);
  TokenSeq tokens(48);
  for (auto& t : tokens) {
    t = static_cast<TokenId>(rng.index(64));
  }
  ForwardCache cache;
  for (auto _ : state) {
    const Matrix logits = model_forward(m, tokens, cache);
    benchmark::DoNotOptimize(logits.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 48);
}
BENCHMARK(BM_ModelForward);

// ---- standalone naive-vs-tiled / serial-vs-parallel sweep -----------------

// Best-of-`reps` wall time of `fn` after `warmup` untimed runs (the warmups
// fault in the pages and settle the pool so min-of-N measures steady state).
double best_seconds(int warmup, int reps, const std::function<void()>& fn) {
  for (int i = 0; i < warmup; ++i) {
    fn();
  }
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < reps; ++i) {
    Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

struct SweepRow {
  std::string kernel;
  std::string impl;  // "naive" (aptq::ref) or "tiled" (production path)
  std::size_t threads = 1;
  double seconds = 0.0;
  double gflops = 0.0;
  double speedup_vs_1 = 1.0;
  double speedup_vs_naive = 0.0;  // 0 = no naive baseline for this kernel
};

// Time each hot kernel at each pool size, both as the retained naive
// reference and as the register-tiled production path. The thread counts
// sweep the pool, never the problem: every timing runs the identical
// deterministic computation, so the numbers isolate scheduling cost/win;
// the naive-vs-tiled pairs at equal thread count isolate the kernel win.
// `smoke` shrinks every problem and the rep count for the CI bench-smoke
// step: same kernels and labels, a few seconds total instead of a minute.
std::vector<SweepRow> run_threads_sweep(
    const std::vector<std::size_t>& thread_counts, bool smoke) {
  const std::size_t gemm_n = smoke ? 192 : 512;
  const std::size_t hess_t = smoke ? 256 : 768;
  const std::size_t hess_d = smoke ? 128 : 256;
  const std::size_t gptq_d = smoke ? 96 : 192;
  const std::size_t qg_d = smoke ? 256 : 768;
  const int warmup = smoke ? 1 : 2;
  const int reps = smoke ? 3 : 5;
  // matmul: the acceptance-criterion 512x512x512 problem.
  const Matrix ga = random_matrix(gemm_n, gemm_n, 21);
  const Matrix gb = random_matrix(gemm_n, gemm_n, 22);
  Matrix gc(gemm_n, gemm_n);
  // Hessian accumulation: one large calibration batch.
  const Matrix hx = random_matrix(hess_t, hess_d, 23);
  // GPTQ solve: a 192-wide layer.
  const Matrix qw = random_matrix(gptq_d, gptq_d, 24);
  HessianAccumulator qacc(gptq_d);
  qacc.add_matrix(random_matrix(4 * gptq_d, gptq_d, 25));
  const Matrix qh = qacc.finalized();
  GptqConfig qcfg;
  qcfg.spec.bits = 4;
  qcfg.spec.group_size = 16;
  // Quantized decode GEMV: one w4g16 layer in the blocked format, dotted
  // with a single activation row — the packed decode hot path. The naive
  // side is aptq::ref's per-element unpack-dequantize-accumulate loop over
  // the identical blocks; both sides repeat the GEMV so each timed run is
  // comfortably above clock resolution.
  QuantSpec qgspec;
  qgspec.bits = 4;
  qgspec.group_size = 16;
  const QuantizedLinear qglin(random_matrix(qg_d, qg_d, 26), qgspec);
  const QBlock qgblk = qglin.block_view();
  const std::vector<float> qgx = [&] {
    Rng rng(27);
    std::vector<float> v(qg_d);
    for (auto& f : v) {
      f = static_cast<float>(rng.normal());
    }
    return v;
  }();
  std::vector<float> qgy(qg_d);
  const std::size_t qg_iters = 64;

  // Effective flop counts: 2mnk for GEMM, tokens·d·(d+1) for the
  // upper-triangle SYRK (both impls do the same useful work), a nominal
  // 2·d³ for the GPTQ solve (dominated by its panel updates), and
  // iters·2·d² for the repeated dequant-GEMV.
  const auto dn = [](std::size_t n) { return static_cast<double>(n); };
  const double gemm_flops = 2.0 * dn(gemm_n) * dn(gemm_n) * dn(gemm_n);
  const double syrk_flops = dn(hess_t) * dn(hess_d) * dn(hess_d + 1);
  const double gptq_flops = 2.0 * dn(gptq_d) * dn(gptq_d) * dn(gptq_d);
  const double qgemv_flops = dn(qg_iters) * 2.0 * dn(qg_d) * dn(qg_d);

  struct KernelCase {
    const char* kernel;
    const char* impl;
    double flops;
    std::function<void()> fn;
  };
  const KernelCase cases[] = {
      {"matmul_512", "naive", gemm_flops,
       [&] { ref::gemm(ga, Trans::no, gb, Trans::no, gc); }},
      {"matmul_512", "tiled", gemm_flops,
       [&] { gemm(ga, Trans::no, gb, Trans::no, gc); }},
      {"hessian_accumulate_768x256", "naive", syrk_flops,
       [&] {
         Matrix h(hess_d, hess_d);
         ref::syrk_upper(hx, {}, 1.0f, h);
         benchmark::DoNotOptimize(h.data());
       }},
      {"hessian_accumulate_768x256", "tiled", syrk_flops,
       [&] {
         HessianAccumulator acc(hess_d);
         acc.add_matrix(hx);
         benchmark::DoNotOptimize(acc.tokens_seen());
       }},
      {"gptq_solve_192", "tiled", gptq_flops,
       [&] { benchmark::DoNotOptimize(gptq_quantize(qw, qh, qcfg).weight); }},
      {"quantized_gemv_w4g16", "naive", qgemv_flops,
       [&] {
         for (std::size_t i = 0; i < qg_iters; ++i) {
           ref::qgemv(qgblk, qgx.data(), qgy.data());
         }
         benchmark::DoNotOptimize(qgy.data());
       }},
      {"quantized_gemv_w4g16", "tiled", qgemv_flops,
       [&] {
         for (std::size_t i = 0; i < qg_iters; ++i) {
           kern::qgemv(qgblk, qgx.data(), qgy.data());
         }
         benchmark::DoNotOptimize(qgy.data());
       }},
  };

  std::vector<SweepRow> rows;
  for (const auto& c : cases) {
    double serial_seconds = 0.0;
    for (const std::size_t threads : thread_counts) {
      ThreadPool::set_global_threads(threads);
      SweepRow row;
      row.kernel = c.kernel;
      row.impl = c.impl;
      row.threads = threads;
      row.seconds = best_seconds(warmup, reps, c.fn);
      row.gflops = row.seconds > 0.0 ? c.flops / row.seconds / 1e9 : 0.0;
      if (threads == 1) {
        serial_seconds = row.seconds;
      }
      row.speedup_vs_1 =
          serial_seconds > 0.0 ? serial_seconds / row.seconds : 1.0;
      rows.push_back(row);
    }
  }
  // Pair up naive/tiled rows at equal thread count.
  for (auto& tiled : rows) {
    if (tiled.impl != "tiled") {
      continue;
    }
    for (const auto& naive : rows) {
      if (naive.impl == "naive" && naive.kernel == tiled.kernel &&
          naive.threads == tiled.threads && tiled.seconds > 0.0) {
        tiled.speedup_vs_naive = naive.seconds / tiled.seconds;
      }
    }
  }
  ThreadPool::set_global_threads(1);
  return rows;
}

bool write_sweep_json(const std::vector<SweepRow>& rows,
                      const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "kernels_micro: cannot write %s\n", path.c_str());
    return false;
  }
  out << "{\n";
  out << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
      << ",\n";
  out << "  \"build\": \""
#if defined(__AVX2__)
      << "APTQ_NATIVE (AVX2)"
#elif defined(__AVX__)
      << "APTQ_NATIVE (AVX)"
#else
      << "baseline (SSE2)"
#endif
      << "\",\n";
  out << "  \"timing\": \"min of 5 reps after 2 warmup runs\",\n";
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    out << "    {\"kernel\": \"" << r.kernel << "\", \"impl\": \"" << r.impl
        << "\", \"threads\": " << r.threads << ", \"seconds\": " << r.seconds
        << ", \"gflops\": " << r.gflops
        << ", \"speedup_vs_1\": " << r.speedup_vs_1
        << ", \"speedup_vs_naive\": ";
    if (r.speedup_vs_naive > 0.0) {
      out << r.speedup_vs_naive;
    } else {
      out << "null";
    }
    out << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  return out.good();
}

}  // namespace
}  // namespace aptq

int main(int argc, char** argv) {
  std::size_t requested_threads = 0;  // 0 = hardware concurrency
  bool run_sweep = true;
  bool sweep_only = false;  // skip the gbench suite (CI bench-smoke)
  bool smoke = false;       // reduced problem sizes and rep counts
  std::string sweep_out = "BENCH_kernels.json";
  // Peel our flags off before google-benchmark parses the rest.
  std::vector<char*> gbench_args{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      requested_threads =
          static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--no-sweep") {
      run_sweep = false;
    } else if (arg == "--sweep-only") {
      sweep_only = true;
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--sweep-out" && i + 1 < argc) {
      sweep_out = argv[++i];
    } else {
      gbench_args.push_back(argv[i]);
    }
  }

  if (run_sweep) {
    std::vector<std::size_t> counts =
        smoke ? std::vector<std::size_t>{1, 4} : std::vector<std::size_t>{1, 2, 4};
    if (requested_threads != 0 &&
        std::find(counts.begin(), counts.end(), requested_threads) ==
            counts.end()) {
      counts.push_back(requested_threads);
    }
    const auto rows = aptq::run_threads_sweep(counts, smoke);
    if (aptq::write_sweep_json(rows, sweep_out)) {
      std::printf("threads sweep written to %s\n", sweep_out.c_str());
    }
    for (const auto& r : rows) {
      std::printf("  %-28s %-5s threads=%zu  %.6fs  %7.2f GF/s  vs1=%.2fx",
                  r.kernel.c_str(), r.impl.c_str(), r.threads, r.seconds,
                  r.gflops, r.speedup_vs_1);
      if (r.speedup_vs_naive > 0.0) {
        std::printf("  vs_naive=%.2fx", r.speedup_vs_naive);
      }
      std::printf("\n");
    }
  }
  if (sweep_only) {
    return 0;
  }

  aptq::ThreadPool::set_global_threads(requested_threads == 0
                                           ? 1
                                           : requested_threads);
  int gbench_argc = static_cast<int>(gbench_args.size());
  benchmark::Initialize(&gbench_argc, gbench_args.data());
  if (benchmark::ReportUnrecognizedArguments(gbench_argc,
                                             gbench_args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
