// Design ablations beyond the paper's tables: every knob DESIGN.md calls
// out as a design choice, swept on llama7b-sim / C4Sim perplexity.
//   A. quantization group size          D. attention-probe count
//   B. Hessian dampening λ              E. sequential vs one-shot solving
//   C. calibration-set size             F. sensitivity metric + act order
//   G. Hutchinson vs direct Hessian trace agreement
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "quant/hessian.hpp"
#include "tensor/ops.hpp"

using namespace aptq;
using namespace aptq::bench;

int main() {
  std::printf("=== Design ablations (llama7b-sim, C4Sim ppl, APTQ-50%% "
              "unless noted) ===\n\n");
  BenchContext ctx = make_context();
  PipelineConfig base = paper_config();
  base.ratio_high = 0.5;  // stress regime where design choices matter

  const auto run = [&](const char* label, Method m,
                       const PipelineConfig& cfg) {
    const PplRow row = run_ppl_row(ctx, m, cfg);
    std::printf("  %-34s avg %.2f bits  ppl %.3f  (%.1fs)\n", label,
                row.avg_bits, row.c4, row.seconds);
    std::fflush(stdout);
  };

  std::printf("[A] group size (2/4-bit grids share one scale per group):\n");
  for (const std::size_t g : {std::size_t{8}, std::size_t{16},
                              std::size_t{32}, std::size_t{0}}) {
    PipelineConfig cfg = base;
    cfg.group_size = g;
    char label[64];
    std::snprintf(label, sizeof label, "group=%zu%s", g,
                  g == 0 ? " (whole row)" : "");
    run(label, Method::aptq_mixed, cfg);
  }

  std::printf("\n[B] Hessian dampening lambda:\n");
  for (const double damp : {0.001, 0.01, 0.1, 1.0}) {
    PipelineConfig cfg = base;
    cfg.damp = damp;
    char label[64];
    std::snprintf(label, sizeof label, "damp=%.3f", damp);
    run(label, Method::aptq_mixed, cfg);
  }

  std::printf("\n[C] calibration segments (paper: 128):\n");
  for (const std::size_t n : {std::size_t{8}, std::size_t{32},
                              std::size_t{128}}) {
    PipelineConfig cfg = base;
    cfg.calib_segments = n;
    char label[64];
    std::snprintf(label, sizeof label, "segments=%zu", n);
    run(label, Method::aptq_mixed, cfg);
  }

  std::printf("\n[D] attention-probe count (gamma estimator):\n");
  for (const std::size_t p : {std::size_t{1}, std::size_t{2},
                              std::size_t{4}, std::size_t{8}}) {
    PipelineConfig cfg = base;
    cfg.probes = p;
    char label[64];
    std::snprintf(label, sizeof label, "probes=%zu", p);
    run(label, Method::aptq_mixed, cfg);
  }

  std::printf("\n[E] sequential vs one-shot calibration:\n");
  {
    PipelineConfig cfg = base;
    run("sequential (GPTQ protocol)", Method::aptq_mixed, cfg);
    cfg.sequential = false;
    run("one-shot (all Hessians on FP model)", Method::aptq_mixed, cfg);
  }

  std::printf("\n[F] sensitivity metric and column order:\n");
  {
    PipelineConfig cfg = base;
    run("metric = avg Hessian trace (paper)", Method::aptq_mixed, cfg);
    cfg.sensitivity_metric = SensitivityMetric::trace_times_err;
    run("metric = trace x 2-bit error (HAWQ)", Method::aptq_mixed, cfg);
    PipelineConfig ao = base;
    ao.act_order = true;
    run("act_order column permutation", Method::aptq_mixed, ao);
  }

  std::printf("\n[H] extension methods at matched budgets:\n");
  {
    PipelineConfig cfg = base;
    run("APTQ-50% (2/4 ratio allocator)", Method::aptq_mixed, cfg);
    run("APTQ-KP-50% (knapsack, menu 2/3/4/8)", Method::aptq_knapsack, cfg);
    PipelineConfig clip = base;
    clip.mse_clip_search = true;
    run("APTQ-50% + MSE clip search", Method::aptq_mixed, clip);
    PipelineConfig four = paper_config();
    run("AWQ (4-bit, scale search)", Method::awq, four);
    run("GPTQ 4-bit (reference)", Method::gptq, four);
  }

  std::printf("\n[I] calibration seed sensitivity (APTQ-50%%, 3 seeds):\n");
  {
    double lo = 1e30, hi = 0.0;
    for (const std::uint64_t seed : {0x1ull, 0x2222ull, 0x333333ull}) {
      PipelineConfig cfg = base;
      cfg.calib_seed = seed;
      const PplRow row = run_ppl_row(ctx, Method::aptq_mixed, cfg);
      lo = std::min(lo, row.c4);
      hi = std::max(hi, row.c4);
      std::printf("  seed=%-10llx ppl %.3f\n",
                  static_cast<unsigned long long>(seed), row.c4);
      std::fflush(stdout);
    }
    std::printf("  spread across calibration seeds: %.3f\n", hi - lo);
  }

  std::printf("\n[J] calibration distribution shift (APTQ-50%%):\n");
  {
    PipelineConfig cfg = base;
    // C4Sim-calibrated (the protocol).
    const PplRow c4row = run_ppl_row(ctx, Method::aptq_mixed, cfg);
    std::printf("  calibrated on C4Sim   : C4Sim %.3f  WikiSim %.3f\n",
                c4row.c4, c4row.wiki);
    // WikiSim-calibrated.
    Timer t;
    const QuantizedModel qm = quantize_model(ctx.model7b, ctx.corpora->wiki,
                                             Method::aptq_mixed, cfg);
    std::printf("  calibrated on WikiSim : C4Sim %.3f  WikiSim %.3f (%.1fs)\n",
                ppl(qm.model, ctx.c4_eval, qm.forward_options),
                ppl(qm.model, ctx.wiki_eval, qm.forward_options), t.seconds());
  }

  std::printf("\n[G] Hutchinson vs direct average Hessian trace (layer "
              "sensitivities):\n");
  {
    const auto segments =
        sample_calibration_set(ctx.corpora->c4, 32, 48, 0xAB1A7E);
    CalibConfig ccfg;
    const CalibrationResult calib =
        collect_calibration(ctx.model7b, segments, ccfg);
    Rng rng(0x7AC3);
    double max_rel = 0.0;
    for (const auto& layer : calib.layers) {
      const double direct = layer.avg_trace;
      const double hutch =
          hutchinson_trace(layer.hessian, 256, rng) /
          static_cast<double>(layer.hessian.rows());
      const double rel = std::fabs(hutch - direct) / direct;
      max_rel = std::max(max_rel, rel);
      std::printf("  %-28s direct %9.4f  hutchinson %9.4f  rel err %5.2f%%\n",
                  layer.name.c_str(), direct, hutch, 100.0 * rel);
    }
    std::printf("  max relative deviation: %.2f%% (HAWQ-V2's estimator "
                "agrees with the exact trace)\n", 100.0 * max_rel);
  }
  return 0;
}
