// Reproduces Table 3: APTQ's Hessian-trace allocation vs manual block-wise
// mixed precision on llama7b-sim / C4Sim perplexity.
#include <cstdio>

#include "bench_common.hpp"

using namespace aptq;
using namespace aptq::bench;

int main() {
  std::printf("=== Table 3: APTQ vs manual block-wise allocation (C4Sim "
              "perplexity) ===\n\n");
  BenchContext ctx = make_context();

  TextTable table({"Method", "Ratio of 4-bit", "Avg bit", "Perplexity",
                   "paper PPL"});
  struct Spec {
    Method method;
    double ratio;
    const char* paper;
  };
  const std::vector<Spec> specs = {
      {Method::blockwise_mixed, 0.75, "5.84"},
      {Method::aptq_mixed, 0.75, "5.54"},
      {Method::blockwise_mixed, 0.50, "7.04"},
      {Method::aptq_mixed, 0.50, "6.24"},
  };
  for (const auto& spec : specs) {
    PipelineConfig cfg = paper_config();
    cfg.ratio_high = spec.ratio;
    const PplRow row = run_ppl_row(ctx, spec.method, cfg);
    table.add_row({row.method, fmt_percent(spec.ratio, 0),
                   fmt_fixed(row.avg_bits, 2), fmt_fixed(row.c4, 3),
                   spec.paper});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n%s\n", table.render().c_str());
  std::printf("shape check: APTQ's trace-driven allocation beats manual "
              "block-wise at both ratios (paper Table 3).\n");
  return 0;
}
