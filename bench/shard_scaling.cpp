// Tensor-parallel scaling bench: ServeEngine throughput over sharded
// decode with in-process workers on real localhost sockets, swept across
// worker count {1,2,4} and batch {1,8}, dense and packed, against the
// solo (no-network) baselines. Writes BENCH_shard.json.
//
// The headline is NOT raw speedup — on one host the workers share the
// same cores and every projection pays a loopback round trip, so sharded
// throughput sits below solo. The numbers that matter:
//   - max_worker_weight_fraction_nK: the largest per-worker weight slice
//     as a fraction of the whole model (~1/K — the memory-capacity story
//     that lets N small hosts serve a model none could hold alone);
//   - workers2_over_workers1: adding a worker must not collapse
//     throughput (CI floors this ratio — the protocol overhead is per
//     projection, not per worker, so it should hold near 1).
// Flags: `--requests N` (default 8), `--out PATH`.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "net/sharded_model.hpp"
#include "net/socket.hpp"
#include "net/worker.hpp"
#include "quant/packed_model.hpp"
#include "serve/engine.hpp"
#include "util/timer.hpp"

namespace aptq::net {
namespace {

using serve::GenerationResult;
using serve::Request;
using serve::ServeConfig;
using serve::ServeEngine;

struct Row {
  std::string model;
  std::size_t workers = 0;  ///< 0 = solo baseline (no network)
  std::size_t batch = 0;
  std::uint64_t generated = 0;
  double wall_s = 0.0;
  double tokens_per_sec = 0.0;
  std::uint64_t max_worker_weight_bytes = 0;
};

ModelConfig bench_config() {
  ModelConfig c;
  c.vocab_size = 64;
  c.dim = 48;
  c.n_layers = 4;
  c.n_heads = 4;
  c.ffn_dim = 128;
  return c;
}

std::vector<Request> make_workload(std::size_t n, std::size_t vocab) {
  std::vector<Request> reqs;
  Rng rng(7);
  for (std::size_t i = 0; i < n; ++i) {
    Request r;
    r.prompt.resize(3 + rng.index(4));
    for (auto& t : r.prompt) {
      t = static_cast<TokenId>(rng.index(vocab));
    }
    r.max_new_tokens = 12 + rng.index(3);
    r.sampling.temperature = 0.8f;
    r.sampling.top_k = (i % 2 == 0) ? 0 : 16;
    r.seed = 9000 + i;
    reqs.push_back(r);
  }
  return reqs;
}

/// In-process workers over real localhost sockets (same wire path as
/// separate processes, minus the process-spawn noise).
class Cluster {
 public:
  explicit Cluster(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      auto listener = std::make_shared<Listener>(0);
      const std::uint16_t port = listener->port();
      threads_.emplace_back([listener] {
        Socket conn = listener->accept();
        serve_worker(conn);
      });
      streams_.push_back(
          std::make_unique<Socket>(Socket::connect("127.0.0.1", port)));
    }
  }
  ~Cluster() {
    for (std::thread& t : threads_) {
      t.join();
    }
  }
  std::vector<std::unique_ptr<Stream>> take_streams() {
    return std::move(streams_);
  }

 private:
  std::vector<std::thread> threads_;
  std::vector<std::unique_ptr<Stream>> streams_;
};

double run_workload(ServeEngine& engine, const std::vector<Request>& reqs,
                    std::uint64_t& generated) {
  for (const Request& r : reqs) {
    engine.submit(r);
  }
  const Timer timer;
  const auto results = engine.run();
  const double wall = timer.seconds();
  generated = 0;
  for (const auto& r : results) {
    generated += r.tokens.size();
  }
  return wall;
}

Row measure(const std::string& name, serve::Backend backend,
            const std::vector<Request>& reqs, std::size_t workers,
            std::size_t batch, std::uint64_t max_weight_bytes) {
  constexpr std::size_t kRepeats = 3;
  Row row;
  row.model = name;
  row.workers = workers;
  row.batch = batch;
  row.max_worker_weight_bytes = max_weight_bytes;
  row.wall_s = 1e30;
  for (std::size_t rep = 0; rep < kRepeats; ++rep) {
    ServeConfig cfg;
    cfg.max_batch = batch;
    cfg.max_context = 64;
    ServeEngine engine(serve::Backend(backend), cfg);
    std::uint64_t generated = 0;
    const double wall = run_workload(engine, reqs, generated);
    if (wall < row.wall_s) {
      row.wall_s = wall;
      row.generated = generated;
    }
  }
  row.tokens_per_sec = row.wall_s > 0.0
                           ? static_cast<double>(row.generated) / row.wall_s
                           : 0.0;
  return row;
}

template <typename ModelT>
void sweep(const std::string& name, const ModelT& model,
           const std::vector<Request>& reqs, std::vector<Row>& rows) {
  const std::uint64_t solo_bytes = make_shard(model, 0, 1).weight_bytes();
  for (const std::size_t batch : {1u, 8u}) {
    rows.push_back(measure(name, serve::make_backend(model), reqs, 0, batch,
                           solo_bytes));
  }
  for (const std::size_t workers : {1u, 2u, 4u}) {
    Cluster cluster(workers);
    ShardedModel sharded(model, cluster.take_streams());
    std::uint64_t max_bytes = 0;
    for (const std::uint64_t b : sharded.worker_weight_bytes()) {
      max_bytes = std::max(max_bytes, b);
    }
    for (const std::size_t batch : {1u, 8u}) {
      rows.push_back(measure(name, make_backend(sharded), reqs, workers,
                             batch, max_bytes));
    }
    sharded.shutdown();
  }
}

const Row* find_row(const std::vector<Row>& rows, const std::string& model,
                    std::size_t workers, std::size_t batch) {
  for (const Row& r : rows) {
    if (r.model == model && r.workers == workers && r.batch == batch) {
      return &r;
    }
  }
  return nullptr;
}

bool write_json(const std::vector<Row>& rows, double workers2_over_workers1,
                double frac_n2, double frac_n4, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "shard_scaling: cannot write %s\n", path.c_str());
    return false;
  }
  out << "{\n";
  out << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
      << ",\n";
  out << "  \"workers2_over_workers1\": " << workers2_over_workers1 << ",\n";
  out << "  \"max_worker_weight_fraction_n2\": " << frac_n2 << ",\n";
  out << "  \"max_worker_weight_fraction_n4\": " << frac_n4 << ",\n";
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"model\": \"" << r.model << "\", \"workers\": " << r.workers
        << ", \"batch\": " << r.batch
        << ", \"generated_tokens\": " << r.generated
        << ", \"wall_s\": " << r.wall_s
        << ", \"tokens_per_sec\": " << r.tokens_per_sec
        << ", \"max_worker_weight_bytes\": " << r.max_worker_weight_bytes
        << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  return out.good();
}

int run(std::size_t n_requests, const std::string& out_path) {
  const ModelConfig cfg = bench_config();
  const Model model = Model::init(cfg, 42);
  QuantSpec spec;
  spec.bits = 4;
  spec.group_size = 16;
  const PackedModel packed = PackedModel::pack_uniform(model, spec);
  const std::vector<Request> workload =
      make_workload(n_requests, cfg.vocab_size);

  std::vector<Row> rows;
  sweep("dense", model, workload, rows);
  sweep("packed_w4g16", packed, workload, rows);

  // Headlines from the packed sweep at batch 8 (the serving shape).
  const Row* w1 = find_row(rows, "packed_w4g16", 1, 8);
  const Row* w2 = find_row(rows, "packed_w4g16", 2, 8);
  const Row* w4 = find_row(rows, "packed_w4g16", 4, 8);
  const Row* solo = find_row(rows, "packed_w4g16", 0, 8);
  const double workers2_over_workers1 =
      (w1 != nullptr && w2 != nullptr && w1->tokens_per_sec > 0.0)
          ? w2->tokens_per_sec / w1->tokens_per_sec
          : 0.0;
  const double solo_bytes =
      solo != nullptr ? static_cast<double>(solo->max_worker_weight_bytes)
                      : 0.0;
  const double frac_n2 =
      (w2 != nullptr && solo_bytes > 0.0)
          ? static_cast<double>(w2->max_worker_weight_bytes) / solo_bytes
          : 0.0;
  const double frac_n4 =
      (w4 != nullptr && solo_bytes > 0.0)
          ? static_cast<double>(w4->max_worker_weight_bytes) / solo_bytes
          : 0.0;

  std::printf("%-14s %8s %6s %10s %8s %16s %14s\n", "model", "workers",
              "batch", "generated", "wall_s", "tokens_per_sec", "weight_bytes");
  for (const Row& r : rows) {
    std::printf("%-14s %8zu %6zu %10llu %8.3f %16.1f %14llu\n",
                r.model.c_str(), r.workers, r.batch,
                static_cast<unsigned long long>(r.generated), r.wall_s,
                r.tokens_per_sec,
                static_cast<unsigned long long>(r.max_worker_weight_bytes));
  }
  std::printf("packed workers=2 vs workers=1 at batch=8: %.2fx\n",
              workers2_over_workers1);
  std::printf("largest per-worker weight fraction: %.3f at N=2, %.3f at N=4\n",
              frac_n2, frac_n4);
  if (write_json(rows, workers2_over_workers1, frac_n2, frac_n4, out_path)) {
    std::printf("shard scaling results written to %s\n", out_path.c_str());
  }

  // Tripwires. Weight fractions are structural (must shrink ~1/N); the
  // throughput floor is lenient — on one shared host a second worker buys
  // no cycles, it only must not collapse the pipeline.
  if (frac_n2 <= 0.0 || frac_n2 > 0.6 || frac_n4 <= 0.0 || frac_n4 > 0.35) {
    std::fprintf(stderr,
                 "shard_scaling: per-worker weight fraction is not ~1/N "
                 "(%.3f at N=2, %.3f at N=4)\n",
                 frac_n2, frac_n4);
    return 1;
  }
  if (workers2_over_workers1 > 0.0 && workers2_over_workers1 < 0.25) {
    std::fprintf(stderr,
                 "shard_scaling: workers=2 collapsed vs workers=1 (%.2fx)\n",
                 workers2_over_workers1);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace aptq::net

int main(int argc, char** argv) {
  std::size_t n_requests = 8;
  std::string out_path = "BENCH_shard.json";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--requests" && i + 1 < argc) {
      n_requests =
          static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: shard_scaling [--requests N] [--out PATH]\n");
      return 1;
    }
  }
  return aptq::net::run(n_requests == 0 ? 1 : n_requests, out_path);
}
