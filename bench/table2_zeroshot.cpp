// Reproduces Table 2: zero-shot accuracy of quantized llama7b-sim and
// llama13b-sim on the five synthetic common-sense-reasoning task families,
// across all comparison methods and APTQ mixed-precision ratios.
#include <cstdio>

#include "bench_common.hpp"
#include "eval/harness.hpp"
#include "eval/tasks.hpp"

using namespace aptq;
using namespace aptq::bench;

namespace {

struct RowSpec {
  Method method;
  PipelineConfig cfg;
};

std::vector<RowSpec> row_specs() {
  const PipelineConfig base = paper_config();
  std::vector<RowSpec> rows;
  rows.push_back({Method::fp, base});
  rows.push_back({Method::rtn, base});
  rows.push_back({Method::smoothquant, base});
  rows.push_back({Method::fpq, base});
  rows.push_back({Method::llm_qat, base});
  rows.push_back({Method::gptq, base});
  {
    PipelineConfig pb = base;
    pb.pbllm_salient_fraction = 0.3;
    rows.push_back({Method::pbllm, pb});
    pb.pbllm_salient_fraction = 0.1;
    rows.push_back({Method::pbllm, pb});
  }
  rows.push_back({Method::aptq, base});
  for (const double r : {0.9, 0.8, 0.75, 0.7, 0.6, 0.5}) {
    PipelineConfig cfg = base;
    cfg.ratio_high = r;
    rows.push_back({Method::aptq_mixed, cfg});
  }
  return rows;
}

void run_model(const char* label, const Model& fp, const Corpus& calib) {
  std::printf("\n--- %s ---\n", label);
  TaskGenConfig tcfg;
  tcfg.n_items = 200;
  tcfg.context_len = 16;
  tcfg.continuation_len = 8;
  const auto suite = generate_task_suite(calib, tcfg);

  TextTable table({"Method", "Avg bit", "PIQA", "Hellaswag", "Arc-E",
                   "Arc-C", "WinoGrande", "Mean%"});
  for (const auto& spec : row_specs()) {
    const QuantizedModel qm = quantize_model(fp, calib, spec.method,
                                             spec.cfg);
    const ZeroShotReport report =
        evaluate_zero_shot(qm.model, suite, qm.forward_options);
    std::vector<std::string> cells = {qm.method,
                                      fmt_fixed(qm.average_bits(), 2)};
    for (const auto& task : report.tasks) {
      cells.push_back(fmt_fixed(100.0 * task.accuracy, 1));
    }
    cells.push_back(fmt_fixed(100.0 * report.mean_accuracy, 2));
    table.add_row(std::move(cells));
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n%s\n", table.render().c_str());
}

}  // namespace

int main() {
  std::printf("=== Table 2: Zero-shot accuracy on the five task families "
              "===\n");
  std::printf("(chance: PIQA/WinoGrande 50%%, Hellaswag/Arc 25%%)\n");
  BenchContext ctx = make_context();
  run_model("llama7b-sim", ctx.model7b, ctx.corpora->c4);
  const Model m13 = load_13b(ctx);
  run_model("llama13b-sim", m13, ctx.corpora->c4);
  std::printf(
      "shape checks: FP highest; APTQ(4.0) within ~1pt of FP and above GPTQ;\n"
      "accuracy declines smoothly with R; 13b-sim more robust than 7b-sim;\n"
      "PB-LLM-10%% (lowest bits) degrades most (paper Table 2).\n");
  return 0;
}
