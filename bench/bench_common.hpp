// Shared setup for the experiment benches: the standard corpora, the zoo
// models (trained on first run, cached under .cache/aptq thereafter), the
// evaluation segment sets, and the paper-protocol pipeline defaults.
#pragma once

#include <cstdio>
#include <memory>

#include "core/model_zoo.hpp"
#include "core/pipeline.hpp"
#include "eval/perplexity.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace aptq::bench {

/// Everything a table bench needs.
struct BenchContext {
  std::unique_ptr<StandardCorpora> corpora;
  Model model7b;
  std::vector<TokenSeq> c4_eval;
  std::vector<TokenSeq> wiki_eval;
};

inline PipelineConfig paper_config() {
  PipelineConfig cfg;  // defaults already encode the scaled paper protocol
  return cfg;
}

inline BenchContext make_context() {
  BenchContext ctx;
  ctx.corpora = make_standard_corpora();
  ModelZoo zoo;
  ctx.model7b = zoo.get(llama7b_sim(), *ctx.corpora);
  ctx.c4_eval = ctx.corpora->c4.eval_segments(48, 96);
  ctx.wiki_eval = ctx.corpora->wiki.eval_segments(48, 96);
  return ctx;
}

inline Model load_13b(const BenchContext& ctx) {
  ModelZoo zoo;
  return zoo.get(llama13b_sim(), *ctx.corpora);
}

inline double ppl(const Model& model, std::span<const TokenSeq> segments,
                  const ForwardOptions& options = {}) {
  return evaluate_perplexity(model, segments, options).perplexity;
}

/// Quantize + measure C4/Wiki perplexity for one table row.
struct PplRow {
  std::string method;
  double avg_bits = 0.0;
  double c4 = 0.0;
  double wiki = 0.0;
  double seconds = 0.0;
};

inline PplRow run_ppl_row(const BenchContext& ctx, Method method,
                          const PipelineConfig& cfg) {
  Timer timer;
  const QuantizedModel qm =
      quantize_model(ctx.model7b, ctx.corpora->c4, method, cfg);
  PplRow row;
  row.method = qm.method;
  row.avg_bits = qm.average_bits();
  row.c4 = ppl(qm.model, ctx.c4_eval, qm.forward_options);
  row.wiki = ppl(qm.model, ctx.wiki_eval, qm.forward_options);
  row.seconds = timer.seconds();
  return row;
}

}  // namespace aptq::bench
