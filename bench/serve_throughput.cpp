// Continuous-batching serving throughput: aggregate tokens/sec of the
// ServeEngine over a fixed synthetic workload, swept across batch size and
// pool threads, for the dense model and the bit-packed model. The point of
// the sweep: aggregate throughput should climb with max_batch (requests
// decode in parallel across the pool) while each request's token stream
// stays byte-identical to a solo decode. Writes BENCH_serve.json, including
// the packed_decode_slowdown_batch1 headline (dense over packed tokens/sec
// at batch 1, single thread) that CI's bench-smoke step thresholds.
//
// A second section sweeps latency under load: open-loop arrivals
// (serve::run_load) against the packed engine at several offered rates,
// reporting p50/p99 TTFT/TPOT/queue-wait and SLO goodput per point — the
// goodput-vs-offered-load curve (docs/SERVING.md).
//
// A third section sweeps speculative decoding: the trained serve-sim zoo
// target (dense and packed verifiers) drafted by the tiny trained
// draft-sim model (packed w4g16) at k ∈ {2, 4, 8}, greedy sampling,
// batch 1 — the low-latency play speculation exists for. Each row reports
// tokens/sec, acceptance rate, and speedup over the same verifier running
// the identical workload without speculation (token streams are bitwise
// identical either way, so the speedup is apples to apples). Headlines
// spec_k4_accept_rate / spec_speedup_over_solo (dense verifier, k=4) gate
// in CI's bench-smoke step.
// Flags: `--requests N` (workload size, default 24), `--out PATH`.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/model_zoo.hpp"
#include "quant/packed_model.hpp"
#include "serve/engine.hpp"
#include "serve/loadgen.hpp"
#include "util/threadpool.hpp"
#include "util/timer.hpp"

namespace aptq::serve {
namespace {

struct Row {
  std::string model;
  std::size_t batch = 0;
  std::size_t threads = 0;            ///< requested via the sweep
  std::size_t effective_threads = 0;  ///< what the pool actually ran
  std::size_t requests = 0;
  std::uint64_t generated = 0;
  std::size_t engine_steps = 0;
  double wall_s = 0.0;
  double tokens_per_sec = 0.0;
};

ModelConfig bench_config() {
  ModelConfig c;
  c.vocab_size = 256;
  c.dim = 128;
  c.n_layers = 4;
  c.n_heads = 4;
  c.ffn_dim = 256;
  return c;
}

TokenSeq random_tokens(std::size_t n, std::uint64_t seed, std::size_t vocab) {
  Rng rng(seed);
  TokenSeq t(n);
  for (auto& v : t) {
    v = static_cast<TokenId>(rng.index(vocab));
  }
  return t;
}

// A fixed decode-dominated workload: short prompts of mixed lengths (so
// prefills of different shapes still exercise admission) and generation
// budgets an order of magnitude past the prompt, nearly uniform so the
// batch stays full instead of draining one request at a time. The
// tokens/sec headline then measures the batched decode path rather than
// the per-request prefill constant or the tail where batch=8 has decayed
// to batch=1. Identical across every (model, batch, threads) cell so the
// rows are comparable.
std::vector<Request> make_workload(std::size_t n, std::size_t vocab) {
  std::vector<Request> reqs;
  Rng rng(7);
  for (std::size_t i = 0; i < n; ++i) {
    Request r;
    r.prompt = random_tokens(2 + rng.index(5), 50 + i, vocab);
    r.max_new_tokens = 40 + rng.index(3);
    r.sampling.temperature = 0.8f + 0.05f * static_cast<float>(i % 5);
    r.sampling.top_k = (i % 2 == 0) ? 0 : 40;
    r.seed = 9000 + i;
    reqs.push_back(r);
  }
  return reqs;
}

Row measure(const std::string& name, const Backend& backend,
            const std::vector<Request>& reqs, std::size_t batch,
            std::size_t threads) {
  ThreadPool::set_global_threads(threads);
  // Best-of-N: the workload is deterministic (identical token streams every
  // repeat), so the min wall time is the stable statistic — it is what the
  // CI thresholds on the batch/thread scaling ratios read.
  constexpr std::size_t kRepeats = 3;
  Row row;
  row.model = name;
  row.batch = batch;
  row.threads = threads;
  // Requested vs delivered can differ (the pool clamps to what the host
  // offers); rows record both so a "threads: 4" row on a 1-core runner
  // reads as the serial measurement it actually was.
  row.effective_threads = ThreadPool::effective_global_threads();
  row.wall_s = 1e30;
  for (std::size_t rep = 0; rep < kRepeats; ++rep) {
    ServeConfig cfg;
    cfg.max_batch = batch;
    cfg.max_context = 96;
    ServeEngine engine(Backend(backend), cfg);
    for (const Request& r : reqs) {
      engine.submit(r);
    }
    const Timer timer;
    const auto results = engine.run();
    const double wall = timer.seconds();
    if (wall < row.wall_s) {
      row.wall_s = wall;
      row.requests = results.size();
      row.generated = 0;
      for (const auto& r : results) {
        row.generated += r.tokens.size();
      }
      row.engine_steps = engine.stats().engine_steps;
    }
  }
  row.tokens_per_sec = row.wall_s > 0.0
                           ? static_cast<double>(row.generated) / row.wall_s
                           : 0.0;
  return row;
}

// Greedy decode-dominated workload for the speculative sweep: top_k = 1
// makes the stream an argmax walk, the regime where a trained draft's
// agreement (and so the acceptance rate) is meaningful. Identical for the
// speculative rows and their solo baselines.
std::vector<Request> make_spec_workload(std::size_t n, std::size_t vocab,
                                        bool speculative) {
  std::vector<Request> reqs;
  Rng rng(17);
  for (std::size_t i = 0; i < n; ++i) {
    Request r;
    r.prompt = random_tokens(6 + rng.index(8), 70 + i, vocab);
    r.max_new_tokens = 48;
    r.sampling.top_k = 1;
    r.seed = 9100 + i;
    r.speculative = speculative;
    reqs.push_back(r);
  }
  return reqs;
}

struct SpecRow {
  std::string verifier;
  std::size_t k = 0;
  std::size_t requests = 0;
  std::uint64_t generated = 0;
  double wall_s = 0.0;
  double tokens_per_sec = 0.0;
  double solo_tokens_per_sec = 0.0;
  double speedup_over_solo = 0.0;
  double accept_rate = 0.0;
  double emitted_per_cycle = 0.0;
  double draft_ms = 0.0;
  double verify_ms = 0.0;
};

SpecRow measure_spec(const std::string& verifier, const Backend& target,
                     const Backend& draft, std::size_t k,
                     const std::vector<Request>& reqs,
                     double solo_tokens_per_sec) {
  ThreadPool::set_global_threads(1);
  constexpr std::size_t kRepeats = 3;
  SpecRow row;
  row.verifier = verifier;
  row.k = k;
  row.solo_tokens_per_sec = solo_tokens_per_sec;
  row.wall_s = 1e30;
  for (std::size_t rep = 0; rep < kRepeats; ++rep) {
    SpecConfig sc;
    sc.draft = Backend(draft);
    sc.k = k;
    ServeConfig cfg;
    cfg.max_batch = 1;
    cfg.max_context = 96;
    ServeEngine engine(Backend(target), cfg, std::move(sc));
    for (const Request& r : reqs) {
      engine.submit(r);
    }
    const Timer timer;
    const auto results = engine.run();
    const double wall = timer.seconds();
    if (wall < row.wall_s) {
      row.wall_s = wall;
      row.requests = results.size();
      row.generated = 0;
      for (const auto& r : results) {
        row.generated += r.tokens.size();
      }
      const SpecStats* s = engine.spec_stats();
      row.accept_rate = s->accept_rate();
      row.emitted_per_cycle = s->emitted_per_cycle();
      row.draft_ms = s->draft_ms;
      row.verify_ms = s->verify_ms;
    }
  }
  row.tokens_per_sec = row.wall_s > 0.0
                           ? static_cast<double>(row.generated) / row.wall_s
                           : 0.0;
  row.speedup_over_solo = solo_tokens_per_sec > 0.0
                              ? row.tokens_per_sec / solo_tokens_per_sec
                              : 0.0;
  return row;
}

struct LoadRow {
  const char* arrival;
  LoadSpec spec;
  LoadPoint point;
};

// Latency under offered load on the packed engine: open-loop replay of a
// deterministic arrival schedule (serve::run_load). Rates chosen to span
// under-loaded through saturated on the sim-scale model; the bursty row
// shows tail inflation at the same mean rate as the middle Poisson point.
std::vector<LoadRow> measure_load(const Backend& backend) {
  ThreadPool::set_global_threads(1);
  LoadSpec base;
  base.requests = 32;
  base.max_new_tokens = 8;
  base.priority_levels = 2;
  base.slo_ttft_ms = 250.0;
  base.slo_tpot_ms = 50.0;

  std::vector<LoadRow> out;
  for (const double rps : {16.0, 64.0, 256.0}) {
    LoadSpec spec = base;
    spec.offered_rps = rps;
    out.push_back({"poisson", spec, {}});
  }
  LoadSpec bursty = base;
  bursty.offered_rps = 64.0;
  bursty.arrival = LoadSpec::Arrival::bursty;
  bursty.burst = 8;
  out.push_back({"bursty", bursty, {}});

  for (LoadRow& row : out) {
    ServeConfig cfg;
    cfg.max_batch = 8;
    cfg.max_context = 96;
    ServeEngine engine(Backend(backend), cfg);
    row.point = run_load(engine, row.spec);
  }
  return out;
}

bool write_json(const std::vector<Row>& rows, const std::vector<LoadRow>& load,
                const std::vector<SpecRow>& spec_rows, double batch_gain,
                double packed_slowdown, double thread_ratio,
                double spec_accept_rate, double spec_speedup,
                const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "serve_throughput: cannot write %s\n", path.c_str());
    return false;
  }
  out << "{\n";
  out << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
      << ",\n";
  out << "  \"packed_batch8_over_batch1\": " << batch_gain << ",\n";
  out << "  \"packed_decode_slowdown_batch1\": " << packed_slowdown << ",\n";
  out << "  \"packed_threads4_over_threads1\": " << thread_ratio << ",\n";
  out << "  \"spec_k4_accept_rate\": " << spec_accept_rate << ",\n";
  out << "  \"spec_speedup_over_solo\": " << spec_speedup << ",\n";
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"model\": \"" << r.model << "\", \"batch\": " << r.batch
        << ", \"threads\": " << r.threads
        << ", \"effective_threads\": " << r.effective_threads
        << ", \"requests\": " << r.requests
        << ", \"generated_tokens\": " << r.generated
        << ", \"engine_steps\": " << r.engine_steps
        << ", \"wall_s\": " << r.wall_s
        << ", \"tokens_per_sec\": " << r.tokens_per_sec << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"latency_under_load\": [\n";
  for (std::size_t i = 0; i < load.size(); ++i) {
    const LoadRow& r = load[i];
    const LoadPoint& p = r.point;
    out << "    {\"arrival\": \"" << r.arrival
        << "\", \"offered_rps\": " << p.offered_rps
        << ", \"requests\": " << r.spec.requests
        << ", \"slo_ttft_ms\": " << r.spec.slo_ttft_ms
        << ", \"slo_tpot_ms\": " << r.spec.slo_tpot_ms
        << ", \"achieved_rps\": " << p.achieved_rps
        << ", \"goodput_rps\": " << p.goodput_rps
        << ", \"wall_seconds\": " << p.wall_seconds
        << ", \"completed\": " << p.completed
        << ", \"evicted\": " << p.evicted
        << ", \"rejected\": " << p.rejected
        << ", \"p50_ttft_ms\": " << p.p50_ttft_ms
        << ", \"p99_ttft_ms\": " << p.p99_ttft_ms
        << ", \"p50_tpot_ms\": " << p.p50_tpot_ms
        << ", \"p99_tpot_ms\": " << p.p99_tpot_ms
        << ", \"p50_queue_wait_ms\": " << p.p50_queue_wait_ms
        << ", \"p99_queue_wait_ms\": " << p.p99_queue_wait_ms << "}"
        << (i + 1 < load.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"speculative\": [\n";
  for (std::size_t i = 0; i < spec_rows.size(); ++i) {
    const SpecRow& r = spec_rows[i];
    out << "    {\"verifier\": \"" << r.verifier << "\", \"k\": " << r.k
        << ", \"requests\": " << r.requests
        << ", \"generated_tokens\": " << r.generated
        << ", \"wall_s\": " << r.wall_s
        << ", \"tokens_per_sec\": " << r.tokens_per_sec
        << ", \"solo_tokens_per_sec\": " << r.solo_tokens_per_sec
        << ", \"speedup_over_solo\": " << r.speedup_over_solo
        << ", \"accept_rate\": " << r.accept_rate
        << ", \"emitted_per_cycle\": " << r.emitted_per_cycle
        << ", \"draft_ms\": " << r.draft_ms
        << ", \"verify_ms\": " << r.verify_ms << "}"
        << (i + 1 < spec_rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  return out.good();
}

int run(std::size_t n_requests, const std::string& out_path) {
  const ModelConfig cfg = bench_config();
  const Model model = Model::init(cfg, 42);
  QuantSpec spec;
  spec.bits = 4;
  spec.group_size = 16;
  const PackedModel packed = PackedModel::pack_uniform(model, spec);
  const std::vector<Request> workload =
      make_workload(n_requests, cfg.vocab_size);

  const std::vector<std::size_t> batches = {1, 2, 4, 8};
  const std::vector<std::size_t> thread_counts = {1, 4};
  std::vector<Row> rows;
  for (const std::size_t threads : thread_counts) {
    for (const std::size_t batch : batches) {
      rows.push_back(
          measure("dense", make_backend(model), workload, batch, threads));
      rows.push_back(measure("packed_w4g16", make_backend(packed), workload,
                             batch, threads));
    }
  }
  ThreadPool::set_global_threads(1);

  // Headline: packed-model batching gain at the widest pool in the sweep.
  const std::size_t top_threads = thread_counts.back();
  double b1 = 0.0;
  double b8 = 0.0;
  for (const Row& r : rows) {
    if (r.model == "packed_w4g16" && r.threads == top_threads) {
      if (r.batch == 1) {
        b1 = r.tokens_per_sec;
      }
      if (r.batch == 8) {
        b8 = r.tokens_per_sec;
      }
    }
  }
  const double batch_gain = b1 > 0.0 ? b8 / b1 : 0.0;

  // Headline: how much slower packed decode runs than dense at batch 1 on a
  // single thread — the number the blocked kernels exist to hold near 1
  // (CI's bench-smoke step fails when it regresses).
  double dense_b1t1 = 0.0;
  double packed_b1t1 = 0.0;
  for (const Row& r : rows) {
    if (r.batch == 1 && r.threads == 1) {
      (r.model == "dense" ? dense_b1t1 : packed_b1t1) = r.tokens_per_sec;
    }
  }
  const double packed_slowdown =
      packed_b1t1 > 0.0 ? dense_b1t1 / packed_b1t1 : 0.0;

  // Headline: thread scaling on the batched path — packed model at the
  // widest batch, threads=4 over threads=1. The batched decode parallelizes
  // inside the GEMMs, so more threads must never be slower (on a single
  // hardware core the pool is bypassed and the ratio sits at ~1.0; on real
  // multicore it exceeds 1).
  double b8t1 = 0.0;
  double b8t4 = 0.0;
  for (const Row& r : rows) {
    if (r.model == "packed_w4g16" && r.batch == 8) {
      if (r.threads == 1) {
        b8t1 = r.tokens_per_sec;
      }
      if (r.threads == 4) {
        b8t4 = r.tokens_per_sec;
      }
    }
  }
  const double thread_ratio = b8t1 > 0.0 ? b8t4 / b8t1 : 0.0;

  const std::vector<LoadRow> load = measure_load(make_backend(packed));

  // Speculative sweep: trained zoo pair (cached under .cache/aptq), tiny
  // packed draft against dense and packed serve-sim verifiers. The
  // untrained random bench models above are useless here — speculation
  // only pays when the draft actually agrees with the target, which takes
  // two models trained on the same corpus.
  const auto corpora = make_standard_corpora();
  ModelZoo zoo;
  const Model serve_model = zoo.get(serve_sim(), *corpora);
  const Model draft_model = zoo.get(draft_sim(), *corpora);
  const PackedModel serve_packed = PackedModel::pack_uniform(serve_model, spec);
  const PackedModel draft_packed = PackedModel::pack_uniform(draft_model, spec);
  const std::vector<Request> spec_reqs = make_spec_workload(
      n_requests, serve_model.config.vocab_size, /*speculative=*/true);
  const std::vector<Request> solo_reqs = make_spec_workload(
      n_requests, serve_model.config.vocab_size, /*speculative=*/false);
  const Row solo_dense =
      measure("serve_sim_dense", make_backend(serve_model), solo_reqs, 1, 1);
  const Row solo_packed =
      measure("serve_sim_packed", make_backend(serve_packed), solo_reqs, 1, 1);
  std::vector<SpecRow> spec_rows;
  for (const std::size_t k : {2, 4, 8}) {
    spec_rows.push_back(measure_spec("dense", make_backend(serve_model),
                                     make_backend(draft_packed), k, spec_reqs,
                                     solo_dense.tokens_per_sec));
    spec_rows.push_back(measure_spec("packed_w4g16", make_backend(serve_packed),
                                     make_backend(draft_packed), k, spec_reqs,
                                     solo_packed.tokens_per_sec));
  }
  ThreadPool::set_global_threads(1);

  // Headlines CI gates: the dense-verifier k=4 row — the configuration the
  // sweep exists to defend.
  double spec_accept_rate = 0.0;
  double spec_speedup = 0.0;
  for (const SpecRow& r : spec_rows) {
    if (r.verifier == "dense" && r.k == 4) {
      spec_accept_rate = r.accept_rate;
      spec_speedup = r.speedup_over_solo;
    }
  }

  std::printf("%-14s %6s %8s %10s %10s %8s %16s\n", "model", "batch",
              "threads", "effective", "generated", "wall_s",
              "tokens_per_sec");
  for (const Row& r : rows) {
    std::printf("%-14s %6zu %8zu %10zu %10llu %8.3f %16.1f\n",
                r.model.c_str(), r.batch, r.threads, r.effective_threads,
                static_cast<unsigned long long>(r.generated), r.wall_s,
                r.tokens_per_sec);
  }
  std::printf("packed batch=8 vs batch=1 at %zu threads: %.2fx\n", top_threads,
              batch_gain);
  std::printf("packed decode slowdown vs dense (batch=1, 1 thread): %.2fx\n",
              packed_slowdown);
  std::printf("packed threads=4 vs threads=1 at batch=8: %.2fx\n",
              thread_ratio);
  std::printf("\nlatency under load (packed, open loop, %zu requests/point)\n",
              load.empty() ? 0 : load.front().spec.requests);
  std::printf("%-8s %11s %11s %11s %9s %9s %9s %9s\n", "arrival",
              "offered_rps", "achieved", "goodput", "p50_ttft", "p99_ttft",
              "p50_tpot", "p99_tpot");
  for (const LoadRow& r : load) {
    std::printf("%-8s %11.1f %11.1f %11.1f %9.2f %9.2f %9.2f %9.2f\n",
                r.arrival, r.point.offered_rps, r.point.achieved_rps,
                r.point.goodput_rps, r.point.p50_ttft_ms, r.point.p99_ttft_ms,
                r.point.p50_tpot_ms, r.point.p99_tpot_ms);
  }
  std::printf("\nspeculative decoding (serve-sim + packed draft-sim, greedy, "
              "batch=1)\n");
  std::printf("%-14s %3s %10s %14s %8s %8s %10s\n", "verifier", "k",
              "tokens/s", "solo tokens/s", "speedup", "accept",
              "emit/cycle");
  for (const SpecRow& r : spec_rows) {
    std::printf("%-14s %3zu %10.1f %14.1f %7.2fx %7.1f%% %10.2f\n",
                r.verifier.c_str(), r.k, r.tokens_per_sec,
                r.solo_tokens_per_sec, r.speedup_over_solo,
                100.0 * r.accept_rate, r.emitted_per_cycle);
  }
  if (write_json(rows, load, spec_rows, batch_gain, packed_slowdown,
                 thread_ratio, spec_accept_rate, spec_speedup, out_path)) {
    std::printf("serving throughput results written to %s\n",
                out_path.c_str());
  }
  // Regression tripwire for the per-request sweep this bench was built to
  // catch: threads=4 materially slower than threads=1 on the batched path
  // (0.95 absorbs scheduler timing noise, not a real regression).
  if (thread_ratio > 0.0 && thread_ratio < 0.95) {
    std::fprintf(stderr,
                 "serve_throughput: threads=4 is slower than threads=1 on the "
                 "batched path (%.2fx)\n",
                 thread_ratio);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace aptq::serve

int main(int argc, char** argv) {
  std::size_t n_requests = 24;
  std::string out_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--requests" && i + 1 < argc) {
      n_requests =
          static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: serve_throughput [--requests N] [--out PATH]\n");
      return 1;
    }
  }
  return aptq::serve::run(n_requests == 0 ? 1 : n_requests, out_path);
}
