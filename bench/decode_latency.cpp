// Per-token generation latency: full-prefix forward pass vs KV-cached
// decode_step, for the dense model and the bit-packed model (whose steps run
// the fused dequantize GEMV), at several context lengths. Writes
// BENCH_decode.json. Flags: `--threads N` (pool size, default 1),
// `--out PATH`.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "model/decode.hpp"
#include "model/forward.hpp"
#include "quant/packed_model.hpp"
#include "util/threadpool.hpp"
#include "util/timer.hpp"

namespace aptq {
namespace {

struct Row {
  std::string model;
  std::size_t context = 0;
  double full_forward_s = 0.0;  // one full-prefix forward at this context
  double decode_step_s = 0.0;   // one KV-cached step at this context
  double speedup = 0.0;
};

ModelConfig bench_config() {
  ModelConfig c;
  c.vocab_size = 256;
  c.dim = 128;
  c.n_layers = 4;
  c.n_heads = 4;
  c.ffn_dim = 256;
  return c;
}

TokenSeq random_tokens(std::size_t n, std::uint64_t seed, std::size_t vocab) {
  Rng rng(seed);
  TokenSeq t(n);
  for (auto& v : t) {
    v = static_cast<TokenId>(rng.index(vocab));
  }
  return t;
}

template <typename Fn>
double best_of(std::size_t repeats, Fn&& fn) {
  double best = 1e30;
  for (std::size_t i = 0; i < repeats; ++i) {
    Timer timer;
    fn();
    best = std::min(best, timer.seconds());
  }
  return best;
}

// One row: per-token cost without a cache (forward over the whole prefix)
// vs with one (prefill the prefix once, then time `steps` decode steps).
template <typename FullFn, typename PrefillFn, typename StepFn>
Row measure(const std::string& name, std::size_t context, FullFn&& full,
            PrefillFn&& prefill, StepFn&& step) {
  constexpr std::size_t kSteps = 16;
  Row row;
  row.model = name;
  row.context = context;
  row.full_forward_s = best_of(3, full);
  prefill();
  const Timer timer;
  for (std::size_t i = 0; i < kSteps; ++i) {
    step();
  }
  row.decode_step_s = timer.seconds() / static_cast<double>(kSteps);
  row.speedup = row.decode_step_s > 0.0
                    ? row.full_forward_s / row.decode_step_s
                    : 0.0;
  return row;
}

// Batched decode (decode_step_batch): per-token cost when `batch` requests
// step together in one forward pass, vs stepping each alone.
struct BatchedRow {
  std::string model;
  std::size_t context = 0;
  std::size_t batch = 0;
  double per_token_s = 0.0;
  double vs_solo_speedup = 0.0;  // solo per-token / batched per-token
};

template <typename ModelT>
BatchedRow measure_batched(const std::string& name, const ModelT& model,
                           const ModelConfig& cfg, std::size_t context,
                           std::size_t batch, double solo_per_token_s) {
  constexpr std::size_t kSteps = 16;
  const TokenSeq tokens = random_tokens(context, context, cfg.vocab_size);
  std::vector<DecodeState> states;
  states.reserve(batch);
  std::vector<DecodeState*> ptrs;
  for (std::size_t i = 0; i < batch; ++i) {
    states.emplace_back(cfg, context + kSteps);
    decode_prefill(model, tokens, states.back());
  }
  for (std::size_t i = 0; i < batch; ++i) {
    ptrs.push_back(&states[i]);
  }
  const std::vector<TokenId> next(batch, tokens.front());
  const Timer timer;
  for (std::size_t i = 0; i < kSteps; ++i) {
    decode_step_batch(model, next, ptrs);
  }
  BatchedRow row;
  row.model = name;
  row.context = context;
  row.batch = batch;
  row.per_token_s =
      timer.seconds() / static_cast<double>(kSteps * batch);
  row.vs_solo_speedup = row.per_token_s > 0.0
                            ? solo_per_token_s / row.per_token_s
                            : 0.0;
  return row;
}

bool write_json(const std::vector<Row>& rows,
                const std::vector<BatchedRow>& batched, std::size_t threads,
                const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "decode_latency: cannot write %s\n", path.c_str());
    return false;
  }
  out << "{\n";
  out << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
      << ",\n";
  out << "  \"pool_threads\": " << threads << ",\n";
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"model\": \"" << r.model << "\", \"context\": " << r.context
        << ", \"full_forward_s\": " << r.full_forward_s
        << ", \"decode_step_s\": " << r.decode_step_s
        << ", \"speedup\": " << r.speedup << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"batched_results\": [\n";
  for (std::size_t i = 0; i < batched.size(); ++i) {
    const BatchedRow& r = batched[i];
    out << "    {\"model\": \"" << r.model << "\", \"context\": " << r.context
        << ", \"batch\": " << r.batch
        << ", \"per_token_s\": " << r.per_token_s
        << ", \"vs_solo_speedup\": " << r.vs_solo_speedup << "}"
        << (i + 1 < batched.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  return out.good();
}

int run(std::size_t threads, const std::string& out_path) {
  ThreadPool::set_global_threads(threads);
  const ModelConfig cfg = bench_config();
  const Model model = Model::init(cfg, 42);
  QuantSpec spec;
  spec.bits = 4;
  spec.group_size = 16;
  const PackedModel packed = PackedModel::pack_uniform(model, spec);

  const std::vector<std::size_t> contexts = {16, 32, 64, 128};
  constexpr std::size_t kSteps = 16;
  std::vector<Row> rows;
  for (const std::size_t context : contexts) {
    const TokenSeq tokens = random_tokens(context, context, cfg.vocab_size);
    const TokenId next = tokens.front();
    {
      DecodeState state(cfg, context + kSteps);
      rows.push_back(measure(
          "dense", context,
          [&] { model_forward(model, tokens); },
          [&] { decode_prefill(model, tokens, state); },
          [&] { decode_step(model, next, state); }));
    }
    {
      DecodeState state(cfg, context + kSteps);
      rows.push_back(measure(
          "packed_w4g16", context,
          [&] { packed.forward(tokens); },
          [&] { decode_prefill(packed, tokens, state); },
          [&] { decode_step(packed, next, state); }));
    }
  }

  // Batched decode at one representative context: per-token amortization
  // from stacking requests into a single forward pass.
  std::vector<BatchedRow> batched;
  {
    const std::size_t context = 64;
    double dense_solo = 0.0;
    double packed_solo = 0.0;
    for (const Row& r : rows) {
      if (r.context == context) {
        (r.model == "dense" ? dense_solo : packed_solo) = r.decode_step_s;
      }
    }
    for (const std::size_t batch : {2ul, 8ul}) {
      batched.push_back(measure_batched("dense", model, cfg, context, batch,
                                        dense_solo));
      batched.push_back(measure_batched("packed_w4g16", packed, cfg, context,
                                        batch, packed_solo));
    }
  }

  std::printf("%-14s %8s %16s %16s %9s\n", "model", "context",
              "full_forward_s", "decode_step_s", "speedup");
  for (const Row& r : rows) {
    std::printf("%-14s %8zu %16.6f %16.6f %8.1fx\n", r.model.c_str(),
                r.context, r.full_forward_s, r.decode_step_s, r.speedup);
  }
  std::printf("%-14s %8s %6s %16s %14s\n", "model", "context", "batch",
              "per_token_s", "vs_solo");
  for (const BatchedRow& r : batched) {
    std::printf("%-14s %8zu %6zu %16.6f %13.2fx\n", r.model.c_str(),
                r.context, r.batch, r.per_token_s, r.vs_solo_speedup);
  }
  if (write_json(rows, batched, threads, out_path)) {
    std::printf("decode latency results written to %s\n", out_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace aptq

int main(int argc, char** argv) {
  std::size_t threads = 1;
  std::string out_path = "BENCH_decode.json";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: decode_latency [--threads N] [--out PATH]\n");
      return 1;
    }
  }
  return aptq::run(threads == 0 ? 1 : threads, out_path);
}
