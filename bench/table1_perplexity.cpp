// Reproduces Table 1: perplexity of quantized LLaMA(-sim) models on the
// C4(-sim) and WikiText-2(-sim) corpora across methods and average bit
// widths. Paper reference numbers are printed alongside for shape
// comparison (absolute values differ: different substrate; see
// EXPERIMENTS.md).
//
// `--report FILE` writes the table as a run-report artifact (one eval row
// per method/corpus cell) on top of the usual printed table.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "obs/report.hpp"
#include "util/args.hpp"

using namespace aptq;
using namespace aptq::bench;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  configure_threads(args);
  const obs::ObsOptions obs_options = obs::configure_observability(args);
  obs::RunReport report;
  report.add_config("tool", std::string("table1_perplexity"));
  report.add_config("model", std::string("llama7b-sim"));
  std::printf("=== Table 1: Perplexity of quantized llama7b-sim on "
              "C4Sim / WikiSim ===\n\n");
  BenchContext ctx = make_context();
  std::printf("oracle entropy floor: C4Sim ppl %.3f, WikiSim ppl %.3f\n\n",
              std::exp(ctx.corpora->c4.oracle_eval_nll()),
              std::exp(ctx.corpora->wiki.oracle_eval_nll()));

  struct Spec {
    Method method;
    PipelineConfig cfg;
    const char* paper_c4;    // paper Table 1 reference (LLaMA-7B)
    const char* paper_wiki;
  };
  std::vector<Spec> specs;
  {
    PipelineConfig cfg = paper_config();
    specs.push_back({Method::fp, cfg, "5.22", "5.68"});
    specs.push_back({Method::rtn, cfg, "-", "-"});
    specs.push_back({Method::gptq, cfg, "5.62", "8.14"});
    specs.push_back({Method::owq, cfg, "5.56", "7.15"});
    specs.push_back({Method::llm_qat, cfg, "7.40", "10.90"});
    PipelineConfig pb = cfg;
    pb.pbllm_salient_fraction = 0.2;
    specs.push_back({Method::pbllm, pb, "20.61", "17.19"});
    specs.push_back({Method::aptq, cfg, "5.23", "6.45"});
    PipelineConfig r75 = cfg;
    r75.ratio_high = 0.75;
    specs.push_back({Method::aptq_mixed, r75, "5.54", "6.54"});
    PipelineConfig r50 = cfg;
    r50.ratio_high = 0.50;
    specs.push_back({Method::aptq_mixed, r50, "6.24", "6.76"});
  }

  TextTable table({"Method", "Avg bit", "C4Sim", "WikiSim", "paper C4",
                   "paper Wiki2", "quant s"});
  for (const auto& spec : specs) {
    const PplRow row = run_ppl_row(ctx, spec.method, spec.cfg);
    table.add_row({row.method, fmt_fixed(row.avg_bits, 2),
                   fmt_fixed(row.c4, 3), fmt_fixed(row.wiki, 3),
                   spec.paper_c4, spec.paper_wiki,
                   fmt_fixed(row.seconds, 1)});
    const std::string tag =
        row.method + "@" + fmt_fixed(row.avg_bits, 2) + "b";
    report.add_eval(tag + "/C4Sim", row.c4, std::log(row.c4), 0);
    report.add_eval(tag + "/WikiSim", row.wiki, std::log(row.wiki), 0);
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n%s\n", table.render().c_str());
  std::printf(
      "shape checks: APTQ(4.0) ~= FP; APTQ < GPTQ < RTN at matched bits;\n"
      "APTQ mixed precision degrades gracefully; PB-LLM-20%% far worse.\n");
  obs::finalize_observability(obs_options, report);
  return 0;
}
