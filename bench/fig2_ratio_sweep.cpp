// Reproduces Figure 2: C4 perplexity of APTQ across 4-bit utilization
// ratios, against the fixed 4-bit PTQ/QAT baselines. Emits both a table and
// a CSV block for replotting.
#include <cstdio>

#include "bench_common.hpp"

using namespace aptq;
using namespace aptq::bench;

int main() {
  std::printf("=== Figure 2: C4Sim perplexity vs APTQ 4-bit ratio ===\n\n");
  BenchContext ctx = make_context();

  // Fixed-method reference lines.
  const PipelineConfig base = paper_config();
  struct Ref {
    const char* name;
    double ppl;
  };
  std::vector<Ref> refs;
  for (const Method m :
       {Method::fp, Method::rtn, Method::gptq, Method::owq,
        Method::llm_qat}) {
    const PplRow row = run_ppl_row(ctx, m, base);
    refs.push_back({nullptr, row.c4});
    std::printf("baseline %-10s (avg %.2f bits): C4Sim ppl %.3f\n",
                row.method.c_str(), row.avg_bits, row.c4);
    std::fflush(stdout);
  }

  std::printf("\nAPTQ sweep:\n");
  TextTable table({"4-bit ratio R", "Avg bit", "C4Sim ppl"});
  std::printf("csv: ratio,avg_bits,ppl\n");
  for (const double r : {1.0, 0.9, 0.8, 0.75, 0.7, 0.6, 0.5, 0.4}) {
    PipelineConfig cfg = base;
    cfg.ratio_high = r;
    const Method m = r >= 1.0 ? Method::aptq : Method::aptq_mixed;
    const PplRow row = run_ppl_row(ctx, m, cfg);
    table.add_row({fmt_percent(r, 0), fmt_fixed(row.avg_bits, 2),
                   fmt_fixed(row.c4, 3)});
    std::printf("csv: %.2f,%.3f,%.4f\n", r, row.avg_bits, row.c4);
    std::fflush(stdout);
  }
  std::printf("\n%s\n", table.render().c_str());
  std::printf(
      "shape check: perplexity rises monotonically as R falls, staying\n"
      "within a narrow band of FP down to R~0.5 (paper Figure 2).\n");
  return 0;
}
