// Measures the tracing overhead on the quantization hot path: the SYRK
// Hessian accumulation with its obs::TraceSpan, run with tracing disabled
// (the production default) and enabled. Writes BENCH_obs.json with the
// measured overhead against the 3% budget the observability layer promises
// (docs/OBSERVABILITY.md). Always exits 0 — the JSON carries the verdict —
// so a noisy CI box doesn't hard-fail the build. Flags: `--out PATH`.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <string_view>

#include "obs/control.hpp"
#include "obs/trace.hpp"
#include "quant/hessian.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace aptq {
namespace {

constexpr std::size_t kTokens = 768;
constexpr std::size_t kDim = 256;
constexpr int kWarmups = 2;
constexpr int kReps = 5;
constexpr double kBudgetPct = 3.0;

// One timed repetition: several accumulation passes per timer read so the
// measured interval is long enough that scheduler jitter on a busy host
// stays small relative to it (the instrumented span sits inside
// add_matrix, so every pass pays it).
constexpr int kPassesPerRep = 8;

double run_once(const Matrix& x) {
  HessianAccumulator acc(kDim);
  Timer timer;
  for (int i = 0; i < kPassesPerRep; ++i) {
    acc.add_matrix(x);
  }
  return timer.seconds() / kPassesPerRep;
}

// min-of-kReps after kWarmups discarded warmups.
double measure(const Matrix& x) {
  for (int i = 0; i < kWarmups; ++i) {
    run_once(x);
  }
  double best = run_once(x);
  for (int i = 1; i < kReps; ++i) {
    best = std::min(best, run_once(x));
  }
  return best;
}

}  // namespace
}  // namespace aptq

int main(int argc, char** argv) {
  using namespace aptq;
  std::string out_path = "BENCH_obs.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view(argv[i]) == "--out") {
      out_path = argv[i + 1];
    }
  }

  Rng rng(23);
  const Matrix x = Matrix::randn(kTokens, kDim, rng);

  // Alternate the two modes across rounds so slow clock/thermal drift on
  // the host can't masquerade as tracing overhead.
  double disabled_s = 1e300;
  double enabled_s = 1e300;
  for (int round = 0; round < 3; ++round) {
    obs::set_tracing(false);
    disabled_s = std::min(disabled_s, measure(x));
    obs::set_tracing(true);
    enabled_s = std::min(enabled_s, measure(x));
  }
  obs::set_tracing(false);
  obs::reset_trace_events();

  const double overhead_pct =
      disabled_s > 0.0 ? (enabled_s / disabled_s - 1.0) * 100.0 : 0.0;
  const bool pass = overhead_pct < kBudgetPct;

  std::printf("hessian_accumulate %zux%zu, min of %d after %d warmups\n",
              kTokens, kDim, kReps, kWarmups);
  std::printf("tracing disabled: %.6fs  enabled: %.6fs  overhead: %+.2f%% "
              "(budget %.1f%%) -> %s\n",
              disabled_s, enabled_s, overhead_pct, kBudgetPct,
              pass ? "PASS" : "FAIL");

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "obs_overhead: cannot write %s\n", out_path.c_str());
    return 0;
  }
  out << "{\n";
  out << "  \"workload\": \"hessian_accumulate_" << kTokens << "x" << kDim
      << "\",\n";
  out << "  \"timing\": \"min_of_" << kReps << "_after_" << kWarmups
      << "_warmups\",\n";
  out << "  \"disabled_seconds\": " << disabled_s << ",\n";
  out << "  \"enabled_seconds\": " << enabled_s << ",\n";
  out << "  \"overhead_pct\": " << overhead_pct << ",\n";
  out << "  \"budget_pct\": " << kBudgetPct << ",\n";
  out << "  \"pass\": " << (pass ? "true" : "false") << "\n";
  out << "}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
