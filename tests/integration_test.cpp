// End-to-end integration: train a micro model to competence, quantize it
// with the full pipeline, and verify the cross-method orderings the paper's
// evaluation rests on (perplexity, mixed precision, allocator ablation,
// zero-shot scoring above chance).
#include <gtest/gtest.h>

#include <cmath>

#include "core/pipeline.hpp"
#include "eval/harness.hpp"
#include "eval/perplexity.hpp"
#include "eval/tasks.hpp"
#include "model/sampler.hpp"
#include "train/trainer.hpp"

namespace aptq {
namespace {

// One trained micro model + corpus shared by the whole suite (expensive to
// build, so construct once).
class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    MarkovSpec spec;
    spec.seed = 0xFEED;
    spec.vocab_size = 32;
    spec.topics = 2;
    spec.branching = 4;
    spec.latent_rank = 8;
    corpus_ = new Corpus("micro-c4", spec, 60000, 6000, 0xD00D);

    ModelConfig mc;
    mc.vocab_size = 32;
    mc.dim = 24;
    mc.n_layers = 3;
    mc.n_heads = 2;
    mc.ffn_dim = 48;
    model_ = new Model(Model::init(mc, 0xBEEF));

    TrainConfig tc;
    tc.steps = 700;
    tc.batch_size = 6;
    tc.seq_len = 32;
    tc.peak_lr = 8e-3f;
    tc.seed = 5;
    train_model(*model_, *corpus_, tc);
  }

  static void TearDownTestSuite() {
    delete corpus_;
    delete model_;
    corpus_ = nullptr;
    model_ = nullptr;
  }

  static PipelineConfig pipeline_config() {
    PipelineConfig cfg;
    cfg.calib_segments = 24;
    cfg.calib_seq_len = 32;
    cfg.group_size = 8;
    return cfg;
  }

  static double ppl_of(const QuantizedModel& qm) {
    const auto segs = corpus_->eval_segments(32, 48);
    return evaluate_perplexity(qm.model, segs, qm.forward_options)
        .perplexity;
  }

  static Corpus* corpus_;
  static Model* model_;
};

Corpus* IntegrationTest::corpus_ = nullptr;
Model* IntegrationTest::model_ = nullptr;

TEST_F(IntegrationTest, TrainingBeatUniform) {
  const QuantizedModel fp =
      quantize_model(*model_, *corpus_, Method::fp, pipeline_config());
  const double ppl = ppl_of(fp);
  EXPECT_LT(ppl, 14.0);  // far below uniform (32)
  EXPECT_GT(ppl, std::exp(corpus_->oracle_eval_nll()) * 0.9);
}

TEST_F(IntegrationTest, FourBitNearLossless) {
  const auto cfg = pipeline_config();
  const double fp = ppl_of(quantize_model(*model_, *corpus_, Method::fp, cfg));
  const double aptq =
      ppl_of(quantize_model(*model_, *corpus_, Method::aptq, cfg));
  EXPECT_LT(aptq, fp * 1.10);
}

TEST_F(IntegrationTest, SecondOrderBeatsRtnAtTwoBits) {
  PipelineConfig cfg = pipeline_config();
  cfg.bits = 2;
  const double rtn =
      ppl_of(quantize_model(*model_, *corpus_, Method::rtn, cfg));
  const double gptq =
      ppl_of(quantize_model(*model_, *corpus_, Method::gptq, cfg));
  const double aptq =
      ppl_of(quantize_model(*model_, *corpus_, Method::aptq, cfg));
  EXPECT_LT(gptq, rtn);
  EXPECT_LT(aptq, rtn);
}

TEST_F(IntegrationTest, MixedPrecisionDegradesMonotonically) {
  const auto cfg = pipeline_config();
  double prev = 0.0;
  for (const double r : {1.0, 0.75, 0.5, 0.25}) {
    PipelineConfig c = cfg;
    c.ratio_high = r;
    const double ppl =
        ppl_of(quantize_model(*model_, *corpus_, Method::aptq_mixed, c));
    EXPECT_GT(ppl, prev * 0.98) << "R=" << r;  // allow small non-monotone noise
    prev = ppl;
  }
}

TEST_F(IntegrationTest, TraceAllocationBeatsBlockwise) {
  // Table 3's claim, end to end.
  PipelineConfig cfg = pipeline_config();
  cfg.ratio_high = 0.5;
  const double aptq =
      ppl_of(quantize_model(*model_, *corpus_, Method::aptq_mixed, cfg));
  const double blockwise = ppl_of(
      quantize_model(*model_, *corpus_, Method::blockwise_mixed, cfg));
  EXPECT_LT(aptq, blockwise * 1.02);
}

TEST_F(IntegrationTest, PbLlmWorseThanAptqAtComparableSize) {
  PipelineConfig cfg = pipeline_config();
  cfg.pbllm_salient_fraction = 0.2;
  const double pbllm =
      ppl_of(quantize_model(*model_, *corpus_, Method::pbllm, cfg));
  PipelineConfig mixed = pipeline_config();
  mixed.ratio_high = 0.75;
  const double aptq =
      ppl_of(quantize_model(*model_, *corpus_, Method::aptq_mixed, mixed));
  EXPECT_LT(aptq, pbllm);
}

TEST_F(IntegrationTest, ZeroShotAboveChanceAndOrdered) {
  TaskGenConfig tcfg;
  tcfg.n_items = 60;
  tcfg.context_len = 12;
  tcfg.continuation_len = 6;
  const auto suite = generate_task_suite(*corpus_, tcfg);
  const ZeroShotReport fp = evaluate_zero_shot(*model_, suite);
  // Trained model is far above chance on the easy task and above chance on
  // average (chance: piqa/wino 0.5, others 0.25 → mean 0.35).
  EXPECT_GT(fp.tasks[2].accuracy, 0.6);  // arc-easy
  EXPECT_GT(fp.mean_accuracy, 0.40);

  // Heavy quantization costs accuracy.
  PipelineConfig cfg = pipeline_config();
  cfg.ratio_high = 0.25;
  const QuantizedModel crushed =
      quantize_model(*model_, *corpus_, Method::aptq_mixed, cfg);
  const ZeroShotReport q = evaluate_zero_shot(crushed.model, suite);
  EXPECT_LE(q.mean_accuracy, fp.mean_accuracy + 0.03);
}

TEST_F(IntegrationTest, SamplerProducesLearnedStatistics) {
  // Sequences sampled from the trained model should score far better under
  // the model than uniform-random sequences do.
  Rng rng(9);
  SampleConfig scfg;
  const TokenSeq sampled = sample_from_model(*model_, 32, rng, scfg);
  EXPECT_EQ(sampled.size(), 32u);
  TokenSeq random(32);
  for (auto& t : random) {
    t = static_cast<TokenId>(rng.index(32));
  }
  const std::vector<TokenSeq> s1 = {sampled};
  const std::vector<TokenSeq> s2 = {random};
  EXPECT_LT(evaluate_perplexity(*model_, s1).nll,
            evaluate_perplexity(*model_, s2).nll);
}

TEST_F(IntegrationTest, PackedStorageMatchesAverageBits) {
  const auto cfg = pipeline_config();
  const QuantizedModel q4 =
      quantize_model(*model_, *corpus_, Method::gptq, cfg);
  PipelineConfig c2 = cfg;
  c2.bits = 2;
  const QuantizedModel q2 =
      quantize_model(*model_, *corpus_, Method::gptq, c2);
  EXPECT_LT(q2.packed_bytes(), q4.packed_bytes());
  // Total packed bits per weight ≈ nominal + group overhead.
  std::size_t weights = 0;
  for (const auto& l : q4.layers) {
    weights += l.weight_count;
  }
  const double bits_per_weight =
      8.0 * static_cast<double>(q4.packed_bytes()) /
      static_cast<double>(weights);
  EXPECT_GT(bits_per_weight, 4.0);
  // Nominal 4 bits plus per-group overhead (8 bytes per group, matching the
  // serialized layout) at the pipeline's group size.
  EXPECT_LT(bits_per_weight, 13.0);
}

}  // namespace
}  // namespace aptq
