// Unit tests for src/quant/qformat: grid fitting, round-trips, FP4 E2M1
// semantics, bit-packing, storage accounting, and the blocked-format
// property suite (random matrices × group sizes × bit widths, edge rows,
// byte-identical serialization).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "quant/qformat.hpp"

namespace aptq {
namespace {

QuantSpec spec_of(int bits, std::size_t group = 0, bool symmetric = false) {
  QuantSpec s;
  s.bits = bits;
  s.group_size = group;
  s.symmetric = symmetric;
  return s;
}

TEST(QuantSpec, Validation) {
  EXPECT_NO_THROW(spec_of(4).validate());
  EXPECT_THROW(spec_of(0).validate(), Error);
  EXPECT_THROW(spec_of(9).validate(), Error);
  QuantSpec fp4;
  fp4.format = QFormat::fp4_e2m1;
  fp4.bits = 3;
  EXPECT_THROW(fp4.validate(), Error);
  fp4.bits = 4;
  EXPECT_NO_THROW(fp4.validate());
}

TEST(GroupParams, AsymmetricCoversRange) {
  const std::vector<float> v = {-1.0f, -0.2f, 0.4f, 2.0f};
  const auto spec = spec_of(4);
  const GroupParams p = fit_group_params(v, spec);
  // Extremes must round-trip within one step.
  for (const float x : v) {
    const float q = quantize_dequantize_value(x, p, spec);
    EXPECT_NEAR(q, x, p.scale * 0.5f + 1e-6f);
  }
}

TEST(GroupParams, GridContainsExactZero) {
  const std::vector<float> v = {0.3f, 0.7f, 1.9f};  // all positive
  const auto spec = spec_of(4);
  const GroupParams p = fit_group_params(v, spec);
  EXPECT_EQ(quantize_dequantize_value(0.0f, p, spec), 0.0f);
}

TEST(GroupParams, ConstantGroupIsExact) {
  const std::vector<float> v = {0.5f, 0.5f, 0.5f};
  const auto spec = spec_of(4);
  const GroupParams p = fit_group_params(v, spec);
  EXPECT_NEAR(quantize_dequantize_value(0.5f, p, spec), 0.5f, 1e-4f);
}

TEST(GroupParams, AllZeroGroupIsIdentity) {
  const std::vector<float> v = {0.0f, 0.0f};
  const auto spec = spec_of(2);
  const GroupParams p = fit_group_params(v, spec);
  EXPECT_EQ(quantize_dequantize_value(0.0f, p, spec), 0.0f);
}

TEST(GroupParams, SymmetricIsOddAroundZero) {
  const std::vector<float> v = {-2.0f, 1.0f, 0.5f};
  const auto spec = spec_of(4, 0, /*symmetric=*/true);
  const GroupParams p = fit_group_params(v, spec);
  const float q1 = quantize_dequantize_value(0.7f, p, spec);
  const float q2 = quantize_dequantize_value(-0.7f, p, spec);
  EXPECT_NEAR(q1, -q2, 1e-6f);
  EXPECT_EQ(quantize_dequantize_value(0.0f, p, spec), 0.0f);
}

class BitWidthRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(BitWidthRoundTrip, ErrorBoundedByHalfStep) {
  const int bits = GetParam();
  Rng rng(bits);
  std::vector<float> v(64);
  for (auto& x : v) {
    x = rng.normal(0.0f, 1.0f);
  }
  const auto spec = spec_of(bits);
  const GroupParams p = fit_group_params(v, spec);
  for (const float x : v) {
    const float q = quantize_dequantize_value(x, p, spec);
    EXPECT_LE(std::fabs(q - x), p.scale * 0.5f + 1e-5f) << "bits=" << bits;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, BitWidthRoundTrip,
                         ::testing::Values(2, 3, 4, 5, 8));

TEST(BitWidths, ErrorShrinksWithMoreBits) {
  Rng rng(7);
  std::vector<float> v(256);
  for (auto& x : v) {
    x = rng.normal(0.0f, 1.0f);
  }
  double prev_err = 1e9;
  for (const int bits : {2, 3, 4, 6, 8}) {
    const auto spec = spec_of(bits);
    const GroupParams p = fit_group_params(v, spec);
    double err = 0.0;
    for (const float x : v) {
      const float q = quantize_dequantize_value(x, p, spec);
      err += (q - x) * (q - x);
    }
    EXPECT_LT(err, prev_err) << "bits=" << bits;
    prev_err = err;
  }
}

TEST(Fp4, GridMagnitudesAreE2M1) {
  const auto mags = fp4_magnitudes();
  ASSERT_EQ(mags.size(), 8u);
  EXPECT_EQ(mags[0], 0.0f);
  EXPECT_EQ(mags[7], 6.0f);
  EXPECT_EQ(mags[3], 1.5f);
}

TEST(Fp4, SnapsToScaledGrid) {
  QuantSpec spec;
  spec.format = QFormat::fp4_e2m1;
  const std::vector<float> v = {-6.0f, -0.4f, 0.0f, 1.4f, 6.0f};
  const GroupParams p = fit_group_params(v, spec);
  EXPECT_FLOAT_EQ(p.scale, 1.0f);  // max |v| = 6 maps exactly
  EXPECT_FLOAT_EQ(quantize_dequantize_value(6.0f, p, spec), 6.0f);
  EXPECT_FLOAT_EQ(quantize_dequantize_value(-6.0f, p, spec), -6.0f);
  EXPECT_FLOAT_EQ(quantize_dequantize_value(0.0f, p, spec), 0.0f);
  EXPECT_FLOAT_EQ(quantize_dequantize_value(1.4f, p, spec), 1.5f);
  EXPECT_FLOAT_EQ(quantize_dequantize_value(-0.4f, p, spec), -0.5f);
}

TEST(Fp4, NonUniformResolution) {
  // E2M1 has finer steps near zero than near the max — check 0.25 rounds to
  // 0 or 0.5 while 5.0 rounds to one of {4, 6}.
  QuantSpec spec;
  spec.format = QFormat::fp4_e2m1;
  const std::vector<float> v = {6.0f};
  const GroupParams p = fit_group_params(v, spec);
  const float near_zero = quantize_dequantize_value(0.25f, p, spec);
  EXPECT_TRUE(near_zero == 0.0f || near_zero == 0.5f);
  const float near_max = quantize_dequantize_value(5.0f, p, spec);
  EXPECT_TRUE(near_max == 4.0f || near_max == 6.0f);
}

TEST(RowQuant, GroupsGetIndependentScales) {
  // First group small values, second group large: per-group scales must
  // give the small group fine resolution.
  Matrix w(1, 8);
  for (int i = 0; i < 4; ++i) {
    w(0, static_cast<std::size_t>(i)) = 0.01f * static_cast<float>(i + 1);
  }
  for (int i = 4; i < 8; ++i) {
    w(0, static_cast<std::size_t>(i)) = 10.0f * static_cast<float>(i - 3);
  }
  Matrix grouped = w;
  const auto params4 = quantize_dequantize_row(grouped.row(0), spec_of(4, 4));
  EXPECT_EQ(params4.size(), 2u);
  Matrix whole = w;
  quantize_dequantize_row(whole.row(0), spec_of(4, 0));
  double err_grouped = 0.0, err_whole = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    err_grouped += std::fabs(grouped(0, i) - w(0, i));
    err_whole += std::fabs(whole(0, i) - w(0, i));
  }
  EXPECT_LT(err_grouped, err_whole);
}

TEST(RowQuant, GroupCountArithmetic) {
  EXPECT_EQ(group_count(48, spec_of(4, 16)), 3u);
  EXPECT_EQ(group_count(50, spec_of(4, 16)), 4u);  // ragged tail group
  EXPECT_EQ(group_count(48, spec_of(4, 0)), 1u);
}

TEST(MatrixQuant, AppliesToEveryRow) {
  Rng rng(9);
  Matrix w = Matrix::randn(6, 32, rng);
  const Matrix orig = w;
  quantize_dequantize_matrix(w, spec_of(2, 8));
  // Every row changed (2-bit is lossy on gaussian data)...
  for (std::size_t r = 0; r < 6; ++r) {
    double diff = 0.0;
    for (std::size_t c = 0; c < 32; ++c) {
      diff += std::fabs(w(r, c) - orig(r, c));
    }
    EXPECT_GT(diff, 0.0);
  }
  // ...and is idempotent (already on the grid).
  Matrix again = w;
  quantize_dequantize_matrix(again, spec_of(2, 8));
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(again.flat()[i], w.flat()[i], 1e-5f);
  }
}

class PackedRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(PackedRoundTrip, DequantMatchesFakeQuant) {
  const auto [bits, group] = GetParam();
  Rng rng(42 + static_cast<std::uint64_t>(bits));
  const Matrix w = Matrix::randn(8, 48, rng);
  const auto spec = spec_of(bits, group);
  const QuantizedLinear packed(w, spec);
  Matrix fake = w;
  quantize_dequantize_matrix(fake, spec);
  const Matrix unpacked = packed.dequantize();
  ASSERT_EQ(unpacked.rows(), 8u);
  ASSERT_EQ(unpacked.cols(), 48u);
  for (std::size_t i = 0; i < fake.size(); ++i) {
    EXPECT_NEAR(unpacked.flat()[i], fake.flat()[i], 1e-5f)
        << "bits=" << bits << " group=" << group;
  }
}

INSTANTIATE_TEST_SUITE_P(
    BitsAndGroups, PackedRoundTrip,
    ::testing::Combine(::testing::Values(2, 3, 4, 8),
                       ::testing::Values(std::size_t{8}, std::size_t{16},
                                         std::size_t{0})));

TEST(Packed, Fp4RoundTrip) {
  Rng rng(11);
  const Matrix w = Matrix::randn(4, 32, rng);
  QuantSpec spec;
  spec.format = QFormat::fp4_e2m1;
  spec.group_size = 8;
  const QuantizedLinear packed(w, spec);
  Matrix fake = w;
  quantize_dequantize_matrix(fake, spec);
  const Matrix unpacked = packed.dequantize();
  for (std::size_t i = 0; i < fake.size(); ++i) {
    EXPECT_NEAR(unpacked.flat()[i], fake.flat()[i], 1e-5f);
  }
}

TEST(Packed, StorageShrinksWithBits) {
  Rng rng(12);
  const Matrix w = Matrix::randn(16, 64, rng);
  const std::size_t b2 = QuantizedLinear(w, spec_of(2, 16)).storage_bytes();
  const std::size_t b4 = QuantizedLinear(w, spec_of(4, 16)).storage_bytes();
  const std::size_t b8 = QuantizedLinear(w, spec_of(8, 16)).storage_bytes();
  EXPECT_LT(b2, b4);
  EXPECT_LT(b4, b8);
  // All far below fp32.
  EXPECT_LT(b8, w.size() * sizeof(float));
}

TEST(Packed, BitsPerWeightNearNominal) {
  Rng rng(13);
  const Matrix w = Matrix::randn(32, 128, rng);
  const QuantizedLinear q4(w, spec_of(4, 16));
  // 4 bits + 8 bytes (f32 scale + i32 zero-point, matching the serialized
  // layout) per 16-weight group = 4 + 4 = 8 bits.
  EXPECT_NEAR(q4.bits_per_weight(), 8.0, 0.2);
  const QuantizedLinear q2(w, spec_of(2, 16));
  EXPECT_NEAR(q2.bits_per_weight(), 6.0, 0.2);
}

TEST(Packed, FusedMatmulMatchesDequantMatmul) {
  Rng rng(14);
  const Matrix w = Matrix::randn(10, 24, rng);  // out-major
  const Matrix x = Matrix::randn(5, 24, rng);
  const QuantizedLinear packed(w, spec_of(4, 8));
  const Matrix fused = packed.matmul_transposed(x);
  const Matrix wdq = packed.dequantize();
  ASSERT_EQ(fused.rows(), 5u);
  ASSERT_EQ(fused.cols(), 10u);
  for (std::size_t n = 0; n < 5; ++n) {
    for (std::size_t r = 0; r < 10; ++r) {
      float ref = 0.0f;
      for (std::size_t c = 0; c < 24; ++c) {
        ref += x(n, c) * wdq(r, c);
      }
      EXPECT_NEAR(fused(n, r), ref, 1e-4f);
    }
  }
  const Matrix bad(5, 23);
  EXPECT_THROW(packed.matmul_transposed(bad), Error);
}

// Regression for the symmetric grid clipping bug: the grid used to span
// codes [0, 2^bits - 1] around a centered zero-point, which made +max_abs
// unrepresentable (it clipped to max_abs - scale). The fixed grid reserves
// code 0 so ±max_abs are both exact at every width.
class SymmetricExtremes : public ::testing::TestWithParam<int> {};

TEST_P(SymmetricExtremes, MaxAbsRepresentableWithBothSigns) {
  const int bits = GetParam();
  const float max_abs = 1.75f;
  const std::vector<float> v = {max_abs, -0.4f, 0.9f};
  const auto spec = spec_of(bits, 0, /*symmetric=*/true);
  const GroupParams p = fit_group_params(v, spec);
  const float qp = quantize_dequantize_value(max_abs, p, spec);
  const float qn = quantize_dequantize_value(-max_abs, p, spec);
  EXPECT_NEAR(qp, max_abs, 1e-5f) << "bits " << bits;
  EXPECT_NEAR(qn, -max_abs, 1e-5f) << "bits " << bits;
  EXPECT_EQ(qp, -qn) << "bits " << bits;
}

INSTANTIATE_TEST_SUITE_P(Bits, SymmetricExtremes, ::testing::Range(2, 9));

TEST(Packed, MatvecMatchesDequantizedGemv) {
  Rng rng(16);
  // 300 columns cross the GEMV dequant chunk (128) with a ragged tail; the
  // spec list covers grouped int grids, whole-row groups, and fp4.
  std::vector<QuantSpec> specs = {spec_of(4, 16), spec_of(3, 8),
                                  spec_of(2, 0), spec_of(8, 16, true)};
  QuantSpec fp4;
  fp4.format = QFormat::fp4_e2m1;
  fp4.bits = 4;
  fp4.group_size = 16;
  specs.push_back(fp4);
  const Matrix w = Matrix::randn(9, 300, rng);
  const Matrix x = Matrix::randn(1, 300, rng);
  for (const QuantSpec& spec : specs) {
    const QuantizedLinear packed(w, spec);
    const Matrix wdq = packed.dequantize();
    std::vector<float> y(w.rows());
    packed.matvec_transposed(x.row(0), y);
    for (std::size_t r = 0; r < w.rows(); ++r) {
      float ref = 0.0f;
      for (std::size_t c = 0; c < w.cols(); ++c) {
        ref += x(0, c) * wdq(r, c);
      }
      EXPECT_NEAR(y[r], ref, 1e-4f) << "row " << r;
    }
    // Single-row matmul_transposed routes through the same kernel.
    const Matrix fused = packed.matmul_transposed(x);
    for (std::size_t r = 0; r < w.rows(); ++r) {
      EXPECT_EQ(fused(0, r), y[r]);
    }
  }
}

TEST(Packed, MatvecRejectsBadShapes) {
  Rng rng(17);
  const QuantizedLinear packed(Matrix::randn(4, 12, rng), spec_of(4, 4));
  std::vector<float> x(12), y(4);
  EXPECT_NO_THROW(packed.matvec_transposed(x, y));
  std::vector<float> short_x(11), short_y(3);
  EXPECT_THROW(packed.matvec_transposed(short_x, y), Error);
  EXPECT_THROW(packed.matvec_transposed(x, short_y), Error);
}

TEST(Packed, RaggedColumnsPack) {
  Rng rng(15);
  const Matrix w = Matrix::randn(3, 13, rng);  // 13 cols: ragged at 2 bits
  const QuantizedLinear packed(w, spec_of(2, 5));
  const Matrix unpacked = packed.dequantize();
  Matrix fake = w;
  quantize_dequantize_matrix(fake, spec_of(2, 5));
  for (std::size_t i = 0; i < fake.size(); ++i) {
    EXPECT_NEAR(unpacked.flat()[i], fake.flat()[i], 1e-5f);
  }
}

// ---- blocked-format property suite ----------------------------------------
//
// The blocked storage must be observationally identical to fake
// quantization for every (bits, group_size, row length) combination: the
// blocks are an encoding detail, never a semantics change.

// Serialize a linear and return the raw record bytes.
std::vector<std::uint8_t> record_bytes(const QuantizedLinear& q) {
  const auto path =
      (std::filesystem::temp_directory_path() / "aptq_qfmt_prop.bin").string();
  {
    BinaryWriter writer(path);
    q.serialize(writer);
  }
  std::ifstream in(path, std::ios::binary);
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  std::remove(path.c_str());
  return bytes;
}

class BlockedProperty
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(BlockedProperty, RandomMatricesRoundTripWithinGridTolerance) {
  const auto [bits, group] = GetParam();
  // Row lengths straddle the group size: shorter than one group, exact
  // multiples, and ragged tails.
  for (const std::size_t cols :
       {group / 2 + 1, group, 2 * group, 2 * group + 3, std::size_t{129}}) {
    Rng rng(100 + static_cast<std::uint64_t>(bits) * 7 + group + cols);
    const Matrix w = Matrix::randn(5, cols, rng);
    const auto spec = spec_of(bits, group);
    const QuantizedLinear packed(w, spec);
    Matrix fake = w;
    quantize_dequantize_matrix(fake, spec);
    const Matrix unpacked = packed.dequantize();
    for (std::size_t i = 0; i < fake.size(); ++i) {
      ASSERT_NEAR(unpacked.flat()[i], fake.flat()[i], 1e-6f)
          << "bits=" << bits << " group=" << group << " cols=" << cols;
    }
    // Grid tolerance against the original values: every weight within half
    // a step of its group's grid (the mean scale bounds a "typical" step;
    // per-group check uses the matrix-wide max via mean upper bound).
    const QuantizedLinear reloaded = [&] {
      const auto path = (std::filesystem::temp_directory_path() /
                         "aptq_qfmt_prop_rt.bin").string();
      {
        BinaryWriter writer(path);
        packed.serialize(writer);
      }
      BinaryReader reader(path);
      QuantizedLinear q = QuantizedLinear::deserialize(reader);
      std::remove(path.c_str());
      return q;
    }();
    EXPECT_TRUE(reloaded == packed);
    // Byte-identical re-serialization (acceptance: v3 round-trips exactly).
    EXPECT_EQ(record_bytes(reloaded), record_bytes(packed));
  }
}

INSTANTIATE_TEST_SUITE_P(
    GroupsAndWidths, BlockedProperty,
    ::testing::Combine(::testing::Values(2, 3, 4, 8),
                       ::testing::Values(std::size_t{8}, std::size_t{16},
                                         std::size_t{32}, std::size_t{64})));

TEST(BlockedProperty, EdgeRowsQuantizeExactly) {
  // Rows the grid must represent without error: all-zero, single repeated
  // value, and alternating ±max_abs (grid endpoints).
  constexpr std::size_t kCols = 37;  // ragged for every group size below
  Matrix w(4, kCols);
  const float kMax = 3.25f;
  for (std::size_t c = 0; c < kCols; ++c) {
    w(0, c) = 0.0f;
    w(1, c) = 0.8125f;
    w(2, c) = (c % 2 == 0) ? kMax : -kMax;
    w(3, c) = (c % 2 == 0) ? kMax : 0.0f;
  }
  for (const int bits : {2, 3, 4, 8}) {
    for (const std::size_t group : {std::size_t{8}, std::size_t{16}}) {
      for (const bool symmetric : {false, true}) {
        const auto spec = spec_of(bits, group, symmetric);
        const QuantizedLinear packed(w, spec);
        const Matrix dq = packed.dequantize();
        const std::string ctx = "bits=" + std::to_string(bits) +
                                " group=" + std::to_string(group) +
                                " sym=" + std::to_string(symmetric);
        // Symmetric grids reserve code 0 so ±max_abs are exact grid
        // endpoints; asymmetric grids snap the zero-point to an integer
        // code, which can shift ±max_abs off-grid by up to half a step.
        const float step = 2.0f * kMax / static_cast<float>((1 << bits) - 1);
        const float max_tol = symmetric ? 1e-5f : step * 0.5f + 1e-4f;
        for (std::size_t c = 0; c < kCols; ++c) {
          // All-zero rows are exactly zero (the grid always contains 0).
          EXPECT_EQ(dq(0, c), 0.0f) << ctx;
          // A constant row round-trips to itself (constant is a grid point
          // in both grid constructions).
          EXPECT_NEAR(dq(1, c), w(1, c), 1e-5f) << ctx;
          EXPECT_NEAR(dq(2, c), w(2, c), max_tol) << ctx << " col " << c;
        }
        // Row 3 spans [0, max]: endpoints representable on asymmetric grids.
        if (!symmetric) {
          EXPECT_NEAR(dq(3, 0), kMax, 1e-5f) << ctx;
          EXPECT_NEAR(dq(3, 1), 0.0f, 1e-5f) << ctx;
        }
      }
    }
  }
}

TEST(BlockedProperty, GroupSizeNormalizesToRowLength) {
  Rng rng(55);
  const Matrix w = Matrix::randn(3, 20, rng);
  // 0 (whole row) and any group larger than the row mean the same thing;
  // the stored spec and the serialized record must agree exactly.
  const QuantizedLinear whole(w, spec_of(4, 0));
  const QuantizedLinear large(w, spec_of(4, 64));
  const QuantizedLinear exact(w, spec_of(4, 20));
  EXPECT_EQ(whole.spec().group_size, 20u);
  EXPECT_EQ(large.spec().group_size, 20u);
  EXPECT_TRUE(whole == exact);
  EXPECT_TRUE(large == exact);
  EXPECT_EQ(record_bytes(whole), record_bytes(exact));
}

TEST(BlockedProperty, KernelPathCoversAffineNibbleAndByteWidths) {
  Rng rng(56);
  const Matrix w = Matrix::randn(2, 16, rng);
  EXPECT_TRUE(QuantizedLinear(w, spec_of(3, 8)).has_kernel_path());
  EXPECT_TRUE(QuantizedLinear(w, spec_of(4, 8)).has_kernel_path());
  EXPECT_TRUE(QuantizedLinear(w, spec_of(8, 8)).has_kernel_path());
  EXPECT_FALSE(QuantizedLinear(w, spec_of(2, 8)).has_kernel_path());
  QuantSpec fp4;
  fp4.format = QFormat::fp4_e2m1;
  fp4.group_size = 8;
  EXPECT_FALSE(QuantizedLinear(w, fp4).has_kernel_path());
  // The view mirrors the blocked geometry.
  const QuantizedLinear q(w, spec_of(4, 8));
  const QBlock b = q.block_view();
  EXPECT_EQ(b.rows, 2u);
  EXPECT_EQ(b.cols, 16u);
  EXPECT_EQ(b.group_len, 8u);
  EXPECT_EQ(b.groups, 2u);
  EXPECT_EQ(b.bytes_per_group, 4u);
  EXPECT_EQ(b.bits, 4);
}

}  // namespace
}  // namespace aptq
