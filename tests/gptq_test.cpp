// Unit tests for the GPTQ solver: correctness against RTN, error
// compensation behaviour, grouping, act-order, dead/FP columns, and the
// reconstruction-error objective.
#include <gtest/gtest.h>

#include <cmath>

#include "quant/gptq.hpp"
#include "quant/hessian.hpp"
#include "tensor/ops.hpp"

namespace aptq {
namespace {

// Build a calibration Hessian from synthetic correlated activations.
Matrix calib_hessian(std::size_t d_in, std::size_t tokens, std::uint64_t seed,
                     Matrix* activations = nullptr) {
  Rng rng(seed);
  // Correlated inputs: x = z·M with a fixed mixing matrix.
  const Matrix mix = Matrix::randn(d_in, d_in, rng, 0.0f,
                                   1.0f / std::sqrt(static_cast<float>(d_in)));
  const Matrix z = Matrix::randn(tokens, d_in, rng);
  const Matrix x = matmul(z, mix);
  HessianAccumulator acc(d_in);
  acc.add_matrix(x);
  if (activations != nullptr) {
    *activations = x;
  }
  return acc.finalized();
}

GptqConfig config_of(int bits, std::size_t group = 8,
                     std::size_t block = 8) {
  GptqConfig c;
  c.spec.bits = bits;
  c.spec.group_size = group;
  c.block_size = block;
  return c;
}

TEST(Gptq, OutputIsOnTheGridShape) {
  Rng rng(1);
  const Matrix w = Matrix::randn(6, 16, rng);
  const Matrix h = calib_hessian(16, 64, 2);
  const GptqResult res = gptq_quantize(w, h, config_of(4));
  EXPECT_EQ(res.weight.rows(), 6u);
  EXPECT_EQ(res.weight.cols(), 16u);
  EXPECT_GT(res.proxy_loss, 0.0);
  for (const float v : res.weight.flat()) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(Gptq, BeatsRtnOnTheLayerObjective) {
  // The whole point of second-order quantization: lower tr(ΔW·H·ΔWᵀ).
  Rng rng(3);
  const Matrix w = Matrix::randn(12, 24, rng);
  const Matrix h = calib_hessian(24, 96, 4);
  for (const int bits : {2, 3, 4}) {
    const GptqResult res = gptq_quantize(w, h, config_of(bits));
    const Matrix rtn = rtn_quantize(w, config_of(bits).spec);
    const double gptq_err = reconstruction_error(w, res.weight, h);
    const double rtn_err = reconstruction_error(w, rtn, h);
    EXPECT_LT(gptq_err, rtn_err) << "bits=" << bits;
    EXPECT_NEAR(res.recon_error, gptq_err, 1e-6 + 0.01 * gptq_err);
  }
}

TEST(Gptq, ReducesActualOutputError) {
  // ||XW^T - XŴ^T|| on the calibration activations must improve over RTN.
  Rng rng(5);
  const Matrix w = Matrix::randn(10, 20, rng);
  Matrix x;
  const Matrix h = calib_hessian(20, 80, 6, &x);
  const GptqResult res = gptq_quantize(w, h, config_of(3));
  const Matrix rtn = rtn_quantize(w, config_of(3).spec);
  const Matrix y_ref = matmul(x, w, Trans::no, Trans::yes);
  const Matrix y_gptq = matmul(x, res.weight, Trans::no, Trans::yes);
  const Matrix y_rtn = matmul(x, rtn, Trans::no, Trans::yes);
  EXPECT_LT(frobenius_distance(y_ref, y_gptq),
            frobenius_distance(y_ref, y_rtn));
}

TEST(Gptq, IdentityHessianMatchesRtnError) {
  // With H = I the optimal update is no compensation beyond rounding order;
  // the Frobenius error of GPTQ and RTN should be essentially equal.
  Rng rng(7);
  const Matrix w = Matrix::randn(8, 16, rng);
  const Matrix h = Matrix::identity(16);
  const GptqResult res = gptq_quantize(w, h, config_of(4));
  const Matrix rtn = rtn_quantize(w, config_of(4).spec);
  EXPECT_NEAR(frobenius_distance(w, res.weight),
              frobenius_distance(w, rtn),
              0.15 * frobenius_distance(w, rtn) + 1e-6);
}

TEST(Gptq, MoreBitsLowerError) {
  Rng rng(8);
  const Matrix w = Matrix::randn(10, 24, rng);
  const Matrix h = calib_hessian(24, 64, 9);
  double prev = 1e18;
  for (const int bits : {2, 3, 4, 8}) {
    const double err =
        gptq_quantize(w, h, config_of(bits)).recon_error;
    EXPECT_LT(err, prev) << "bits=" << bits;
    prev = err;
  }
}

TEST(Gptq, BlockSizeDoesNotChangeResult) {
  // Lazy batching is exact: any block size gives identical output.
  Rng rng(10);
  const Matrix w = Matrix::randn(6, 24, rng);
  const Matrix h = calib_hessian(24, 64, 11);
  const GptqResult b4 = gptq_quantize(w, h, config_of(4, 8, 4));
  const GptqResult b8 = gptq_quantize(w, h, config_of(4, 8, 8));
  const GptqResult b24 = gptq_quantize(w, h, config_of(4, 8, 24));
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(b4.weight.flat()[i], b8.weight.flat()[i], 2e-4f);
    EXPECT_NEAR(b4.weight.flat()[i], b24.weight.flat()[i], 2e-4f);
  }
}

TEST(Gptq, DeadColumnsZeroed) {
  Rng rng(12);
  const Matrix w = Matrix::randn(5, 8, rng);
  Matrix h = calib_hessian(8, 32, 13);
  // Kill column 3.
  for (std::size_t i = 0; i < 8; ++i) {
    h(3, i) = 0.0f;
    h(i, 3) = 0.0f;
  }
  const GptqResult res = gptq_quantize(w, h, config_of(4));
  for (std::size_t r = 0; r < 5; ++r) {
    EXPECT_EQ(res.weight(r, 3), 0.0f);
  }
}

TEST(Gptq, FpColumnsSkipQuantization) {
  Rng rng(14);
  const Matrix w = Matrix::randn(6, 16, rng);
  const Matrix h = calib_hessian(16, 64, 15);
  // Column 0 is quantized first (no prior error lands on it), so it must
  // pass through exactly; later FP columns legitimately absorb compensation
  // updates from earlier quantized columns.
  GptqConfig cfg = config_of(2);
  cfg.fp_columns = {0, 7, 11};
  const GptqResult res = gptq_quantize(w, h, cfg);
  for (std::size_t r = 0; r < 6; ++r) {
    EXPECT_FLOAT_EQ(res.weight(r, 0), w(r, 0));
  }
  // Keeping weak columns helps the objective.
  GptqConfig plain = config_of(2);
  EXPECT_LT(res.recon_error, gptq_quantize(w, h, plain).recon_error);
  GptqConfig bad = config_of(2);
  bad.fp_columns = {99};
  EXPECT_THROW(gptq_quantize(w, h, bad), Error);
}

TEST(Gptq, AllFpColumnsIsIdentity) {
  // With every column in FP there is no rounding error anywhere, so the
  // solver must return the weights untouched (also under act_order).
  Rng rng(30);
  const Matrix w = Matrix::randn(5, 10, rng);
  const Matrix h = calib_hessian(10, 40, 31);
  for (const bool act_order : {false, true}) {
    GptqConfig cfg = config_of(2);
    cfg.act_order = act_order;
    for (std::size_t c = 0; c < 10; ++c) {
      cfg.fp_columns.push_back(c);
    }
    const GptqResult res = gptq_quantize(w, h, cfg);
    for (std::size_t i = 0; i < w.size(); ++i) {
      EXPECT_FLOAT_EQ(res.weight.flat()[i], w.flat()[i])
          << "act_order=" << act_order;
    }
    EXPECT_EQ(res.proxy_loss, 0.0);
  }
}

TEST(Gptq, ActOrderImprovesOrMatches) {
  Rng rng(16);
  const Matrix w = Matrix::randn(12, 32, rng);
  const Matrix h = calib_hessian(32, 128, 17);
  GptqConfig plain = config_of(2, 0);  // whole-row groups: permutation-safe
  GptqConfig ordered = plain;
  ordered.act_order = true;
  const double err_plain = gptq_quantize(w, h, plain).recon_error;
  const double err_ordered = gptq_quantize(w, h, ordered).recon_error;
  EXPECT_LT(err_ordered, err_plain * 1.25);  // never catastrophically worse
}

TEST(Gptq, ActOrderUnpermutesColumns) {
  // Results come back in the original column order: quantizing with a
  // near-lossless grid must land every column close to its own original.
  Rng rng(18);
  const Matrix w = Matrix::randn(4, 12, rng);
  const Matrix h = calib_hessian(12, 48, 19);
  GptqConfig cfg = config_of(8, 0);
  cfg.act_order = true;
  const GptqResult res = gptq_quantize(w, h, cfg);
  for (std::size_t c = 0; c < 12; ++c) {
    for (std::size_t r = 0; r < 4; ++r) {
      EXPECT_NEAR(res.weight(r, c), w(r, c), 0.1f) << "col " << c;
    }
  }
}

TEST(Gptq, RejectsBadInputs) {
  Rng rng(20);
  const Matrix w = Matrix::randn(4, 8, rng);
  const Matrix h_wrong(7, 7);
  EXPECT_THROW(gptq_quantize(w, h_wrong, config_of(4)), Error);
  const Matrix h = calib_hessian(8, 32, 21);
  GptqConfig cfg = config_of(4);
  cfg.damp = 0.0;
  EXPECT_THROW(gptq_quantize(w, h, cfg), Error);
  cfg = config_of(4);
  cfg.block_size = 0;
  EXPECT_THROW(gptq_quantize(w, h, cfg), Error);
}

TEST(Gptq, Fp4GridWorksInSolver) {
  Rng rng(22);
  const Matrix w = Matrix::randn(8, 16, rng);
  const Matrix h = calib_hessian(16, 64, 23);
  GptqConfig cfg = config_of(4);
  cfg.spec.format = QFormat::fp4_e2m1;
  const GptqResult res = gptq_quantize(w, h, cfg);
  EXPECT_LT(res.recon_error,
            reconstruction_error(w, rtn_quantize(w, cfg.spec), h));
}

TEST(Gptq, GroupingImprovesOverWholeRow) {
  Rng rng(24);
  const Matrix w = Matrix::randn(8, 32, rng);
  // Scale some columns up to create inhomogeneous ranges.
  Matrix w2 = w;
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 16; c < 32; ++c) {
      w2(r, c) *= 8.0f;
    }
  }
  const Matrix h = calib_hessian(32, 96, 25);
  const double grouped =
      gptq_quantize(w2, h, config_of(3, 8)).recon_error;
  const double whole = gptq_quantize(w2, h, config_of(3, 0)).recon_error;
  EXPECT_LT(grouped, whole);
}

TEST(ReconstructionError, ZeroForIdenticalWeights) {
  Rng rng(26);
  const Matrix w = Matrix::randn(4, 8, rng);
  const Matrix h = calib_hessian(8, 32, 27);
  EXPECT_NEAR(reconstruction_error(w, w, h), 0.0, 1e-9);
  const Matrix w_bad(4, 7);
  EXPECT_THROW(reconstruction_error(w, w_bad, h), Error);
}

TEST(ReconstructionError, PositiveForSpdHessian) {
  Rng rng(28);
  const Matrix w = Matrix::randn(4, 8, rng);
  Matrix perturbed = w;
  perturbed(2, 3) += 0.5f;
  const Matrix h = calib_hessian(8, 64, 29);
  EXPECT_GT(reconstruction_error(w, perturbed, h), 0.0);
}

}  // namespace
}  // namespace aptq
