// Unit tests for src/train: cross-entropy forward/gradient, AdamW mechanics,
// LR schedule, clipping, and an end-to-end "training reduces loss" check.
#include <gtest/gtest.h>

#include <cmath>

#include "data/corpus.hpp"
#include "model/forward.hpp"
#include "train/adamw.hpp"
#include "train/loss.hpp"
#include "train/trainer.hpp"

namespace aptq {
namespace {

ModelConfig tiny_config() {
  ModelConfig c;
  c.vocab_size = 16;
  c.dim = 8;
  c.n_layers = 1;
  c.n_heads = 2;
  c.ffn_dim = 12;
  return c;
}

TEST(CrossEntropy, UniformLogitsGiveLogV) {
  Matrix logits(4, 16);  // all-zero logits = uniform distribution
  const TokenSeq tokens = {1, 2, 3, 4};
  const auto r = cross_entropy_next_token(logits, tokens);
  EXPECT_NEAR(r.loss, std::log(16.0), 1e-5);
  EXPECT_EQ(r.count, 3u);
}

TEST(CrossEntropy, PerfectPredictionGivesNearZero) {
  Matrix logits(3, 16);
  const TokenSeq tokens = {0, 5, 9};
  logits(0, 5) = 50.0f;
  logits(1, 9) = 50.0f;
  const auto r = cross_entropy_next_token(logits, tokens);
  EXPECT_LT(r.loss, 1e-4);
}

TEST(CrossEntropy, GradientMatchesFiniteDifference) {
  Rng rng(1);
  Matrix logits = Matrix::randn(4, 8, rng);
  const TokenSeq tokens = {1, 7, 3, 0};
  const auto r = cross_entropy_next_token(logits, tokens);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    Matrix plus = logits, minus = logits;
    plus.flat()[i] += eps;
    minus.flat()[i] -= eps;
    const double numeric =
        (cross_entropy_next_token(plus, tokens, false).loss -
         cross_entropy_next_token(minus, tokens, false).loss) /
        (2 * eps);
    EXPECT_NEAR(r.grad_logits.flat()[i], numeric, 2e-4);
  }
}

TEST(CrossEntropy, LastRowGradientIsZero) {
  Rng rng(2);
  const Matrix logits = Matrix::randn(5, 8, rng);
  const TokenSeq tokens = {1, 2, 3, 4, 5};
  const auto r = cross_entropy_next_token(logits, tokens);
  for (std::size_t v = 0; v < 8; ++v) {
    EXPECT_EQ(r.grad_logits(4, v), 0.0f);
  }
}

TEST(CrossEntropy, RejectsDegenerateInput) {
  Matrix logits(1, 8);
  EXPECT_THROW(cross_entropy_next_token(logits, TokenSeq{3}), Error);
  Matrix logits2(2, 8);
  EXPECT_THROW(cross_entropy_next_token(logits2, TokenSeq{0, 99}), Error);
}

TEST(AdamW, MovesAgainstGradient) {
  Model m = Model::init(tiny_config(), 3);
  Gradients g = Gradients::zeros_like(m);
  const float before = m.blocks[0].wq(0, 0);
  g.blocks[0].wq(0, 0) = 1.0f;  // positive gradient → parameter decreases
  AdamWConfig cfg;
  cfg.weight_decay = 0.0f;
  AdamW opt(cfg);
  opt.step(m, g, 0.01f);
  EXPECT_LT(m.blocks[0].wq(0, 0), before);
  EXPECT_EQ(opt.steps_taken(), 1u);
}

TEST(AdamW, WeightDecayShrinksUntouchedParams) {
  Model m = Model::init(tiny_config(), 4);
  m.blocks[0].wv(1, 1) = 2.0f;
  Gradients g = Gradients::zeros_like(m);
  AdamWConfig cfg;
  cfg.weight_decay = 0.1f;
  AdamW opt(cfg);
  opt.step(m, g, 0.1f);
  EXPECT_LT(m.blocks[0].wv(1, 1), 2.0f);
  EXPECT_GT(m.blocks[0].wv(1, 1), 1.9f);
}

TEST(AdamW, StepSizeBoundedByLr) {
  // Adam's per-step displacement is ≈ lr regardless of gradient magnitude.
  Model m = Model::init(tiny_config(), 5);
  Gradients g = Gradients::zeros_like(m);
  g.blocks[0].wq(0, 0) = 1e6f;
  const float before = m.blocks[0].wq(0, 0);
  AdamWConfig cfg;
  cfg.weight_decay = 0.0f;
  AdamW opt(cfg);
  opt.step(m, g, 0.01f);
  EXPECT_NEAR(before - m.blocks[0].wq(0, 0), 0.01f, 2e-3f);
}

TEST(ClipGradNorm, ClipsAndReportsPreNorm) {
  Model m = Model::init(tiny_config(), 6);
  Gradients g = Gradients::zeros_like(m);
  g.lm_head(0, 0) = 30.0f;
  g.lm_head(0, 1) = 40.0f;
  const double pre = clip_grad_norm(g, 1.0);
  EXPECT_NEAR(pre, 50.0, 1e-4);
  EXPECT_NEAR(g.l2_norm(), 1.0, 1e-5);
  // Below threshold: untouched.
  const double pre2 = clip_grad_norm(g, 10.0);
  EXPECT_NEAR(pre2, 1.0, 1e-5);
  EXPECT_NEAR(g.l2_norm(), 1.0, 1e-5);
}

TEST(CosineLr, WarmupThenDecay) {
  TrainConfig cfg;
  cfg.steps = 100;
  cfg.warmup_steps = 10;
  cfg.peak_lr = 1.0f;
  cfg.final_lr_fraction = 0.1f;
  EXPECT_LT(cosine_lr(0, cfg), 0.2f);
  EXPECT_NEAR(cosine_lr(9, cfg), 1.0f, 1e-5f);
  EXPECT_GT(cosine_lr(10, cfg), cosine_lr(50, cfg));
  EXPECT_GT(cosine_lr(50, cfg), cosine_lr(99, cfg));
  EXPECT_GE(cosine_lr(99, cfg), 0.1f - 1e-5f);
}

TEST(Trainer, ReducesLossOnLearnableData) {
  MarkovSpec spec;
  spec.seed = 13;
  spec.vocab_size = 16;
  spec.topics = 1;
  spec.branching = 2;
  spec.topic_switch_prob = 0.0;
  const Corpus corpus("train", spec, 4000, 500, 7);

  ModelConfig mc = tiny_config();
  Model m = Model::init(mc, 7);

  // Initial loss on random weights ≈ log(V).
  Rng rng(8);
  const TokenSeq probe = corpus.sample_train_segment(32, rng);
  const double initial =
      cross_entropy_next_token(model_forward(m, probe), probe, false).loss;
  EXPECT_NEAR(initial, std::log(16.0), 1.5);

  TrainConfig tc;
  tc.steps = 500;
  tc.batch_size = 4;
  tc.seq_len = 32;
  tc.peak_lr = 1e-2f;
  tc.seed = 9;
  std::size_t callbacks = 0;
  tc.log_every = 100;
  const double final_loss = train_model(
      m, corpus, tc, [&callbacks](const TrainProgress&) { ++callbacks; });
  EXPECT_LT(final_loss, initial - 0.4);
  EXPECT_GE(callbacks, 2u);

  const double trained =
      cross_entropy_next_token(model_forward(m, probe), probe, false).loss;
  EXPECT_LT(trained, initial - 0.3);
}

TEST(Trainer, DeterministicGivenSeeds) {
  MarkovSpec spec;
  spec.seed = 14;
  spec.vocab_size = 16;
  spec.topics = 1;
  spec.branching = 3;
  const Corpus corpus("train", spec, 2000, 200, 7);
  TrainConfig tc;
  tc.steps = 20;
  tc.batch_size = 2;
  tc.seq_len = 16;
  Model a = Model::init(tiny_config(), 10);
  Model b = Model::init(tiny_config(), 10);
  train_model(a, corpus, tc);
  train_model(b, corpus, tc);
  EXPECT_TRUE(a.blocks[0].wq == b.blocks[0].wq);
  EXPECT_TRUE(a.lm_head == b.lm_head);
}

TEST(Trainer, RejectsEmptyCorpora) {
  Model m = Model::init(tiny_config(), 11);
  TrainConfig tc;
  EXPECT_THROW(train_model(m, std::span<const Corpus* const>{}, tc), Error);
}

TEST(SequenceNll, MatchesCrossEntropy) {
  Rng rng(12);
  const Matrix logits = Matrix::randn(5, 16, rng);
  const TokenSeq tokens = {0, 3, 7, 11, 2};
  EXPECT_DOUBLE_EQ(sequence_nll(logits, tokens),
                   cross_entropy_next_token(logits, tokens).loss);
}

}  // namespace
}  // namespace aptq
