// Unit tests for the packed deploy artifact: QuantizedLinear serialization,
// PackedModel pack/unpack/forward equivalence, per-layer mixed-bit packing,
// storage accounting, and the save/load round-trip.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/pipeline.hpp"
#include "model/forward.hpp"
#include "quant/packed_model.hpp"
#include "tensor/ops.hpp"

namespace aptq {
namespace {

ModelConfig small_config() {
  ModelConfig c;
  c.vocab_size = 16;
  c.dim = 12;
  c.n_layers = 2;
  c.n_heads = 2;
  c.ffn_dim = 16;
  return c;
}

TokenSeq tokens_for(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  TokenSeq t(n);
  for (auto& v : t) {
    v = static_cast<TokenId>(rng.index(16));
  }
  return t;
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(QuantizedLinearIo, SerializeRoundTrips) {
  Rng rng(1);
  const Matrix w = Matrix::randn(6, 20, rng);
  QuantSpec spec;
  spec.bits = 3;
  spec.group_size = 8;
  const QuantizedLinear original(w, spec);
  const std::string path = temp_path("aptq_qlin_test.bin");
  {
    BinaryWriter writer(path);
    original.serialize(writer);
  }
  BinaryReader reader(path);
  const QuantizedLinear loaded = QuantizedLinear::deserialize(reader);
  EXPECT_TRUE(loaded == original);
  EXPECT_TRUE(loaded.dequantize() == original.dequantize());
  std::remove(path.c_str());
}

TEST(QuantizedLinearIo, DetectsCorruption) {
  Rng rng(2);
  const Matrix w = Matrix::randn(4, 8, rng);
  QuantSpec spec;
  spec.bits = 4;
  spec.group_size = 4;
  const std::string path = temp_path("aptq_qlin_corrupt.bin");
  {
    BinaryWriter writer(path);
    QuantizedLinear(w, spec).serialize(writer);
  }
  // Truncate the file.
  std::filesystem::resize_file(path, 24);
  BinaryReader reader(path);
  EXPECT_THROW(QuantizedLinear::deserialize(reader), Error);
  std::remove(path.c_str());
}

TEST(QuantizedLinearIo, PreservesClipSearchFlag) {
  Rng rng(21);
  const Matrix w = Matrix::randn(4, 16, rng);
  QuantSpec spec;
  spec.bits = 4;
  spec.group_size = 8;
  spec.mse_clip_search = true;
  const QuantizedLinear original(w, spec);
  const std::string path = temp_path("aptq_qlin_clip.bin");
  {
    BinaryWriter writer(path);
    original.serialize(writer);
  }
  BinaryReader reader(path);
  const QuantizedLinear loaded = QuantizedLinear::deserialize(reader);
  EXPECT_TRUE(loaded.spec().mse_clip_search);
  EXPECT_TRUE(loaded == original);
  std::remove(path.c_str());
}

TEST(QuantizedLinearIo, RejectsUnknownFormatCode) {
  const std::string path = temp_path("aptq_qlin_badformat.bin");
  {
    // Header prefix as serialize() writes it, with an undefined format code.
    BinaryWriter writer(path);
    writer.write_u32(4u);   // bits
    writer.write_u64(16u);  // group_size
    writer.write_u32(7u);   // format: no such QFormat
  }
  BinaryReader reader(path);
  EXPECT_THROW(QuantizedLinear::deserialize(reader), Error);
  std::remove(path.c_str());
}

TEST(PackedModel, UniformPackUnpackPreservesQuantizedWeights) {
  const Model m = Model::init(small_config(), 3);
  QuantSpec spec;
  spec.bits = 4;
  spec.group_size = 4;
  const PackedModel pm = PackedModel::pack_uniform(m, spec);
  const Model unpacked = pm.unpack();
  // Unpacked weights are the 4-bit snapped weights.
  Matrix expect_wq = m.blocks[0].wq.transposed();
  quantize_dequantize_matrix(expect_wq, spec);
  EXPECT_LT(frobenius_distance(unpacked.blocks[0].wq,
                               expect_wq.transposed()),
            1e-6);
  // Non-linear tensors pass through untouched.
  EXPECT_TRUE(unpacked.tok_embed == m.tok_embed);
  EXPECT_EQ(unpacked.blocks[1].ffn_norm, m.blocks[1].ffn_norm);
}

TEST(PackedModel, ForwardMatchesUnpackedModel) {
  const Model m = Model::init(small_config(), 4);
  QuantSpec spec;
  spec.bits = 4;
  spec.group_size = 4;
  const PackedModel pm = PackedModel::pack_uniform(m, spec);
  const Model unpacked = pm.unpack();
  const TokenSeq tokens = tokens_for(9, 5);
  const Matrix packed_logits = pm.forward(tokens);
  const Matrix dense_logits = model_forward(unpacked, tokens);
  ASSERT_EQ(packed_logits.rows(), 9u);
  for (std::size_t i = 0; i < packed_logits.size(); ++i) {
    EXPECT_NEAR(packed_logits.flat()[i], dense_logits.flat()[i], 5e-4f);
  }
}

TEST(PackedModel, PacksPipelineOutputWithMixedBits) {
  MarkovSpec ms;
  ms.seed = 6;
  ms.vocab_size = 16;
  const Corpus corpus("c", ms, 3000, 300, 7);
  const Model fp = Model::init(small_config(), 8);
  PipelineConfig cfg;
  cfg.calib_segments = 6;
  cfg.calib_seq_len = 12;
  cfg.group_size = 4;
  cfg.ratio_high = 0.5;
  const QuantizedModel qm =
      quantize_model(fp, corpus, Method::aptq_mixed, cfg);
  const PackedModel pm = PackedModel::pack(qm, cfg.group_size);
  ASSERT_EQ(pm.linears().size(), 14u);
  // Mixed bit widths survived into the packed specs.
  bool has2 = false, has4 = false;
  for (const auto& q : pm.linears()) {
    has2 |= q.spec().bits == 2;
    has4 |= q.spec().bits == 4;
  }
  EXPECT_TRUE(has2);
  EXPECT_TRUE(has4);
  // Re-snapping at pack time moves values by at most half a step: the
  // packed forward must stay close to the fake-quant model's forward.
  const TokenSeq tokens = tokens_for(8, 9);
  const Matrix a = pm.forward(tokens);
  const Matrix b = model_forward(qm.model, tokens);
  // Half-step re-snap at 2 bits dominates the drift on this random-weight
  // model; the bound is loose but still excludes any structural error.
  EXPECT_LT(frobenius_distance(a, b) / std::sqrt(sum_squares(b) + 1e-9),
            0.12);
}

TEST(PackedModel, RejectsFractionalBits) {
  MarkovSpec ms;
  ms.seed = 10;
  ms.vocab_size = 16;
  const Corpus corpus("c", ms, 3000, 300, 11);
  const Model fp = Model::init(small_config(), 12);
  PipelineConfig cfg;
  cfg.calib_segments = 4;
  cfg.calib_seq_len = 12;
  cfg.pbllm_salient_fraction = 0.2;
  const QuantizedModel qm = quantize_model(fp, corpus, Method::pbllm, cfg);
  EXPECT_THROW(PackedModel::pack(qm, 4), Error);
}

TEST(PackedModel, StorageAccounting) {
  const Model m = Model::init(small_config(), 13);
  QuantSpec s2, s4;
  s2.bits = 2;
  s2.group_size = 4;
  s4.bits = 4;
  s4.group_size = 4;
  const PackedModel p2 = PackedModel::pack_uniform(m, s2);
  const PackedModel p4 = PackedModel::pack_uniform(m, s4);
  EXPECT_LT(p2.linear_storage_bytes(), p4.linear_storage_bytes());
  EXPECT_GT(p2.total_storage_bytes(), p2.linear_storage_bytes());
  // Linears alone are far below their fp32 footprint.
  std::size_t linear_f32 = 0;
  for (const auto& q : p4.linears()) {
    linear_f32 += q.rows() * q.cols() * sizeof(float);
  }
  // Group size 4 carries heavy per-group overhead (8 bytes per 4 weights =
  // 16 bits/weight); even so 4-bit codes + overhead = 20 bits/weight stays
  // well under the 32-bit fp32 footprint.
  EXPECT_LT(p4.linear_storage_bytes(), linear_f32 * 3 / 4);
}

TEST(PackedModel, SaveLoadRoundTrip) {
  const Model m = Model::init(small_config(), 14);
  QuantSpec spec;
  spec.bits = 4;
  spec.group_size = 4;
  const PackedModel pm = PackedModel::pack_uniform(m, spec);
  const std::string path = temp_path("aptq_packed_test.bin");
  pm.save(path);
  const PackedModel loaded = PackedModel::load(path);
  EXPECT_TRUE(loaded.config() == pm.config());
  const TokenSeq tokens = tokens_for(7, 15);
  const Matrix a = pm.forward(tokens);
  const Matrix b = loaded.forward(tokens);
  EXPECT_TRUE(a == b);
  std::remove(path.c_str());
}

TEST(PackedModel, LoadRejectsBadMagic) {
  const std::string path = temp_path("aptq_packed_bad.bin");
  {
    BinaryWriter w(path);
    w.write_u32(0x12345678u);
    w.write_u32(1u);
  }
  EXPECT_THROW(PackedModel::load(path), Error);
  std::remove(path.c_str());
}

TEST(PackedModel, GoldenRoundTripPreservesEveryLinear) {
  const Model m = Model::init(small_config(), 31);
  QuantSpec spec;
  spec.bits = 3;
  spec.group_size = 8;
  spec.symmetric = true;
  const PackedModel pm = PackedModel::pack_uniform(m, spec);
  const std::string path = temp_path("aptq_packed_golden.bin");
  pm.save(path);
  const PackedModel loaded = PackedModel::load(path);
  EXPECT_TRUE(loaded.config() == pm.config());
  ASSERT_EQ(loaded.linears().size(), pm.linears().size());
  for (std::size_t i = 0; i < pm.linears().size(); ++i) {
    EXPECT_TRUE(loaded.linears()[i] == pm.linears()[i]) << "linear " << i;
  }
  EXPECT_EQ(loaded.total_storage_bytes(), pm.total_storage_bytes());
  std::remove(path.c_str());
}

TEST(PackedModel, CorruptedHeaderThrowsInsteadOfCrashing) {
  const Model m = Model::init(small_config(), 32);
  QuantSpec spec;
  spec.bits = 4;
  spec.group_size = 4;
  const std::string path = temp_path("aptq_packed_corrupt.bin");
  PackedModel::pack_uniform(m, spec).save(path);

  // Version field stomped: load must throw, not misparse the remainder.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(4);
    const std::uint32_t bogus = 0xffffffffu;
    f.write(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  }
  EXPECT_THROW(PackedModel::load(path), Error);

  // Truncated mid-payload: the reader must throw at EOF.
  PackedModel::pack_uniform(m, spec).save(path);
  std::filesystem::resize_file(path, std::filesystem::file_size(path) / 2);
  EXPECT_THROW(PackedModel::load(path), Error);
  std::remove(path.c_str());
}

TEST(PackedModel, FileSizeMatchesStorageAccounting) {
  const Model m = Model::init(small_config(), 33);
  QuantSpec spec;
  spec.bits = 4;
  spec.group_size = 8;
  const PackedModel pm = PackedModel::pack_uniform(m, spec);
  const std::string path = temp_path("aptq_packed_size.bin");
  pm.save(path);
  const std::uintmax_t file_size = std::filesystem::file_size(path);
  // The file is the accounted payload plus fixed framing: the model header
  // plus per-tensor shape/spec fields and vector length prefixes.
  const std::size_t framing_allowance =
      256 + pm.linears().size() * 96 +
      (2 * pm.config().n_layers + 2) * 16 + 64;
  EXPECT_GE(file_size, pm.total_storage_bytes());
  EXPECT_LE(file_size, pm.total_storage_bytes() + framing_allowance);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace aptq
