// Golden regression test for the aptq.run_report.v1 artifact.
//
// Three guarantees:
//   1. A synthetic fixture report, built from a pinned set of instruments
//      under the injected fixed clock, is byte-identical to the committed
//      golden file (tests/golden/run_report_seed.json). Any change to the
//      report layout, JSON number formatting, key ordering, or snapshot
//      structure shows up as a byte diff. Regenerate deliberately with
//      APTQ_REGEN_GOLDEN=1 after reviewing the diff.
//   2. The "serving" section is additive: it appears only when
//      add_serving() ran, so quantization-only reports keep their exact
//      pre-serving byte layout.
//   3. A real quantization-pipeline report (seed config, one thread,
//      fixed clock) is byte-stable across runs and contains no serve.*
//      keys — the serving engine cannot perturb quant reports.
//
// The fixture test snapshots *every* registered instrument, so it must see
// a registry containing exactly what it registers. ctest runs each test in
// its own process (gtest_discover_tests), which guarantees that; when
// running the binary manually, this file keeps the fixture test first and
// registers pipeline instruments only in later tests.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/pipeline.hpp"
#include "obs/control.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/threadpool.hpp"

namespace aptq {
namespace {

std::uint64_t fixed_clock() { return 42; }

class ReportGoldenTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }

  static void reset() {
    obs::set_tracing(false);
    obs::set_telemetry(false);
    obs::set_clock_for_testing(nullptr);
    obs::reset_observability();
  }
};

std::string golden_path() {
  return std::string(APTQ_GOLDEN_DIR) + "/run_report_seed.json";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// The pinned fixture: deterministic instrument values (all dyadic, so
// their decimal renderings are exact), fixed clock, sorted snapshots.
std::string build_fixture_report() {
  obs::set_clock_for_testing(&fixed_clock);
  obs::set_telemetry(true);
  {
    obs::PhaseSpan phase("golden.phase");
  }
  obs::counter("golden.tokens").add(7);
  obs::gauge("golden.ratio").set(0.25);
  obs::histogram("golden.step_ms").record(2.0);
  obs::histogram("golden.step_ms").record(4.0);
  obs::layer_stat("layers.0.self_attn.q_proj", "alloc.bits", 4.0);
  obs::layer_stat("layers.0.self_attn.q_proj", "quant.mse", 0.125);
  obs::layer_stat("layers.1.mlp.down_proj", "hessian.avg_trace", 2.5);

  obs::RunReport report;
  report.add_config("model", std::string("golden-fixture"));
  report.add_config("bits", 4L);
  report.add_config("ratio_high", 0.25);
  report.add_eval("val", 12.5, 2.5, 1024);
  // Serving section (schema_version 2: latency breakdown + pressure
  // causes) — dyadic values so the golden bytes stay exact.
  report.add_serving("golden.requests_completed", std::uint64_t{3});
  report.add_serving("golden.queue_wait_ms_avg", 0.5);
  report.add_serving("golden.backpressure_pages", std::uint64_t{1});
  return report.json();
}

TEST_F(ReportGoldenTest, SeedConfigReportMatchesGoldenBytes) {
  const std::string json = build_fixture_report();
  EXPECT_NE(json.find("\"schema\": \"aptq.run_report.v1\""),
            std::string::npos);
  // The serving section self-describes its layout version as its first key.
  EXPECT_NE(json.find("\"serving\": {\"schema_version\": 2, "),
            std::string::npos);
  if (std::getenv("APTQ_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path(), std::ios::binary | std::ios::trunc);
    out << json;
    GTEST_SKIP() << "regenerated " << golden_path();
  }
  const std::string golden = read_file(golden_path());
  ASSERT_FALSE(golden.empty()) << "missing golden file " << golden_path();
  EXPECT_EQ(json, golden)
      << "run_report.v1 bytes drifted from " << golden_path()
      << "; if intentional, rerun with APTQ_REGEN_GOLDEN=1 and review";
}

TEST_F(ReportGoldenTest, ServingSectionIsStrictlyAdditive) {
  obs::set_clock_for_testing(&fixed_clock);
  obs::RunReport base;
  base.add_config("model", std::string("x"));
  const std::string without = base.json();
  EXPECT_EQ(without.find("\"serving\""), std::string::npos);

  obs::RunReport with = base;
  with.add_serving("packed.generated_tokens", std::uint64_t{96});
  with.add_serving("packed.tokens_per_sec", 12.5);
  const std::string json = with.json();
  const auto serving = json.find("\"serving\": {\"schema_version\": 2");
  ASSERT_NE(serving, std::string::npos);
  EXPECT_NE(json.find("\"packed.generated_tokens\": 96"), std::string::npos);
  EXPECT_NE(json.find("\"packed.tokens_per_sec\": 12.5"), std::string::npos);
  // Sits between evals and metrics, and removing it restores the original
  // bytes exactly.
  EXPECT_LT(json.find("\"evals\""), serving);
  EXPECT_GT(json.find("\"metrics\""), serving);
  const auto metrics = json.find("\"metrics\"");
  const std::string stripped =
      json.substr(0, json.find("\"serving\"")) + json.substr(metrics);
  const std::string expected =
      without.substr(0, without.find("\"metrics\"")) +
      without.substr(without.find("\"metrics\""));
  EXPECT_EQ(stripped, expected);
}

TEST_F(ReportGoldenTest, QuantPipelineReportIsStableAndServeFree) {
  ThreadPool::set_global_threads(1);
  auto run_once = [] {
    obs::reset_observability();
    obs::set_clock_for_testing(&fixed_clock);
    obs::set_telemetry(true);
    ModelConfig mc;
    mc.vocab_size = 16;
    mc.dim = 12;
    mc.n_layers = 2;
    mc.n_heads = 2;
    mc.ffn_dim = 16;
    const Corpus corpus("calib",
                        [] {
                          MarkovSpec s;
                          s.seed = 41;
                          s.vocab_size = 16;
                          s.topics = 2;
                          s.branching = 3;
                          return s;
                        }(),
                        4000, 500, 42);
    const Model model = Model::init(mc, 43);
    PipelineConfig cfg;
    cfg.calib_segments = 8;
    cfg.calib_seq_len = 16;
    cfg.group_size = 4;
    cfg.ratio_high = 0.5;
    const QuantizedModel qm =
        quantize_model(model, corpus, Method::aptq_mixed, cfg);
    EXPECT_EQ(qm.layers.size(), 14u);
    obs::RunReport report;
    report.add_config("model", std::string("tiny"));
    report.add_config("ratio_high", cfg.ratio_high);
    return report.json();
  };
  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_EQ(first, second) << "pipeline report not byte-stable across runs";
  // The serving engine never ran: no serving section, no serve.* metrics.
  EXPECT_EQ(first.find("\"serving\""), std::string::npos);
  EXPECT_EQ(first.find("serve."), std::string::npos);
  EXPECT_NE(first.find("\"layers\": ["), std::string::npos);
}

}  // namespace
}  // namespace aptq
