// Unit tests for the KV-cache incremental decoder: exact equivalence with
// the full forward pass, prefill/step mixing, capacity handling, reset, and
// decode_sample behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "model/decoder.hpp"
#include "model/forward.hpp"
#include "model/sampler.hpp"

namespace aptq {
namespace {

ModelConfig tiny_config() {
  ModelConfig c;
  c.vocab_size = 16;
  c.dim = 12;
  c.n_layers = 2;
  c.n_heads = 2;
  c.ffn_dim = 20;
  return c;
}

TokenSeq tokens_for(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  TokenSeq t(n);
  for (auto& v : t) {
    v = static_cast<TokenId>(rng.index(16));
  }
  return t;
}

// Compare decoder logits at every position against the full forward pass.
void expect_equivalent(const Model& m, const TokenSeq& tokens, float tol,
                       const ForwardOptions& options = {}) {
  const Matrix full = model_forward(m, tokens, options);
  Decoder dec(m, tokens.size(), options);
  for (std::size_t t = 0; t < tokens.size(); ++t) {
    const std::vector<float> logits = dec.step(tokens[t]);
    ASSERT_EQ(logits.size(), m.config.vocab_size);
    for (std::size_t v = 0; v < logits.size(); ++v) {
      EXPECT_NEAR(logits[v], full(t, v), tol)
          << "position " << t << " vocab " << v;
    }
  }
}

TEST(Decoder, StepMatchesFullForward) {
  const Model m = Model::init(tiny_config(), 1);
  expect_equivalent(m, tokens_for(9, 2), 2e-4f);
}

TEST(Decoder, SingleTokenContext) {
  const Model m = Model::init(tiny_config(), 3);
  expect_equivalent(m, tokens_for(1, 4), 2e-4f);
}

TEST(Decoder, LongerContext) {
  const Model m = Model::init(tiny_config(), 5);
  expect_equivalent(m, tokens_for(24, 6), 5e-4f);
}

TEST(Decoder, MatchesWithActivationQuant) {
  const Model m = Model::init(tiny_config(), 7);
  ForwardOptions opt;
  opt.act_quant_bits = 8;
  expect_equivalent(m, tokens_for(8, 8), 3e-3f, opt);
}

TEST(Decoder, PrefillEqualsStepByStep) {
  const Model m = Model::init(tiny_config(), 9);
  const TokenSeq tokens = tokens_for(10, 10);
  Decoder a(m, 16);
  const std::vector<float> via_prefill = a.prefill(tokens);
  Decoder b(m, 16);
  std::vector<float> via_steps;
  for (const TokenId t : tokens) {
    via_steps = b.step(t);
  }
  ASSERT_EQ(via_prefill.size(), via_steps.size());
  // Prefill runs batched (GEMM attention) and the steps run the per-token
  // kernel; the two reassociate f32 sums differently.
  for (std::size_t i = 0; i < via_prefill.size(); ++i) {
    EXPECT_NEAR(via_prefill[i], via_steps[i], 2e-4f);
  }
  EXPECT_EQ(a.position(), 10u);
}

TEST(Decoder, ContinuesAfterPrefill) {
  // prefill(prefix) then step(next) must equal full forward on the whole.
  const Model m = Model::init(tiny_config(), 11);
  const TokenSeq tokens = tokens_for(12, 12);
  const Matrix full = model_forward(m, tokens);
  Decoder dec(m, 16);
  dec.prefill(std::span<const TokenId>(tokens.data(), 8));
  std::vector<float> logits;
  for (std::size_t t = 8; t < 12; ++t) {
    logits = dec.step(tokens[t]);
  }
  for (std::size_t v = 0; v < logits.size(); ++v) {
    EXPECT_NEAR(logits[v], full(11, v), 5e-4f);
  }
}

TEST(Decoder, CapacityEnforced) {
  const Model m = Model::init(tiny_config(), 13);
  Decoder dec(m, 3);
  dec.step(1);
  dec.step(2);
  dec.step(3);
  EXPECT_THROW(dec.step(4), Error);
  EXPECT_THROW(Decoder(m, 0), Error);
}

TEST(Decoder, ResetRestartsCleanly) {
  const Model m = Model::init(tiny_config(), 14);
  const TokenSeq tokens = tokens_for(6, 15);
  Decoder dec(m, 8);
  const std::vector<float> first = dec.prefill(tokens);
  dec.reset();
  EXPECT_EQ(dec.position(), 0u);
  const std::vector<float> second = dec.prefill(tokens);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_FLOAT_EQ(first[i], second[i]);
  }
}

TEST(Decoder, RejectsBadTokens) {
  const Model m = Model::init(tiny_config(), 16);
  Decoder dec(m, 4);
  EXPECT_THROW(dec.step(99), Error);
  EXPECT_THROW(dec.step(-1), Error);
  EXPECT_THROW(dec.prefill({}), Error);
}

TEST(DecodeSample, GreedyPathsAgreeWithFullForward) {
  // With near-zero temperature both samplers follow the argmax path, which
  // must agree between incremental and full-forward implementations.
  const Model m = Model::init(tiny_config(), 17);
  const TokenSeq prompt = {3, 5};
  Rng a(18), b(18);
  const TokenSeq fast = decode_sample(m, 14, a, 0.01f, prompt);
  SampleConfig cfg;
  cfg.temperature = 0.01f;
  const TokenSeq slow = sample_from_model(m, 14, b, cfg, prompt);
  EXPECT_EQ(fast, slow);
}

TEST(DecodeSample, RespectsLengthAndPrompt) {
  const Model m = Model::init(tiny_config(), 19);
  Rng rng(20);
  const TokenSeq prompt = {1, 2, 3};
  const TokenSeq seq = decode_sample(m, 10, rng, 1.0f, prompt);
  ASSERT_EQ(seq.size(), 10u);
  EXPECT_TRUE(std::equal(prompt.begin(), prompt.end(), seq.begin()));
  EXPECT_THROW(decode_sample(m, 2, rng, 1.0f, prompt), Error);
  EXPECT_THROW(decode_sample(m, 10, rng, 0.0f, prompt), Error);
}

}  // namespace
}  // namespace aptq
