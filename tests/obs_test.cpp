// Tests for the observability layer: span tracing (nesting, thread
// attribution, trace JSON shape), histogram percentile math, snapshot
// determinism under an injected clock, the run-report schema, and the
// pinned zero-cost guarantee for disabled tracing.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <mutex>
#include <map>
#include <new>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/model_zoo.hpp"
#include "core/pipeline.hpp"
#include "obs/control.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "quant/gptq.hpp"
#include "util/threadpool.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter: every path through the replaced operator new
// bumps it, letting tests pin "disabled tracing allocates nothing" and
// "the GPTQ solve allocates deterministically".
namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace aptq {
namespace {

// Fake clocks injectable via obs::set_clock_for_testing. ClockFn is a
// plain function pointer, so state lives in a file-scope atomic.
std::atomic<std::uint64_t> g_fake_ns{0};

std::uint64_t ticking_clock() {
  // Every observation advances time by 1 µs: spans get distinct,
  // strictly ordered timestamps.
  return g_fake_ns.fetch_add(1000, std::memory_order_relaxed) + 1000;
}

std::uint64_t fixed_clock() { return 42; }

// Minimal parser for the one-event-per-line trace JSON.
struct ParsedEvent {
  std::string ph;
  int tid = -1;
  std::string name;
  double ts = 0.0;
  double dur = 0.0;
};

std::vector<ParsedEvent> parse_events(const std::string& json) {
  std::vector<ParsedEvent> out;
  std::istringstream in(json);
  std::string line;
  auto field_num = [](const std::string& l, const char* key) {
    const auto pos = l.find(key);
    if (pos == std::string::npos) {
      return 0.0;
    }
    return std::atof(l.c_str() + pos + std::string(key).size());
  };
  auto field_str = [](const std::string& l, const char* key) {
    const auto pos = l.find(key);
    if (pos == std::string::npos) {
      return std::string();
    }
    const auto start = pos + std::string(key).size();
    return l.substr(start, l.find('"', start) - start);
  };
  while (std::getline(in, line)) {
    if (line.find("\"ph\":") == std::string::npos) {
      continue;
    }
    ParsedEvent ev;
    ev.ph = field_str(line, "\"ph\":\"");
    ev.tid = static_cast<int>(field_num(line, "\"tid\":"));
    ev.name = field_str(line, "\"name\":\"");
    ev.ts = field_num(line, "\"ts\":");
    ev.dur = field_num(line, "\"dur\":");
    out.push_back(ev);
  }
  return out;
}

// Every test starts and ends with observability fully off and empty.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }

  static void reset() {
    obs::set_tracing(false);
    obs::set_telemetry(false);
    obs::set_clock_for_testing(nullptr);
    obs::set_log_level(obs::LogLevel::kInfo);
    obs::reset_observability();
  }
};

TEST_F(ObsTest, SpanNestingRecordsChildWithinParent) {
  obs::set_clock_for_testing(&ticking_clock);
  obs::set_tracing(true);
  EXPECT_EQ(obs::current_span_depth(), 0);
  {
    obs::TraceSpan outer("outer", "test");
    EXPECT_EQ(obs::current_span_depth(), 1);
    {
      obs::TraceSpan inner(std::string("inner"), "test");
      EXPECT_EQ(obs::current_span_depth(), 2);
    }
    EXPECT_EQ(obs::current_span_depth(), 1);
  }
  EXPECT_EQ(obs::current_span_depth(), 0);
  obs::set_tracing(false);

  const auto events = parse_events(obs::trace_json());
  const ParsedEvent* outer = nullptr;
  const ParsedEvent* inner = nullptr;
  for (const auto& ev : events) {
    if (ev.name == "outer") {
      outer = &ev;
    }
    if (ev.name == "inner") {
      inner = &ev;
    }
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // The child's [ts, ts+dur] interval sits inside the parent's.
  EXPECT_GT(inner->ts, outer->ts);
  EXPECT_LT(inner->ts + inner->dur, outer->ts + outer->dur);
  EXPECT_EQ(outer->tid, inner->tid);
}

TEST_F(ObsTest, TraceJsonIsOneEventPerLineWithMetadataFirst) {
  obs::set_tracing(true);
  { obs::TraceSpan span("solo", "test"); }
  obs::set_tracing(false);

  const std::string json = obs::trace_json();
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  // Metadata names the recording thread; the X event carries the span.
  const auto meta_pos = json.find("\"ph\":\"M\"");
  const auto span_pos = json.find("\"ph\":\"X\"");
  ASSERT_NE(meta_pos, std::string::npos);
  ASSERT_NE(span_pos, std::string::npos);
  EXPECT_LT(meta_pos, span_pos);
  EXPECT_NE(json.find("\"name\":\"thread_name\""), std::string::npos);
  // One event per line: every event line is a complete {...} object.
  std::istringstream in(json);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"ph\":") == std::string::npos) {
      continue;
    }
    EXPECT_EQ(line.front(), '{');
    EXPECT_TRUE(line.back() == '}' || line.substr(line.size() - 2) == "},");
  }
}

TEST_F(ObsTest, SpansOnPoolWorkersGetDistinctThreadIds) {
  ThreadPool::set_global_threads(4);
  obs::set_tracing(true);
  // Chunks sleep a little so dedicated workers reliably claim some of
  // them; scheduling can still be unlucky, hence the retry loop.
  std::set<int> tids;
  for (int attempt = 0; attempt < 20 && tids.size() < 2; ++attempt) {
    obs::reset_trace_events();
    parallel_for(0, 16, 1, [](std::size_t, std::size_t) {
      obs::TraceSpan span("chunk", "test");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    });
    tids.clear();
    for (const auto& ev : parse_events(obs::trace_json())) {
      if (ev.ph == "X" && ev.name == "chunk") {
        tids.insert(ev.tid);
      }
    }
  }
  obs::set_tracing(false);
  EXPECT_GE(tids.size(), 2u);
  // Dedicated pool workers announce themselves in the thread metadata.
  EXPECT_NE(obs::trace_json().find("pool-worker-"), std::string::npos);
  ThreadPool::set_global_threads(1);
}

TEST_F(ObsTest, WorkerIdIsMinusOneOffPoolAndStableOnWorkers) {
  EXPECT_EQ(ThreadPool::worker_id(), -1);
  ThreadPool::set_global_threads(4);
  std::mutex mutex;
  std::set<int> ids;
  for (int attempt = 0; attempt < 20; ++attempt) {
    parallel_for(0, 16, 1, [&](std::size_t, std::size_t) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      std::lock_guard<std::mutex> lock(mutex);
      ids.insert(ThreadPool::worker_id());
    });
    std::lock_guard<std::mutex> lock(mutex);
    if (ids.size() >= 2) {
      break;
    }
  }
  // The submitting thread reports -1; dedicated workers 0..2.
  for (const int id : ids) {
    EXPECT_GE(id, -1);
    EXPECT_LE(id, 2);
  }
  EXPECT_GE(ids.size(), 2u);
  ThreadPool::set_global_threads(1);
}

TEST_F(ObsTest, PhaseTotalsAccumulateUnderTelemetryWithoutTraceEvents) {
  obs::set_clock_for_testing(&ticking_clock);
  obs::set_telemetry(true);  // tracing stays off
  { obs::PhaseSpan phase("test.phase"); }
  { obs::PhaseSpan phase("test.phase"); }
  const auto totals = obs::phase_totals();
  const auto it = std::find_if(
      totals.begin(), totals.end(),
      [](const obs::PhaseTotal& t) { return t.name == "test.phase"; });
  ASSERT_NE(it, totals.end());
  EXPECT_EQ(it->count, 2u);
  EXPECT_GT(it->seconds, 0.0);
  // --report alone yields phase timings but no trace events.
  EXPECT_EQ(obs::trace_event_count(), 0u);
}

TEST_F(ObsTest, HistogramAllEqualSamplesReportExactPercentiles) {
  obs::Histogram h;
  for (int i = 0; i < 7; ++i) {
    h.record(3.25);
  }
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 7u);
  EXPECT_NEAR(snap.sum, 7 * 3.25, 1e-12);
  EXPECT_DOUBLE_EQ(snap.min, 3.25);
  EXPECT_DOUBLE_EQ(snap.max, 3.25);
  // Interpolation clamps to [min, max], so equal samples are exact.
  EXPECT_DOUBLE_EQ(snap.p50, 3.25);
  EXPECT_DOUBLE_EQ(snap.p90, 3.25);
  EXPECT_DOUBLE_EQ(snap.p99, 3.25);
}

TEST_F(ObsTest, HistogramPercentilesInterpolateAndStayOrdered) {
  obs::Histogram h;
  for (int v = 1; v <= 100; ++v) {
    h.record(static_cast<double>(v));
  }
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_NEAR(snap.sum, 5050.0, 1e-9);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 100.0);
  // Geometric buckets are coarse at the top, so bounds are loose; the
  // ordering and rough placement are the contract.
  EXPECT_GE(snap.p50, 35.0);
  EXPECT_LE(snap.p50, 65.0);
  EXPECT_GE(snap.p90, 70.0);
  EXPECT_LE(snap.p90, 100.0);
  EXPECT_GE(snap.p99, 85.0);
  EXPECT_LE(snap.p99, 100.0);
  EXPECT_LE(snap.p50, snap.p90);
  EXPECT_LE(snap.p90, snap.p99);
  // Extremes clamp to the observed range (within bucket resolution at
  // the bottom, exact at the top where max clips the bucket).
  EXPECT_NEAR(h.percentile(0.0), 1.0, 0.1);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 100.0);
  // NaN samples are dropped.
  h.record(std::nan(""));
  EXPECT_EQ(h.snapshot().count, 100u);
}

TEST_F(ObsTest, MetricsSnapshotIsByteDeterministicUnderFixedClock) {
  obs::set_clock_for_testing(&fixed_clock);
  obs::counter("obs_test.count").add(3);
  obs::gauge("obs_test.gauge").set(1.5);
  obs::histogram("obs_test.hist").record(2.0);
  const std::string first = obs::metrics_snapshot_json();
  const std::string second = obs::metrics_snapshot_json();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"clock_ns\": 42"), std::string::npos);
  EXPECT_NE(first.find("\"obs_test.count\": 3"), std::string::npos);
  EXPECT_NE(first.find("\"obs_test.gauge\": 1.5"), std::string::npos);
  EXPECT_NE(first.find("\"obs_test.hist\""), std::string::npos);
}

TEST_F(ObsTest, PrometheusExpositionFormatsEveryInstrumentKind) {
  obs::set_clock_for_testing(&fixed_clock);
  obs::counter("obs_test.count").add(3);
  obs::gauge("obs_test.gauge").set(1.5);
  for (int i = 0; i < 10; ++i) {
    obs::histogram("obs_test.hist").record(2.0);
  }
  const std::string text = obs::metrics_prometheus();
  EXPECT_EQ(text, obs::metrics_prometheus());  // deterministic

  // Names are sanitized into the Prometheus alphabet with the aptq_
  // prefix, each preceded by its # TYPE line.
  EXPECT_NE(text.find("# TYPE aptq_obs_test_count counter\n"
                      "aptq_obs_test_count 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE aptq_obs_test_gauge gauge\n"
                      "aptq_obs_test_gauge 1.5\n"),
            std::string::npos);
  // Histograms export as summaries: quantiles + _sum/_count, with the
  // observed extremes as companion gauges.
  EXPECT_NE(text.find("# TYPE aptq_obs_test_hist summary"),
            std::string::npos);
  EXPECT_NE(text.find("aptq_obs_test_hist{quantile=\"0.5\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("aptq_obs_test_hist{quantile=\"0.99\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("aptq_obs_test_hist_sum 20\n"), std::string::npos);
  EXPECT_NE(text.find("aptq_obs_test_hist_count 10\n"), std::string::npos);
  EXPECT_NE(text.find("aptq_obs_test_hist_min 2\n"), std::string::npos);
  EXPECT_NE(text.find("aptq_obs_test_hist_max 2\n"), std::string::npos);
  // The exposition ends with a newline (scrapers require it).
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  // No raw dots leak through into metric names.
  EXPECT_EQ(text.find("obs_test.count"), std::string::npos);
}

TEST_F(ObsTest, DisabledTracingRecordsNothingAndAllocatesNothing) {
  ASSERT_FALSE(obs::tracing_enabled());
  ASSERT_FALSE(obs::telemetry_enabled());
  const std::size_t events_before = obs::trace_event_count();
  const std::size_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    obs::TraceSpan span("hot.loop", "test");
    obs::PhaseSpan phase("hot.phase");
  }
  const std::size_t allocs_after =
      g_alloc_count.load(std::memory_order_relaxed);
  // Pinned zero-cost contract: a disabled span is a relaxed load and an
  // early return — no heap traffic, no recorded events.
  EXPECT_EQ(allocs_after - allocs_before, 0u);
  EXPECT_EQ(obs::trace_event_count(), events_before);
  EXPECT_TRUE(obs::phase_totals().empty());
}

TEST_F(ObsTest, GptqSolveAllocationCountIsRunToRunDeterministic) {
  ThreadPool::set_global_threads(1);
  Rng rng(7);
  const Matrix w = Matrix::randn(8, 16, rng);
  Matrix h(16, 16);
  for (std::size_t i = 0; i < 16; ++i) {
    h.at(i, i) = 1.0f + 0.01f * static_cast<float>(i);
  }
  GptqConfig config;
  auto count_allocs = [&] {
    const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
    const GptqResult result = gptq_quantize(w, h, config);
    EXPECT_EQ(result.weight.rows(), 8u);
    return g_alloc_count.load(std::memory_order_relaxed) - before;
  };
  const std::size_t warm = count_allocs();  // warm any lazy statics
  (void)warm;
  EXPECT_EQ(count_allocs(), count_allocs());
}

TEST_F(ObsTest, LogLevelParsingAndGating) {
  EXPECT_EQ(obs::parse_log_level("error"), obs::LogLevel::kError);
  EXPECT_EQ(obs::parse_log_level("warn"), obs::LogLevel::kWarn);
  EXPECT_EQ(obs::parse_log_level("info"), obs::LogLevel::kInfo);
  EXPECT_EQ(obs::parse_log_level("debug"), obs::LogLevel::kDebug);
  EXPECT_THROW(obs::parse_log_level("verbose"), Error);
  obs::set_log_level(obs::LogLevel::kWarn);
  EXPECT_TRUE(obs::log_enabled(obs::LogLevel::kError));
  EXPECT_TRUE(obs::log_enabled(obs::LogLevel::kWarn));
  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::kInfo));
  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::kDebug));
}

// The run-report schema pin: quantizing a tiny model with telemetry on
// must produce hessian.avg_trace, alloc.bits, and quant.mse for every
// quantized linear, and RunReport::json() must carry them under the
// pinned schema identifier.
TEST_F(ObsTest, RunReportPinsSchemaAndPerLayerTelemetry) {
  obs::set_telemetry(true);
  ModelConfig mc;
  mc.vocab_size = 16;
  mc.dim = 12;
  mc.n_layers = 2;
  mc.n_heads = 2;
  mc.ffn_dim = 16;
  const Corpus corpus("calib",
                      [] {
                        MarkovSpec s;
                        s.seed = 41;
                        s.vocab_size = 16;
                        s.topics = 2;
                        s.branching = 3;
                        return s;
                      }(),
                      4000, 500, 42);
  const Model model = Model::init(mc, 43);
  PipelineConfig cfg;
  cfg.calib_segments = 8;
  cfg.calib_seq_len = 16;
  cfg.group_size = 4;
  cfg.ratio_high = 0.5;
  const QuantizedModel qm =
      quantize_model(model, corpus, Method::aptq_mixed, cfg);
  ASSERT_EQ(qm.layers.size(), 14u);

  std::map<std::string, std::map<std::string, double>> stats;
  for (const auto& row : obs::layer_stats_snapshot()) {
    for (const auto& [key, value] : row.stats) {
      stats[row.name][key] = value;
    }
  }
  for (const auto& layer : qm.layers) {
    ASSERT_TRUE(stats.count(layer.name)) << layer.name;
    const auto& s = stats.at(layer.name);
    EXPECT_TRUE(s.count("hessian.avg_trace")) << layer.name;
    EXPECT_TRUE(s.count("alloc.bits")) << layer.name;
    EXPECT_TRUE(s.count("quant.mse")) << layer.name;
    EXPECT_GT(s.at("hessian.avg_trace"), 0.0) << layer.name;
    EXPECT_GT(s.at("quant.mse"), 0.0) << layer.name;
    // alloc.bits mirrors the bookkeeping the pipeline reports.
    EXPECT_NEAR(s.at("quant.bits_effective"), layer.bits, 1e-9) << layer.name;
  }

  obs::RunReport report;
  report.add_config("model", std::string("tiny"));
  report.add_config("ratio_high", cfg.ratio_high);
  const std::string json = report.json();
  EXPECT_NE(json.find("\"schema\": \"aptq.run_report.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"layers\": ["), std::string::npos);
  EXPECT_NE(json.find("\"phases\": ["), std::string::npos);
  EXPECT_NE(json.find("\"hessian.avg_trace\""), std::string::npos);
  EXPECT_NE(json.find("\"quant.mse\""), std::string::npos);
  EXPECT_NE(json.find(qm.layers.front().name), std::string::npos);
  // Phase timings from the pipeline run landed in the report too.
  EXPECT_NE(json.find("pipeline.quantize_model"), std::string::npos);
  EXPECT_NE(json.find("\"ratio_high\": 0.5"), std::string::npos);
}

}  // namespace
}  // namespace aptq
