// Unit suite for the net layer: frame codec over MemStream and real
// localhost sockets, shard_range properties, the matrix/projection
// payload codecs, the HTTP request parser + JSON parser, and an
// end-to-end HTTP generate round trip against a solo engine.
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "net/frame.hpp"
#include "net/http.hpp"
#include "net/shard.hpp"
#include "net/socket.hpp"
#include "net/stream.hpp"
#include "obs/control.hpp"
#include "obs/metrics.hpp"
#include "serve/engine.hpp"
#include "util/check.hpp"

namespace aptq::net {
namespace {

// --- framing ---------------------------------------------------------------

TEST(FrameTest, RoundTripThroughMemStream) {
  MemStream wire;
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  send_frame(wire, MsgType::project, payload);
  wire.set_input(wire.written());
  const Frame f = recv_frame(wire, kMaxProjectPayload);
  EXPECT_EQ(f.type, MsgType::project);
  EXPECT_EQ(f.payload, payload);
}

TEST(FrameTest, EmptyPayloadRoundTrip) {
  MemStream wire;
  send_frame(wire, MsgType::shutdown, {});
  EXPECT_EQ(wire.written().size(), 16u);  // header only
  wire.set_input(wire.written());
  const Frame f = recv_frame(wire, kMaxControlPayload);
  EXPECT_EQ(f.type, MsgType::shutdown);
  EXPECT_TRUE(f.payload.empty());
}

TEST(FrameTest, RejectsBadMagic) {
  MemStream wire;
  send_frame(wire, MsgType::hello, encode_u32(1));
  std::vector<std::uint8_t> bytes = wire.written();
  bytes[0] ^= 0xff;
  wire.set_input(bytes);
  EXPECT_THROW(recv_frame(wire, kMaxControlPayload), Error);
}

TEST(FrameTest, RejectsUnknownType) {
  MemStream wire;
  send_frame(wire, MsgType::hello, {});
  std::vector<std::uint8_t> bytes = wire.written();
  bytes[4] = 0xee;  // type field, little-endian low byte
  wire.set_input(bytes);
  EXPECT_THROW(recv_frame(wire, kMaxControlPayload), Error);
}

TEST(FrameTest, RejectsOversizedLengthBeforeAllocation) {
  MemStream wire;
  send_frame(wire, MsgType::project, {});
  std::vector<std::uint8_t> bytes = wire.written();
  bytes[13] = 0xff;  // length byte 5: claims ~2^45 bytes follow
  wire.set_input(bytes);
  try {
    recv_frame(wire, kMaxProjectPayload);
    FAIL() << "oversized length must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("cap"), std::string::npos);
  }
}

TEST(FrameTest, ExpectFrameSurfacesPeerError) {
  MemStream wire;
  try_send_error(wire, "worker exploded");
  wire.set_input(wire.written());
  try {
    expect_frame(wire, MsgType::project_out, kMaxProjectPayload);
    FAIL() << "error_report must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("worker exploded"),
              std::string::npos);
  }
}

TEST(FrameTest, ExpectFrameRejectsWrongType) {
  MemStream wire;
  send_frame(wire, MsgType::bye, {});
  wire.set_input(wire.written());
  EXPECT_THROW(expect_frame(wire, MsgType::project_out, kMaxProjectPayload),
               Error);
}

TEST(FrameTest, ScalarCodecs) {
  EXPECT_EQ(decode_u32(encode_u32(0xdeadbeefu)), 0xdeadbeefu);
  EXPECT_EQ(decode_u64(encode_u64(0x0123456789abcdefull)),
            0x0123456789abcdefull);
  EXPECT_THROW(decode_u32(encode_u64(1)), Error);
  EXPECT_THROW(decode_u64(encode_u32(1)), Error);
}

TEST(FrameTest, RoundTripOverLocalhostSocket) {
  Listener listener(0);
  std::thread echo([&listener] {
    Socket peer = listener.accept();
    Frame f = recv_frame(peer, kMaxProjectPayload);
    send_frame(peer, f.type, f.payload);
  });
  Socket client = Socket::connect("127.0.0.1", listener.port());
  const std::vector<std::uint8_t> payload(1000, 0x5a);
  send_frame(client, MsgType::project_out, payload);
  const Frame back = recv_frame(client, kMaxProjectPayload);
  echo.join();
  EXPECT_EQ(back.type, MsgType::project_out);
  EXPECT_EQ(back.payload, payload);
}

TEST(SocketTest, ConnectRefusedThrows) {
  std::uint16_t dead_port = 0;
  {
    Listener probe(0);
    dead_port = probe.port();
  }  // closed: nothing listens there now
  EXPECT_THROW(Socket::connect("127.0.0.1", dead_port), Error);
}

// --- shard ranges and payload codecs ---------------------------------------

TEST(ShardRangeTest, CoversExactlyWithBalancedSizes) {
  for (const std::size_t n : {1u, 7u, 16u, 24u, 1000u}) {
    for (const std::size_t workers : {1u, 2u, 3u, 4u, 7u}) {
      std::size_t covered = 0;
      std::size_t lo = n;
      std::size_t hi = 0;
      for (std::size_t w = 0; w < workers; ++w) {
        const ShardRange r = shard_range(n, w, workers);
        EXPECT_EQ(r.begin, covered);  // contiguous, in order
        covered = r.end;
        lo = std::min(lo, r.size());
        hi = std::max(hi, r.size());
      }
      EXPECT_EQ(covered, n);
      EXPECT_LE(hi - lo, 1u);
    }
  }
}

TEST(CodecTest, MatrixRoundTrip) {
  Matrix m(3, 5);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.flat()[i] = static_cast<float>(i) * 0.25f - 1.0f;
  }
  const Matrix back = decode_matrix(encode_matrix(m));
  EXPECT_EQ(back, m);
}

TEST(CodecTest, MatrixRejectsTruncation) {
  Matrix m(2, 4);
  std::vector<std::uint8_t> bytes = encode_matrix(m);
  bytes.pop_back();
  EXPECT_THROW(decode_matrix(bytes), Error);
}

TEST(CodecTest, ProjectRoundTrip) {
  Matrix x(2, 8);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x.flat()[i] = static_cast<float>(i);
  }
  const auto bytes =
      encode_project(ProjectOp::batch, 3, LinearKind::gate_proj, x);
  const ProjectRequest req = decode_project(bytes);
  EXPECT_EQ(req.op, ProjectOp::batch);
  EXPECT_EQ(req.layer, 3u);
  EXPECT_EQ(req.kind, LinearKind::gate_proj);
  EXPECT_EQ(req.x, x);
}

TEST(CodecTest, ProjectRejectsBadDiscriminators) {
  Matrix x(1, 4);
  std::vector<std::uint8_t> bytes =
      encode_project(ProjectOp::single, 0, LinearKind::q_proj, x);
  bytes[0] = 0x7f;  // op discriminator
  EXPECT_THROW(decode_project(bytes), Error);
}

// --- JSON ------------------------------------------------------------------

TEST(JsonTest, ParsesScalarsAndContainers) {
  const JsonValue v = parse_json(
      R"({"a": [1, -2.5, true, false, null], "b": {"nested": "str"}, "n": 3e2})");
  ASSERT_EQ(v.kind, JsonValue::Kind::object);
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items.size(), 5u);
  EXPECT_EQ(a->items[0].number, 1.0);
  EXPECT_EQ(a->items[1].number, -2.5);
  EXPECT_TRUE(a->items[2].boolean);
  EXPECT_FALSE(a->items[3].boolean);
  EXPECT_EQ(a->items[4].kind, JsonValue::Kind::null);
  const JsonValue* nested = v.find("b")->find("nested");
  ASSERT_NE(nested, nullptr);
  EXPECT_EQ(nested->string, "str");
  EXPECT_EQ(v.find("n")->number, 300.0);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonTest, ParsesStringEscapes) {
  const JsonValue v = parse_json(R"("a\"b\\c\n\tAé")");
  EXPECT_EQ(v.string, "a\"b\\c\n\tA\xc3\xa9");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_THROW(parse_json(""), Error);
  EXPECT_THROW(parse_json("{"), Error);
  EXPECT_THROW(parse_json("[1,]"), Error);
  EXPECT_THROW(parse_json("{\"a\" 1}"), Error);
  EXPECT_THROW(parse_json("1 2"), Error);
  EXPECT_THROW(parse_json("\"unterminated"), Error);
  EXPECT_THROW(parse_json("truu"), Error);
}

TEST(JsonTest, RejectsExcessNesting) {
  std::string deep(64, '[');
  deep += std::string(64, ']');
  EXPECT_THROW(parse_json(deep, 32), Error);
  EXPECT_NO_THROW(parse_json(deep, 100));
}

TEST(JsonTest, EscapeHelper) {
  EXPECT_EQ(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

// --- HTTP parsing ----------------------------------------------------------

MemStream http_input(const std::string& text) {
  return MemStream(std::vector<std::uint8_t>(text.begin(), text.end()));
}

TEST(HttpTest, ParsesRequestWithBody) {
  MemStream in = http_input(
      "POST /v1/generate HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n"
      "Content-Type: application/json\r\n\r\nbody");
  BufferedReader reader(in);
  HttpRequest req;
  ASSERT_TRUE(read_http_request(reader, req));
  EXPECT_EQ(req.method, "POST");
  EXPECT_EQ(req.target, "/v1/generate");
  EXPECT_EQ(req.body, "body");
  ASSERT_NE(req.header("content-type"), nullptr);
  EXPECT_EQ(*req.header("content-type"), "application/json");
}

TEST(HttpTest, CleanEofReturnsFalse) {
  MemStream in = http_input("");
  BufferedReader reader(in);
  HttpRequest req;
  EXPECT_FALSE(read_http_request(reader, req));
}

TEST(HttpTest, RejectsMalformedInput) {
  const char* cases[] = {
      "GARBAGE\r\n\r\n",                          // no spaces
      "GET /x SPDY/3\r\n\r\n",                    // bad protocol
      "GET /x HTTP/1.1\r\nbadheader\r\n\r\n",     // no colon
      "GET /x HTTP/1.1\r\nContent-Length: a\r\n\r\n",
      "GET /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
      "GET /x HTTP/1.1\r\nContent-Length: 9999999999\r\n\r\n",  // > cap
      "GET /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",     // truncated
  };
  for (const char* text : cases) {
    MemStream in = http_input(text);
    BufferedReader reader(in);
    HttpRequest req;
    EXPECT_THROW(read_http_request(reader, req), Error) << text;
  }
}

TEST(HttpTest, EnforcesLineAndHeaderLimits) {
  HttpLimits tight;
  tight.max_line = 32;
  tight.max_headers = 2;
  {
    MemStream in = http_input("GET /" + std::string(100, 'x') +
                              " HTTP/1.1\r\n\r\n");
    BufferedReader reader(in);
    HttpRequest req;
    EXPECT_THROW(read_http_request(reader, req, tight), Error);
  }
  {
    MemStream in = http_input(
        "GET /x HTTP/1.1\r\nA: 1\r\nB: 2\r\nC: 3\r\n\r\n");
    BufferedReader reader(in);
    HttpRequest req;
    EXPECT_THROW(read_http_request(reader, req, tight), Error);
  }
}

TEST(HttpTest, WritesFixedAndChunkedResponses) {
  MemStream out;
  write_http_response(out, 200, "OK", "application/json", "{\"ok\":true}");
  const std::string fixed(out.written().begin(), out.written().end());
  EXPECT_NE(fixed.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(fixed.find("Content-Length: 11\r\n"), std::string::npos);
  EXPECT_NE(fixed.find("\r\n\r\n{\"ok\":true}"), std::string::npos);

  MemStream chunked;
  write_chunked_head(chunked, 200, "OK", "application/json");
  write_chunk(chunked, "hello");
  write_last_chunk(chunked);
  const std::string stream(chunked.written().begin(),
                           chunked.written().end());
  EXPECT_NE(stream.find("Transfer-Encoding: chunked\r\n"),
            std::string::npos);
  EXPECT_NE(stream.find("5\r\nhello\r\n0\r\n\r\n"), std::string::npos);
}

// --- HTTP front-end end-to-end ---------------------------------------------

ModelConfig small_config() {
  ModelConfig c;
  c.vocab_size = 24;
  c.dim = 16;
  c.n_layers = 2;
  c.n_heads = 2;
  c.ffn_dim = 24;
  return c;
}

std::string http_exchange(std::uint16_t port, const std::string& request) {
  Socket client = Socket::connect("127.0.0.1", port);
  client.write_all(request.data(), request.size());
  std::string response;
  char buf[4096];
  while (true) {
    const std::size_t n = client.read_some(buf, sizeof buf);
    if (n == 0) {
      break;
    }
    response.append(buf, n);
  }
  return response;
}

TEST(HttpServeTest, HealthzAndGenerateAgainstSoloEngine) {
  const Model model = Model::init(small_config(), 17);
  serve::ServeConfig scfg;
  scfg.max_context = 64;
  serve::ServeEngine engine(serve::make_backend(model), scfg);

  Listener listener(0);
  const std::uint16_t port = listener.port();
  HttpOptions options;
  options.max_requests = 3;
  std::thread server([&] { serve_http(listener, engine, options); });

  const std::string health =
      http_exchange(port, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(health.find("\"version\":"), std::string::npos);
  EXPECT_NE(health.find("\"proto_version\":"), std::string::npos);
  EXPECT_NE(health.find("\"uptime_seconds\":"), std::string::npos);

  const std::string body =
      R"({"prompt":[1,2,3],"max_new_tokens":4,"seed":9,"temperature":0.7})";
  const std::string generate = http_exchange(
      port,
      "POST /v1/generate HTTP/1.1\r\nHost: x\r\nContent-Length: " +
          std::to_string(body.size()) + "\r\n\r\n" + body);
  EXPECT_NE(generate.find("200 OK"), std::string::npos);
  const std::size_t json_at = generate.find("\r\n\r\n");
  ASSERT_NE(json_at, std::string::npos);
  const JsonValue parsed = parse_json(generate.substr(json_at + 4));
  ASSERT_NE(parsed.find("tokens"), nullptr);
  EXPECT_EQ(parsed.find("tokens")->items.size(), 4u);
  EXPECT_EQ(parsed.find("finish")->string, "max_tokens");

  const std::string missing =
      http_exchange(port, "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(missing.find("404"), std::string::npos);
  server.join();
}

TEST(HttpServeTest, MetricsAndStatzEndpoints) {
  // Telemetry on so the engine records the serve.* latency histograms the
  // /metrics scrape must expose.
  obs::reset_metrics();
  obs::set_telemetry(true);
  const Model model = Model::init(small_config(), 17);
  serve::ServeConfig scfg;
  scfg.max_context = 64;
  serve::ServeEngine engine(serve::make_backend(model), scfg);

  Listener listener(0);
  const std::uint16_t port = listener.port();
  HttpOptions options;
  options.max_requests = 3;
  options.statz_extra = [] { return std::string("\"extra\": 42"); };
  std::thread server([&] { serve_http(listener, engine, options); });

  // One generate so queue-wait/prefill/TPOT histograms have samples.
  const std::string body = R"({"prompt":[1,2,3],"max_new_tokens":4,"seed":9})";
  http_exchange(port,
                "POST /v1/generate HTTP/1.1\r\nHost: x\r\nContent-Length: " +
                    std::to_string(body.size()) + "\r\n\r\n" + body);

  const std::string metrics =
      http_exchange(port, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("# TYPE aptq_serve_queue_wait_ms summary"),
            std::string::npos);
  EXPECT_NE(metrics.find("# TYPE aptq_serve_prefill_ms summary"),
            std::string::npos);
  EXPECT_NE(metrics.find("# TYPE aptq_serve_tpot_ms summary"),
            std::string::npos);
  EXPECT_NE(metrics.find("aptq_serve_queue_wait_ms{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(metrics.find("aptq_serve_tokens_generated 4"), std::string::npos);

  const std::string statz =
      http_exchange(port, "GET /statz HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(statz.find("200 OK"), std::string::npos);
  const std::size_t json_at = statz.find("\r\n\r\n");
  ASSERT_NE(json_at, std::string::npos);
  const JsonValue parsed = parse_json(statz.substr(json_at + 4));
  ASSERT_NE(parsed.find("kv"), nullptr);
  EXPECT_NE(parsed.find("kv")->find("pages"), nullptr);
  ASSERT_NE(parsed.find("backpressure"), nullptr);
  ASSERT_NE(parsed.find("evicted"), nullptr);
  ASSERT_NE(parsed.find("completed"), nullptr);
  EXPECT_EQ(parsed.find("completed")->number, 1.0);
  ASSERT_NE(parsed.find("extra"), nullptr);  // statz_extra merged in
  EXPECT_EQ(parsed.find("extra")->number, 42.0);

  server.join();
  obs::set_telemetry(false);
  obs::reset_metrics();
}

TEST(HttpServeTest, StreamingGenerateChunksMatchBlockingTokens) {
  const Model model = Model::init(small_config(), 17);
  serve::ServeConfig scfg;
  scfg.max_context = 64;
  serve::ServeEngine engine(serve::make_backend(model), scfg);

  Listener listener(0);
  const std::uint16_t port = listener.port();
  HttpOptions options;
  options.max_requests = 2;
  std::thread server([&] { serve_http(listener, engine, options); });

  const std::string body =
      R"({"prompt":[4,5],"max_new_tokens":5,"seed":3,"stream":true})";
  const auto request = [&](const std::string& b) {
    return "POST /v1/generate HTTP/1.1\r\nHost: x\r\nContent-Length: " +
           std::to_string(b.size()) + "\r\n\r\n" + b;
  };
  const std::string streamed = http_exchange(port, request(body));
  EXPECT_NE(streamed.find("Transfer-Encoding: chunked"), std::string::npos);
  // 5 per-token lines, then the summary line carrying the full token list.
  std::vector<TokenId> chunk_tokens;
  std::size_t at = 0;
  while ((at = streamed.find("{\"token\":", at)) != std::string::npos) {
    at += 9;
    chunk_tokens.push_back(
        static_cast<TokenId>(std::stol(streamed.substr(at))));
  }
  ASSERT_EQ(chunk_tokens.size(), 5u);

  // Same request (new seed stream id, same engine model) without
  // streaming: the summary and blocking responses carry identical tokens
  // for identical (seed, id) — here we just cross-check the summary line
  // against the streamed chunks.
  const std::size_t sum_at = streamed.find("\"tokens\":[");
  ASSERT_NE(sum_at, std::string::npos);
  std::string list = streamed.substr(sum_at + 10);
  list = list.substr(0, list.find(']'));
  std::vector<TokenId> summary_tokens;
  std::size_t pos = 0;
  while (pos < list.size()) {
    summary_tokens.push_back(
        static_cast<TokenId>(std::stol(list.substr(pos))));
    const std::size_t comma = list.find(',', pos);
    if (comma == std::string::npos) {
      break;
    }
    pos = comma + 1;
  }
  EXPECT_EQ(summary_tokens, chunk_tokens);

  const std::string bad = http_exchange(port, request("{\"prompt\":7}"));
  EXPECT_NE(bad.find("400"), std::string::npos);
  server.join();
}

}  // namespace
}  // namespace aptq::net
