// Unit tests for src/eval: perplexity evaluation, zero-shot task generation
// (structure, difficulty ordering, determinism) and the scoring harness.
#include <gtest/gtest.h>

#include <cmath>

#include "eval/harness.hpp"
#include "eval/perplexity.hpp"
#include "eval/tasks.hpp"
#include "model/forward.hpp"

namespace aptq {
namespace {

ModelConfig small_config() {
  ModelConfig c;
  c.vocab_size = 16;
  c.dim = 12;
  c.n_layers = 2;
  c.n_heads = 2;
  c.ffn_dim = 16;
  return c;
}

MarkovSpec small_corpus_spec() {
  MarkovSpec s;
  s.seed = 31;
  s.vocab_size = 16;
  s.topics = 2;
  s.branching = 3;
  return s;
}

TEST(Perplexity, UniformModelGivesVocabSize) {
  // A model emitting constant logits predicts uniformly: ppl == vocab size.
  Model m = Model::init(small_config(), 1);
  m.lm_head.set_zero();
  const Corpus corpus("t", small_corpus_spec(), 500, 300, 2);
  const auto segs = corpus.eval_segments(32, 4);
  const auto res = evaluate_perplexity(m, segs);
  EXPECT_NEAR(res.perplexity, 16.0, 0.01);
  EXPECT_EQ(res.tokens, 4u * 31u);
  EXPECT_NEAR(res.nll, std::log(16.0), 1e-4);
}

TEST(Perplexity, DeterministicAndRejectsEmpty) {
  const Model m = Model::init(small_config(), 3);
  const Corpus corpus("t", small_corpus_spec(), 500, 300, 4);
  const auto segs = corpus.eval_segments(16, 3);
  EXPECT_DOUBLE_EQ(evaluate_perplexity(m, segs).perplexity,
                   evaluate_perplexity(m, segs).perplexity);
  EXPECT_THROW(evaluate_perplexity(m, {}), Error);
}

TEST(Perplexity, ActQuantDegradesGracefully) {
  const Model m = Model::init(small_config(), 5);
  const Corpus corpus("t", small_corpus_spec(), 500, 300, 6);
  const auto segs = corpus.eval_segments(16, 4);
  const double exact = evaluate_perplexity(m, segs).perplexity;
  ForwardOptions a8;
  a8.act_quant_bits = 8;
  const double ppl8 = evaluate_perplexity(m, segs, a8).perplexity;
  ForwardOptions a3;
  a3.act_quant_bits = 3;
  const double ppl3 = evaluate_perplexity(m, segs, a3).perplexity;
  EXPECT_NEAR(ppl8, exact, 0.05 * exact);
  EXPECT_GT(ppl3, ppl8 * 0.99);
}

TEST(Tasks, AllFamiliesGenerateWellFormedItems) {
  const Corpus corpus("t", small_corpus_spec(), 2000, 300, 7);
  TaskGenConfig cfg;
  cfg.n_items = 20;
  for (const TaskFamily family : all_task_families()) {
    const auto items = generate_task(family, corpus, cfg);
    ASSERT_EQ(items.size(), 20u) << task_name(family);
    const std::size_t expected_choices =
        (family == TaskFamily::piqa || family == TaskFamily::winogrande) ? 2
                                                                         : 4;
    for (const auto& item : items) {
      EXPECT_EQ(item.context.size(), cfg.context_len);
      ASSERT_EQ(item.choices.size(), expected_choices) << task_name(family);
      EXPECT_LT(item.label, item.choices.size());
      for (const auto& choice : item.choices) {
        EXPECT_EQ(choice.size(), cfg.continuation_len);
        for (const TokenId t : choice) {
          EXPECT_GE(t, 0);
          EXPECT_LT(t, 16);
        }
      }
    }
  }
}

TEST(Tasks, LabelsAreShuffled) {
  const Corpus corpus("t", small_corpus_spec(), 2000, 300, 8);
  TaskGenConfig cfg;
  cfg.n_items = 60;
  const auto items = generate_task(TaskFamily::hellaswag, corpus, cfg);
  std::vector<int> label_counts(4, 0);
  for (const auto& item : items) {
    ++label_counts[item.label];
  }
  for (const int c : label_counts) {
    EXPECT_GT(c, 2);  // every position used
  }
}

TEST(Tasks, DeterministicInSeed) {
  const Corpus corpus("t", small_corpus_spec(), 2000, 300, 9);
  TaskGenConfig cfg;
  cfg.n_items = 5;
  const auto a = generate_task(TaskFamily::piqa, corpus, cfg);
  const auto b = generate_task(TaskFamily::piqa, corpus, cfg);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].context, b[i].context);
    EXPECT_EQ(a[i].label, b[i].label);
  }
  cfg.seed += 1;
  const auto c = generate_task(TaskFamily::piqa, corpus, cfg);
  EXPECT_NE(a[0].context, c[0].context);
}

TEST(Tasks, SuiteContainsAllFamilies) {
  const Corpus corpus("t", small_corpus_spec(), 2000, 300, 10);
  TaskGenConfig cfg;
  cfg.n_items = 4;
  const auto suite = generate_task_suite(corpus, cfg);
  ASSERT_EQ(suite.size(), 5u);
  EXPECT_EQ(suite[0][0].choices.size(), 2u);   // piqa
  EXPECT_EQ(suite[2][0].choices.size(), 4u);   // arc-easy
}

TEST(Tasks, ArcChallengeDistractorsAreCoherentBranchFlips) {
  const Corpus corpus("t", small_corpus_spec(), 2000, 300, 11);
  TaskGenConfig cfg;
  cfg.n_items = 10;
  const auto items = generate_task(TaskFamily::arc_challenge, corpus, cfg);
  for (const auto& item : items) {
    const TokenSeq& correct = item.choices[item.label];
    for (std::size_t i = 0; i < item.choices.size(); ++i) {
      if (i == item.label) {
        continue;
      }
      const TokenSeq& d = item.choices[i];
      ASSERT_EQ(d.size(), correct.size());
      // Differs from the truth, with a shared prefix up to the flip point.
      std::size_t first_diff = d.size();
      for (std::size_t t = 0; t < d.size(); ++t) {
        if (d[t] != correct[t]) {
          first_diff = t;
          break;
        }
      }
      EXPECT_LT(first_diff, d.size()) << "distractor equals truth";
      EXPECT_LT(first_diff, d.size() - 1) << "flip must leave a tail";
    }
  }
}

TEST(Harness, OracleLikeScoringPrefersTrueContinuation) {
  // Score with the *generating process itself* approximated by a trained
  // model is tested in integration; here use a synthetic sanity model that
  // deterministically continues ramps.
  const Corpus corpus("t", small_corpus_spec(), 2000, 300, 12);
  TaskGenConfig cfg;
  cfg.n_items = 30;
  const auto items = generate_task(TaskFamily::arc_easy, corpus, cfg);
  // Untrained model: accuracy should hover near chance (1/4), far below 1.
  const Model m = Model::init(small_config(), 13);
  const TaskResult res = evaluate_task(m, "arce", items);
  EXPECT_GT(res.accuracy, 0.02);
  EXPECT_LT(res.accuracy, 0.75);
  EXPECT_EQ(res.n_items, 30u);
}

TEST(Harness, ContinuationLogprobIsLengthNormalizedLogProb) {
  Model m = Model::init(small_config(), 14);
  m.lm_head.set_zero();  // uniform predictions
  const TokenSeq ctx = {1, 2, 3};
  const TokenSeq cont = {4, 5};
  const double lp = continuation_logprob(m, ctx, cont);
  EXPECT_NEAR(lp, -std::log(16.0), 1e-4);
}

TEST(Harness, PredictChoiceReturnsArgmax) {
  Model m = Model::init(small_config(), 15);
  TaskItem item;
  item.context = {1, 2, 3, 4};
  item.choices = {{5, 6}, {7, 8}, {9, 10}};
  item.label = 0;
  const std::size_t pred = predict_choice(m, item);
  // Must equal the manual argmax.
  double best = -1e300;
  std::size_t manual = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    const double s = continuation_logprob(m, item.context, item.choices[i]);
    if (s > best) {
      best = s;
      manual = i;
    }
  }
  EXPECT_EQ(pred, manual);
}

TEST(Harness, ZeroShotReportAggregates) {
  const Corpus corpus("t", small_corpus_spec(), 2000, 300, 16);
  TaskGenConfig cfg;
  cfg.n_items = 6;
  const auto suite = generate_task_suite(corpus, cfg);
  const Model m = Model::init(small_config(), 17);
  const ZeroShotReport report = evaluate_zero_shot(m, suite);
  ASSERT_EQ(report.tasks.size(), 5u);
  double mean = 0.0;
  for (const auto& t : report.tasks) {
    mean += t.accuracy;
  }
  EXPECT_NEAR(report.mean_accuracy, mean / 5.0, 1e-12);
  EXPECT_EQ(report.tasks[0].task, "piqa-sim");
  EXPECT_EQ(report.tasks[4].task, "winogrande-sim");
}

TEST(Harness, RejectsDegenerateInputs) {
  const Model m = Model::init(small_config(), 18);
  TaskItem bad;
  bad.context = {1};
  bad.choices = {{2, 3}};
  EXPECT_THROW(predict_choice(m, bad), Error);
  EXPECT_THROW(evaluate_task(m, "x", {}), Error);
  std::vector<std::vector<TaskItem>> short_suite(3);
  EXPECT_THROW(evaluate_zero_shot(m, short_suite), Error);
}

}  // namespace
}  // namespace aptq
