// Unit tests for src/data: Markov source distributions, corpus splits and
// segment sampling, oracle NLL sanity, and the calibration sampler.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "data/corpus.hpp"
#include "data/markov.hpp"

namespace aptq {
namespace {

MarkovSpec small_spec() {
  MarkovSpec s;
  s.seed = 99;
  s.vocab_size = 16;
  s.topics = 2;
  s.branching = 3;
  s.topic_switch_prob = 0.05;
  return s;
}

TEST(Markov, UnigramIsNormalizedDistribution) {
  const MarkovSource src(small_spec());
  double sum = 0.0;
  for (const float p : src.unigram()) {
    EXPECT_GE(p, 0.0f);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-5);
}

TEST(Markov, TransitionRowsAreDistributions) {
  const MarkovSource src(small_spec());
  for (std::size_t topic = 0; topic < 2; ++topic) {
    for (TokenId a = 0; a < 16; a += 5) {
      for (TokenId b = 0; b < 16; b += 7) {
        double sum = 0.0;
        for (TokenId n = 0; n < 16; ++n) {
          const double p = src.probability(a, b, n, topic);
          EXPECT_GE(p, 0.0);
          sum += p;
        }
        EXPECT_NEAR(sum, 1.0, 1e-4);
      }
    }
  }
}

TEST(Markov, GenerationIsDeterministicInSeed) {
  const MarkovSource src(small_spec());
  Rng a(5), b(5);
  EXPECT_EQ(src.generate(200, a), src.generate(200, b));
}

TEST(Markov, GenerationRespectsVocab) {
  const MarkovSource src(small_spec());
  Rng rng(6);
  for (const TokenId t : src.generate(500, rng)) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 16);
  }
}

TEST(Markov, TableConstructionIsSeedDeterministic) {
  const MarkovSource a(small_spec());
  const MarkovSource b(small_spec());
  Rng ra(7), rb(7);
  EXPECT_EQ(a.generate(100, ra), b.generate(100, rb));
}

TEST(Markov, DifferentTableSeedsProduceDifferentProcesses) {
  auto spec2 = small_spec();
  spec2.seed = 100;
  const MarkovSource a(small_spec());
  const MarkovSource b(spec2);
  Rng ra(7), rb(7);
  EXPECT_NE(a.generate(200, ra), b.generate(200, rb));
}

TEST(Markov, OracleNllBelowUniformEntropy) {
  const auto spec = small_spec();
  const MarkovSource src(spec);
  Rng rng(8);
  std::vector<std::uint8_t> topics;
  const TokenSeq seq = src.generate(4000, rng, &topics);
  const double nll = src.oracle_nll(seq, topics);
  // Far below uniform entropy log(16) and above zero.
  EXPECT_GT(nll, 0.1);
  EXPECT_LT(nll, std::log(16.0) * 0.9);
}

TEST(Markov, TopicTraceMatchesLength) {
  const MarkovSource src(small_spec());
  Rng rng(9);
  std::vector<std::uint8_t> topics;
  const TokenSeq seq = src.generate(300, rng, &topics);
  ASSERT_EQ(topics.size(), seq.size());
  for (const auto t : topics) {
    EXPECT_LT(t, 2);
  }
}

TEST(Markov, BranchingConcentratesMass) {
  // With branching 3 and smoothing 0.05, the top-3 successors of any context
  // should hold ~95% of the mass.
  const MarkovSource src(small_spec());
  std::vector<double> probs(16);
  for (TokenId n = 0; n < 16; ++n) {
    probs[static_cast<std::size_t>(n)] = src.probability(3, 7, n, 0);
  }
  std::sort(probs.begin(), probs.end(), std::greater<>());
  EXPECT_GT(probs[0] + probs[1] + probs[2], 0.90);
}

TEST(Markov, RejectsBadSpecs) {
  MarkovSpec s = small_spec();
  s.branching = 100;
  EXPECT_THROW(MarkovSource{s}, Error);
  s = small_spec();
  s.vocab_size = 2;
  EXPECT_THROW(MarkovSource{s}, Error);
  s = small_spec();
  s.smoothing = 1.5;
  EXPECT_THROW(MarkovSource{s}, Error);
}

TEST(Corpus, SplitsHaveRequestedSizes) {
  const Corpus c("test", small_spec(), 2000, 500, 11);
  EXPECT_EQ(c.train_tokens().size(), 2000u);
  EXPECT_EQ(c.eval_tokens().size(), 500u);
  EXPECT_EQ(c.name(), "test");
}

TEST(Corpus, TrainAndEvalAreDifferentStreams) {
  const Corpus c("test", small_spec(), 500, 500, 11);
  EXPECT_NE(c.train_tokens(), c.eval_tokens());
}

TEST(Corpus, SegmentSamplingInBounds) {
  const Corpus c("test", small_spec(), 1000, 200, 12);
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    const TokenSeq seg = c.sample_train_segment(32, rng);
    EXPECT_EQ(seg.size(), 32u);
  }
  EXPECT_THROW(c.sample_train_segment(2000, rng), Error);
}

TEST(Corpus, EvalSegmentsPartitionDeterministically) {
  const Corpus c("test", small_spec(), 500, 400, 14);
  const auto segs = c.eval_segments(64, 100);
  EXPECT_EQ(segs.size(), 6u);  // 400 / 64
  for (const auto& s : segs) {
    EXPECT_EQ(s.size(), 64u);
  }
  // First segment is the prefix of the eval split.
  EXPECT_TRUE(std::equal(segs[0].begin(), segs[0].end(),
                         c.eval_tokens().begin()));
  EXPECT_EQ(c.eval_segments(64, 2).size(), 2u);
}

TEST(Corpus, OracleEvalNllIsFinitePositive) {
  const Corpus c("test", small_spec(), 500, 2000, 15);
  const double nll = c.oracle_eval_nll();
  EXPECT_GT(nll, 0.0);
  EXPECT_LT(nll, std::log(16.0));
}

TEST(CorpusSpecs, C4AndWikiDiffer) {
  const auto c4 = c4sim_spec(64);
  const auto wiki = wikisim_spec(64);
  EXPECT_NE(c4.seed, wiki.seed);
  EXPECT_GT(c4.topics, wiki.topics);
  EXPECT_GT(c4.branching, wiki.branching);
  EXPECT_EQ(c4.vocab_size, 64u);
}

TEST(CorpusSpecs, WikiHasLowerEntropyFloor) {
  // WikiSim is built to be more predictable than C4Sim (lower branching).
  const Corpus c4("c4", c4sim_spec(32), 500, 3000, 16);
  const Corpus wiki("wiki", wikisim_spec(32), 500, 3000, 16);
  EXPECT_LT(wiki.oracle_eval_nll(), c4.oracle_eval_nll());
}

TEST(Calibration, ProducesRequestedSegments) {
  const Corpus c("test", small_spec(), 3000, 200, 17);
  const auto calib = sample_calibration_set(c, 16, 48, 99);
  EXPECT_EQ(calib.size(), 16u);
  for (const auto& seg : calib) {
    EXPECT_EQ(seg.size(), 48u);
  }
}

TEST(Calibration, DeterministicInSeed) {
  const Corpus c("test", small_spec(), 3000, 200, 17);
  EXPECT_EQ(sample_calibration_set(c, 8, 32, 1),
            sample_calibration_set(c, 8, 32, 1));
  EXPECT_NE(sample_calibration_set(c, 8, 32, 1),
            sample_calibration_set(c, 8, 32, 2));
}

}  // namespace
}  // namespace aptq
