// Equivalence and correctness suite for the continuous-batching serving
// engine (serve/engine.hpp).
//
// The core contract: every request's token stream under continuous
// batching is byte-identical to decoding that request alone through
// decode_prefill / decode_step + sample_token with its private RNG stream
// (Rng::for_stream(seed, id)) — across batch sizes, thread counts, dense
// and packed backends, and staggered arrival orders. Plus scheduler
// behavior (priority, admission, rejection), KV-pool lifecycle,
// context-overflow eviction, and the serve.* telemetry.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <string>
#include <tuple>

#include "obs/control.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "quant/packed_model.hpp"
#include "serve/engine.hpp"
#include "util/threadpool.hpp"

namespace aptq::serve {
namespace {

ModelConfig test_config() {
  ModelConfig c;
  c.vocab_size = 24;
  c.dim = 16;
  c.n_layers = 3;
  c.n_heads = 2;
  c.ffn_dim = 24;
  return c;
}

TokenSeq tokens_for(std::size_t n, std::uint64_t seed, std::size_t vocab) {
  Rng rng(seed);
  TokenSeq t(n);
  for (auto& v : t) {
    v = static_cast<TokenId>(rng.index(vocab));
  }
  return t;
}

PackedModel packed_for(const Model& m) {
  QuantSpec spec;
  spec.bits = 4;
  spec.group_size = 8;
  return PackedModel::pack_uniform(m, spec);
}

const ModelConfig& config_of(const Model& m) { return m.config; }
const ModelConfig& config_of(const PackedModel& m) { return m.config(); }

// The sequential oracle: one request, alone, on a fresh DecodeState, with
// the same stopping rules the engine applies. This is the definition of
// the determinism contract (docs/SERVING.md).
struct ReferenceRun {
  TokenSeq tokens;
  FinishReason finish = FinishReason::none;
};

template <typename ModelT>
ReferenceRun reference_run(const ModelT& model, const Request& req,
                           RequestId id, std::size_t max_context) {
  Rng rng = Rng::for_stream(req.seed, id);
  DecodeState state(config_of(model), max_context);
  const Matrix pre = decode_prefill(model, req.prompt, state);
  const auto last = pre.row(pre.rows() - 1);
  std::vector<float> logits(last.begin(), last.end());
  ReferenceRun out;
  while (true) {
    const TokenId tok = sample_token(logits, req.sampling, rng);
    out.tokens.push_back(tok);
    if (req.eos_token >= 0 && tok == req.eos_token) {
      out.finish = FinishReason::eos;
      break;
    }
    if (out.tokens.size() >= req.max_new_tokens) {
      out.finish = FinishReason::max_tokens;
      break;
    }
    if (state.pos() >= state.max_context()) {
      out.finish = FinishReason::context_full;
      break;
    }
    logits = decode_step(model, tok, state);
  }
  return out;
}

// A mixed bag of requests: varying prompt lengths (so prefills of
// different shapes fold into in-flight decode steps), temperatures, top-k,
// seeds, priorities, and a couple of eos-terminated ones.
std::vector<Request> make_requests(std::size_t vocab) {
  std::vector<Request> reqs;
  Rng rng(99);
  for (int i = 0; i < 10; ++i) {
    Request r;
    r.prompt = tokens_for(3 + rng.index(8), 100 + static_cast<std::uint64_t>(i),
                          vocab);
    r.max_new_tokens = 4 + rng.index(9);
    r.sampling.temperature = (i % 3 == 0) ? 0.7f : 1.1f;
    r.sampling.top_k = (i % 2 == 0) ? 0 : 5;
    r.seed = 1000 + static_cast<std::uint64_t>(i);
    r.priority = static_cast<int>(rng.index(3));
    if (i == 4 || i == 7) {
      r.eos_token = static_cast<TokenId>(rng.index(vocab));
    }
    reqs.push_back(r);
  }
  return reqs;
}

template <typename ModelT>
void expect_equivalence(const ModelT& model, std::size_t max_batch,
                        const char* label) {
  ServeConfig cfg;
  cfg.max_batch = max_batch;
  cfg.max_context = 48;
  ServeEngine engine(make_backend(model), cfg);
  const std::vector<Request> reqs = make_requests(config_of(model).vocab_size);
  for (const Request& r : reqs) {
    engine.submit(r);
  }
  const std::vector<GenerationResult> results = engine.run();
  ASSERT_EQ(results.size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const ReferenceRun ref =
        reference_run(model, reqs[i], results[i].id, cfg.max_context);
    EXPECT_EQ(results[i].tokens, ref.tokens)
        << label << " batch=" << max_batch << " request " << results[i].id;
    EXPECT_EQ(results[i].finish, ref.finish)
        << label << " batch=" << max_batch << " request " << results[i].id;
    EXPECT_EQ(results[i].prompt_tokens, reqs[i].prompt.size());
  }
}

// (batch size, thread count) grid: tokens must be identical to the solo
// decode in every cell, for both backends.
class ServeEquivalence
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
 protected:
  ServeEquivalence() {
    ThreadPool::set_global_threads(std::get<1>(GetParam()));
  }
  ~ServeEquivalence() override { ThreadPool::set_global_threads(1); }
};

TEST_P(ServeEquivalence, DenseMatchesSequentialDecode) {
  const Model m = Model::init(test_config(), 21);
  expect_equivalence(m, std::get<0>(GetParam()), "dense");
}

TEST_P(ServeEquivalence, PackedMatchesSequentialDecode) {
  const Model m = Model::init(test_config(), 22);
  const PackedModel pm = packed_for(m);
  expect_equivalence(pm, std::get<0>(GetParam()), "packed");
}

INSTANTIATE_TEST_SUITE_P(
    BatchByThreads, ServeEquivalence,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{8}),
                       ::testing::Values(std::size_t{1}, std::size_t{4})));

// Serving from the committed packed-format-v2 fixture must produce the
// exact token streams of a fresh format-v3 pack of the same model: the
// back-compat reader reproduces codes and group parameters bit-for-bit,
// and the engine is deterministic, so there is no tolerance here. Dense
// backends at the same batch sizes are pinned to the sequential oracle by
// ServeEquivalence above.
class ServeV2Oracle : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ServeV2Oracle, PackedV3StreamsMatchV2FixtureStreams) {
  const std::string fixture =
      std::string(APTQ_GOLDEN_DIR) + "/packed_v2_fixture.bin";
  ASSERT_TRUE(std::filesystem::exists(fixture))
      << "missing fixture " << fixture;
  const PackedModel v2 = PackedModel::load(fixture);
  ModelConfig c;
  c.vocab_size = 16;
  c.dim = 12;
  c.n_layers = 2;
  c.n_heads = 2;
  c.ffn_dim = 16;
  QuantSpec spec;
  spec.bits = 4;
  spec.group_size = 4;
  const PackedModel v3 = PackedModel::pack_uniform(Model::init(c, 11), spec);

  ServeConfig cfg;
  cfg.max_batch = GetParam();
  cfg.max_context = 48;
  ServeEngine a(make_backend(v2), cfg);
  ServeEngine b(make_backend(v3), cfg);
  const std::vector<Request> reqs = make_requests(c.vocab_size);
  for (const Request& r : reqs) {
    a.submit(r);
    b.submit(r);
  }
  const std::vector<GenerationResult> ra = a.run();
  const std::vector<GenerationResult> rb = b.run();
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].tokens, rb[i].tokens) << "request " << ra[i].id;
    EXPECT_EQ(ra[i].finish, rb[i].finish) << "request " << ra[i].id;
  }
}

INSTANTIATE_TEST_SUITE_P(Batch, ServeV2Oracle,
                         ::testing::Values(std::size_t{1}, std::size_t{8}));

// Arrival order must not matter: requests submitted mid-flight (folded
// into in-progress decode batches) still produce their solo streams.
TEST(ServeStaggeredArrivals, TokensIndependentOfArrivalOrder) {
  ThreadPool::set_global_threads(4);
  const Model m = Model::init(test_config(), 21);
  ServeConfig cfg;
  cfg.max_batch = 4;
  cfg.max_context = 48;
  ServeEngine engine(make_backend(m), cfg);
  const std::vector<Request> reqs = make_requests(m.config.vocab_size);

  std::vector<RequestId> ids;
  for (std::size_t i = 0; i < 3; ++i) {
    ids.push_back(engine.submit(reqs[i]));
  }
  engine.step();
  engine.step();
  for (std::size_t i = 3; i < 7; ++i) {
    ids.push_back(engine.submit(reqs[i]));
  }
  engine.step();
  for (std::size_t i = 7; i < reqs.size(); ++i) {
    ids.push_back(engine.submit(reqs[i]));
  }
  const std::vector<GenerationResult> results = engine.run();
  ThreadPool::set_global_threads(1);

  ASSERT_EQ(results.size(), reqs.size());
  std::map<RequestId, const GenerationResult*> by_id;
  for (const auto& r : results) {
    by_id[r.id] = &r;
  }
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const ReferenceRun ref =
        reference_run(m, reqs[i], ids[i], cfg.max_context);
    ASSERT_TRUE(by_id.count(ids[i]));
    EXPECT_EQ(by_id[ids[i]]->tokens, ref.tokens) << "request " << ids[i];
  }
}

TEST(ServeScheduler, PriorityBeatsFifoAndFifoBreaksTies) {
  const Model m = Model::init(test_config(), 23);
  ServeConfig cfg;
  cfg.max_batch = 1;  // serialize so completion order mirrors admission
  cfg.max_context = 32;
  ServeEngine engine(make_backend(m), cfg);
  Request base;
  base.prompt = tokens_for(4, 1, m.config.vocab_size);
  base.max_new_tokens = 3;

  Request low = base;
  low.priority = 0;
  Request high_a = base;
  high_a.priority = 5;
  Request high_b = base;
  high_b.priority = 5;
  const RequestId id_low = engine.submit(low);
  const RequestId id_high_a = engine.submit(high_a);
  const RequestId id_high_b = engine.submit(high_b);

  std::map<RequestId, std::size_t> done_step;
  for (const auto& r : engine.run()) {
    done_step[r.id] = r.completion_step;
  }
  EXPECT_LT(done_step[id_high_a], done_step[id_high_b]);
  EXPECT_LT(done_step[id_high_b], done_step[id_low]);
}

TEST(ServeScheduler, ContextOverflowEvictsInsteadOfThrowing) {
  const Model m = Model::init(test_config(), 24);
  ServeConfig cfg;
  cfg.max_batch = 2;
  cfg.max_context = 8;
  ServeEngine engine(make_backend(m), cfg);

  Request big;
  big.prompt = tokens_for(6, 2, m.config.vocab_size);
  big.max_new_tokens = 50;  // cannot fit: 6 prompt + 2 steps of headroom
  Request small;
  small.prompt = tokens_for(3, 3, m.config.vocab_size);
  small.max_new_tokens = 2;
  const RequestId id_big = engine.submit(big);
  const RequestId id_small = engine.submit(small);

  const auto results = engine.run();
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    if (r.id == id_big) {
      EXPECT_EQ(r.finish, FinishReason::context_full);
      // Prefill fills 6 positions; one token from the prefill logits, then
      // steps until the cache is full: 1 + (8 - 6) = 3 tokens.
      EXPECT_EQ(r.tokens.size(), 3u);
    } else {
      EXPECT_EQ(r.id, id_small);
      EXPECT_EQ(r.finish, FinishReason::max_tokens);
      EXPECT_EQ(r.tokens.size(), 2u);
    }
  }
  // The evicted slot was recycled: the pool is fully free again.
  EXPECT_EQ(engine.pool().in_use(), 0u);
}

// Eviction must be surgical: when one request hits context_full mid-batch,
// every co-scheduled request's stream must still match its solo oracle —
// the eviction may not perturb neighbours sharing the paged arena.
TEST(ServeScheduler, EvictionAtBatchGreaterThanOneDoesNotPerturbNeighbors) {
  const Model m = Model::init(test_config(), 29);
  ServeConfig cfg;
  cfg.max_batch = 3;
  cfg.max_context = 10;
  ServeEngine engine(make_backend(m), cfg);

  Request evicted;  // overruns the context mid-flight
  evicted.prompt = tokens_for(7, 10, m.config.vocab_size);
  evicted.max_new_tokens = 50;
  evicted.seed = 41;
  Request neighbor_a;  // co-scheduled, finishes normally
  neighbor_a.prompt = tokens_for(3, 11, m.config.vocab_size);
  neighbor_a.max_new_tokens = 6;
  neighbor_a.seed = 42;
  Request neighbor_b;  // still decoding when the eviction happens
  neighbor_b.prompt = tokens_for(2, 12, m.config.vocab_size);
  neighbor_b.max_new_tokens = 7;
  neighbor_b.seed = 43;
  const std::vector<Request> reqs = {evicted, neighbor_a, neighbor_b};
  std::vector<RequestId> ids;
  for (const Request& r : reqs) {
    ids.push_back(engine.submit(r));
  }
  const auto results = engine.run();
  ASSERT_EQ(results.size(), 3u);
  bool saw_eviction = false;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const ReferenceRun ref =
        reference_run(m, reqs[i], ids[i], cfg.max_context);
    EXPECT_EQ(results[i].tokens, ref.tokens) << "request " << ids[i];
    EXPECT_EQ(results[i].finish, ref.finish) << "request " << ids[i];
    saw_eviction |= results[i].finish == FinishReason::context_full;
  }
  ASSERT_TRUE(saw_eviction) << "workload no longer exercises eviction";
  EXPECT_EQ(engine.pool().in_use(), 0u);
  EXPECT_EQ(engine.pool().pages_in_use(), 0u);  // evicted pages returned
}

// Oversubscribed arena: fewer pages than every slot needs at max_context.
// Admission must wait for pages (backpressure), not throw mid-decode, and
// every request must still complete.
TEST(ServeScheduler, PageExhaustionAppliesBackpressureAtAdmission) {
  const Model m = Model::init(test_config(), 30);
  ServeConfig cfg;
  cfg.max_batch = 4;
  cfg.max_context = 32;
  cfg.kv_page_positions = 8;
  // Each request's whole lifetime (5 prompt + 2 step positions = 7) fits
  // one 8-position page, and 4 concurrent requests would want 4 pages.
  // Grant 3: at most three requests hold pages at once, the rest queue
  // until a retirement returns a page.
  cfg.kv_pages = 3;
  ServeEngine engine(make_backend(m), cfg);
  std::vector<Request> reqs;
  std::vector<RequestId> ids;
  for (int i = 0; i < 6; ++i) {
    Request r;
    r.prompt = tokens_for(5, 20 + i, m.config.vocab_size);
    r.max_new_tokens = 3;
    r.seed = 500 + static_cast<std::uint64_t>(i);
    reqs.push_back(r);
    ids.push_back(engine.submit(r));
  }
  const auto results = engine.run();
  ASSERT_EQ(results.size(), reqs.size());
  // Backpressure really engaged: the batch never reached max_batch because
  // the arena could not map four working sets at once.
  EXPECT_LT(engine.stats().peak_active, cfg.max_batch);
  EXPECT_GE(engine.stats().peak_active, 1u);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const ReferenceRun ref =
        reference_run(m, reqs[i], ids[i], cfg.max_context);
    EXPECT_EQ(results[i].tokens, ref.tokens) << "request " << ids[i];
    EXPECT_EQ(results[i].finish, ref.finish) << "request " << ids[i];
  }
  EXPECT_EQ(engine.pool().pages_in_use(), 0u);
}

TEST(ServeScheduler, OverlongPromptIsRejectedNotFatal) {
  const Model m = Model::init(test_config(), 25);
  ServeConfig cfg;
  cfg.max_batch = 2;
  cfg.max_context = 8;
  ServeEngine engine(make_backend(m), cfg);

  Request too_long;
  too_long.prompt = tokens_for(9, 4, m.config.vocab_size);
  Request fine;
  fine.prompt = tokens_for(3, 5, m.config.vocab_size);
  fine.max_new_tokens = 2;
  const RequestId id_long = engine.submit(too_long);
  const RequestId id_fine = engine.submit(fine);

  const auto results = engine.run();
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    if (r.id == id_long) {
      EXPECT_EQ(r.finish, FinishReason::rejected);
      EXPECT_NE(r.error.find("max_context"), std::string::npos);
      EXPECT_TRUE(r.tokens.empty());
    } else {
      EXPECT_EQ(r.id, id_fine);
      EXPECT_EQ(r.finish, FinishReason::max_tokens);
    }
  }
}

TEST(ServeScheduler, AdmissionRefusesPastMaxQueue) {
  const Model m = Model::init(test_config(), 26);
  ServeConfig cfg;
  cfg.max_queue = 2;
  ServeEngine engine(make_backend(m), cfg);
  Request r;
  r.prompt = tokens_for(3, 6, m.config.vocab_size);
  engine.submit(r);
  engine.submit(r);
  EXPECT_THROW(engine.submit(r), Error);
}

TEST(ServeScheduler, SubmitValidatesRequests) {
  const Model m = Model::init(test_config(), 27);
  ServeEngine engine(make_backend(m), ServeConfig{});
  Request r;
  EXPECT_THROW(engine.submit(r), Error);  // empty prompt
  r.prompt = tokens_for(3, 7, m.config.vocab_size);
  r.max_new_tokens = 0;
  EXPECT_THROW(engine.submit(r), Error);
  r.max_new_tokens = 4;
  r.sampling.temperature = 0.0f;
  EXPECT_THROW(engine.submit(r), Error);
  r.sampling.temperature = 1.0f;
  r.prompt[1] = static_cast<TokenId>(m.config.vocab_size);  // out of vocab
  EXPECT_THROW(engine.submit(r), Error);
}

TEST(ServeRng, StreamsAreKeyedAndDecorrelated) {
  Rng a = Rng::for_stream(7, 1);
  Rng a_again = Rng::for_stream(7, 1);
  Rng b = Rng::for_stream(7, 2);
  Rng c = Rng::for_stream(8, 1);
  EXPECT_EQ(a.next_u64(), a_again.next_u64());
  Rng a2 = Rng::for_stream(7, 1);
  EXPECT_NE(a2.next_u64(), b.next_u64());
  Rng a3 = Rng::for_stream(7, 1);
  EXPECT_NE(a3.next_u64(), c.next_u64());
}

TEST(KvPoolTest, AcquireReleaseLifecycle) {
  const ModelConfig cfg = test_config();
  KvPool pool(cfg, 16, 2);
  EXPECT_EQ(pool.slots(), 2u);
  EXPECT_GT(pool.bytes(), 0u);
  DecodeState* a = pool.acquire();
  DecodeState* b = pool.acquire();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(pool.acquire(), nullptr);
  EXPECT_EQ(pool.in_use(), 2u);
  pool.release(a);
  EXPECT_EQ(pool.available(), 1u);
  DecodeState* again = pool.acquire();
  EXPECT_EQ(again, a);       // recycled, not reallocated
  EXPECT_EQ(again->pos(), 0u);  // and reset
  pool.release(again);
  pool.release(b);
  EXPECT_THROW(pool.release(b), Error);  // double release
  DecodeState foreign(cfg, 16);
  EXPECT_THROW(pool.release(&foreign), Error);
}

TEST(KvPoolTest, PagedAccountingTracksMappedPages) {
  const ModelConfig cfg = test_config();
  // 2 slots × max_context 16 at 8 positions/page → 4 pages auto-sized.
  KvPool pool(cfg, 16, 2, 8);
  EXPECT_EQ(pool.page_positions(), 8u);
  EXPECT_EQ(pool.pages(), 4u);
  EXPECT_EQ(pool.free_pages(), 4u);
  // bytes() covers the whole slab up front; nothing is mapped yet.
  const std::size_t row = cfg.kv_dim() * sizeof(float);
  EXPECT_GE(pool.bytes(), 4u * cfg.n_layers * 2 * 8 * row);
  EXPECT_EQ(pool.mapped_bytes(), 0u);

  DecodeState* a = pool.acquire();
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->try_reserve(10));  // 2 pages of 8
  EXPECT_EQ(pool.pages_in_use(), 2u);
  EXPECT_EQ(a->pages_held(), 2u);
  EXPECT_GE(pool.mapped_bytes(), 2u * cfg.n_layers * 2 * 8 * row);
  pool.release(a);  // pages return with the slot, not at next acquire
  EXPECT_EQ(pool.pages_in_use(), 0u);
  EXPECT_EQ(pool.free_pages(), 4u);
}

TEST(KvPoolTest, ExplicitPageBudgetBoundsConcurrentReservations) {
  const ModelConfig cfg = test_config();
  KvPool pool(cfg, 16, 2, 8, 3);  // oversubscribed: 2 slots want 4 pages
  DecodeState* a = pool.acquire();
  DecodeState* b = pool.acquire();
  ASSERT_TRUE(a->try_reserve(16));   // 2 pages
  EXPECT_FALSE(b->try_reserve(16));  // only 1 left
  EXPECT_TRUE(b->try_reserve(8));    // which is enough for one page
  EXPECT_EQ(pool.free_pages(), 0u);
  pool.release(a);
  EXPECT_TRUE(pool.acquire()->try_reserve(16));
  pool.release(b);
}

TEST(ServeTelemetry, CountsTokensAndFillsReport) {
  obs::reset_observability();
  obs::set_telemetry(true);
  const Model m = Model::init(test_config(), 28);
  ServeConfig cfg;
  cfg.max_batch = 2;
  cfg.max_context = 32;
  ServeEngine engine(make_backend(m), cfg);
  Request r;
  r.prompt = tokens_for(4, 8, m.config.vocab_size);
  r.max_new_tokens = 5;
  engine.submit(r);
  engine.submit(r);
  const auto results = engine.run();
  obs::set_telemetry(false);

  std::uint64_t generated = 0;
  for (const auto& res : results) {
    generated += res.tokens.size();
  }
  EXPECT_EQ(generated, 10u);
  EXPECT_EQ(obs::counter("serve.tokens_generated").value(), generated);
  EXPECT_EQ(obs::counter("serve.requests_completed").value(), 2u);
  EXPECT_EQ(engine.stats().generated_tokens, generated);
  EXPECT_EQ(engine.stats().completed, 2u);
  EXPECT_EQ(engine.stats().peak_active, 2u);

  obs::RunReport report;
  engine.fill_report(report);
  const std::string json = report.json();
  EXPECT_NE(json.find("\"serving\": {"), std::string::npos);
  EXPECT_NE(json.find("\"dense.generated_tokens\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"dense.requests_completed\": 2"), std::string::npos);
  obs::reset_observability();
}

// --- latency breakdown -----------------------------------------------------

TEST(ServeLatency, BreakdownFieldsPopulated) {
  obs::reset_observability();
  obs::set_telemetry(true);
  const Model m = Model::init(test_config(), 28);
  ServeConfig cfg;
  cfg.max_batch = 2;
  cfg.max_context = 32;
  ServeEngine engine(make_backend(m), cfg);
  Request r;
  r.prompt = tokens_for(4, 8, m.config.vocab_size);
  r.max_new_tokens = 5;
  engine.submit(r);
  engine.submit(r);
  const auto results = engine.run();
  obs::set_telemetry(false);

  ASSERT_EQ(results.size(), 2u);
  for (const auto& res : results) {
    EXPECT_GE(res.queue_wait_ms, 0.0);
    EXPECT_GT(res.prefill_ms, 0.0);
    EXPECT_GT(res.decode_ms, 0.0);  // 4 decode passes beyond the prefill
    // 5 tokens: TPOT averages decode_ms over the 4 post-first tokens.
    EXPECT_GT(res.tpot_ms, 0.0);
    EXPECT_NEAR(res.tpot_ms, res.decode_ms / 4.0, 1e-9);
  }
  EXPECT_GE(engine.stats().queue_wait_ms_max,
            results[0].queue_wait_ms);
  EXPECT_GE(engine.stats().queue_wait_ms_sum,
            results[0].queue_wait_ms + results[1].queue_wait_ms - 1e-9);

  // The histograms saw one sample per admission / prefill and one TPOT
  // sample per (request, decode pass).
  EXPECT_EQ(obs::histogram("serve.queue_wait_ms").snapshot().count, 2u);
  EXPECT_EQ(obs::histogram("serve.prefill_ms").snapshot().count, 2u);
  EXPECT_GT(obs::histogram("serve.tpot_ms").snapshot().count, 0u);

  obs::RunReport report;
  engine.fill_report(report);
  const std::string json = report.json();
  EXPECT_NE(json.find("\"serving\": {\"schema_version\": 2"),
            std::string::npos);
  EXPECT_NE(json.find("dense.queue_wait_ms_avg"), std::string::npos);
  obs::reset_observability();
}

TEST(ServeLatency, EvictionAndBackpressureCausesAreAttributed) {
  obs::reset_observability();
  obs::set_telemetry(true);
  // Capacity eviction: a request that outruns max_context.
  {
    const Model m = Model::init(test_config(), 24);
    ServeConfig cfg;
    cfg.max_batch = 2;
    cfg.max_context = 8;
    ServeEngine engine(make_backend(m), cfg);
    Request big;
    big.prompt = tokens_for(6, 2, m.config.vocab_size);
    big.max_new_tokens = 50;
    engine.submit(big);
    engine.run();
    EXPECT_EQ(engine.stats().evicted_capacity, 1u);
    EXPECT_EQ(engine.stats().evicted_pages, 0u);
  }
  // Page backpressure: more concurrent requests than the arena can map.
  {
    const Model m = Model::init(test_config(), 30);
    ServeConfig cfg;
    cfg.max_batch = 4;
    cfg.max_context = 32;
    cfg.kv_page_positions = 8;
    cfg.kv_pages = 3;
    ServeEngine engine(make_backend(m), cfg);
    for (int i = 0; i < 6; ++i) {
      Request r;
      r.prompt = tokens_for(5, 20 + i, m.config.vocab_size);
      r.max_new_tokens = 3;
      engine.submit(r);
    }
    engine.run();
    EXPECT_GT(engine.stats().backpressure_pages, 0u);
    EXPECT_EQ(obs::counter("serve.backpressure_pages").value(),
              engine.stats().backpressure_pages);
  }
  obs::set_telemetry(false);
  obs::reset_observability();
}

// A 1-token generation never rode a decode pass, so tpot_ms is 0 — the
// documented "undefined, skip it" sentinel — not decode_ms over zero
// post-first tokens.
TEST(ServeLatency, SingleTokenGenerationHasZeroTpot) {
  const Model m = Model::init(test_config(), 29);
  ServeConfig cfg;
  cfg.max_context = 32;
  ServeEngine engine(make_backend(m), cfg);
  Request r;
  r.prompt = tokens_for(4, 9, m.config.vocab_size);
  r.max_new_tokens = 1;
  engine.submit(r);
  const auto results = engine.run();
  ASSERT_EQ(results.size(), 1u);
  ASSERT_EQ(results[0].tokens.size(), 1u);
  EXPECT_EQ(results[0].finish, FinishReason::max_tokens);
  EXPECT_EQ(results[0].decode_ms, 0.0);
  EXPECT_EQ(results[0].tpot_ms, 0.0);
  EXPECT_GT(results[0].prefill_ms, 0.0);
}

TEST(ServeCancel, QueuedRequestLeavesWithoutTokens) {
  const Model m = Model::init(test_config(), 30);
  ServeConfig cfg;
  cfg.max_batch = 1;
  cfg.max_context = 32;
  ServeEngine engine(make_backend(m), cfg);
  Request r;
  r.prompt = tokens_for(4, 10, m.config.vocab_size);
  r.max_new_tokens = 3;
  const RequestId keep = engine.submit(r);
  const RequestId drop = engine.submit(r);
  ASSERT_TRUE(engine.cancel(drop));
  EXPECT_FALSE(engine.cancel(drop));       // already gone
  EXPECT_FALSE(engine.cancel(keep + 99));  // unknown id
  const auto results = engine.run();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].id, keep);
  EXPECT_EQ(results[0].finish, FinishReason::max_tokens);
  EXPECT_EQ(results[1].id, drop);
  EXPECT_EQ(results[1].finish, FinishReason::cancelled);
  EXPECT_TRUE(results[1].tokens.empty());
  // Queue cancellations never count as completions.
  EXPECT_EQ(engine.stats().completed, 1u);
  EXPECT_EQ(engine.stats().cancelled, 1u);
}

TEST(ServeCancel, InFlightRequestRetiresWithExactPartialStream) {
  const Model m = Model::init(test_config(), 31);
  ServeConfig cfg;
  cfg.max_batch = 1;
  cfg.max_context = 32;
  ServeEngine engine(make_backend(m), cfg);
  Request r;
  r.prompt = tokens_for(4, 11, m.config.vocab_size);
  r.max_new_tokens = 10;
  const RequestId id = engine.submit(r);
  engine.step();  // prefill + first token
  engine.step();  // second token
  ASSERT_EQ(engine.active_count(), 1u);
  ASSERT_TRUE(engine.cancel(id));
  // Retired immediately: slot and pages free, engine idle.
  EXPECT_TRUE(engine.idle());
  EXPECT_EQ(engine.pool().in_use(), 0u);
  EXPECT_FALSE(engine.cancel(id));
  const auto results = engine.run();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].finish, FinishReason::cancelled);
  ASSERT_EQ(results[0].tokens.size(), 2u);
  // The partial stream is an exact prefix of the uncancelled one.
  const ReferenceRun ref = reference_run(m, r, id, cfg.max_context);
  EXPECT_TRUE(std::equal(results[0].tokens.begin(), results[0].tokens.end(),
                         ref.tokens.begin()));
  // In-flight cancellations DO count as completions (they held a slot).
  EXPECT_EQ(engine.stats().completed, 1u);
  EXPECT_EQ(engine.stats().cancelled, 1u);
}

}  // namespace
}  // namespace aptq::serve
