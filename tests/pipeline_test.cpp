// Unit tests for the core pipeline: method dispatch, per-method invariants,
// bookkeeping (average bits, packed sizes), and the model zoo.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "core/model_zoo.hpp"
#include "core/pipeline.hpp"
#include "eval/perplexity.hpp"
#include "tensor/ops.hpp"

namespace aptq {
namespace {

ModelConfig small_config() {
  ModelConfig c;
  c.vocab_size = 16;
  c.dim = 12;
  c.n_layers = 2;
  c.n_heads = 2;
  c.ffn_dim = 16;
  return c;
}

// Shared fixture: one small corpus + random-init model; quantization
// mechanics don't need trained weights.
class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest()
      : corpus_("calib",
                [] {
                  MarkovSpec s;
                  s.seed = 41;
                  s.vocab_size = 16;
                  s.topics = 2;
                  s.branching = 3;
                  return s;
                }(),
                4000, 500, 42),
        model_(Model::init(small_config(), 43)) {
    config_.calib_segments = 8;
    config_.calib_seq_len = 16;
    config_.group_size = 4;
    config_.qat.steps = 5;
    config_.qat.pool_sequences = 4;
    config_.qat.seq_len = 8;
  }

  Corpus corpus_;
  Model model_;
  PipelineConfig config_;
};

TEST_F(PipelineTest, MethodNames) {
  PipelineConfig c;
  EXPECT_EQ(method_name(Method::fp, c), "FP32");
  EXPECT_EQ(method_name(Method::gptq, c), "GPTQ");
  c.ratio_high = 0.75;
  EXPECT_EQ(method_name(Method::aptq_mixed, c), "APTQ-75%");
  EXPECT_EQ(method_name(Method::blockwise_mixed, c), "Blockwise-75%");
  c.pbllm_salient_fraction = 0.1;
  EXPECT_EQ(method_name(Method::pbllm, c), "PB-LLM-10%");
}

TEST_F(PipelineTest, FpPassThroughIsExact) {
  const QuantizedModel qm =
      quantize_model(model_, corpus_, Method::fp, config_);
  EXPECT_TRUE(qm.model.blocks[0].wq == model_.blocks[0].wq);
  EXPECT_DOUBLE_EQ(qm.average_bits(), 32.0);
  EXPECT_EQ(qm.layers.size(), 14u);
}

TEST_F(PipelineTest, RtnQuantizesEveryLinear) {
  const QuantizedModel qm =
      quantize_model(model_, corpus_, Method::rtn, config_);
  EXPECT_DOUBLE_EQ(qm.average_bits(), 4.0);
  // All weights moved (4-bit lossy), embeddings untouched.
  EXPECT_GT(frobenius_distance(qm.model.blocks[0].wq, model_.blocks[0].wq),
            0.0);
  EXPECT_TRUE(qm.model.tok_embed == model_.tok_embed);
  EXPECT_GT(qm.packed_bytes(), 0u);
  EXPECT_LT(qm.packed_bytes(), 14u * 12u * 16u * 4u);  // well below fp32
}

TEST_F(PipelineTest, GptqProducesFiniteQuantizedModel) {
  const QuantizedModel qm =
      quantize_model(model_, corpus_, Method::gptq, config_);
  EXPECT_DOUBLE_EQ(qm.average_bits(), 4.0);
  EXPECT_EQ(qm.layers.size(), 14u);
  for (const auto& layer : qm.layers) {
    EXPECT_GE(layer.proxy_loss, 0.0) << layer.name;
    EXPECT_GE(layer.recon_error, -1e-6) << layer.name;
  }
  for (const float v : qm.model.blocks[1].w_down.flat()) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST_F(PipelineTest, AptqDiffersFromGptq) {
  const QuantizedModel g =
      quantize_model(model_, corpus_, Method::gptq, config_);
  const QuantizedModel a =
      quantize_model(model_, corpus_, Method::aptq, config_);
  // Attention-aware Hessians change at least the attention projections.
  EXPECT_GT(frobenius_distance(g.model.blocks[0].wv, a.model.blocks[0].wv),
            0.0);
  EXPECT_EQ(a.method, "APTQ");
}

TEST_F(PipelineTest, MixedPrecisionHitsTargetBits) {
  for (const double r : {0.25, 0.5, 0.75}) {
    PipelineConfig cfg = config_;
    cfg.ratio_high = r;
    const QuantizedModel qm =
        quantize_model(model_, corpus_, Method::aptq_mixed, cfg);
    const double expected = 4.0 * r + 2.0 * (1.0 - r);
    EXPECT_NEAR(qm.average_bits(), expected, 0.45) << "R=" << r;
    // Both bit widths actually present.
    bool has2 = false, has4 = false;
    for (const auto& layer : qm.layers) {
      has2 |= layer.bits == 2.0;
      has4 |= layer.bits == 4.0;
    }
    EXPECT_TRUE(has2);
    EXPECT_TRUE(has4);
  }
}

TEST_F(PipelineTest, BlockwiseAssignsUniformBitsPerBlock) {
  PipelineConfig cfg = config_;
  cfg.ratio_high = 0.5;
  const QuantizedModel qm =
      quantize_model(model_, corpus_, Method::blockwise_mixed, cfg);
  std::map<std::string, double> bits;
  for (const auto& layer : qm.layers) {
    bits[layer.name] = layer.bits;
  }
  // Every layer of block 0 shares one width; same for block 1.
  for (const char* suffix :
       {"self_attn.q_proj", "self_attn.o_proj", "mlp.down_proj"}) {
    EXPECT_EQ(bits[std::string("layers.0.") + suffix],
              bits["layers.0.self_attn.k_proj"]);
    EXPECT_EQ(bits[std::string("layers.1.") + suffix],
              bits["layers.1.self_attn.k_proj"]);
  }
  EXPECT_NE(bits["layers.0.self_attn.q_proj"],
            bits["layers.1.self_attn.q_proj"]);
}

TEST_F(PipelineTest, PbLlmReportsFractionalBits) {
  PipelineConfig cfg = config_;
  cfg.pbllm_salient_fraction = 0.2;
  const QuantizedModel qm =
      quantize_model(model_, corpus_, Method::pbllm, cfg);
  EXPECT_NEAR(qm.average_bits(), 16 * 0.2 + 0.8, 0.1);
}

TEST_F(PipelineTest, OwqBitsAboveNominal) {
  PipelineConfig cfg = config_;
  cfg.owq_fp_column_fraction = 0.1;
  const QuantizedModel qm =
      quantize_model(model_, corpus_, Method::owq, cfg);
  EXPECT_GT(qm.average_bits(), 4.0);
  EXPECT_LT(qm.average_bits(), 6.5);
}

TEST_F(PipelineTest, SmoothQuantSetsActOptions) {
  const QuantizedModel qm =
      quantize_model(model_, corpus_, Method::smoothquant, config_);
  EXPECT_EQ(qm.forward_options.act_quant_bits, 8);
  EXPECT_DOUBLE_EQ(qm.average_bits(), 4.0);
}

TEST_F(PipelineTest, FpqUsesFp4Grid) {
  const QuantizedModel qm =
      quantize_model(model_, corpus_, Method::fpq, config_);
  EXPECT_DOUBLE_EQ(qm.average_bits(), 4.0);
  // FP4 values: every weight/scale ratio lands on an E2M1 magnitude. Spot
  // check: weights differ from the int-grid RTN result.
  const QuantizedModel rtn =
      quantize_model(model_, corpus_, Method::rtn, config_);
  EXPECT_GT(
      frobenius_distance(qm.model.blocks[0].wq, rtn.model.blocks[0].wq), 0.0);
}

TEST_F(PipelineTest, LlmQatRunsAndQuantizes) {
  const QuantizedModel qm =
      quantize_model(model_, corpus_, Method::llm_qat, config_);
  EXPECT_DOUBLE_EQ(qm.average_bits(), 4.0);
  // Weights are on the 4-bit grid (re-snapping is a fixed point).
  Model snapped = qm.model;
  QuantSpec spec;
  spec.bits = 4;
  spec.group_size = config_.group_size;
  quantize_model_weights_rtn(snapped, spec);
  EXPECT_LT(
      frobenius_distance(snapped.blocks[0].wq, qm.model.blocks[0].wq), 1e-5);
}

TEST_F(PipelineTest, SequentialAndOneShotBothWork) {
  PipelineConfig one_shot = config_;
  one_shot.sequential = false;
  const QuantizedModel a =
      quantize_model(model_, corpus_, Method::gptq, config_);
  const QuantizedModel b =
      quantize_model(model_, corpus_, Method::gptq, one_shot);
  // Both valid quantized models; sequential re-calibration makes them
  // differ beyond the first block.
  EXPECT_LT(frobenius_distance(a.model.blocks[0].wq, b.model.blocks[0].wq),
            1e-6);
  EXPECT_GT(frobenius_distance(a.model.blocks[1].wq, b.model.blocks[1].wq),
            0.0);
}

TEST_F(PipelineTest, ExplicitSegmentsOverload) {
  const auto segs = sample_calibration_set(corpus_, 4, 12, 99);
  const QuantizedModel qm = quantize_model_with_segments(
      model_, segs, Method::gptq, config_);
  EXPECT_EQ(qm.layers.size(), 14u);
}

TEST(ZooSpecs, ModelSizesOrdered) {
  const ZooSpec small = llama7b_sim();
  const ZooSpec large = llama13b_sim();
  EXPECT_LT(small.config.dim, large.config.dim);
  EXPECT_LT(small.config.n_layers, large.config.n_layers);
  const auto params = [](const ZooSpec& s) {
    return Model::init(s.config, 1).parameter_count();
  };
  EXPECT_LT(params(small), params(large));
  EXPECT_NO_THROW(small.config.validate());
  EXPECT_NO_THROW(large.config.validate());
}

TEST(Zoo, CachesAcrossInstances) {
  const auto dir = (std::filesystem::temp_directory_path() /
                    "aptq_zoo_test_cache").string();
  std::filesystem::remove_all(dir);
  ZooSpec micro;
  micro.name = "micro-test";
  micro.config = small_config();
  micro.train.steps = 10;
  micro.train.batch_size = 2;
  micro.train.seq_len = 12;

  // Micro corpora for speed.
  MarkovSpec ms;
  ms.seed = 77;
  ms.vocab_size = 16;
  auto corpora = std::unique_ptr<StandardCorpora>(new StandardCorpora{
      Corpus("c4", ms, 2000, 200, 1),
      Corpus("wiki", ms, 2000, 200, 2),
  });

  ModelZoo zoo(dir);
  const Model a = zoo.get(micro, *corpora, /*verbose=*/false);
  EXPECT_TRUE(std::filesystem::exists(dir + "/micro-test.ckpt"));
  ModelZoo zoo2(dir);
  const Model b = zoo2.get(micro, *corpora, /*verbose=*/false);
  EXPECT_TRUE(a.blocks[0].wq == b.blocks[0].wq);

  // Stale config detection.
  micro.config.ffn_dim = 24;
  EXPECT_THROW(zoo2.get(micro, *corpora, false), Error);
  std::filesystem::remove_all(dir);
}

TEST(Corpora, StandardCorporaAreWellFormed) {
  const auto corpora = make_standard_corpora();
  EXPECT_EQ(corpora->c4.name(), "c4sim");
  EXPECT_EQ(corpora->wiki.name(), "wikisim");
  EXPECT_GE(corpora->c4.train_tokens().size(), 100000u);
  EXPECT_LT(corpora->wiki.oracle_eval_nll(), corpora->c4.oracle_eval_nll());
}

}  // namespace
}  // namespace aptq
