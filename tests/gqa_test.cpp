// Grouped-query attention (GQA) extension tests: configuration rules,
// forward structure, full finite-difference gradient checks through the
// shared-kv paths, decoder equivalence, checkpointing, and the quantization
// pipeline end-to-end on a GQA model.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "core/pipeline.hpp"
#include "model/backward.hpp"
#include "model/decoder.hpp"
#include "model/forward.hpp"
#include "quant/packed_model.hpp"
#include "tensor/ops.hpp"
#include "train/loss.hpp"
#include "train/trainer.hpp"

namespace aptq {
namespace {

ModelConfig gqa_config() {
  ModelConfig c;
  c.vocab_size = 12;
  c.dim = 16;
  c.n_layers = 2;
  c.n_heads = 4;
  c.n_kv_heads = 2;  // two query heads share each kv head
  c.ffn_dim = 20;
  return c;
}

TokenSeq tokens_for(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  TokenSeq t(n);
  for (auto& v : t) {
    v = static_cast<TokenId>(rng.index(12));
  }
  return t;
}

TEST(GqaConfig, Validation) {
  EXPECT_NO_THROW(gqa_config().validate());
  auto c = gqa_config();
  EXPECT_EQ(c.kv_heads(), 2u);
  EXPECT_EQ(c.kv_dim(), 8u);
  EXPECT_EQ(c.group_factor(), 2u);
  c.n_kv_heads = 3;  // 4 % 3 != 0
  EXPECT_THROW(c.validate(), Error);
  c.n_kv_heads = 8;  // more kv heads than query heads
  EXPECT_THROW(c.validate(), Error);
  c.n_kv_heads = 0;  // MHA fallback
  EXPECT_NO_THROW(c.validate());
  EXPECT_EQ(c.kv_dim(), c.dim);
}

TEST(GqaModel, ProjectionShapes) {
  const Model m = Model::init(gqa_config(), 1);
  EXPECT_EQ(m.blocks[0].wq.cols(), 16u);
  EXPECT_EQ(m.blocks[0].wk.cols(), 8u);
  EXPECT_EQ(m.blocks[0].wv.cols(), 8u);
  EXPECT_EQ(m.blocks[0].wo.rows(), 16u);
  // Parameter registry covers the narrow projections too.
  Model mutable_m = m;
  const auto linears = collect_linears(mutable_m);
  EXPECT_EQ(linears[1].weight->cols(), 8u);  // k_proj
}

TEST(GqaForward, ProducesFiniteCausalLogits) {
  const Model m = Model::init(gqa_config(), 2);
  TokenSeq tokens = tokens_for(8, 3);
  const Matrix base = model_forward(m, tokens);
  for (const float v : base.flat()) {
    EXPECT_TRUE(std::isfinite(v));
  }
  tokens[7] = (tokens[7] + 1) % 12;
  const Matrix perturbed = model_forward(m, tokens);
  for (std::size_t t = 0; t < 7; ++t) {
    for (std::size_t v = 0; v < 12; ++v) {
      EXPECT_FLOAT_EQ(base(t, v), perturbed(t, v));
    }
  }
}

TEST(GqaForward, KvHeadsAreActuallyShared) {
  // With n_kv_heads == 1 every query head attends over the same k/v slice;
  // check the cache shapes reflect the narrow projection.
  auto cfg = gqa_config();
  cfg.n_kv_heads = 1;
  const Model m = Model::init(cfg, 4);
  ForwardCache cache;
  model_forward(m, tokens_for(6, 5), cache);
  EXPECT_EQ(cache.blocks[0].k_rot.cols(), 4u);  // head_dim
  EXPECT_EQ(cache.blocks[0].v.cols(), 4u);
  ASSERT_EQ(cache.blocks[0].probs.size(), 4u);  // still 4 query heads
}

TEST(GqaGradcheck, FullBackwardMatchesFiniteDifferences) {
  Model model = Model::init(gqa_config(), 6);
  const TokenSeq tokens = tokens_for(7, 7);
  ForwardCache cache;
  const Matrix logits = model_forward(model, tokens, cache);
  CrossEntropyResult ce = cross_entropy_next_token(logits, tokens);
  Gradients grads = Gradients::zeros_like(model);
  model_backward(model, tokens, cache, ce.grad_logits, grads);

  const auto loss_of = [&tokens](Model& m) {
    return cross_entropy_next_token(model_forward(m, tokens), tokens, false)
        .loss;
  };
  const auto check = [&](Matrix& param, const Matrix& grad,
                         std::uint64_t seed) {
    Rng rng(seed);
    for (int s = 0; s < 8; ++s) {
      const std::size_t i = rng.index(param.size());
      const float saved = param.flat()[i];
      const float eps = 5e-3f;
      param.flat()[i] = saved + eps;
      const double lp = loss_of(model);
      param.flat()[i] = saved - eps;
      const double lm = loss_of(model);
      param.flat()[i] = saved;
      const double numeric = (lp - lm) / (2.0 * eps);
      const double analytic = grad.flat()[i];
      const double denom =
          std::max({1e-3, std::fabs(analytic), std::fabs(numeric)});
      EXPECT_LT(std::fabs(analytic - numeric) / denom, 0.05)
          << "entry " << i;
    }
  };
  // The GQA-specific paths: shared k/v projections in both blocks.
  check(model.blocks[0].wk, grads.blocks[0].wk, 1);
  check(model.blocks[0].wv, grads.blocks[0].wv, 2);
  check(model.blocks[1].wk, grads.blocks[1].wk, 3);
  check(model.blocks[1].wv, grads.blocks[1].wv, 4);
  // And the untouched paths still hold.
  check(model.blocks[0].wq, grads.blocks[0].wq, 5);
  check(model.blocks[1].wo, grads.blocks[1].wo, 6);
}

TEST(GqaDecoder, MatchesFullForward) {
  const Model m = Model::init(gqa_config(), 8);
  const TokenSeq tokens = tokens_for(10, 9);
  const Matrix full = model_forward(m, tokens);
  Decoder dec(m, 12);
  for (std::size_t t = 0; t < tokens.size(); ++t) {
    const auto logits = dec.step(tokens[t]);
    for (std::size_t v = 0; v < logits.size(); ++v) {
      EXPECT_NEAR(logits[v], full(t, v), 5e-4f) << "t=" << t;
    }
  }
}

TEST(GqaCheckpoint, RoundTripsWithKvHeads) {
  const Model m = Model::init(gqa_config(), 10);
  const std::string path = (std::filesystem::temp_directory_path() /
                            "aptq_gqa_ckpt.bin").string();
  save_checkpoint(m, path);
  const Model loaded = load_checkpoint(path);
  EXPECT_EQ(loaded.config.n_kv_heads, 2u);
  EXPECT_TRUE(loaded.blocks[0].wk == m.blocks[0].wk);
  const TokenSeq tokens = tokens_for(6, 11);
  EXPECT_TRUE(model_forward(m, tokens) == model_forward(loaded, tokens));
  std::remove(path.c_str());
}

TEST(GqaTraining, LearnsOnGqaArchitecture) {
  MarkovSpec spec;
  spec.seed = 12;
  spec.vocab_size = 12;
  spec.topics = 1;
  spec.branching = 3;
  const Corpus corpus("t", spec, 4000, 400, 13);
  Model m = Model::init(gqa_config(), 14);
  Rng rng(15);
  const TokenSeq probe = corpus.sample_train_segment(24, rng);
  const double before =
      cross_entropy_next_token(model_forward(m, probe), probe, false).loss;
  TrainConfig tc;
  tc.steps = 200;
  tc.batch_size = 4;
  tc.seq_len = 24;
  tc.peak_lr = 8e-3f;
  train_model(m, corpus, tc);
  const double after =
      cross_entropy_next_token(model_forward(m, probe), probe, false).loss;
  EXPECT_LT(after, before - 0.3);
}

TEST(GqaPipeline, AptqQuantizesGqaModel) {
  MarkovSpec spec;
  spec.seed = 16;
  spec.vocab_size = 12;
  const Corpus corpus("t", spec, 3000, 300, 17);
  const Model fp = Model::init(gqa_config(), 18);
  PipelineConfig cfg;
  cfg.calib_segments = 6;
  cfg.calib_seq_len = 12;
  cfg.group_size = 4;
  cfg.ratio_high = 0.5;
  const QuantizedModel qm =
      quantize_model(fp, corpus, Method::aptq_mixed, cfg);
  EXPECT_EQ(qm.layers.size(), 14u);
  EXPECT_NEAR(qm.average_bits(), 3.0, 0.5);
  for (const float v : qm.model.blocks[1].wk.flat()) {
    EXPECT_TRUE(std::isfinite(v));
  }
  // Packed round trip on GQA shapes.
  const PackedModel pm = PackedModel::pack(qm, cfg.group_size);
  const TokenSeq tokens = tokens_for(8, 19);
  const Matrix a = pm.forward(tokens);
  const Matrix b = model_forward(pm.unpack(), tokens);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a.flat()[i], b.flat()[i], 5e-4f);
  }
}

}  // namespace
}  // namespace aptq
