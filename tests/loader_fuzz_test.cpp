// Corruption and fuzz tests for the packed-model deploy loader.
//
// The contract under test: feeding PackedModel::load (and the underlying
// BinaryReader / QuantizedLinear::deserialize) a truncated, bit-flipped, or
// otherwise corrupt file must either succeed (flips that only perturb
// payload values) or throw aptq::Error — never crash, never trip a
// sanitizer, and never attempt a corrupt-length-field-sized allocation.
// Run under APTQ_SANITIZE=ON (the CI sanitize job) this doubles as a
// memory-safety check of the whole deserialization path.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "quant/packed_model.hpp"
#include "util/io.hpp"
#include "util/rng.hpp"

namespace aptq {
namespace {

ModelConfig small_config() {
  ModelConfig c;
  c.vocab_size = 16;
  c.dim = 12;
  c.n_layers = 2;
  c.n_heads = 2;
  c.ffn_dim = 16;
  return c;
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string save_packed_fixture(const char* name) {
  const Model m = Model::init(small_config(), 11);
  QuantSpec spec;
  spec.bits = 4;
  spec.group_size = 4;
  const PackedModel pm = PackedModel::pack_uniform(m, spec);
  const std::string path = temp_path(name);
  pm.save(path);
  return path;
}

std::vector<std::uint8_t> read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_all(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
}

// Attempts a load; returns true if it threw aptq::Error, false if it
// succeeded. Anything else (bad_alloc, segfault, sanitizer abort)
// propagates and fails the test.
bool load_throws_error(const std::string& path) {
  try {
    const PackedModel loaded = PackedModel::load(path);
    (void)loaded;
    return false;
  } catch (const Error&) {
    return true;
  }
}

TEST(LoaderFuzz, IntactFileLoads) {
  const std::string path = save_packed_fixture("aptq_fuzz_intact.bin");
  EXPECT_FALSE(load_throws_error(path));
  std::remove(path.c_str());
}

TEST(LoaderFuzz, EveryTruncationThrowsError) {
  const std::string path = save_packed_fixture("aptq_fuzz_trunc_src.bin");
  const std::vector<std::uint8_t> bytes = read_all(path);
  ASSERT_GT(bytes.size(), 64u);
  const std::string cut = temp_path("aptq_fuzz_trunc.bin");
  // Every header byte boundary, then a coarse sweep through the payload,
  // then the off-by-one tail.
  std::vector<std::size_t> lengths;
  for (std::size_t n = 0; n < 64 && n < bytes.size(); ++n) {
    lengths.push_back(n);
  }
  for (std::size_t n = 64; n < bytes.size(); n += bytes.size() / 40 + 1) {
    lengths.push_back(n);
  }
  lengths.push_back(bytes.size() - 1);
  for (const std::size_t n : lengths) {
    write_all(cut, {bytes.begin(), bytes.begin() + n});
    EXPECT_TRUE(load_throws_error(cut)) << "truncated to " << n << " bytes";
  }
  std::remove(path.c_str());
  std::remove(cut.c_str());
}

TEST(LoaderFuzz, EveryHeaderBitFlipThrowsOrLoads) {
  const std::string path = save_packed_fixture("aptq_fuzz_hdr_src.bin");
  const std::vector<std::uint8_t> bytes = read_all(path);
  const std::string flipped = temp_path("aptq_fuzz_hdr.bin");
  // Magic, version, the six config u64s, rope/eps: first 64 bytes.
  std::size_t threw = 0;
  for (std::size_t byte = 0; byte < 64 && byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> mutated = bytes;
      mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
      write_all(flipped, mutated);
      if (load_throws_error(flipped)) {
        ++threw;
      }
    }
  }
  // Magic and version flips alone guarantee rejections happened.
  EXPECT_GE(threw, 64u);
  std::remove(path.c_str());
  std::remove(flipped.c_str());
}

TEST(LoaderFuzz, RandomBitFlipsAnywhereNeverCrash) {
  const std::string path = save_packed_fixture("aptq_fuzz_rand_src.bin");
  const std::vector<std::uint8_t> bytes = read_all(path);
  const std::string flipped = temp_path("aptq_fuzz_rand.bin");
  Rng rng(2024);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<std::uint8_t> mutated = bytes;
    const std::size_t flips = 1 + rng.index(8);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.index(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.index(8));
    }
    write_all(flipped, mutated);
    // Success (payload-only flips) and Error are both fine; anything else
    // escapes load_throws_error and fails the test.
    (void)load_throws_error(flipped);
  }
  std::remove(path.c_str());
  std::remove(flipped.c_str());
}

TEST(LoaderFuzz, OutOfRangeFormatCodeRejected) {
  Rng rng(3);
  const Matrix w = Matrix::randn(4, 8, rng);
  QuantSpec spec;
  spec.bits = 4;
  spec.group_size = 4;
  const std::string path = temp_path("aptq_fuzz_format.bin");
  {
    BinaryWriter writer(path);
    QuantizedLinear(w, spec).serialize(writer);
  }
  // Field layout: u32 bits, u64 group_size, then the u32 format code.
  for (const std::uint8_t code : {std::uint8_t{7}, std::uint8_t{0x7F},
                                  std::uint8_t{0xFF}}) {
    std::vector<std::uint8_t> bytes = read_all(path);
    ASSERT_GT(bytes.size(), 16u);
    bytes[12] = code;
    write_all(path, bytes);
    BinaryReader reader(path);
    EXPECT_THROW(QuantizedLinear::deserialize(reader), Error)
        << "format code " << static_cast<int>(code);
  }
  std::remove(path.c_str());
}

// ---- format v3 specifics ---------------------------------------------------

// v3 rejects out-of-range group sizes outright: the writer always
// normalizes group_size into [1, cols], so 0 and > cols can only mean a
// corrupt or forged record.
TEST(LoaderFuzz, BadGroupSizeRejected) {
  Rng rng(5);
  const Matrix w = Matrix::randn(4, 8, rng);
  QuantSpec spec;
  spec.bits = 4;
  spec.group_size = 4;
  const std::string path = temp_path("aptq_fuzz_group.bin");
  {
    BinaryWriter writer(path);
    QuantizedLinear(w, spec).serialize(writer);
  }
  const std::vector<std::uint8_t> good = read_all(path);
  // group_size is the u64 at offset 4 (after the u32 bits field).
  for (const std::uint64_t bad :
       {std::uint64_t{0}, std::uint64_t{9}, std::uint64_t{1} << 40}) {
    std::vector<std::uint8_t> bytes = good;
    for (int i = 0; i < 8; ++i) {
      bytes[4 + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(bad >> (8 * i));
    }
    write_all(path, bytes);
    BinaryReader reader(path);
    EXPECT_THROW(QuantizedLinear::deserialize(reader), Error)
        << "group_size " << bad;
  }
  std::remove(path.c_str());
}

// Truncating inside the group-parameter array (the trailing scale/zero
// block) must throw at EOF, never read stale values.
TEST(LoaderFuzz, TruncatedGroupScaleArrayThrows) {
  Rng rng(6);
  const Matrix w = Matrix::randn(6, 16, rng);
  QuantSpec spec;
  spec.bits = 4;
  spec.group_size = 4;  // 6 rows × 4 groups × 8 bytes of params at the tail
  const std::string path = temp_path("aptq_fuzz_params.bin");
  {
    BinaryWriter writer(path);
    QuantizedLinear(w, spec).serialize(writer);
  }
  const std::vector<std::uint8_t> good = read_all(path);
  const std::size_t params_bytes = 6 * 4 * 8;
  ASSERT_GT(good.size(), params_bytes);
  for (const std::size_t cut : {std::size_t{1}, std::size_t{7},
                                params_bytes / 2, params_bytes - 1}) {
    write_all(path, {good.begin(), good.end() - static_cast<long>(cut)});
    BinaryReader reader(path);
    EXPECT_THROW(QuantizedLinear::deserialize(reader), Error)
        << "cut " << cut << " bytes";
  }
  std::remove(path.c_str());
}

// The committed v2 fixture (written by the pre-blocked code at packed file
// version 2) must keep loading through the back-compat reader, and its
// repacked linears must be bit-identical to packing the same model fresh:
// same codes, same group parameters, same dequantized weights.
TEST(LoaderFuzz, CommittedV2FixtureLoadsByteCorrectly) {
  const std::string fixture =
      std::string(APTQ_GOLDEN_DIR) + "/packed_v2_fixture.bin";
  ASSERT_TRUE(std::filesystem::exists(fixture))
      << "missing fixture " << fixture;
  const PackedModel loaded = PackedModel::load(fixture);
  const Model m = Model::init(small_config(), 11);
  QuantSpec spec;
  spec.bits = 4;
  spec.group_size = 4;
  const PackedModel fresh = PackedModel::pack_uniform(m, spec);
  ASSERT_EQ(loaded.linears().size(), fresh.linears().size());
  for (std::size_t i = 0; i < fresh.linears().size(); ++i) {
    EXPECT_TRUE(loaded.linears()[i] == fresh.linears()[i]) << "linear " << i;
  }
  EXPECT_TRUE(loaded.config() == fresh.config());
  // And the v2-loaded model re-saves as a valid v3 file.
  const std::string resaved = temp_path("aptq_fuzz_v2_resave.bin");
  loaded.save(resaved);
  const PackedModel round = PackedModel::load(resaved);
  for (std::size_t i = 0; i < fresh.linears().size(); ++i) {
    EXPECT_TRUE(round.linears()[i] == fresh.linears()[i]);
  }
  std::remove(resaved.c_str());
}

TEST(LoaderFuzz, GiantLengthFieldFailsBeforeAllocating) {
  const std::string path = temp_path("aptq_fuzz_len.bin");
  {
    BinaryWriter writer(path);
    writer.write_u64(std::uint64_t{1} << 60);  // claims 2^60 elements
    writer.write_f32(0.0f);
  }
  BinaryReader reader(path);
  try {
    reader.read_f32_vector();
    FAIL() << "giant length accepted";
  } catch (const Error& e) {
    // The length check fires on the file size, before any allocation.
    EXPECT_NE(std::string(e.what()).find("exceeds"), std::string::npos);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace aptq
