// Unit suite for the latency-under-load harness: deterministic arrival
// schedules and workloads, open-loop replay against a real engine, and
// the percentile helper the bench reads.
#include <gtest/gtest.h>

#include <algorithm>

#include "serve/loadgen.hpp"

namespace aptq::serve {
namespace {

ModelConfig load_config() {
  ModelConfig c;
  c.vocab_size = 24;
  c.dim = 16;
  c.n_layers = 2;
  c.n_heads = 2;
  c.ffn_dim = 24;
  return c;
}

TEST(LoadGenTest, ArrivalScheduleIsDeterministicAndOrdered) {
  LoadSpec spec;
  spec.offered_rps = 100.0;
  spec.requests = 64;
  const std::vector<double> a = arrival_times(spec);
  const std::vector<double> b = arrival_times(spec);
  ASSERT_EQ(a.size(), spec.requests);
  EXPECT_EQ(a, b);  // pure function of the spec
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  EXPECT_GE(a.front(), 0.0);

  // A different seed is a different schedule.
  LoadSpec other = spec;
  other.seed = spec.seed + 1;
  EXPECT_NE(arrival_times(other), a);

  // The empirical mean rate lands near the offered rate (the schedule is
  // one Poisson draw; 64 arrivals keep the tolerance loose but meaningful).
  const double span = a.back();
  ASSERT_GT(span, 0.0);
  const double rate = static_cast<double>(spec.requests - 1) / span;
  EXPECT_GT(rate, spec.offered_rps * 0.5);
  EXPECT_LT(rate, spec.offered_rps * 2.0);
}

TEST(LoadGenTest, BurstyScheduleArrivesInBursts) {
  LoadSpec spec;
  spec.arrival = LoadSpec::Arrival::bursty;
  spec.burst = 4;
  spec.requests = 16;
  spec.offered_rps = 40.0;
  const std::vector<double> a = arrival_times(spec);
  ASSERT_EQ(a.size(), spec.requests);
  // Members of one burst share an arrival instant.
  for (std::size_t i = 0; i < a.size(); i += spec.burst) {
    for (std::size_t j = 1; j < spec.burst; ++j) {
      EXPECT_EQ(a[i], a[i + j]) << "burst at " << i;
    }
  }
  // Distinct bursts do not (with probability 1 for a continuous draw).
  EXPECT_NE(a[0], a[spec.burst]);
}

TEST(LoadGenTest, RequestsMixPromptLengthsAndPriorities) {
  LoadSpec spec;
  spec.requests = 32;
  spec.long_fraction = 0.5;
  spec.priority_levels = 3;
  const std::size_t vocab = load_config().vocab_size;
  std::size_t longs = 0;
  for (std::size_t i = 0; i < spec.requests; ++i) {
    const Request r = make_request(spec, i, vocab);
    const Request again = make_request(spec, i, vocab);
    EXPECT_EQ(r.prompt, again.prompt);  // deterministic per index
    EXPECT_EQ(r.seed, again.seed);
    EXPECT_TRUE(r.prompt.size() == spec.short_prompt ||
                r.prompt.size() == spec.long_prompt)
        << r.prompt.size();
    longs += r.prompt.size() == spec.long_prompt ? 1 : 0;
    EXPECT_EQ(r.priority, static_cast<int>(i) % spec.priority_levels);
    for (const TokenId t : r.prompt) {
      EXPECT_LT(static_cast<std::size_t>(t), vocab);
    }
  }
  EXPECT_GT(longs, 0u);
  EXPECT_LT(longs, spec.requests);
}

TEST(LoadGenTest, RunLoadCompletesWorkloadAndMeasures) {
  const Model m = Model::init(load_config(), 7);
  ServeConfig cfg;
  cfg.max_batch = 4;
  cfg.max_context = 48;
  ServeEngine engine(make_backend(m), cfg);

  LoadSpec spec;
  spec.requests = 8;
  spec.offered_rps = 500.0;  // effectively a burst: no idle waiting
  spec.max_new_tokens = 4;
  spec.slo_ttft_ms = 1e6;  // everything meets an absurdly loose SLO
  const LoadPoint p = run_load(engine, spec);

  EXPECT_EQ(p.offered_rps, spec.offered_rps);
  EXPECT_EQ(p.completed + p.rejected, spec.requests);
  EXPECT_EQ(p.rejected, 0u);
  EXPECT_GT(p.wall_seconds, 0.0);
  EXPECT_GT(p.achieved_rps, 0.0);
  // Loose SLO: goodput equals achieved throughput.
  EXPECT_NEAR(p.goodput_rps, p.achieved_rps, 1e-9);
  EXPECT_GT(p.p50_ttft_ms, 0.0);
  EXPECT_GE(p.p99_ttft_ms, p.p50_ttft_ms);
  EXPECT_GT(p.p50_tpot_ms, 0.0);
  EXPECT_GE(p.p99_tpot_ms, p.p50_tpot_ms);
  EXPECT_GE(p.p99_queue_wait_ms, p.p50_queue_wait_ms);

  // The engine drained: a second workload can reuse it.
  const LoadPoint q = run_load(engine, spec);
  EXPECT_EQ(q.completed, spec.requests);
}

TEST(LoadGenTest, GoodputDropsUnderImpossibleSlo) {
  const Model m = Model::init(load_config(), 7);
  ServeConfig cfg;
  cfg.max_batch = 4;
  cfg.max_context = 48;
  ServeEngine engine(make_backend(m), cfg);

  LoadSpec spec;
  spec.requests = 6;
  spec.offered_rps = 500.0;
  spec.max_new_tokens = 4;
  spec.slo_ttft_ms = 1e-9;  // nothing can answer in a nanosecond
  const LoadPoint p = run_load(engine, spec);
  EXPECT_EQ(p.completed, spec.requests);
  EXPECT_EQ(p.goodput_rps, 0.0);
  EXPECT_GT(p.achieved_rps, 0.0);
}

// The workload side of run_load is a pure function of LoadSpec: two runs
// with the same seed and config must agree on every deterministic summary
// field (timings vary; counts and token work cannot).
TEST(LoadGenTest, RunLoadSummariesAreDeterministicAcrossRuns) {
  const Model m = Model::init(load_config(), 7);
  LoadSpec spec;
  spec.requests = 10;
  spec.offered_rps = 500.0;
  spec.max_new_tokens = 4;

  // Schedule and per-request workload byte-identical run to run.
  EXPECT_EQ(arrival_times(spec), arrival_times(spec));
  for (std::size_t i = 0; i < spec.requests; ++i) {
    const Request a = make_request(spec, i, load_config().vocab_size);
    const Request b = make_request(spec, i, load_config().vocab_size);
    EXPECT_EQ(a.prompt, b.prompt);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.priority, b.priority);
  }

  ServeConfig cfg;
  cfg.max_batch = 4;
  cfg.max_context = 48;
  ServeEngine first(make_backend(m), cfg);
  ServeEngine second(make_backend(m), cfg);
  const LoadPoint a = run_load(first, spec);
  const LoadPoint b = run_load(second, spec);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.evicted, b.evicted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.cancelled, b.cancelled);
  EXPECT_EQ(first.stats().generated_tokens, second.stats().generated_tokens);
  EXPECT_EQ(first.stats().prefill_tokens, second.stats().prefill_tokens);
}

// An effectively-zero client timeout cancels every request while it still
// sits in the queue: the generator applies expired deadlines before each
// step, so nothing ever reaches prefill.
TEST(LoadGenTest, ClientTimeoutCancelsSlowRequests) {
  const Model m = Model::init(load_config(), 7);
  ServeConfig cfg;
  cfg.max_batch = 2;
  cfg.max_context = 48;
  ServeEngine engine(make_backend(m), cfg);

  LoadSpec spec;
  spec.requests = 6;
  spec.offered_rps = 500.0;
  spec.max_new_tokens = 8;
  spec.cancel_after_ms = 1e-6;
  const LoadPoint p = run_load(engine, spec);
  EXPECT_EQ(p.cancelled, spec.requests);
  EXPECT_EQ(p.completed, 0u);
  EXPECT_EQ(p.completed + p.rejected + p.cancelled, spec.requests);
  // Cancelled requests stay out of the latency arrays and goodput.
  EXPECT_EQ(p.goodput_rps, 0.0);
  EXPECT_EQ(p.p50_ttft_ms, 0.0);
  EXPECT_EQ(engine.stats().cancelled, spec.requests);

  // A timeout far beyond the runtime cancels nothing.
  ServeEngine second(make_backend(m), cfg);
  spec.cancel_after_ms = 1e9;
  const LoadPoint q = run_load(second, spec);
  EXPECT_EQ(q.cancelled, 0u);
  EXPECT_EQ(q.completed, spec.requests);
}

TEST(LoadGenTest, ExactPercentileNearestRank) {
  const std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_EQ(exact_percentile(v, 50.0), 3.0);
  EXPECT_EQ(exact_percentile(v, 0.0), 1.0);
  EXPECT_EQ(exact_percentile(v, 100.0), 5.0);
  EXPECT_EQ(exact_percentile(v, 99.0), 5.0);
  EXPECT_EQ(exact_percentile({}, 50.0), 0.0);
  EXPECT_EQ(exact_percentile({7.5}, 99.0), 7.5);
}

}  // namespace
}  // namespace aptq::serve
