// Cross-validation of the Cholesky-based GPTQ solver against a slow,
// literal implementation of fixed-order OBQ (paper eqs. 2-4): quantize one
// column at a time, update the remaining weights with the explicit inverse-
// Hessian column, and shrink H⁻¹ with the Gauss elimination step of eq. 4.
// The two solvers are algebraically identical; this test proves the
// Cholesky reformulation implements the same update.
#include <gtest/gtest.h>

#include <cmath>

#include "quant/gptq.hpp"
#include "quant/hessian.hpp"
#include "tensor/cholesky.hpp"
#include "tensor/ops.hpp"

namespace aptq {
namespace {

// Literal fixed-order OBQ. Quantizes columns 0..d_in-1 in order; after
// quantizing column q, the remaining float weights receive
//   δ = −(w_q − quant(w_q)) / [H⁻¹]_qq · (H⁻¹)_{:,q}        (eqs. 2-3)
// and H⁻¹ is reduced by Gauss elimination of row/column q      (eq. 4).
Matrix obq_reference(const Matrix& w, const Matrix& h_raw, double damp,
                     const QuantSpec& spec) {
  const std::size_t d_out = w.rows();
  const std::size_t d_in = w.cols();
  Matrix hess = h_raw;
  const float jitter = static_cast<float>(damp * diag_mean(hess));
  for (std::size_t i = 0; i < d_in; ++i) {
    hess(i, i) += jitter;
  }
  Matrix hinv = spd_inverse(hess);
  Matrix work = w;

  // Group params fixed at group entry, matching the production solver.
  const std::size_t group = spec.group_size == 0 ? d_in : spec.group_size;
  std::vector<GroupParams> row_params(d_out);

  for (std::size_t q = 0; q < d_in; ++q) {
    if (q % group == 0) {
      const std::size_t glen = std::min(group, d_in - q);
      for (std::size_t r = 0; r < d_out; ++r) {
        row_params[r] = fit_group_params(
            std::span<const float>(work.data() + r * d_in + q, glen), spec);
      }
    }
    const float hqq = hinv(q, q);
    for (std::size_t r = 0; r < d_out; ++r) {
      const float wv = work(r, q);
      const float quantized =
          quantize_dequantize_value(wv, row_params[r], spec);
      work(r, q) = quantized;
      const float err = (wv - quantized) / hqq;
      // δ_F = −err · (H⁻¹)_{:,q} applied to the not-yet-quantized columns.
      for (std::size_t c = q + 1; c < d_in; ++c) {
        work(r, c) -= err * hinv(q, c);
      }
    }
    // Eq. 4: eliminate row/column q from H⁻¹.
    Matrix next = hinv;
    for (std::size_t i = 0; i < d_in; ++i) {
      for (std::size_t j = 0; j < d_in; ++j) {
        next(i, j) = hinv(i, j) - hinv(i, q) * hinv(q, j) / hqq;
      }
    }
    hinv = std::move(next);
    // Keep the eliminated coordinate numerically inert.
    hinv(q, q) = 1.0f;
  }
  return work;
}

Matrix calib_hessian(std::size_t d_in, std::size_t tokens,
                     std::uint64_t seed) {
  Rng rng(seed);
  const Matrix mix = Matrix::randn(d_in, d_in, rng, 0.0f,
                                   1.0f / std::sqrt(static_cast<float>(d_in)));
  const Matrix z = Matrix::randn(tokens, d_in, rng);
  HessianAccumulator acc(d_in);
  acc.add_matrix(matmul(z, mix));
  return acc.finalized();
}

class ObqEquivalence
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(ObqEquivalence, CholeskySolverMatchesLiteralObq) {
  const auto [bits, group] = GetParam();
  Rng rng(100 + static_cast<std::uint64_t>(bits));
  const Matrix w = Matrix::randn(6, 16, rng);
  const Matrix h = calib_hessian(16, 64, 7 + static_cast<std::uint64_t>(bits));

  GptqConfig cfg;
  cfg.spec.bits = bits;
  cfg.spec.group_size = group;
  cfg.damp = 0.01;
  const GptqResult fast = gptq_quantize(w, h, cfg);
  const Matrix slow = obq_reference(w, h, cfg.damp, cfg.spec);

  // Same grid, same updates: the quantized outputs must coincide (up to
  // f32 accumulation noise, which can flip a borderline rounding; allow a
  // tiny fraction of entries to sit one grid step apart).
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (std::fabs(fast.weight.flat()[i] - slow.flat()[i]) > 1e-3f) {
      ++mismatches;
    }
  }
  EXPECT_LE(mismatches, w.size() / 50)
      << "bits=" << bits << " group=" << group;
  // And their objective values agree tightly.
  EXPECT_NEAR(reconstruction_error(w, fast.weight, h),
              reconstruction_error(w, slow, h),
              0.05 * reconstruction_error(w, slow, h) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    GridsAndGroups, ObqEquivalence,
    ::testing::Combine(::testing::Values(2, 3, 4),
                       ::testing::Values(std::size_t{0}, std::size_t{8})));

TEST(ObqReference, BothBeatRtnOnObjective) {
  Rng rng(9);
  const Matrix w = Matrix::randn(8, 12, rng);
  const Matrix h = calib_hessian(12, 48, 10);
  QuantSpec spec;
  spec.bits = 2;
  spec.group_size = 0;
  const Matrix slow = obq_reference(w, h, 0.01, spec);
  const Matrix rtn = rtn_quantize(w, spec);
  EXPECT_LT(reconstruction_error(w, slow, h),
            reconstruction_error(w, rtn, h));
}

}  // namespace
}  // namespace aptq
