// Unit tests for the ThreadPool primitive itself: chunking contract, edge
// ranges, exception propagation, nesting, reduction determinism, and reuse
// across many submissions.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/threadpool.hpp"

namespace aptq {
namespace {

TEST(ThreadPool, EmptyRangeNeverInvokes) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(5, 5, 2, [&](std::size_t, std::size_t) { ++calls; });
  pool.parallel_for(7, 3, 2, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, RangeSmallerThanGrainIsOneChunk) {
  ThreadPool pool(4);
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for(3, 7, 100, [&](std::size_t b, std::size_t e) {
    chunks.emplace_back(b, e);
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], (std::pair<std::size_t, std::size_t>{3, 7}));
}

TEST(ThreadPool, ChunkBoundariesAreGrainMultiples) {
  // 0..23 with grain 5 must split into {0..5, 5..10, 10..15, 15..20, 20..23}
  // at every thread count — boundaries never depend on the pool size.
  for (const std::size_t threads : {1u, 2u, 4u, 7u}) {
    ThreadPool pool(threads);
    std::mutex m;
    std::set<std::pair<std::size_t, std::size_t>> chunks;
    pool.parallel_for(0, 23, 5, [&](std::size_t b, std::size_t e) {
      std::lock_guard<std::mutex> lock(m);
      chunks.emplace(b, e);
    });
    const std::set<std::pair<std::size_t, std::size_t>> expected = {
        {0, 5}, {5, 10}, {10, 15}, {15, 20}, {20, 23}};
    EXPECT_EQ(chunks, expected) << "threads=" << threads;
  }
}

TEST(ThreadPool, EveryIndexVisitedExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 1000;
  std::vector<int> visits(n, 0);
  pool.parallel_for(0, n, 7, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      ++visits[i];  // disjoint chunks: no data race
    }
  });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(visits[i], 1) << "index " << i;
  }
}

TEST(ThreadPool, ExceptionPropagatesOutOfWorker) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100, 1,
                        [&](std::size_t b, std::size_t) {
                          if (b == 37) {
                            throw std::runtime_error("worker failure");
                          }
                        }),
      std::runtime_error);
  // The pool survives a failed job and remains usable.
  std::atomic<int> calls{0};
  pool.parallel_for(0, 10, 1, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 10);
}

TEST(ThreadPool, AptqErrorsKeepTheirMessage) {
  ThreadPool pool(3);
  try {
    pool.parallel_for(0, 8, 1, [&](std::size_t b, std::size_t) {
      APTQ_CHECK(b != 5, "chunk 5 violated an invariant");
    });
    FAIL() << "expected aptq::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("chunk 5"), std::string::npos);
  }
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool::set_global_threads(4);
  std::atomic<std::size_t> total{0};
  parallel_for(0, 16, 1, [&](std::size_t, std::size_t) {
    // Nested call: must degrade to a serial inline loop, not wait for pool
    // workers that are all busy with the outer loop.
    parallel_for(0, 32, 4, [&](std::size_t b, std::size_t e) {
      total += e - b;
    });
  });
  EXPECT_EQ(total.load(), 16u * 32u);
  ThreadPool::set_global_threads(1);
}

TEST(ThreadPool, ReusableAcrossManySubmissions) {
  ThreadPool pool(4);
  std::size_t grand_total = 0;
  for (int round = 0; round < 200; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(0, 64, 3, [&](std::size_t b, std::size_t e) {
      std::size_t local = 0;
      for (std::size_t i = b; i < e; ++i) {
        local += i;
      }
      sum += local;
    });
    EXPECT_EQ(sum.load(), 64u * 63u / 2u) << "round " << round;
    grand_total += sum.load();
  }
  EXPECT_EQ(grand_total, 200u * (64u * 63u / 2u));
}

TEST(ThreadPool, ParallelReduceMatchesSerialLeftFold) {
  // Summing a sequence of magnitudes spanning many exponents is sensitive
  // to fold order; grain 1 must reproduce the serial left fold bitwise at
  // every thread count.
  std::vector<double> values(513);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = (i % 2 == 0 ? 1.0 : -1.0) / static_cast<double>(1 + i * i);
  }
  double serial = 0.0;
  for (const double v : values) {
    serial += v;
  }
  for (const std::size_t threads : {1u, 2u, 4u, 7u}) {
    ThreadPool::set_global_threads(threads);
    const double parallel = parallel_reduce(
        0, values.size(), 1, 0.0,
        [&](std::size_t b, std::size_t e) {
          double acc = 0.0;
          for (std::size_t i = b; i < e; ++i) {
            acc += values[i];
          }
          return acc;
        },
        [](double acc, double part) { return acc + part; });
    EXPECT_EQ(parallel, serial) << "threads=" << threads;
  }
  ThreadPool::set_global_threads(1);
}

TEST(ThreadPool, GlobalThreadCountFollowsConfiguration) {
  ThreadPool::set_global_threads(5);
  EXPECT_EQ(ThreadPool::global_thread_count(), 5u);
  ThreadPool::set_global_threads(1);
  EXPECT_EQ(ThreadPool::global_thread_count(), 1u);
  ThreadPool::set_global_threads(0);  // hardware concurrency, at least 1
  EXPECT_GE(ThreadPool::global_thread_count(), 1u);
  ThreadPool::set_global_threads(1);
}

}  // namespace
}  // namespace aptq
