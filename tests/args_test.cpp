// Unit tests for the CLI argument parser.
#include <gtest/gtest.h>

#include "util/args.hpp"

namespace aptq {
namespace {

ArgParser parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> v = {"prog"};
  v.insert(v.end(), argv.begin(), argv.end());
  return ArgParser(static_cast<int>(v.size()), v.data());
}

TEST(Args, ParsesSubcommandAndFlags) {
  const auto args = parse({"quantize", "--model", "7b", "--ratio", "0.75"});
  EXPECT_EQ(args.command(), "quantize");
  EXPECT_EQ(args.get_string("model", "x"), "7b");
  EXPECT_DOUBLE_EQ(args.get_double("ratio", 1.0), 0.75);
}

TEST(Args, FallbacksWhenAbsent) {
  const auto args = parse({"eval"});
  EXPECT_EQ(args.get_string("model", "7b"), "7b");
  EXPECT_DOUBLE_EQ(args.get_double("ratio", 0.5), 0.5);
  EXPECT_EQ(args.get_long("bits", 4), 4);
  EXPECT_FALSE(args.has("model"));
}

TEST(Args, EmptyCommandLine) {
  const auto args = parse({});
  EXPECT_EQ(args.command(), "");
}

TEST(Args, FlagsWithoutSubcommand) {
  const auto args = parse({"--bits", "2"});
  EXPECT_EQ(args.command(), "");
  EXPECT_EQ(args.get_long("bits", 4), 2);
}

TEST(Args, RejectsMalformedInput) {
  EXPECT_THROW(parse({"cmd", "stray"}), Error);          // non-flag token
  EXPECT_THROW(parse({"cmd", "--dangling"}), Error);     // missing value
  const auto args = parse({"cmd", "--bits", "four"});
  EXPECT_THROW(args.get_long("bits", 4), Error);         // non-numeric
  const auto args2 = parse({"cmd", "--ratio", "0.5x"});
  EXPECT_THROW(args2.get_double("ratio", 1.0), Error);
}

TEST(Args, TracksUnusedFlags) {
  const auto args = parse({"cmd", "--used", "1", "--typo", "2"});
  args.get_long("used", 0);
  const auto unused = args.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Args, NegativeAndIntegerValues) {
  const auto args = parse({"cmd", "--delta", "-3", "--temp", "-0.5"});
  EXPECT_EQ(args.get_long("delta", 0), -3);
  EXPECT_DOUBLE_EQ(args.get_double("temp", 0.0), -0.5);
}

}  // namespace
}  // namespace aptq
