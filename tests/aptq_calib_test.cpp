// Unit tests for src/quant/aptq: attention γ weights, Hessian collection in
// both modes, per-block collection, and the structural properties that make
// APTQ "attention-aware" (γ ≡ 1 exactly where the paper's eq. 9 reduces to
// GPTQ, γ varying where the softmax nonlinearity enters).
#include <gtest/gtest.h>

#include <cmath>

#include "model/forward.hpp"
#include "quant/aptq.hpp"
#include "tensor/cholesky.hpp"
#include "tensor/ops.hpp"

namespace aptq {
namespace {

ModelConfig small_config() {
  ModelConfig c;
  c.vocab_size = 16;
  c.dim = 12;
  c.n_layers = 2;
  c.n_heads = 2;
  c.ffn_dim = 20;
  return c;
}

std::vector<TokenSeq> make_segments(std::size_t n, std::size_t len,
                                    std::size_t vocab, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TokenSeq> segs(n);
  for (auto& s : segs) {
    s.resize(len);
    for (auto& t : s) {
      t = static_cast<TokenId>(rng.index(vocab));
    }
  }
  return segs;
}

TEST(AttentionGammas, ShapesAndPositivity) {
  const Model m = Model::init(small_config(), 1);
  const auto segs = make_segments(1, 9, 16, 2);
  ForwardCache cache;
  model_forward(m, segs[0], cache);
  Rng rng(3);
  const AttentionGammas g = attention_gammas(m, 0, cache.blocks[0], 3, rng);
  ASSERT_EQ(g.q.size(), 9u);
  ASSERT_EQ(g.k.size(), 9u);
  ASSERT_EQ(g.v.size(), 9u);
  for (std::size_t t = 0; t < 9; ++t) {
    EXPECT_GE(g.q[t], 0.0f);
    EXPECT_GE(g.k[t], 0.0f);
    EXPECT_GT(g.v[t], 0.0f);  // value path always carries probability mass
  }
}

TEST(AttentionGammas, VaryAcrossTokens) {
  // The whole point: the softmax Jacobian makes token importances unequal.
  const Model m = Model::init(small_config(), 4);
  const auto segs = make_segments(1, 12, 16, 5);
  ForwardCache cache;
  model_forward(m, segs[0], cache);
  Rng rng(6);
  const AttentionGammas g = attention_gammas(m, 0, cache.blocks[0], 4, rng);
  const auto spread = [](const std::vector<float>& v) {
    float lo = v[0], hi = v[0];
    for (const float x : v) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
    return hi - lo;
  };
  EXPECT_GT(spread(g.v), 1e-4f);
  EXPECT_GT(spread(g.q), 1e-6f);
}

TEST(AttentionGammas, DeterministicInProbeSeed) {
  const Model m = Model::init(small_config(), 7);
  const auto segs = make_segments(1, 8, 16, 8);
  ForwardCache cache;
  model_forward(m, segs[0], cache);
  Rng a(9), b(9);
  const AttentionGammas ga = attention_gammas(m, 0, cache.blocks[0], 2, a);
  const AttentionGammas gb = attention_gammas(m, 0, cache.blocks[0], 2, b);
  EXPECT_EQ(ga.v, gb.v);
  EXPECT_EQ(ga.q, gb.q);
}

TEST(AttentionGammas, MoreProbesReduceVariance) {
  const Model m = Model::init(small_config(), 10);
  const auto segs = make_segments(1, 10, 16, 11);
  ForwardCache cache;
  model_forward(m, segs[0], cache);
  // Estimate the estimator's variance at 1 vs 8 probes across repeats.
  const auto variance_of = [&](std::size_t probes) {
    std::vector<double> estimates;
    for (std::uint64_t rep = 0; rep < 12; ++rep) {
      Rng rng(100 + rep);
      const AttentionGammas g =
          attention_gammas(m, 0, cache.blocks[0], probes, rng);
      estimates.push_back(g.v[5]);
    }
    double mean = 0.0;
    for (const double e : estimates) {
      mean += e;
    }
    mean /= static_cast<double>(estimates.size());
    double var = 0.0;
    for (const double e : estimates) {
      var += (e - mean) * (e - mean);
    }
    return var / static_cast<double>(estimates.size());
  };
  EXPECT_LT(variance_of(8), variance_of(1));
}

TEST(Calibration, CoversAllLinearLayers) {
  const Model m = Model::init(small_config(), 12);
  const auto segs = make_segments(4, 10, 16, 13);
  CalibConfig cfg;
  const CalibrationResult res = collect_calibration(m, segs, cfg);
  ASSERT_EQ(res.layers.size(), 2u * 7u);
  EXPECT_EQ(res.layers[0].name, "layers.0.self_attn.q_proj");
  EXPECT_EQ(res.layers[13].name, "layers.1.mlp.down_proj");
  for (const auto& layer : res.layers) {
    const std::size_t d_in =
        layer.kind == LinearKind::down_proj ? 20u : 12u;
    EXPECT_EQ(layer.hessian.rows(), d_in) << layer.name;
    EXPECT_GT(layer.avg_trace, 0.0) << layer.name;
    EXPECT_GT(layer.weight_count, 0u);
  }
  EXPECT_NO_THROW(res.by_name("layers.1.self_attn.v_proj"));
  EXPECT_THROW(res.by_name("nonexistent"), Error);
}

TEST(Calibration, LmHeadIncludedOnRequest) {
  const Model m = Model::init(small_config(), 14);
  const auto segs = make_segments(2, 8, 16, 15);
  CalibConfig cfg;
  cfg.include_lm_head = true;
  const CalibrationResult res = collect_calibration(m, segs, cfg);
  EXPECT_EQ(res.layers.size(), 15u);
  EXPECT_EQ(res.layers.back().name, "lm_head");
}

TEST(Calibration, GptqModeMatchesPlainAccumulation) {
  // In gptq mode the o_proj Hessian must equal 2/N·Σ attn_catᵀ·attn_cat.
  const Model m = Model::init(small_config(), 16);
  const auto segs = make_segments(3, 9, 16, 17);
  CalibConfig cfg;
  cfg.mode = HessianMode::gptq;
  const CalibrationResult res = collect_calibration(m, segs, cfg);

  HessianAccumulator ref(12);
  ForwardCache cache;
  for (const auto& s : segs) {
    model_forward(m, s, cache);
    ref.add_matrix(cache.blocks[0].attn_cat);
  }
  const Matrix expected = ref.finalized();
  const Matrix& got = res.by_name("layers.0.self_attn.o_proj").hessian;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(got.flat()[i], expected.flat()[i], 1e-4f);
  }
}

TEST(Calibration, OProjIdenticalAcrossModes) {
  // F is linear in W_O (paper eq. 9) ⇒ the o_proj Hessian is mode-invariant.
  const Model m = Model::init(small_config(), 18);
  const auto segs = make_segments(3, 8, 16, 19);
  CalibConfig gptq_cfg, aptq_cfg;
  gptq_cfg.mode = HessianMode::gptq;
  aptq_cfg.mode = HessianMode::aptq;
  const auto a = collect_calibration(m, segs, gptq_cfg);
  const auto b = collect_calibration(m, segs, aptq_cfg);
  const Matrix& ha = a.by_name("layers.0.self_attn.o_proj").hessian;
  const Matrix& hb = b.by_name("layers.0.self_attn.o_proj").hessian;
  for (std::size_t i = 0; i < ha.size(); ++i) {
    EXPECT_NEAR(ha.flat()[i], hb.flat()[i], 1e-5f);
  }
  // FFN layers likewise.
  const Matrix& fa = a.by_name("layers.1.mlp.gate_proj").hessian;
  const Matrix& fb = b.by_name("layers.1.mlp.gate_proj").hessian;
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_NEAR(fa.flat()[i], fb.flat()[i], 1e-5f);
  }
}

TEST(Calibration, QkvDifferAcrossModes) {
  // The attention-aware Hessians must actually differ from plain XXᵀ.
  const Model m = Model::init(small_config(), 20);
  const auto segs = make_segments(4, 10, 16, 21);
  CalibConfig gptq_cfg, aptq_cfg;
  gptq_cfg.mode = HessianMode::gptq;
  aptq_cfg.mode = HessianMode::aptq;
  aptq_cfg.probes = 4;
  const auto a = collect_calibration(m, segs, gptq_cfg);
  const auto b = collect_calibration(m, segs, aptq_cfg);
  for (const char* name : {"layers.0.self_attn.q_proj",
                           "layers.0.self_attn.k_proj",
                           "layers.0.self_attn.v_proj"}) {
    const Matrix& ha = a.by_name(name).hessian;
    const Matrix& hb = b.by_name(name).hessian;
    EXPECT_GT(frobenius_distance(ha, hb),
              1e-3 * std::sqrt(sum_squares(ha)))
        << name;
  }
  // γ statistics are recorded for attention layers in aptq mode.
  EXPECT_NE(b.by_name("layers.0.self_attn.v_proj").gamma_mean, 1.0);
}

TEST(Calibration, BlockCollectionMatchesFiltering) {
  const Model m = Model::init(small_config(), 22);
  const auto segs = make_segments(3, 8, 16, 23);
  CalibConfig cfg;
  const auto full = collect_calibration(m, segs, cfg);
  const auto block1 = collect_block_calibration(m, segs, 1, cfg);
  ASSERT_EQ(block1.layers.size(), 7u);
  for (const auto& layer : block1.layers) {
    EXPECT_EQ(layer.block, 1u);
    const auto& ref = full.by_name(layer.name);
    for (std::size_t i = 0; i < layer.hessian.size(); ++i) {
      EXPECT_NEAR(layer.hessian.flat()[i], ref.hessian.flat()[i], 1e-4f)
          << layer.name;
    }
  }
  EXPECT_THROW(collect_block_calibration(m, segs, 5, cfg), Error);
}

TEST(Calibration, RejectsEmptySegments) {
  const Model m = Model::init(small_config(), 24);
  CalibConfig cfg;
  EXPECT_THROW(collect_calibration(m, {}, cfg), Error);
}

TEST(Calibration, HessiansAreSpdAfterDamping) {
  const Model m = Model::init(small_config(), 25);
  const auto segs = make_segments(4, 10, 16, 26);
  CalibConfig cfg;
  const auto res = collect_calibration(m, segs, cfg);
  for (const auto& layer : res.layers) {
    Matrix h = layer.hessian;
    const float jitter = static_cast<float>(0.01 * diag_mean(h));
    for (std::size_t i = 0; i < h.rows(); ++i) {
      if (h(i, i) == 0.0f) {
        h(i, i) = 1.0f;
      }
      h(i, i) += jitter;
    }
    EXPECT_NO_THROW(gptq_inverse_factor(h)) << layer.name;
  }
}

}  // namespace
}  // namespace aptq
