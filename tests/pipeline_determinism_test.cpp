// End-to-end determinism: the full APTQ mixed-precision pipeline on the
// llama7b-sim architecture must produce identical bit allocations and
// perplexity when run twice at 4 threads, and the 4-thread run must match
// the 1-thread run. This is the whole point of the fixed-chunk parallelism
// design — thread count is not allowed to leak into any numeric result.
#include <gtest/gtest.h>

#include <vector>

#include "core/model_zoo.hpp"
#include "core/pipeline.hpp"
#include "eval/perplexity.hpp"
#include "util/threadpool.hpp"

namespace aptq {
namespace {

struct RunResult {
  std::vector<std::string> names;
  std::vector<double> bits;
  double perplexity = 0.0;
};

class PipelineDeterminismTest : public ::testing::Test {
 protected:
  PipelineDeterminismTest()
      // llama7b-sim architecture with random-init weights: quantization and
      // evaluation determinism don't need the trained checkpoint, and
      // skipping the 1800-step training keeps the test fast.
      : model_(Model::init(llama7b_sim().config, 7)),
        corpus_("determinism",
                [] {
                  MarkovSpec s;
                  s.seed = 61;
                  s.vocab_size = 64;
                  return s;
                }(),
                6000, 1200, 62) {
    config_.calib_segments = 4;
    config_.calib_seq_len = 16;
    config_.group_size = 8;
    config_.ratio_high = 0.5;
  }

  ~PipelineDeterminismTest() override { ThreadPool::set_global_threads(1); }

  RunResult run_pipeline() const {
    const QuantizedModel qm =
        quantize_model(model_, corpus_, Method::aptq_mixed, config_);
    RunResult res;
    for (const auto& layer : qm.layers) {
      res.names.push_back(layer.name);
      res.bits.push_back(layer.bits);
    }
    const auto segments = corpus_.eval_segments(24, 4);
    res.perplexity =
        evaluate_perplexity(qm.model, segments, qm.forward_options)
            .perplexity;
    return res;
  }

  Model model_;
  Corpus corpus_;
  PipelineConfig config_;
};

TEST_F(PipelineDeterminismTest, MixedPipelineIsThreadCountInvariant) {
  ThreadPool::set_global_threads(4);
  const RunResult first = run_pipeline();
  const RunResult second = run_pipeline();

  ThreadPool::set_global_threads(1);
  const RunResult serial = run_pipeline();

  ASSERT_FALSE(first.names.empty());
  // Same thread count, repeated run: everything identical.
  EXPECT_EQ(second.names, first.names);
  EXPECT_EQ(second.bits, first.bits);
  EXPECT_EQ(second.perplexity, first.perplexity);

  // 4 threads vs serial: identical allocation, perplexity within 1e-12
  // (in practice bitwise equal — the NEAR bound is the acceptance wording).
  EXPECT_EQ(serial.names, first.names);
  EXPECT_EQ(serial.bits, first.bits);
  EXPECT_NEAR(serial.perplexity, first.perplexity, 1e-12);
  EXPECT_EQ(serial.perplexity, first.perplexity);
}

}  // namespace
}  // namespace aptq
