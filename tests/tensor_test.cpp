// Unit tests for src/tensor: Matrix invariants, every GEMM variant against a
// naive reference, softmax/RMSNorm/SiLU forward and backward (finite
// differences), RoPE round-trips, and the Cholesky identities the GPTQ
// solver relies on.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "tensor/cholesky.hpp"
#include "tensor/matrix.hpp"
#include "tensor/ops.hpp"

namespace aptq {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  Rng rng(seed);
  return Matrix::randn(r, c, rng);
}

// Reference O(n^3) product with explicit transposes.
Matrix naive_matmul(const Matrix& a, const Matrix& b, Trans ta, Trans tb) {
  const std::size_t m = ta == Trans::no ? a.rows() : a.cols();
  const std::size_t k = ta == Trans::no ? a.cols() : a.rows();
  const std::size_t n = tb == Trans::no ? b.cols() : b.rows();
  Matrix c(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = ta == Trans::no ? a(i, p) : a(p, i);
        const float bv = tb == Trans::no ? b(p, j) : b(j, p);
        acc += static_cast<double>(av) * bv;
      }
      c(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

void expect_close(const Matrix& a, const Matrix& b, float tol = 1e-4f) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a.flat()[i], b.flat()[i], tol) << "at flat index " << i;
  }
}

TEST(Matrix, ConstructionAndInvariants) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  for (const float v : m.flat()) {
    EXPECT_EQ(v, 0.0f);
  }
  Matrix f(2, 2, 1.5f);
  EXPECT_EQ(f(1, 1), 1.5f);
}

TEST(Matrix, AtBoundsChecked) {
  Matrix m(2, 3);
  EXPECT_THROW(m.at(2, 0), Error);
  EXPECT_THROW(m.at(0, 3), Error);
  EXPECT_THROW(m.row(2), Error);
  EXPECT_NO_THROW(m.at(1, 2));
}

TEST(Matrix, RowViewWritesThrough) {
  Matrix m(2, 3);
  auto r = m.row(1);
  r[2] = 9.0f;
  EXPECT_EQ(m(1, 2), 9.0f);
}

TEST(Matrix, TransposedIsInvolution) {
  const Matrix m = random_matrix(5, 7, 1);
  expect_close(m.transposed().transposed(), m, 0.0f);
  EXPECT_EQ(m.transposed()(3, 2), m(2, 3));
}

TEST(Matrix, IdentityAndEquality) {
  const Matrix i3 = Matrix::identity(3);
  EXPECT_EQ(i3(0, 0), 1.0f);
  EXPECT_EQ(i3(0, 1), 0.0f);
  EXPECT_TRUE(i3 == Matrix::identity(3));
  EXPECT_FALSE(i3 == Matrix::identity(4));
}

TEST(Matrix, RandnIsDeterministicInSeed) {
  Rng a(9), b(9);
  EXPECT_TRUE(Matrix::randn(4, 4, a) == Matrix::randn(4, 4, b));
}

class GemmVariants
    : public ::testing::TestWithParam<std::tuple<Trans, Trans>> {};

TEST_P(GemmVariants, MatchesNaive) {
  const auto [ta, tb] = GetParam();
  // Shapes chosen so m, n, k all differ (catches index swaps).
  const std::size_t m = 5, k = 7, n = 3;
  const Matrix a = ta == Trans::no ? random_matrix(m, k, 2)
                                   : random_matrix(k, m, 2);
  const Matrix b = tb == Trans::no ? random_matrix(k, n, 3)
                                   : random_matrix(n, k, 3);
  expect_close(matmul(a, b, ta, tb), naive_matmul(a, b, ta, tb));
}

TEST_P(GemmVariants, AlphaBetaComposition) {
  const auto [ta, tb] = GetParam();
  const std::size_t m = 4, k = 6, n = 5;
  const Matrix a = ta == Trans::no ? random_matrix(m, k, 4)
                                   : random_matrix(k, m, 4);
  const Matrix b = tb == Trans::no ? random_matrix(k, n, 5)
                                   : random_matrix(n, k, 5);
  Matrix c = random_matrix(m, n, 6);
  Matrix expected = c;
  const Matrix prod = naive_matmul(a, b, ta, tb);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    expected.flat()[i] = 0.5f * expected.flat()[i] + 2.0f * prod.flat()[i];
  }
  gemm(a, ta, b, tb, c, 2.0f, 0.5f);
  expect_close(c, expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllTransposes, GemmVariants,
    ::testing::Combine(::testing::Values(Trans::no, Trans::yes),
                       ::testing::Values(Trans::no, Trans::yes)));

TEST(Gemm, RejectsBadShapes) {
  const Matrix a(2, 3), b(4, 5);
  Matrix c(2, 5);
  EXPECT_THROW(gemm(a, Trans::no, b, Trans::no, c), Error);
  const Matrix b2(3, 5);
  Matrix bad_c(3, 5);
  EXPECT_THROW(gemm(a, Trans::no, b2, Trans::no, bad_c), Error);
}

TEST(Ops, AxpyAndScale) {
  Matrix x(2, 2, 1.0f);
  Matrix y(2, 2, 3.0f);
  axpy(2.0f, x, y);
  EXPECT_EQ(y(0, 0), 5.0f);
  scale(y, 0.5f);
  EXPECT_EQ(y(1, 1), 2.5f);
  Matrix wrong(3, 2);
  EXPECT_THROW(axpy(1.0f, wrong, y), Error);
}

TEST(Ops, DotAndNorms) {
  const std::vector<float> a = {1.0f, 2.0f, 3.0f};
  const std::vector<float> b = {4.0f, -5.0f, 6.0f};
  EXPECT_FLOAT_EQ(dot(a, b), 12.0f);
  Matrix m(1, 3);
  m(0, 0) = 3.0f;
  m(0, 2) = 4.0f;
  EXPECT_DOUBLE_EQ(sum_squares(m), 25.0);
  Matrix z(1, 3);
  EXPECT_DOUBLE_EQ(frobenius_distance(m, z), 5.0);
}

TEST(Softmax, RowsSumToOne) {
  Matrix m = random_matrix(6, 9, 7);
  softmax_rows(m);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double sum = 0.0;
    for (const float v : m.row(r)) {
      EXPECT_GE(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Softmax, CausalMaskZeroesFuture) {
  Matrix m = random_matrix(5, 5, 8);
  softmax_rows(m, /*causal_offset=*/0);
  for (std::size_t r = 0; r < 5; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 5; ++c) {
      if (c > r) {
        EXPECT_EQ(m(r, c), 0.0f);
      }
      sum += m(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Softmax, ShiftInvariance) {
  Matrix a = random_matrix(3, 4, 9);
  Matrix b = a;
  for (float& v : b.flat()) {
    v += 100.0f;
  }
  softmax_rows(a);
  softmax_rows(b);
  expect_close(a, b, 1e-5f);
}

TEST(Softmax, BackwardMatchesFiniteDifference) {
  const std::size_t rows = 3, cols = 5;
  Matrix scores = random_matrix(rows, cols, 10);
  const Matrix upstream = random_matrix(rows, cols, 11);

  Matrix probs = scores;
  softmax_rows(probs);
  Matrix analytic;
  softmax_rows_backward(probs, upstream, analytic);

  const float eps = 1e-3f;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      Matrix plus = scores, minus = scores;
      plus(r, c) += eps;
      minus(r, c) -= eps;
      softmax_rows(plus);
      softmax_rows(minus);
      double dplus = 0.0, dminus = 0.0;
      for (std::size_t i = 0; i < plus.size(); ++i) {
        dplus += static_cast<double>(plus.flat()[i]) * upstream.flat()[i];
        dminus += static_cast<double>(minus.flat()[i]) * upstream.flat()[i];
      }
      const double numeric = (dplus - dminus) / (2.0 * eps);
      EXPECT_NEAR(analytic(r, c), numeric, 5e-3) << "(" << r << "," << c << ")";
    }
  }
}

TEST(RmsNorm, ForwardNormalizes) {
  const std::size_t cols = 8;
  const Matrix in = random_matrix(4, cols, 12);
  const std::vector<float> gain(cols, 1.0f);
  Matrix out;
  std::vector<float> inv_rms;
  rmsnorm_forward(in, gain, 1e-6f, out, inv_rms);
  ASSERT_EQ(inv_rms.size(), 4u);
  for (std::size_t r = 0; r < 4; ++r) {
    double ms = 0.0;
    for (const float v : out.row(r)) {
      ms += static_cast<double>(v) * v;
    }
    EXPECT_NEAR(ms / cols, 1.0, 1e-3);
  }
}

TEST(RmsNorm, BackwardMatchesFiniteDifference) {
  const std::size_t rows = 3, cols = 6;
  const Matrix in = random_matrix(rows, cols, 13);
  std::vector<float> gain(cols);
  Rng rng(14);
  for (float& g : gain) {
    g = rng.uniform(0.5f, 1.5f);
  }
  const Matrix upstream = random_matrix(rows, cols, 15);
  const float eps_norm = 1e-5f;

  Matrix out;
  std::vector<float> inv_rms;
  rmsnorm_forward(in, gain, eps_norm, out, inv_rms);
  Matrix grad_in;
  std::vector<float> grad_gain(cols, 0.0f);
  rmsnorm_backward(in, gain, inv_rms, upstream, grad_in, grad_gain);

  const auto loss = [&](const Matrix& x, const std::vector<float>& g) {
    Matrix o;
    std::vector<float> ir;
    rmsnorm_forward(x, g, eps_norm, o, ir);
    double acc = 0.0;
    for (std::size_t i = 0; i < o.size(); ++i) {
      acc += static_cast<double>(o.flat()[i]) * upstream.flat()[i];
    }
    return acc;
  };

  const float eps = 1e-3f;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      Matrix plus = in, minus = in;
      plus(r, c) += eps;
      minus(r, c) -= eps;
      const double numeric = (loss(plus, gain) - loss(minus, gain)) / (2 * eps);
      EXPECT_NEAR(grad_in(r, c), numeric, 5e-3);
    }
  }
  for (std::size_t c = 0; c < cols; ++c) {
    auto plus = gain, minus = gain;
    plus[c] += eps;
    minus[c] -= eps;
    const double numeric = (loss(in, plus) - loss(in, minus)) / (2 * eps);
    EXPECT_NEAR(grad_gain[c], numeric, 5e-3);
  }
}

TEST(Silu, ForwardValues) {
  Matrix in(1, 3);
  in(0, 0) = 0.0f;
  in(0, 1) = 10.0f;
  in(0, 2) = -10.0f;
  Matrix out;
  silu(in, out);
  EXPECT_NEAR(out(0, 0), 0.0f, 1e-6f);
  EXPECT_NEAR(out(0, 1), 10.0f, 1e-3f);
  EXPECT_NEAR(out(0, 2), 0.0f, 1e-3f);
}

TEST(Silu, BackwardMatchesFiniteDifference) {
  const Matrix in = random_matrix(4, 5, 16);
  const Matrix upstream = random_matrix(4, 5, 17);
  Matrix grad;
  silu_backward(in, upstream, grad);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < in.size(); ++i) {
    Matrix plus = in, minus = in;
    plus.flat()[i] += eps;
    minus.flat()[i] -= eps;
    Matrix op, om;
    silu(plus, op);
    silu(minus, om);
    const double numeric =
        (static_cast<double>(op.flat()[i]) - om.flat()[i]) / (2 * eps) *
        upstream.flat()[i];
    EXPECT_NEAR(grad.flat()[i], numeric, 5e-3);
  }
}

TEST(Rope, InverseRoundTrips) {
  Matrix x = random_matrix(6, 8, 18);
  const Matrix original = x;
  rope_apply(x, /*head_dim=*/4);
  EXPECT_GT(frobenius_distance(x, original), 1e-3);  // actually rotates
  rope_apply(x, 4, 10000.0f, /*inverse=*/true);
  expect_close(x, original, 1e-5f);
}

TEST(Rope, PositionZeroIsIdentity) {
  Matrix x = random_matrix(1, 8, 19);
  const Matrix original = x;
  rope_apply(x, 4);
  expect_close(x, original, 1e-6f);
}

TEST(Rope, PreservesNorms) {
  Matrix x = random_matrix(5, 8, 20);
  const double before = sum_squares(x);
  rope_apply(x, 4);
  EXPECT_NEAR(sum_squares(x), before, 1e-3);
}

TEST(Rope, RejectsBadHeadDim) {
  Matrix x(2, 8);
  EXPECT_THROW(rope_apply(x, 3), Error);
  EXPECT_THROW(rope_apply(x, 5), Error);
}

// The pre-table implementation of rope_apply, kept verbatim: one pow per
// (row, frequency) pair and per-element cos/sin. The production version
// hoists these into tables but evaluates the exact same float expressions,
// so the results must be bitwise identical.
void rope_apply_per_element(Matrix& x, std::size_t head_dim, float theta_base,
                            bool inverse, std::size_t position_offset) {
  const std::size_t heads = x.cols() / head_dim;
  const std::size_t half = head_dim / 2;
  const float sign = inverse ? -1.0f : 1.0f;
  for (std::size_t t = 0; t < x.rows(); ++t) {
    float* row = x.data() + t * x.cols();
    for (std::size_t i = 0; i < half; ++i) {
      const float freq =
          std::pow(theta_base, -2.0f * static_cast<float>(i) /
                                    static_cast<float>(head_dim));
      const float angle = static_cast<float>(t + position_offset) * freq;
      const float cos_a = std::cos(angle);
      const float sin_a = sign * std::sin(angle);
      for (std::size_t h = 0; h < heads; ++h) {
        float* pair = row + h * head_dim + 2 * i;
        const float x0 = pair[0];
        const float x1 = pair[1];
        pair[0] = cos_a * x0 - sin_a * x1;
        pair[1] = sin_a * x0 + cos_a * x1;
      }
    }
  }
}

TEST(Rope, TableVersionIsBitwiseIdenticalToPerElement) {
  for (const bool inverse : {false, true}) {
    Matrix got = random_matrix(9, 24, 77);
    Matrix want = got;
    rope_apply(got, /*head_dim=*/8, 10000.0f, inverse, /*position_offset=*/3);
    rope_apply_per_element(want, 8, 10000.0f, inverse, 3);
#ifdef __FMA__
    // APTQ_NATIVE builds contract a·b±c·d into FMA, and the contraction
    // choice differs between the two loop shapes; low bits may diverge
    // (see docs/KERNELS.md). Pin to one rounding of the O(1) inputs.
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got.flat()[i], want.flat()[i], 1e-6f)
          << "inverse=" << inverse << " i=" << i;
    }
#else
    EXPECT_TRUE(got == want) << "inverse=" << inverse;
#endif
  }
}

// The GEMM inner loops no longer skip zero coefficients, so IEEE semantics
// apply: 0 × NaN = NaN now reaches the output (the old kernels silently
// dropped it). These tests pin the new contract.
TEST(Gemm, ZeroTimesNanPropagates) {
  for (const std::size_t dim : {4ul, 64ul}) {  // naive and tiled dispatch arms
    Matrix a(dim, dim);             // all zeros
    Matrix b(dim, dim, 1.0f);
    b(0, 0) = std::numeric_limits<float>::quiet_NaN();
    Matrix c(dim, dim);
    gemm(a, Trans::no, b, Trans::no, c);
    EXPECT_TRUE(std::isnan(c(0, 0))) << "dim=" << dim;
    EXPECT_EQ(c(dim - 1, dim - 1), 0.0f);
  }
}

TEST(Gemm, NegativeZeroInputsStayFinite) {
  // -0.0 coefficients take the multiply path; products of signed zeros are
  // still zeros, so the result equals the all-positive-zero case.
  Matrix a(3, 3, -0.0f);
  const Matrix b = random_matrix(3, 3, 78);
  Matrix c(3, 3, 1.0f);
  gemm(a, Trans::no, b, Trans::no, c, 1.0f, 1.0f);
  for (const float v : c.flat()) {
    EXPECT_EQ(v, 1.0f);
  }
}

Matrix random_spd(std::size_t n, std::uint64_t seed) {
  const Matrix a = random_matrix(n, n + 3, seed);
  Matrix h = matmul(a, a, Trans::no, Trans::yes);
  for (std::size_t i = 0; i < n; ++i) {
    h(i, i) += 0.5f;
  }
  return h;
}

TEST(Cholesky, FactorReconstructs) {
  const Matrix h = random_spd(8, 21);
  const auto l = cholesky_lower(h);
  ASSERT_TRUE(l.has_value());
  expect_close(matmul(*l, *l, Trans::no, Trans::yes), h, 1e-3f);
  // Strict upper triangle is zero.
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = i + 1; j < 8; ++j) {
      EXPECT_EQ((*l)(i, j), 0.0f);
    }
  }
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix m = Matrix::identity(3);
  m(2, 2) = -1.0f;
  EXPECT_FALSE(cholesky_lower(m).has_value());
}

TEST(Cholesky, InverseIsInverse) {
  const Matrix h = random_spd(10, 22);
  const Matrix inv = spd_inverse(h);
  expect_close(matmul(h, inv), Matrix::identity(10), 2e-3f);
}

TEST(Cholesky, GptqFactorIdentity) {
  // The GPTQ solver requires U upper-triangular with H⁻¹ = Uᵀ·U.
  const Matrix h = random_spd(12, 23);
  const Matrix u = gptq_inverse_factor(h);
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      EXPECT_EQ(u(i, j), 0.0f) << "U not upper triangular";
    }
  }
  const Matrix utu = matmul(u, u, Trans::yes, Trans::no);
  expect_close(utu, spd_inverse(h), 2e-3f);
}

TEST(Cholesky, SolvesTriangularSystems) {
  const Matrix h = random_spd(6, 24);
  const auto l = cholesky_lower(h);
  ASSERT_TRUE(l.has_value());
  Rng rng(25);
  std::vector<float> b(6), x(6), y(6);
  for (float& v : b) {
    v = rng.normal(0.0f, 1.0f);
  }
  solve_lower(*l, b, x);
  // Check L x = b.
  for (std::size_t i = 0; i < 6; ++i) {
    double acc = 0.0;
    for (std::size_t k = 0; k <= i; ++k) {
      acc += (*l)(i, k) * x[k];
    }
    EXPECT_NEAR(acc, b[i], 1e-4);
  }
  solve_lower_transposed(*l, b, y);
  for (std::size_t i = 0; i < 6; ++i) {
    double acc = 0.0;
    for (std::size_t k = i; k < 6; ++k) {
      acc += (*l)(k, i) * y[k];
    }
    EXPECT_NEAR(acc, b[i], 1e-4);
  }
}

TEST(Ops, TraceAndDiagMean) {
  Matrix m = Matrix::identity(4);
  m(2, 2) = 5.0f;
  EXPECT_DOUBLE_EQ(trace(m), 8.0);
  EXPECT_DOUBLE_EQ(diag_mean(m), 2.0);
  Matrix rect(2, 3);
  EXPECT_THROW(trace(rect), Error);
}

}  // namespace
}  // namespace aptq
