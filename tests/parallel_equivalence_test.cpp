// Serial-equivalence suite for the parallelized hot paths: matmul, Hessian
// accumulation, and the GPTQ solver must produce bitwise-identical results
// at 2, 4, and 7 threads compared to the fully serial 1-thread path, on the
// same seeded inputs. Shapes are deliberately not divisible by the chunk
// grains to exercise chunk-boundary handling. With the register-tiled
// kernels (tensor/kernels.hpp) the guarantee is unchanged: tile and chunk
// boundaries depend only on the operand shapes, never the thread count, so
// both the naive-reference and tiled/SYRK dispatch arms stay bitwise
// thread-count invariant (see docs/KERNELS.md).
#include <gtest/gtest.h>

#include <vector>

#include "quant/gptq.hpp"
#include "quant/hessian.hpp"
#include "tensor/ops.hpp"
#include "util/threadpool.hpp"

namespace aptq {
namespace {

const std::size_t kThreadSweep[] = {2, 4, 7};

// Restore the serial pool when a test exits, pass or fail.
class ParallelEquivalenceTest : public ::testing::Test {
 protected:
  ~ParallelEquivalenceTest() override { ThreadPool::set_global_threads(1); }
};

TEST_F(ParallelEquivalenceTest, MatmulAllTransposeVariants) {
  Rng rng(501);
  // 37 output rows: not divisible by any power-of-two grain.
  const Matrix a = Matrix::randn(37, 23, rng);
  const Matrix b = Matrix::randn(23, 41, rng);
  const Matrix at = a.transposed();
  const Matrix bt = b.transposed();

  ThreadPool::set_global_threads(1);
  const Matrix nn = matmul(a, b);
  const Matrix nt = matmul(a, bt, Trans::no, Trans::yes);
  const Matrix tn = matmul(at, b, Trans::yes, Trans::no);
  const Matrix tt = matmul(at, bt, Trans::yes, Trans::yes);

  for (const std::size_t threads : kThreadSweep) {
    ThreadPool::set_global_threads(threads);
    EXPECT_TRUE(matmul(a, b) == nn) << "nn, threads=" << threads;
    EXPECT_TRUE(matmul(a, bt, Trans::no, Trans::yes) == nt)
        << "nt, threads=" << threads;
    EXPECT_TRUE(matmul(at, b, Trans::yes, Trans::no) == tn)
        << "tn, threads=" << threads;
    EXPECT_TRUE(matmul(at, bt, Trans::yes, Trans::yes) == tt)
        << "tt, threads=" << threads;
  }
}

TEST_F(ParallelEquivalenceTest, MatmulLargeEnoughToActuallyChunk) {
  // Large enough to route through the tiled kernel with several MR-row tile
  // chunks, so all pool threads genuinely participate.
  Rng rng(502);
  const Matrix a = Matrix::randn(130, 160, rng);
  const Matrix b = Matrix::randn(160, 150, rng);
  ThreadPool::set_global_threads(1);
  const Matrix serial = matmul(a, b);
  for (const std::size_t threads : kThreadSweep) {
    ThreadPool::set_global_threads(threads);
    EXPECT_TRUE(matmul(a, b) == serial) << "threads=" << threads;
  }
}

TEST_F(ParallelEquivalenceTest, GemmAccumulateWithBeta) {
  Rng rng(503);
  const Matrix a = Matrix::randn(29, 31, rng);
  const Matrix b = Matrix::randn(31, 27, rng);
  const Matrix c0 = Matrix::randn(29, 27, rng);

  ThreadPool::set_global_threads(1);
  Matrix serial = c0;
  gemm(a, Trans::no, b, Trans::no, serial, 0.7f, 0.3f);
  for (const std::size_t threads : kThreadSweep) {
    ThreadPool::set_global_threads(threads);
    Matrix c = c0;
    gemm(a, Trans::no, b, Trans::no, c, 0.7f, 0.3f);
    EXPECT_TRUE(c == serial) << "threads=" << threads;
  }
}

TEST_F(ParallelEquivalenceTest, HessianAccumulation) {
  Rng rng(504);
  // dim 19 with grain 4 leaves a 3-row tail chunk; 33 tokens.
  const std::size_t d = 19;
  const Matrix x1 = Matrix::randn(33, d, rng);
  const Matrix x2 = Matrix::randn(12, d, rng);
  std::vector<float> gamma(x1.rows());
  for (auto& g : gamma) {
    g = rng.uniform(0.0f, 2.0f);
  }
  gamma[5] = 0.0f;  // zero-weight token rides the multiply path in SYRK

  const auto accumulate = [&] {
    HessianAccumulator acc(d);
    acc.add_matrix(x1, gamma);
    acc.add_matrix(x2);  // γ ≡ 1 batch on top, same accumulator
    return acc;
  };

  ThreadPool::set_global_threads(1);
  const HessianAccumulator serial_acc = accumulate();
  const Matrix serial_h = serial_acc.finalized();
  const Matrix serial_damped = serial_acc.finalized_damped(0.01);
  const double serial_trace = serial_acc.average_trace();

  for (const std::size_t threads : kThreadSweep) {
    ThreadPool::set_global_threads(threads);
    const HessianAccumulator acc = accumulate();
    EXPECT_EQ(acc.tokens_seen(), serial_acc.tokens_seen());
    EXPECT_TRUE(acc.finalized() == serial_h) << "threads=" << threads;
    EXPECT_TRUE(acc.finalized_damped(0.01) == serial_damped)
        << "threads=" << threads;
    EXPECT_EQ(acc.average_trace(), serial_trace) << "threads=" << threads;
  }
}

GptqResult run_gptq(const Matrix& w, const Matrix& h,
                    const GptqConfig& cfg) {
  return gptq_quantize(w, h, cfg);
}

TEST_F(ParallelEquivalenceTest, GptqQuantizeFull) {
  Rng rng(505);
  // 13 output rows (odd, forces uneven row chunks), 29 inputs with group 8
  // (tail group of 5) and solver block 16 (tail block of 13).
  const std::size_t d_out = 13;
  const std::size_t d_in = 29;
  const Matrix w = Matrix::randn(d_out, d_in, rng);
  const Matrix x = Matrix::randn(96, d_in, rng);
  HessianAccumulator acc(d_in);
  acc.add_matrix(x);
  const Matrix h = acc.finalized();

  for (const bool act_order : {false, true}) {
    GptqConfig cfg;
    cfg.spec.bits = 3;
    cfg.spec.group_size = 8;
    cfg.block_size = 16;
    cfg.act_order = act_order;
    cfg.fp_columns = {2, 17};  // OWQ-style weak columns

    ThreadPool::set_global_threads(1);
    const GptqResult serial = run_gptq(w, h, cfg);
    for (const std::size_t threads : kThreadSweep) {
      ThreadPool::set_global_threads(threads);
      const GptqResult parallel = run_gptq(w, h, cfg);
      EXPECT_TRUE(parallel.weight == serial.weight)
          << "act_order=" << act_order << " threads=" << threads;
      EXPECT_EQ(parallel.proxy_loss, serial.proxy_loss)
          << "act_order=" << act_order << " threads=" << threads;
      EXPECT_EQ(parallel.recon_error, serial.recon_error)
          << "act_order=" << act_order << " threads=" << threads;
    }
  }
}

TEST_F(ParallelEquivalenceTest, GptqRepeatedRunsAreStable) {
  // Same thread count, repeated runs: the solver must be a pure function —
  // no run-to-run scheduling sensitivity.
  Rng rng(506);
  const Matrix w = Matrix::randn(21, 24, rng);
  const Matrix x = Matrix::randn(64, 24, rng);
  HessianAccumulator acc(24);
  acc.add_matrix(x);
  const Matrix h = acc.finalized();
  GptqConfig cfg;
  cfg.spec.bits = 4;
  cfg.spec.group_size = 8;

  ThreadPool::set_global_threads(4);
  const GptqResult first = run_gptq(w, h, cfg);
  for (int run = 0; run < 5; ++run) {
    const GptqResult again = run_gptq(w, h, cfg);
    EXPECT_TRUE(again.weight == first.weight) << "run " << run;
    EXPECT_EQ(again.proxy_loss, first.proxy_loss) << "run " << run;
  }
}

}  // namespace
}  // namespace aptq
