// Unit tests for the Hessian-trace mixed-precision allocator (paper §3.3 /
// eq. 18) and the manual block-wise baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "quant/mixed_precision.hpp"

namespace aptq {
namespace {

// Hand-built ranking: 2 blocks × 2 layers with controlled sensitivities.
std::vector<LayerSensitivity> toy_ranking() {
  return {
      {"layers.0.a", 10.0, 100, 0},
      {"layers.0.b", 1.0, 100, 0},
      {"layers.1.a", 5.0, 100, 1},
      {"layers.1.b", 0.5, 100, 1},
  };
}

TEST(Allocate, FullRatioGivesAllHighBits) {
  const auto alloc = allocate_by_sensitivity(toy_ranking(), 1.0);
  for (const auto& [name, bits] : alloc) {
    EXPECT_EQ(bits, 4) << name;
  }
  EXPECT_DOUBLE_EQ(average_bits(alloc, toy_ranking()), 4.0);
}

TEST(Allocate, ZeroRatioGivesAllLowBits) {
  const auto alloc = allocate_by_sensitivity(toy_ranking(), 0.0);
  for (const auto& [name, bits] : alloc) {
    EXPECT_EQ(bits, 2) << name;
  }
  EXPECT_DOUBLE_EQ(average_bits(alloc, toy_ranking()), 2.0);
}

TEST(Allocate, MostSensitiveLayersGetHighBits) {
  const auto alloc = allocate_by_sensitivity(toy_ranking(), 0.5);
  EXPECT_EQ(alloc.at("layers.0.a"), 4);  // sensitivity 10
  EXPECT_EQ(alloc.at("layers.1.a"), 4);  // sensitivity 5
  EXPECT_EQ(alloc.at("layers.0.b"), 2);
  EXPECT_EQ(alloc.at("layers.1.b"), 2);
  EXPECT_DOUBLE_EQ(high_bit_fraction(alloc, toy_ranking()), 0.5);
  // eq. 18: 4R + 2(1-R).
  EXPECT_DOUBLE_EQ(average_bits(alloc, toy_ranking()), 4 * 0.5 + 2 * 0.5);
}

TEST(Allocate, CoverageReachesAtLeastRatio) {
  // Uneven layer sizes: allocation overshoots rather than undershoots R.
  std::vector<LayerSensitivity> ranking = {
      {"big", 10.0, 300, 0},
      {"small1", 5.0, 50, 0},
      {"small2", 1.0, 50, 1},
  };
  const auto alloc = allocate_by_sensitivity(ranking, 0.5);
  EXPECT_EQ(alloc.at("big"), 4);
  EXPECT_GE(high_bit_fraction(alloc, ranking), 0.5);
}

TEST(Allocate, CustomBitPair) {
  const auto alloc = allocate_by_sensitivity(toy_ranking(), 0.5, 8, 3);
  EXPECT_EQ(alloc.at("layers.0.a"), 8);
  EXPECT_EQ(alloc.at("layers.1.b"), 3);
  EXPECT_DOUBLE_EQ(average_bits(alloc, toy_ranking()), 5.5);
}

TEST(Allocate, RejectsBadArguments) {
  EXPECT_THROW(allocate_by_sensitivity(toy_ranking(), 1.5), Error);
  EXPECT_THROW(allocate_by_sensitivity(toy_ranking(), 0.5, 2, 4), Error);
  EXPECT_THROW(allocate_blockwise(toy_ranking(), -0.1), Error);
}

TEST(Blockwise, AssignsWholeBlocksInOrder) {
  const auto alloc = allocate_blockwise(toy_ranking(), 0.5);
  // Block 0 (earliest) gets high bits regardless of sensitivity.
  EXPECT_EQ(alloc.at("layers.0.a"), 4);
  EXPECT_EQ(alloc.at("layers.0.b"), 4);
  EXPECT_EQ(alloc.at("layers.1.a"), 2);
  EXPECT_EQ(alloc.at("layers.1.b"), 2);
}

TEST(Blockwise, DiffersFromSensitivityAllocation) {
  // The ablation's entire premise: the two allocators disagree when
  // sensitivity doesn't align with block order.
  const auto trace_alloc = allocate_by_sensitivity(toy_ranking(), 0.5);
  const auto block_alloc = allocate_blockwise(toy_ranking(), 0.5);
  EXPECT_NE(trace_alloc.at("layers.0.b"), block_alloc.at("layers.0.b"));
  EXPECT_NE(trace_alloc.at("layers.1.a"), block_alloc.at("layers.1.a"));
}

TEST(AverageBits, ChecksAllocationCompleteness) {
  BitAllocation incomplete = {{"layers.0.a", 4}};
  EXPECT_THROW(average_bits(incomplete, toy_ranking()), Error);
}

class RatioSweep : public ::testing::TestWithParam<double> {};

TEST_P(RatioSweep, AverageBitsTracksEquation18) {
  // With equal-size layers the realized average should stay within one
  // layer's granularity of 4R + 2(1−R).
  const double r = GetParam();
  std::vector<LayerSensitivity> ranking;
  for (int i = 0; i < 16; ++i) {
    ranking.push_back({"layer" + std::to_string(i),
                       static_cast<double>(16 - i), 100,
                       static_cast<std::size_t>(i / 4)});
  }
  const auto alloc = allocate_by_sensitivity(ranking, r);
  const double expected = 4.0 * r + 2.0 * (1.0 - r);
  EXPECT_NEAR(average_bits(alloc, ranking), expected, 2.0 / 16.0 + 1e-9);
  EXPECT_GE(high_bit_fraction(alloc, ranking), r - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Ratios, RatioSweep,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 0.9, 1.0));

TEST(RankSensitivities, RejectsEmpty) {
  CalibrationResult empty;
  ModelConfig mc;
  mc.vocab_size = 8;
  mc.dim = 8;
  mc.n_layers = 1;
  mc.n_heads = 2;
  mc.ffn_dim = 8;
  const Model m = Model::init(mc, 1);
  EXPECT_THROW(rank_sensitivities(empty, m), Error);
}

}  // namespace
}  // namespace aptq
