// Unit tests for the baseline quantizers: PB-LLM, OWQ, SmoothQuant and
// LLM-QAT-sim mechanics.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "model/forward.hpp"
#include "quant/baselines.hpp"
#include "quant/hessian.hpp"
#include "tensor/ops.hpp"

namespace aptq {
namespace {

ModelConfig small_config() {
  ModelConfig c;
  c.vocab_size = 16;
  c.dim = 12;
  c.n_layers = 2;
  c.n_heads = 2;
  c.ffn_dim = 16;
  return c;
}

Matrix calib_hessian(std::size_t d, std::uint64_t seed) {
  Rng rng(seed);
  const Matrix x = Matrix::randn(48, d, rng);
  HessianAccumulator acc(d);
  acc.add_matrix(x);
  return acc.finalized();
}

std::vector<TokenSeq> make_segments(std::size_t n, std::size_t len,
                                    std::size_t vocab, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TokenSeq> segs(n);
  for (auto& s : segs) {
    s.resize(len);
    for (auto& t : s) {
      t = static_cast<TokenId>(rng.index(vocab));
    }
  }
  return segs;
}

// ---------------------------------------------------------------- PB-LLM --

TEST(PbLlm, BinarizesNonSalientWeights) {
  Rng rng(1);
  const Matrix w = Matrix::randn(6, 16, rng);
  const Matrix h = calib_hessian(16, 2);
  PbLlmConfig cfg;
  cfg.salient_fraction = 0.25;
  const PbLlmResult res = pbllm_quantize(w, h, cfg);
  // Each row's non-salient entries take at most two magnitudes (±α).
  std::size_t unchanged = 0;
  for (std::size_t r = 0; r < 6; ++r) {
    std::set<float> mags;
    for (std::size_t c = 0; c < 16; ++c) {
      if (res.weight(r, c) == w(r, c)) {
        ++unchanged;
      } else {
        mags.insert(std::fabs(res.weight(r, c)));
      }
    }
    EXPECT_LE(mags.size(), 1u) << "row " << r;
  }
  EXPECT_EQ(unchanged, static_cast<std::size_t>(0.25 * 96));
  EXPECT_NEAR(res.avg_bits, 16 * 0.25 + 1 * 0.75, 1e-6);
}

TEST(PbLlm, PreservesSigns) {
  Rng rng(3);
  const Matrix w = Matrix::randn(4, 12, rng);
  const Matrix h = calib_hessian(12, 4);
  const PbLlmResult res = pbllm_quantize(w, h, {0.1});
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (w.flat()[i] != 0.0f && res.weight.flat()[i] != 0.0f) {
      EXPECT_GT(w.flat()[i] * res.weight.flat()[i], 0.0f) << "sign flip";
    }
  }
}

TEST(PbLlm, SalientSelectionFollowsHessian) {
  // Make column 5 dominant in the Hessian; its large weights must survive.
  Rng rng(5);
  const Matrix w = Matrix::randn(4, 8, rng);
  Matrix h = Matrix::identity(8);
  h(5, 5) = 1e6f;
  const PbLlmResult res = pbllm_quantize(w, h, {0.5});
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(res.weight(r, 5), w(r, 5)) << "dominant column binarized";
  }
}

TEST(PbLlm, HigherSalienceLowerError) {
  Rng rng(6);
  const Matrix w = Matrix::randn(8, 16, rng);
  const Matrix h = calib_hessian(16, 7);
  double prev = 1e18;
  for (const double rho : {0.0, 0.1, 0.3, 0.5}) {
    const PbLlmResult res = pbllm_quantize(w, h, {rho});
    const double err = frobenius_distance(w, res.weight);
    EXPECT_LT(err, prev + 1e-9) << "rho=" << rho;
    prev = err;
  }
}

TEST(PbLlm, RejectsBadFraction) {
  Rng rng(8);
  const Matrix w = Matrix::randn(2, 4, rng);
  const Matrix h = calib_hessian(4, 9);
  EXPECT_THROW(pbllm_quantize(w, h, {1.0}), Error);
  EXPECT_THROW(pbllm_quantize(w, h, {-0.1}), Error);
  const Matrix h_bad(3, 3);
  EXPECT_THROW(pbllm_quantize(w, h_bad, {0.1}), Error);
}

// ------------------------------------------------------------------ OWQ --

TEST(Owq, KeepsRequestedColumnCount) {
  Rng rng(10);
  const Matrix w = Matrix::randn(6, 20, rng);
  const Matrix h = calib_hessian(20, 11);
  OwqConfig cfg;
  cfg.spec.bits = 4;
  cfg.spec.group_size = 0;
  cfg.fp_column_fraction = 0.1;
  const OwqResult res = owq_quantize(w, h, cfg);
  EXPECT_EQ(res.fp_columns.size(), 2u);  // ceil(0.1 * 20)
  EXPECT_TRUE(std::is_sorted(res.fp_columns.begin(), res.fp_columns.end()));
  EXPECT_NEAR(res.avg_bits, 16 * 0.1 + 4 * 0.9, 1e-6);
}

TEST(Owq, SelectsHighestScoreColumns) {
  Rng rng(12);
  Matrix w = Matrix::randn(4, 10, rng);
  Matrix h = Matrix::identity(10);
  h(3, 3) = 100.0f;
  h(7, 7) = 50.0f;
  OwqConfig cfg;
  cfg.spec.bits = 2;
  cfg.spec.group_size = 0;
  cfg.fp_column_fraction = 0.2;
  const OwqResult res = owq_quantize(w, h, cfg);
  ASSERT_EQ(res.fp_columns.size(), 2u);
  EXPECT_EQ(res.fp_columns[0], 3u);
  EXPECT_EQ(res.fp_columns[1], 7u);
}

TEST(Owq, ImprovesOverPlainGptqAtLowBits) {
  Rng rng(13);
  const Matrix w = Matrix::randn(8, 24, rng);
  const Matrix h = calib_hessian(24, 14);
  OwqConfig cfg;
  cfg.spec.bits = 2;
  cfg.spec.group_size = 8;
  cfg.fp_column_fraction = 0.1;
  const OwqResult owq = owq_quantize(w, h, cfg);
  GptqConfig gc;
  gc.spec = cfg.spec;
  const GptqResult plain = gptq_quantize(w, h, gc);
  EXPECT_LT(reconstruction_error(w, owq.weight, h),
            reconstruction_error(w, plain.weight, h));
}

TEST(Owq, ZeroFractionEqualsGptq) {
  Rng rng(15);
  const Matrix w = Matrix::randn(4, 12, rng);
  const Matrix h = calib_hessian(12, 16);
  OwqConfig cfg;
  cfg.spec.bits = 4;
  cfg.fp_column_fraction = 0.0;
  const OwqResult owq = owq_quantize(w, h, cfg);
  GptqConfig gc;
  gc.spec = cfg.spec;
  const GptqResult plain = gptq_quantize(w, h, gc);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_FLOAT_EQ(owq.weight.flat()[i], plain.weight.flat()[i]);
  }
  EXPECT_DOUBLE_EQ(owq.avg_bits, 4.0);
}

// ---------------------------------------------------------- SmoothQuant --

TEST(SmoothQuant, MaximaShapesAndMonotonicity) {
  const Model m = Model::init(small_config(), 17);
  const auto segs = make_segments(3, 8, 16, 18);
  const ActivationMaxima maxima = collect_activation_maxima(m, segs);
  ASSERT_EQ(maxima.attn_input.size(), 2u);
  ASSERT_EQ(maxima.ffn_input.size(), 2u);
  for (const auto& v : maxima.attn_input) {
    ASSERT_EQ(v.size(), 12u);
    for (const float x : v) {
      EXPECT_GT(x, 0.0f);  // RMSNorm output never identically zero
    }
  }
  // More segments can only increase maxima.
  const auto more = collect_activation_maxima(
      m, make_segments(6, 8, 16, 18));
  for (std::size_t b = 0; b < 2; ++b) {
    for (std::size_t c = 0; c < 12; ++c) {
      EXPECT_GE(more.attn_input[b][c] + 1e-6f, 0.0f);
    }
  }
}

TEST(SmoothQuant, MigrationPreservesFunctionBeforeQuant) {
  // Folding s into norm gain and 1/s... — the scaled model must compute the
  // same function up to quantization. Verify with 8-bit weights (near
  // lossless) that logits barely move.
  const Model m = Model::init(small_config(), 19);
  const auto segs = make_segments(4, 10, 16, 20);
  Model scaled = m;
  SmoothQuantConfig cfg;
  cfg.weight_bits = 8;
  cfg.group_size = 4;
  smoothquant_apply(scaled, collect_activation_maxima(m, segs), cfg);
  const TokenSeq probe = segs[0];
  const Matrix a = model_forward(m, probe);
  const Matrix b = model_forward(scaled, probe);
  EXPECT_LT(frobenius_distance(a, b) / std::sqrt(sum_squares(a)), 0.05);
}

TEST(SmoothQuant, ReducesActivationRange) {
  const Model m = Model::init(small_config(), 21);
  const auto segs = make_segments(4, 10, 16, 22);
  const auto before = collect_activation_maxima(m, segs);
  Model scaled = m;
  SmoothQuantConfig cfg;
  cfg.weight_bits = 8;  // near-lossless so ranges are attributable to s
  smoothquant_apply(scaled, before, cfg);
  const auto after = collect_activation_maxima(scaled, segs);
  // The spread (max/min across channels) of activation maxima shrinks.
  const auto spread = [](const std::vector<float>& v) {
    float lo = 1e30f, hi = 0.0f;
    for (const float x : v) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
    return hi / std::max(lo, 1e-10f);
  };
  EXPECT_LT(spread(after.attn_input[0]), spread(before.attn_input[0]));
}

TEST(SmoothQuant, RejectsBadAlpha) {
  Model m = Model::init(small_config(), 23);
  const auto segs = make_segments(2, 8, 16, 24);
  const auto maxima = collect_activation_maxima(m, segs);
  SmoothQuantConfig cfg;
  cfg.alpha = 1.5;
  EXPECT_THROW(smoothquant_apply(m, maxima, cfg), Error);
}

// -------------------------------------------------------------- LLM-QAT --

TEST(QuantizeModelRtn, SnapsLinearsLeavesRest) {
  Model m = Model::init(small_config(), 25);
  const Matrix embed_before = m.tok_embed;
  const auto norm_before = m.blocks[0].attn_norm;
  QuantSpec spec;
  spec.bits = 4;
  spec.group_size = 4;
  quantize_model_weights_rtn(m, spec);
  EXPECT_TRUE(m.tok_embed == embed_before);
  EXPECT_EQ(m.blocks[0].attn_norm, norm_before);
  // Weights moved onto a grid: re-quantizing is a fixed point.
  Model again = m;
  quantize_model_weights_rtn(again, spec);
  EXPECT_LT(frobenius_distance(again.blocks[0].wq, m.blocks[0].wq), 1e-5);
}

TEST(Qat, ImprovesQuantizedModelOverPlainRtn) {
  // QAT fine-tuning must beat plain RTN at matching the teacher's logits.
  const Model teacher = Model::init(small_config(), 26);
  QatConfig cfg;
  cfg.spec.bits = 3;
  cfg.spec.group_size = 4;
  cfg.steps = 60;
  cfg.batch_size = 4;
  cfg.seq_len = 12;
  cfg.pool_sequences = 16;
  cfg.lr = 2e-3f;
  const Model student = qat_finetune(teacher, cfg);

  Model rtn_model = teacher;
  quantize_model_weights_rtn(rtn_model, cfg.spec);

  Rng rng(27);
  double qat_err = 0.0, rtn_err = 0.0;
  for (int i = 0; i < 8; ++i) {
    TokenSeq probe(12);
    for (auto& t : probe) {
      t = static_cast<TokenId>(rng.index(16));
    }
    const Matrix ref = model_forward(teacher, probe);
    qat_err += frobenius_distance(ref, model_forward(student, probe));
    rtn_err += frobenius_distance(ref, model_forward(rtn_model, probe));
  }
  EXPECT_LT(qat_err, rtn_err);
}

TEST(Qat, OutputWeightsAreOnGrid) {
  const Model teacher = Model::init(small_config(), 28);
  QatConfig cfg;
  cfg.spec.bits = 4;
  cfg.spec.group_size = 4;
  cfg.steps = 5;
  cfg.pool_sequences = 4;
  cfg.seq_len = 8;
  Model student = qat_finetune(teacher, cfg);
  Model snapped = student;
  quantize_model_weights_rtn(snapped, cfg.spec);
  EXPECT_LT(frobenius_distance(snapped.blocks[1].w_down,
                               student.blocks[1].w_down),
            1e-5);
}

TEST(Qat, RejectsBadConfig) {
  const Model teacher = Model::init(small_config(), 29);
  QatConfig cfg;
  cfg.steps = 0;
  EXPECT_THROW(qat_finetune(teacher, cfg), Error);
  cfg = QatConfig{};
  cfg.seq_len = 1;
  EXPECT_THROW(qat_finetune(teacher, cfg), Error);
}

}  // namespace
}  // namespace aptq
