// Output-equivalence suite for exact speculative decoding (serve/spec.hpp,
// decode_verify, DecodeState::rewind).
//
// The contract under test: a speculative request's token stream is BITWISE
// IDENTICAL to the same request decoded without speculation — across draft
// models (high- and low-agreement), k values, batch sizes, thread counts,
// and mid-stream rejections — and the paged-KV footprint between cycles
// matches what solo decoding would have mapped (rejected positions'
// pages go back to the arena, not just the cursor).
//
// Layers covered:
//   1. decode_verify row j == decode_step j's logits, float for float,
//      for dense, packed, and after partial-accept rewinds.
//   2. DecodeState::rewind releases shared-arena pages and a re-decode
//      over the rewound span reproduces the original logits.
//   3. ServeEngine speculative streams == the sequential oracle == the
//      non-speculative engine, with real drafts (packed twin, unrelated
//      random model) over k × batch × threads.
//   4. Scripted one-hot drafts drive exact accept/reject schedules:
//      accept-all (bonus tokens), reject-all, reject at a page boundary,
//      context-full eviction mid-speculation, page-exhaustion eviction —
//      with mapped_bytes checked against the solo-footprint formula after
//      every engine step.
//   5. submit()-time validation: speculative requests need a configured
//      draft with a matching vocabulary.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <string>
#include <tuple>
#include <vector>

#include "quant/packed_model.hpp"
#include "serve/engine.hpp"
#include "util/check.hpp"
#include "util/threadpool.hpp"

namespace aptq::serve {
namespace {

ModelConfig test_config() {
  ModelConfig c;
  c.vocab_size = 24;
  c.dim = 16;
  c.n_layers = 3;
  c.n_heads = 2;
  c.ffn_dim = 24;
  return c;
}

TokenSeq tokens_for(std::size_t n, std::uint64_t seed, std::size_t vocab) {
  Rng rng(seed);
  TokenSeq t(n);
  for (auto& v : t) {
    v = static_cast<TokenId>(rng.index(vocab));
  }
  return t;
}

PackedModel packed_for(const Model& m) {
  QuantSpec spec;
  spec.bits = 4;
  spec.group_size = 8;
  return PackedModel::pack_uniform(m, spec);
}

const ModelConfig& config_of(const Model& m) { return m.config; }
const ModelConfig& config_of(const PackedModel& m) { return m.config(); }

// The sequential oracle: one request, alone, on a fresh DecodeState, with
// the engine's stopping rules. Identical to serve_test's — it defines the
// determinism contract speculative decoding must preserve.
struct ReferenceRun {
  TokenSeq tokens;
  FinishReason finish = FinishReason::none;
};

template <typename ModelT>
ReferenceRun reference_run(const ModelT& model, const Request& req,
                           RequestId id, std::size_t max_context) {
  Rng rng = Rng::for_stream(req.seed, id);
  DecodeState state(config_of(model), max_context);
  const Matrix pre = decode_prefill(model, req.prompt, state);
  const auto last = pre.row(pre.rows() - 1);
  std::vector<float> logits(last.begin(), last.end());
  ReferenceRun out;
  while (true) {
    const TokenId tok = sample_token(logits, req.sampling, rng);
    out.tokens.push_back(tok);
    if (req.eos_token >= 0 && tok == req.eos_token) {
      out.finish = FinishReason::eos;
      break;
    }
    if (out.tokens.size() >= req.max_new_tokens) {
      out.finish = FinishReason::max_tokens;
      break;
    }
    if (state.pos() >= state.max_context()) {
      out.finish = FinishReason::context_full;
      break;
    }
    logits = decode_step(model, tok, state);
  }
  return out;
}

std::size_t pages_for(std::size_t positions, std::size_t page_positions) {
  return (positions + page_positions - 1) / page_positions;
}

// Bytes of one KV arena page (KvArena's stride × sizeof(float)).
std::size_t page_bytes(const ModelConfig& c, std::size_t page_positions) {
  return c.n_layers * 2 * page_positions * c.kv_dim() * sizeof(float);
}

// Solo decoding's mapped footprint for a request with prompt P and n
// generated tokens: admission reserves P+1 positions, then each decode
// step reserves one more (pos = P + n - 1). Speculation must match this
// between cycles — over-reserved verify positions are rolled back.
std::size_t solo_mapped_bytes(const ModelConfig& c, std::size_t page_positions,
                              std::size_t prompt, std::size_t generated) {
  const std::size_t positions =
      std::max(prompt + 1, prompt + generated - 1);
  return pages_for(positions, page_positions) * page_bytes(c, page_positions);
}

// ---------------------------------------------------------------------------
// 1. decode_verify == sequential decode_step, bitwise.
// ---------------------------------------------------------------------------

template <typename ModelT>
void expect_verify_bitwise(const ModelT& model, std::size_t m,
                           const char* label) {
  const std::size_t vocab = config_of(model).vocab_size;
  const TokenSeq prompt = tokens_for(5, 7, vocab);
  const TokenSeq cont = tokens_for(m, 8, vocab);
  DecodeState solo(config_of(model), 64);
  DecodeState ver(config_of(model), 64);
  decode_prefill(model, prompt, solo);
  decode_prefill(model, prompt, ver);

  std::vector<std::vector<float>> expected;
  for (const TokenId t : cont) {
    expected.push_back(decode_step(model, t, solo));
  }
  const Matrix got = decode_verify(model, cont, ver);
  ASSERT_EQ(got.rows(), m);
  ASSERT_EQ(got.cols(), vocab);
  EXPECT_EQ(ver.pos(), prompt.size() + m);
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t v = 0; v < vocab; ++v) {
      ASSERT_EQ(got.at(j, v), expected[j][v])
          << label << " m=" << m << " row " << j << " vocab " << v;
    }
  }
}

class DecodeVerify : public ::testing::TestWithParam<std::size_t> {
 protected:
  DecodeVerify() { ThreadPool::set_global_threads(GetParam()); }
  ~DecodeVerify() override { ThreadPool::set_global_threads(1); }
};

TEST_P(DecodeVerify, DenseRowsMatchSequentialSteps) {
  const Model m = Model::init(test_config(), 41);
  for (const std::size_t rows : {1, 2, 5, 9}) {
    expect_verify_bitwise(m, rows, "dense");
  }
}

TEST_P(DecodeVerify, PackedRowsMatchSequentialSteps) {
  const Model m = Model::init(test_config(), 42);
  const PackedModel pm = packed_for(m);
  for (const std::size_t rows : {1, 2, 5, 9}) {
    expect_verify_bitwise(pm, rows, "packed");
  }
}

// Partial accept: verify m rows, rewind to an accepted prefix, continue
// with solo steps — the continuation must match a state that never saw the
// rejected positions.
TEST_P(DecodeVerify, RewindAfterVerifyResumesExactly) {
  const Model m = Model::init(test_config(), 43);
  const std::size_t vocab = test_config().vocab_size;
  const TokenSeq prompt = tokens_for(6, 9, vocab);
  const TokenSeq cont = tokens_for(5, 10, vocab);

  DecodeState spec(test_config(), 64);
  decode_prefill(m, prompt, spec);
  decode_verify(m, cont, spec);
  const std::size_t accept = 2;
  spec.rewind(prompt.size() + accept);

  DecodeState solo(test_config(), 64);
  decode_prefill(m, prompt, solo);
  for (std::size_t j = 0; j < accept; ++j) {
    decode_step(m, cont[j], solo);
  }
  const TokenId next = static_cast<TokenId>(3);
  const std::vector<float> a = decode_step(m, next, spec);
  const std::vector<float> b = decode_step(m, next, solo);
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(Threads, DecodeVerify,
                         ::testing::Values(std::size_t{1}, std::size_t{4}));

TEST(DecodeVerifyLimits, ThrowsPastMaxContext) {
  const Model m = Model::init(test_config(), 44);
  DecodeState state(test_config(), 8);
  decode_prefill(m, tokens_for(6, 11, test_config().vocab_size), state);
  const TokenSeq three = tokens_for(3, 12, test_config().vocab_size);
  EXPECT_THROW(decode_verify(m, three, state), Error);
}

// ---------------------------------------------------------------------------
// 2. DecodeState::rewind semantics.
// ---------------------------------------------------------------------------

TEST(Rewind, SoloStateReproducesLogitsOverRewoundSpan) {
  const Model m = Model::init(test_config(), 51);
  const std::size_t vocab = test_config().vocab_size;
  const TokenSeq prompt = tokens_for(4, 13, vocab);
  const TokenSeq cont = tokens_for(4, 14, vocab);

  DecodeState state(test_config(), 64);
  decode_prefill(m, prompt, state);
  std::vector<std::vector<float>> first;
  for (const TokenId t : cont) {
    first.push_back(decode_step(m, t, state));
  }
  state.rewind(prompt.size());
  for (std::size_t j = 0; j < cont.size(); ++j) {
    EXPECT_EQ(decode_step(m, cont[j], state), first[j]) << "step " << j;
  }
}

TEST(Rewind, SharedArenaReleasesPages) {
  const ModelConfig cfg = test_config();
  const std::size_t pp = 4;
  KvPool pool(cfg, 64, 1, pp);
  const Model m = Model::init(cfg, 52);
  DecodeState* state = pool.acquire();
  ASSERT_NE(state, nullptr);

  decode_prefill(m, tokens_for(6, 15, cfg.vocab_size), *state);
  for (const TokenId t : tokens_for(5, 16, cfg.vocab_size)) {
    decode_step(m, t, *state);
  }
  ASSERT_EQ(state->pos(), 11u);
  EXPECT_EQ(pool.mapped_bytes(), pages_for(11, pp) * page_bytes(cfg, pp));

  state->rewind(5);
  EXPECT_EQ(state->pos(), 5u);
  EXPECT_EQ(pool.mapped_bytes(), pages_for(5, pp) * page_bytes(cfg, pp));
  EXPECT_EQ(pool.free_pages(), pool.pages() - pages_for(5, pp));

  // Rewind to zero returns everything; the state remains usable.
  state->rewind(0);
  EXPECT_EQ(pool.mapped_bytes(), 0u);
  pool.release(state);
}

TEST(Rewind, ForwardRewindThrows) {
  DecodeState state(test_config(), 16);
  const Model m = Model::init(test_config(), 53);
  decode_prefill(m, tokens_for(3, 17, test_config().vocab_size), state);
  EXPECT_THROW(state.rewind(4), Error);
  EXPECT_NO_THROW(state.rewind(3));  // no-op
  EXPECT_EQ(state.pos(), 3u);
}

// ---------------------------------------------------------------------------
// 3. Engine equivalence with real drafts, k × batch × threads.
// ---------------------------------------------------------------------------

// Mixed request bag; every third request stays non-speculative so spec
// cycles and the shared decode batch interleave in one engine.
std::vector<Request> make_requests(std::size_t vocab) {
  std::vector<Request> reqs;
  Rng rng(99);
  for (int i = 0; i < 10; ++i) {
    Request r;
    r.prompt = tokens_for(3 + rng.index(8), 100 + static_cast<std::uint64_t>(i),
                          vocab);
    r.max_new_tokens = 4 + rng.index(9);
    r.sampling.temperature = (i % 3 == 0) ? 0.7f : 1.1f;
    r.sampling.top_k = (i % 2 == 0) ? 0 : 5;
    r.seed = 1000 + static_cast<std::uint64_t>(i);
    r.priority = static_cast<int>(rng.index(3));
    if (i == 4 || i == 7) {
      r.eos_token = static_cast<TokenId>(rng.index(vocab));
    }
    r.speculative = (i % 3 != 2);
    reqs.push_back(r);
  }
  return reqs;
}

template <typename TargetT>
void expect_spec_equivalence(const TargetT& target, Backend draft,
                             std::size_t k, std::size_t max_batch,
                             const char* label) {
  SpecConfig sc;
  sc.draft = std::move(draft);
  sc.k = k;
  ServeConfig cfg;
  cfg.max_batch = max_batch;
  cfg.max_context = 48;
  ServeEngine engine(make_backend(target), cfg, std::move(sc));
  const std::vector<Request> reqs =
      make_requests(config_of(target).vocab_size);
  for (const Request& r : reqs) {
    engine.submit(r);
  }
  const std::vector<GenerationResult> results = engine.run();
  ASSERT_EQ(results.size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const ReferenceRun ref =
        reference_run(target, reqs[i], results[i].id, cfg.max_context);
    EXPECT_EQ(results[i].tokens, ref.tokens)
        << label << " k=" << k << " batch=" << max_batch << " request "
        << results[i].id << (reqs[i].speculative ? " (spec)" : " (plain)");
    EXPECT_EQ(results[i].finish, ref.finish)
        << label << " k=" << k << " batch=" << max_batch << " request "
        << results[i].id;
    if (!reqs[i].speculative) {
      EXPECT_EQ(results[i].spec_cycles, 0u);
      EXPECT_EQ(results[i].spec_proposed, 0u);
    }
  }
  // Speculation actually ran, and its counters are internally consistent.
  const SpecStats* s = engine.spec_stats();
  ASSERT_NE(s, nullptr);
  EXPECT_GT(s->proposed, 0u) << label;
  EXPECT_LE(s->accepted, s->proposed);
  EXPECT_GE(s->emitted, static_cast<std::uint64_t>(s->cycles));
  // After the drain every page is back in the arena.
  EXPECT_EQ(engine.pool().mapped_bytes(), 0u);
}

class SpecEquivalence
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
 protected:
  SpecEquivalence() {
    ThreadPool::set_global_threads(std::get<1>(GetParam()));
  }
  ~SpecEquivalence() override { ThreadPool::set_global_threads(1); }
};

// High-agreement draft: the 4-bit packed twin of the target.
TEST_P(SpecEquivalence, DenseTargetPackedTwinDraft) {
  const Model m = Model::init(test_config(), 61);
  const PackedModel twin = packed_for(m);
  for (const std::size_t k : {2, 4, 8}) {
    expect_spec_equivalence(m, make_backend(twin), k, std::get<0>(GetParam()),
                            "dense+twin");
  }
}

// Low-agreement draft: an unrelated random model — near-chance agreement,
// so almost every cycle ends in a mid-stream rejection.
TEST_P(SpecEquivalence, DenseTargetUnrelatedDraft) {
  const Model m = Model::init(test_config(), 61);
  const Model stranger = Model::init(test_config(), 62);
  for (const std::size_t k : {2, 4, 8}) {
    expect_spec_equivalence(m, make_backend(stranger), k,
                            std::get<0>(GetParam()), "dense+stranger");
  }
}

// Packed verifier: the quantized model is the serving target, drafted by
// its own dense original (and k=4 by an unrelated model).
TEST_P(SpecEquivalence, PackedTargetDenseDraft) {
  const Model m = Model::init(test_config(), 63);
  const PackedModel pm = packed_for(m);
  for (const std::size_t k : {2, 4, 8}) {
    expect_spec_equivalence(pm, make_backend(m), k, std::get<0>(GetParam()),
                            "packed+dense");
  }
  const Model stranger = Model::init(test_config(), 64);
  expect_spec_equivalence(pm, make_backend(stranger), 4,
                          std::get<0>(GetParam()), "packed+stranger");
}

INSTANTIATE_TEST_SUITE_P(
    BatchByThreads, SpecEquivalence,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{8}),
                       ::testing::Values(std::size_t{1}, std::size_t{4})));

// ---------------------------------------------------------------------------
// 4. Scripted drafts: exact accept/reject schedules + KV residency.
// ---------------------------------------------------------------------------

// A draft backend that plays a script instead of running a model: the
// proposal after consuming global stream position g-1 is script(g),
// returned as one-hot logits. It keeps honest DecodeState bookkeeping
// (reserve/advance), so SpecDecoder's rewind-and-refeed paths run for real.
Backend scripted_draft(const ModelConfig& config,
                       std::function<TokenId(std::size_t)> script) {
  Backend b;
  b.name = "scripted";
  b.config = config;
  const std::size_t vocab = config.vocab_size;
  auto one_hot = [vocab](std::span<float> row, TokenId t) {
    std::fill(row.begin(), row.end(), 0.0f);
    row[static_cast<std::size_t>(t)] = 1.0f;
  };
  b.prefill = [script, vocab, one_hot](std::span<const TokenId> tokens,
                                       DecodeState& state) {
    APTQ_CHECK(state.try_reserve(tokens.size()), "scripted draft: no pages");
    const std::size_t pos0 = state.pos();
    state.advance(tokens.size());
    Matrix out(tokens.size(), vocab);
    for (std::size_t r = 0; r < tokens.size(); ++r) {
      one_hot(out.row(r), script(pos0 + r + 1));
    }
    return out;
  };
  b.step = [script, vocab, one_hot](TokenId, DecodeState& state) {
    APTQ_CHECK(state.try_reserve(1), "scripted draft: no pages");
    state.advance(1);
    std::vector<float> logits(vocab, 0.0f);
    one_hot(logits, script(state.pos()));
    return logits;
  };
  return b;
}

// Greedy single-request harness: drives one speculative request through a
// spec engine built from a scripted draft, asserting the solo residency
// formula after every engine step, and returns the result + stats.
struct ScriptedOutcome {
  GenerationResult result;
  SpecStats spec;
  ServeStats stats;
};

ScriptedOutcome run_scripted(const Model& target, const Request& req,
                             std::function<TokenId(std::size_t)> script,
                             std::size_t k, std::size_t max_context,
                             std::size_t kv_pages = 0,
                             bool check_residency = true) {
  const ModelConfig cfg = config_of(target);
  SpecConfig sc;
  sc.draft = scripted_draft(cfg, std::move(script));
  sc.k = k;
  ServeConfig scfg;
  scfg.max_batch = 1;
  scfg.max_context = max_context;
  scfg.kv_page_positions = 4;
  scfg.kv_pages = kv_pages;
  ServeEngine engine(make_backend(target), scfg, std::move(sc));

  std::size_t emitted = 0;
  engine.set_token_callback(
      [&emitted](RequestId, TokenId, FinishReason) { ++emitted; });
  engine.submit(req);
  const std::size_t P = req.prompt.size();
  while (!engine.idle()) {
    engine.step();
    if (check_residency) {
      if (engine.active_count() == 1) {
        // Between cycles the speculative footprint must equal solo
        // decoding's: rejected verify rows returned their pages.
        EXPECT_EQ(engine.pool().mapped_bytes(),
                  solo_mapped_bytes(cfg, engine.pool().page_positions(), P,
                                    emitted))
            << "after emitting " << emitted << " tokens";
      } else {
        EXPECT_EQ(engine.pool().mapped_bytes(), 0u);
      }
    }
  }
  std::vector<GenerationResult> results = engine.run();
  EXPECT_EQ(results.size(), 1u);
  ScriptedOutcome out;
  out.result = std::move(results.front());
  out.spec = *engine.spec_stats();
  out.stats = engine.stats();
  EXPECT_EQ(engine.pool().mapped_bytes(), 0u);
  return out;
}

// One greedy request (top_k = 1 makes the stream a pure argmax walk, so a
// script built from the oracle controls accept/reject exactly).
Request greedy_request(std::size_t vocab, std::size_t max_new) {
  Request r;
  r.prompt = tokens_for(6, 21, vocab);
  r.max_new_tokens = max_new;
  r.sampling.top_k = 1;
  r.seed = 7;
  r.speculative = true;
  return r;
}

// full[g]: the whole solo stream (prompt then oracle tokens) by global
// index; the scripts below are built from it.
TokenSeq full_stream(const Request& req, const ReferenceRun& ref) {
  TokenSeq full = req.prompt;
  full.insert(full.end(), ref.tokens.begin(), ref.tokens.end());
  return full;
}

TEST(SpecScripted, AcceptAllEveryProposalLands) {
  const Model target = Model::init(test_config(), 71);
  const Request req = greedy_request(test_config().vocab_size, 12);
  const ReferenceRun ref = reference_run(target, req, 0, 48);
  ASSERT_EQ(ref.finish, FinishReason::max_tokens);
  const TokenSeq full = full_stream(req, ref);
  const auto out = run_scripted(
      target, req,
      [full](std::size_t g) {
        return g < full.size() ? full[g] : TokenId{0};
      },
      4, 48);
  EXPECT_EQ(out.result.tokens, ref.tokens);
  EXPECT_EQ(out.result.finish, ref.finish);
  EXPECT_GT(out.spec.proposed, 0u);
  // A perfect draft never gets rejected, and every all-accept cycle emits
  // its bonus token on top of the k accepts.
  EXPECT_EQ(out.spec.accepted, out.spec.proposed);
  EXPECT_EQ(out.spec.emitted, out.spec.accepted + out.spec.cycles);
  EXPECT_EQ(out.result.spec_accepted, out.result.spec_proposed);
}

TEST(SpecScripted, RejectAllEveryCycleEmitsOneCorrection) {
  const Model target = Model::init(test_config(), 71);
  const std::size_t vocab = test_config().vocab_size;
  const Request req = greedy_request(vocab, 12);
  const ReferenceRun ref = reference_run(target, req, 0, 48);
  const TokenSeq full = full_stream(req, ref);
  const auto out = run_scripted(
      target, req,
      [full, vocab](std::size_t g) {
        // Always wrong: one past the true token, mod vocab.
        const TokenId t = g < full.size() ? full[g] : TokenId{0};
        return static_cast<TokenId>((t + 1) % static_cast<TokenId>(vocab));
      },
      4, 48);
  EXPECT_EQ(out.result.tokens, ref.tokens);
  EXPECT_EQ(out.result.finish, ref.finish);
  EXPECT_GT(out.spec.proposed, 0u);
  EXPECT_EQ(out.spec.accepted, 0u);
  // Every committed cycle rejected its first proposal: one correction out.
  EXPECT_EQ(out.spec.emitted, static_cast<std::uint64_t>(out.spec.cycles));
}

TEST(SpecScripted, RejectAtPageBoundaryReleasesTheNewPage) {
  const Model target = Model::init(test_config(), 71);
  const std::size_t vocab = test_config().vocab_size;
  const Request req = greedy_request(vocab, 12);  // prompt 6, pages of 4
  const ReferenceRun ref = reference_run(target, req, 0, 48);
  const TokenSeq full = full_stream(req, ref);
  // First cycle: pos0 = 6, verify reaches position 11 (3 pages mapped);
  // corrupting g = 8 rejects there, so the rewind to position 8 must give
  // the third page back. run_scripted's per-step residency oracle is what
  // actually catches a leak.
  const auto out = run_scripted(
      target, req,
      [full, vocab](std::size_t g) {
        const TokenId t = g < full.size() ? full[g] : TokenId{0};
        if (g == 8) {
          return static_cast<TokenId>((t + 1) % static_cast<TokenId>(vocab));
        }
        return t;
      },
      4, 48);
  EXPECT_EQ(out.result.tokens, ref.tokens);
  EXPECT_EQ(out.result.finish, ref.finish);
  EXPECT_LT(out.spec.accepted, out.spec.proposed);  // the reject happened
}

TEST(SpecScripted, AcceptAllIntoContextFullEviction) {
  const Model target = Model::init(test_config(), 71);
  // max_context 16 with prompt 6: the request dies on KV capacity long
  // before max_new_tokens, mid-speculation — the cycle's k_eff clamp and
  // the per-row context_full stopping rule must fire exactly where solo
  // decoding's would.
  Request req = greedy_request(test_config().vocab_size, 40);
  const ReferenceRun ref = reference_run(target, req, 0, 16);
  ASSERT_EQ(ref.finish, FinishReason::context_full);
  const TokenSeq full = full_stream(req, ref);
  const auto out = run_scripted(
      target, req,
      [full](std::size_t g) {
        return g < full.size() ? full[g] : TokenId{0};
      },
      4, 16);
  EXPECT_EQ(out.result.tokens, ref.tokens);
  EXPECT_EQ(out.result.finish, FinishReason::context_full);
  EXPECT_EQ(out.stats.evicted_capacity, 1u);
}

TEST(SpecScripted, ArenaExhaustionDegradesThenEvicts) {
  const Model target = Model::init(test_config(), 71);
  Request req = greedy_request(test_config().vocab_size, 40);
  const ReferenceRun ref = reference_run(target, req, 0, 64);
  const TokenSeq full = full_stream(req, ref);
  // Prompt 6 on 4-position pages: admission maps 2 pages; with only 3 in
  // the arena the spec cycles degrade k_eff as pages run dry and the
  // request is finally evicted by pages, like the batch path. The emitted
  // prefix must still be exact. (Residency check off: over-reserve from
  // failed degradation attempts is released on retirement, not per step.)
  const auto out = run_scripted(
      target, req,
      [full](std::size_t g) {
        return g < full.size() ? full[g] : TokenId{0};
      },
      4, 64, /*kv_pages=*/3, /*check_residency=*/false);
  EXPECT_EQ(out.result.finish, FinishReason::context_full);
  EXPECT_EQ(out.stats.evicted_pages, 1u);
  ASSERT_LE(out.result.tokens.size(), ref.tokens.size());
  EXPECT_TRUE(std::equal(out.result.tokens.begin(), out.result.tokens.end(),
                         ref.tokens.begin()));
  // 3 pages cover 12 positions, so the stream ends with pos = 12:
  // tokens = pos - prompt + 1.
  EXPECT_EQ(out.result.tokens.size(), 12 - req.prompt.size() + 1);
}

// A speculative request sharing the engine with plain neighbours must not
// disturb them (and vice versa): the oracle equality of SpecEquivalence
// covers tokens; this pins the footprint — after the speculative request
// retires early, only the plain request's pages stay mapped.
TEST(SpecScripted, BatchNeighbourPagesUntouchedByRollback) {
  const Model target = Model::init(test_config(), 71);
  const ModelConfig cfg = test_config();
  SpecConfig sc;
  const Request spec_req = greedy_request(cfg.vocab_size, 4);
  const ReferenceRun spec_ref = reference_run(target, spec_req, 0, 48);
  const TokenSeq full = full_stream(spec_req, spec_ref);
  sc.draft = scripted_draft(cfg, [full, cfg](std::size_t g) {
    const TokenId t = g < full.size() ? full[g] : TokenId{0};
    return static_cast<TokenId>((t + 1) %
                                static_cast<TokenId>(cfg.vocab_size));
  });
  sc.k = 4;
  ServeConfig scfg;
  scfg.max_batch = 2;
  scfg.max_context = 48;
  scfg.kv_page_positions = 4;
  ServeEngine engine(make_backend(target), scfg, std::move(sc));

  Request plain = spec_req;
  plain.speculative = false;
  plain.max_new_tokens = 24;
  engine.submit(spec_req);
  engine.submit(plain);
  const std::vector<GenerationResult> results = engine.run();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].tokens, spec_ref.tokens);
  const ReferenceRun plain_ref = reference_run(target, plain, 1, 48);
  EXPECT_EQ(results[1].tokens, plain_ref.tokens);
  EXPECT_EQ(engine.pool().mapped_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// 5. submit()-time validation.
// ---------------------------------------------------------------------------

TEST(SpecValidation, SpeculativeWithoutDraftRejectedAtSubmit) {
  const Model m = Model::init(test_config(), 81);
  ServeConfig cfg;
  ServeEngine engine(make_backend(m), cfg);
  EXPECT_EQ(engine.spec_stats(), nullptr);
  Request r;
  r.prompt = tokens_for(3, 23, test_config().vocab_size);
  r.speculative = true;
  EXPECT_THROW(engine.submit(r), Error);
  r.speculative = false;
  EXPECT_NO_THROW(engine.submit(r));
  engine.run();
}

TEST(SpecValidation, VocabMismatchRejectedAtSubmitWithClearError) {
  const Model target = Model::init(test_config(), 82);
  ModelConfig small = test_config();
  small.vocab_size = 16;  // draft disagrees with the target's 24
  const Model draft = Model::init(small, 83);
  SpecConfig sc;
  sc.draft = make_backend(draft);
  ServeConfig cfg;
  ServeEngine engine(make_backend(target), cfg, std::move(sc));
  Request r;
  r.prompt = tokens_for(3, 24, test_config().vocab_size);
  r.speculative = true;
  try {
    engine.submit(r);
    FAIL() << "vocab-mismatched speculative request accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("vocab"), std::string::npos)
        << e.what();
  }
  // Same engine still serves both non-speculative work (any vocab overlap
  // question is moot — the draft is never consulted) without mid-flight
  // surprises.
  r.speculative = false;
  EXPECT_NO_THROW(engine.submit(r));
  const std::vector<GenerationResult> results = engine.run();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].finish, FinishReason::max_tokens);
}

TEST(SpecValidation, EngineWithoutVerifyBackendRefusesSpecConfig) {
  const Model draft = Model::init(test_config(), 84);
  const Model target = Model::init(test_config(), 85);
  Backend no_verify = make_backend(target);
  no_verify.verify = nullptr;
  SpecConfig sc;
  sc.draft = make_backend(draft);
  ServeConfig cfg;
  EXPECT_THROW(ServeEngine(std::move(no_verify), cfg, std::move(sc)), Error);
}

}  // namespace
}  // namespace aptq::serve
