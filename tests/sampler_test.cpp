// Unit tests for autoregressive sampling.
#include <gtest/gtest.h>

#include <set>

#include "model/sampler.hpp"

namespace aptq {
namespace {

ModelConfig tiny_config() {
  ModelConfig c;
  c.vocab_size = 12;
  c.dim = 8;
  c.n_layers = 1;
  c.n_heads = 2;
  c.ffn_dim = 12;
  return c;
}

TEST(Sampler, ProducesRequestedLengthAndValidTokens) {
  const Model m = Model::init(tiny_config(), 1);
  Rng rng(2);
  const TokenSeq seq = sample_from_model(m, 20, rng);
  ASSERT_EQ(seq.size(), 20u);
  for (const TokenId t : seq) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 12);
  }
}

TEST(Sampler, DeterministicInRngState) {
  const Model m = Model::init(tiny_config(), 3);
  Rng a(4), b(4);
  EXPECT_EQ(sample_from_model(m, 15, a), sample_from_model(m, 15, b));
}

TEST(Sampler, PromptIsPreserved) {
  const Model m = Model::init(tiny_config(), 5);
  Rng rng(6);
  const TokenSeq prompt = {3, 7, 1};
  const TokenSeq seq = sample_from_model(m, 10, rng, {}, prompt);
  ASSERT_EQ(seq.size(), 10u);
  EXPECT_TRUE(std::equal(prompt.begin(), prompt.end(), seq.begin()));
}

TEST(Sampler, LowTemperatureConcentrates) {
  const Model m = Model::init(tiny_config(), 7);
  SampleConfig cold;
  cold.temperature = 0.05f;
  SampleConfig hot;
  hot.temperature = 3.0f;
  std::set<TokenId> cold_tokens, hot_tokens;
  for (std::uint64_t s = 0; s < 6; ++s) {
    Rng rc(100 + s), rh(100 + s);
    const TokenSeq prompt = {1, 2};
    for (const TokenId t : sample_from_model(m, 12, rc, cold, prompt)) {
      cold_tokens.insert(t);
    }
    for (const TokenId t : sample_from_model(m, 12, rh, hot, prompt)) {
      hot_tokens.insert(t);
    }
  }
  EXPECT_LE(cold_tokens.size(), hot_tokens.size());
}

TEST(Sampler, TopKRestrictsSupport) {
  const Model m = Model::init(tiny_config(), 8);
  SampleConfig cfg;
  cfg.top_k = 1;  // greedy
  Rng a(9), b(10);  // different RNGs, same greedy path after the first token
  const TokenSeq prompt = {4, 4};
  EXPECT_EQ(sample_from_model(m, 12, a, cfg, prompt),
            sample_from_model(m, 12, b, cfg, prompt));
}

TEST(Sampler, RejectsBadArguments) {
  const Model m = Model::init(tiny_config(), 11);
  Rng rng(12);
  SampleConfig bad;
  bad.temperature = 0.0f;
  EXPECT_THROW(sample_from_model(m, 10, rng, bad), Error);
  const TokenSeq prompt = {1, 2, 3};
  EXPECT_THROW(sample_from_model(m, 3, rng, {}, prompt), Error);
}

}  // namespace
}  // namespace aptq
