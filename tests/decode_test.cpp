// Equivalence tests for the incremental decoding engine (model/decode.hpp):
// prefill + steps must reproduce the full forward pass for both the dense
// Model and the bit-packed PackedModel, serially and multi-threaded, plus
// state lifecycle checks (capacity, reset, config mismatch) and the packed
// sampler.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "model/decode.hpp"
#include "model/forward.hpp"
#include "model/sampler.hpp"
#include "quant/packed_model.hpp"
#include "util/threadpool.hpp"

namespace aptq {
namespace {

// Batched prefill (GEMM attention) and per-token steps reassociate f32 sums
// differently from the full forward pass.
constexpr float kTol = 2e-4f;

ModelConfig test_config() {
  ModelConfig c;
  c.vocab_size = 24;
  c.dim = 16;
  c.n_layers = 3;
  c.n_heads = 2;
  c.ffn_dim = 24;
  return c;
}

TokenSeq tokens_for(std::size_t n, std::uint64_t seed, std::size_t vocab) {
  Rng rng(seed);
  TokenSeq t(n);
  for (auto& v : t) {
    v = static_cast<TokenId>(rng.index(vocab));
  }
  return t;
}

PackedModel packed_for(const Model& m) {
  QuantSpec spec;
  spec.bits = 4;
  spec.group_size = 8;
  return PackedModel::pack_uniform(m, spec);
}

// Parameterized over the global thread count: the engine must agree with
// the full forward pass serially and with work split across the pool.
class DecodeEquivalence : public ::testing::TestWithParam<std::size_t> {
 protected:
  DecodeEquivalence() { ThreadPool::set_global_threads(GetParam()); }
  ~DecodeEquivalence() override { ThreadPool::set_global_threads(1); }
};

TEST_P(DecodeEquivalence, DensePrefillAndStepsMatchFullForward) {
  const Model m = Model::init(test_config(), 21);
  const TokenSeq tokens = tokens_for(12, 5, m.config.vocab_size);
  const Matrix full = model_forward(m, tokens);

  DecodeState state(m.config, tokens.size());
  const std::size_t split = 8;
  const Matrix pre = decode_prefill(
      m, std::span<const TokenId>(tokens.data(), split), state);
  ASSERT_EQ(pre.rows(), split);
  ASSERT_EQ(pre.cols(), m.config.vocab_size);
  for (std::size_t t = 0; t < split; ++t) {
    for (std::size_t v = 0; v < m.config.vocab_size; ++v) {
      EXPECT_NEAR(pre(t, v), full(t, v), kTol)
          << "prefill position " << t << " vocab " << v;
    }
  }
  for (std::size_t t = split; t < tokens.size(); ++t) {
    const std::vector<float> logits = decode_step(m, tokens[t], state);
    ASSERT_EQ(logits.size(), m.config.vocab_size);
    for (std::size_t v = 0; v < logits.size(); ++v) {
      EXPECT_NEAR(logits[v], full(t, v), kTol)
          << "step position " << t << " vocab " << v;
    }
  }
  EXPECT_EQ(state.pos(), tokens.size());
}

TEST_P(DecodeEquivalence, PackedPrefillAndStepsMatchPackedForward) {
  const Model m = Model::init(test_config(), 22);
  const PackedModel pm = packed_for(m);
  const TokenSeq tokens = tokens_for(10, 6, m.config.vocab_size);
  const Matrix full = pm.forward(tokens);

  DecodeState state(pm.config(), tokens.size());
  const std::size_t split = 6;
  const Matrix pre = decode_prefill(
      pm, std::span<const TokenId>(tokens.data(), split), state);
  for (std::size_t t = 0; t < split; ++t) {
    for (std::size_t v = 0; v < pm.config().vocab_size; ++v) {
      EXPECT_NEAR(pre(t, v), full(t, v), kTol)
          << "prefill position " << t << " vocab " << v;
    }
  }
  // Single-token steps exercise the packed GEMV kernel.
  for (std::size_t t = split; t < tokens.size(); ++t) {
    const std::vector<float> logits = decode_step(pm, tokens[t], state);
    ASSERT_EQ(logits.size(), pm.config().vocab_size);
    for (std::size_t v = 0; v < logits.size(); ++v) {
      EXPECT_NEAR(logits[v], full(t, v), kTol)
          << "step position " << t << " vocab " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, DecodeEquivalence,
                         ::testing::Values(std::size_t{1}, std::size_t{4}));

TEST(DecodeState, CapacityEnforcedAndReusableAfterReset) {
  const Model m = Model::init(test_config(), 23);
  const TokenSeq tokens = tokens_for(6, 7, m.config.vocab_size);
  DecodeState state(m.config, tokens.size());
  const Matrix first = decode_prefill(m, tokens, state);
  EXPECT_EQ(state.pos(), tokens.size());
  EXPECT_THROW(decode_step(m, tokens[0], state), Error);

  state.reset();
  EXPECT_EQ(state.pos(), 0u);
  // Same engine, same inputs, same thread layout: bitwise identical.
  const Matrix second = decode_prefill(m, tokens, state);
  EXPECT_TRUE(first == second);
}

// ---- batched decode: per-row bitwise equality with solo steps -------------
//
// decode_step_batch is the serving engine's hot path: it stacks the
// in-flight requests' activations into one (batch × dim) forward pass. The
// determinism contract requires row i of the batched logits to be bitwise
// identical to decode_step on request i alone — across thread counts,
// mixed context depths, and both backends.
class BatchedDecode : public ::testing::TestWithParam<std::size_t> {
 protected:
  BatchedDecode() { ThreadPool::set_global_threads(GetParam()); }
  ~BatchedDecode() override { ThreadPool::set_global_threads(1); }
};

TEST_P(BatchedDecode, DenseRowsBitwiseMatchSoloSteps) {
  const Model m = Model::init(test_config(), 31);
  const std::size_t n = 4, max_ctx = 24, steps = 5;
  std::vector<DecodeState> solo;
  std::vector<DecodeState> batched;
  solo.reserve(n);
  batched.reserve(n);
  std::vector<DecodeState*> ptrs;
  std::vector<TokenSeq> feeds;
  for (std::size_t i = 0; i < n; ++i) {
    // Staggered prompt lengths: every batch row decodes at a different
    // context depth, exercising the per-row rope positions.
    const TokenSeq prompt = tokens_for(3 + 2 * i, 40 + i, m.config.vocab_size);
    solo.emplace_back(m.config, max_ctx);
    batched.emplace_back(m.config, max_ctx);
    decode_prefill(m, prompt, solo.back());
    decode_prefill(m, prompt, batched.back());
    feeds.push_back(tokens_for(steps, 60 + i, m.config.vocab_size));
  }
  for (std::size_t i = 0; i < n; ++i) {
    ptrs.push_back(&batched[i]);
  }
  for (std::size_t s = 0; s < steps; ++s) {
    std::vector<TokenId> toks(n);
    for (std::size_t i = 0; i < n; ++i) {
      toks[i] = feeds[i][s];
    }
    const Matrix logits = decode_step_batch(m, toks, ptrs);
    ASSERT_EQ(logits.rows(), n);
    ASSERT_EQ(logits.cols(), m.config.vocab_size);
    for (std::size_t i = 0; i < n; ++i) {
      const std::vector<float> want = decode_step(m, toks[i], solo[i]);
      for (std::size_t v = 0; v < want.size(); ++v) {
        ASSERT_EQ(logits(i, v), want[v])
            << "step " << s << " request " << i << " vocab " << v;
      }
      EXPECT_EQ(batched[i].pos(), solo[i].pos());
    }
  }
}

TEST_P(BatchedDecode, PackedRowsBitwiseMatchSoloSteps) {
  const Model m = Model::init(test_config(), 32);
  const PackedModel pm = packed_for(m);
  const std::size_t n = 3, max_ctx = 20, steps = 4;
  std::vector<DecodeState> solo;
  std::vector<DecodeState> batched;
  solo.reserve(n);
  batched.reserve(n);
  std::vector<DecodeState*> ptrs;
  std::vector<TokenSeq> feeds;
  for (std::size_t i = 0; i < n; ++i) {
    const TokenSeq prompt =
        tokens_for(2 + 3 * i, 70 + i, pm.config().vocab_size);
    solo.emplace_back(pm.config(), max_ctx);
    batched.emplace_back(pm.config(), max_ctx);
    decode_prefill(pm, prompt, solo.back());
    decode_prefill(pm, prompt, batched.back());
    feeds.push_back(tokens_for(steps, 80 + i, pm.config().vocab_size));
  }
  for (std::size_t i = 0; i < n; ++i) {
    ptrs.push_back(&batched[i]);
  }
  for (std::size_t s = 0; s < steps; ++s) {
    std::vector<TokenId> toks(n);
    for (std::size_t i = 0; i < n; ++i) {
      toks[i] = feeds[i][s];
    }
    const Matrix logits = decode_step_batch(pm, toks, ptrs);
    for (std::size_t i = 0; i < n; ++i) {
      const std::vector<float> want = decode_step(pm, toks[i], solo[i]);
      for (std::size_t v = 0; v < want.size(); ++v) {
        ASSERT_EQ(logits(i, v), want[v])
            << "step " << s << " request " << i << " vocab " << v;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, BatchedDecode,
                         ::testing::Values(std::size_t{1}, std::size_t{4}));

TEST(BatchedDecodeValidation, RejectsBadBatches) {
  const Model m = Model::init(test_config(), 33);
  DecodeState a(m.config, 8);
  DecodeState b(m.config, 8);
  const TokenId tok = 1;
  {
    // Empty batch.
    EXPECT_THROW(decode_step_batch(m, {}, {}), Error);
  }
  {
    // tokens/states size mismatch.
    const TokenId toks[2] = {tok, tok};
    DecodeState* sts[1] = {&a};
    EXPECT_THROW(decode_step_batch(m, toks, sts), Error);
  }
  {
    // The same state twice would interleave two writers on one KV cache.
    const TokenId toks[2] = {tok, tok};
    DecodeState* sts[2] = {&a, &a};
    EXPECT_THROW(decode_step_batch(m, toks, sts), Error);
  }
  {
    const TokenId toks[2] = {tok, tok};
    DecodeState* sts[2] = {&a, &b};
    EXPECT_NO_THROW(decode_step_batch(m, toks, sts));
  }
}

// ---- paged KV storage ------------------------------------------------------

TEST(KvArena, PageLifecycleAndExhaustion) {
  const ModelConfig cfg = test_config();
  KvArena arena(cfg, 8, 3);
  EXPECT_EQ(arena.pages(), 3u);
  EXPECT_EQ(arena.page_positions(), 8u);
  EXPECT_EQ(arena.free_pages(), 3u);
  EXPECT_EQ(arena.bytes(), 3 * arena.page_stride() * sizeof(float));
  const std::uint32_t p0 = arena.acquire_page();
  const std::uint32_t p1 = arena.acquire_page();
  const std::uint32_t p2 = arena.acquire_page();
  EXPECT_EQ(arena.free_pages(), 0u);
  EXPECT_EQ(arena.acquire_page(), KvArena::kNoPage);  // exhausted, no throw
  arena.release_page(p1);
  EXPECT_EQ(arena.free_pages(), 1u);
  EXPECT_EQ(arena.acquire_page(), p1);  // recycled
  EXPECT_THROW(arena.release_page(KvArena::kNoPage), Error);
  arena.release_page(p0);
  EXPECT_THROW(arena.release_page(p0), Error);  // double release
  (void)p2;
}

TEST(KvArena, RejectsNonPowerOfTwoPageSize) {
  EXPECT_THROW(KvArena(test_config(), 12, 2), Error);
  EXPECT_THROW(KvArena(test_config(), 0, 2), Error);
  EXPECT_THROW(KvArena(test_config(), 16, 0), Error);
}

TEST(PagedDecodeState, SharedArenaBitwiseMatchesPrivateArena) {
  const Model m = Model::init(test_config(), 34);
  // max_context spans several pages so steps cross page boundaries.
  const std::size_t max_ctx = 40, pp = 16;
  KvArena arena(m.config, pp, (max_ctx + pp - 1) / pp);
  DecodeState shared(m.config, max_ctx, arena);
  DecodeState priv(m.config, max_ctx);
  ASSERT_TRUE(shared.try_reserve(max_ctx));
  const TokenSeq prompt = tokens_for(12, 90, m.config.vocab_size);
  const Matrix pre_shared = decode_prefill(m, prompt, shared);
  const Matrix pre_priv = decode_prefill(m, prompt, priv);
  EXPECT_TRUE(pre_shared == pre_priv);
  const TokenSeq feed = tokens_for(max_ctx - prompt.size(), 91,
                                   m.config.vocab_size);
  for (const TokenId t : feed) {
    const std::vector<float> a = decode_step(m, t, shared);
    const std::vector<float> b = decode_step(m, t, priv);
    EXPECT_EQ(a, b);
  }
  EXPECT_EQ(shared.pos(), static_cast<std::size_t>(max_ctx));
}

TEST(PagedDecodeState, LazyReservationAndRelease) {
  const ModelConfig cfg = test_config();
  KvArena arena(cfg, 4, 3);  // 12 positions total
  DecodeState a(cfg, 12, arena);
  DecodeState b(cfg, 12, arena);
  EXPECT_EQ(a.pages_held(), 0u);  // shared states map pages on demand
  ASSERT_TRUE(a.try_reserve(5));  // 2 pages of 4
  EXPECT_EQ(a.pages_held(), 2u);
  EXPECT_EQ(arena.free_pages(), 1u);
  ASSERT_TRUE(b.try_reserve(4));
  EXPECT_EQ(arena.free_pages(), 0u);
  EXPECT_FALSE(b.try_reserve(5));   // arena dry; b keeps its mapped page
  EXPECT_EQ(b.pages_held(), 1u);
  a.reset();                        // returns a's pages
  EXPECT_EQ(arena.free_pages(), 2u);
  EXPECT_TRUE(b.try_reserve(5));
  EXPECT_GT(a.footprint_bytes(), 0u);  // page-table bookkeeping
}

TEST(PagedDecodeState, DestructorReturnsPagesToArena) {
  const ModelConfig cfg = test_config();
  KvArena arena(cfg, 4, 2);
  {
    DecodeState s(cfg, 8, arena);
    ASSERT_TRUE(s.try_reserve(8));
    EXPECT_EQ(arena.free_pages(), 0u);
  }
  EXPECT_EQ(arena.free_pages(), 2u);
}

TEST(DecodeState, RejectsMismatchedConfig) {
  const Model m = Model::init(test_config(), 24);
  ModelConfig other = test_config();
  other.n_layers = 1;
  DecodeState state(other, 8);
  const TokenSeq tokens = tokens_for(4, 8, m.config.vocab_size);
  EXPECT_THROW(decode_prefill(m, tokens, state), Error);
  EXPECT_THROW(decode_step(m, tokens[0], state), Error);
}

TEST(DecodeState, RejectsZeroCapacity) {
  EXPECT_THROW(DecodeState(test_config(), 0), Error);
}

// The committed packed-format-v2 fixture and a fresh format-v3 pack of the
// same model hold bit-identical codes and group parameters, so decode must
// agree to the last bit: same kernels, same fixed parallel grains. The
// prefill width covers both the single-row qgemv path (batch 1) and the
// row-blocked qgemv_multi path (batch 8), for every quantized matmul in
// the stack.
class PackedV2Oracle : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PackedV2Oracle, DecodeMatchesFreshV3PackBitwise) {
  const std::string fixture =
      std::string(APTQ_GOLDEN_DIR) + "/packed_v2_fixture.bin";
  ASSERT_TRUE(std::filesystem::exists(fixture))
      << "missing fixture " << fixture;
  const PackedModel v2 = PackedModel::load(fixture);
  // The fixture was packed from Model::init(seed 11) at w4g4; see
  // tests/loader_fuzz_test.cpp for the byte-level comparison.
  ModelConfig c;
  c.vocab_size = 16;
  c.dim = 12;
  c.n_layers = 2;
  c.n_heads = 2;
  c.ffn_dim = 16;
  QuantSpec spec;
  spec.bits = 4;
  spec.group_size = 4;
  const PackedModel v3 = PackedModel::pack_uniform(Model::init(c, 11), spec);

  const std::size_t prefill = GetParam();
  const TokenSeq tokens = tokens_for(prefill + 4, 4, c.vocab_size);
  DecodeState s2(v2.config(), tokens.size());
  DecodeState s3(v3.config(), tokens.size());
  const Matrix pre2 = decode_prefill(
      v2, std::span<const TokenId>(tokens.data(), prefill), s2);
  const Matrix pre3 = decode_prefill(
      v3, std::span<const TokenId>(tokens.data(), prefill), s3);
  EXPECT_TRUE(pre2 == pre3) << "prefill width " << prefill;
  for (std::size_t t = prefill; t < tokens.size(); ++t) {
    const std::vector<float> l2 = decode_step(v2, tokens[t], s2);
    const std::vector<float> l3 = decode_step(v3, tokens[t], s3);
    EXPECT_EQ(l2, l3) << "step position " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(PrefillBatch, PackedV2Oracle,
                         ::testing::Values(std::size_t{1}, std::size_t{8}));

TEST(PackedSampling, MatchesFullForwardSamplingNearGreedy) {
  const Model m = Model::init(test_config(), 25);
  const PackedModel pm = packed_for(m);
  SampleConfig cfg;
  cfg.temperature = 0.01f;  // near-greedy: rounding noise cannot flip draws
  const TokenSeq prompt = tokens_for(3, 9, m.config.vocab_size);

  Rng rng_a(77);
  const TokenSeq via_engine = sample_from_packed(pm, 12, rng_a, cfg, prompt);

  // Reference: the same sampling loop driven by full-prefix recomputation.
  Rng rng_b(77);
  TokenSeq context = prompt;
  const TokenSeq via_forward = sample_with_engine(
      pm.config().vocab_size, 12, rng_b, cfg, prompt,
      [&](std::span<const TokenId> tokens) {
        context.assign(tokens.begin(), tokens.end());
        const Matrix logits = pm.forward(context);
        const auto last = logits.row(logits.rows() - 1);
        return std::vector<float>(last.begin(), last.end());
      },
      [&](TokenId token) {
        context.push_back(token);
        const Matrix logits = pm.forward(context);
        const auto last = logits.row(logits.rows() - 1);
        return std::vector<float>(last.begin(), last.end());
      });

  EXPECT_EQ(via_engine, via_forward);
}

}  // namespace
}  // namespace aptq
