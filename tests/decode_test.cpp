// Equivalence tests for the incremental decoding engine (model/decode.hpp):
// prefill + steps must reproduce the full forward pass for both the dense
// Model and the bit-packed PackedModel, serially and multi-threaded, plus
// state lifecycle checks (capacity, reset, config mismatch) and the packed
// sampler.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "model/decode.hpp"
#include "model/forward.hpp"
#include "model/sampler.hpp"
#include "quant/packed_model.hpp"
#include "util/threadpool.hpp"

namespace aptq {
namespace {

// Batched prefill (GEMM attention) and per-token steps reassociate f32 sums
// differently from the full forward pass.
constexpr float kTol = 2e-4f;

ModelConfig test_config() {
  ModelConfig c;
  c.vocab_size = 24;
  c.dim = 16;
  c.n_layers = 3;
  c.n_heads = 2;
  c.ffn_dim = 24;
  return c;
}

TokenSeq tokens_for(std::size_t n, std::uint64_t seed, std::size_t vocab) {
  Rng rng(seed);
  TokenSeq t(n);
  for (auto& v : t) {
    v = static_cast<TokenId>(rng.index(vocab));
  }
  return t;
}

PackedModel packed_for(const Model& m) {
  QuantSpec spec;
  spec.bits = 4;
  spec.group_size = 8;
  return PackedModel::pack_uniform(m, spec);
}

// Parameterized over the global thread count: the engine must agree with
// the full forward pass serially and with work split across the pool.
class DecodeEquivalence : public ::testing::TestWithParam<std::size_t> {
 protected:
  DecodeEquivalence() { ThreadPool::set_global_threads(GetParam()); }
  ~DecodeEquivalence() override { ThreadPool::set_global_threads(1); }
};

TEST_P(DecodeEquivalence, DensePrefillAndStepsMatchFullForward) {
  const Model m = Model::init(test_config(), 21);
  const TokenSeq tokens = tokens_for(12, 5, m.config.vocab_size);
  const Matrix full = model_forward(m, tokens);

  DecodeState state(m.config, tokens.size());
  const std::size_t split = 8;
  const Matrix pre = decode_prefill(
      m, std::span<const TokenId>(tokens.data(), split), state);
  ASSERT_EQ(pre.rows(), split);
  ASSERT_EQ(pre.cols(), m.config.vocab_size);
  for (std::size_t t = 0; t < split; ++t) {
    for (std::size_t v = 0; v < m.config.vocab_size; ++v) {
      EXPECT_NEAR(pre(t, v), full(t, v), kTol)
          << "prefill position " << t << " vocab " << v;
    }
  }
  for (std::size_t t = split; t < tokens.size(); ++t) {
    const std::vector<float> logits = decode_step(m, tokens[t], state);
    ASSERT_EQ(logits.size(), m.config.vocab_size);
    for (std::size_t v = 0; v < logits.size(); ++v) {
      EXPECT_NEAR(logits[v], full(t, v), kTol)
          << "step position " << t << " vocab " << v;
    }
  }
  EXPECT_EQ(state.pos(), tokens.size());
}

TEST_P(DecodeEquivalence, PackedPrefillAndStepsMatchPackedForward) {
  const Model m = Model::init(test_config(), 22);
  const PackedModel pm = packed_for(m);
  const TokenSeq tokens = tokens_for(10, 6, m.config.vocab_size);
  const Matrix full = pm.forward(tokens);

  DecodeState state(pm.config(), tokens.size());
  const std::size_t split = 6;
  const Matrix pre = decode_prefill(
      pm, std::span<const TokenId>(tokens.data(), split), state);
  for (std::size_t t = 0; t < split; ++t) {
    for (std::size_t v = 0; v < pm.config().vocab_size; ++v) {
      EXPECT_NEAR(pre(t, v), full(t, v), kTol)
          << "prefill position " << t << " vocab " << v;
    }
  }
  // Single-token steps exercise the packed GEMV kernel.
  for (std::size_t t = split; t < tokens.size(); ++t) {
    const std::vector<float> logits = decode_step(pm, tokens[t], state);
    ASSERT_EQ(logits.size(), pm.config().vocab_size);
    for (std::size_t v = 0; v < logits.size(); ++v) {
      EXPECT_NEAR(logits[v], full(t, v), kTol)
          << "step position " << t << " vocab " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, DecodeEquivalence,
                         ::testing::Values(std::size_t{1}, std::size_t{4}));

TEST(DecodeState, CapacityEnforcedAndReusableAfterReset) {
  const Model m = Model::init(test_config(), 23);
  const TokenSeq tokens = tokens_for(6, 7, m.config.vocab_size);
  DecodeState state(m.config, tokens.size());
  const Matrix first = decode_prefill(m, tokens, state);
  EXPECT_EQ(state.pos(), tokens.size());
  EXPECT_THROW(decode_step(m, tokens[0], state), Error);

  state.reset();
  EXPECT_EQ(state.pos(), 0u);
  // Same engine, same inputs, same thread layout: bitwise identical.
  const Matrix second = decode_prefill(m, tokens, state);
  EXPECT_TRUE(first == second);
}

TEST(DecodeState, RejectsMismatchedConfig) {
  const Model m = Model::init(test_config(), 24);
  ModelConfig other = test_config();
  other.n_layers = 1;
  DecodeState state(other, 8);
  const TokenSeq tokens = tokens_for(4, 8, m.config.vocab_size);
  EXPECT_THROW(decode_prefill(m, tokens, state), Error);
  EXPECT_THROW(decode_step(m, tokens[0], state), Error);
}

TEST(DecodeState, RejectsZeroCapacity) {
  EXPECT_THROW(DecodeState(test_config(), 0), Error);
}

// The committed packed-format-v2 fixture and a fresh format-v3 pack of the
// same model hold bit-identical codes and group parameters, so decode must
// agree to the last bit: same kernels, same fixed parallel grains. The
// prefill width covers both the single-row qgemv path (batch 1) and the
// row-blocked qgemv_multi path (batch 8), for every quantized matmul in
// the stack.
class PackedV2Oracle : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PackedV2Oracle, DecodeMatchesFreshV3PackBitwise) {
  const std::string fixture =
      std::string(APTQ_GOLDEN_DIR) + "/packed_v2_fixture.bin";
  ASSERT_TRUE(std::filesystem::exists(fixture))
      << "missing fixture " << fixture;
  const PackedModel v2 = PackedModel::load(fixture);
  // The fixture was packed from Model::init(seed 11) at w4g4; see
  // tests/loader_fuzz_test.cpp for the byte-level comparison.
  ModelConfig c;
  c.vocab_size = 16;
  c.dim = 12;
  c.n_layers = 2;
  c.n_heads = 2;
  c.ffn_dim = 16;
  QuantSpec spec;
  spec.bits = 4;
  spec.group_size = 4;
  const PackedModel v3 = PackedModel::pack_uniform(Model::init(c, 11), spec);

  const std::size_t prefill = GetParam();
  const TokenSeq tokens = tokens_for(prefill + 4, 4, c.vocab_size);
  DecodeState s2(v2.config(), tokens.size());
  DecodeState s3(v3.config(), tokens.size());
  const Matrix pre2 = decode_prefill(
      v2, std::span<const TokenId>(tokens.data(), prefill), s2);
  const Matrix pre3 = decode_prefill(
      v3, std::span<const TokenId>(tokens.data(), prefill), s3);
  EXPECT_TRUE(pre2 == pre3) << "prefill width " << prefill;
  for (std::size_t t = prefill; t < tokens.size(); ++t) {
    const std::vector<float> l2 = decode_step(v2, tokens[t], s2);
    const std::vector<float> l3 = decode_step(v3, tokens[t], s3);
    EXPECT_EQ(l2, l3) << "step position " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(PrefillBatch, PackedV2Oracle,
                         ::testing::Values(std::size_t{1}, std::size_t{8}));

TEST(PackedSampling, MatchesFullForwardSamplingNearGreedy) {
  const Model m = Model::init(test_config(), 25);
  const PackedModel pm = packed_for(m);
  SampleConfig cfg;
  cfg.temperature = 0.01f;  // near-greedy: rounding noise cannot flip draws
  const TokenSeq prompt = tokens_for(3, 9, m.config.vocab_size);

  Rng rng_a(77);
  const TokenSeq via_engine = sample_from_packed(pm, 12, rng_a, cfg, prompt);

  // Reference: the same sampling loop driven by full-prefix recomputation.
  Rng rng_b(77);
  TokenSeq context = prompt;
  const TokenSeq via_forward = sample_with_engine(
      pm.config().vocab_size, 12, rng_b, cfg, prompt,
      [&](std::span<const TokenId> tokens) {
        context.assign(tokens.begin(), tokens.end());
        const Matrix logits = pm.forward(context);
        const auto last = logits.row(logits.rows() - 1);
        return std::vector<float>(last.begin(), last.end());
      },
      [&](TokenId token) {
        context.push_back(token);
        const Matrix logits = pm.forward(context);
        const auto last = logits.row(logits.rows() - 1);
        return std::vector<float>(last.begin(), last.end());
      });

  EXPECT_EQ(via_engine, via_forward);
}

}  // namespace
}  // namespace aptq
