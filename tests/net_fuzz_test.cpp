// Adversarial suite for the wire protocol: truncated frames, bit-flipped
// headers, oversized length prefixes, corrupted shard payloads, and
// mid-stream disconnects, driven against both recv_frame and a full
// worker session. The invariant everywhere: a clean aptq::Error (or a
// clean return), never a crash, a hang, or an unbounded allocation —
// MemStream reports end-of-stream on exhaustion, so any would-be hang
// surfaces as a truncation error instead.
#include <gtest/gtest.h>

#include <cstring>

#include "net/frame.hpp"
#include "net/shard.hpp"
#include "net/stream.hpp"
#include "net/worker.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace aptq::net {
namespace {

ModelConfig fuzz_config() {
  ModelConfig c;
  c.vocab_size = 24;
  c.dim = 16;
  c.n_layers = 2;
  c.n_heads = 2;
  c.ffn_dim = 24;
  return c;
}

/// Bytes of a complete, valid worker session: hello, load_shard, one
/// projection, shutdown.
std::vector<std::uint8_t> valid_session_bytes() {
  MemStream wire;
  send_frame(wire, MsgType::hello, encode_u32(kProtoVersion));
  const Model model = Model::init(fuzz_config(), 5);
  send_frame(wire, MsgType::load_shard,
             shard_to_bytes(make_shard(model, 0, 2)));
  Matrix x(1, fuzz_config().dim);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x.flat()[i] = 0.01f * static_cast<float>(i);
  }
  send_frame(wire, MsgType::project,
             encode_project(ProjectOp::single, 0, LinearKind::q_proj, x));
  send_frame(wire, MsgType::shutdown, {});
  return wire.written();
}

TEST(NetFuzzTest, ValidSessionCompletes) {
  MemStream wire(valid_session_bytes());
  EXPECT_NO_THROW(serve_worker(wire));
  // The worker's replies end with the bye frame.
  MemStream replies(wire.written());
  expect_frame(replies, MsgType::hello_ack, kMaxControlPayload);
  expect_frame(replies, MsgType::shard_ready, kMaxControlPayload);
  expect_frame(replies, MsgType::project_out, kMaxProjectPayload);
  expect_frame(replies, MsgType::bye, kMaxControlPayload);
}

TEST(NetFuzzTest, TruncationAtEveryPrefixFailsCleanly) {
  const std::vector<std::uint8_t> session = valid_session_bytes();
  // Every prefix that cuts the session short must make the worker throw
  // (a disconnect can land on any byte boundary). Striding keeps the
  // whole-session sweep fast; the first 64 boundaries run exhaustively to
  // cover every cut inside the handshake header bytes.
  for (std::size_t cut = 0; cut < session.size() - 1;
       cut += (cut < 64 ? 1 : 97)) {
    MemStream wire(std::vector<std::uint8_t>(session.begin(),
                                             session.begin() + cut));
    EXPECT_THROW(serve_worker(wire), Error) << "cut at " << cut;
  }
}

TEST(NetFuzzTest, BitFlippedSessionNeverCrashes) {
  const std::vector<std::uint8_t> session = valid_session_bytes();
  Rng rng(123);
  std::size_t threw = 0;
  const std::size_t trials = 300;
  for (std::size_t t = 0; t < trials; ++t) {
    std::vector<std::uint8_t> bytes = session;
    const std::size_t at = rng.index(bytes.size());
    bytes[at] ^= static_cast<std::uint8_t>(1u << rng.index(8));
    MemStream wire(std::move(bytes));
    try {
      serve_worker(wire);
    } catch (const Error&) {
      ++threw;  // the expected outcome for structural damage
    }
    // No other exception type, no crash, no hang: anything else fails the
    // test harness itself.
  }
  // Structural damage (framing, geometry, discriminators) must be
  // rejected loudly; flips landing inside f32 weight bytes are data
  // corruption the protocol cannot see and completes silently, so only a
  // loose lower bound is meaningful here (the header sweep below pins the
  // structural bytes exhaustively).
  EXPECT_GT(threw, 0u);
}

TEST(NetFuzzTest, HeaderBitFlipsAlwaysFailLoudly) {
  const std::vector<std::uint8_t> session = valid_session_bytes();
  // Flip every bit of the hello header's magic and length fields: each
  // one must be a clean error (magic mismatch, unknown type, cap breach,
  // or a downstream decode failure) — never an attempt to honor it.
  for (const std::size_t byte :
       {0u, 1u, 2u, 3u, 8u, 9u, 10u, 11u, 12u, 13u, 14u, 15u}) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> bytes = session;
      bytes[byte] ^= static_cast<std::uint8_t>(1 << bit);
      MemStream wire(std::move(bytes));
      EXPECT_THROW(serve_worker(wire), Error)
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(NetFuzzTest, OversizedShardLengthRejectedBeforeAllocation) {
  MemStream wire;
  send_frame(wire, MsgType::hello, encode_u32(kProtoVersion));
  // A load_shard header claiming 2^62 payload bytes: the cap check fires
  // on the header alone (a resize that large would abort the process, so
  // surviving this test proves no allocation was attempted).
  std::uint8_t header[16];
  const std::uint32_t magic = kFrameMagic;
  const std::uint32_t type = static_cast<std::uint32_t>(MsgType::load_shard);
  const std::uint64_t len = 1ull << 62;
  std::memcpy(header, &magic, 4);
  std::memcpy(header + 4, &type, 4);
  std::memcpy(header + 8, &len, 8);
  wire.write_all(header, sizeof header);
  MemStream session(wire.written());
  try {
    serve_worker(session);
    FAIL() << "oversized shard length must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("cap"), std::string::npos);
  }
}

TEST(NetFuzzTest, WorkerReportsErrorBeforeDying) {
  // Wrong protocol version: the worker must send error_report before
  // throwing, so the root sees the reason instead of a dead socket.
  MemStream wire;
  send_frame(wire, MsgType::hello, encode_u32(kProtoVersion + 7));
  MemStream session(wire.written());
  EXPECT_THROW(serve_worker(session), Error);
  MemStream replies(session.written());
  const Frame report = recv_frame(replies, kMaxControlPayload);
  EXPECT_EQ(report.type, MsgType::error_report);
  const std::string text(report.payload.begin(), report.payload.end());
  EXPECT_NE(text.find("version"), std::string::npos);
}

TEST(NetFuzzTest, CorruptedShardPayloadRejected) {
  const Model model = Model::init(fuzz_config(), 5);
  const std::vector<std::uint8_t> shard = shard_to_bytes(make_shard(model, 1, 2));
  // The leading bytes carry magic, version, kind, worker ids, and the
  // config — every bit of those is load-bearing for geometry validation.
  for (std::size_t at = 0; at < 16; ++at) {
    std::vector<std::uint8_t> bytes = shard;
    bytes[at] ^= 0x40;
    EXPECT_THROW(shard_from_bytes(bytes), Error) << "byte " << at;
  }
  // Truncations anywhere must throw (interior length prefixes re-checked
  // against the buffer end by BinaryReader).
  for (std::size_t cut : {0u, 1u, 15u, 16u, 100u}) {
    ASSERT_LT(cut, shard.size());
    EXPECT_THROW(
        shard_from_bytes(std::vector<std::uint8_t>(shard.begin(),
                                                   shard.end() - 1 - cut)),
        Error)
        << "truncated by " << cut + 1;
  }
}

TEST(NetFuzzTest, ProjectPayloadFuzz) {
  Matrix x(2, 16);
  const std::vector<std::uint8_t> good =
      encode_project(ProjectOp::batch, 1, LinearKind::up_proj, x);
  // Truncations: every prefix fails.
  for (std::size_t cut = 0; cut < good.size(); cut += 3) {
    EXPECT_THROW(decode_project(std::vector<std::uint8_t>(
                     good.begin(), good.begin() + cut)),
                 Error);
  }
  // Oversized interior dimensions: claim a giant matrix in a small
  // payload — the division-form size check rejects it without allocating.
  std::vector<std::uint8_t> huge = good;
  const std::uint64_t big = 1ull << 58;
  std::memcpy(huge.data() + 12, &big, 8);  // rows field of the matrix
  EXPECT_THROW(decode_project(huge), Error);
}

}  // namespace
}  // namespace aptq::net
