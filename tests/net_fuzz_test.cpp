// Adversarial suite for the wire protocol: truncated frames, bit-flipped
// headers, oversized length prefixes, corrupted shard payloads, and
// mid-stream disconnects, driven against both recv_frame and a full
// worker session. The invariant everywhere: a clean aptq::Error (or a
// clean return), never a crash, a hang, or an unbounded allocation —
// MemStream reports end-of-stream on exhaustion, so any would-be hang
// surfaces as a truncation error instead.
#include <gtest/gtest.h>

#include <cstring>

#include "net/frame.hpp"
#include "net/shard.hpp"
#include "net/stream.hpp"
#include "net/worker.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace aptq::net {
namespace {

ModelConfig fuzz_config() {
  ModelConfig c;
  c.vocab_size = 24;
  c.dim = 16;
  c.n_layers = 2;
  c.n_heads = 2;
  c.ffn_dim = 24;
  return c;
}

/// Bytes of a complete, valid worker session: hello, load_shard, one
/// projection, shutdown.
std::vector<std::uint8_t> valid_session_bytes() {
  MemStream wire;
  send_frame(wire, MsgType::hello, encode_u32(kProtoVersion));
  const Model model = Model::init(fuzz_config(), 5);
  send_frame(wire, MsgType::load_shard,
             shard_to_bytes(make_shard(model, 0, 2)));
  Matrix x(1, fuzz_config().dim);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x.flat()[i] = 0.01f * static_cast<float>(i);
  }
  send_frame(wire, MsgType::project,
             encode_project(ProjectOp::single, 0, LinearKind::q_proj, x));
  send_frame(wire, MsgType::shutdown, {});
  return wire.written();
}

TEST(NetFuzzTest, ValidSessionCompletes) {
  MemStream wire(valid_session_bytes());
  EXPECT_NO_THROW(serve_worker(wire));
  // The worker's replies end with the bye frame.
  MemStream replies(wire.written());
  expect_frame(replies, MsgType::hello_ack, kMaxControlPayload);
  expect_frame(replies, MsgType::shard_ready, kMaxControlPayload);
  expect_frame(replies, MsgType::project_out, kMaxProjectPayload);
  expect_frame(replies, MsgType::bye, kMaxControlPayload);
}

TEST(NetFuzzTest, TruncationAtEveryPrefixFailsCleanly) {
  const std::vector<std::uint8_t> session = valid_session_bytes();
  // Every prefix that cuts the session short must make the worker throw
  // (a disconnect can land on any byte boundary). Striding keeps the
  // whole-session sweep fast; the first 64 boundaries run exhaustively to
  // cover every cut inside the handshake header bytes.
  for (std::size_t cut = 0; cut < session.size() - 1;
       cut += (cut < 64 ? 1 : 97)) {
    MemStream wire(std::vector<std::uint8_t>(session.begin(),
                                             session.begin() + cut));
    EXPECT_THROW(serve_worker(wire), Error) << "cut at " << cut;
  }
}

TEST(NetFuzzTest, BitFlippedSessionNeverCrashes) {
  const std::vector<std::uint8_t> session = valid_session_bytes();
  Rng rng(123);
  std::size_t threw = 0;
  const std::size_t trials = 300;
  for (std::size_t t = 0; t < trials; ++t) {
    std::vector<std::uint8_t> bytes = session;
    const std::size_t at = rng.index(bytes.size());
    bytes[at] ^= static_cast<std::uint8_t>(1u << rng.index(8));
    MemStream wire(std::move(bytes));
    try {
      serve_worker(wire);
    } catch (const Error&) {
      ++threw;  // the expected outcome for structural damage
    }
    // No other exception type, no crash, no hang: anything else fails the
    // test harness itself.
  }
  // Structural damage (framing, geometry, discriminators) must be
  // rejected loudly; flips landing inside f32 weight bytes are data
  // corruption the protocol cannot see and completes silently, so only a
  // loose lower bound is meaningful here (the header sweep below pins the
  // structural bytes exhaustively).
  EXPECT_GT(threw, 0u);
}

TEST(NetFuzzTest, HeaderBitFlipsAlwaysFailLoudly) {
  const std::vector<std::uint8_t> session = valid_session_bytes();
  // Flip every bit of the hello header's magic and length fields: each
  // one must be a clean error (magic mismatch, unknown type, cap breach,
  // or a downstream decode failure) — never an attempt to honor it.
  for (const std::size_t byte :
       {0u, 1u, 2u, 3u, 8u, 9u, 10u, 11u, 12u, 13u, 14u, 15u}) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> bytes = session;
      bytes[byte] ^= static_cast<std::uint8_t>(1 << bit);
      MemStream wire(std::move(bytes));
      EXPECT_THROW(serve_worker(wire), Error)
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(NetFuzzTest, OversizedShardLengthRejectedBeforeAllocation) {
  MemStream wire;
  send_frame(wire, MsgType::hello, encode_u32(kProtoVersion));
  // A load_shard header claiming 2^62 payload bytes: the cap check fires
  // on the header alone (a resize that large would abort the process, so
  // surviving this test proves no allocation was attempted).
  std::uint8_t header[16];
  const std::uint32_t magic = kFrameMagic;
  const std::uint32_t type = static_cast<std::uint32_t>(MsgType::load_shard);
  const std::uint64_t len = 1ull << 62;
  std::memcpy(header, &magic, 4);
  std::memcpy(header + 4, &type, 4);
  std::memcpy(header + 8, &len, 8);
  wire.write_all(header, sizeof header);
  MemStream session(wire.written());
  try {
    serve_worker(session);
    FAIL() << "oversized shard length must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("cap"), std::string::npos);
  }
}

TEST(NetFuzzTest, WorkerReportsErrorBeforeDying) {
  // Wrong protocol version: the worker must send error_report before
  // throwing, so the root sees the reason instead of a dead socket.
  MemStream wire;
  send_frame(wire, MsgType::hello, encode_u32(kProtoVersion + 7));
  MemStream session(wire.written());
  EXPECT_THROW(serve_worker(session), Error);
  MemStream replies(session.written());
  const Frame report = recv_frame(replies, kMaxControlPayload);
  EXPECT_EQ(report.type, MsgType::error_report);
  const std::string text(report.payload.begin(), report.payload.end());
  EXPECT_NE(text.find("version"), std::string::npos);
}

TEST(NetFuzzTest, CorruptedShardPayloadRejected) {
  const Model model = Model::init(fuzz_config(), 5);
  const std::vector<std::uint8_t> shard = shard_to_bytes(make_shard(model, 1, 2));
  // The leading bytes carry magic, version, kind, worker ids, and the
  // config — every bit of those is load-bearing for geometry validation.
  for (std::size_t at = 0; at < 16; ++at) {
    std::vector<std::uint8_t> bytes = shard;
    bytes[at] ^= 0x40;
    EXPECT_THROW(shard_from_bytes(bytes), Error) << "byte " << at;
  }
  // Truncations anywhere must throw (interior length prefixes re-checked
  // against the buffer end by BinaryReader).
  for (std::size_t cut : {0u, 1u, 15u, 16u, 100u}) {
    ASSERT_LT(cut, shard.size());
    EXPECT_THROW(
        shard_from_bytes(std::vector<std::uint8_t>(shard.begin(),
                                                   shard.end() - 1 - cut)),
        Error)
        << "truncated by " << cut + 1;
  }
}

TEST(NetFuzzTest, ProjectPayloadFuzz) {
  Matrix x(2, 16);
  const std::vector<std::uint8_t> good =
      encode_project(ProjectOp::batch, 1, LinearKind::up_proj, x);
  // Truncations: every prefix fails.
  for (std::size_t cut = 0; cut < good.size(); cut += 3) {
    EXPECT_THROW(decode_project(std::vector<std::uint8_t>(
                     good.begin(), good.begin() + cut)),
                 Error);
  }
  // Oversized interior dimensions: claim a giant matrix in a small
  // payload — the division-form size check rejects it without allocating.
  std::vector<std::uint8_t> huge = good;
  const std::uint64_t big = 1ull << 58;
  // rows field of the matrix: after op/layer/kind (12) + trace context (16)
  std::memcpy(huge.data() + 28, &big, 8);
  EXPECT_THROW(decode_project(huge), Error);
}

TEST(NetFuzzTest, ProjectTraceContextFuzz) {
  Matrix x(2, 16);
  // Round trip with a trace context attached.
  const std::vector<std::uint8_t> traced = encode_project(
      ProjectOp::batch, 1, LinearKind::up_proj, x, 0xabcdef12u, 0x77u);
  const ProjectRequest req = decode_project(traced);
  EXPECT_EQ(req.trace_id, 0xabcdef12u);
  EXPECT_EQ(req.parent_span_id, 0x77u);

  // Half-set trace context (id without parent and vice versa) is exactly
  // what a bit flip inside the trace fields produces — rejected, not
  // propagated into a nonsense trace.
  std::vector<std::uint8_t> half = encode_project(
      ProjectOp::batch, 1, LinearKind::up_proj, x, 0, 0);
  const std::uint64_t one = 1;
  std::memcpy(half.data() + 12, &one, 8);  // trace_id = 1, parent = 0
  EXPECT_THROW(decode_project(half), Error);
  std::memcpy(half.data() + 12, &req.trace_id, 8);
  std::vector<std::uint8_t> half2 = half;
  std::uint64_t zero = 0;
  std::memcpy(half2.data() + 12, &zero, 8);
  std::memcpy(half2.data() + 20, &one, 8);  // parent = 1, trace_id = 0
  EXPECT_THROW(decode_project(half2), Error);

  // Truncations inside the trace fields fail cleanly.
  for (std::size_t cut = 13; cut <= 27; cut += 5) {
    EXPECT_THROW(decode_project(std::vector<std::uint8_t>(
                     traced.begin(), traced.begin() + cut)),
                 Error)
        << "cut at " << cut;
  }
}

TEST(NetFuzzTest, TraceSpanPayloadFuzz) {
  std::vector<WorkerSpan> spans(3);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    spans[i].name = static_cast<SpanName>(i);
    spans[i].start_ns = 100 * i;
    spans[i].dur_ns = 10;
    spans[i].trace_id = 1;
    spans[i].span_id = i + 1;
    spans[i].parent_span_id = 1;
  }
  const std::vector<std::uint8_t> good = encode_trace_spans(spans);
  const std::vector<WorkerSpan> back = decode_trace_spans(good);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[2].name, SpanName::send);

  // Span-count cap: a count claiming more than kMaxTraceSpans is rejected
  // before any allocation sized by it.
  std::vector<std::uint8_t> oversized = good;
  const std::uint64_t big = static_cast<std::uint64_t>(kMaxTraceSpans) + 1;
  std::memcpy(oversized.data(), &big, 8);
  EXPECT_THROW(decode_trace_spans(oversized), Error);

  // Count/length mismatch in both directions.
  std::vector<std::uint8_t> wrong_count = good;
  const std::uint64_t two = 2;
  std::memcpy(wrong_count.data(), &two, 8);
  EXPECT_THROW(decode_trace_spans(wrong_count), Error);
  std::vector<std::uint8_t> truncated(good.begin(), good.end() - 7);
  EXPECT_THROW(decode_trace_spans(truncated), Error);

  // Unknown span-name discriminator.
  std::vector<std::uint8_t> bad_name = good;
  const std::uint32_t junk = 9;
  std::memcpy(bad_name.data() + 8, &junk, 4);  // first record's name code
  EXPECT_THROW(decode_trace_spans(bad_name), Error);
}

TEST(NetFuzzTest, WorkerShipsSpansOnTraceFlush) {
  // A traced session: the projection carries a trace context, so the
  // trace_flush must come back with that projection's recv/compute/send
  // spans.
  MemStream wire;
  send_frame(wire, MsgType::hello, encode_u32(kProtoVersion));
  const Model model = Model::init(fuzz_config(), 5);
  send_frame(wire, MsgType::load_shard,
             shard_to_bytes(make_shard(model, 0, 2)));
  Matrix x(1, fuzz_config().dim);
  send_frame(wire, MsgType::project,
             encode_project(ProjectOp::single, 0, LinearKind::q_proj, x,
                            /*trace_id=*/5, /*parent_span_id=*/5));
  send_frame(wire, MsgType::trace_flush, {});
  send_frame(wire, MsgType::shutdown, {});
  MemStream session(wire.written());
  EXPECT_NO_THROW(serve_worker(session));

  MemStream replies(session.written());
  expect_frame(replies, MsgType::hello_ack, kMaxControlPayload);
  expect_frame(replies, MsgType::shard_ready, kMaxControlPayload);
  expect_frame(replies, MsgType::project_out, kMaxProjectPayload);
  const Frame trace = recv_frame(replies, kMaxTracePayload);
  ASSERT_EQ(trace.type, MsgType::trace_data);
  const std::vector<WorkerSpan> spans = decode_trace_spans(trace.payload);
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, SpanName::recv);
  EXPECT_EQ(spans[1].name, SpanName::compute);
  EXPECT_EQ(spans[2].name, SpanName::send);
  for (const WorkerSpan& s : spans) {
    EXPECT_EQ(s.trace_id, 5u);
    EXPECT_EQ(s.parent_span_id, 5u);
    EXPECT_NE(s.span_id, 0u);
  }
  expect_frame(replies, MsgType::bye, kMaxControlPayload);
}

TEST(NetFuzzTest, HelloAckLegacyAndMalformedSizes) {
  // A v1 peer's 4-byte ack still decodes (so the version mismatch error
  // is reported as such), any other size is malformed.
  HelloAck legacy = decode_hello_ack(encode_u32(1));
  EXPECT_EQ(legacy.version, 1u);
  EXPECT_EQ(legacy.clock_ns, 0u);

  HelloAck full;
  full.version = kProtoVersion;
  full.clock_ns = 123456789;
  const HelloAck back = decode_hello_ack(encode_hello_ack(full));
  EXPECT_EQ(back.version, kProtoVersion);
  EXPECT_EQ(back.clock_ns, 123456789u);

  for (const std::size_t n : {0u, 3u, 5u, 11u, 13u, 100u}) {
    EXPECT_THROW(decode_hello_ack(std::vector<std::uint8_t>(n, 0)), Error)
        << "size " << n;
  }
}

}  // namespace
}  // namespace aptq::net
