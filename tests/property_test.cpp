// Property-based sweeps over the quantization stack: invariants that must
// hold across random instances, bit widths, group sizes and formats.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "quant/gptq.hpp"
#include "quant/qformat.hpp"
#include "quant/hessian.hpp"
#include "tensor/cholesky.hpp"
#include "tensor/ops.hpp"

namespace aptq {
namespace {

// ---- quantization grid properties across (bits, group, symmetric) -------

struct GridCase {
  int bits;
  std::size_t group;
  bool symmetric;
};

class GridProperties : public ::testing::TestWithParam<GridCase> {};

TEST_P(GridProperties, IdempotentAndBounded) {
  const auto [bits, group, symmetric] = GetParam();
  QuantSpec spec;
  spec.bits = bits;
  spec.group_size = group;
  spec.symmetric = symmetric;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(1000 + seed);
    Matrix w = Matrix::randn(5, 24, rng, 0.0f, rng.uniform(0.1f, 3.0f));
    const Matrix orig = w;
    quantize_dequantize_matrix(w, spec);
    // Bounded error: every entry within one step of its group's scale.
    for (std::size_t r = 0; r < w.rows(); ++r) {
      const auto params = quantize_dequantize_row(
          Matrix(orig).row(r), spec);
      const std::size_t g = group == 0 ? 24 : group;
      for (std::size_t c = 0; c < w.cols(); ++c) {
        const float scale = params[c / g].scale;
        EXPECT_LE(std::fabs(w(r, c) - orig(r, c)),
                  scale * (symmetric ? 1.01f : 0.51f) + 1e-6f)
            << "seed " << seed;
      }
    }
    // Idempotent: re-quantizing is a fixed point for asymmetric grids
    // (the refit grid reproduces scale and zero-point exactly). Symmetric
    // grids clip the positive extreme to (2^{b-1}−1)·scale, so a refit
    // shrinks the scale — idempotence genuinely does not hold there.
    if (!symmetric) {
      Matrix again = w;
      quantize_dequantize_matrix(again, spec);
      for (std::size_t i = 0; i < w.size(); ++i) {
        EXPECT_NEAR(again.flat()[i], w.flat()[i], 1e-4f);
      }
    }
  }
}

TEST_P(GridProperties, SignAndZeroPreservation) {
  const auto [bits, group, symmetric] = GetParam();
  QuantSpec spec;
  spec.bits = bits;
  spec.group_size = group;
  spec.symmetric = symmetric;
  Rng rng(77);
  Matrix w = Matrix::randn(4, 16, rng);
  w(0, 3) = 0.0f;
  w(2, 7) = 0.0f;
  Matrix q = w;
  quantize_dequantize_matrix(q, spec);
  // Exact zeros stay exact (the grid contains zero by construction).
  EXPECT_EQ(q(0, 3), 0.0f);
  EXPECT_EQ(q(2, 7), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GridProperties,
    ::testing::Values(GridCase{2, 8, false}, GridCase{2, 0, true},
                      GridCase{3, 8, false}, GridCase{4, 16, false},
                      GridCase{4, 0, true}, GridCase{8, 8, false}));

// ---- round-trip sweep across every supported bit width -------------------

// Row length 23 with groups {5, 8, 0}: 23 is divisible by none of them, so
// every case exercises a short tail group at the row boundary.
class BitWidthRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(BitWidthRoundTrip, ErrorWithinHalfStepPerGroup) {
  const int bits = GetParam();
  for (const std::size_t group : {std::size_t{5}, std::size_t{8},
                                  std::size_t{0}}) {
    QuantSpec spec;
    spec.bits = bits;
    spec.group_size = group;
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      Rng rng(6000 + seed);
      std::vector<float> row(23);
      for (auto& v : row) {
        v = rng.normal(0.0f, rng.uniform(0.2f, 2.0f));
      }
      const std::vector<float> orig = row;
      const auto params = quantize_dequantize_row(row, spec);
      ASSERT_EQ(params.size(), group_count(row.size(), spec));
      const std::size_t g = group == 0 ? row.size() : group;
      for (std::size_t c = 0; c < row.size(); ++c) {
        // Round-to-nearest on an affine grid spanning the group's min..max:
        // at most half a step of error for values inside the span.
        const float step = params[c / g].scale;
        EXPECT_LE(std::fabs(row[c] - orig[c]), 0.5f * step + 1e-6f)
            << "bits=" << bits << " group=" << group << " seed=" << seed
            << " col=" << c;
      }
    }
  }
}

TEST_P(BitWidthRoundTrip, DoubleQuantizationIsIdempotent) {
  const int bits = GetParam();
  for (const std::size_t group : {std::size_t{5}, std::size_t{0}}) {
    QuantSpec spec;
    spec.bits = bits;
    spec.group_size = group;
    Rng rng(6100 + static_cast<std::uint64_t>(bits));
    std::vector<float> row(23);
    for (auto& v : row) {
      v = rng.normal(0.0f, 1.0f);
    }
    quantize_dequantize_row(row, spec);
    std::vector<float> again = row;
    quantize_dequantize_row(again, spec);
    for (std::size_t c = 0; c < row.size(); ++c) {
      EXPECT_NEAR(again[c], row[c], 1e-4f)
          << "bits=" << bits << " group=" << group << " col=" << c;
    }
  }
}

TEST_P(BitWidthRoundTrip, TailGroupGetsItsOwnScale) {
  // The 3-element tail of a 23-wide row under group 5 must be fit from its
  // own min/max, not the previous group's: plant a tail with a much smaller
  // range and check its error bound tracks the tail scale.
  const int bits = GetParam();
  QuantSpec spec;
  spec.bits = bits;
  spec.group_size = 5;
  std::vector<float> row(23);
  Rng rng(6200);
  for (std::size_t c = 0; c < 20; ++c) {
    row[c] = rng.normal(0.0f, 5.0f);  // loud leading groups
  }
  for (std::size_t c = 20; c < 23; ++c) {
    row[c] = rng.normal(0.0f, 0.01f);  // quiet tail
  }
  const std::vector<float> orig = row;
  const auto params = quantize_dequantize_row(row, spec);
  ASSERT_EQ(params.size(), 5u);
  const float tail_step = params[4].scale;
  for (std::size_t c = 20; c < 23; ++c) {
    EXPECT_LE(std::fabs(row[c] - orig[c]), 0.5f * tail_step + 1e-7f);
  }
  // A tail reusing a loud group's scale would show a much larger step.
  EXPECT_LT(tail_step, params[0].scale * 0.1f);
}

INSTANTIATE_TEST_SUITE_P(AllBitWidths, BitWidthRoundTrip,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8));

TEST(Fp4Properties, RoundTripBoundAndIdempotence) {
  QuantSpec spec;
  spec.format = QFormat::fp4_e2m1;
  spec.bits = 4;
  for (const std::size_t group : {std::size_t{5}, std::size_t{8},
                                  std::size_t{0}}) {
    spec.group_size = group;
    Rng rng(6300 + group);
    std::vector<float> row(23);
    for (auto& v : row) {
      v = rng.normal(0.0f, 1.5f);
    }
    const std::vector<float> orig = row;
    const auto params = quantize_dequantize_row(row, spec);
    const std::size_t g = group == 0 ? row.size() : group;
    for (std::size_t c = 0; c < row.size(); ++c) {
      // E2M1 magnitudes are {0, .5, 1, 1.5, 2, 3, 4, 6}·scale; the widest
      // gap (4..6) gives a worst-case error of one scale unit.
      EXPECT_LE(std::fabs(row[c] - orig[c]), params[c / g].scale * 1.01f)
          << "group=" << group << " col=" << c;
    }
    std::vector<float> again = row;
    quantize_dequantize_row(again, spec);
    for (std::size_t c = 0; c < row.size(); ++c) {
      EXPECT_NEAR(again[c], row[c], 1e-4f) << "group=" << group;
    }
  }
}

// ---- Hessian properties --------------------------------------------------

TEST(HessianProperties, AlwaysPsdAcrossRandomData) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    Rng rng(2000 + seed);
    const std::size_t d = 4 + rng.index(12);
    const std::size_t n = 2 + rng.index(40);
    const Matrix x = Matrix::randn(n, d, rng);
    HessianAccumulator acc(d);
    std::vector<float> gamma(n);
    for (auto& g : gamma) {
      g = rng.uniform(0.0f, 3.0f);
    }
    acc.add_matrix(x, gamma);
    // Damped Hessian always factorizes (PSD + jitter ⇒ PD).
    EXPECT_NO_THROW(gptq_inverse_factor(acc.finalized_damped(0.01)))
        << "seed " << seed << " d=" << d << " n=" << n;
    // zᵀHz ≥ 0 for arbitrary z on the raw Hessian.
    const Matrix h = acc.finalized();
    std::vector<float> z(d), hz(d);
    for (auto& v : z) {
      v = rng.normal(0.0f, 1.0f);
    }
    for (std::size_t i = 0; i < d; ++i) {
      hz[i] = dot(h.row(i), z);
    }
    EXPECT_GE(dot(z, hz), -1e-3f);
  }
}

// ---- GPTQ vs RTN dominance across random layers --------------------------

TEST(SolverProperties, GptqNeverLosesToRtnOnObjective) {
  int wins = 0, ties = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(3000 + seed);
    const std::size_t d_in = 8 + rng.index(24);
    const Matrix w = Matrix::randn(6, d_in, rng);
    const Matrix mix = Matrix::randn(d_in, d_in, rng, 0.0f,
                                     1.0f / std::sqrt((float)d_in));
    const Matrix x = matmul(Matrix::randn(64, d_in, rng), mix);
    HessianAccumulator acc(d_in);
    acc.add_matrix(x);
    const Matrix h = acc.finalized();
    GptqConfig cfg;
    cfg.spec.bits = 2 + static_cast<int>(rng.index(3));
    cfg.spec.group_size = 8;
    const double gptq_err =
        reconstruction_error(w, gptq_quantize(w, h, cfg).weight, h);
    const double rtn_err =
        reconstruction_error(w, rtn_quantize(w, cfg.spec), h);
    if (gptq_err < rtn_err * 0.999) {
      ++wins;
    } else if (gptq_err <= rtn_err * 1.02) {
      ++ties;
    }
  }
  // GPTQ must win or tie every instance, and win most.
  EXPECT_EQ(wins + ties, 10);
  EXPECT_GE(wins, 7);
}

// ---- RoPE / Cholesky structural sweeps -----------------------------------

TEST(RopeProperties, OrthogonalAtEveryOffsetAndWidth) {
  Rng rng(4000);
  for (const std::size_t hd : {2u, 4u, 8u}) {
    for (const std::size_t offset : {0u, 5u, 100u}) {
      Matrix x = Matrix::randn(6, hd * 2, rng);
      const double norm_before = sum_squares(x);
      Matrix original = x;
      rope_apply(x, hd, 10000.0f, false, offset);
      EXPECT_NEAR(sum_squares(x), norm_before, 1e-3);
      rope_apply(x, hd, 10000.0f, true, offset);
      EXPECT_LT(frobenius_distance(x, original), 1e-4);
    }
  }
}

TEST(CholeskyProperties, FactorIdentityAcrossSizes) {
  for (const std::size_t n : {2u, 5u, 17u, 40u}) {
    Rng rng(5000 + n);
    const Matrix a = Matrix::randn(n, n + 2, rng);
    Matrix h(n, n);
    gemm(a, Trans::no, a, Trans::yes, h);
    for (std::size_t i = 0; i < n; ++i) {
      h(i, i) += 0.3f;
    }
    const Matrix u = gptq_inverse_factor(h);
    const Matrix utu = matmul(u, u, Trans::yes, Trans::no);
    const Matrix should_be_identity = matmul(utu, h);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        EXPECT_NEAR(should_be_identity(i, j), i == j ? 1.0f : 0.0f, 5e-2f)
            << "n=" << n;
      }
    }
  }
}

}  // namespace
}  // namespace aptq
