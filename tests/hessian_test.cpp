// Unit tests for src/quant/hessian: accumulation identities, γ-weighting,
// normalization, damping/dead columns, traces and the Hutchinson estimator.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "quant/hessian.hpp"
#include "tensor/ops.hpp"

namespace aptq {
namespace {

TEST(Hessian, MatchesTwoXtX) {
  Rng rng(1);
  const Matrix x = Matrix::randn(20, 6, rng);
  HessianAccumulator acc(6);
  acc.add_matrix(x);
  const Matrix h = acc.finalized();
  // H = 2/N · XᵀX
  Matrix ref(6, 6);
  gemm(x, Trans::yes, x, Trans::no, ref, 2.0f / 20.0f);
  for (std::size_t i = 0; i < h.size(); ++i) {
    EXPECT_NEAR(h.flat()[i], ref.flat()[i], 1e-4f);
  }
}

TEST(Hessian, IsSymmetric) {
  Rng rng(2);
  const Matrix x = Matrix::randn(15, 8, rng);
  HessianAccumulator acc(8);
  acc.add_matrix(x);
  const Matrix h = acc.finalized();
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      EXPECT_EQ(h(i, j), h(j, i));
    }
  }
}

TEST(Hessian, GammaWeightsScaleContributions) {
  Rng rng(3);
  const Matrix x = Matrix::randn(10, 4, rng);
  // All-gamma-2 must equal 2× all-gamma-1.
  HessianAccumulator a1(4), a2(4);
  std::vector<float> ones(10, 1.0f), twos(10, 2.0f);
  a1.add_matrix(x, ones);
  a2.add_matrix(x, twos);
  const Matrix h1 = a1.finalized();
  const Matrix h2 = a2.finalized();
  for (std::size_t i = 0; i < h1.size(); ++i) {
    EXPECT_NEAR(h2.flat()[i], 2.0f * h1.flat()[i], 1e-4f);
  }
}

TEST(Hessian, ZeroGammaTokenIsIgnoredInValues) {
  Rng rng(4);
  const Matrix x = Matrix::randn(2, 4, rng);
  HessianAccumulator with_both(4);
  std::vector<float> gamma = {1.0f, 0.0f};
  with_both.add_matrix(x, gamma);
  HessianAccumulator only_first(4);
  only_first.add_token(x.row(0));
  // Same token count normalization differs (2 vs 1); compare unnormalized.
  const Matrix h_both = with_both.finalized();   // /2
  const Matrix h_first = only_first.finalized();  // /1
  for (std::size_t i = 0; i < h_both.size(); ++i) {
    EXPECT_NEAR(2.0f * h_both.flat()[i], h_first.flat()[i], 1e-4f);
  }
}

TEST(Hessian, RejectsMisuse) {
  HessianAccumulator acc(4);
  EXPECT_THROW(acc.finalized(), Error);       // no tokens yet
  EXPECT_THROW(acc.average_trace(), Error);
  const std::vector<float> wrong(3, 0.0f);
  EXPECT_THROW(acc.add_token(wrong), Error);  // width mismatch
  const std::vector<float> ok(4, 1.0f);
  EXPECT_THROW(acc.add_token(ok, -1.0f), Error);  // negative gamma
  Rng rng(5);
  const Matrix x = Matrix::randn(6, 4, rng);
  std::vector<float> bad_gamma(5, 1.0f);
  EXPECT_THROW(acc.add_matrix(x, bad_gamma), Error);
}

TEST(Hessian, AverageTraceMatchesFinalizedTrace) {
  Rng rng(6);
  const Matrix x = Matrix::randn(30, 5, rng);
  HessianAccumulator acc(5);
  acc.add_matrix(x);
  EXPECT_NEAR(acc.average_trace(), diag_mean(acc.finalized()), 1e-5);
}

TEST(Hessian, DampingLiftsDiagonal) {
  Rng rng(7);
  const Matrix x = Matrix::randn(10, 4, rng);
  HessianAccumulator acc(4);
  acc.add_matrix(x);
  const Matrix h = acc.finalized();
  const Matrix hd = acc.finalized_damped(0.01);
  const float jitter = static_cast<float>(0.01 * diag_mean(h));
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(hd(i, i), h(i, i) + jitter, 1e-5f);
    for (std::size_t j = 0; j < 4; ++j) {
      if (i != j) {
        EXPECT_EQ(hd(i, j), h(i, j));
      }
    }
  }
}

TEST(Hessian, DeadColumnsPinnedByDamping) {
  // Inputs that never activate dimension 2.
  Matrix x(5, 4);
  Rng rng(8);
  for (std::size_t t = 0; t < 5; ++t) {
    x(t, 0) = rng.normal(0.0f, 1.0f);
    x(t, 1) = rng.normal(0.0f, 1.0f);
    x(t, 3) = rng.normal(0.0f, 1.0f);
  }
  HessianAccumulator acc(4);
  acc.add_matrix(x);
  const Matrix h = acc.finalized();
  EXPECT_EQ(h(2, 2), 0.0f);
  const auto dead = dead_columns(h);
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0], 2u);
  const Matrix hd = acc.finalized_damped(0.01);
  EXPECT_GT(hd(2, 2), 0.9f);
}

TEST(Hutchinson, ConvergesToTrueTrace) {
  Rng rng(9);
  const Matrix a = Matrix::randn(12, 12, rng);
  Matrix h(12, 12);
  gemm(a, Trans::no, a, Trans::yes, h);
  const double true_trace = trace(h);
  Rng probe_rng(10);
  const double est = hutchinson_trace(h, 2000, probe_rng);
  EXPECT_NEAR(est, true_trace, 0.15 * std::fabs(true_trace));
}

TEST(Hutchinson, ExactForDiagonalMatrices) {
  // For diagonal H, zᵀHz = Σ d_i z_i² = tr(H) exactly for Rademacher z.
  Matrix h(5, 5);
  for (std::size_t i = 0; i < 5; ++i) {
    h(i, i) = static_cast<float>(i + 1);
  }
  Rng rng(11);
  EXPECT_NEAR(hutchinson_trace(h, 3, rng), 15.0, 1e-4);
}

TEST(Hutchinson, SymmetricMatvecAgreesWithDenseEstimator) {
  // hutchinson_trace now walks only the diagonal + upper triangle via
  // symv_upper. Replaying the same probe sequence through a dense matvec
  // must give the same estimate up to float-accumulation tolerance.
  Rng rng(13);
  const Matrix a = Matrix::randn(17, 17, rng);
  Matrix h(17, 17);
  gemm(a, Trans::no, a, Trans::yes, h);  // symmetric
  const std::size_t probes = 64;
  Rng dense_rng(14);
  std::vector<float> z(17), hz(17);
  double dense_est = 0.0;
  for (std::size_t p = 0; p < probes; ++p) {
    for (auto& v : z) {
      v = dense_rng.uniform() < 0.5 ? -1.0f : 1.0f;
    }
    for (std::size_t i = 0; i < 17; ++i) {
      double acc = 0.0;
      for (std::size_t j = 0; j < 17; ++j) {
        acc += static_cast<double>(h(i, j)) * z[j];
      }
      hz[i] = static_cast<float>(acc);
    }
    dense_est += dot(z, hz);
  }
  dense_est /= static_cast<double>(probes);
  Rng sym_rng(14);  // same seed → same probe sequence
  const double sym_est = hutchinson_trace(h, probes, sym_rng);
  EXPECT_NEAR(sym_est, dense_est, 1e-2 * std::max(1.0, std::fabs(dense_est)));
}

TEST(Hutchinson, RejectsMisuse) {
  Rng rng(12);
  const Matrix rect(2, 3);
  EXPECT_THROW(hutchinson_trace(rect, 4, rng), Error);
  const Matrix sq(3, 3);
  EXPECT_THROW(hutchinson_trace(sq, 0, rng), Error);
}

}  // namespace
}  // namespace aptq
