// Unit tests for src/model: configuration validation, initialization,
// forward-pass structure (shapes, determinism, causality), the parameter
// registry, checkpoint round-trips, and activation fake-quant.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "model/backward.hpp"
#include "model/forward.hpp"
#include "model/model.hpp"
#include "tensor/ops.hpp"

namespace aptq {
namespace {

ModelConfig tiny_config() {
  ModelConfig c;
  c.vocab_size = 12;
  c.dim = 8;
  c.n_layers = 2;
  c.n_heads = 2;
  c.ffn_dim = 16;
  return c;
}

TokenSeq ramp_tokens(std::size_t n, std::size_t vocab) {
  TokenSeq t(n);
  for (std::size_t i = 0; i < n; ++i) {
    t[i] = static_cast<TokenId>((i * 5 + 3) % vocab);
  }
  return t;
}

TEST(ModelConfig, ValidatesConsistency) {
  EXPECT_NO_THROW(tiny_config().validate());
  auto c = tiny_config();
  c.n_heads = 3;  // 8 % 3 != 0
  EXPECT_THROW(c.validate(), Error);
  c = tiny_config();
  c.dim = 4;
  c.n_heads = 4;  // head_dim 1 is odd
  EXPECT_THROW(c.validate(), Error);
  c = tiny_config();
  c.n_layers = 0;
  EXPECT_THROW(c.validate(), Error);
}

TEST(Model, InitIsDeterministicAndCounted) {
  const Model a = Model::init(tiny_config(), 3);
  const Model b = Model::init(tiny_config(), 3);
  EXPECT_TRUE(a.tok_embed == b.tok_embed);
  EXPECT_TRUE(a.blocks[1].wv == b.blocks[1].wv);
  const Model c = Model::init(tiny_config(), 4);
  EXPECT_FALSE(a.tok_embed == c.tok_embed);

  // vocab*d + L*(2d + 4d² + 2*d*f + f*d) + d + d*vocab
  const std::size_t expected = 12 * 8 +
                               2 * (2 * 8 + 4 * 64 + 3 * 8 * 16) +
                               8 + 8 * 12;
  EXPECT_EQ(a.parameter_count(), expected);
}

TEST(Model, LinearRegistryNamesAndKinds) {
  Model m = Model::init(tiny_config(), 5);
  const auto linears = collect_linears(m);
  ASSERT_EQ(linears.size(), 2u * 7u);
  EXPECT_EQ(linears[0].name, "layers.0.self_attn.q_proj");
  EXPECT_EQ(linears[1].name, "layers.0.self_attn.k_proj");
  EXPECT_EQ(linears[6].name, "layers.0.mlp.down_proj");
  EXPECT_EQ(linears[7].name, "layers.1.self_attn.q_proj");
  EXPECT_TRUE(is_attention(linears[3].kind));
  EXPECT_FALSE(is_attention(linears[4].kind));
  EXPECT_EQ(linears[2].weight, &m.blocks[0].wv);

  const auto with_head = collect_linears(m, /*include_lm_head=*/true);
  EXPECT_EQ(with_head.size(), 15u);
  EXPECT_EQ(with_head.back().name, "lm_head");
  EXPECT_EQ(with_head.back().weight, &m.lm_head);
}

TEST(Model, LinearKindToString) {
  EXPECT_EQ(to_string(LinearKind::k_proj), "k_proj");
  EXPECT_EQ(to_string(LinearKind::down_proj), "down_proj");
}

TEST(Model, VisitParamsCoversEverything) {
  Model m = Model::init(tiny_config(), 6);
  std::size_t total = 0;
  visit_params(m, [&total](std::span<float> s) { total += s.size(); });
  EXPECT_EQ(total, m.parameter_count());
}

TEST(Forward, LogitShapeAndDeterminism) {
  const Model m = Model::init(tiny_config(), 7);
  const TokenSeq tokens = ramp_tokens(9, 12);
  const Matrix a = model_forward(m, tokens);
  EXPECT_EQ(a.rows(), 9u);
  EXPECT_EQ(a.cols(), 12u);
  const Matrix b = model_forward(m, tokens);
  EXPECT_TRUE(a == b);
  for (const float v : a.flat()) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(Forward, RejectsBadTokens) {
  const Model m = Model::init(tiny_config(), 8);
  const TokenSeq bad = {0, 1, 99};
  EXPECT_THROW(model_forward(m, bad), Error);
  EXPECT_THROW(model_forward(m, TokenSeq{}), Error);
}

TEST(Forward, IsCausal) {
  // Changing a future token must not change earlier logits.
  const Model m = Model::init(tiny_config(), 9);
  TokenSeq tokens = ramp_tokens(8, 12);
  const Matrix base = model_forward(m, tokens);
  tokens[7] = (tokens[7] + 1) % 12;
  const Matrix perturbed = model_forward(m, tokens);
  for (std::size_t t = 0; t < 7; ++t) {
    for (std::size_t v = 0; v < 12; ++v) {
      EXPECT_FLOAT_EQ(base(t, v), perturbed(t, v)) << "t=" << t;
    }
  }
  // And the last position does change.
  double diff = 0.0;
  for (std::size_t v = 0; v < 12; ++v) {
    diff += std::fabs(base(7, v) - perturbed(7, v));
  }
  EXPECT_GT(diff, 1e-6);
}

TEST(Forward, PrefixConsistency) {
  // Running a prefix alone gives the same logits as the prefix inside a
  // longer sequence (pure causal decoding invariant).
  const Model m = Model::init(tiny_config(), 10);
  const TokenSeq full = ramp_tokens(10, 12);
  const TokenSeq prefix(full.begin(), full.begin() + 6);
  const Matrix lf = model_forward(m, full);
  const Matrix lp = model_forward(m, prefix);
  for (std::size_t t = 0; t < 6; ++t) {
    for (std::size_t v = 0; v < 12; ++v) {
      EXPECT_NEAR(lf(t, v), lp(t, v), 1e-5f);
    }
  }
}

TEST(Forward, CacheCapturesLayerInputs) {
  const Model m = Model::init(tiny_config(), 11);
  const TokenSeq tokens = ramp_tokens(7, 12);
  ForwardCache cache;
  model_forward(m, tokens, cache);
  ASSERT_EQ(cache.blocks.size(), 2u);
  EXPECT_EQ(cache.seq_len, 7u);
  for (const auto& bc : cache.blocks) {
    EXPECT_EQ(bc.normed1.rows(), 7u);
    EXPECT_EQ(bc.normed1.cols(), 8u);
    EXPECT_EQ(bc.attn_cat.rows(), 7u);
    EXPECT_EQ(bc.act.cols(), 16u);
    ASSERT_EQ(bc.probs.size(), 2u);
    // Attention rows are probability distributions.
    for (const auto& p : bc.probs) {
      for (std::size_t r = 0; r < p.rows(); ++r) {
        double sum = 0.0;
        for (const float v : p.row(r)) {
          sum += v;
        }
        EXPECT_NEAR(sum, 1.0, 1e-5);
      }
    }
  }
  EXPECT_EQ(cache.normed_final.rows(), 7u);
}

TEST(Forward, ResidualStreamIsConsistent) {
  const Model m = Model::init(tiny_config(), 12);
  const TokenSeq tokens = ramp_tokens(5, 12);
  ForwardCache cache;
  model_forward(m, tokens, cache);
  // x_out of block 0 must equal x_in of block 1.
  EXPECT_TRUE(cache.blocks[0].x_out == cache.blocks[1].x_in);
  EXPECT_TRUE(cache.blocks[0].x_in == cache.x0);
}

TEST(Forward, ActQuantChangesLogitsSlightly) {
  const Model m = Model::init(tiny_config(), 13);
  const TokenSeq tokens = ramp_tokens(6, 12);
  const Matrix exact = model_forward(m, tokens);
  ForwardOptions opt;
  opt.act_quant_bits = 8;
  const Matrix quant8 = model_forward(m, tokens, opt);
  const double d8 = frobenius_distance(exact, quant8);
  EXPECT_GT(d8, 0.0);
  EXPECT_LT(d8, 0.5);
  opt.act_quant_bits = 3;
  const Matrix quant3 = model_forward(m, tokens, opt);
  EXPECT_GT(frobenius_distance(exact, quant3), d8);
}

TEST(FakeQuantRows, RoundsToGrid) {
  Matrix m(1, 4);
  m(0, 0) = 1.0f;
  m(0, 1) = -0.33f;
  m(0, 2) = 0.5f;
  m(0, 3) = 0.0f;
  fake_quant_rows(m, 8);
  EXPECT_FLOAT_EQ(m(0, 0), 1.0f);  // max element is exactly representable
  const float scale = 1.0f / 127.0f;
  EXPECT_NEAR(m(0, 1), std::round(-0.33f / scale) * scale, 1e-6f);
  Matrix zeros(2, 3);
  EXPECT_NO_THROW(fake_quant_rows(zeros, 4));  // all-zero rows are a no-op
  EXPECT_EQ(zeros(1, 2), 0.0f);
  EXPECT_THROW(fake_quant_rows(m, 1), Error);
}

TEST(HeadSlicing, ExtractAccumulateRoundTrip) {
  Rng rng(14);
  const Matrix x = Matrix::randn(5, 8, rng);
  Matrix rebuilt(5, 8);
  for (std::size_t h = 0; h < 2; ++h) {
    accumulate_head(rebuilt, extract_head(x, h, 4), h, 4);
  }
  EXPECT_TRUE(rebuilt == x);
  EXPECT_THROW(extract_head(x, 2, 4), Error);
}

class CheckpointTest : public ::testing::Test {
 protected:
  std::string path_ = (std::filesystem::temp_directory_path() /
                       "aptq_ckpt_test.bin").string();
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CheckpointTest, RoundTripsExactly) {
  const Model m = Model::init(tiny_config(), 15);
  save_checkpoint(m, path_);
  const Model loaded = load_checkpoint(path_);
  EXPECT_TRUE(loaded.config == m.config);
  EXPECT_TRUE(loaded.tok_embed == m.tok_embed);
  EXPECT_TRUE(loaded.lm_head == m.lm_head);
  for (std::size_t i = 0; i < m.blocks.size(); ++i) {
    EXPECT_TRUE(loaded.blocks[i].wq == m.blocks[i].wq);
    EXPECT_TRUE(loaded.blocks[i].w_down == m.blocks[i].w_down);
    EXPECT_EQ(loaded.blocks[i].attn_norm, m.blocks[i].attn_norm);
  }
  // Functional equivalence.
  const TokenSeq tokens = ramp_tokens(6, 12);
  EXPECT_TRUE(model_forward(m, tokens) == model_forward(loaded, tokens));
}

TEST_F(CheckpointTest, RejectsCorruptedMagic) {
  const Model m = Model::init(tiny_config(), 16);
  save_checkpoint(m, path_);
  {
    std::ofstream f(path_, std::ios::binary | std::ios::in);
    f.seekp(0);
    const std::uint32_t bad = 0x12345678u;
    f.write(reinterpret_cast<const char*>(&bad), sizeof bad);
  }
  EXPECT_THROW(load_checkpoint(path_), Error);
}

TEST(Gradients, ZerosLikeMatchesShapes) {
  const Model m = Model::init(tiny_config(), 17);
  Gradients g = Gradients::zeros_like(m);
  std::size_t total = 0;
  visit_params(g, [&total](std::span<float> s) { total += s.size(); });
  EXPECT_EQ(total, m.parameter_count());
  EXPECT_DOUBLE_EQ(g.l2_norm(), 0.0);
}

TEST(Gradients, ScaleAndNorm) {
  const Model m = Model::init(tiny_config(), 18);
  Gradients g = Gradients::zeros_like(m);
  g.blocks[0].wq(0, 0) = 3.0f;
  g.lm_head(1, 1) = 4.0f;
  EXPECT_NEAR(g.l2_norm(), 5.0, 1e-6);
  g.scale_all(2.0f);
  EXPECT_NEAR(g.l2_norm(), 10.0, 1e-6);
  g.set_zero();
  EXPECT_DOUBLE_EQ(g.l2_norm(), 0.0);
}

}  // namespace
}  // namespace aptq
