// Tests for the extension features beyond the paper's core: AWQ scaling,
// MSE clip search, the generalized knapsack allocator, the drift
// diagnostics, and their pipeline integration.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/pipeline.hpp"
#include "model/forward.hpp"
#include "quant/baselines.hpp"
#include "quant/diagnostics.hpp"
#include "quant/mixed_precision.hpp"
#include "tensor/ops.hpp"

namespace aptq {
namespace {

ModelConfig small_config() {
  ModelConfig c;
  c.vocab_size = 16;
  c.dim = 12;
  c.n_layers = 2;
  c.n_heads = 2;
  c.ffn_dim = 16;
  return c;
}

std::vector<TokenSeq> make_segments(std::size_t n, std::size_t len,
                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TokenSeq> segs(n);
  for (auto& s : segs) {
    s.resize(len);
    for (auto& t : s) {
      t = static_cast<TokenId>(rng.index(16));
    }
  }
  return segs;
}

// ---------------------------------------------------------- clip search --

TEST(ClipSearch, NeverWorseThanMinMax) {
  Rng rng(1);
  // Heavy-tailed weights: one outlier stretches the min-max grid.
  for (int rep = 0; rep < 10; ++rep) {
    std::vector<float> v(32);
    for (auto& x : v) {
      x = rng.normal(0.0f, 1.0f);
    }
    v[rng.index(32)] *= 8.0f;  // outlier
    QuantSpec plain;
    plain.bits = 3;
    plain.group_size = 0;
    QuantSpec clipped = plain;
    clipped.mse_clip_search = true;
    const GroupParams pp = fit_group_params(v, plain);
    const GroupParams pc = fit_group_params(v, clipped);
    double mse_plain = 0.0, mse_clip = 0.0;
    for (const float x : v) {
      const double dp = quantize_dequantize_value(x, pp, plain) - x;
      const double dc = quantize_dequantize_value(x, pc, clipped) - x;
      mse_plain += dp * dp;
      mse_clip += dc * dc;
    }
    EXPECT_LE(mse_clip, mse_plain + 1e-9) << "rep " << rep;
  }
}

TEST(ClipSearch, HelpsOnOutlierRows) {
  Rng rng(2);
  Matrix w = Matrix::randn(8, 32, rng);
  for (std::size_t r = 0; r < 8; ++r) {
    w(r, rng.index(32)) *= 10.0f;
  }
  QuantSpec plain;
  plain.bits = 3;
  plain.group_size = 0;
  QuantSpec clipped = plain;
  clipped.mse_clip_search = true;
  Matrix qp = w, qc = w;
  quantize_dequantize_matrix(qp, plain);
  quantize_dequantize_matrix(qc, clipped);
  EXPECT_LT(frobenius_distance(w, qc), frobenius_distance(w, qp));
}

// ------------------------------------------------------------------ AWQ --

TEST(Awq, PreservesFunctionBeforeQuantization) {
  // With 8-bit grids the fold must be near-lossless end to end.
  const Model m = Model::init(small_config(), 3);
  const auto segs = make_segments(4, 10, 4);
  Model scaled = m;
  AwqConfig cfg;
  cfg.spec.bits = 8;
  cfg.spec.group_size = 4;
  const auto alphas =
      awq_apply(scaled, collect_activation_maxima(m, segs), cfg);
  EXPECT_EQ(alphas.size(), 2u * 2u);  // 2 groups per block
  const Matrix a = model_forward(m, segs[0]);
  const Matrix b = model_forward(scaled, segs[0]);
  EXPECT_LT(frobenius_distance(a, b) / std::sqrt(sum_squares(a)), 0.05);
}

TEST(Awq, ChosenAlphasComeFromGrid) {
  const Model m = Model::init(small_config(), 5);
  const auto segs = make_segments(3, 8, 6);
  Model scaled = m;
  AwqConfig cfg;
  cfg.spec.bits = 3;
  cfg.spec.group_size = 4;
  const auto alphas =
      awq_apply(scaled, collect_activation_maxima(m, segs), cfg);
  const std::set<double> grid(cfg.alpha_grid.begin(), cfg.alpha_grid.end());
  for (const double a : alphas) {
    EXPECT_TRUE(grid.count(a) == 1) << "alpha " << a;
  }
}

TEST(Awq, RejectsEmptyGrid) {
  Model m = Model::init(small_config(), 7);
  const auto segs = make_segments(2, 8, 8);
  const auto maxima = collect_activation_maxima(m, segs);
  AwqConfig cfg;
  cfg.alpha_grid.clear();
  EXPECT_THROW(awq_apply(m, maxima, cfg), Error);
}

// ------------------------------------------------------------- knapsack --

std::vector<LayerSensitivity> ranking_for(Model& m) {
  std::vector<LayerSensitivity> ranking;
  double s = 1.0;
  for (const auto& ref : collect_linears(m)) {
    ranking.push_back({ref.name, s, ref.weight->size(), ref.block});
    s *= 1.7;  // strictly increasing sensitivity through the network
  }
  return ranking;
}

TEST(Knapsack, RespectsBudget) {
  Model m = Model::init(small_config(), 9);
  const auto ranking = ranking_for(m);
  const std::vector<int> menu = {2, 3, 4, 8};
  for (const double target : {2.5, 3.0, 3.5, 4.0}) {
    const auto alloc = allocate_knapsack(ranking, m, target, menu);
    EXPECT_LE(average_bits(alloc, ranking), target + 1e-9)
        << "target " << target;
    // Budget is actually used: within one upgrade step of the target.
    EXPECT_GT(average_bits(alloc, ranking), target - 1.1);
  }
}

TEST(Knapsack, UsesMenuWidthsOnly) {
  Model m = Model::init(small_config(), 10);
  const auto ranking = ranking_for(m);
  const std::vector<int> menu = {2, 4, 8};
  const auto alloc = allocate_knapsack(ranking, m, 3.5, menu);
  for (const auto& [name, bits] : alloc) {
    EXPECT_TRUE(bits == 2 || bits == 4 || bits == 8) << name;
  }
}

TEST(Knapsack, SensitiveLayersGetMoreBits) {
  Model m = Model::init(small_config(), 11);
  const auto ranking = ranking_for(m);  // later layers more sensitive
  const std::vector<int> menu = {2, 4};
  const auto alloc = allocate_knapsack(ranking, m, 3.0, menu);
  // The most sensitive layer must not sit below the least sensitive one.
  EXPECT_GE(alloc.at(ranking.back().name), alloc.at(ranking.front().name));
}

TEST(Knapsack, MatchesTwoFourAllocatorStructure) {
  // With menu {2,4}, the knapsack and the paper's ratio allocator should
  // agree on which extreme layers get 4 bits when sensitivities are
  // well-separated (identical sizes, monotone sensitivity).
  Model m = Model::init(small_config(), 12);
  const auto ranking = ranking_for(m);
  const std::vector<int> menu = {2, 4};
  const auto kp = allocate_knapsack(ranking, m, 3.0, menu);
  const auto rt = allocate_by_sensitivity(ranking, 0.5);
  EXPECT_EQ(kp.at(ranking.back().name), 4);
  EXPECT_EQ(rt.at(ranking.back().name), 4);
}

TEST(Knapsack, RejectsBadArguments) {
  Model m = Model::init(small_config(), 13);
  const auto ranking = ranking_for(m);
  const std::vector<int> one = {4};
  EXPECT_THROW(allocate_knapsack(ranking, m, 4.0, one), Error);
  const std::vector<int> menu = {2, 4};
  EXPECT_THROW(allocate_knapsack(ranking, m, 1.0, menu), Error);
  EXPECT_THROW(allocate_knapsack(ranking, m, 9.0, menu), Error);
}

// ---------------------------------------------------------- diagnostics --

TEST(Diagnostics, IdenticalModelsShowZeroDrift) {
  const Model m = Model::init(small_config(), 14);
  const auto segs = make_segments(3, 10, 15);
  const DriftReport report = compare_models(m, m, segs);
  ASSERT_EQ(report.blocks.size(), 2u);
  for (const auto& b : report.blocks) {
    EXPECT_EQ(b.mse, 0.0);
  }
  EXPECT_EQ(report.logits_mse, 0.0);
  EXPECT_NEAR(report.kl_divergence, 0.0, 1e-9);
}

TEST(Diagnostics, DriftGrowsThroughDepthForEarlyPerturbation) {
  // Perturbing block 0 must show drift at block 0 that persists (residual
  // stream) into block 1.
  const Model m = Model::init(small_config(), 16);
  Model perturbed = m;
  Rng rng(17);
  for (float& v : perturbed.blocks[0].wv.flat()) {
    v += rng.normal(0.0f, 0.05f);
  }
  const auto segs = make_segments(4, 10, 18);
  const DriftReport report = compare_models(m, perturbed, segs);
  EXPECT_GT(report.blocks[0].mse, 0.0);
  EXPECT_GT(report.blocks[1].mse, 0.0);
  EXPECT_GT(report.logits_mse, 0.0);
  EXPECT_GT(report.kl_divergence, 0.0);
}

TEST(Diagnostics, LatePerturbationLeavesEarlyBlocksClean) {
  const Model m = Model::init(small_config(), 19);
  Model perturbed = m;
  Rng rng(20);
  for (float& v : perturbed.blocks[1].w_down.flat()) {
    v += rng.normal(0.0f, 0.05f);
  }
  const auto segs = make_segments(3, 8, 21);
  const DriftReport report = compare_models(m, perturbed, segs);
  EXPECT_EQ(report.blocks[0].mse, 0.0);
  EXPECT_GT(report.blocks[1].mse, 0.0);
}

TEST(Diagnostics, RendersReport) {
  const Model m = Model::init(small_config(), 22);
  const auto segs = make_segments(2, 8, 23);
  const std::string text = render_drift_report(compare_models(m, m, segs));
  EXPECT_NE(text.find("block 0"), std::string::npos);
  EXPECT_NE(text.find("logits"), std::string::npos);
  EXPECT_NE(text.find("KL"), std::string::npos);
}

TEST(Diagnostics, RejectsMismatchedConfigs) {
  const Model a = Model::init(small_config(), 24);
  auto other = small_config();
  other.ffn_dim = 24;
  const Model b = Model::init(other, 25);
  const auto segs = make_segments(2, 8, 26);
  EXPECT_THROW(compare_models(a, b, segs), Error);
  EXPECT_THROW(compare_models(a, a, {}), Error);
}

// ------------------------------------------------- pipeline integration --

class ExtensionPipelineTest : public ::testing::Test {
 protected:
  ExtensionPipelineTest()
      : corpus_("calib",
                [] {
                  MarkovSpec s;
                  s.seed = 51;
                  s.vocab_size = 16;
                  s.topics = 2;
                  s.branching = 3;
                  return s;
                }(),
                4000, 500, 52),
        model_(Model::init(small_config(), 53)) {
    config_.calib_segments = 6;
    config_.calib_seq_len = 16;
    config_.group_size = 4;
  }

  Corpus corpus_;
  Model model_;
  PipelineConfig config_;
};

TEST_F(ExtensionPipelineTest, AwqMethodRuns) {
  const QuantizedModel qm =
      quantize_model(model_, corpus_, Method::awq, config_);
  EXPECT_EQ(qm.method, "AWQ");
  EXPECT_DOUBLE_EQ(qm.average_bits(), 4.0);
  for (const float v : qm.model.blocks[0].wq.flat()) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST_F(ExtensionPipelineTest, KnapsackMethodHitsTarget) {
  PipelineConfig cfg = config_;
  cfg.ratio_high = 0.75;  // target 3.5 bits
  const QuantizedModel qm =
      quantize_model(model_, corpus_, Method::aptq_knapsack, cfg);
  EXPECT_EQ(qm.method, "APTQ-KP-75%");
  EXPECT_LE(qm.average_bits(), 3.5 + 1e-9);
  EXPECT_GE(qm.average_bits(), 2.0);
  // Menu widths beyond {2,4} are reachable.
  std::set<double> widths;
  for (const auto& layer : qm.layers) {
    widths.insert(layer.bits);
  }
  EXPECT_GE(widths.size(), 2u);
}

TEST_F(ExtensionPipelineTest, ClipSearchFlagPropagates) {
  PipelineConfig cfg = config_;
  cfg.mse_clip_search = true;
  const QuantizedModel a =
      quantize_model(model_, corpus_, Method::gptq, cfg);
  const QuantizedModel b =
      quantize_model(model_, corpus_, Method::gptq, config_);
  // The two grids differ somewhere.
  EXPECT_GT(
      frobenius_distance(a.model.blocks[0].wq, b.model.blocks[0].wq), 0.0);
}

}  // namespace
}  // namespace aptq
