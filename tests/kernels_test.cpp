// Tests for the register-tiled micro-kernel layer (tensor/kernels.hpp):
// tiled GEMM vs the retained naive reference across all four Trans variants
// and non-tile-multiple shapes, the SYRK upper-triangle fast path, the
// symmetric matvec, the GPTQ panel update, the gemv matvec fast path, the
// blocked dequant-dot kernels (qgemv/qdot/qgemv_multi) vs their naive
// oracle — and the determinism contract: bitwise-identical results at
// 1/2/4 threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "quant/qformat.hpp"
#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"
#include "util/threadpool.hpp"

namespace aptq {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  Rng rng(seed);
  return Matrix::randn(r, c, rng);
}

// Tiled and naive kernels reassociate the k-fold differently, so agreement
// is tolerance-based, scaled with the fold length.
void expect_tolerance_equal(const Matrix& got, const Matrix& want,
                            std::size_t fold_len) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  const float tol =
      1e-5f * std::sqrt(static_cast<float>(std::max<std::size_t>(fold_len, 1)))
      * 8.0f;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got.flat()[i], want.flat()[i], tol) << "flat index " << i;
  }
}

Matrix op_input(std::size_t rows, std::size_t cols, Trans t,
                std::uint64_t seed) {
  return t == Trans::no ? random_matrix(rows, cols, seed)
                        : random_matrix(cols, rows, seed);
}

class TiledGemmVariants
    : public ::testing::TestWithParam<std::tuple<Trans, Trans>> {};

TEST_P(TiledGemmVariants, MatchesReferenceOnOddShapes) {
  const auto [ta, tb] = GetParam();
  // Shapes straddle the tile geometry: below one tile, exact multiples of
  // (kGemmMR, kGemmNR), one past a multiple, and a k crossing kGemmKC.
  const std::size_t shapes[][3] = {
      {1, 1, 1},
      {3, 5, 2},
      {kGemmMR, kGemmNR, 16},
      {kGemmMR + 1, kGemmNR + 1, 17},
      {2 * kGemmMR, 3 * kGemmNR, kGemmKC},
      {37, 41, kGemmKC + 19},
  };
  for (const auto& s : shapes) {
    const std::size_t m = s[0], n = s[1], k = s[2];
    const Matrix a = op_input(m, k, ta, 11 * m + k);
    const Matrix b = op_input(k, n, tb, 13 * n + k);
    Matrix want(m, n);
    ref::gemm(a, ta, b, tb, want, 1.0f, 0.0f);
    Matrix got(m, n);
    gemm_tiled(a, ta, b, tb, got, 1.0f);
    expect_tolerance_equal(got, want, k);
  }
}

TEST_P(TiledGemmVariants, AccumulatesWithAlphaIntoExistingC) {
  const auto [ta, tb] = GetParam();
  const std::size_t m = 13, n = 19, k = 29;
  const Matrix a = op_input(m, k, ta, 31);
  const Matrix b = op_input(k, n, tb, 32);
  const Matrix c0 = random_matrix(m, n, 33);
  Matrix want = c0;
  ref::gemm(a, ta, b, tb, want, -0.7f, 1.0f);
  Matrix got = c0;
  gemm_tiled(a, ta, b, tb, got, -0.7f);
  expect_tolerance_equal(got, want, k);
}

INSTANTIATE_TEST_SUITE_P(
    AllTransposes, TiledGemmVariants,
    ::testing::Combine(::testing::Values(Trans::no, Trans::yes),
                       ::testing::Values(Trans::no, Trans::yes)));

TEST(TiledGemm, PublicGemmDispatchAgreesWithReference) {
  // Exercise all three public dispatch arms (gemv, naive, tiled) against
  // ref::gemm, with alpha/beta composition.
  const std::size_t shapes[][3] = {
      {1, 40, 64},   // matvec fast path
      {5, 7, 3},     // below the tiled threshold
      {64, 48, 56},  // tiled
  };
  for (const auto& s : shapes) {
    const std::size_t m = s[0], n = s[1], k = s[2];
    for (const Trans tb : {Trans::no, Trans::yes}) {
      const Matrix a = random_matrix(m, k, 7 * m + 1);
      const Matrix b = op_input(k, n, tb, 7 * n + 2);
      const Matrix c0 = random_matrix(m, n, 7 * k + 3);
      Matrix want = c0;
      ref::gemm(a, Trans::no, b, tb, want, 1.25f, 0.5f);
      Matrix got = c0;
      gemm(a, Trans::no, b, tb, got, 1.25f, 0.5f);
      expect_tolerance_equal(got, want, k);
    }
  }
}

TEST(TiledGemm, BitwiseIdenticalAtAnyThreadCount) {
  const Matrix a = random_matrix(130, 160, 41);
  const Matrix b = random_matrix(160, 151, 42);
  ThreadPool::set_global_threads(1);
  Matrix serial(130, 151);
  gemm_tiled(a, Trans::no, b, Trans::no, serial, 1.0f);
  for (const std::size_t threads : {2u, 4u}) {
    ThreadPool::set_global_threads(threads);
    Matrix parallel(130, 151);
    gemm_tiled(a, Trans::no, b, Trans::no, parallel, 1.0f);
    EXPECT_TRUE(parallel == serial) << "threads=" << threads;
  }
  ThreadPool::set_global_threads(1);
}

TEST(SyrkUpper, MatchesReferenceUnweighted) {
  for (const std::size_t d : {1ul, 7ul, 16ul, 37ul}) {
    const Matrix x = random_matrix(71, d, 50 + d);
    Matrix want(d, d);
    ref::syrk_upper(x, {}, 1.0f, want);
    Matrix got(d, d);
    syrk_upper(x, {}, 1.0f, got);
    expect_tolerance_equal(got, want, x.rows());
  }
}

TEST(SyrkUpper, MatchesReferenceWeightedAcrossKcBoundary) {
  const std::size_t d = 29;
  const Matrix x = random_matrix(kGemmKC + 37, d, 61);
  std::vector<float> gamma(x.rows());
  Rng rng(62);
  for (auto& g : gamma) {
    g = rng.uniform(0.0f, 2.0f);
  }
  gamma[3] = 0.0f;
  Matrix want(d, d);
  ref::syrk_upper(x, gamma, 0.5f, want);
  Matrix got(d, d);
  syrk_upper(x, gamma, 0.5f, got);
  expect_tolerance_equal(got, want, x.rows());
}

TEST(SyrkUpper, NeverTouchesStrictLowerTriangle) {
  const std::size_t d = 23;
  const Matrix x = random_matrix(40, d, 63);
  Matrix c(d, d, -7.5f);
  syrk_upper(x, {}, 1.0f, c);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      EXPECT_EQ(c(i, j), -7.5f) << "(" << i << "," << j << ")";
    }
  }
}

TEST(SyrkUpper, BitwiseIdenticalAtAnyThreadCount) {
  const std::size_t d = 45;
  const Matrix x = random_matrix(300, d, 64);
  std::vector<float> gamma(x.rows(), 1.25f);
  ThreadPool::set_global_threads(1);
  Matrix serial(d, d);
  syrk_upper(x, gamma, 1.0f, serial);
  for (const std::size_t threads : {2u, 4u}) {
    ThreadPool::set_global_threads(threads);
    Matrix parallel(d, d);
    syrk_upper(x, gamma, 1.0f, parallel);
    EXPECT_TRUE(parallel == serial) << "threads=" << threads;
  }
  ThreadPool::set_global_threads(1);
}

TEST(SymvUpper, MatchesDenseMatvecOnSymmetricInput) {
  const std::size_t d = 33;
  const Matrix a = random_matrix(d, d + 5, 70);
  Matrix h(d, d);
  gemm(a, Trans::no, a, Trans::yes, h);  // symmetric
  Rng rng(71);
  std::vector<float> z(d), got(d);
  for (auto& v : z) {
    v = rng.normal(0.0f, 1.0f);
  }
  symv_upper(h, z, got);
  for (std::size_t i = 0; i < d; ++i) {
    double want = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      want += static_cast<double>(h(i, j)) * z[j];
    }
    EXPECT_NEAR(got[i], want, 1e-3) << "row " << i;
  }
}

TEST(RankUpdate, MatchesRowAtATimeSweep) {
  for (const std::size_t r : {1ul, 3ul, 4ul, 7ul, 16ul}) {
    const std::size_t n = 37, ldu = 64;
    const Matrix u = random_matrix(r, ldu, 80 + r);
    std::vector<float> err(r);
    Rng rng(81);
    for (auto& e : err) {
      e = rng.normal(0.0f, 0.5f);
    }
    std::vector<float> want(n), got(n);
    for (std::size_t c = 0; c < n; ++c) {
      want[c] = got[c] = rng.normal(0.0f, 1.0f);
    }
    for (std::size_t j = 0; j < r; ++j) {
      for (std::size_t c = 0; c < n; ++c) {
        want[c] -= err[j] * u(j, c);
      }
    }
    kern::rank_update(got.data(), n, err.data(), r, u.data(), ldu);
    for (std::size_t c = 0; c < n; ++c) {
      EXPECT_NEAR(got[c], want[c], 1e-5f) << "r=" << r << " c=" << c;
    }
  }
}

TEST(Gemv, BothLayoutsMatchReferenceGemm) {
  const std::size_t k = 53, n = 21;
  const Matrix x = random_matrix(1, k, 90);
  for (const Trans tb : {Trans::no, Trans::yes}) {
    const Matrix b = op_input(k, n, tb, 91);
    Matrix want(1, n);
    ref::gemm(x, Trans::no, b, tb, want);
    Matrix got(1, n);
    gemm(x, Trans::no, b, tb, got);
    expect_tolerance_equal(got, want, k);
  }
}

TEST(Dot4, MatchesSerialDotWithinTolerance) {
  for (const std::size_t n : {0ul, 1ul, 3ul, 4ul, 17ul, 128ul}) {
    const Matrix a = random_matrix(1, std::max<std::size_t>(n, 1), 95 + n);
    const Matrix b = random_matrix(1, std::max<std::size_t>(n, 1), 96 + n);
    double want = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      want += static_cast<double>(a.flat()[i]) * b.flat()[i];
    }
    EXPECT_NEAR(kern::dot4(a.data(), b.data(), n), want, 1e-4)
        << "n=" << n;
  }
}

// ---- blocked dequant-dot kernels vs the naive oracle -----------------------
//
// kern::qgemv / qdot / qgemv_multi vectorize the nibble unpack and
// reassociate the k-fold, so agreement with aptq::ref's per-element loop is
// tolerance-based (pinned below); the determinism contract (bitwise equal
// at any thread count within one build) is exact.

// Pinned tolerance for one fused dequant-dot: vector-lane reassociation over
// a fold of length k on O(1)-magnitude data.
float qdot_tol(std::size_t k) {
  return 1e-5f *
         std::sqrt(static_cast<float>(std::max<std::size_t>(k, 1))) * 8.0f;
}

QuantSpec qspec(int bits, std::size_t group) {
  QuantSpec s;
  s.bits = bits;
  s.group_size = group;
  return s;
}

class QuantizedGemvOracle
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(QuantizedGemvOracle, MatchesNaiveDequantDotOnOddShapes) {
  const auto [bits, group] = GetParam();
  // Odd shapes: 1×1, single row × long K, prime dims, K < group (whole row
  // collapses to one ragged group), K a prime just past the group.
  const std::size_t shapes[][2] = {
      {1, 1}, {1, 131}, {7, 53}, {3, group > 1 ? group - 1 : 1}, {13, 67},
  };
  for (const auto& s : shapes) {
    const std::size_t rows = s[0], cols = s[1];
    const Matrix w = random_matrix(rows, cols, 7 * rows + cols + group);
    const Matrix x = random_matrix(1, cols, 19 * rows + cols);
    const QuantizedLinear packed(w, qspec(bits, group));
    ASSERT_TRUE(packed.has_kernel_path());
    const QBlock q = packed.block_view();
    std::vector<float> want(rows, 0.0f);
    ref::qgemv(q, x.data(), want.data());
    std::vector<float> got(rows, -1.0f);
    kern::qgemv(q, x.data(), got.data());
    for (std::size_t r = 0; r < rows; ++r) {
      EXPECT_NEAR(got[r], want[r], qdot_tol(cols))
          << "bits=" << bits << " group=" << group << " rows=" << rows
          << " cols=" << cols << " r=" << r;
      // qdot with on-the-fly group sums agrees with the same row.
      EXPECT_NEAR(kern::qdot(q, r, x.data(), nullptr), want[r],
                  qdot_tol(cols));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndGroups, QuantizedGemvOracle,
    ::testing::Combine(::testing::Values(3, 4, 8),
                       ::testing::Values(std::size_t{8}, std::size_t{16},
                                         std::size_t{32})));

TEST(QuantizedGemv, MultiRequestVariantMatchesPerRowGemv) {
  const std::size_t rows = 11, cols = 75, n = 5;
  const Matrix w = random_matrix(rows, cols, 201);
  const Matrix x = random_matrix(n, cols, 202);
  const QuantizedLinear packed(w, qspec(4, 16));
  const QBlock q = packed.block_view();
  std::vector<float> multi(n * rows, 0.0f);
  kern::qgemv_multi(q, x.data(), n, multi.data());
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<float> solo(rows, 0.0f);
    ref::qgemv(q, x.data() + i * cols, solo.data());
    for (std::size_t r = 0; r < rows; ++r) {
      EXPECT_NEAR(multi[i * rows + r], solo[r], qdot_tol(cols))
          << "request " << i << " row " << r;
    }
  }
}

TEST(QuantizedGemv, BitwiseIdenticalAtAnyThreadCount) {
  const std::size_t rows = 29, cols = 140;
  const Matrix w = random_matrix(rows, cols, 203);
  const Matrix x = random_matrix(4, cols, 204);
  const QuantizedLinear packed(w, qspec(4, 16));
  const QBlock q = packed.block_view();
  std::vector<float> base_gemv(rows), base_multi(4 * rows);
  ThreadPool::set_global_threads(1);
  kern::qgemv(q, x.data(), base_gemv.data());
  std::fill(base_multi.begin(), base_multi.end(), 0.0f);
  kern::qgemv_multi(q, x.data(), 4, base_multi.data());
  for (const std::size_t threads : {2ul, 4ul}) {
    ThreadPool::set_global_threads(threads);
    std::vector<float> y(rows, -7.0f);
    kern::qgemv(q, x.data(), y.data());
    EXPECT_EQ(y, base_gemv) << threads << " threads";
    std::vector<float> ym(4 * rows, 0.0f);
    kern::qgemv_multi(q, x.data(), 4, ym.data());
    EXPECT_EQ(ym, base_multi) << threads << " threads";
  }
  ThreadPool::set_global_threads(1);
}

// ---- batched decode kernels: per-row bitwise equality with the solo path --
//
// gemv_batch / qgemv_batch exist so continuous-batching decode can stack
// requests into one forward pass; the serving determinism contract requires
// row i of the batched result to be bitwise identical to running row i
// alone through gemv / qgemv. Exact EXPECT_EQ, no tolerance.

TEST(GemvBatch, EveryRowBitwiseMatchesSoloGemv) {
  // Odd shapes: n below/above the column-strip width (64), prime k, and
  // batch sizes from 1 (delegates to gemv) to 9.
  const std::size_t shapes[][2] = {{53, 21}, {128, 64}, {67, 130}, {1, 1}};
  for (const auto& s : shapes) {
    const std::size_t k = s[0], n = s[1];
    const Matrix b = random_matrix(k, n, 301 + k + n);
    for (const std::size_t batch : {1ul, 2ul, 3ul, 8ul, 9ul}) {
      const Matrix x = random_matrix(batch, k, 302 + batch);
      std::vector<float> y_batch(batch * n, 0.0f);
      kern::gemv_batch(x.data(), b.data(), batch, k, n, y_batch.data());
      for (std::size_t i = 0; i < batch; ++i) {
        std::vector<float> y_solo(n, 0.0f);
        kern::gemv(x.data() + i * k, b.data(), k, n, y_solo.data());
        for (std::size_t j = 0; j < n; ++j) {
          ASSERT_EQ(y_batch[i * n + j], y_solo[j])
              << "k=" << k << " n=" << n << " batch=" << batch << " row=" << i
              << " col=" << j;
        }
      }
    }
  }
}

TEST(GemvBatch, BitwiseIdenticalAtAnyThreadCount) {
  const std::size_t k = 96, n = 200, batch = 6;
  const Matrix b = random_matrix(k, n, 311);
  const Matrix x = random_matrix(batch, k, 312);
  ThreadPool::set_global_threads(1);
  std::vector<float> base(batch * n, 0.0f);
  kern::gemv_batch(x.data(), b.data(), batch, k, n, base.data());
  for (const std::size_t threads : {2ul, 4ul}) {
    ThreadPool::set_global_threads(threads);
    std::vector<float> y(batch * n, 0.0f);
    kern::gemv_batch(x.data(), b.data(), batch, k, n, y.data());
    EXPECT_EQ(y, base) << threads << " threads";
  }
  ThreadPool::set_global_threads(1);
}

class QuantizedGemvBatchBitwise
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(QuantizedGemvBatchBitwise, EveryRowBitwiseMatchesSoloQgemv) {
  const auto [bits, group] = GetParam();
  // Shapes cover the vector fast path (cols a multiple of the group), a
  // ragged tail group, K < group, and a single weight row.
  const std::size_t shapes[][2] = {
      {11, 4 * group}, {7, 3 * group + 3}, {3, group > 1 ? group - 1 : 1},
      {1, 2 * group}};
  for (const auto& s : shapes) {
    const std::size_t rows = s[0], cols = s[1];
    const Matrix w = random_matrix(rows, cols, 401 + rows + cols);
    const QuantizedLinear packed(w, qspec(bits, group));
    ASSERT_TRUE(packed.has_kernel_path());
    const QBlock q = packed.block_view();
    for (const std::size_t batch : {1ul, 2ul, 5ul, 9ul}) {
      const Matrix x = random_matrix(batch, cols, 402 + batch);
      std::vector<float> y_batch(batch * rows, -3.0f);
      kern::qgemv_batch(q, x.data(), batch, y_batch.data());
      for (std::size_t i = 0; i < batch; ++i) {
        std::vector<float> y_solo(rows, -5.0f);
        kern::qgemv(q, x.data() + i * cols, y_solo.data());
        for (std::size_t r = 0; r < rows; ++r) {
          ASSERT_EQ(y_batch[i * rows + r], y_solo[r])
              << "bits=" << bits << " group=" << group << " rows=" << rows
              << " cols=" << cols << " batch=" << batch << " request=" << i
              << " row=" << r;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndGroups, QuantizedGemvBatchBitwise,
    ::testing::Combine(::testing::Values(4, 8),
                       ::testing::Values(std::size_t{8}, std::size_t{16})));

TEST(QuantizedGemvBatch, BitwiseIdenticalAtAnyThreadCount) {
  const std::size_t rows = 37, cols = 96, batch = 5;
  const Matrix w = random_matrix(rows, cols, 411);
  const Matrix x = random_matrix(batch, cols, 412);
  const QuantizedLinear packed(w, qspec(4, 16));
  const QBlock q = packed.block_view();
  ThreadPool::set_global_threads(1);
  std::vector<float> base(batch * rows, 0.0f);
  kern::qgemv_batch(q, x.data(), batch, base.data());
  for (const std::size_t threads : {2ul, 4ul}) {
    ThreadPool::set_global_threads(threads);
    std::vector<float> y(batch * rows, 0.0f);
    kern::qgemv_batch(q, x.data(), batch, y.data());
    EXPECT_EQ(y, base) << threads << " threads";
  }
  ThreadPool::set_global_threads(1);
}

TEST(QuantizedGemv, XsumPrecomputationDoesNotChangeAnyBit) {
  // qgemv precomputes per-group sums of x; qdot with xsum == nullptr folds
  // them on the fly in the same fixed order — the two must agree exactly.
  const std::size_t rows = 9, cols = 100;
  const Matrix w = random_matrix(rows, cols, 205);
  const Matrix x = random_matrix(1, cols, 206);
  for (const int bits : {4, 8}) {
    const QuantizedLinear packed(w, qspec(bits, 16));
    const QBlock q = packed.block_view();
    std::vector<float> y(rows);
    kern::qgemv(q, x.data(), y.data());
    for (std::size_t r = 0; r < rows; ++r) {
      EXPECT_EQ(kern::qdot(q, r, x.data(), nullptr), y[r])
          << "bits=" << bits << " row " << r;
    }
  }
}

TEST(NearestInt, RoundsToNearestWithTiesToEven) {
  EXPECT_EQ(kern::nearest_int(0.0f), 0);
  EXPECT_EQ(kern::nearest_int(1.4f), 1);
  EXPECT_EQ(kern::nearest_int(1.6f), 2);
  EXPECT_EQ(kern::nearest_int(-1.4f), -1);
  EXPECT_EQ(kern::nearest_int(-1.6f), -2);
  // Ties go to even (banker's rounding — matches the FMA pipeline's FP
  // rounding mode, unlike lround's away-from-zero).
  EXPECT_EQ(kern::nearest_int(0.5f), 0);
  EXPECT_EQ(kern::nearest_int(1.5f), 2);
  EXPECT_EQ(kern::nearest_int(2.5f), 2);
  EXPECT_EQ(kern::nearest_int(-0.5f), 0);
  EXPECT_EQ(kern::nearest_int(-1.5f), -2);
  // Exact integers across the quantization code range.
  for (int i = -300; i <= 300; ++i) {
    EXPECT_EQ(kern::nearest_int(static_cast<float>(i)), i);
  }
}

}  // namespace
}  // namespace aptq
