// Tensor-parallel equivalence suite: sharded decode over real localhost
// sockets must be byte-identical to solo decode — workers {1,2,4} ×
// threads {1,4} × dense/packed, across prefill, incremental steps, and
// batched steps, plus the serving engine's full token streams. Also the
// shard-file round trip (split → serialize → load → reassemble →
// bit-identical saved bytes) and per-worker weight-byte accounting.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>

#include "net/sharded_model.hpp"
#include "net/socket.hpp"
#include "net/worker.hpp"
#include "obs/control.hpp"
#include "obs/trace.hpp"
#include "quant/packed_model.hpp"
#include "serve/engine.hpp"
#include "util/threadpool.hpp"

namespace aptq::net {
namespace {

ModelConfig shard_config() {
  ModelConfig c;
  c.vocab_size = 26;   // odd split under 4 workers
  c.dim = 16;
  c.n_layers = 2;
  c.n_heads = 4;
  c.n_kv_heads = 2;    // GQA: kv_dim 8, so 4-way splits get width-2 slices
  c.ffn_dim = 24;
  return c;
}

PackedModel packed_for(const Model& m) {
  QuantSpec spec;
  spec.bits = 4;
  spec.group_size = 8;
  return PackedModel::pack_uniform(m, spec);
}

/// N worker threads, each serving one session over a localhost socket.
/// take_streams() yields the root-side connections; the destructor joins
/// (workers return after the root's shutdown/bye).
class Cluster {
 public:
  explicit Cluster(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      auto listener = std::make_shared<Listener>(0);
      const std::uint16_t port = listener->port();
      threads_.emplace_back([listener] {
        Socket conn = listener->accept();
        serve_worker(conn);
      });
      streams_.push_back(
          std::make_unique<Socket>(Socket::connect("127.0.0.1", port)));
    }
  }
  ~Cluster() {
    for (std::thread& t : threads_) {
      t.join();
    }
  }
  std::vector<std::unique_ptr<Stream>> take_streams() {
    return std::move(streams_);
  }

 private:
  std::vector<std::thread> threads_;
  std::vector<std::unique_ptr<Stream>> streams_;
};

TokenSeq tokens_for(std::size_t n, std::uint64_t seed, std::size_t vocab) {
  Rng rng(seed);
  TokenSeq t(n);
  for (auto& v : t) {
    v = static_cast<TokenId>(rng.index(vocab));
  }
  return t;
}

/// Prefill + solo steps + a batched step, solo vs sharded, exact equality.
template <typename ModelT>
void check_decode_equivalence(const ModelT& model, std::size_t n_workers) {
  const ModelConfig& cfg = shard_config();
  Cluster cluster(n_workers);
  ShardedModel sharded(model, cluster.take_streams());
  EXPECT_EQ(sharded.n_workers(), n_workers);

  const TokenSeq prompt = tokens_for(6, 42, cfg.vocab_size);
  DecodeState solo_state(cfg, 64);
  DecodeState shard_state(cfg, 64);
  const Matrix solo_prefill = decode_prefill(model, prompt, solo_state);
  const Matrix shard_prefill = decode_prefill(sharded, prompt, shard_state);
  EXPECT_EQ(solo_prefill, shard_prefill);

  for (TokenId t : tokens_for(4, 7, cfg.vocab_size)) {
    const std::vector<float> solo = decode_step(model, t, solo_state);
    const std::vector<float> shard = decode_step(sharded, t, shard_state);
    EXPECT_EQ(solo, shard);
  }

  // Batched step over three fresh sessions with different depths.
  std::vector<DecodeState> solo_states;
  std::vector<DecodeState> shard_states;
  for (std::size_t i = 0; i < 3; ++i) {
    solo_states.emplace_back(cfg, 64);
    shard_states.emplace_back(cfg, 64);
    const TokenSeq p = tokens_for(2 + i, 50 + i, cfg.vocab_size);
    decode_prefill(model, p, solo_states[i]);
    decode_prefill(sharded, p, shard_states[i]);
  }
  const TokenSeq batch = tokens_for(3, 77, cfg.vocab_size);
  std::vector<DecodeState*> solo_ptrs{&solo_states[0], &solo_states[1],
                                      &solo_states[2]};
  std::vector<DecodeState*> shard_ptrs{&shard_states[0], &shard_states[1],
                                       &shard_states[2]};
  const Matrix solo_batch = decode_step_batch(model, batch, solo_ptrs);
  const Matrix shard_batch = decode_step_batch(sharded, batch, shard_ptrs);
  EXPECT_EQ(solo_batch, shard_batch);

  sharded.shutdown();
}

class ShardEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
 protected:
  ~ShardEquivalenceTest() override { ThreadPool::set_global_threads(1); }
};

TEST_P(ShardEquivalenceTest, DenseMatchesSoloBitwise) {
  const auto [n_workers, threads] = GetParam();
  ThreadPool::set_global_threads(threads);
  const Model model = Model::init(shard_config(), 3);
  check_decode_equivalence(model, n_workers);
}

TEST_P(ShardEquivalenceTest, PackedMatchesSoloBitwise) {
  const auto [n_workers, threads] = GetParam();
  ThreadPool::set_global_threads(threads);
  const Model model = Model::init(shard_config(), 3);
  const PackedModel packed = packed_for(model);
  check_decode_equivalence(packed, n_workers);
}

INSTANTIATE_TEST_SUITE_P(
    WorkersByThreads, ShardEquivalenceTest,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),
                       ::testing::Values(1u, 4u)),
    [](const auto& info) {
      return "workers" + std::to_string(std::get<0>(info.param)) +
             "_threads" + std::to_string(std::get<1>(info.param));
    });

// The serving engine's whole token streams, solo backend vs sharded
// backend, same requests: identical tokens and finish reasons.
TEST(ShardServeTest, EngineTokenStreamsMatchSolo) {
  const Model model = Model::init(shard_config(), 11);
  const PackedModel packed = packed_for(model);

  serve::ServeConfig scfg;
  scfg.max_batch = 3;
  scfg.max_context = 48;

  const auto submit_all = [&](serve::ServeEngine& engine) {
    for (std::size_t i = 0; i < 4; ++i) {
      serve::Request r;
      r.prompt = tokens_for(3 + i, 100 + i, shard_config().vocab_size);
      r.max_new_tokens = 6;
      r.seed = i;
      r.sampling.temperature = 0.8f;
      r.sampling.top_k = 5;
      engine.submit(std::move(r));
    }
    return engine.run();
  };

  serve::ServeEngine solo(serve::make_backend(packed), scfg);
  const auto solo_results = submit_all(solo);

  Cluster cluster(2);
  ShardedModel sharded(packed, cluster.take_streams());
  serve::ServeEngine dist(make_backend(sharded), scfg);
  EXPECT_EQ(dist.config().max_batch, 3u);
  const auto dist_results = submit_all(dist);
  sharded.shutdown();

  ASSERT_EQ(solo_results.size(), dist_results.size());
  for (std::size_t i = 0; i < solo_results.size(); ++i) {
    EXPECT_EQ(solo_results[i].id, dist_results[i].id);
    EXPECT_EQ(solo_results[i].tokens, dist_results[i].tokens);
    EXPECT_EQ(solo_results[i].finish, dist_results[i].finish);
  }
}

TEST(ShardServeTest, BackendNameTagsTheBase) {
  const Model model = Model::init(shard_config(), 11);
  Cluster cluster(1);
  ShardedModel sharded(model, cluster.take_streams());
  EXPECT_EQ(make_backend(sharded).name, "sharded_dense");
  sharded.shutdown();
}

TEST(ShardServeTest, ProjectionAfterShutdownThrows) {
  const Model model = Model::init(shard_config(), 11);
  Cluster cluster(2);
  ShardedModel sharded(model, cluster.take_streams());
  sharded.shutdown();
  sharded.shutdown();  // idempotent
  Matrix x(1, shard_config().dim);
  EXPECT_THROW(sharded.project(0, LinearKind::q_proj, x), Error);
}

// --- cross-shard tracing ---------------------------------------------------

std::uint64_t fixed_clock() { return 1'000'000; }

// One traced sharded session: prefill + two solo steps over 2 workers,
// returning the merged root+worker trace JSON.
std::string traced_session_json() {
  obs::reset_trace_events();
  const ModelConfig& cfg = shard_config();
  const Model model = Model::init(cfg, 3);
  Cluster cluster(2);
  ShardedModel sharded(model, cluster.take_streams());
  DecodeState shard_state(cfg, 64);
  decode_prefill(sharded, tokens_for(4, 42, cfg.vocab_size), shard_state);
  decode_step(sharded, 1, shard_state);
  decode_step(sharded, 2, shard_state);
  sharded.shutdown();
  EXPECT_EQ(sharded.remote_trace().size(), 2u);
  return obs::trace_json(sharded.remote_trace());
}

TEST(ShardTraceTest, MergedTraceHasRootAndWorkerSpans) {
  obs::set_clock_for_testing(&fixed_clock);
  obs::set_tracing(true);
  const std::string json = traced_session_json();
  obs::set_tracing(false);
  obs::set_clock_for_testing(nullptr);
  obs::reset_trace_events();

  // Root-side rpc spans and both workers' lanes land in ONE document.
  EXPECT_NE(json.find("\"rpc.q_proj\""), std::string::npos);
  EXPECT_NE(json.find("\"rpc.lm_head\""), std::string::npos);
  EXPECT_NE(json.find("\"worker.recv\""), std::string::npos);
  EXPECT_NE(json.find("\"worker.compute\""), std::string::npos);
  EXPECT_NE(json.find("\"worker.send\""), std::string::npos);
  EXPECT_NE(json.find("worker-0"), std::string::npos);
  EXPECT_NE(json.find("worker-1"), std::string::npos);
  // Worker events carry the propagated trace context.
  EXPECT_NE(json.find("\"trace\":"), std::string::npos);
  EXPECT_NE(json.find("\"parent\":"), std::string::npos);
}

// The only run-varying bytes in a pinned-clock trace are the workers'
// ephemeral localhost ports inside the process names; scrub them so the
// rest of the document can be compared bytewise.
std::string scrub_ports(std::string json) {
  std::size_t at = 0;
  const std::string host = "127.0.0.1:";
  while ((at = json.find(host, at)) != std::string::npos) {
    std::size_t end = at + host.size();
    while (end < json.size() && std::isdigit(json[end]) != 0) {
      ++end;
    }
    json.replace(at, end - at, "127.0.0.1:PORT");
    at += host.size();
  }
  return json;
}

TEST(ShardTraceTest, MergedTraceByteDeterministicUnderPinnedClock) {
  // With the observability clock pinned, trace/span ids come from
  // session-local counters and clock offsets collapse to zero, so two
  // identical sessions serialize identically — byte for byte once the
  // ephemeral worker ports in the lane names are normalized.
  obs::set_clock_for_testing(&fixed_clock);
  obs::set_tracing(true);
  const std::string first = traced_session_json();
  const std::string second = traced_session_json();
  obs::set_tracing(false);
  obs::set_clock_for_testing(nullptr);
  obs::reset_trace_events();
  EXPECT_EQ(scrub_ports(first), scrub_ports(second));
}

TEST(ShardTraceTest, TracingOffShipsNoSpans) {
  // Untraced sessions must not pay for span collection: no trace context
  // on the wire, no trace_flush at shutdown, empty remote trace.
  const ModelConfig& cfg = shard_config();
  const Model model = Model::init(cfg, 3);
  Cluster cluster(2);
  ShardedModel sharded(model, cluster.take_streams());
  DecodeState state(cfg, 64);
  decode_prefill(sharded, tokens_for(4, 42, cfg.vocab_size), state);
  sharded.shutdown();
  EXPECT_TRUE(sharded.remote_trace().empty());
}

TEST(ShardTraceTest, LinkStatsCountTrafficPerWorker) {
  const ModelConfig& cfg = shard_config();
  const Model model = Model::init(cfg, 3);
  Cluster cluster(2);
  ShardedModel sharded(model, cluster.take_streams());
  DecodeState state(cfg, 64);
  decode_prefill(sharded, tokens_for(4, 42, cfg.vocab_size), state);
  sharded.shutdown();
  ASSERT_EQ(sharded.link_stats().size(), 2u);
  for (const LinkStats& link : sharded.link_stats()) {
    EXPECT_GT(link.projections, 0u);
    EXPECT_GT(link.bytes_sent, 0u);
    EXPECT_GT(link.bytes_recv, 0u);
    // Both directions at least paid the hello/ack frame headers.
    EXPECT_GE(link.rtt_ns, 0u);
  }
  // Every worker sees the same projection fan-out count.
  EXPECT_EQ(sharded.link_stats()[0].projections,
            sharded.link_stats()[1].projections);
}

// --- shard files and reassembly --------------------------------------------

std::vector<char> file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

TEST(ShardFileTest, PackedSplitSerializeLoadReassembleBitwise) {
  const Model model = Model::init(shard_config(), 23);
  const PackedModel packed = packed_for(model);
  const auto dir = std::filesystem::temp_directory_path();
  const std::string original = (dir / "aptq_shard_orig.apq").string();
  packed.save(original);

  const std::size_t n = 4;
  std::vector<ModelShard> loaded;
  for (std::size_t w = 0; w < n; ++w) {
    const std::string path =
        (dir / ("aptq_shard_" + std::to_string(w) + ".apqs")).string();
    save_shard(make_shard(packed, w, n), path);
    loaded.push_back(load_shard(path));
    std::filesystem::remove(path);
  }
  // Reassembled model saves to the exact bytes of the unsharded file.
  const PackedModel rebuilt = reassemble_packed(loaded);
  const std::string roundtrip = (dir / "aptq_shard_rt.apq").string();
  rebuilt.save(roundtrip);
  EXPECT_EQ(file_bytes(original), file_bytes(roundtrip));
  std::filesystem::remove(original);
  std::filesystem::remove(roundtrip);
}

TEST(ShardFileTest, DenseReassemblyRestoresEveryWeight) {
  const Model model = Model::init(shard_config(), 29);
  std::vector<ModelShard> shards;
  for (std::size_t w = 0; w < 3; ++w) {
    // Through the wire codec, not just in-memory structs.
    shards.push_back(shard_from_bytes(shard_to_bytes(make_shard(model, w, 3))));
  }
  const Model rebuilt = reassemble_dense(shards);
  EXPECT_EQ(rebuilt.config, model.config);
  EXPECT_EQ(rebuilt.tok_embed, model.tok_embed);
  EXPECT_EQ(rebuilt.lm_head, model.lm_head);
  EXPECT_EQ(rebuilt.final_norm, model.final_norm);
  ASSERT_EQ(rebuilt.blocks.size(), model.blocks.size());
  for (std::size_t b = 0; b < model.blocks.size(); ++b) {
    EXPECT_EQ(rebuilt.blocks[b].wq, model.blocks[b].wq);
    EXPECT_EQ(rebuilt.blocks[b].wk, model.blocks[b].wk);
    EXPECT_EQ(rebuilt.blocks[b].wv, model.blocks[b].wv);
    EXPECT_EQ(rebuilt.blocks[b].wo, model.blocks[b].wo);
    EXPECT_EQ(rebuilt.blocks[b].w_gate, model.blocks[b].w_gate);
    EXPECT_EQ(rebuilt.blocks[b].w_up, model.blocks[b].w_up);
    EXPECT_EQ(rebuilt.blocks[b].w_down, model.blocks[b].w_down);
    EXPECT_EQ(rebuilt.blocks[b].attn_norm, model.blocks[b].attn_norm);
    EXPECT_EQ(rebuilt.blocks[b].ffn_norm, model.blocks[b].ffn_norm);
  }
}

TEST(ShardFileTest, ReassemblyRejectsIncompleteSets) {
  const Model model = Model::init(shard_config(), 29);
  std::vector<ModelShard> shards;
  shards.push_back(make_shard(model, 0, 3));
  shards.push_back(make_shard(model, 2, 3));  // worker 1 missing
  EXPECT_THROW(reassemble_dense(shards), Error);
}

// Per-worker weight bytes must shrink ~1/N — the point of sharding: each
// worker streams only its slice per decode step.
TEST(ShardWeightTest, PerWorkerBytesShrinkWithWorkerCount) {
  const Model model = Model::init(shard_config(), 31);
  const PackedModel packed = packed_for(model);
  const std::size_t solo_bytes = make_shard(packed, 0, 1).weight_bytes();
  ASSERT_GT(solo_bytes, 0u);
  for (const std::size_t n : {2u, 4u}) {
    std::size_t total = 0;
    std::size_t largest = 0;
    for (std::size_t w = 0; w < n; ++w) {
      const std::size_t b = make_shard(packed, w, n).weight_bytes();
      total += b;
      largest = std::max(largest, b);
    }
    // Slices partition the weights exactly; per-group quant params make
    // the packed sum match the solo model exactly as well.
    EXPECT_EQ(total, solo_bytes);
    // Largest shard stays near 1/N (+ slack for rounding to group rows).
    EXPECT_LE(largest, solo_bytes / n + solo_bytes / (4 * n));
  }

  // The root's handshake records what each worker reported.
  Cluster cluster(2);
  ShardedModel sharded(packed, cluster.take_streams());
  ASSERT_EQ(sharded.worker_weight_bytes().size(), 2u);
  EXPECT_EQ(sharded.worker_weight_bytes()[0] +
                sharded.worker_weight_bytes()[1],
            solo_bytes);
  sharded.shutdown();
}

}  // namespace
}  // namespace aptq::net
