// Finite-difference verification of the manual backward pass — the
// correctness gate for everything downstream (training and APTQ's
// attention-aware Hessians both consume these gradients).
#include <gtest/gtest.h>

#include <cmath>

#include "model/backward.hpp"
#include "model/forward.hpp"
#include "tensor/ops.hpp"
#include "train/loss.hpp"

namespace aptq {
namespace {

ModelConfig tiny_config() {
  ModelConfig c;
  c.vocab_size = 12;
  c.dim = 8;
  c.n_layers = 2;
  c.n_heads = 2;
  c.ffn_dim = 12;
  return c;
}

TokenSeq tokens_for(std::size_t n, std::uint64_t seed, std::size_t vocab) {
  Rng rng(seed);
  TokenSeq t(n);
  for (auto& v : t) {
    v = static_cast<TokenId>(rng.index(vocab));
  }
  return t;
}

double loss_of(const Model& m, const TokenSeq& tokens) {
  const Matrix logits = model_forward(m, tokens);
  return cross_entropy_next_token(logits, tokens, /*want_grad=*/false).loss;
}

// Central-difference numeric gradient of the scalar loss wrt one entry.
double numeric_grad(Model& m, float* param, const TokenSeq& tokens,
                    float eps) {
  const float saved = *param;
  *param = saved + eps;
  const double lp = loss_of(m, tokens);
  *param = saved - eps;
  const double lm = loss_of(m, tokens);
  *param = saved;
  return (lp - lm) / (2.0 * eps);
}

void expect_grad_close(double analytic, double numeric) {
  const double denom = std::max({1e-3, std::fabs(analytic), std::fabs(numeric)});
  EXPECT_LT(std::fabs(analytic - numeric) / denom, 0.05)
      << "analytic=" << analytic << " numeric=" << numeric;
}

class FullBackwardGradCheck : public ::testing::Test {
 protected:
  void SetUp() override {
    model_ = Model::init(tiny_config(), 42);
    tokens_ = tokens_for(7, 21, model_.config.vocab_size);
    ForwardCache cache;
    const Matrix logits = model_forward(model_, tokens_, cache);
    CrossEntropyResult ce = cross_entropy_next_token(logits, tokens_);
    grads_ = Gradients::zeros_like(model_);
    model_backward(model_, tokens_, cache, ce.grad_logits, grads_);
  }

  // Check a sampled subset of entries of one parameter matrix.
  void check_matrix(Matrix& param, const Matrix& grad, std::uint64_t seed,
                    int samples = 8) {
    Rng rng(seed);
    for (int s = 0; s < samples; ++s) {
      const std::size_t i = rng.index(param.size());
      const double numeric = numeric_grad(
          model_, &param.flat()[i], tokens_, 5e-3f);
      expect_grad_close(grad.flat()[i], numeric);
    }
  }

  void check_vector(std::vector<float>& param, const std::vector<float>& grad,
                    std::uint64_t seed, int samples = 4) {
    Rng rng(seed);
    for (int s = 0; s < samples; ++s) {
      const std::size_t i = rng.index(param.size());
      const double numeric =
          numeric_grad(model_, &param[i], tokens_, 5e-3f);
      expect_grad_close(grad[i], numeric);
    }
  }

  Model model_;
  TokenSeq tokens_;
  Gradients grads_;
};

TEST_F(FullBackwardGradCheck, LmHead) {
  check_matrix(model_.lm_head, grads_.lm_head, 1);
}

TEST_F(FullBackwardGradCheck, FinalNorm) {
  check_vector(model_.final_norm, grads_.final_norm, 2);
}

TEST_F(FullBackwardGradCheck, Embedding) {
  check_matrix(model_.tok_embed, grads_.tok_embed, 3);
}

TEST_F(FullBackwardGradCheck, QueryProjectionsBothLayers) {
  check_matrix(model_.blocks[0].wq, grads_.blocks[0].wq, 4);
  check_matrix(model_.blocks[1].wq, grads_.blocks[1].wq, 5);
}

TEST_F(FullBackwardGradCheck, KeyProjectionsBothLayers) {
  check_matrix(model_.blocks[0].wk, grads_.blocks[0].wk, 6);
  check_matrix(model_.blocks[1].wk, grads_.blocks[1].wk, 7);
}

TEST_F(FullBackwardGradCheck, ValueProjectionsBothLayers) {
  check_matrix(model_.blocks[0].wv, grads_.blocks[0].wv, 8);
  check_matrix(model_.blocks[1].wv, grads_.blocks[1].wv, 9);
}

TEST_F(FullBackwardGradCheck, OutputProjectionsBothLayers) {
  check_matrix(model_.blocks[0].wo, grads_.blocks[0].wo, 10);
  check_matrix(model_.blocks[1].wo, grads_.blocks[1].wo, 11);
}

TEST_F(FullBackwardGradCheck, FfnProjections) {
  check_matrix(model_.blocks[0].w_gate, grads_.blocks[0].w_gate, 12);
  check_matrix(model_.blocks[0].w_up, grads_.blocks[0].w_up, 13);
  check_matrix(model_.blocks[0].w_down, grads_.blocks[0].w_down, 14);
  check_matrix(model_.blocks[1].w_down, grads_.blocks[1].w_down, 15);
}

TEST_F(FullBackwardGradCheck, NormGains) {
  check_vector(model_.blocks[0].attn_norm, grads_.blocks[0].attn_norm, 16);
  check_vector(model_.blocks[1].ffn_norm, grads_.blocks[1].ffn_norm, 17);
}

// --- Attention probe: validates the γ-producing backward against finite
// differences of the *attention block output* itself (paper eqs. 9-13). ---

class AttentionProbeGradCheck : public ::testing::Test {
 protected:
  void SetUp() override {
    model_ = Model::init(tiny_config(), 77);
    tokens_ = tokens_for(6, 33, model_.config.vocab_size);
    Rng rng(55);
    seed_ = Matrix::randn(6, model_.config.dim, rng);
  }

  // L(model) = <seed, attn_out(layer)>; attn_out = x_mid - x_in.
  double probe_loss(std::size_t layer) {
    ForwardCache cache;
    model_forward(model_, tokens_, cache);
    const BlockCache& bc = cache.blocks[layer];
    double acc = 0.0;
    for (std::size_t i = 0; i < seed_.size(); ++i) {
      acc += static_cast<double>(seed_.flat()[i]) *
             (bc.x_mid.flat()[i] - bc.x_in.flat()[i]);
    }
    return acc;
  }

  // Analytic gradient of probe_loss wrt a projection weight, assembled from
  // the probe outputs: dW = inputᵀ · d(proj output).
  Matrix analytic_weight_grad(std::size_t layer, LinearKind kind) {
    ForwardCache cache;
    model_forward(model_, tokens_, cache);
    const BlockCache& bc = cache.blocks[layer];
    const AttentionProbeGrads pg =
        attention_probe_backward(model_, layer, bc, seed_);
    switch (kind) {
      case LinearKind::q_proj:
        return matmul(bc.normed1, pg.dq, Trans::yes, Trans::no);
      case LinearKind::k_proj:
        return matmul(bc.normed1, pg.dk, Trans::yes, Trans::no);
      case LinearKind::v_proj:
        return matmul(bc.normed1, pg.dv, Trans::yes, Trans::no);
      case LinearKind::o_proj:
        return matmul(bc.attn_cat, seed_, Trans::yes, Trans::no);
      default:
        APTQ_FAIL("not an attention projection");
    }
  }

  void check(std::size_t layer, LinearKind kind, Matrix& param,
             std::uint64_t seed) {
    const Matrix analytic = analytic_weight_grad(layer, kind);
    Rng rng(seed);
    for (int s = 0; s < 10; ++s) {
      const std::size_t i = rng.index(param.size());
      const float saved = param.flat()[i];
      const float eps = 5e-3f;
      param.flat()[i] = saved + eps;
      const double lp = probe_loss(layer);
      param.flat()[i] = saved - eps;
      const double lm = probe_loss(layer);
      param.flat()[i] = saved;
      const double numeric = (lp - lm) / (2.0 * eps);
      const double a = analytic.flat()[i];
      const double denom = std::max({1e-3, std::fabs(a), std::fabs(numeric)});
      EXPECT_LT(std::fabs(a - numeric) / denom, 0.05)
          << to_string(kind) << " layer " << layer << " entry " << i;
    }
  }

  Model model_;
  TokenSeq tokens_;
  Matrix seed_;
};

TEST_F(AttentionProbeGradCheck, QueryPath) {
  check(0, LinearKind::q_proj, model_.blocks[0].wq, 1);
  check(1, LinearKind::q_proj, model_.blocks[1].wq, 2);
}

TEST_F(AttentionProbeGradCheck, KeyPath) {
  check(0, LinearKind::k_proj, model_.blocks[0].wk, 3);
  check(1, LinearKind::k_proj, model_.blocks[1].wk, 4);
}

TEST_F(AttentionProbeGradCheck, ValuePath) {
  check(0, LinearKind::v_proj, model_.blocks[0].wv, 5);
}

TEST_F(AttentionProbeGradCheck, OutputPath) {
  check(0, LinearKind::o_proj, model_.blocks[0].wo, 6);
}

TEST_F(AttentionProbeGradCheck, ProbeShapesMatch) {
  ForwardCache cache;
  model_forward(model_, tokens_, cache);
  const auto pg = attention_probe_backward(model_, 0, cache.blocks[0], seed_);
  EXPECT_EQ(pg.dq.rows(), 6u);
  EXPECT_EQ(pg.dq.cols(), 8u);
  EXPECT_EQ(pg.d_attn_cat.rows(), 6u);
}

TEST_F(AttentionProbeGradCheck, RejectsBadSeedShape) {
  ForwardCache cache;
  model_forward(model_, tokens_, cache);
  const Matrix bad(3, 8);
  EXPECT_THROW(attention_probe_backward(model_, 0, cache.blocks[0], bad),
               Error);
  EXPECT_THROW(attention_probe_backward(model_, 9, cache.blocks[0], seed_),
               Error);
}

}  // namespace
}  // namespace aptq
