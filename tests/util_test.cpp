// Unit tests for src/util: RNG determinism and statistics, binary I/O
// round-trips, table rendering, and the check machinery.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <set>

#include "util/check.hpp"
#include "util/io.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace aptq {
namespace {

TEST(Check, ThrowsWithLocation) {
  try {
    APTQ_CHECK(false, "boom");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("util_test"), std::string::npos);
  }
}

TEST(Check, PassesSilently) {
  EXPECT_NO_THROW(APTQ_CHECK(1 + 1 == 2, "never"));
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.next_u64() == b.next_u64();
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformFloatBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform(-2.0f, 5.0f);
    EXPECT_GE(v, -2.0f);
    EXPECT_LT(v, 5.0f);
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(5);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, IndexCoversRangeUniformly) {
  Rng rng(6);
  std::vector<int> counts(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.index(7)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, n / 7, n / 70);
  }
}

TEST(Rng, IndexRejectsZero) {
  Rng rng(7);
  EXPECT_THROW(rng.index(0), Error);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(8);
  const std::vector<float> w = {1.0f, 3.0f, 0.0f, 4.0f};
  std::vector<int> counts(4, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.categorical(w)];
  }
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / double(n), 1.0 / 8.0, 0.01);
  EXPECT_NEAR(counts[1] / double(n), 3.0 / 8.0, 0.01);
  EXPECT_NEAR(counts[3] / double(n), 4.0 / 8.0, 0.01);
}

TEST(Rng, CategoricalRejectsDegenerateInput) {
  Rng rng(9);
  const std::vector<float> zero = {0.0f, 0.0f};
  EXPECT_THROW(rng.categorical(zero), Error);
  const std::vector<float> negative = {1.0f, -0.5f};
  EXPECT_THROW(rng.categorical(negative), Error);
  EXPECT_THROW(rng.categorical(std::span<const float>{}), Error);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(10);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  auto shuffled_sorted = v;
  std::sort(shuffled_sorted.begin(), shuffled_sorted.end());
  EXPECT_EQ(shuffled_sorted, sorted);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(11);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.next_u64() == b.next_u64();
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsStream) {
  Rng rng(12);
  const auto first = rng.next_u64();
  rng.next_u64();
  rng.reseed(12);
  EXPECT_EQ(rng.next_u64(), first);
}

class IoTest : public ::testing::Test {
 protected:
  std::string path_ = (std::filesystem::temp_directory_path() /
                       "aptq_io_test.bin").string();
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(IoTest, ScalarRoundTrip) {
  {
    BinaryWriter w(path_);
    w.write_u32(0xDEADBEEFu);
    w.write_u64(0x123456789ABCDEFull);
    w.write_i64(-42);
    w.write_f32(3.25f);
  }
  BinaryReader r(path_);
  EXPECT_EQ(r.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.read_u64(), 0x123456789ABCDEFull);
  EXPECT_EQ(r.read_i64(), -42);
  EXPECT_EQ(r.read_f32(), 3.25f);
}

TEST_F(IoTest, StringAndVectorRoundTrip) {
  const std::vector<float> vf = {1.0f, -2.5f, 0.0f};
  const std::vector<std::uint32_t> vu = {7, 8, 9};
  {
    BinaryWriter w(path_);
    w.write_string("hello aptq");
    w.write_string("");
    w.write_f32_vector(vf);
    w.write_u32_vector(vu);
  }
  BinaryReader r(path_);
  EXPECT_EQ(r.read_string(), "hello aptq");
  EXPECT_EQ(r.read_string(), "");
  EXPECT_EQ(r.read_f32_vector(), vf);
  EXPECT_EQ(r.read_u32_vector(), vu);
}

TEST_F(IoTest, ShortReadThrows) {
  {
    BinaryWriter w(path_);
    w.write_u32(1);
  }
  BinaryReader r(path_);
  r.read_u32();
  EXPECT_THROW(r.read_u64(), Error);
}

TEST_F(IoTest, MissingFileThrows) {
  EXPECT_THROW(BinaryReader("/nonexistent/aptq/file.bin"), Error);
}

TEST(IoHelpers, FileExists) {
  EXPECT_FALSE(file_exists("/nonexistent/aptq/file.bin"));
}

TEST(Table, RendersAlignedColumns) {
  TextTable t({"Method", "Avg bit", "C4"});
  t.add_row({"GPTQ", "4.0", "5.62"});
  t.add_row({"APTQ-75%", "3.5", "5.54"});
  const std::string s = t.render();
  EXPECT_NE(s.find("Method"), std::string::npos);
  EXPECT_NE(s.find("APTQ-75%"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, RejectsMismatchedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), Error);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(-0.5, 1), "-0.5");
  EXPECT_EQ(fmt_percent(0.75, 1), "75.0%");
}

TEST(Timer, MeasuresNonNegativeTime) {
  Timer t;
  double x = 0.0;
  for (int i = 0; i < 10000; ++i) {
    x += std::sqrt(static_cast<double>(i));
  }
  EXPECT_GT(x, 0.0);  // keep the loop observable
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GE(t.millis(), 0.0);
  t.reset();
  EXPECT_LT(t.seconds(), 1.0);
}

}  // namespace
}  // namespace aptq
