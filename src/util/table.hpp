// Plain-text table rendering for benchmark/report output. Produces aligned
// columns in the style of the paper's tables so bench binaries can print
// rows directly comparable to the publication.
#pragma once

#include <string>
#include <vector>

namespace aptq {

/// Column-aligned text table. Rows are added as vectors of pre-formatted
/// cells; render() pads every column to its widest cell.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append one row; must have the same number of cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Render the table with a rule under the header.
  std::string render() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `digits` decimal places.
std::string fmt_fixed(double value, int digits);

/// Format a fraction in [0,1] as a percentage with `digits` decimals.
std::string fmt_percent(double fraction, int digits = 1);

}  // namespace aptq
