// Deterministic pseudo-random number generation.
//
// Every stochastic component of the library takes an explicit Rng (or seed)
// so experiments are reproducible bit-for-bit. The generator is
// xoshiro256**, seeded via SplitMix64 — fast, high quality, and independent
// of the standard library's unspecified distributions.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace aptq {

/// xoshiro256** generator with SplitMix64 seeding. Copyable value type; a
/// copy reproduces the same stream from the copied state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  /// Re-initialize the state from a single 64-bit seed.
  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
    has_cached_normal_ = false;
  }

  /// Uniform 64-bit integer.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) {
    return lo + static_cast<float>(uniform()) * (hi - lo);
  }

  /// Uniform integer in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) {
    APTQ_CHECK(n > 0, "Rng::index requires n > 0");
    // Rejection-free is fine here: bias is < 2^-53 for all realistic n.
    return static_cast<std::size_t>(uniform() * static_cast<double>(n));
  }

  /// Standard normal deviate (Box–Muller with caching).
  double normal();

  /// Normal deviate with the given mean and standard deviation.
  float normal(float mean, float stddev) {
    return mean + stddev * static_cast<float>(normal());
  }

  /// Sample an index from an unnormalized discrete distribution.
  std::size_t categorical(std::span<const float> unnormalized_weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[index(i)]);
    }
  }

  /// Derive an independent generator (for parallel or per-component streams).
  Rng split() { return Rng(next_u64() ^ 0xD1B54A32D192ED03ull); }

  /// Independent stream keyed by (seed, stream): the generator for stream k
  /// under seed s is a pure function of the pair, unrelated to any other
  /// stream. Used by the serving engine so request k's sampling draws do
  /// not depend on batch composition or scheduling order (each request
  /// owns stream `request_id`), and usable anywhere a family of decorrelated
  /// per-item generators is needed.
  static Rng for_stream(std::uint64_t seed, std::uint64_t stream) {
    // SplitMix64 finalizer over a mixed pair; the odd multiplier keeps
    // consecutive stream ids far apart in the seed space.
    std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (stream + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return Rng(z ^ (z >> 31));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace aptq
