#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

#include "util/check.hpp"

namespace aptq {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  APTQ_CHECK(!header_.empty(), "TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> cells) {
  APTQ_CHECK(cells.size() == header_.size(),
             "TextTable: row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto emit_row = [&](const std::vector<std::string>& row,
                            std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) {
        out.append(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out += '\n';
  };
  std::string out;
  emit_row(header_, out);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(rule, '-');
  out += '\n';
  for (const auto& row : rows_) {
    emit_row(row, out);
  }
  return out;
}

std::string fmt_fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

std::string fmt_percent(double fraction, int digits) {
  return fmt_fixed(100.0 * fraction, digits) + "%";
}

}  // namespace aptq
