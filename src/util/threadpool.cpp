#include "util/threadpool.hpp"

#include <algorithm>

namespace aptq {

namespace {

thread_local bool t_in_worker = false;
thread_local int t_worker_id = -1;

// RAII flag for the duration of chunk execution on any thread (worker or
// submitter), so nested parallel_for calls degrade to serial inline loops.
struct InWorkerScope {
  InWorkerScope() : previous(t_in_worker) { t_in_worker = true; }
  ~InWorkerScope() { t_in_worker = previous; }
  bool previous;
};

std::size_t resolve_thread_count(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
  }
  return threads == 0 ? 1 : threads;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t total = resolve_thread_count(threads);
  workers_.reserve(total - 1);
  for (std::size_t i = 0; i + 1 < total; ++i) {
    workers_.emplace_back([this, i] {
      t_worker_id = static_cast<int>(i);
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

bool ThreadPool::in_worker() { return t_in_worker; }

int ThreadPool::worker_id() { return t_worker_id; }

void ThreadPool::run_chunks(Job& job) {
  InWorkerScope scope;
  for (;;) {
    const std::size_t c = job.next_chunk.fetch_add(1);
    if (c >= job.nchunks) {
      break;
    }
    if (!job.failed.load()) {
      try {
        const std::size_t cb = job.begin + c * job.grain;
        const std::size_t ce =
            cb + job.grain < job.end ? cb + job.grain : job.end;
        (*job.fn)(cb, ce);
      } catch (...) {
        std::lock_guard<std::mutex> lock(job.done_mutex);
        if (!job.error) {
          job.error = std::current_exception();
        }
        job.failed.store(true);
      }
    }
    {
      std::lock_guard<std::mutex> lock(job.done_mutex);
      if (++job.chunks_done == job.nchunks) {
        job.done_cv.notify_all();
      }
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(wake_mutex_);
      wake_cv_.wait(lock, [&] {
        return stop_ || (job_seq_ != seen && job_ != nullptr);
      });
      if (stop_) {
        return;
      }
      seen = job_seq_;
      job = job_;
    }
    run_chunks(*job);
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (end <= begin) {
    return;
  }
  grain = grain == 0 ? 1 : grain;
  const std::size_t nchunks = (end - begin + grain - 1) / grain;
  if (workers_.empty() || in_worker() || nchunks == 1) {
    for (std::size_t cb = begin; cb < end; cb += grain) {
      fn(cb, cb + grain < end ? cb + grain : end);
    }
    return;
  }

  auto job = std::make_shared<Job>();
  job->begin = begin;
  job->end = end;
  job->grain = grain;
  job->nchunks = nchunks;
  job->fn = &fn;
  {
    // One top-level job at a time; later submitters queue here.
    std::lock_guard<std::mutex> submit_lock(submit_mutex_);
    {
      std::lock_guard<std::mutex> lock(wake_mutex_);
      job_ = job;
      ++job_seq_;
    }
    wake_cv_.notify_all();
    run_chunks(*job);
    {
      std::unique_lock<std::mutex> lock(job->done_mutex);
      job->done_cv.wait(lock, [&] { return job->chunks_done == job->nchunks; });
    }
    {
      std::lock_guard<std::mutex> lock(wake_mutex_);
      job_ = nullptr;
    }
  }
  if (job->error) {
    std::rethrow_exception(job->error);
  }
}

namespace {

std::mutex& global_pool_mutex() {
  static std::mutex m;
  return m;
}

std::unique_ptr<ThreadPool>& global_pool_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(global_pool_mutex());
  auto& slot = global_pool_slot();
  if (!slot) {
    slot = std::make_unique<ThreadPool>(0);
  }
  return *slot;
}

void ThreadPool::set_global_threads(std::size_t threads) {
  std::lock_guard<std::mutex> lock(global_pool_mutex());
  global_pool_slot() = std::make_unique<ThreadPool>(threads);
}

std::size_t ThreadPool::global_thread_count() {
  return global().thread_count();
}

std::size_t ThreadPool::hardware_threads() {
  static const std::size_t hw = [] {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? std::size_t{1} : static_cast<std::size_t>(n);
  }();
  return hw;
}

std::size_t ThreadPool::effective_global_threads() {
  return std::min(global_thread_count(), hardware_threads());
}

}  // namespace aptq
