// Wall-clock timing helper for experiment reporting.
#pragma once

#include <chrono>

namespace aptq {

/// Simple monotonic stopwatch started at construction.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double millis() const { return seconds() * 1e3; }

  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace aptq
