#include "util/args.hpp"

#include <cstdlib>

#include "util/threadpool.hpp"

namespace aptq {

ArgParser::ArgParser(int argc, const char* const* argv) {
  int i = 1;
  if (i < argc && argv[i][0] != '-') {
    command_ = argv[i];
    ++i;
  }
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    APTQ_CHECK(arg.rfind("--", 0) == 0, "expected --flag, got: " + arg);
    const std::string name = arg.substr(2);
    APTQ_CHECK(!name.empty(), "empty flag name");
    APTQ_CHECK(i + 1 < argc, "flag --" + name + " needs a value");
    flags_[name] = argv[++i];
    read_[name] = false;
  }
}

bool ArgParser::has(const std::string& flag) const {
  const auto it = flags_.find(flag);
  if (it != flags_.end()) {
    read_[flag] = true;
    return true;
  }
  return false;
}

std::string ArgParser::get_string(const std::string& flag,
                                  const std::string& fallback) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end()) {
    return fallback;
  }
  read_[flag] = true;
  return it->second;
}

double ArgParser::get_double(const std::string& flag, double fallback) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end()) {
    return fallback;
  }
  read_[flag] = true;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  APTQ_CHECK(end != nullptr && *end == '\0',
             "flag --" + flag + " expects a number, got: " + it->second);
  return v;
}

long ArgParser::get_long(const std::string& flag, long fallback) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end()) {
    return fallback;
  }
  read_[flag] = true;
  char* end = nullptr;
  const long v = std::strtol(it->second.c_str(), &end, 10);
  APTQ_CHECK(end != nullptr && *end == '\0',
             "flag --" + flag + " expects an integer, got: " + it->second);
  return v;
}

std::size_t ArgParser::threads() const {
  const long n = get_long("threads", 0);
  APTQ_CHECK(n >= 0, "flag --threads must be non-negative");
  return static_cast<std::size_t>(n);
}

std::string ArgParser::log_level() const {
  return get_string("log-level", "info");
}

std::vector<std::string> ArgParser::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : flags_) {
    if (!read_.at(name)) {
      out.push_back(name);
    }
  }
  return out;
}

std::size_t configure_threads(const ArgParser& args) {
  ThreadPool::set_global_threads(args.threads());
  return ThreadPool::global_thread_count();
}

}  // namespace aptq
