// Minimal binary serialization used for model checkpoints, cached
// calibration artifacts, and wire-protocol payloads. Format: little-endian
// PODs with explicit sizes; a magic/version header guards against stale
// caches. Both ends work over any std::iostream: the file constructors own
// an fstream, the stream constructors borrow a caller-owned stream (e.g. a
// std::stringstream wrapping a socket frame payload) so the same validation
// discipline covers bytes that never touch disk.
#pragma once

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace aptq {

/// RAII binary writer. Throws aptq::Error on any failure.
class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path);
  /// Borrow a caller-owned output stream; `name` labels error messages.
  explicit BinaryWriter(std::ostream& out, std::string name = "<stream>");

  void write_u32(std::uint32_t v) { write_raw(&v, sizeof v); }
  void write_u64(std::uint64_t v) { write_raw(&v, sizeof v); }
  void write_i32(std::int32_t v) { write_raw(&v, sizeof v); }
  void write_i64(std::int64_t v) { write_raw(&v, sizeof v); }
  void write_f32(float v) { write_raw(&v, sizeof v); }
  void write_string(const std::string& s);
  void write_f32_vector(const std::vector<float>& v);
  void write_u32_vector(const std::vector<std::uint32_t>& v);
  void write_bytes(const std::vector<std::uint8_t>& v);

 private:
  void write_raw(const void* data, std::size_t bytes);

  std::ofstream file_;
  std::ostream* out_ = nullptr;
  std::string path_;
};

/// RAII binary reader mirroring BinaryWriter. Throws aptq::Error on short
/// reads or I/O failure. Length-prefixed reads validate the prefix against
/// the bytes actually left in the input before allocating, so a corrupt or
/// bit-flipped length field yields aptq::Error instead of a multi-gigabyte
/// allocation attempt.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);
  /// Borrow a caller-owned input stream holding exactly `size` bytes past
  /// its current position; `name` labels error messages. The byte budget
  /// powers the same length-prefix validation as the file constructor.
  BinaryReader(std::istream& in, std::uint64_t size,
               std::string name = "<stream>");

  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int32_t read_i32();
  std::int64_t read_i64();
  float read_f32();
  std::string read_string();
  std::vector<float> read_f32_vector();
  std::vector<std::uint32_t> read_u32_vector();
  std::vector<std::uint8_t> read_bytes();

  /// Bytes between the read cursor and the end of the input.
  std::uint64_t remaining_bytes();

 private:
  void read_raw(void* data, std::size_t bytes);
  /// Throws unless `count` elements of `elem_size` bytes fit in the rest
  /// of the input.
  void check_payload(std::uint64_t count, std::size_t elem_size,
                     const char* what);

  std::ifstream file_;
  std::istream* in_ = nullptr;
  std::string path_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t consumed_ = 0;
};

/// True if a regular file exists at `path`.
bool file_exists(const std::string& path);

/// Create directory `path` (and parents). No-op if it already exists.
void make_directories(const std::string& path);

}  // namespace aptq
