// Thread-pool parallelism for the quantization hot paths.
//
// The pool exposes one primitive, parallel_for(begin, end, grain, fn):
// [begin, end) is split into fixed grain-sized chunks
// [begin + k·grain, min(begin + (k+1)·grain, end)) and `fn(chunk_begin,
// chunk_end)` is invoked exactly once per chunk, on unspecified threads in
// unspecified order. The chunk boundaries are a pure function of
// (begin, end, grain) — never of the thread count — which is what makes the
// parallel results reproducible: a kernel whose chunks write disjoint
// outputs and read shared inputs produces bitwise-identical results at any
// thread count, including the serial one (see docs/PARALLELISM.md).
//
// parallel_reduce adds a deterministic reduction on top: per-chunk partials
// are computed in parallel and then combined in ascending chunk order, so
// the floating-point fold order is fixed regardless of how chunks were
// scheduled. With grain == 1 the fold is exactly the serial left fold.
//
// Nested parallel_for calls (a parallel kernel invoked from inside a worker)
// run serially inline on the calling thread: deadlock-free by construction
// and still covered by the determinism guarantee.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/check.hpp"

namespace aptq {

/// A fixed-size pool of worker threads executing chunked index ranges.
/// The submitting thread participates in the work, so a pool with
/// thread_count() == n uses n - 1 dedicated workers. Reusable across any
/// number of parallel_for submissions; concurrent top-level submissions
/// from different threads are serialized.
class ThreadPool {
 public:
  /// `threads` == 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (dedicated workers + the submitting thread).
  std::size_t thread_count() const { return workers_.size() + 1; }

  /// Invoke `fn(chunk_begin, chunk_end)` once per grain-sized chunk of
  /// [begin, end). Blocks until every chunk has completed. If any chunk
  /// throws, remaining chunks are skipped (already-started ones finish) and
  /// the first exception is rethrown here.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// True on a thread currently executing pool work (nested parallel_for
  /// detects this and degrades to a serial inline loop).
  static bool in_worker();

  /// Stable 0-based index of the current dedicated pool worker, or -1 on
  /// any other thread (including the submitting thread, which also runs
  /// chunks). Used by the tracing layer to attribute spans to threads.
  static int worker_id();

  /// The process-wide pool used by the free parallel_for/parallel_reduce.
  /// Created on first use with the hardware thread count.
  static ThreadPool& global();

  /// Replace the global pool with one of `threads` threads (0 = hardware
  /// concurrency). Call at startup or between parallel regions, not while
  /// work is in flight.
  static void set_global_threads(std::size_t threads);

  /// thread_count() of the global pool.
  static std::size_t global_thread_count();

  /// Cached std::thread::hardware_concurrency() (min 1).
  static std::size_t hardware_threads();

  /// Concurrency the global pool can actually realize:
  /// min(global_thread_count(), hardware_threads()). Kernels whose results
  /// are chunk-independent may use this to skip pool dispatch when the pool
  /// is oversubscribed (e.g. --threads 4 on a 1-core box), where every
  /// dispatch is pure overhead. Never use it to change chunk *boundaries* —
  /// only to choose between the pool and the identical serial loop.
  static std::size_t effective_global_threads();

 private:
  struct Job {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t grain = 1;
    std::size_t nchunks = 0;
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::atomic<std::size_t> next_chunk{0};
    std::atomic<bool> failed{false};
    std::size_t chunks_done = 0;  // guarded by done_mutex
    std::exception_ptr error;     // guarded by done_mutex
    std::mutex done_mutex;
    std::condition_variable done_cv;
  };

  void worker_loop();
  static void run_chunks(Job& job);

  std::vector<std::thread> workers_;
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::shared_ptr<Job> job_;        // guarded by wake_mutex_
  std::uint64_t job_seq_ = 0;       // guarded by wake_mutex_
  bool stop_ = false;               // guarded by wake_mutex_
  std::mutex submit_mutex_;         // serializes top-level submissions
};

/// Chunked loop over [begin, end) on the global pool. Serial fast path
/// (same chunk structure, ascending order) when the pool has one thread or
/// the caller is already inside pool work.
template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  Fn&& fn) {
  if (end <= begin) {
    return;
  }
  const std::size_t g = grain == 0 ? 1 : grain;
  ThreadPool& pool = ThreadPool::global();
  if (pool.thread_count() <= 1 || ThreadPool::in_worker() ||
      end - begin <= g) {
    for (std::size_t cb = begin; cb < end; cb += g) {
      fn(cb, cb + g < end ? cb + g : end);
    }
    return;
  }
  pool.parallel_for(begin, end, g,
                    std::function<void(std::size_t, std::size_t)>(
                        std::forward<Fn>(fn)));
}

/// Deterministic parallel reduction: `chunk_fn(chunk_begin, chunk_end)`
/// produces one partial per grain-sized chunk (computed in parallel), and
/// `combine(acc, partial)` folds the partials in ascending chunk order.
/// The result is therefore independent of the thread count and of chunk
/// scheduling; with grain == 1 it equals the serial left fold over
/// single-element terms.
template <typename T, typename ChunkFn, typename CombineFn>
T parallel_reduce(std::size_t begin, std::size_t end, std::size_t grain,
                  T init, ChunkFn chunk_fn, CombineFn combine) {
  if (end <= begin) {
    return init;
  }
  const std::size_t g = grain == 0 ? 1 : grain;
  const std::size_t nchunks = (end - begin + g - 1) / g;
  std::vector<T> partials(nchunks);
  parallel_for(0, nchunks, 1, [&](std::size_t cb, std::size_t ce) {
    for (std::size_t c = cb; c < ce; ++c) {
      const std::size_t b = begin + c * g;
      const std::size_t e = b + g < end ? b + g : end;
      partials[c] = chunk_fn(b, e);
    }
  });
  T acc = std::move(init);
  for (T& partial : partials) {
    acc = combine(std::move(acc), std::move(partial));
  }
  return acc;
}

}  // namespace aptq
