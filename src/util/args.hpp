// Minimal command-line flag parser for the CLI tools: positional
// subcommand + `--flag value` pairs with typed accessors and defaults.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace aptq {

/// Parses `prog subcommand --flag value ...`. Unknown flags are rejected at
/// access time via the strict accessors; `has()` probes presence.
class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  /// The first positional argument ("" if none).
  const std::string& command() const { return command_; }

  bool has(const std::string& flag) const;

  /// Typed accessors with defaults. Throw aptq::Error on malformed values.
  std::string get_string(const std::string& flag,
                         const std::string& fallback) const;
  double get_double(const std::string& flag, double fallback) const;
  long get_long(const std::string& flag, long fallback) const;

  /// Flags that were provided but never read (typo detection).
  std::vector<std::string> unused() const;

  /// Thread count requested via `--threads N`; 0 (the default when the
  /// flag is absent) means one thread per hardware core.
  std::size_t threads() const;

  /// Log level requested via `--log-level error|warn|info|debug`
  /// (default "info"). Validation happens in obs::parse_log_level.
  std::string log_level() const;

 private:
  std::string command_;
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> read_;
};

/// Applies the standard `--threads N` flag to the global thread pool
/// (N == 0 or flag absent: one thread per hardware core; N == 1 restores
/// fully serial execution). Returns the effective thread count.
std::size_t configure_threads(const ArgParser& args);

}  // namespace aptq
