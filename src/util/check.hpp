// Error handling primitives for the aptq library.
//
// Library failures are reported by throwing aptq::Error (I.10: use exceptions
// to signal a failure to perform a required task). APTQ_CHECK expresses
// preconditions and invariants; it is always on, since every call site in
// this library sits far from any hot inner loop.
#pragma once

#include <stdexcept>
#include <string>

namespace aptq {

/// Exception type thrown on any precondition violation or runtime failure
/// inside the aptq library.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] void fail(const std::string& message, const char* file, int line);
}  // namespace detail

}  // namespace aptq

/// Precondition/invariant check: throws aptq::Error with location info when
/// `cond` is false. `msg` may use stream-free string concatenation.
#define APTQ_CHECK(cond, msg)                              \
  do {                                                     \
    if (!(cond)) {                                         \
      ::aptq::detail::fail((msg), __FILE__, __LINE__);     \
    }                                                      \
  } while (false)

/// Unconditional failure with location info.
#define APTQ_FAIL(msg) ::aptq::detail::fail((msg), __FILE__, __LINE__)
