#include "util/io.hpp"

#include <filesystem>
#include <limits>

namespace aptq {

BinaryWriter::BinaryWriter(const std::string& path)
    : file_(path, std::ios::binary | std::ios::trunc), path_(path) {
  APTQ_CHECK(file_.good(), "cannot open for writing: " + path);
  out_ = &file_;
}

BinaryWriter::BinaryWriter(std::ostream& out, std::string name)
    : out_(&out), path_(std::move(name)) {
  APTQ_CHECK(out_->good(), "bad output stream: " + path_);
}

void BinaryWriter::write_raw(const void* data, std::size_t bytes) {
  out_->write(static_cast<const char*>(data),
              static_cast<std::streamsize>(bytes));
  APTQ_CHECK(out_->good(), "write failed: " + path_);
}

void BinaryWriter::write_string(const std::string& s) {
  write_u64(s.size());
  if (!s.empty()) {
    write_raw(s.data(), s.size());
  }
}

void BinaryWriter::write_f32_vector(const std::vector<float>& v) {
  write_u64(v.size());
  if (!v.empty()) {
    write_raw(v.data(), v.size() * sizeof(float));
  }
}

void BinaryWriter::write_u32_vector(const std::vector<std::uint32_t>& v) {
  write_u64(v.size());
  if (!v.empty()) {
    write_raw(v.data(), v.size() * sizeof(std::uint32_t));
  }
}

void BinaryWriter::write_bytes(const std::vector<std::uint8_t>& v) {
  write_u64(v.size());
  if (!v.empty()) {
    write_raw(v.data(), v.size());
  }
}

BinaryReader::BinaryReader(const std::string& path)
    : file_(path, std::ios::binary), path_(path) {
  APTQ_CHECK(file_.good(), "cannot open for reading: " + path);
  in_ = &file_;
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  APTQ_CHECK(!ec, "cannot stat: " + path + " (" + ec.message() + ")");
  total_bytes_ = static_cast<std::uint64_t>(size);
}

BinaryReader::BinaryReader(std::istream& in, std::uint64_t size,
                           std::string name)
    : in_(&in), path_(std::move(name)), total_bytes_(size) {
  APTQ_CHECK(in_->good(), "bad input stream: " + path_);
}

std::uint64_t BinaryReader::remaining_bytes() {
  return consumed_ >= total_bytes_ ? 0 : total_bytes_ - consumed_;
}

void BinaryReader::check_payload(std::uint64_t count, std::size_t elem_size,
                                 const char* what) {
  const std::uint64_t left = remaining_bytes();
  APTQ_CHECK(count <= left / elem_size,
             std::string(what) + " length " + std::to_string(count) +
                 " exceeds the " + std::to_string(left) +
                 " bytes left in " + path_);
}

void BinaryReader::read_raw(void* data, std::size_t bytes) {
  APTQ_CHECK(bytes <= remaining_bytes(),
             "read past end of input: " + path_);
  in_->read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  APTQ_CHECK(in_->gcount() == static_cast<std::streamsize>(bytes),
             "short read: " + path_);
  consumed_ += bytes;
}

std::uint32_t BinaryReader::read_u32() {
  std::uint32_t v = 0;
  read_raw(&v, sizeof v);
  return v;
}

std::uint64_t BinaryReader::read_u64() {
  std::uint64_t v = 0;
  read_raw(&v, sizeof v);
  return v;
}

std::int32_t BinaryReader::read_i32() {
  std::int32_t v = 0;
  read_raw(&v, sizeof v);
  return v;
}

std::int64_t BinaryReader::read_i64() {
  std::int64_t v = 0;
  read_raw(&v, sizeof v);
  return v;
}

float BinaryReader::read_f32() {
  float v = 0.0f;
  read_raw(&v, sizeof v);
  return v;
}

std::string BinaryReader::read_string() {
  const std::uint64_t n = read_u64();
  check_payload(n, 1, "string");
  std::string s(n, '\0');
  if (n > 0) {
    read_raw(s.data(), n);
  }
  return s;
}

std::vector<float> BinaryReader::read_f32_vector() {
  const std::uint64_t n = read_u64();
  check_payload(n, sizeof(float), "f32 vector");
  std::vector<float> v(n);
  if (n > 0) {
    read_raw(v.data(), n * sizeof(float));
  }
  return v;
}

std::vector<std::uint32_t> BinaryReader::read_u32_vector() {
  const std::uint64_t n = read_u64();
  check_payload(n, sizeof(std::uint32_t), "u32 vector");
  std::vector<std::uint32_t> v(n);
  if (n > 0) {
    read_raw(v.data(), n * sizeof(std::uint32_t));
  }
  return v;
}

std::vector<std::uint8_t> BinaryReader::read_bytes() {
  const std::uint64_t n = read_u64();
  check_payload(n, 1, "byte vector");
  std::vector<std::uint8_t> v(n);
  if (n > 0) {
    read_raw(v.data(), n);
  }
  return v;
}

bool file_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::is_regular_file(path, ec);
}

void make_directories(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  APTQ_CHECK(!ec, "cannot create directory: " + path + " (" + ec.message() + ")");
}

}  // namespace aptq
