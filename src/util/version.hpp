// Single source of truth for the build's reported version (the /healthz
// endpoint and --version-style banners). Bump the minor on each protocol
// or report-schema change alongside the matching constant (net::kProtoVersion,
// the serving section's schema_version).
#pragma once

namespace aptq {

inline constexpr const char* kAptqVersion = "0.9.0";

}  // namespace aptq
