#include "util/check.hpp"

namespace aptq::detail {

void fail(const std::string& message, const char* file, int line) {
  throw Error(std::string(file) + ":" + std::to_string(line) + ": " + message);
}

}  // namespace aptq::detail
