#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace aptq {

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 is kept away from zero so log() is finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

std::size_t Rng::categorical(std::span<const float> unnormalized_weights) {
  APTQ_CHECK(!unnormalized_weights.empty(), "categorical: empty weights");
  double total = 0.0;
  for (const float w : unnormalized_weights) {
    APTQ_CHECK(w >= 0.0f, "categorical: negative weight");
    total += w;
  }
  APTQ_CHECK(total > 0.0, "categorical: all weights zero");
  double r = uniform() * total;
  for (std::size_t i = 0; i < unnormalized_weights.size(); ++i) {
    r -= unnormalized_weights[i];
    if (r <= 0.0) {
      return i;
    }
  }
  return unnormalized_weights.size() - 1;
}

}  // namespace aptq
