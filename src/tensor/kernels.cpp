#include "tensor/kernels.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "tensor/ops.hpp"
#include "util/threadpool.hpp"

// GCC and Clang vector extensions give the micro-kernel register-resident
// 4-wide accumulators on the baseline ISA (no intrinsics headers, no
// -march requirement). Plain fixed-count float arrays express the same
// computation but GCC 12's SLP vectorizer spills them to the stack behind a
// shuffle storm, costing ~5x; the extension types pin the intended codegen.
#if defined(__GNUC__) || defined(__clang__)
#define APTQ_KERNEL_VEC_EXT 1
#endif

namespace aptq {

namespace {

constexpr std::size_t MR = kGemmMR;
constexpr std::size_t KC = kGemmKC;
constexpr std::size_t MC = kGemmMC;
static_assert(MC % MR == 0, "parallel chunk must hold whole register tiles");

#ifdef APTQ_KERNEL_VEC_EXT
// Vector width tracks the compile-time ISA: 8 lanes when AVX is enabled
// (APTQ_NATIVE on an AVX host), 4 lanes on the baseline target. Within one
// binary the fold order is fixed, so the determinism contract holds;
// different builds may differ in the low bits (tolerance-covered vs ref).
#if defined(__AVX__)
constexpr std::size_t kVecLanes = 8;
#else
constexpr std::size_t kVecLanes = 4;
#endif
typedef float vNf __attribute__((vector_size(kVecLanes * sizeof(float))));
// The B panel always spans two vectors: MR×2 = 12 accumulator registers —
// the full baseline SSE file, and enough independent FMA chains to cover
// the FMA latency on AVX cores.
constexpr std::size_t NR = 2 * kVecLanes;
static_assert(NR % kGemmNR == 0 || kGemmNR % NR == 0,
              "panel width must stay tile-compatible");
#else
constexpr std::size_t NR = kGemmNR;
#endif

// Logical element view of op(M) without materializing the transpose.
struct OpView {
  const float* data;
  std::size_t ld;  // leading dimension of the stored matrix
  bool trans;      // logical (i, j) reads data[j*ld + i] when set
  float at(std::size_t i, std::size_t j) const {
    return trans ? data[j * ld + i] : data[i * ld + j];
  }
};

// Pack the k-slice [p0, p0+kc) of op(B) (k × n) into NR-wide panels:
// panel jp occupies bp[jp*kc*NR ..), row p of it holding the NR (zero-padded
// past n) consecutive columns — the unit-stride B feed of the micro-kernel.
void pack_b(const OpView& b, std::size_t p0, std::size_t kc, std::size_t n,
            float* bp) {
  const std::size_t npanels = (n + NR - 1) / NR;
  for (std::size_t jp = 0; jp < npanels; ++jp) {
    const std::size_t j0 = jp * NR;
    const std::size_t jn = std::min(NR, n - j0);
    float* dst = bp + jp * kc * NR;
    if (!b.trans) {
      for (std::size_t p = 0; p < kc; ++p) {
        const float* src = b.data + (p0 + p) * b.ld + j0;
        float* row = dst + p * NR;
        for (std::size_t j = 0; j < jn; ++j) {
          row[j] = src[j];
        }
        for (std::size_t j = jn; j < NR; ++j) {
          row[j] = 0.0f;
        }
      }
    } else {
      // op(B)(p, j) = B(j, p): gather columns of the stored matrix.
      for (std::size_t j = 0; j < jn; ++j) {
        const float* src = b.data + (j0 + j) * b.ld + p0;
        for (std::size_t p = 0; p < kc; ++p) {
          dst[p * NR + j] = src[p];
        }
      }
      for (std::size_t j = jn; j < NR; ++j) {
        for (std::size_t p = 0; p < kc; ++p) {
          dst[p * NR + j] = 0.0f;
        }
      }
    }
  }
}

// Pack one MR-row tile of op(A) (m × k) over the k-slice [p0, p0+kc):
// ap[p*MR + i] = op(A)(i0+i, p0+p), zero-padded past mr rows.
void pack_a(const OpView& a, std::size_t i0, std::size_t mr, std::size_t p0,
            std::size_t kc, float* ap) {
  for (std::size_t i = 0; i < mr; ++i) {
    if (!a.trans) {
      const float* src = a.data + (i0 + i) * a.ld + p0;
      for (std::size_t p = 0; p < kc; ++p) {
        ap[p * MR + i] = src[p];
      }
    } else {
      const float* src = a.data + p0 * a.ld + (i0 + i);
      for (std::size_t p = 0; p < kc; ++p) {
        ap[p * MR + i] = src[p * a.ld];
      }
    }
  }
  for (std::size_t i = mr; i < MR; ++i) {
    for (std::size_t p = 0; p < kc; ++p) {
      ap[p * MR + i] = 0.0f;
    }
  }
}

// The compute core shared by both store variants: the MR×NR accumulator
// block over a packed A tile and a packed B panel, written out to `accf`.
// Each k-step multiplies one broadcast A lane against the NR-wide B row;
// the MR·NR/kVecLanes accumulator vectors stay in the vector register file
// (12 of 16 on baseline SSE).
#ifdef APTQ_KERNEL_VEC_EXT
void micro_accumulate(std::size_t kc, const float* ap, const float* bp,
                      float accf[MR][NR]) {
  constexpr std::size_t NV = NR / kVecLanes;
  vNf acc[MR][NV] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    vNf bv[NV];
    std::memcpy(bv, bp + p * NR, sizeof bv);
    const float* a = ap + p * MR;
    for (std::size_t i = 0; i < MR; ++i) {
      const vNf ai = vNf{} + a[i];  // scalar-vector op broadcasts the lane
      for (std::size_t v = 0; v < NV; ++v) {
        acc[i][v] += ai * bv[v];
      }
    }
  }
  std::memcpy(accf, acc, sizeof(vNf) * MR * NV);
}
#else
// Portable fallback: same fold order, plain arrays.
void micro_accumulate(std::size_t kc, const float* ap, const float* bp,
                      float accf[MR][NR]) {
  float acc[MR][NR] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    const float* a = ap + p * MR;
    const float* b = bp + p * NR;
    for (std::size_t i = 0; i < MR; ++i) {
      for (std::size_t j = 0; j < NR; ++j) {
        acc[i][j] += a[i] * b[j];
      }
    }
  }
  std::memcpy(accf, acc, sizeof acc);
}
#endif

// Stores C += alpha·acc for the valid (mr × nr) corner of one tile.
void micro_tile(std::size_t kc, const float* ap, const float* bp, float alpha,
                float* c, std::size_t ldc, std::size_t mr, std::size_t nr) {
  float acc[MR][NR];
  micro_accumulate(kc, ap, bp, acc);
  if (mr == MR && nr == NR) {
    for (std::size_t i = 0; i < MR; ++i) {
      float* crow = c + i * ldc;
      for (std::size_t j = 0; j < NR; ++j) {
        crow[j] += alpha * acc[i][j];
      }
    }
  } else {
    for (std::size_t i = 0; i < mr; ++i) {
      float* crow = c + i * ldc;
      for (std::size_t j = 0; j < nr; ++j) {
        crow[j] += alpha * acc[i][j];
      }
    }
  }
}

// micro_tile for diagonal-crossing SYRK tiles: same compute, but the store
// keeps only the upper-triangle entries (absolute column >= absolute row).
void micro_tile_upper(std::size_t kc, const float* ap, const float* bp,
                      float alpha, float* c, std::size_t ldc, std::size_t i0,
                      std::size_t j0, std::size_t mr, std::size_t nr) {
  float acc[MR][NR];
  micro_accumulate(kc, ap, bp, acc);
  for (std::size_t i = 0; i < mr; ++i) {
    const std::size_t row = i0 + i;
    float* crow = c + i * ldc;
    for (std::size_t j = 0; j < nr; ++j) {
      if (j0 + j >= row) {
        crow[j] += alpha * acc[i][j];
      }
    }
  }
}

}  // namespace

void gemm_tiled(const Matrix& a, Trans trans_a, const Matrix& b,
                Trans trans_b, Matrix& c, float alpha) {
  const std::size_t m = c.rows();
  const std::size_t n = c.cols();
  const std::size_t k = trans_a == Trans::no ? a.cols() : a.rows();
  if (m == 0 || n == 0 || k == 0) {
    return;
  }
  const OpView av{a.data(), a.cols(), trans_a == Trans::yes};
  const OpView bv{b.data(), b.cols(), trans_b == Trans::yes};
  const std::size_t npanels = (n + NR - 1) / NR;
  const std::size_t mtiles = (m + MR - 1) / MR;
  std::vector<float> bpack(KC * npanels * NR);
  // k-slices accumulate into C in ascending order on every path; row-tile
  // chunks depend only on the shape, so results are bitwise identical at
  // any thread count.
  for (std::size_t p0 = 0; p0 < k; p0 += KC) {
    const std::size_t kc = std::min(KC, k - p0);
    pack_b(bv, p0, kc, n, bpack.data());
    parallel_for(0, mtiles, MC / MR, [&](std::size_t t0, std::size_t t1) {
      std::vector<float> apack(kc * MR);
      for (std::size_t t = t0; t < t1; ++t) {
        const std::size_t i0 = t * MR;
        const std::size_t mr = std::min(MR, m - i0);
        pack_a(av, i0, mr, p0, kc, apack.data());
        for (std::size_t jp = 0; jp < npanels; ++jp) {
          const std::size_t j0 = jp * NR;
          micro_tile(kc, apack.data(), bpack.data() + jp * kc * NR, alpha,
                     c.data() + i0 * n + j0, n, mr,
                     std::min(NR, n - j0));
        }
      }
    });
  }
}

void syrk_upper(const Matrix& x, std::span<const float> gamma, float alpha,
                Matrix& c) {
  const std::size_t tokens = x.rows();
  const std::size_t d = x.cols();
  APTQ_CHECK(c.rows() == d && c.cols() == d, "syrk_upper: C shape mismatch");
  APTQ_CHECK(gamma.empty() || gamma.size() == tokens,
             "syrk_upper: gamma length mismatch");
  if (tokens == 0 || d == 0) {
    return;
  }
  // op(A) = (diag(γ)X)ᵀ and op(B) = X feed the same NN micro-kernel as
  // gemm_tiled; γ is folded in while packing A, matching the reference
  // fold h(i, j) += (γ_t·x_ti)·x_tj. Only tiles touching the upper
  // triangle run, and diagonal-crossing tiles mask their store.
  const std::size_t npanels = (d + NR - 1) / NR;
  const std::size_t mtiles = (d + MR - 1) / MR;
  std::vector<float> bpack(KC * npanels * NR);
  const OpView bv{x.data(), d, false};
  for (std::size_t p0 = 0; p0 < tokens; p0 += KC) {
    const std::size_t kc = std::min(KC, tokens - p0);
    pack_b(bv, p0, kc, d, bpack.data());
    // Small grain (2 tiles): upper-triangle tiles make early rows heavier,
    // so finer chunks let the pool balance the load.
    parallel_for(0, mtiles, 2, [&](std::size_t t0, std::size_t t1) {
      std::vector<float> apack(kc * MR);
      for (std::size_t t = t0; t < t1; ++t) {
        const std::size_t i0 = t * MR;
        const std::size_t mr = std::min(MR, d - i0);
        // Pack γ-scaled columns of X: ap[p*MR + i] = γ_{p0+p} · X(p0+p, i0+i).
        for (std::size_t p = 0; p < kc; ++p) {
          const float g = gamma.empty() ? 1.0f : gamma[p0 + p];
          const float* src = x.data() + (p0 + p) * d + i0;
          float* dst = apack.data() + p * MR;
          for (std::size_t i = 0; i < MR; ++i) {
            dst[i] = i < mr ? g * src[i] : 0.0f;
          }
        }
        // Panels strictly below the diagonal (j0 + NR <= i0) are skipped.
        for (std::size_t jp = i0 / NR; jp < npanels; ++jp) {
          const std::size_t j0 = jp * NR;
          const std::size_t nr = std::min(NR, d - j0);
          float* ctile = c.data() + i0 * d + j0;
          if (j0 >= i0 + mr) {
            micro_tile(kc, apack.data(), bpack.data() + jp * kc * NR, alpha,
                       ctile, d, mr, nr);
          } else {
            micro_tile_upper(kc, apack.data(), bpack.data() + jp * kc * NR,
                             alpha, ctile, d, i0, j0, mr, nr);
          }
        }
      }
    });
  }
}

void symv_upper(const Matrix& h, std::span<const float> x,
                std::span<float> y) {
  const std::size_t d = h.rows();
  APTQ_CHECK(h.cols() == d, "symv_upper: square matrix required");
  APTQ_CHECK(x.size() == d && y.size() == d, "symv_upper: length mismatch");
  std::fill(y.begin(), y.end(), 0.0f);
  // One sweep over the diagonal + strict upper triangle: row i contributes
  // h_ij·x_j to y_i (gather) and h_ij·x_i to y_j (scatter), both
  // unit-stride.
  for (std::size_t i = 0; i < d; ++i) {
    const float* row = h.data() + i * d;
    const float xi = x[i];
    float acc = row[i] * xi;
    float* yp = y.data();
    for (std::size_t j = i + 1; j < d; ++j) {
      acc += row[j] * x[j];
      yp[j] += row[j] * xi;
    }
    yp[i] += acc;
  }
}

namespace kern {

void gemv(const float* x, const float* b, std::size_t k, std::size_t n,
          float* y) {
  std::size_t p = 0;
  for (; p + 4 <= k; p += 4) {
    const float x0 = x[p];
    const float x1 = x[p + 1];
    const float x2 = x[p + 2];
    const float x3 = x[p + 3];
    const float* b0 = b + p * n;
    const float* b1 = b0 + n;
    const float* b2 = b1 + n;
    const float* b3 = b2 + n;
    for (std::size_t j = 0; j < n; ++j) {
      y[j] += x0 * b0[j] + x1 * b1[j] + x2 * b2[j] + x3 * b3[j];
    }
  }
  for (; p < k; ++p) {
    const float xp = x[p];
    const float* br = b + p * n;
    for (std::size_t j = 0; j < n; ++j) {
      y[j] += xp * br[j];
    }
  }
}

void gemv_t(const float* x, const float* b, std::size_t k, std::size_t n,
            float* y) {
  for (std::size_t j = 0; j < n; ++j) {
    y[j] += dot4(x, b + j * k, k);
  }
}

void gemv_batch(const float* x, const float* b, std::size_t batch,
                std::size_t k, std::size_t n, float* y) {
  if (batch == 1) {
    gemv(x, b, k, n, y);
    return;
  }
  // Column strips keep the four active B rows of a k-block L1-resident
  // while the batch loop reuses them; the per-element fold (4-way k
  // blocking, ascending j) is exactly gemv()'s, so every output row is
  // bitwise identical to a solo gemv of that input. Strip boundaries are a
  // pure function of n — never of the thread count.
  constexpr std::size_t kStrip = 64;
  const std::size_t strips = (n + kStrip - 1) / kStrip;
  const auto run = [&](std::size_t sb, std::size_t se) {
    for (std::size_t s = sb; s < se; ++s) {
      const std::size_t j0 = s * kStrip;
      const std::size_t j1 = std::min(n, j0 + kStrip);
      std::size_t p = 0;
      for (; p + 4 <= k; p += 4) {
        const float* b0 = b + p * n;
        const float* b1 = b0 + n;
        const float* b2 = b1 + n;
        const float* b3 = b2 + n;
        for (std::size_t i = 0; i < batch; ++i) {
          const float* xi = x + i * k;
          const float x0 = xi[p];
          const float x1 = xi[p + 1];
          const float x2 = xi[p + 2];
          const float x3 = xi[p + 3];
          float* yi = y + i * n;
          for (std::size_t j = j0; j < j1; ++j) {
            yi[j] += x0 * b0[j] + x1 * b1[j] + x2 * b2[j] + x3 * b3[j];
          }
        }
      }
      for (; p < k; ++p) {
        const float* br = b + p * n;
        for (std::size_t i = 0; i < batch; ++i) {
          const float xp = x[i * k + p];
          float* yi = y + i * n;
          for (std::size_t j = j0; j < j1; ++j) {
            yi[j] += xp * br[j];
          }
        }
      }
    }
  };
  // Skip pool dispatch when the pool cannot realize parallelism (more pool
  // threads than cores): the serial loop runs the identical chunks in
  // ascending order, so the result is unchanged either way.
  if (strips > 1 && ThreadPool::effective_global_threads() > 1) {
    parallel_for(0, strips, 1, run);
  } else {
    run(0, strips);
  }
}

void rank_update(float* w, std::size_t n, const float* err, std::size_t r,
                 const float* u, std::size_t ldu) {
  std::size_t j = 0;
  for (; j + 4 <= r; j += 4) {
    const float e0 = err[j];
    const float e1 = err[j + 1];
    const float e2 = err[j + 2];
    const float e3 = err[j + 3];
    const float* u0 = u + j * ldu;
    const float* u1 = u0 + ldu;
    const float* u2 = u1 + ldu;
    const float* u3 = u2 + ldu;
    for (std::size_t c = 0; c < n; ++c) {
      w[c] -= e0 * u0[c] + e1 * u1[c] + e2 * u2[c] + e3 * u3[c];
    }
  }
  for (; j < r; ++j) {
    const float e = err[j];
    const float* ur = u + j * ldu;
    for (std::size_t c = 0; c < n; ++c) {
      w[c] -= e * ur[c];
    }
  }
}

float dot4(const float* a, const float* b, std::size_t n) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  float tail = 0.0f;
  for (; i < n; ++i) {
    tail += a[i] * b[i];
  }
  return ((s0 + s1) + (s2 + s3)) + tail;
}

namespace {

// Geometry of one group g of a blocked row: `len` valid codes, of which
// `lo_n` sit in low nibbles / leading bytes and `hi_n` in high nibbles.
struct GroupShape {
  std::size_t len;
  std::size_t lo_n;
  std::size_t hi_n;
};

inline GroupShape group_shape(const QBlock& q, std::size_t g) {
  const std::size_t start = g * q.group_len;
  const std::size_t len = std::min(q.group_len, q.cols - start);
  if (q.bits == 8) {
    return {len, len, 0};
  }
  const std::size_t lo_n = std::min(len, q.bytes_per_group);
  return {len, lo_n, len - lo_n};
}

// Fused dequant-dot over one row. `xsum` must hold the per-group sums of x
// (callers precompute via group_sums; the fold there matches the order an
// on-the-fly fold would use, so precomputation never changes a bit).
//
// Each product applies the group scale to the code before touching x —
// (scale·code)·x, the same rounding a materialized dequantize would give —
// rather than scaling the group's partial dot afterwards. That placement
// is what lets the batched path store scale·code in its row panel once and
// drop the scale multiply from the per-input loop entirely (see
// unpack_codes_row / qdot_row_panel).
//
// The group fold order is fixed (groups in ascending pairs, vector body
// then scalar remainder, even/odd accumulator chains merged at the end),
// so a given build is deterministic; vector and portable builds
// reassociate differently (tolerance-covered vs aptq::ref).
//
// Two structural choices carry the performance:
//   * Two-group unroll. One accumulator chain serializes the loop on FMA
//     latency -- a group is 16 weights at g16, so a single `vacc +=` per
//     group caps the row at ~4 weights/cycle regardless of vector width.
//     Group pairs feed disjoint even/odd accumulators, keeping two groups'
//     FMAs in flight. The accumulators must stay plain locals: indexing a
//     vNf acc[2] by group parity spills the array to the stack, 2x slower.
//   * A constant-trip-count fast path for full 4-bit groups. The generic
//     per-group body re-derives its bounds (group_shape), re-tests the
//     bit width, and keeps scalar remainder loops alive -- ~20 cycles of
//     bookkeeping per group against ~6 cycles of vector math. When every
//     byte of a group is two full nibbles and the byte count is a whole
//     number of vector loads, all of that folds away.
float qdot_row(const QBlock& q, const std::uint8_t* codes, const float* scale,
               const float* bias, const float* x, const float* xsum) {
  const std::size_t nb = q.bytes_per_group;
#ifdef APTQ_KERNEL_VEC_EXT
  typedef std::uint8_t vNu8 __attribute__((vector_size(kVecLanes)));
  // Codes widen u8 -> i32 -> f32 in single-use convert chains, with the
  // nibble mask/shift applied in the u8 domain: GCC folds each chain to
  // pmovzx + cvtdq2ps. A direct u8 -> f32 convertvector, or widening once
  // and reusing the i32 vector for both nibbles, scalarizes into per-lane
  // pextrb/pinsrd/cvtsi2ss storms under -march=native.
  typedef std::int32_t vNi32
      __attribute__((vector_size(kVecLanes * sizeof(std::int32_t))));
  vNf vlo0 = {};
  vNf vhi0 = {};
  vNf vlo1 = {};
  vNf vhi1 = {};
#else
  int vlo0 = 0, vhi0 = 0, vlo1 = 0, vhi1 = 0;  // unused placeholders
  (void)vlo0;
  (void)vhi0;
  (void)vlo1;
  (void)vhi1;
#endif
  float sb0 = 0.0f;
  float sb1 = 0.0f;
  std::size_t g = 0;
#ifdef APTQ_KERNEL_VEC_EXT
  if (q.bits == 4 && nb % kVecLanes == 0) {
    // Every group except a ragged tail is full: len == group_len, both
    // nibble halves span exactly nb bytes.
    const std::size_t full =
        q.cols % q.group_len == 0 ? q.groups : q.groups - 1;
    // kSingleVec specializes the dominant shape (one vector load per
    // nibble half, e.g. g16 at 8 lanes): the inner j-loop folds to
    // straight-line code. Same arithmetic, same fold order either way.
    const auto pair_loop = [&]<bool kSingleVec>() {
      for (; g + 2 <= full; g += 2) {
        const std::uint8_t* b0 = codes + g * nb;
        const std::uint8_t* b1 = b0 + nb;
        const float* xg0 = x + g * q.group_len;
        const float* xg1 = xg0 + q.group_len;
        const vNf dv0 = vNf{} + scale[g];
        const vNf dv1 = vNf{} + scale[g + 1];
        for (std::size_t j = 0; j < (kSingleVec ? kVecLanes : nb);
             j += kVecLanes) {
          vNu8 bytes0, bytes1;
          std::memcpy(&bytes0, b0 + j, sizeof bytes0);
          std::memcpy(&bytes1, b1 + j, sizeof bytes1);
          vNf xlo0, xhi0, xlo1, xhi1;
          std::memcpy(&xlo0, xg0 + j, sizeof xlo0);
          std::memcpy(&xhi0, xg0 + nb + j, sizeof xhi0);
          std::memcpy(&xlo1, xg1 + j, sizeof xlo1);
          std::memcpy(&xhi1, xg1 + nb + j, sizeof xhi1);
          const vNf lo0 = __builtin_convertvector(
              __builtin_convertvector(bytes0 & 0x0F, vNi32), vNf);
          const vNf hi0 = __builtin_convertvector(
              __builtin_convertvector(bytes0 >> 4, vNi32), vNf);
          const vNf lo1 = __builtin_convertvector(
              __builtin_convertvector(bytes1 & 0x0F, vNi32), vNf);
          const vNf hi1 = __builtin_convertvector(
              __builtin_convertvector(bytes1 >> 4, vNi32), vNf);
          vlo0 += (dv0 * lo0) * xlo0;
          vhi0 += (dv0 * hi0) * xhi0;
          vlo1 += (dv1 * lo1) * xlo1;
          vhi1 += (dv1 * hi1) * xhi1;
        }
        sb0 += bias[g] * xsum[g];
        sb1 += bias[g + 1] * xsum[g + 1];
      }
    };
    if (nb == kVecLanes) {
      pair_loop.template operator()<true>();
    } else {
      pair_loop.template operator()<false>();
    }
  }
#endif
  // Generic per-group body: ragged tails, odd group geometries, and the
  // 8-bit layout. Chains alternate with the caller loop's parity so the
  // fold order stays a pure function of the shape.
  const auto do_group = [&](std::size_t gi, auto& vlo_acc, auto& vhi_acc,
                            float& sbacc) {
    const auto [len, lo_n, hi_n] = group_shape(q, gi);
    const std::uint8_t* b = codes + gi * nb;
    const float* xg = x + gi * q.group_len;
    const float d = scale[gi];
    std::size_t j = 0;
    float s = 0.0f;
    if (q.bits == 4) {
#ifdef APTQ_KERNEL_VEC_EXT
      const vNf dv = vNf{} + d;
      // Both halves of the split layout share each byte load; x stays
      // unit-stride for both.
      for (; j + kVecLanes <= hi_n; j += kVecLanes) {
        vNu8 bytes;
        std::memcpy(&bytes, b + j, sizeof bytes);
        const vNf lo = __builtin_convertvector(
            __builtin_convertvector(bytes & 0x0F, vNi32), vNf);
        const vNf hi = __builtin_convertvector(
            __builtin_convertvector(bytes >> 4, vNi32), vNf);
        vNf xlo, xhi;
        std::memcpy(&xlo, xg + j, sizeof xlo);
        std::memcpy(&xhi, xg + nb + j, sizeof xhi);
        vlo_acc += (dv * lo) * xlo;
        vhi_acc += (dv * hi) * xhi;
      }
#endif
      for (std::size_t t = j; t < hi_n; ++t) {
        s += xg[nb + t] * (d * static_cast<float>(b[t] >> 4));
      }
      for (std::size_t t = j; t < lo_n; ++t) {
        s += xg[t] * (d * static_cast<float>(b[t] & 0x0F));
      }
    } else {  // bits == 8: one code per byte, in order
#ifdef APTQ_KERNEL_VEC_EXT
      const vNf dv = vNf{} + d;
      for (; j + kVecLanes <= len; j += kVecLanes) {
        vNu8 bytes;
        std::memcpy(&bytes, b + j, sizeof bytes);
        vNf xv;
        std::memcpy(&xv, xg + j, sizeof xv);
        vlo_acc += (dv * __builtin_convertvector(
                             __builtin_convertvector(bytes, vNi32), vNf)) *
                   xv;
      }
#endif
      for (std::size_t t = j; t < len; ++t) {
        s += xg[t] * (d * static_cast<float>(b[t]));
      }
    }
    sbacc += s + bias[gi] * xsum[gi];
  };
  for (; g + 2 <= q.groups; g += 2) {
    do_group(g, vlo0, vhi0, sb0);
    do_group(g + 1, vlo1, vhi1, sb1);
  }
  if (g < q.groups) {
    do_group(g, vlo0, vhi0, sb0);
  }
  float sacc = sb0 + sb1;
#ifdef APTQ_KERNEL_VEC_EXT
  const vNf vsum = (vlo0 + vlo1) + (vhi0 + vhi1);
  for (std::size_t v = 0; v < kVecLanes; ++v) {
    sacc += vsum[v];
  }
#endif
  return sacc;
}

// Dequantize one blocked row into `w` (length q.cols).
void unpack_row(const QBlock& q, const std::uint8_t* codes, const float* scale,
                const float* bias, float* w) {
  const std::size_t nb = q.bytes_per_group;
  for (std::size_t g = 0; g < q.groups; ++g) {
    const auto [len, lo_n, hi_n] = group_shape(q, g);
    const std::uint8_t* b = codes + g * nb;
    float* wg = w + g * q.group_len;
    const float d = scale[g];
    const float m = bias[g];
    if (q.bits == 4) {
      for (std::size_t t = 0; t < lo_n; ++t) {
        wg[t] = d * static_cast<float>(b[t] & 0x0F) + m;
      }
      for (std::size_t t = 0; t < hi_n; ++t) {
        wg[nb + t] = d * static_cast<float>(b[t] >> 4) + m;
      }
    } else {
      for (std::size_t t = 0; t < len; ++t) {
        wg[t] = d * static_cast<float>(b[t]) + m;
      }
    }
  }
}

// Widen one blocked row's codes to prescaled floats in x order:
// cw[pos] = scale[g] * float(code at column pos), resolving the
// split-nibble layout. u8 -> f32 widening is exact and qdot_row's fold
// multiplies each code by its group scale before touching x, so a stored
// (scale·code) product is bit-for-bit the float the dequant-dot computes
// in flight — which is what lets qdot_row_panel below replay qdot_row's
// fold from this panel with the scale multiply already paid. The group
// bias stays out of the panel (it rides the xsum term in the dot).
// `cw` must hold groups·group_len floats (the ragged-tail pad is never
// read by the dot, but keeping the stride uniform keeps indexing trivial).
void unpack_codes_row(const QBlock& q, const std::uint8_t* codes,
                      const float* scale, float* cw) {
  const std::size_t nb = q.bytes_per_group;
  // Scalar per-group body: ragged tails and odd geometries. The stored
  // value is the elementwise product scale·float(code) — the same float
  // whichever path writes it, so the vector fast path below never changes
  // a panel bit.
  const auto scalar_group = [&](std::size_t g) {
    const auto [len, lo_n, hi_n] = group_shape(q, g);
    const std::uint8_t* b = codes + g * nb;
    float* wg = cw + g * q.group_len;
    const float d = scale[g];
    if (q.bits == 4) {
      for (std::size_t t = 0; t < lo_n; ++t) {
        wg[t] = d * static_cast<float>(b[t] & 0x0F);
      }
      for (std::size_t t = 0; t < hi_n; ++t) {
        wg[nb + t] = d * static_cast<float>(b[t] >> 4);
      }
    } else {
      for (std::size_t t = 0; t < len; ++t) {
        wg[t] = d * static_cast<float>(b[t]);
      }
    }
  };
#ifdef APTQ_KERNEL_VEC_EXT
  // The unpack is the per-row cost the whole panel design amortizes, so it
  // must not be the slow part: widen with the same u8 -> i32 -> f32
  // convert chains the in-flight dot uses (pmovzx + cvtdq2ps) instead of
  // one scalar convert per weight.
  if (q.bits == 4 && nb % kVecLanes == 0) {
    typedef std::uint8_t vNu8 __attribute__((vector_size(kVecLanes)));
    typedef std::int32_t vNi32
        __attribute__((vector_size(kVecLanes * sizeof(std::int32_t))));
    const std::size_t full =
        q.cols % q.group_len == 0 ? q.groups : q.groups - 1;
    for (std::size_t g = 0; g < full; ++g) {
      const std::uint8_t* b = codes + g * nb;
      float* wg = cw + g * q.group_len;
      const vNf dv = vNf{} + scale[g];
      for (std::size_t j = 0; j < nb; j += kVecLanes) {
        vNu8 bytes;
        std::memcpy(&bytes, b + j, sizeof bytes);
        const vNf lo = __builtin_convertvector(
            __builtin_convertvector(bytes & 0x0F, vNi32), vNf);
        const vNf hi = __builtin_convertvector(
            __builtin_convertvector(bytes >> 4, vNi32), vNf);
        const vNf wlo = dv * lo;
        const vNf whi = dv * hi;
        std::memcpy(wg + j, &wlo, sizeof wlo);
        std::memcpy(wg + nb + j, &whi, sizeof whi);
      }
    }
    for (std::size_t g = full; g < q.groups; ++g) {
      scalar_group(g);
    }
    return;
  }
#endif
  for (std::size_t g = 0; g < q.groups; ++g) {
    scalar_group(g);
  }
}

// qdot_row with the code bytes replaced by the prescaled float panel of
// unpack_codes_row. Same accumulator structure, same group pairing, same
// vector/scalar split, same final reduction — every float expression is
// identical (the stored scale·code products equal the in-flight ones
// bit-for-bit), so the result is bitwise equal to qdot_row on the same
// row. The panel loads are unit-stride in x order for both nibble halves,
// so the batch path pays 4 plain vector loads where the solo path paid
// byte loads, convert chains, and the per-group scale multiply — per
// input the dot is down to one multiply and one add per vector, which is
// most of the batched-decode speedup.
float qdot_row_panel(const QBlock& q, const float* cw, const float* bias,
                     const float* x, const float* xsum) {
  const std::size_t nb = q.bytes_per_group;
#ifdef APTQ_KERNEL_VEC_EXT
  vNf vlo0 = {};
  vNf vhi0 = {};
  vNf vlo1 = {};
  vNf vhi1 = {};
#else
  int vlo0 = 0, vhi0 = 0, vlo1 = 0, vhi1 = 0;  // unused placeholders
  (void)vlo0;
  (void)vhi0;
  (void)vlo1;
  (void)vhi1;
#endif
  float sb0 = 0.0f;
  float sb1 = 0.0f;
  std::size_t g = 0;
#ifdef APTQ_KERNEL_VEC_EXT
  if (q.bits == 4 && nb % kVecLanes == 0) {
    const std::size_t full =
        q.cols % q.group_len == 0 ? q.groups : q.groups - 1;
    const auto pair_loop = [&]<bool kSingleVec>() {
      for (; g + 2 <= full; g += 2) {
        const float* cw0 = cw + g * q.group_len;
        const float* cw1 = cw0 + q.group_len;
        const float* xg0 = x + g * q.group_len;
        const float* xg1 = xg0 + q.group_len;
        for (std::size_t j = 0; j < (kSingleVec ? kVecLanes : nb);
             j += kVecLanes) {
          vNf lo0, hi0, lo1, hi1;
          std::memcpy(&lo0, cw0 + j, sizeof lo0);
          std::memcpy(&hi0, cw0 + nb + j, sizeof hi0);
          std::memcpy(&lo1, cw1 + j, sizeof lo1);
          std::memcpy(&hi1, cw1 + nb + j, sizeof hi1);
          vNf xlo0, xhi0, xlo1, xhi1;
          std::memcpy(&xlo0, xg0 + j, sizeof xlo0);
          std::memcpy(&xhi0, xg0 + nb + j, sizeof xhi0);
          std::memcpy(&xlo1, xg1 + j, sizeof xlo1);
          std::memcpy(&xhi1, xg1 + nb + j, sizeof xhi1);
          vlo0 += lo0 * xlo0;
          vhi0 += hi0 * xhi0;
          vlo1 += lo1 * xlo1;
          vhi1 += hi1 * xhi1;
        }
        sb0 += bias[g] * xsum[g];
        sb1 += bias[g + 1] * xsum[g + 1];
      }
    };
    if (nb == kVecLanes) {
      pair_loop.template operator()<true>();
    } else {
      pair_loop.template operator()<false>();
    }
  }
#endif
  const auto do_group = [&](std::size_t gi, auto& vlo_acc, auto& vhi_acc,
                            float& sbacc) {
    const auto [len, lo_n, hi_n] = group_shape(q, gi);
    const float* cwg = cw + gi * q.group_len;
    const float* xg = x + gi * q.group_len;
    std::size_t j = 0;
    float s = 0.0f;
    if (q.bits == 4) {
#ifdef APTQ_KERNEL_VEC_EXT
      for (; j + kVecLanes <= hi_n; j += kVecLanes) {
        vNf lo, hi;
        std::memcpy(&lo, cwg + j, sizeof lo);
        std::memcpy(&hi, cwg + nb + j, sizeof hi);
        vNf xlo, xhi;
        std::memcpy(&xlo, xg + j, sizeof xlo);
        std::memcpy(&xhi, xg + nb + j, sizeof xhi);
        vlo_acc += lo * xlo;
        vhi_acc += hi * xhi;
      }
#endif
      for (std::size_t t = j; t < hi_n; ++t) {
        s += xg[nb + t] * cwg[nb + t];
      }
      for (std::size_t t = j; t < lo_n; ++t) {
        s += xg[t] * cwg[t];
      }
    } else {  // bits == 8: one code per panel float, in order
#ifdef APTQ_KERNEL_VEC_EXT
      for (; j + kVecLanes <= len; j += kVecLanes) {
        vNf cv, xv;
        std::memcpy(&cv, cwg + j, sizeof cv);
        std::memcpy(&xv, xg + j, sizeof xv);
        vlo_acc += cv * xv;
      }
#endif
      for (std::size_t t = j; t < len; ++t) {
        s += xg[t] * cwg[t];
      }
    }
    sbacc += s + bias[gi] * xsum[gi];
  };
  for (; g + 2 <= q.groups; g += 2) {
    do_group(g, vlo0, vhi0, sb0);
    do_group(g + 1, vlo1, vhi1, sb1);
  }
  if (g < q.groups) {
    do_group(g, vlo0, vhi0, sb0);
  }
  float sacc = sb0 + sb1;
#ifdef APTQ_KERNEL_VEC_EXT
  const vNf vsum = (vlo0 + vlo1) + (vhi0 + vhi1);
  for (std::size_t v = 0; v < kVecLanes; ++v) {
    sacc += vsum[v];
  }
#endif
  return sacc;
}

// Two qdot_row_panel calls fused into one pass over the row's panel: input
// a and input b keep fully separate accumulator sets and each one's fold
// replays qdot_row_panel's (and therefore qdot_row's) expression tree
// exactly, so both results are bitwise equal to the solo calls. What the
// fusion buys is everything that is per-row rather than per-input: the
// panel (cw) vector loads, the scale broadcasts, the loop bookkeeping, and
// the call prologue/reduction are paid once for two inputs. At decode
// shapes (a 128-wide row is only ~4 vector iterations) that per-call
// overhead is most of the kernel, so pairing inputs is nearly a 2x on the
// batched dequant-dot.
void qdot_row_panel2(const QBlock& q, const float* cw, const float* bias,
                     const float* xa, const float* xsa, const float* xb,
                     const float* xsb, float* ya, float* yb) {
  const std::size_t nb = q.bytes_per_group;
#ifdef APTQ_KERNEL_VEC_EXT
  vNf alo0 = {}, ahi0 = {}, alo1 = {}, ahi1 = {};
  vNf blo0 = {}, bhi0 = {}, blo1 = {}, bhi1 = {};
#else
  int alo0 = 0, ahi0 = 0, alo1 = 0, ahi1 = 0;  // unused placeholders
  int blo0 = 0, bhi0 = 0, blo1 = 0, bhi1 = 0;
  (void)alo0;
  (void)ahi0;
  (void)alo1;
  (void)ahi1;
  (void)blo0;
  (void)bhi0;
  (void)blo1;
  (void)bhi1;
#endif
  float sa0 = 0.0f, sa1 = 0.0f;
  float sb0 = 0.0f, sb1 = 0.0f;
  std::size_t g = 0;
#ifdef APTQ_KERNEL_VEC_EXT
  if (q.bits == 4 && nb % kVecLanes == 0) {
    const std::size_t full =
        q.cols % q.group_len == 0 ? q.groups : q.groups - 1;
    const auto pair_loop = [&]<bool kSingleVec>() {
      for (; g + 2 <= full; g += 2) {
        const float* cw0 = cw + g * q.group_len;
        const float* cw1 = cw0 + q.group_len;
        const float* xa0 = xa + g * q.group_len;
        const float* xa1 = xa0 + q.group_len;
        const float* xb0 = xb + g * q.group_len;
        const float* xb1 = xb0 + q.group_len;
        for (std::size_t j = 0; j < (kSingleVec ? kVecLanes : nb);
             j += kVecLanes) {
          vNf lo0, hi0, lo1, hi1;
          std::memcpy(&lo0, cw0 + j, sizeof lo0);
          std::memcpy(&hi0, cw0 + nb + j, sizeof hi0);
          std::memcpy(&lo1, cw1 + j, sizeof lo1);
          std::memcpy(&hi1, cw1 + nb + j, sizeof hi1);
          vNf v0, v1, v2, v3;
          std::memcpy(&v0, xa0 + j, sizeof v0);
          std::memcpy(&v1, xa0 + nb + j, sizeof v1);
          std::memcpy(&v2, xa1 + j, sizeof v2);
          std::memcpy(&v3, xa1 + nb + j, sizeof v3);
          alo0 += lo0 * v0;
          ahi0 += hi0 * v1;
          alo1 += lo1 * v2;
          ahi1 += hi1 * v3;
          std::memcpy(&v0, xb0 + j, sizeof v0);
          std::memcpy(&v1, xb0 + nb + j, sizeof v1);
          std::memcpy(&v2, xb1 + j, sizeof v2);
          std::memcpy(&v3, xb1 + nb + j, sizeof v3);
          blo0 += lo0 * v0;
          bhi0 += hi0 * v1;
          blo1 += lo1 * v2;
          bhi1 += hi1 * v3;
        }
        sa0 += bias[g] * xsa[g];
        sa1 += bias[g + 1] * xsa[g + 1];
        sb0 += bias[g] * xsb[g];
        sb1 += bias[g + 1] * xsb[g + 1];
      }
    };
    if (nb == kVecLanes) {
      pair_loop.template operator()<true>();
    } else {
      pair_loop.template operator()<false>();
    }
  }
#endif
  // Generic remainder (ragged tails, odd geometries, 8-bit): the solo
  // panel body run per input, group order per input unchanged.
  const auto do_group = [&](std::size_t gi, const float* x,
                            const float* xsum, auto& vlo_acc, auto& vhi_acc,
                            float& sbacc) {
    const auto [len, lo_n, hi_n] = group_shape(q, gi);
    const float* cwg = cw + gi * q.group_len;
    const float* xg = x + gi * q.group_len;
    std::size_t j = 0;
    float s = 0.0f;
    if (q.bits == 4) {
#ifdef APTQ_KERNEL_VEC_EXT
      for (; j + kVecLanes <= hi_n; j += kVecLanes) {
        vNf lo, hi;
        std::memcpy(&lo, cwg + j, sizeof lo);
        std::memcpy(&hi, cwg + nb + j, sizeof hi);
        vNf xlo, xhi;
        std::memcpy(&xlo, xg + j, sizeof xlo);
        std::memcpy(&xhi, xg + nb + j, sizeof xhi);
        vlo_acc += lo * xlo;
        vhi_acc += hi * xhi;
      }
#endif
      for (std::size_t t = j; t < hi_n; ++t) {
        s += xg[nb + t] * cwg[nb + t];
      }
      for (std::size_t t = j; t < lo_n; ++t) {
        s += xg[t] * cwg[t];
      }
    } else {
#ifdef APTQ_KERNEL_VEC_EXT
      for (; j + kVecLanes <= len; j += kVecLanes) {
        vNf cv, xv;
        std::memcpy(&cv, cwg + j, sizeof cv);
        std::memcpy(&xv, xg + j, sizeof xv);
        vlo_acc += cv * xv;
      }
#endif
      for (std::size_t t = j; t < len; ++t) {
        s += xg[t] * cwg[t];
      }
    }
    sbacc += s + bias[gi] * xsum[gi];
  };
  for (; g + 2 <= q.groups; g += 2) {
    do_group(g, xa, xsa, alo0, ahi0, sa0);
    do_group(g + 1, xa, xsa, alo1, ahi1, sa1);
    do_group(g, xb, xsb, blo0, bhi0, sb0);
    do_group(g + 1, xb, xsb, blo1, bhi1, sb1);
  }
  if (g < q.groups) {
    do_group(g, xa, xsa, alo0, ahi0, sa0);
    do_group(g, xb, xsb, blo0, bhi0, sb0);
  }
  float ra = sa0 + sa1;
  float rb = sb0 + sb1;
#ifdef APTQ_KERNEL_VEC_EXT
  const vNf va = (alo0 + alo1) + (ahi0 + ahi1);
  const vNf vb = (blo0 + blo1) + (bhi0 + bhi1);
  for (std::size_t v = 0; v < kVecLanes; ++v) {
    ra += va[v];
  }
  for (std::size_t v = 0; v < kVecLanes; ++v) {
    rb += vb[v];
  }
#endif
  *ya = ra;
  *yb = rb;
}

// Per-group sums of x into `xsum` (length q.groups), each group folded in
// fixed serial order — precomputing must not change any bit.
void group_sums(const QBlock& q, const float* x, float* xsum) {
  for (std::size_t g = 0; g < q.groups; ++g) {
    const std::size_t start = g * q.group_len;
    const std::size_t len = std::min(q.group_len, q.cols - start);
    float s = 0.0f;
    for (std::size_t t = 0; t < len; ++t) {
      s += x[start + t];
    }
    xsum[g] = s;
  }
}

// Group counts up to this fit a stack buffer; beyond it (cols/group_len >
// 512) the sums spill to a heap vector. Decode-sized gemvs must not pay a
// malloc per call -- at dim 128 the allocation costs as much as the dot.
constexpr std::size_t kXsumStack = 512;

}  // namespace

float qdot(const QBlock& q, std::size_t row, const float* x,
           const float* xsum) {
  const std::size_t stride = q.groups * q.bytes_per_group;
  const float* srow = q.scale + row * q.groups;
  const float* brow = q.bias + row * q.groups;
  if (xsum != nullptr) {
    return qdot_row(q, q.codes + row * stride, srow, brow, x, xsum);
  }
  // group_sums folds each group in the same serial order an on-the-fly
  // fold would, so computing them here cannot change a bit of the result.
  float stack[kXsumStack];
  std::vector<float> heap;
  float* sums = stack;
  if (q.groups > kXsumStack) {
    heap.resize(q.groups);
    sums = heap.data();
  }
  group_sums(q, x, sums);
  return qdot_row(q, q.codes + row * stride, srow, brow, x, sums);
}

void qgemv(const QBlock& q, const float* x, float* y) {
  float stack[kXsumStack];
  std::vector<float> heap;
  float* xsum = stack;
  if (q.groups > kXsumStack) {
    heap.resize(q.groups);
    xsum = heap.data();
  }
  group_sums(q, x, xsum);
  const std::size_t stride = q.groups * q.bytes_per_group;
  const auto run_rows = [&](std::size_t rb, std::size_t re) {
    for (std::size_t r = rb; r < re; ++r) {
      y[r] = qdot_row(q, q.codes + r * stride, q.scale + r * q.groups,
                      q.bias + r * q.groups, x, xsum);
    }
  };
  // Row results are independent of chunk boundaries, so skipping the pool
  // when it cannot help (more workers than cores) changes no bit.
  if (ThreadPool::effective_global_threads() > 1) {
    parallel_for(0, q.rows, 16, run_rows);
  } else {
    run_rows(0, q.rows);
  }
}

void qgemv_multi(const QBlock& q, const float* x, std::size_t n, float* y) {
  // Same prescaled-panel strategy as qgemv_batch below: widen each row's
  // codes to scale·code floats once, then run the group-fold dot per input
  // (in fused pairs) against the panel. This replaced a materialized
  // affine dequant plus a dense dot per input — the quantized fold is a
  // different (equally tolerance-bounded) reassociation of the same sum,
  // and per-row work no longer grows with the affine unpack. Results stay
  // a pure function of shape and inputs, never of the chunking.
  std::vector<float> xsums(n * q.groups);
  for (std::size_t i = 0; i < n; ++i) {
    group_sums(q, x + i * q.cols, xsums.data() + i * q.groups);
  }
  const std::size_t stride = q.groups * q.bytes_per_group;
  const std::size_t panel_len = q.groups * q.group_len;
  const auto run_rows = [&](std::size_t rb, std::size_t re) {
    std::vector<float> cw(panel_len, 0.0f);
    for (std::size_t r = rb; r < re; ++r) {
      unpack_codes_row(q, q.codes + r * stride, q.scale + r * q.groups,
                       cw.data());
      const float* brow = q.bias + r * q.groups;
      std::size_t i = 0;
      for (; i + 2 <= n; i += 2) {
        float ta = 0.0f;
        float tb = 0.0f;
        qdot_row_panel2(q, cw.data(), brow, x + i * q.cols,
                        xsums.data() + i * q.groups, x + (i + 1) * q.cols,
                        xsums.data() + (i + 1) * q.groups, &ta, &tb);
        y[i * q.rows + r] += ta;
        y[(i + 1) * q.rows + r] += tb;
      }
      for (; i < n; ++i) {
        y[i * q.rows + r] += qdot_row_panel(q, cw.data(), brow,
                                            x + i * q.cols,
                                            xsums.data() + i * q.groups);
      }
    }
  };
  if (ThreadPool::effective_global_threads() > 1) {
    parallel_for(0, q.rows, 8, run_rows);
  } else {
    run_rows(0, q.rows);
  }
}

void qgemv_batch(const QBlock& q, const float* x, std::size_t n, float* y) {
  if (n == 1) {
    // The panel fold is bitwise equal to qgemv either way; the solo kernel
    // just skips the panel write-back.
    qgemv(q, x, y);
    return;
  }
  // Per-input per-group x sums, with the same serial fold the solo path
  // uses (group_sums never changes a bit — see qdot).
  std::vector<float> xsums(n * q.groups);
  for (std::size_t i = 0; i < n; ++i) {
    group_sums(q, x + i * q.cols, xsums.data() + i * q.groups);
  }
  const std::size_t stride = q.groups * q.bytes_per_group;
  // The panel is group_len-strided, so a ragged tail group pads to a full
  // stride; the pad is written once (zeros) and never read by the dot.
  const std::size_t panel_len = q.groups * q.group_len;
  const auto run_rows = [&](std::size_t rb, std::size_t re) {
    std::vector<float> cw(panel_len, 0.0f);
    for (std::size_t r = rb; r < re; ++r) {
      unpack_codes_row(q, q.codes + r * stride, q.scale + r * q.groups,
                       cw.data());
      const float* brow = q.bias + r * q.groups;
      // Inputs in pairs: the fused two-input dot pays the panel loads and
      // loop bookkeeping once per pair (each input's fold is still the
      // solo expression tree, so row results stay bitwise identical).
      std::size_t i = 0;
      for (; i + 2 <= n; i += 2) {
        qdot_row_panel2(q, cw.data(), brow, x + i * q.cols,
                        xsums.data() + i * q.groups, x + (i + 1) * q.cols,
                        xsums.data() + (i + 1) * q.groups, y + i * q.rows + r,
                        y + (i + 1) * q.rows + r);
      }
      for (; i < n; ++i) {
        y[i * q.rows + r] = qdot_row_panel(q, cw.data(), brow, x + i * q.cols,
                                           xsums.data() + i * q.groups);
      }
    }
  };
  // Same grain as qgemv so the chunking story stays uniform; skip pool
  // dispatch entirely when the pool is oversubscribed (chunk results are
  // independent, so the serial loop is bit-identical).
  if (ThreadPool::effective_global_threads() > 1) {
    parallel_for(0, q.rows, 16, run_rows);
  } else {
    run_rows(0, q.rows);
  }
}

}  // namespace kern

namespace ref {

namespace {

// Row-chunk size for the parallel reference gemm: at least ~32k flops per
// chunk so small matmuls stay on one thread. Depends only on the shape, so
// chunk boundaries — and results — are reproducible.
std::size_t gemm_row_grain(std::size_t flops_per_row) {
  constexpr std::size_t kMinChunkFlops = 32768;
  return std::max<std::size_t>(
      1, kMinChunkFlops / std::max<std::size_t>(1, flops_per_row));
}

// The pre-tiling loops. The historical `if (av == 0.0f) continue;` skips
// were removed: they blocked vectorization of the j loop and made
// 0-coefficient rows swallow NaN/Inf from B (0·NaN now propagates as NaN,
// matching the tiled kernels — covered in tensor_test.cpp).

// C += alpha * A * B, all row-major; ikj ordering vectorizes over j.
void gemm_nn(const Matrix& a, const Matrix& b, Matrix& c, float alpha) {
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  parallel_for(0, m, gemm_row_grain(2 * k * n),
               [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      float* crow = c.data() + i * n;
      const float* arow = a.data() + i * k;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = alpha * arow[p];
        const float* brow = b.data() + p * n;
        for (std::size_t j = 0; j < n; ++j) {
          crow[j] += av * brow[j];
        }
      }
    }
  });
}

// C += alpha * A * B^T; rows of A dot rows of B (both contiguous).
void gemm_nt(const Matrix& a, const Matrix& b, Matrix& c, float alpha) {
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.rows();
  parallel_for(0, m, gemm_row_grain(2 * k * n),
               [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      const float* arow = a.data() + i * k;
      float* crow = c.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        const float* brow = b.data() + j * k;
        float acc = 0.0f;
        for (std::size_t p = 0; p < k; ++p) {
          acc += arow[p] * brow[p];
        }
        crow[j] += alpha * acc;
      }
    }
  });
}

// C += alpha * A^T * B.
void gemm_tn(const Matrix& a, const Matrix& b, Matrix& c, float alpha) {
  const std::size_t k = a.rows();  // shared dimension
  const std::size_t m = a.cols();
  const std::size_t n = b.cols();
  parallel_for(0, m, gemm_row_grain(2 * k * n),
               [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      float* crow = c.data() + i * n;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = alpha * a.data()[p * m + i];
        const float* brow = b.data() + p * n;
        for (std::size_t j = 0; j < n; ++j) {
          crow[j] += av * brow[j];
        }
      }
    }
  });
}

// C += alpha * A^T * B^T (rare; used only in gradient checks).
void gemm_tt(const Matrix& a, const Matrix& b, Matrix& c, float alpha) {
  const std::size_t m = a.cols();
  const std::size_t k = a.rows();
  const std::size_t n = b.rows();
  parallel_for(0, m, gemm_row_grain(2 * k * n),
               [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        float acc = 0.0f;
        for (std::size_t p = 0; p < k; ++p) {
          acc += a(p, i) * b(j, p);
        }
        c(i, j) += alpha * acc;
      }
    }
  });
}

}  // namespace

void gemm(const Matrix& a, Trans trans_a, const Matrix& b, Trans trans_b,
          Matrix& c, float alpha, float beta) {
  const std::size_t m = trans_a == Trans::no ? a.rows() : a.cols();
  const std::size_t ka = trans_a == Trans::no ? a.cols() : a.rows();
  const std::size_t kb = trans_b == Trans::no ? b.rows() : b.cols();
  const std::size_t n = trans_b == Trans::no ? b.cols() : b.rows();
  APTQ_CHECK(ka == kb, "ref::gemm: inner dimensions mismatch");
  APTQ_CHECK(c.rows() == m && c.cols() == n, "ref::gemm: output shape mismatch");
  if (beta == 0.0f) {
    c.set_zero();
  } else if (beta != 1.0f) {
    scale(c, beta);
  }
  if (trans_a == Trans::no && trans_b == Trans::no) {
    gemm_nn(a, b, c, alpha);
  } else if (trans_a == Trans::no) {
    gemm_nt(a, b, c, alpha);
  } else if (trans_b == Trans::no) {
    gemm_tn(a, b, c, alpha);
  } else {
    gemm_tt(a, b, c, alpha);
  }
}

void syrk_upper(const Matrix& x, std::span<const float> gamma, float alpha,
                Matrix& c) {
  const std::size_t tokens = x.rows();
  const std::size_t d = x.cols();
  APTQ_CHECK(c.rows() == d && c.cols() == d,
             "ref::syrk_upper: C shape mismatch");
  APTQ_CHECK(gamma.empty() || gamma.size() == tokens,
             "ref::syrk_upper: gamma length mismatch");
  // The pre-SYRK HessianAccumulator::add_matrix loop, verbatim (including
  // its γ·x == 0 skip): the tolerance oracle and the "naive" bench side.
  for (std::size_t t = 0; t < tokens; ++t) {
    const float* xt = x.data() + t * d;
    const float g = gamma.empty() ? 1.0f : gamma[t];
    for (std::size_t i = 0; i < d; ++i) {
      const float gi = alpha * g * xt[i];
      if (gi == 0.0f) {
        continue;
      }
      float* row = c.data() + i * d;
      for (std::size_t j = i; j < d; ++j) {
        row[j] += gi * xt[j];
      }
    }
  }
}

void qgemv(const QBlock& q, const float* x, float* y) {
  // One code at a time: locate the byte, extract, dequantize, accumulate —
  // the per-element access pattern of the pre-blocked scalar fused GEMV.
  for (std::size_t r = 0; r < q.rows; ++r) {
    float acc = 0.0f;
    for (std::size_t c = 0; c < q.cols; ++c) {
      const std::size_t g = c / q.group_len;
      const std::size_t k = c - g * q.group_len;
      const std::size_t block = r * q.groups + g;
      const std::uint8_t* b = q.codes + block * q.bytes_per_group;
      std::uint32_t code;
      if (q.bits == 8) {
        code = b[k];
      } else {
        code = k < q.bytes_per_group ? (b[k] & 0x0Fu)
                                     : static_cast<std::uint32_t>(
                                           b[k - q.bytes_per_group] >> 4);
      }
      acc += x[c] *
             (q.scale[block] * static_cast<float>(code) + q.bias[block]);
    }
    y[r] = acc;
  }
}

}  // namespace ref

}  // namespace aptq
