#include "tensor/kernels.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "tensor/ops.hpp"
#include "util/threadpool.hpp"

// GCC and Clang vector extensions give the micro-kernel register-resident
// 4-wide accumulators on the baseline ISA (no intrinsics headers, no
// -march requirement). Plain fixed-count float arrays express the same
// computation but GCC 12's SLP vectorizer spills them to the stack behind a
// shuffle storm, costing ~5x; the extension types pin the intended codegen.
#if defined(__GNUC__) || defined(__clang__)
#define APTQ_KERNEL_VEC_EXT 1
#endif

namespace aptq {

namespace {

constexpr std::size_t MR = kGemmMR;
constexpr std::size_t KC = kGemmKC;
constexpr std::size_t MC = kGemmMC;
static_assert(MC % MR == 0, "parallel chunk must hold whole register tiles");

#ifdef APTQ_KERNEL_VEC_EXT
// Vector width tracks the compile-time ISA: 8 lanes when AVX is enabled
// (APTQ_NATIVE on an AVX host), 4 lanes on the baseline target. Within one
// binary the fold order is fixed, so the determinism contract holds;
// different builds may differ in the low bits (tolerance-covered vs ref).
#if defined(__AVX__)
constexpr std::size_t kVecLanes = 8;
#else
constexpr std::size_t kVecLanes = 4;
#endif
typedef float vNf __attribute__((vector_size(kVecLanes * sizeof(float))));
// The B panel always spans two vectors: MR×2 = 12 accumulator registers —
// the full baseline SSE file, and enough independent FMA chains to cover
// the FMA latency on AVX cores.
constexpr std::size_t NR = 2 * kVecLanes;
static_assert(NR % kGemmNR == 0 || kGemmNR % NR == 0,
              "panel width must stay tile-compatible");
#else
constexpr std::size_t NR = kGemmNR;
#endif

// Logical element view of op(M) without materializing the transpose.
struct OpView {
  const float* data;
  std::size_t ld;  // leading dimension of the stored matrix
  bool trans;      // logical (i, j) reads data[j*ld + i] when set
  float at(std::size_t i, std::size_t j) const {
    return trans ? data[j * ld + i] : data[i * ld + j];
  }
};

// Pack the k-slice [p0, p0+kc) of op(B) (k × n) into NR-wide panels:
// panel jp occupies bp[jp*kc*NR ..), row p of it holding the NR (zero-padded
// past n) consecutive columns — the unit-stride B feed of the micro-kernel.
void pack_b(const OpView& b, std::size_t p0, std::size_t kc, std::size_t n,
            float* bp) {
  const std::size_t npanels = (n + NR - 1) / NR;
  for (std::size_t jp = 0; jp < npanels; ++jp) {
    const std::size_t j0 = jp * NR;
    const std::size_t jn = std::min(NR, n - j0);
    float* dst = bp + jp * kc * NR;
    if (!b.trans) {
      for (std::size_t p = 0; p < kc; ++p) {
        const float* src = b.data + (p0 + p) * b.ld + j0;
        float* row = dst + p * NR;
        for (std::size_t j = 0; j < jn; ++j) {
          row[j] = src[j];
        }
        for (std::size_t j = jn; j < NR; ++j) {
          row[j] = 0.0f;
        }
      }
    } else {
      // op(B)(p, j) = B(j, p): gather columns of the stored matrix.
      for (std::size_t j = 0; j < jn; ++j) {
        const float* src = b.data + (j0 + j) * b.ld + p0;
        for (std::size_t p = 0; p < kc; ++p) {
          dst[p * NR + j] = src[p];
        }
      }
      for (std::size_t j = jn; j < NR; ++j) {
        for (std::size_t p = 0; p < kc; ++p) {
          dst[p * NR + j] = 0.0f;
        }
      }
    }
  }
}

// Pack one MR-row tile of op(A) (m × k) over the k-slice [p0, p0+kc):
// ap[p*MR + i] = op(A)(i0+i, p0+p), zero-padded past mr rows.
void pack_a(const OpView& a, std::size_t i0, std::size_t mr, std::size_t p0,
            std::size_t kc, float* ap) {
  for (std::size_t i = 0; i < mr; ++i) {
    if (!a.trans) {
      const float* src = a.data + (i0 + i) * a.ld + p0;
      for (std::size_t p = 0; p < kc; ++p) {
        ap[p * MR + i] = src[p];
      }
    } else {
      const float* src = a.data + p0 * a.ld + (i0 + i);
      for (std::size_t p = 0; p < kc; ++p) {
        ap[p * MR + i] = src[p * a.ld];
      }
    }
  }
  for (std::size_t i = mr; i < MR; ++i) {
    for (std::size_t p = 0; p < kc; ++p) {
      ap[p * MR + i] = 0.0f;
    }
  }
}

// The compute core shared by both store variants: the MR×NR accumulator
// block over a packed A tile and a packed B panel, written out to `accf`.
// Each k-step multiplies one broadcast A lane against the NR-wide B row;
// the MR·NR/kVecLanes accumulator vectors stay in the vector register file
// (12 of 16 on baseline SSE).
#ifdef APTQ_KERNEL_VEC_EXT
void micro_accumulate(std::size_t kc, const float* ap, const float* bp,
                      float accf[MR][NR]) {
  constexpr std::size_t NV = NR / kVecLanes;
  vNf acc[MR][NV] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    vNf bv[NV];
    std::memcpy(bv, bp + p * NR, sizeof bv);
    const float* a = ap + p * MR;
    for (std::size_t i = 0; i < MR; ++i) {
      const vNf ai = vNf{} + a[i];  // scalar-vector op broadcasts the lane
      for (std::size_t v = 0; v < NV; ++v) {
        acc[i][v] += ai * bv[v];
      }
    }
  }
  std::memcpy(accf, acc, sizeof(vNf) * MR * NV);
}
#else
// Portable fallback: same fold order, plain arrays.
void micro_accumulate(std::size_t kc, const float* ap, const float* bp,
                      float accf[MR][NR]) {
  float acc[MR][NR] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    const float* a = ap + p * MR;
    const float* b = bp + p * NR;
    for (std::size_t i = 0; i < MR; ++i) {
      for (std::size_t j = 0; j < NR; ++j) {
        acc[i][j] += a[i] * b[j];
      }
    }
  }
  std::memcpy(accf, acc, sizeof acc);
}
#endif

// Stores C += alpha·acc for the valid (mr × nr) corner of one tile.
void micro_tile(std::size_t kc, const float* ap, const float* bp, float alpha,
                float* c, std::size_t ldc, std::size_t mr, std::size_t nr) {
  float acc[MR][NR];
  micro_accumulate(kc, ap, bp, acc);
  if (mr == MR && nr == NR) {
    for (std::size_t i = 0; i < MR; ++i) {
      float* crow = c + i * ldc;
      for (std::size_t j = 0; j < NR; ++j) {
        crow[j] += alpha * acc[i][j];
      }
    }
  } else {
    for (std::size_t i = 0; i < mr; ++i) {
      float* crow = c + i * ldc;
      for (std::size_t j = 0; j < nr; ++j) {
        crow[j] += alpha * acc[i][j];
      }
    }
  }
}

// micro_tile for diagonal-crossing SYRK tiles: same compute, but the store
// keeps only the upper-triangle entries (absolute column >= absolute row).
void micro_tile_upper(std::size_t kc, const float* ap, const float* bp,
                      float alpha, float* c, std::size_t ldc, std::size_t i0,
                      std::size_t j0, std::size_t mr, std::size_t nr) {
  float acc[MR][NR];
  micro_accumulate(kc, ap, bp, acc);
  for (std::size_t i = 0; i < mr; ++i) {
    const std::size_t row = i0 + i;
    float* crow = c + i * ldc;
    for (std::size_t j = 0; j < nr; ++j) {
      if (j0 + j >= row) {
        crow[j] += alpha * acc[i][j];
      }
    }
  }
}

}  // namespace

void gemm_tiled(const Matrix& a, Trans trans_a, const Matrix& b,
                Trans trans_b, Matrix& c, float alpha) {
  const std::size_t m = c.rows();
  const std::size_t n = c.cols();
  const std::size_t k = trans_a == Trans::no ? a.cols() : a.rows();
  if (m == 0 || n == 0 || k == 0) {
    return;
  }
  const OpView av{a.data(), a.cols(), trans_a == Trans::yes};
  const OpView bv{b.data(), b.cols(), trans_b == Trans::yes};
  const std::size_t npanels = (n + NR - 1) / NR;
  const std::size_t mtiles = (m + MR - 1) / MR;
  std::vector<float> bpack(KC * npanels * NR);
  // k-slices accumulate into C in ascending order on every path; row-tile
  // chunks depend only on the shape, so results are bitwise identical at
  // any thread count.
  for (std::size_t p0 = 0; p0 < k; p0 += KC) {
    const std::size_t kc = std::min(KC, k - p0);
    pack_b(bv, p0, kc, n, bpack.data());
    parallel_for(0, mtiles, MC / MR, [&](std::size_t t0, std::size_t t1) {
      std::vector<float> apack(kc * MR);
      for (std::size_t t = t0; t < t1; ++t) {
        const std::size_t i0 = t * MR;
        const std::size_t mr = std::min(MR, m - i0);
        pack_a(av, i0, mr, p0, kc, apack.data());
        for (std::size_t jp = 0; jp < npanels; ++jp) {
          const std::size_t j0 = jp * NR;
          micro_tile(kc, apack.data(), bpack.data() + jp * kc * NR, alpha,
                     c.data() + i0 * n + j0, n, mr,
                     std::min(NR, n - j0));
        }
      }
    });
  }
}

void syrk_upper(const Matrix& x, std::span<const float> gamma, float alpha,
                Matrix& c) {
  const std::size_t tokens = x.rows();
  const std::size_t d = x.cols();
  APTQ_CHECK(c.rows() == d && c.cols() == d, "syrk_upper: C shape mismatch");
  APTQ_CHECK(gamma.empty() || gamma.size() == tokens,
             "syrk_upper: gamma length mismatch");
  if (tokens == 0 || d == 0) {
    return;
  }
  // op(A) = (diag(γ)X)ᵀ and op(B) = X feed the same NN micro-kernel as
  // gemm_tiled; γ is folded in while packing A, matching the reference
  // fold h(i, j) += (γ_t·x_ti)·x_tj. Only tiles touching the upper
  // triangle run, and diagonal-crossing tiles mask their store.
  const std::size_t npanels = (d + NR - 1) / NR;
  const std::size_t mtiles = (d + MR - 1) / MR;
  std::vector<float> bpack(KC * npanels * NR);
  const OpView bv{x.data(), d, false};
  for (std::size_t p0 = 0; p0 < tokens; p0 += KC) {
    const std::size_t kc = std::min(KC, tokens - p0);
    pack_b(bv, p0, kc, d, bpack.data());
    // Small grain (2 tiles): upper-triangle tiles make early rows heavier,
    // so finer chunks let the pool balance the load.
    parallel_for(0, mtiles, 2, [&](std::size_t t0, std::size_t t1) {
      std::vector<float> apack(kc * MR);
      for (std::size_t t = t0; t < t1; ++t) {
        const std::size_t i0 = t * MR;
        const std::size_t mr = std::min(MR, d - i0);
        // Pack γ-scaled columns of X: ap[p*MR + i] = γ_{p0+p} · X(p0+p, i0+i).
        for (std::size_t p = 0; p < kc; ++p) {
          const float g = gamma.empty() ? 1.0f : gamma[p0 + p];
          const float* src = x.data() + (p0 + p) * d + i0;
          float* dst = apack.data() + p * MR;
          for (std::size_t i = 0; i < MR; ++i) {
            dst[i] = i < mr ? g * src[i] : 0.0f;
          }
        }
        // Panels strictly below the diagonal (j0 + NR <= i0) are skipped.
        for (std::size_t jp = i0 / NR; jp < npanels; ++jp) {
          const std::size_t j0 = jp * NR;
          const std::size_t nr = std::min(NR, d - j0);
          float* ctile = c.data() + i0 * d + j0;
          if (j0 >= i0 + mr) {
            micro_tile(kc, apack.data(), bpack.data() + jp * kc * NR, alpha,
                       ctile, d, mr, nr);
          } else {
            micro_tile_upper(kc, apack.data(), bpack.data() + jp * kc * NR,
                             alpha, ctile, d, i0, j0, mr, nr);
          }
        }
      }
    });
  }
}

void symv_upper(const Matrix& h, std::span<const float> x,
                std::span<float> y) {
  const std::size_t d = h.rows();
  APTQ_CHECK(h.cols() == d, "symv_upper: square matrix required");
  APTQ_CHECK(x.size() == d && y.size() == d, "symv_upper: length mismatch");
  std::fill(y.begin(), y.end(), 0.0f);
  // One sweep over the diagonal + strict upper triangle: row i contributes
  // h_ij·x_j to y_i (gather) and h_ij·x_i to y_j (scatter), both
  // unit-stride.
  for (std::size_t i = 0; i < d; ++i) {
    const float* row = h.data() + i * d;
    const float xi = x[i];
    float acc = row[i] * xi;
    float* yp = y.data();
    for (std::size_t j = i + 1; j < d; ++j) {
      acc += row[j] * x[j];
      yp[j] += row[j] * xi;
    }
    yp[i] += acc;
  }
}

namespace kern {

void gemv(const float* x, const float* b, std::size_t k, std::size_t n,
          float* y) {
  std::size_t p = 0;
  for (; p + 4 <= k; p += 4) {
    const float x0 = x[p];
    const float x1 = x[p + 1];
    const float x2 = x[p + 2];
    const float x3 = x[p + 3];
    const float* b0 = b + p * n;
    const float* b1 = b0 + n;
    const float* b2 = b1 + n;
    const float* b3 = b2 + n;
    for (std::size_t j = 0; j < n; ++j) {
      y[j] += x0 * b0[j] + x1 * b1[j] + x2 * b2[j] + x3 * b3[j];
    }
  }
  for (; p < k; ++p) {
    const float xp = x[p];
    const float* br = b + p * n;
    for (std::size_t j = 0; j < n; ++j) {
      y[j] += xp * br[j];
    }
  }
}

void gemv_t(const float* x, const float* b, std::size_t k, std::size_t n,
            float* y) {
  for (std::size_t j = 0; j < n; ++j) {
    y[j] += dot4(x, b + j * k, k);
  }
}

void rank_update(float* w, std::size_t n, const float* err, std::size_t r,
                 const float* u, std::size_t ldu) {
  std::size_t j = 0;
  for (; j + 4 <= r; j += 4) {
    const float e0 = err[j];
    const float e1 = err[j + 1];
    const float e2 = err[j + 2];
    const float e3 = err[j + 3];
    const float* u0 = u + j * ldu;
    const float* u1 = u0 + ldu;
    const float* u2 = u1 + ldu;
    const float* u3 = u2 + ldu;
    for (std::size_t c = 0; c < n; ++c) {
      w[c] -= e0 * u0[c] + e1 * u1[c] + e2 * u2[c] + e3 * u3[c];
    }
  }
  for (; j < r; ++j) {
    const float e = err[j];
    const float* ur = u + j * ldu;
    for (std::size_t c = 0; c < n; ++c) {
      w[c] -= e * ur[c];
    }
  }
}

float dot4(const float* a, const float* b, std::size_t n) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  float tail = 0.0f;
  for (; i < n; ++i) {
    tail += a[i] * b[i];
  }
  return ((s0 + s1) + (s2 + s3)) + tail;
}

}  // namespace kern

namespace ref {

namespace {

// Row-chunk size for the parallel reference gemm: at least ~32k flops per
// chunk so small matmuls stay on one thread. Depends only on the shape, so
// chunk boundaries — and results — are reproducible.
std::size_t gemm_row_grain(std::size_t flops_per_row) {
  constexpr std::size_t kMinChunkFlops = 32768;
  return std::max<std::size_t>(
      1, kMinChunkFlops / std::max<std::size_t>(1, flops_per_row));
}

// The pre-tiling loops. The historical `if (av == 0.0f) continue;` skips
// were removed: they blocked vectorization of the j loop and made
// 0-coefficient rows swallow NaN/Inf from B (0·NaN now propagates as NaN,
// matching the tiled kernels — covered in tensor_test.cpp).

// C += alpha * A * B, all row-major; ikj ordering vectorizes over j.
void gemm_nn(const Matrix& a, const Matrix& b, Matrix& c, float alpha) {
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  parallel_for(0, m, gemm_row_grain(2 * k * n),
               [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      float* crow = c.data() + i * n;
      const float* arow = a.data() + i * k;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = alpha * arow[p];
        const float* brow = b.data() + p * n;
        for (std::size_t j = 0; j < n; ++j) {
          crow[j] += av * brow[j];
        }
      }
    }
  });
}

// C += alpha * A * B^T; rows of A dot rows of B (both contiguous).
void gemm_nt(const Matrix& a, const Matrix& b, Matrix& c, float alpha) {
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.rows();
  parallel_for(0, m, gemm_row_grain(2 * k * n),
               [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      const float* arow = a.data() + i * k;
      float* crow = c.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        const float* brow = b.data() + j * k;
        float acc = 0.0f;
        for (std::size_t p = 0; p < k; ++p) {
          acc += arow[p] * brow[p];
        }
        crow[j] += alpha * acc;
      }
    }
  });
}

// C += alpha * A^T * B.
void gemm_tn(const Matrix& a, const Matrix& b, Matrix& c, float alpha) {
  const std::size_t k = a.rows();  // shared dimension
  const std::size_t m = a.cols();
  const std::size_t n = b.cols();
  parallel_for(0, m, gemm_row_grain(2 * k * n),
               [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      float* crow = c.data() + i * n;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = alpha * a.data()[p * m + i];
        const float* brow = b.data() + p * n;
        for (std::size_t j = 0; j < n; ++j) {
          crow[j] += av * brow[j];
        }
      }
    }
  });
}

// C += alpha * A^T * B^T (rare; used only in gradient checks).
void gemm_tt(const Matrix& a, const Matrix& b, Matrix& c, float alpha) {
  const std::size_t m = a.cols();
  const std::size_t k = a.rows();
  const std::size_t n = b.rows();
  parallel_for(0, m, gemm_row_grain(2 * k * n),
               [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        float acc = 0.0f;
        for (std::size_t p = 0; p < k; ++p) {
          acc += a(p, i) * b(j, p);
        }
        c(i, j) += alpha * acc;
      }
    }
  });
}

}  // namespace

void gemm(const Matrix& a, Trans trans_a, const Matrix& b, Trans trans_b,
          Matrix& c, float alpha, float beta) {
  const std::size_t m = trans_a == Trans::no ? a.rows() : a.cols();
  const std::size_t ka = trans_a == Trans::no ? a.cols() : a.rows();
  const std::size_t kb = trans_b == Trans::no ? b.rows() : b.cols();
  const std::size_t n = trans_b == Trans::no ? b.cols() : b.rows();
  APTQ_CHECK(ka == kb, "ref::gemm: inner dimensions mismatch");
  APTQ_CHECK(c.rows() == m && c.cols() == n, "ref::gemm: output shape mismatch");
  if (beta == 0.0f) {
    c.set_zero();
  } else if (beta != 1.0f) {
    scale(c, beta);
  }
  if (trans_a == Trans::no && trans_b == Trans::no) {
    gemm_nn(a, b, c, alpha);
  } else if (trans_a == Trans::no) {
    gemm_nt(a, b, c, alpha);
  } else if (trans_b == Trans::no) {
    gemm_tn(a, b, c, alpha);
  } else {
    gemm_tt(a, b, c, alpha);
  }
}

void syrk_upper(const Matrix& x, std::span<const float> gamma, float alpha,
                Matrix& c) {
  const std::size_t tokens = x.rows();
  const std::size_t d = x.cols();
  APTQ_CHECK(c.rows() == d && c.cols() == d,
             "ref::syrk_upper: C shape mismatch");
  APTQ_CHECK(gamma.empty() || gamma.size() == tokens,
             "ref::syrk_upper: gamma length mismatch");
  // The pre-SYRK HessianAccumulator::add_matrix loop, verbatim (including
  // its γ·x == 0 skip): the tolerance oracle and the "naive" bench side.
  for (std::size_t t = 0; t < tokens; ++t) {
    const float* xt = x.data() + t * d;
    const float g = gamma.empty() ? 1.0f : gamma[t];
    for (std::size_t i = 0; i < d; ++i) {
      const float gi = alpha * g * xt[i];
      if (gi == 0.0f) {
        continue;
      }
      float* row = c.data() + i * d;
      for (std::size_t j = i; j < d; ++j) {
        row[j] += gi * xt[j];
      }
    }
  }
}

}  // namespace ref

}  // namespace aptq
