// Cholesky factorization utilities used by the GPTQ/APTQ solvers.
//
// The GPTQ solver needs the upper-triangular factor U of the *inverse*
// Hessian, i.e. U with H⁻¹ = Uᵀ U, exactly as the reference implementation's
// `cholesky(cholesky_inverse(cholesky(H)), upper=True)` chain. These helpers
// compute that directly in double precision internally to keep the factor
// accurate for ill-conditioned calibration Hessians.
#pragma once

#include <optional>

#include "tensor/matrix.hpp"

namespace aptq {

/// Lower-triangular Cholesky factor L with A = L·Lᵀ, or nullopt if A is not
/// (numerically) positive definite. A must be square and symmetric.
std::optional<Matrix> cholesky_lower(const Matrix& a);

/// Inverse of an SPD matrix from its lower Cholesky factor.
Matrix cholesky_inverse_from_lower(const Matrix& lower);

/// Inverse of an SPD matrix A (factorize + invert). Throws if not SPD.
Matrix spd_inverse(const Matrix& a);

/// Upper-triangular U with A⁻¹ = Uᵀ·U, the factor consumed column-by-column
/// by the GPTQ update rule. Throws if A is not SPD.
Matrix gptq_inverse_factor(const Matrix& a);

/// Solve L·x = b for lower-triangular L (forward substitution).
void solve_lower(const Matrix& lower, std::span<const float> b,
                 std::span<float> x);

/// Solve Lᵀ·x = b for lower-triangular L (backward substitution).
void solve_lower_transposed(const Matrix& lower, std::span<const float> b,
                            std::span<float> x);

}  // namespace aptq
