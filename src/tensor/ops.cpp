#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "tensor/kernels.hpp"
#include "util/threadpool.hpp"

namespace aptq {

namespace {

// Below this flop count (2·m·n·k) the packing overhead of the tiled path
// outweighs its register reuse; route to the naive reference loops. The
// cutoff is a pure function of the shape, so the dispatch — and thus the
// result — never depends on the thread count.
constexpr std::size_t kTiledMinFlops = 1u << 16;  // ≈ a 32³ product

}  // namespace

void gemm(const Matrix& a, Trans trans_a, const Matrix& b, Trans trans_b,
          Matrix& c, float alpha, float beta) {
  const std::size_t m = trans_a == Trans::no ? a.rows() : a.cols();
  const std::size_t ka = trans_a == Trans::no ? a.cols() : a.rows();
  const std::size_t kb = trans_b == Trans::no ? b.rows() : b.cols();
  const std::size_t n = trans_b == Trans::no ? b.cols() : b.rows();
  APTQ_CHECK(ka == kb, "gemm: inner dimensions mismatch");
  APTQ_CHECK(c.rows() == m && c.cols() == n, "gemm: output shape mismatch");

  if (m == 1) {
    // Dense matvec fast path (decoding projections, per-token heads): the
    // single row of op(A) is contiguous whether A is stored 1×k or k×1.
    if (beta == 0.0f) {
      c.set_zero();
    } else if (beta != 1.0f) {
      scale(c, beta);
    }
    const float* x = a.data();
    std::vector<float> scaled;
    if (alpha != 1.0f) {
      scaled.assign(x, x + ka);
      for (float& v : scaled) {
        v *= alpha;
      }
      x = scaled.data();
    }
    if (trans_b == Trans::no) {
      kern::gemv(x, b.data(), ka, n, c.data());
    } else {
      kern::gemv_t(x, b.data(), ka, n, c.data());
    }
    return;
  }
  if (2 * m * n * ka < kTiledMinFlops) {
    ref::gemm(a, trans_a, b, trans_b, c, alpha, beta);
    return;
  }
  if (beta == 0.0f) {
    c.set_zero();
  } else if (beta != 1.0f) {
    scale(c, beta);
  }
  gemm_tiled(a, trans_a, b, trans_b, c, alpha);
}

Matrix matmul(const Matrix& a, const Matrix& b, Trans trans_a, Trans trans_b) {
  const std::size_t m = trans_a == Trans::no ? a.rows() : a.cols();
  const std::size_t n = trans_b == Trans::no ? b.cols() : b.rows();
  Matrix c(m, n);
  gemm(a, trans_a, b, trans_b, c);
  return c;
}

Matrix matmul_col_shard(const Matrix& x, const Matrix& w_slice,
                        std::size_t full_cols) {
  const std::size_t m = x.rows();
  const std::size_t k = x.cols();
  APTQ_CHECK(w_slice.rows() == k, "matmul_col_shard: inner dimension mismatch");
  APTQ_CHECK(w_slice.cols() <= full_cols,
             "matmul_col_shard: slice wider than the full weight");
  Matrix c(m, w_slice.cols());
  if (m == 1) {
    // Mirrors gemm()'s matvec fast path; gemv's per-column fold reads only
    // that column, so the slice result equals the full-weight columns.
    c.set_zero();
    kern::gemv(x.data(), w_slice.data(), k, w_slice.cols(), c.data());
    return c;
  }
  // Dispatch on the FULL output width — the solo run's cutoff — never the
  // slice width.
  if (2 * m * full_cols * k < kTiledMinFlops) {
    ref::gemm(x, Trans::no, w_slice, Trans::no, c, 1.0f, 0.0f);
    return c;
  }
  c.set_zero();
  gemm_tiled(x, Trans::no, w_slice, Trans::no, c, 1.0f);
  return c;
}

void axpy(float alpha, const Matrix& x, Matrix& y) {
  APTQ_CHECK(x.rows() == y.rows() && x.cols() == y.cols(),
             "axpy: shape mismatch");
  const float* xp = x.data();
  float* yp = y.data();
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) {
    yp[i] += alpha * xp[i];
  }
}

void scale(Matrix& m, float alpha) {
  for (float& v : m.flat()) {
    v *= alpha;
  }
}

float dot(std::span<const float> a, std::span<const float> b) {
  APTQ_CHECK(a.size() == b.size(), "dot: length mismatch");
  float acc = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += a[i] * b[i];
  }
  return acc;
}

double sum_squares(const Matrix& m) {
  double acc = 0.0;
  for (const float v : m.flat()) {
    acc += static_cast<double>(v) * v;
  }
  return acc;
}

double frobenius_distance(const Matrix& a, const Matrix& b) {
  APTQ_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
             "frobenius_distance: shape mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a.flat()[i]) - b.flat()[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

void softmax_rows(Matrix& m, long causal_offset) {
  const std::size_t rows = m.rows();
  const std::size_t cols = m.cols();
  for (std::size_t r = 0; r < rows; ++r) {
    float* row = m.data() + r * cols;
    const std::size_t limit =
        causal_offset < 0
            ? cols
            : std::min<std::size_t>(cols, r + 1 + static_cast<std::size_t>(
                                                      causal_offset));
    APTQ_CHECK(limit > 0, "softmax_rows: fully masked row");
    float max_v = row[0];
    for (std::size_t c = 1; c < limit; ++c) {
      max_v = std::max(max_v, row[c]);
    }
    float sum = 0.0f;
    for (std::size_t c = 0; c < limit; ++c) {
      row[c] = std::exp(row[c] - max_v);
      sum += row[c];
    }
    const float inv = 1.0f / sum;
    for (std::size_t c = 0; c < limit; ++c) {
      row[c] *= inv;
    }
    for (std::size_t c = limit; c < cols; ++c) {
      row[c] = 0.0f;
    }
  }
}

void softmax_rows_backward(const Matrix& probs, const Matrix& grad_probs,
                           Matrix& grad_scores) {
  APTQ_CHECK(probs.rows() == grad_probs.rows() &&
                 probs.cols() == grad_probs.cols(),
             "softmax_rows_backward: shape mismatch");
  grad_scores.resize(probs.rows(), probs.cols());
  for (std::size_t r = 0; r < probs.rows(); ++r) {
    const float* p = probs.data() + r * probs.cols();
    const float* dp = grad_probs.data() + r * probs.cols();
    float* ds = grad_scores.data() + r * probs.cols();
    float inner = 0.0f;
    for (std::size_t c = 0; c < probs.cols(); ++c) {
      inner += p[c] * dp[c];
    }
    for (std::size_t c = 0; c < probs.cols(); ++c) {
      ds[c] = p[c] * (dp[c] - inner);
    }
  }
}

void rmsnorm_forward(const Matrix& in, std::span<const float> gain, float eps,
                     Matrix& out, std::vector<float>& inv_rms) {
  const std::size_t rows = in.rows();
  const std::size_t cols = in.cols();
  APTQ_CHECK(gain.size() == cols, "rmsnorm_forward: gain size mismatch");
  out.resize(rows, cols);
  inv_rms.assign(rows, 0.0f);
  for (std::size_t r = 0; r < rows; ++r) {
    const float* x = in.data() + r * cols;
    float* y = out.data() + r * cols;
    float ms = 0.0f;
    for (std::size_t c = 0; c < cols; ++c) {
      ms += x[c] * x[c];
    }
    const float inv = 1.0f / std::sqrt(ms / static_cast<float>(cols) + eps);
    inv_rms[r] = inv;
    for (std::size_t c = 0; c < cols; ++c) {
      y[c] = x[c] * inv * gain[c];
    }
  }
}

void rmsnorm_backward(const Matrix& in, std::span<const float> gain,
                      std::span<const float> inv_rms, const Matrix& grad_out,
                      Matrix& grad_in, std::span<float> grad_gain) {
  const std::size_t rows = in.rows();
  const std::size_t cols = in.cols();
  APTQ_CHECK(grad_out.rows() == rows && grad_out.cols() == cols,
             "rmsnorm_backward: grad shape mismatch");
  APTQ_CHECK(gain.size() == cols && grad_gain.size() == cols &&
                 inv_rms.size() == rows,
             "rmsnorm_backward: size mismatch");
  grad_in.resize(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    const float* x = in.data() + r * cols;
    const float* dy = grad_out.data() + r * cols;
    float* dx = grad_in.data() + r * cols;
    const float inv = inv_rms[r];
    float inner = 0.0f;  // sum_j dy_j * g_j * x_j
    for (std::size_t c = 0; c < cols; ++c) {
      inner += dy[c] * gain[c] * x[c];
    }
    const float coef = inv * inv * inv * inner / static_cast<float>(cols);
    for (std::size_t c = 0; c < cols; ++c) {
      dx[c] = inv * gain[c] * dy[c] - coef * x[c];
      grad_gain[c] += dy[c] * x[c] * inv;
    }
  }
}

void silu(const Matrix& in, Matrix& out) {
  out.resize(in.rows(), in.cols());
  const float* x = in.data();
  float* y = out.data();
  for (std::size_t i = 0; i < in.size(); ++i) {
    const float s = 1.0f / (1.0f + std::exp(-x[i]));
    y[i] = x[i] * s;
  }
}

void silu_backward(const Matrix& in, const Matrix& grad_out, Matrix& grad_in) {
  APTQ_CHECK(in.rows() == grad_out.rows() && in.cols() == grad_out.cols(),
             "silu_backward: shape mismatch");
  grad_in.resize(in.rows(), in.cols());
  const float* x = in.data();
  const float* dy = grad_out.data();
  float* dx = grad_in.data();
  for (std::size_t i = 0; i < in.size(); ++i) {
    const float s = 1.0f / (1.0f + std::exp(-x[i]));
    // d/dx [x * s(x)] = s + x * s * (1 - s)
    dx[i] = dy[i] * (s + x[i] * s * (1.0f - s));
  }
}

void rope_apply(Matrix& x, std::size_t head_dim, float theta_base,
                bool inverse, std::size_t position_offset) {
  APTQ_CHECK(head_dim >= 2 && head_dim % 2 == 0,
             "rope_apply: head_dim must be even and >= 2");
  APTQ_CHECK(x.cols() % head_dim == 0,
             "rope_apply: cols must be a multiple of head_dim");
  const std::size_t heads = x.cols() / head_dim;
  const std::size_t half = head_dim / 2;
  const float sign = inverse ? -1.0f : 1.0f;
  // The frequencies depend only on the head geometry: one pow each, hoisted
  // out of the row loop (previously recomputed rows×half times). Per row,
  // the position's cos/sin pairs go into O(half) tables reused across every
  // head — same float expressions as the per-element originals, so results
  // are bitwise identical (pinned by tensor_test.cpp).
  std::vector<float> freq(half), cos_tab(half), sin_tab(half);
  for (std::size_t i = 0; i < half; ++i) {
    freq[i] = std::pow(theta_base, -2.0f * static_cast<float>(i) /
                                       static_cast<float>(head_dim));
  }
  for (std::size_t t = 0; t < x.rows(); ++t) {
    const float pos = static_cast<float>(t + position_offset);
    for (std::size_t i = 0; i < half; ++i) {
      const float angle = pos * freq[i];
      cos_tab[i] = std::cos(angle);
      sin_tab[i] = sign * std::sin(angle);
    }
    float* row = x.data() + t * x.cols();
    for (std::size_t h = 0; h < heads; ++h) {
      float* head = row + h * head_dim;
      for (std::size_t i = 0; i < half; ++i) {
        float* pair = head + 2 * i;
        const float x0 = pair[0];
        const float x1 = pair[1];
        pair[0] = cos_tab[i] * x0 - sin_tab[i] * x1;
        pair[1] = sin_tab[i] * x0 + cos_tab[i] * x1;
      }
    }
  }
}

void rope_apply_rows(Matrix& x, std::size_t head_dim,
                     std::span<const std::size_t> positions,
                     float theta_base) {
  APTQ_CHECK(head_dim >= 2 && head_dim % 2 == 0,
             "rope_apply_rows: head_dim must be even and >= 2");
  APTQ_CHECK(x.cols() % head_dim == 0,
             "rope_apply_rows: cols must be a multiple of head_dim");
  APTQ_CHECK(positions.size() == x.rows(),
             "rope_apply_rows: one position per row required");
  const std::size_t heads = x.cols() / head_dim;
  const std::size_t half = head_dim / 2;
  // Same hoisted frequency/cos/sin tables — and the same per-element
  // expressions — as rope_apply, so each row matches a solo rope_apply at
  // position_offset = positions[t] bit-for-bit (pinned by tensor_test).
  std::vector<float> freq(half), cos_tab(half), sin_tab(half);
  for (std::size_t i = 0; i < half; ++i) {
    freq[i] = std::pow(theta_base, -2.0f * static_cast<float>(i) /
                                       static_cast<float>(head_dim));
  }
  for (std::size_t t = 0; t < x.rows(); ++t) {
    const float pos = static_cast<float>(positions[t]);
    for (std::size_t i = 0; i < half; ++i) {
      const float angle = pos * freq[i];
      cos_tab[i] = std::cos(angle);
      sin_tab[i] = std::sin(angle);
    }
    float* row = x.data() + t * x.cols();
    for (std::size_t h = 0; h < heads; ++h) {
      float* head = row + h * head_dim;
      for (std::size_t i = 0; i < half; ++i) {
        float* pair = head + 2 * i;
        const float x0 = pair[0];
        const float x1 = pair[1];
        pair[0] = cos_tab[i] * x0 - sin_tab[i] * x1;
        pair[1] = sin_tab[i] * x0 + cos_tab[i] * x1;
      }
    }
  }
}

double diag_mean(const Matrix& m) {
  APTQ_CHECK(m.rows() == m.cols() && m.rows() > 0,
             "diag_mean: square non-empty matrix required");
  return trace(m) / static_cast<double>(m.rows());
}

double trace(const Matrix& m) {
  APTQ_CHECK(m.rows() == m.cols(), "trace: square matrix required");
  double acc = 0.0;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    acc += m(i, i);
  }
  return acc;
}

}  // namespace aptq
