#include "tensor/cholesky.hpp"

#include <cmath>
#include <vector>

#include "tensor/ops.hpp"

namespace aptq {

namespace {

// Double-precision working copy for numerically robust factorization.
std::vector<double> to_double(const Matrix& m) {
  std::vector<double> d(m.size());
  for (std::size_t i = 0; i < m.size(); ++i) {
    d[i] = m.flat()[i];
  }
  return d;
}

}  // namespace

std::optional<Matrix> cholesky_lower(const Matrix& a) {
  APTQ_CHECK(a.rows() == a.cols(), "cholesky_lower: square matrix required");
  const std::size_t n = a.rows();
  std::vector<double> w = to_double(a);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = w[j * n + j];
    for (std::size_t k = 0; k < j; ++k) {
      diag -= w[j * n + k] * w[j * n + k];
    }
    if (!(diag > 0.0) || !std::isfinite(diag)) {
      return std::nullopt;
    }
    const double ljj = std::sqrt(diag);
    w[j * n + j] = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = w[i * n + j];
      for (std::size_t k = 0; k < j; ++k) {
        v -= w[i * n + k] * w[j * n + k];
      }
      w[i * n + j] = v / ljj;
    }
  }
  Matrix lower(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      lower(i, j) = static_cast<float>(w[i * n + j]);
    }
  }
  return lower;
}

Matrix cholesky_inverse_from_lower(const Matrix& lower) {
  const std::size_t n = lower.rows();
  APTQ_CHECK(lower.cols() == n, "cholesky_inverse: square factor required");
  // Invert L in double precision (forward substitution per unit column),
  // then A⁻¹ = L⁻ᵀ · L⁻¹.
  std::vector<double> l = to_double(lower);
  std::vector<double> linv(n * n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    linv[j * n + j] = 1.0 / l[j * n + j];
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = 0.0;
      for (std::size_t k = j; k < i; ++k) {
        acc += l[i * n + k] * linv[k * n + j];
      }
      linv[i * n + j] = -acc / l[i * n + i];
    }
  }
  Matrix inv(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double acc = 0.0;
      for (std::size_t k = i; k < n; ++k) {  // L⁻¹ is lower triangular
        acc += linv[k * n + i] * linv[k * n + j];
      }
      inv(i, j) = static_cast<float>(acc);
      inv(j, i) = static_cast<float>(acc);
    }
  }
  return inv;
}

Matrix spd_inverse(const Matrix& a) {
  auto lower = cholesky_lower(a);
  APTQ_CHECK(lower.has_value(), "spd_inverse: matrix not positive definite");
  return cholesky_inverse_from_lower(*lower);
}

Matrix gptq_inverse_factor(const Matrix& a) {
  // U = Mᵀ where M is the lower Cholesky factor of A⁻¹ (A⁻¹ = M·Mᵀ = Uᵀ·U).
  const Matrix inv = spd_inverse(a);
  auto m = cholesky_lower(inv);
  APTQ_CHECK(m.has_value(),
             "gptq_inverse_factor: inverse not positive definite");
  return m->transposed();
}

void solve_lower(const Matrix& lower, std::span<const float> b,
                 std::span<float> x) {
  const std::size_t n = lower.rows();
  APTQ_CHECK(b.size() == n && x.size() == n, "solve_lower: size mismatch");
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) {
      acc -= lower(i, k) * x[k];
    }
    x[i] = static_cast<float>(acc / lower(i, i));
  }
}

void solve_lower_transposed(const Matrix& lower, std::span<const float> b,
                            std::span<float> x) {
  const std::size_t n = lower.rows();
  APTQ_CHECK(b.size() == n && x.size() == n,
             "solve_lower_transposed: size mismatch");
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) {
      acc -= lower(k, ii) * x[k];
    }
    x[ii] = static_cast<float>(acc / lower(ii, ii));
  }
}

}  // namespace aptq
