// Dense row-major single-precision matrix — the storage type for model
// weights, activations, Hessians and quantization work buffers.
//
// Matrix is a regular value type (C.11): copyable, movable, equality-
// comparable, with its invariant (data_.size() == rows_*cols_) established
// at construction and preserved by every operation.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace aptq {

/// Dense rows×cols matrix of float, row-major.
class Matrix {
 public:
  Matrix() = default;

  /// Zero-initialized rows×cols matrix.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  /// Matrix filled with `value`.
  Matrix(std::size_t rows, std::size_t cols, float value)
      : rows_(rows), cols_(cols), data_(rows * cols, value) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(std::size_t r, std::size_t c) {
    APTQ_CHECK(r < rows_ && c < cols_, "Matrix::at out of range");
    return data_[r * cols_ + c];
  }
  float at(std::size_t r, std::size_t c) const {
    APTQ_CHECK(r < rows_ && c < cols_, "Matrix::at out of range");
    return data_[r * cols_ + c];
  }

  /// Unchecked element access for inner loops.
  float& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Mutable / const view of one row.
  std::span<float> row(std::size_t r) {
    APTQ_CHECK(r < rows_, "Matrix::row out of range");
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const float> row(std::size_t r) const {
    APTQ_CHECK(r < rows_, "Matrix::row out of range");
    return {data_.data() + r * cols_, cols_};
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Flat view of all elements.
  std::span<float> flat() { return {data_.data(), data_.size()}; }
  std::span<const float> flat() const { return {data_.data(), data_.size()}; }

  void fill(float value) { data_.assign(data_.size(), value); }
  void set_zero() { fill(0.0f); }

  /// Resize to rows×cols, zero-filled (contents discarded).
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0f);
  }

  /// i.i.d. N(mean, stddev²) entries.
  static Matrix randn(std::size_t rows, std::size_t cols, Rng& rng,
                      float mean = 0.0f, float stddev = 1.0f);

  /// Identity (rows == cols).
  static Matrix identity(std::size_t n);

  /// Transposed copy.
  Matrix transposed() const;

  bool operator==(const Matrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace aptq
