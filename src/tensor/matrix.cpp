#include "tensor/matrix.hpp"

namespace aptq {

Matrix Matrix::randn(std::size_t rows, std::size_t cols, Rng& rng, float mean,
                     float stddev) {
  Matrix m(rows, cols);
  for (float& v : m.flat()) {
    v = rng.normal(mean, stddev);
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = 1.0f;
  }
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

}  // namespace aptq
