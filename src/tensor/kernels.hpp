// Register-tiled, cache-blocked micro-kernels — the single-core arithmetic
// engine under gemm(), Hessian accumulation and the GPTQ panel updates.
//
// Design (docs/KERNELS.md):
//   * One NN micro-kernel. Both operands are repacked into contiguous
//     panels first, so all four Trans variants (and the SYRK below) reduce
//     to the same inner loop: a kGemmMR-row accumulator block, two vector
//     registers wide (8 floats baseline / 16 under AVX), held in GCC/Clang
//     vector-extension types so the accumulators provably stay in the
//     register file. Each k-step broadcasts one packed-A lane against the
//     unit-stride packed-B row. No branches in the loop body.
//   * Cache blocking: the shared dimension is cut into kGemmKC slices
//     (packed B panel stays cache-resident), rows into kGemmMR tiles
//     grouped kGemmMC at a time for the thread pool.
//   * Determinism contract: tile and chunk boundaries are a pure function
//     of the operand shapes — never of the thread count — so results are
//     bitwise identical at any thread count. Tiling does reassociate the
//     k-summation, so tiled results are *not* bitwise equal to the naive
//     loops; aptq::ref keeps those as the tolerance oracle.
#pragma once

#include <cstddef>
#include <span>

#include "tensor/matrix.hpp"

namespace aptq {

enum class Trans;  // defined in tensor/ops.hpp

/// Micro-kernel geometry, exposed so tests can probe tile boundaries.
inline constexpr std::size_t kGemmMR = 6;    // rows per register tile
inline constexpr std::size_t kGemmNR = 8;    // baseline cols per tile (AVX: 16)
inline constexpr std::size_t kGemmKC = 256;  // k-slice per packed panel
inline constexpr std::size_t kGemmMC = 96;   // rows per parallel chunk

/// C += alpha * op(A) * op(B) through the packed-panel micro-kernel.
/// Shapes must already agree (the public gemm() wrapper validates).
void gemm_tiled(const Matrix& a, Trans trans_a, const Matrix& b,
                Trans trans_b, Matrix& c, float alpha);

/// Borrowed view of one block-quantized matrix (the storage QuantizedLinear
/// builds): rows × groups blocks, each `bytes_per_group` packed codes plus a
/// per-group affine pair so that w = scale·q + bias (bias = -scale·zero).
///
/// Code order inside a 4-bit block follows the llama.cpp Q4 split: byte j
/// holds code j in its low nibble and code j + bytes_per_group in its high
/// nibble, so the dequant-dot kernels read x contiguously for both halves.
/// 8-bit blocks store one code per byte in order. A short tail group (cols
/// not a multiple of group_len) zero-pads its unused code slots; blocks are
/// always byte-aligned at stride bytes_per_group.
struct QBlock {
  const std::uint8_t* codes = nullptr;  // rows × groups × bytes_per_group
  const float* scale = nullptr;         // rows × groups
  const float* bias = nullptr;          // rows × groups
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t group_len = 0;        // codes per full group
  std::size_t groups = 0;           // groups per row
  std::size_t bytes_per_group = 0;  // ceil(group_len · bits / 8)
  int bits = 4;                     // packed code width: 4 or 8
};

/// SYRK fast path for Hessian accumulation: upper(C) += alpha · Xᵀ·diag(γ)·X
/// where X is (tokens × d) and γ is per-token (empty ⇒ all ones). Only
/// tiles that intersect the upper triangle are computed (half the flops of
/// the full product); the strict lower triangle of C is never touched.
void syrk_upper(const Matrix& x, std::span<const float> gamma, float alpha,
                Matrix& c);

/// Symmetric matvec y = H·x reading only the diagonal and strict upper
/// triangle of H (one pass, d²/2 element reads): the SYRK-adjacent kernel
/// for Hutchinson probes against the mirrored Hessian.
void symv_upper(const Matrix& h, std::span<const float> x, std::span<float> y);

namespace kern {

/// y += xᵀ·B for row-major B (k × n): the dense matvec under 1-row GEMMs
/// (incremental decoding projections). j-vectorized, k unrolled by 4.
void gemv(const float* x, const float* b, std::size_t k, std::size_t n,
          float* y);

/// Row-batched dense GEMV: Y(batch × n) += X(batch × k) · B(k × n), both
/// row-major. Each output row is produced by exactly gemv()'s per-element
/// fold (same 4-way k-blocking, same j order), so row i of Y is bitwise
/// identical to gemv(X row i) — while each k-block of B is streamed once
/// and reused across the whole batch (the memory amortization batched
/// decode rides). Parallel over column strips; strip boundaries depend only
/// on n, so results are bitwise identical at any thread count.
void gemv_batch(const float* x, const float* b, std::size_t batch,
                std::size_t k, std::size_t n, float* y);

/// y += xᵀ·Bᵀ for row-major B (n × k): one contiguous dot per output.
void gemv_t(const float* x, const float* b, std::size_t k, std::size_t n,
            float* y);

/// GPTQ panel update: w[c] -= Σ_j err[j] · u[j·ldu + c] for c in [0, n).
/// The j-fold is blocked by 4 with a single combined subtract per element;
/// the fold order depends only on r, so results are reproducible.
void rank_update(float* w, std::size_t n, const float* err, std::size_t r,
                 const float* u, std::size_t ldu);

/// Four-accumulator dot product over contiguous spans (fixed fold order).
float dot4(const float* a, const float* b, std::size_t n);

/// llama.cpp's magic-number fast round-to-nearest (ties to even). Valid for
/// |v| < 2^22; callers clamp afterwards, quantize grids never exceed that.
inline int nearest_int(float v) {
  const float biased = v + 12582912.0f;  // 1.5 · 2^23: shifts into the
  int i;                                 // integer-exact mantissa window
  __builtin_memcpy(&i, &biased, sizeof i);
  return (i & 0x007fffff) - 0x00400000;
}

/// Fused dequant-dot of one blocked row against x (length q.cols):
/// Σ_g scale_g · Σ_c x[c]·code[c] + bias_g · xsum[g]. `xsum` holds the
/// per-group sums of x; pass nullptr to fold them on the fly (slower).
/// Vectorized nibble unpack + FMA; one horizontal reduction per row.
float qdot(const QBlock& q, std::size_t row, const float* x,
           const float* xsum);

/// y = Q_dq · x over every row (y length q.rows). Computes the per-group x
/// sums once, shares them across rows, and splits rows over the global
/// thread pool (fixed grain — bitwise identical at any thread count).
void qgemv(const QBlock& q, const float* x, float* y);

/// Row-blocked multi-vector variant: Y(n × rows) += X(n × cols) · Q_dqᵀ.
/// Each weight row is unpacked once into a stack panel and dotted with all
/// n inputs, amortizing the unpack across the batch (multi-token prefill).
/// The per-input fold is dot4 over the dequantized row — NOT the qdot fold,
/// so results differ from qgemv in the last bits (tolerance-covered).
/// Parallel over weight rows, same determinism contract.
void qgemv_multi(const QBlock& q, const float* x, std::size_t n, float* y);

/// Batched fused dequant-dot: Y(n × rows) = X(n × cols) · Q_dqᵀ where every
/// output element uses exactly qgemv's per-row fold — the codes of each
/// weight row are widened to float once per batch (u8→i32→f32 is exact, so
/// a preconverted code participates in the same float expressions as a
/// just-converted one) and the per-group accumulation then replays the
/// qdot fold per input. Row i of Y is bitwise identical to
/// qgemv(X row i) at any batch size and thread count, while the nibble
/// unpack and the code-byte streaming are paid once per row per batch —
/// this is the packed kernel under batched decode.
void qgemv_batch(const QBlock& q, const float* x, std::size_t n, float* y);

}  // namespace kern

namespace ref {

/// The pre-tiling naive loops, retained verbatim as the tolerance oracle
/// for the tiled kernels (and as the "naive" side of bench/kernels_micro).
/// C = alpha * op(A) * op(B) + beta * C; shapes are validated.
void gemm(const Matrix& a, Trans trans_a, const Matrix& b, Trans trans_b,
          Matrix& c, float alpha = 1.0f, float beta = 0.0f);

/// Naive token-loop SYRK: upper(C) += alpha · Σ_t γ_t x_t x_tᵀ — the old
/// HessianAccumulator::add_matrix inner loop, kept as the oracle.
void syrk_upper(const Matrix& x, std::span<const float> gamma, float alpha,
                Matrix& c);

/// Naive blocked dequant-dot GEMV: per element, unpack one code, dequantize
/// it, multiply-accumulate — the scalar fused-GEMV this PR's vectorized
/// kern::qgemv replaced, kept as its tolerance oracle and as the "naive"
/// side of the quantized_gemv microbench axis.
void qgemv(const QBlock& q, const float* x, float* y);

}  // namespace ref

}  // namespace aptq
