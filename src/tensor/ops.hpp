// Dense linear-algebra and neural-network kernels over Matrix.
//
// These are the compute substrate for the transformer forward/backward pass
// and the quantization solvers. gemm() dispatches by shape onto the
// register-tiled packed-panel micro-kernels in tensor/kernels.hpp (1-row
// products take a dedicated matvec path; tiny products stay on the naive
// aptq::ref loops). Every path splits work across the global thread pool
// with shape-only chunk boundaries, so results are bitwise identical at any
// thread count (docs/PARALLELISM.md); the tiled kernels reassociate the
// k-summation relative to the naive loops, so cross-implementation
// agreement is tolerance-based with aptq::ref::gemm as the oracle
// (docs/KERNELS.md).
#pragma once

#include <span>

#include "tensor/matrix.hpp"

namespace aptq {

/// Transposition selector for gemm operands.
enum class Trans { no, yes };

/// General matrix multiply: C = alpha * op(A) * op(B) + beta * C.
/// Shapes are validated; C must already have the result shape.
void gemm(const Matrix& a, Trans trans_a, const Matrix& b, Trans trans_b,
          Matrix& c, float alpha = 1.0f, float beta = 0.0f);

/// Convenience: returns op(A) * op(B).
Matrix matmul(const Matrix& a, const Matrix& b, Trans trans_a = Trans::no,
              Trans trans_b = Trans::no);

/// Sharded matmul: returns x (m×k) times a column slice w_slice (k×s) of a
/// full k×`full_cols` weight, dispatching by the FULL shape. Tensor-parallel
/// workers hold only a column slice of each weight; gemm()'s shape dispatch
/// tests 2·m·n·k against the tiled cutoff, so a worker dispatching on its
/// slice width could pick a different kernel than the solo run and break
/// bitwise equality. Every kernel's per-element fold is invariant under
/// column slicing (k-sequential, independent of n — docs/SHARDING.md), so
/// forcing the solo run's dispatch makes the slice bit-identical to the
/// matching columns of matmul(x, w_full).
Matrix matmul_col_shard(const Matrix& x, const Matrix& w_slice,
                        std::size_t full_cols);

/// y += alpha * x (flat).
void axpy(float alpha, const Matrix& x, Matrix& y);

/// Elementwise in-place scale.
void scale(Matrix& m, float alpha);

/// Dot product of two equal-length spans.
float dot(std::span<const float> a, std::span<const float> b);

/// Sum of squares of all elements.
double sum_squares(const Matrix& m);

/// Frobenius norm of (a - b). Shapes must match.
double frobenius_distance(const Matrix& a, const Matrix& b);

/// Row-wise softmax in place. If `causal_offset >= 0`, entry (r, c) is
/// masked to zero probability for c > r + causal_offset (standard causal
/// attention mask when the matrix is scores over (query, key) positions).
void softmax_rows(Matrix& m, long causal_offset = -1);

/// Backward of row-wise softmax: given probabilities P (output of
/// softmax_rows) and upstream gradient dP, writes dScores = P ∘ (dP - rowsum(P∘dP)).
void softmax_rows_backward(const Matrix& probs, const Matrix& grad_probs,
                           Matrix& grad_scores);

/// RMSNorm forward: out(r,:) = in(r,:) / rms(r) * gain, where
/// rms(r) = sqrt(mean(in(r,:)^2) + eps). Returns per-row 1/rms in inv_rms
/// (resized to rows×1) for use by the backward pass.
void rmsnorm_forward(const Matrix& in, std::span<const float> gain, float eps,
                     Matrix& out, std::vector<float>& inv_rms);

/// RMSNorm backward: accumulates grad_in and grad_gain given the cached
/// input and inv_rms from the forward pass.
void rmsnorm_backward(const Matrix& in, std::span<const float> gain,
                      std::span<const float> inv_rms, const Matrix& grad_out,
                      Matrix& grad_in, std::span<float> grad_gain);

/// SiLU (x * sigmoid(x)) applied elementwise, out-of-place.
void silu(const Matrix& in, Matrix& out);

/// d/dx SiLU evaluated at `in`, multiplied elementwise by grad_out.
void silu_backward(const Matrix& in, const Matrix& grad_out, Matrix& grad_in);

/// Rotary position embedding applied in place to a (T × d) matrix whose
/// columns are grouped in `head_dim`-sized heads; rotates pairs
/// (2i, 2i+1) within each head by position-dependent angles. `inverse`
/// applies the opposite rotation (the transpose — used in backward).
/// Row t is rotated for absolute position t + `position_offset` (used by
/// incremental decoding, where a 1-row matrix sits at an arbitrary
/// position).
void rope_apply(Matrix& x, std::size_t head_dim, float theta_base = 10000.0f,
                bool inverse = false, std::size_t position_offset = 0);

/// rope_apply with an independent absolute position per row: row t is
/// rotated for position `positions[t]` (positions.size() == x.rows()).
/// Used by batched decode, where each row belongs to a different request
/// at its own context depth. The per-row float expressions are exactly
/// rope_apply's, so row t is bitwise identical to rope_apply on a 1-row
/// matrix with position_offset = positions[t].
void rope_apply_rows(Matrix& x, std::size_t head_dim,
                     std::span<const std::size_t> positions,
                     float theta_base = 10000.0f);

/// Mean of diagonal entries (square matrix).
double diag_mean(const Matrix& m);

/// Trace of a square matrix.
double trace(const Matrix& m);

}  // namespace aptq
