// Tensor-parallel model shards and the projection RPC payloads.
//
// Split scheme: every linear — q/k/v/o/gate/up/down and the lm head — is
// split by OUTPUT features across N workers, worker w owning the
// contiguous range shard_range(out_features, w, N). For the dense model
// (input-major d_in × d_out matrices) that is a column slice; for the
// packed model (out-major QuantizedLinear) it is a row slice, which is a
// pure byte copy of the blocked storage. The root broadcasts the full
// input activation of each projection and concatenates the returned
// output slices positionally — no arithmetic happens across shard
// boundaries, so N-worker results are bitwise identical to solo decode
// for any N. This deviates from distributed-llama's row-split/all-reduce
// for o/down on purpose: summing partial products reassociates f32
// addition and breaks the byte-identity gate. Cost model and the
// measured scaling live in docs/SHARDING.md.
//
// Shard files (save_shard/load_shard) use magic "APQS" v1 and carry the
// same per-linear records as packed format v3, so split → serialize →
// load → reassemble round-trips bit-for-bit (tests/shard_test.cpp). The
// root-only f32 tensors (embeddings, norms) ride on worker 0's shard;
// workers never touch them.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "model/model.hpp"
#include "quant/packed_model.hpp"
#include "quant/qformat.hpp"
#include "tensor/matrix.hpp"

namespace aptq::net {

// v2: hello_ack carries the worker's clock (for cross-process trace
// merging), project frames carry a (trace_id, parent_span_id) context,
// and trace_flush/trace_data ship worker span buffers to the root. v1
// peers are rejected at the handshake with a clean error_report in both
// directions (docs/SHARDING.md).
inline constexpr std::uint32_t kProtoVersion = 2;
inline constexpr std::uint32_t kShardMagic = 0x41505153u;  // "APQS"
inline constexpr std::uint32_t kShardVersion = 1;
/// `layer` value addressing the lm head instead of a block projection.
inline constexpr std::uint32_t kLmHeadLayer = 0xffffffffu;

/// Contiguous output-feature range [begin, end) owned by one worker.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
};

/// Worker w's slice of n output features: [n·w/N, n·(w+1)/N). Covers
/// [0, n) exactly across workers, sizes differing by at most one.
ShardRange shard_range(std::size_t n, std::size_t worker,
                       std::size_t n_workers);

/// Output features of one linear kind under `config` (q/o/down: dim,
/// k/v: kv_dim, gate/up: ffn_dim, lm_head: vocab_size).
std::size_t linear_out_features(const ModelConfig& config, LinearKind kind);

enum class ShardKind : std::uint32_t { dense = 0, packed = 1 };

/// One worker's share of a model: per-layer output slices of the seven
/// block projections plus the lm head, and (worker 0 only) the root-side
/// f32 tensors the decode loop keeps local.
struct ModelShard {
  ShardKind kind = ShardKind::dense;
  std::uint32_t worker = 0;
  std::uint32_t n_workers = 1;
  ModelConfig config;

  /// dense: 7·n_layers column slices in (q,k,v,o,gate,up,down) layer
  /// order, each (d_in × slice).
  std::vector<Matrix> dense;
  /// packed: 7·n_layers row slices in the same order.
  std::vector<QuantizedLinear> packed;
  /// Column slice of the f32 lm head (both kinds).
  Matrix lm_head;

  /// Root tensors (tok_embed, norms), carried by worker 0's shard only.
  bool has_root_tensors = false;
  Matrix tok_embed;
  std::vector<std::vector<float>> attn_norms;
  std::vector<std::vector<float>> ffn_norms;
  std::vector<float> final_norm;

  /// Bytes of weight payload this worker streams per decode step
  /// (sliced linears + lm head slice; excludes root tensors).
  std::size_t weight_bytes() const;

  void serialize(BinaryWriter& writer) const;
  static ModelShard deserialize(BinaryReader& reader);
};

/// Worker w's shard of a dense / packed model.
ModelShard make_shard(const Model& model, std::size_t worker,
                      std::size_t n_workers);
ModelShard make_shard(const PackedModel& model, std::size_t worker,
                      std::size_t n_workers);

/// Shard-file round trip (magic "APQS" v1).
void save_shard(const ModelShard& shard, const std::string& path);
ModelShard load_shard(const std::string& path);

/// Wire form of a shard (the load_shard frame payload).
std::vector<std::uint8_t> shard_to_bytes(const ModelShard& shard);
ModelShard shard_from_bytes(std::span<const std::uint8_t> bytes);

/// Stitch a complete shard set (one per worker, any order) back into the
/// model it was carved from; bitwise identical to the original, including
/// its saved file bytes. Throws if the set is incomplete or mixed.
Model reassemble_dense(std::span<const ModelShard> shards);
PackedModel reassemble_packed(std::span<const ModelShard> shards);

/// Which kernel family the worker must replay, so its per-row folds match
/// the solo adapter's: `single` mirrors project()/head() (matmul /
/// matmul_transposed), `batch` mirrors project_batch()/head_batch()
/// (gemv_batch / qgemv_batch).
enum class ProjectOp : std::uint32_t { single = 0, batch = 1 };

/// One projection request: run `op` for (layer, kind) on input x and
/// return the worker's output slice. trace_id/parent_span_id propagate
/// the root's trace context (proto v2); trace_id == 0 means tracing is
/// off and the worker records nothing.
struct ProjectRequest {
  ProjectOp op = ProjectOp::single;
  std::uint32_t layer = 0;  ///< block index, or kLmHeadLayer
  LinearKind kind = LinearKind::q_proj;
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
  Matrix x;
};

std::vector<std::uint8_t> encode_project(ProjectOp op, std::uint32_t layer,
                                         LinearKind kind, const Matrix& x,
                                         std::uint64_t trace_id = 0,
                                         std::uint64_t parent_span_id = 0);
ProjectRequest decode_project(std::span<const std::uint8_t> bytes);

/// hello_ack payload (proto v2): the accepted version plus the worker's
/// observability clock at ack time, which the root pairs with its own
/// send/recv clocks to estimate the worker's clock offset (the midpoint
/// method; see docs/OBSERVABILITY.md).
struct HelloAck {
  std::uint32_t version = kProtoVersion;
  std::uint64_t clock_ns = 0;
};

std::vector<std::uint8_t> encode_hello_ack(const HelloAck& ack);
/// Accepts a legacy 4-byte (v1) payload so a version mismatch surfaces as
/// "worker speaks protocol 1" rather than a length error.
HelloAck decode_hello_ack(std::span<const std::uint8_t> bytes);

/// One completed worker-side span, timestamps in the worker's local
/// clock. Names travel as codes so records stay fixed-size.
enum class SpanName : std::uint32_t { recv = 0, compute = 1, send = 2 };
const char* span_name_str(SpanName name);

struct WorkerSpan {
  SpanName name = SpanName::recv;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
};

/// Span-record cap per trace_data frame; workers drop (and count) spans
/// beyond it rather than grow without bound on long sessions.
inline constexpr std::uint64_t kMaxTraceSpans = 1u << 16;

/// trace_data payload: u64 count then `count` fixed 44-byte records.
/// decode validates the count against both kMaxTraceSpans and the exact
/// byte length before allocating.
std::vector<std::uint8_t> encode_trace_spans(
    std::span<const WorkerSpan> spans);
std::vector<WorkerSpan> decode_trace_spans(
    std::span<const std::uint8_t> bytes);

/// Run one projection request against a shard, replaying the exact kernel
/// entry points the solo decode adapters use (worker side of the RPC).
Matrix shard_project(const ModelShard& shard, const ProjectRequest& req);

/// Matrix payloads (project_out frames).
std::vector<std::uint8_t> encode_matrix(const Matrix& m);
Matrix decode_matrix(std::span<const std::uint8_t> bytes);

}  // namespace aptq::net
