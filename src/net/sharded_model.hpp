// Root side of tensor-parallel decode: a model whose projections run on N
// remote workers while everything else — embeddings, norms, rope,
// attention over the KV cache, sampling — stays local. ShardedModel
// satisfies the decode adapter contract of model/decode.hpp, so the
// shared prefill/step/step_batch engine (and therefore ServeEngine) runs
// on it unchanged; every projection is a broadcast of the full input to
// all workers followed by a positional gather of output slices, which
// keeps N-worker token streams byte-identical to solo decode
// (docs/SHARDING.md).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "net/shard.hpp"
#include "net/stream.hpp"
#include "obs/trace.hpp"
#include "serve/engine.hpp"

namespace aptq::net {

/// Per-worker transport accounting, kept root-side (workers stay
/// stateless). rtt_ns and clock_offset_ns come from the hello/hello_ack
/// exchange: offset = midpoint(send, recv) − worker_clock, the classic
/// symmetric-delay estimate, so worker span timestamps rebase into the
/// root's clock to within ±rtt/2.
struct LinkStats {
  std::uint64_t rtt_ns = 0;
  std::int64_t clock_offset_ns = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_recv = 0;
  std::uint64_t projections = 0;
};

/// Root handle over N connected workers. Construction performs the full
/// session setup on every stream: hello/hello_ack, then each worker's
/// shard (worker i gets make_shard(model, i, N)), then shard_ready.
/// Streams are owned; the destructor ends the sessions best-effort.
class ShardedModel {
 public:
  ShardedModel(const Model& model,
               std::vector<std::unique_ptr<Stream>> workers);
  ShardedModel(const PackedModel& model,
               std::vector<std::unique_ptr<Stream>> workers);
  ShardedModel(const ShardedModel&) = delete;
  ShardedModel& operator=(const ShardedModel&) = delete;
  ~ShardedModel();

  const ModelConfig& config() const { return config_; }
  std::size_t n_workers() const { return workers_.size(); }
  /// "dense" / "packed" — which solo backend this mirrors.
  const std::string& base_name() const { return base_name_; }
  /// Weight bytes resident per worker, as reported by shard_ready.
  const std::vector<std::uint64_t>& worker_weight_bytes() const {
    return weight_bytes_;
  }

  /// Per-worker handshake RTT / clock offset and running byte counts
  /// (for /statz and the merged trace's clock rebasing).
  const std::vector<LinkStats>& link_stats() const { return links_; }

  /// Worker span lanes collected at shutdown (one RemoteProcess per
  /// worker, timestamps rebased into the root clock). Empty until
  /// shutdown() runs, and empty if no projection was traced. Pass to
  /// obs::write_trace(path, remote_trace()) for the merged trace.
  const std::vector<obs::RemoteProcess>& remote_trace() const {
    return remote_trace_;
  }

  /// Graceful session end: when any projection was traced, first a
  /// trace_flush/trace_data sweep collects worker spans, then
  /// shutdown/bye per worker. Idempotent; called by the destructor.
  /// Further projections throw.
  void shutdown();

  // --- decode adapter surface (model/decode.hpp contract) ---------------
  std::span<const float> embedding(std::size_t token) const {
    return tok_embed_.row(token);
  }
  std::span<const float> attn_norm(std::size_t layer) const {
    return attn_norms_[layer];
  }
  std::span<const float> ffn_norm(std::size_t layer) const {
    return ffn_norms_[layer];
  }
  std::span<const float> final_norm() const { return final_norm_; }

  Matrix project(std::size_t layer, LinearKind kind, const Matrix& x);
  Matrix project_batch(std::size_t layer, LinearKind kind, const Matrix& x);
  Matrix head(const Matrix& x);
  Matrix head_batch(const Matrix& x);

 private:
  void attach(std::vector<std::unique_ptr<Stream>> workers,
              const std::function<ModelShard(std::size_t, std::size_t)>&
                  shard_for);
  /// Broadcast one request to every worker, then gather the output
  /// slices in worker order into the full (rows × out_features) result.
  Matrix broadcast(ProjectOp op, std::uint32_t layer, LinearKind kind,
                   const Matrix& x);

  ModelConfig config_;
  std::string base_name_;
  Matrix tok_embed_;
  std::vector<std::vector<float>> attn_norms_;
  std::vector<std::vector<float>> ffn_norms_;
  std::vector<float> final_norm_;
  std::vector<std::unique_ptr<Stream>> workers_;
  std::vector<std::uint64_t> weight_bytes_;
  std::vector<LinkStats> links_;
  std::vector<obs::RemoteProcess> remote_trace_;
  std::uint64_t next_trace_id_ = 1;  // deterministic per-session counter
  bool traced_ = false;              // any projection carried a context
  bool live_ = false;
};

/// Decode entry points mirroring the Model/PackedModel overloads; the
/// shared engine supplies the non-projection math, so results are bitwise
/// identical to the solo overloads for any worker count.
Matrix decode_prefill(ShardedModel& model, std::span<const TokenId> tokens,
                      DecodeState& state);
std::vector<float> decode_step(ShardedModel& model, TokenId token,
                               DecodeState& state);
Matrix decode_step_batch(ShardedModel& model,
                         std::span<const TokenId> tokens,
                         std::span<DecodeState* const> states);
Matrix decode_verify(ShardedModel& model, std::span<const TokenId> tokens,
                     DecodeState& state);

/// ServeEngine backend over a sharded model (name "sharded_dense" /
/// "sharded_packed"). The model must outlive the backend.
serve::Backend make_backend(ShardedModel& model);

}  // namespace aptq::net
