// Root side of tensor-parallel decode: a model whose projections run on N
// remote workers while everything else — embeddings, norms, rope,
// attention over the KV cache, sampling — stays local. ShardedModel
// satisfies the decode adapter contract of model/decode.hpp, so the
// shared prefill/step/step_batch engine (and therefore ServeEngine) runs
// on it unchanged; every projection is a broadcast of the full input to
// all workers followed by a positional gather of output slices, which
// keeps N-worker token streams byte-identical to solo decode
// (docs/SHARDING.md).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "net/shard.hpp"
#include "net/stream.hpp"
#include "serve/engine.hpp"

namespace aptq::net {

/// Root handle over N connected workers. Construction performs the full
/// session setup on every stream: hello/hello_ack, then each worker's
/// shard (worker i gets make_shard(model, i, N)), then shard_ready.
/// Streams are owned; the destructor ends the sessions best-effort.
class ShardedModel {
 public:
  ShardedModel(const Model& model,
               std::vector<std::unique_ptr<Stream>> workers);
  ShardedModel(const PackedModel& model,
               std::vector<std::unique_ptr<Stream>> workers);
  ShardedModel(const ShardedModel&) = delete;
  ShardedModel& operator=(const ShardedModel&) = delete;
  ~ShardedModel();

  const ModelConfig& config() const { return config_; }
  std::size_t n_workers() const { return workers_.size(); }
  /// "dense" / "packed" — which solo backend this mirrors.
  const std::string& base_name() const { return base_name_; }
  /// Weight bytes resident per worker, as reported by shard_ready.
  const std::vector<std::uint64_t>& worker_weight_bytes() const {
    return weight_bytes_;
  }

  /// Graceful session end (shutdown/bye per worker). Idempotent; called
  /// by the destructor. Further projections throw.
  void shutdown();

  // --- decode adapter surface (model/decode.hpp contract) ---------------
  std::span<const float> embedding(std::size_t token) const {
    return tok_embed_.row(token);
  }
  std::span<const float> attn_norm(std::size_t layer) const {
    return attn_norms_[layer];
  }
  std::span<const float> ffn_norm(std::size_t layer) const {
    return ffn_norms_[layer];
  }
  std::span<const float> final_norm() const { return final_norm_; }

  Matrix project(std::size_t layer, LinearKind kind, const Matrix& x);
  Matrix project_batch(std::size_t layer, LinearKind kind, const Matrix& x);
  Matrix head(const Matrix& x);
  Matrix head_batch(const Matrix& x);

 private:
  void attach(std::vector<std::unique_ptr<Stream>> workers,
              const std::function<ModelShard(std::size_t, std::size_t)>&
                  shard_for);
  /// Broadcast one request to every worker, then gather the output
  /// slices in worker order into the full (rows × out_features) result.
  Matrix broadcast(ProjectOp op, std::uint32_t layer, LinearKind kind,
                   const Matrix& x);

  ModelConfig config_;
  std::string base_name_;
  Matrix tok_embed_;
  std::vector<std::vector<float>> attn_norms_;
  std::vector<std::vector<float>> ffn_norms_;
  std::vector<float> final_norm_;
  std::vector<std::unique_ptr<Stream>> workers_;
  std::vector<std::uint64_t> weight_bytes_;
  bool live_ = false;
};

/// Decode entry points mirroring the Model/PackedModel overloads; the
/// shared engine supplies the non-projection math, so results are bitwise
/// identical to the solo overloads for any worker count.
Matrix decode_prefill(ShardedModel& model, std::span<const TokenId> tokens,
                      DecodeState& state);
std::vector<float> decode_step(ShardedModel& model, TokenId token,
                               DecodeState& state);
Matrix decode_step_batch(ShardedModel& model,
                         std::span<const TokenId> tokens,
                         std::span<DecodeState* const> states);

/// ServeEngine backend over a sharded model (name "sharded_dense" /
/// "sharded_packed"). The model must outlive the backend.
serve::Backend make_backend(ShardedModel& model);

}  // namespace aptq::net
