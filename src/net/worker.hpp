// Worker side of the shard protocol: one session = handshake, shard
// receipt, a projection-RPC loop, shutdown. examples/shard_worker.cpp
// wraps this in a process; the equivalence tests and bench/shard_scaling
// run it on in-process threads over real localhost sockets.
#pragma once

#include "net/stream.hpp"

namespace aptq::net {

/// Serve one root session on `stream`:
///   1. hello / hello_ack (protocol version must match),
///   2. load_shard → deserialize → shard_ready (resident weight bytes),
///   3. project → project_out until a shutdown frame, answered with bye.
/// Returns after bye. On malformed input — bad frame, corrupt shard or
/// request, mid-stream disconnect — sends a best-effort error_report and
/// throws aptq::Error; it never hangs or allocates unbounded memory
/// (tests/net_fuzz_test.cpp).
void serve_worker(Stream& stream);

}  // namespace aptq::net
