#include "net/sharded_model.hpp"

#include <utility>

#include "model/decode.hpp"
#include "net/frame.hpp"
#include "obs/control.hpp"

namespace aptq::net {

namespace {

constexpr std::uint64_t kFrameHeaderBytes = 16;

const char* rpc_span_name(std::uint32_t layer, LinearKind kind) {
  if (layer == kLmHeadLayer) {
    return "rpc.lm_head";
  }
  switch (kind) {
    case LinearKind::q_proj: return "rpc.q_proj";
    case LinearKind::k_proj: return "rpc.k_proj";
    case LinearKind::v_proj: return "rpc.v_proj";
    case LinearKind::o_proj: return "rpc.o_proj";
    case LinearKind::gate_proj: return "rpc.gate_proj";
    case LinearKind::up_proj: return "rpc.up_proj";
    case LinearKind::down_proj: return "rpc.down_proj";
    case LinearKind::lm_head: return "rpc.lm_head";
  }
  return "rpc.project";
}

}  // namespace

ShardedModel::ShardedModel(const Model& model,
                           std::vector<std::unique_ptr<Stream>> workers) {
  model.config.validate();
  config_ = model.config;
  base_name_ = "dense";
  attach(std::move(workers), [&model](std::size_t w, std::size_t n) {
    return make_shard(model, w, n);
  });
}

ShardedModel::ShardedModel(const PackedModel& model,
                           std::vector<std::unique_ptr<Stream>> workers) {
  config_ = model.config();
  base_name_ = "packed";
  attach(std::move(workers), [&model](std::size_t w, std::size_t n) {
    return make_shard(model, w, n);
  });
}

ShardedModel::~ShardedModel() {
  try {
    shutdown();
  } catch (...) {
    // Destructor cleanup is best-effort; a dead connection already told
    // the worker the session is over.
  }
}

void ShardedModel::attach(
    std::vector<std::unique_ptr<Stream>> workers,
    const std::function<ModelShard(std::size_t, std::size_t)>& shard_for) {
  APTQ_CHECK(!workers.empty(), "sharded model: at least one worker required");
  for (const auto& w : workers) {
    APTQ_CHECK(w != nullptr, "sharded model: null worker stream");
  }
  workers_ = std::move(workers);
  const std::size_t n = workers_.size();
  weight_bytes_.resize(n);
  links_.resize(n);
  for (std::size_t w = 0; w < n; ++w) {
    Stream& stream = *workers_[w];
    const ModelShard shard = shard_for(w, n);
    if (w == 0) {
      // Worker 0's shard carries the root-side tensors; keep a copy local
      // — the decode loop reads them every step, the worker never does.
      tok_embed_ = shard.tok_embed;
      attn_norms_ = shard.attn_norms;
      ffn_norms_ = shard.ffn_norms;
      final_norm_ = shard.final_norm;
    }
    // Timestamp the hello round trip: the ack carries the worker's clock,
    // and under symmetric delay that clock was read at our midpoint.
    const std::uint64_t t_send = obs::now_ns();
    send_frame(stream, MsgType::hello, encode_u32(kProtoVersion));
    const Frame ack = expect_frame(stream, MsgType::hello_ack,
                                   kMaxControlPayload);
    const std::uint64_t t_recv = obs::now_ns();
    const HelloAck hello_ack = decode_hello_ack(ack.payload);
    APTQ_CHECK(hello_ack.version == kProtoVersion,
               "sharded model: worker " + stream.name() +
                   " speaks protocol version " +
                   std::to_string(hello_ack.version) + ", root speaks " +
                   std::to_string(kProtoVersion));
    LinkStats& link = links_[w];
    link.rtt_ns = t_recv - t_send;
    link.clock_offset_ns =
        static_cast<std::int64_t>((t_send + t_recv) / 2) -
        static_cast<std::int64_t>(hello_ack.clock_ns);
    link.bytes_sent += kFrameHeaderBytes + 4;
    link.bytes_recv += kFrameHeaderBytes + ack.payload.size();
    const std::vector<std::uint8_t> shard_bytes = shard_to_bytes(shard);
    link.bytes_sent += kFrameHeaderBytes + shard_bytes.size();
    send_frame(stream, MsgType::load_shard, shard_bytes);
    const Frame ready = expect_frame(stream, MsgType::shard_ready,
                                     kMaxShardPayload);
    link.bytes_recv += kFrameHeaderBytes + ready.payload.size();
    weight_bytes_[w] = decode_u64(ready.payload);
  }
  live_ = true;
}

void ShardedModel::shutdown() {
  if (!live_) {
    return;
  }
  live_ = false;
  if (traced_) {
    // Pull each worker's span buffer before ending the session, rebasing
    // its worker-local timestamps into the root clock via the handshake
    // offset estimate.
    remote_trace_.clear();
    remote_trace_.reserve(workers_.size());
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      Stream& stream = *workers_[w];
      send_frame(stream, MsgType::trace_flush, {});
      const Frame data =
          expect_frame(stream, MsgType::trace_data, kMaxTracePayload);
      links_[w].bytes_sent += kFrameHeaderBytes;
      links_[w].bytes_recv += kFrameHeaderBytes + data.payload.size();
      obs::RemoteProcess proc;
      proc.pid = static_cast<int>(w) + 2;  // pid 1 is the root process
      proc.name = "worker-" + std::to_string(w) + " (" + stream.name() + ")";
      const std::int64_t offset = links_[w].clock_offset_ns;
      for (const WorkerSpan& s : decode_trace_spans(data.payload)) {
        obs::RemoteSpan out;
        out.name = span_name_str(s.name);
        const std::int64_t rebased =
            static_cast<std::int64_t>(s.start_ns) + offset;
        out.start_ns = rebased > 0 ? static_cast<std::uint64_t>(rebased) : 0;
        out.dur_ns = s.dur_ns;
        out.trace_id = s.trace_id;
        out.span_id = s.span_id;
        out.parent_span_id = s.parent_span_id;
        proc.spans.push_back(std::move(out));
      }
      remote_trace_.push_back(std::move(proc));
    }
  }
  for (auto& worker : workers_) {
    send_frame(*worker, MsgType::shutdown, {});
    expect_frame(*worker, MsgType::bye, kMaxControlPayload);
  }
}

Matrix ShardedModel::broadcast(ProjectOp op, std::uint32_t layer,
                               LinearKind kind, const Matrix& x) {
  APTQ_CHECK(live_, "sharded model: session is shut down");
  // When tracing, this broadcast becomes one trace: the root-side span is
  // both trace root and parent of every worker's recv/compute/send. Ids
  // come from a session-local counter, so repeated identical sessions
  // produce identical ids (the merged-trace determinism test relies on
  // this).
  std::uint64_t trace_id = 0;
  if (obs::tracing_enabled()) {
    trace_id = next_trace_id_++;
    traced_ = true;
  }
  obs::TraceSpan span(rpc_span_name(layer, kind), "rpc");
  // One encode serves every worker: all shards see the full input.
  const std::vector<std::uint8_t> payload =
      encode_project(op, layer, kind, x, trace_id, trace_id);
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    send_frame(*workers_[w], MsgType::project, payload);
    links_[w].bytes_sent += kFrameHeaderBytes + payload.size();
    ++links_[w].projections;
  }
  const std::size_t full = linear_out_features(config_, kind);
  const std::size_t n = workers_.size();
  Matrix out(x.rows(), full);
  for (std::size_t w = 0; w < n; ++w) {
    const Frame f = expect_frame(*workers_[w], MsgType::project_out,
                                 kMaxProjectPayload);
    links_[w].bytes_recv += kFrameHeaderBytes + f.payload.size();
    const Matrix slice = decode_matrix(f.payload);
    const ShardRange range = shard_range(full, w, n);
    APTQ_CHECK(slice.rows() == x.rows() && slice.cols() == range.size(),
               "sharded model: worker " + workers_[w]->name() +
                   " returned a " + std::to_string(slice.rows()) + "x" +
                   std::to_string(slice.cols()) + " slice, expected " +
                   std::to_string(x.rows()) + "x" +
                   std::to_string(range.size()));
    for (std::size_t r = 0; r < slice.rows(); ++r) {
      const auto src = slice.row(r);
      std::copy(src.begin(), src.end(), out.row(r).begin() + range.begin);
    }
  }
  return out;
}

Matrix ShardedModel::project(std::size_t layer, LinearKind kind,
                             const Matrix& x) {
  return broadcast(ProjectOp::single, static_cast<std::uint32_t>(layer),
                   kind, x);
}

Matrix ShardedModel::project_batch(std::size_t layer, LinearKind kind,
                                   const Matrix& x) {
  return broadcast(ProjectOp::batch, static_cast<std::uint32_t>(layer),
                   kind, x);
}

Matrix ShardedModel::head(const Matrix& x) {
  return broadcast(ProjectOp::single, kLmHeadLayer, LinearKind::lm_head, x);
}

Matrix ShardedModel::head_batch(const Matrix& x) {
  return broadcast(ProjectOp::batch, kLmHeadLayer, LinearKind::lm_head, x);
}

namespace {

// Plugs ShardedModel into the shared decode engine. The engine takes the
// adapter by const reference, but projections mutate transport state, so
// the adapter holds a mutable handle.
struct ShardedDecodeAdapter {
  ShardedModel* model;

  const ModelConfig& config() const { return model->config(); }
  std::span<const float> embedding(std::size_t token) const {
    return model->embedding(token);
  }
  std::span<const float> attn_norm(std::size_t layer) const {
    return model->attn_norm(layer);
  }
  std::span<const float> ffn_norm(std::size_t layer) const {
    return model->ffn_norm(layer);
  }
  std::span<const float> final_norm() const { return model->final_norm(); }
  Matrix project(std::size_t layer, LinearKind kind, const Matrix& x) const {
    return model->project(layer, kind, x);
  }
  Matrix project_batch(std::size_t layer, LinearKind kind,
                       const Matrix& x) const {
    return model->project_batch(layer, kind, x);
  }
  Matrix head(const Matrix& x) const { return model->head(x); }
  Matrix head_batch(const Matrix& x) const { return model->head_batch(x); }
};

}  // namespace

Matrix decode_prefill(ShardedModel& model, std::span<const TokenId> tokens,
                      DecodeState& state) {
  const ShardedDecodeAdapter adapter{&model};
  return detail::decode_prefill_impl(adapter, tokens, state, {});
}

std::vector<float> decode_step(ShardedModel& model, TokenId token,
                               DecodeState& state) {
  const ShardedDecodeAdapter adapter{&model};
  return detail::decode_step_impl(adapter, token, state, {});
}

Matrix decode_step_batch(ShardedModel& model,
                         std::span<const TokenId> tokens,
                         std::span<DecodeState* const> states) {
  const ShardedDecodeAdapter adapter{&model};
  return detail::decode_step_batch_impl(adapter, tokens, states, {});
}

Matrix decode_verify(ShardedModel& model, std::span<const TokenId> tokens,
                     DecodeState& state) {
  const ShardedDecodeAdapter adapter{&model};
  return detail::decode_verify_impl(adapter, tokens, state, {});
}

serve::Backend make_backend(ShardedModel& model) {
  serve::Backend b;
  b.name = "sharded_" + model.base_name();
  b.config = model.config();
  b.prefill = [&model](std::span<const TokenId> tokens, DecodeState& state) {
    return decode_prefill(model, tokens, state);
  };
  b.step = [&model](TokenId token, DecodeState& state) {
    return decode_step(model, token, state);
  };
  b.step_batch = [&model](std::span<const TokenId> tokens,
                          std::span<DecodeState* const> states) {
    return decode_step_batch(model, tokens, states);
  };
  b.verify = [&model](std::span<const TokenId> tokens, DecodeState& state) {
    return decode_verify(model, tokens, state);
  };
  return b;
}

}  // namespace aptq::net
