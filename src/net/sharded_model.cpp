#include "net/sharded_model.hpp"

#include <utility>

#include "model/decode.hpp"
#include "net/frame.hpp"

namespace aptq::net {

ShardedModel::ShardedModel(const Model& model,
                           std::vector<std::unique_ptr<Stream>> workers) {
  model.config.validate();
  config_ = model.config;
  base_name_ = "dense";
  attach(std::move(workers), [&model](std::size_t w, std::size_t n) {
    return make_shard(model, w, n);
  });
}

ShardedModel::ShardedModel(const PackedModel& model,
                           std::vector<std::unique_ptr<Stream>> workers) {
  config_ = model.config();
  base_name_ = "packed";
  attach(std::move(workers), [&model](std::size_t w, std::size_t n) {
    return make_shard(model, w, n);
  });
}

ShardedModel::~ShardedModel() {
  try {
    shutdown();
  } catch (...) {
    // Destructor cleanup is best-effort; a dead connection already told
    // the worker the session is over.
  }
}

void ShardedModel::attach(
    std::vector<std::unique_ptr<Stream>> workers,
    const std::function<ModelShard(std::size_t, std::size_t)>& shard_for) {
  APTQ_CHECK(!workers.empty(), "sharded model: at least one worker required");
  for (const auto& w : workers) {
    APTQ_CHECK(w != nullptr, "sharded model: null worker stream");
  }
  workers_ = std::move(workers);
  const std::size_t n = workers_.size();
  weight_bytes_.resize(n);
  for (std::size_t w = 0; w < n; ++w) {
    Stream& stream = *workers_[w];
    const ModelShard shard = shard_for(w, n);
    if (w == 0) {
      // Worker 0's shard carries the root-side tensors; keep a copy local
      // — the decode loop reads them every step, the worker never does.
      tok_embed_ = shard.tok_embed;
      attn_norms_ = shard.attn_norms;
      ffn_norms_ = shard.ffn_norms;
      final_norm_ = shard.final_norm;
    }
    send_frame(stream, MsgType::hello, encode_u32(kProtoVersion));
    const Frame ack = expect_frame(stream, MsgType::hello_ack,
                                   kMaxControlPayload);
    const std::uint32_t version = decode_u32(ack.payload);
    APTQ_CHECK(version == kProtoVersion,
               "sharded model: worker " + stream.name() +
                   " speaks protocol version " + std::to_string(version) +
                   ", root speaks " + std::to_string(kProtoVersion));
    send_frame(stream, MsgType::load_shard, shard_to_bytes(shard));
    const Frame ready = expect_frame(stream, MsgType::shard_ready,
                                     kMaxShardPayload);
    weight_bytes_[w] = decode_u64(ready.payload);
  }
  live_ = true;
}

void ShardedModel::shutdown() {
  if (!live_) {
    return;
  }
  live_ = false;
  for (auto& worker : workers_) {
    send_frame(*worker, MsgType::shutdown, {});
    expect_frame(*worker, MsgType::bye, kMaxControlPayload);
  }
}

Matrix ShardedModel::broadcast(ProjectOp op, std::uint32_t layer,
                               LinearKind kind, const Matrix& x) {
  APTQ_CHECK(live_, "sharded model: session is shut down");
  // One encode serves every worker: all shards see the full input.
  const std::vector<std::uint8_t> payload =
      encode_project(op, layer, kind, x);
  for (auto& worker : workers_) {
    send_frame(*worker, MsgType::project, payload);
  }
  const std::size_t full = linear_out_features(config_, kind);
  const std::size_t n = workers_.size();
  Matrix out(x.rows(), full);
  for (std::size_t w = 0; w < n; ++w) {
    const Frame f = expect_frame(*workers_[w], MsgType::project_out,
                                 kMaxProjectPayload);
    const Matrix slice = decode_matrix(f.payload);
    const ShardRange range = shard_range(full, w, n);
    APTQ_CHECK(slice.rows() == x.rows() && slice.cols() == range.size(),
               "sharded model: worker " + workers_[w]->name() +
                   " returned a " + std::to_string(slice.rows()) + "x" +
                   std::to_string(slice.cols()) + " slice, expected " +
                   std::to_string(x.rows()) + "x" +
                   std::to_string(range.size()));
    for (std::size_t r = 0; r < slice.rows(); ++r) {
      const auto src = slice.row(r);
      std::copy(src.begin(), src.end(), out.row(r).begin() + range.begin);
    }
  }
  return out;
}

Matrix ShardedModel::project(std::size_t layer, LinearKind kind,
                             const Matrix& x) {
  return broadcast(ProjectOp::single, static_cast<std::uint32_t>(layer),
                   kind, x);
}

Matrix ShardedModel::project_batch(std::size_t layer, LinearKind kind,
                                   const Matrix& x) {
  return broadcast(ProjectOp::batch, static_cast<std::uint32_t>(layer),
                   kind, x);
}

Matrix ShardedModel::head(const Matrix& x) {
  return broadcast(ProjectOp::single, kLmHeadLayer, LinearKind::lm_head, x);
}

Matrix ShardedModel::head_batch(const Matrix& x) {
  return broadcast(ProjectOp::batch, kLmHeadLayer, LinearKind::lm_head, x);
}

namespace {

// Plugs ShardedModel into the shared decode engine. The engine takes the
// adapter by const reference, but projections mutate transport state, so
// the adapter holds a mutable handle.
struct ShardedDecodeAdapter {
  ShardedModel* model;

  const ModelConfig& config() const { return model->config(); }
  std::span<const float> embedding(std::size_t token) const {
    return model->embedding(token);
  }
  std::span<const float> attn_norm(std::size_t layer) const {
    return model->attn_norm(layer);
  }
  std::span<const float> ffn_norm(std::size_t layer) const {
    return model->ffn_norm(layer);
  }
  std::span<const float> final_norm() const { return model->final_norm(); }
  Matrix project(std::size_t layer, LinearKind kind, const Matrix& x) const {
    return model->project(layer, kind, x);
  }
  Matrix project_batch(std::size_t layer, LinearKind kind,
                       const Matrix& x) const {
    return model->project_batch(layer, kind, x);
  }
  Matrix head(const Matrix& x) const { return model->head(x); }
  Matrix head_batch(const Matrix& x) const { return model->head_batch(x); }
};

}  // namespace

Matrix decode_prefill(ShardedModel& model, std::span<const TokenId> tokens,
                      DecodeState& state) {
  const ShardedDecodeAdapter adapter{&model};
  return detail::decode_prefill_impl(adapter, tokens, state, {});
}

std::vector<float> decode_step(ShardedModel& model, TokenId token,
                               DecodeState& state) {
  const ShardedDecodeAdapter adapter{&model};
  return detail::decode_step_impl(adapter, token, state, {});
}

Matrix decode_step_batch(ShardedModel& model,
                         std::span<const TokenId> tokens,
                         std::span<DecodeState* const> states) {
  const ShardedDecodeAdapter adapter{&model};
  return detail::decode_step_batch_impl(adapter, tokens, states, {});
}

serve::Backend make_backend(ShardedModel& model) {
  serve::Backend b;
  b.name = "sharded_" + model.base_name();
  b.config = model.config();
  b.prefill = [&model](std::span<const TokenId> tokens, DecodeState& state) {
    return decode_prefill(model, tokens, state);
  };
  b.step = [&model](TokenId token, DecodeState& state) {
    return decode_step(model, token, state);
  };
  b.step_batch = [&model](std::span<const TokenId> tokens,
                          std::span<DecodeState* const> states) {
    return decode_step_batch(model, tokens, states);
  };
  return b;
}

}  // namespace aptq::net
