#include "net/worker.hpp"

#include <string>
#include <vector>

#include "net/frame.hpp"
#include "net/shard.hpp"
#include "obs/control.hpp"
#include "obs/log.hpp"

namespace aptq::net {

namespace {

void serve_session(Stream& stream) {
  const Frame hello =
      expect_frame(stream, MsgType::hello, kMaxControlPayload);
  const std::uint32_t version = decode_u32(hello.payload);
  APTQ_CHECK(version == kProtoVersion,
             "worker: protocol version mismatch (root " +
                 std::to_string(version) + ", worker " +
                 std::to_string(kProtoVersion) + ")");
  // The ack carries this worker's clock so the root can estimate our
  // clock offset from its send/recv timestamps around the handshake.
  HelloAck ack;
  ack.version = kProtoVersion;
  ack.clock_ns = obs::now_ns();
  send_frame(stream, MsgType::hello_ack, encode_hello_ack(ack));

  const Frame shard_frame =
      expect_frame(stream, MsgType::load_shard, kMaxShardPayload);
  const ModelShard shard = shard_from_bytes(shard_frame.payload);
  send_frame(stream, MsgType::shard_ready,
             encode_u64(shard.weight_bytes()));
  const std::string rank = "[worker " + std::to_string(shard.worker) + "] ";
  obs::log_info(rank + "shard ready: " +
                std::to_string(shard.weight_bytes()) + " weight bytes (" +
                std::to_string(shard.worker + 1) + "/" +
                std::to_string(shard.n_workers) + " of split)");

  // Session-local span buffer: spans are recorded here (not in the global
  // obs registry, which in-process test workers share with the root) and
  // shipped on trace_flush. Capped; overflow is dropped and counted.
  std::vector<WorkerSpan> spans;
  std::uint64_t dropped = 0;
  std::uint64_t next_span_id = 1;
  auto record = [&](SpanName name, std::uint64_t start_ns,
                    std::uint64_t end_ns, const ProjectRequest& req) {
    if (req.trace_id == 0) {
      return;
    }
    if (spans.size() >= kMaxTraceSpans) {
      ++dropped;
      return;
    }
    WorkerSpan s;
    s.name = name;
    s.start_ns = start_ns;
    s.dur_ns = end_ns - start_ns;
    s.trace_id = req.trace_id;
    s.span_id = next_span_id++;
    s.parent_span_id = req.parent_span_id;
    spans.push_back(s);
  };

  while (true) {
    const std::uint64_t t_wait = obs::now_ns();
    const Frame f = recv_frame(stream, kMaxProjectPayload);
    const std::uint64_t t_recv = obs::now_ns();
    if (f.type == MsgType::shutdown) {
      if (dropped > 0) {
        obs::log_warn(rank + "dropped " + std::to_string(dropped) +
                      " trace spans (buffer cap)");
      }
      send_frame(stream, MsgType::bye, {});
      return;
    }
    if (f.type == MsgType::trace_flush) {
      send_frame(stream, MsgType::trace_data, encode_trace_spans(spans));
      spans.clear();
      next_span_id = 1;
      continue;
    }
    APTQ_CHECK(f.type == MsgType::project,
               "worker: unexpected frame in projection loop");
    const ProjectRequest req = decode_project(f.payload);
    // recv spans start at the wait point, so lane gaps show idle time
    // between the root's requests rather than vanishing.
    record(SpanName::recv, t_wait, t_recv, req);
    const Matrix out = shard_project(shard, req);
    const std::uint64_t t_compute = obs::now_ns();
    record(SpanName::compute, t_recv, t_compute, req);
    send_frame(stream, MsgType::project_out, encode_matrix(out));
    record(SpanName::send, t_compute, obs::now_ns(), req);
  }
}

}  // namespace

void serve_worker(Stream& stream) {
  try {
    serve_session(stream);
  } catch (const Error& e) {
    // Tell the root why before the connection drops; rethrow so the
    // worker process exits non-zero.
    try_send_error(stream, e.what());
    throw;
  }
}

}  // namespace aptq::net
