#include "net/worker.hpp"

#include "net/frame.hpp"
#include "net/shard.hpp"

namespace aptq::net {

namespace {

void serve_session(Stream& stream) {
  const Frame hello =
      expect_frame(stream, MsgType::hello, kMaxControlPayload);
  const std::uint32_t version = decode_u32(hello.payload);
  APTQ_CHECK(version == kProtoVersion,
             "worker: protocol version mismatch (root " +
                 std::to_string(version) + ", worker " +
                 std::to_string(kProtoVersion) + ")");
  send_frame(stream, MsgType::hello_ack, encode_u32(kProtoVersion));

  const Frame shard_frame =
      expect_frame(stream, MsgType::load_shard, kMaxShardPayload);
  const ModelShard shard = shard_from_bytes(shard_frame.payload);
  send_frame(stream, MsgType::shard_ready,
             encode_u64(shard.weight_bytes()));

  while (true) {
    const Frame f = recv_frame(stream, kMaxProjectPayload);
    if (f.type == MsgType::shutdown) {
      send_frame(stream, MsgType::bye, {});
      return;
    }
    APTQ_CHECK(f.type == MsgType::project,
               "worker: unexpected frame in projection loop");
    const ProjectRequest req = decode_project(f.payload);
    const Matrix out = shard_project(shard, req);
    send_frame(stream, MsgType::project_out, encode_matrix(out));
  }
}

}  // namespace

void serve_worker(Stream& stream) {
  try {
    serve_session(stream);
  } catch (const Error& e) {
    // Tell the root why before the connection drops; rethrow so the
    // worker process exits non-zero.
    try_send_error(stream, e.what());
    throw;
  }
}

}  // namespace aptq::net
