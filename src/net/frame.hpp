// Length-prefixed message framing for the root/worker protocol.
//
// Wire layout, little-endian: a 16-byte header
//   [u32 magic "APTN"] [u32 type] [u64 payload_len]
// followed by payload_len payload bytes. recv_frame() applies the
// BinaryReader validation discipline at the transport boundary: the magic
// and type are checked first (a desynchronized or corrupted stream fails
// on the header, not deep inside a payload parser) and payload_len is
// checked against the caller's cap BEFORE any allocation, so a bit-flipped
// length field costs an aptq::Error, never a multi-gigabyte allocation.
// Payloads themselves are parsed with BinaryReader over the received
// buffer, which re-validates every interior length prefix against the
// frame size (tests/net_fuzz_test.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/stream.hpp"

namespace aptq::net {

inline constexpr std::uint32_t kFrameMagic = 0x4150544eu;  // "APTN"

/// Message types of the shard protocol, in session order. Values are wire
/// format; renumbering is a protocol break.
enum class MsgType : std::uint32_t {
  hello = 1,        ///< root → worker: protocol version
  hello_ack = 2,    ///< worker → root: accepted version
  load_shard = 3,   ///< root → worker: serialized ModelShard
  shard_ready = 4,  ///< worker → root: resident weight bytes
  project = 5,      ///< root → worker: one projection request
  project_out = 6,  ///< worker → root: the output slice
  shutdown = 7,     ///< root → worker: end of session
  bye = 8,          ///< worker → root: acknowledged, closing
  error_report = 9, ///< either way: fatal error text, then close
  trace_flush = 10, ///< root → worker: ship your recorded spans (proto v2)
  trace_data = 11,  ///< worker → root: encoded span records (proto v2)
};

inline constexpr std::uint32_t kMsgTypeMax =
    static_cast<std::uint32_t>(MsgType::trace_data);

/// Payload caps by context. Control frames are tiny; project frames are
/// bounded by activations (batch × ffn_dim floats at most); load_shard
/// carries 1/N of a model's weights; trace_data carries at most
/// kMaxTraceSpans fixed-size span records (see shard.hpp).
inline constexpr std::uint64_t kMaxControlPayload = 1u << 16;
inline constexpr std::uint64_t kMaxProjectPayload = 1ull << 26;  // 64 MiB
inline constexpr std::uint64_t kMaxShardPayload = 1ull << 30;    // 1 GiB
inline constexpr std::uint64_t kMaxTracePayload = 1ull << 22;    // 4 MiB

struct Frame {
  MsgType type = MsgType::hello;
  std::vector<std::uint8_t> payload;
};

/// Write one frame (header + payload).
void send_frame(Stream& stream, MsgType type,
                std::span<const std::uint8_t> payload);

/// Read one frame, enforcing magic, known type, and payload_len <=
/// max_payload before allocating. Throws aptq::Error on violation,
/// truncation, or transport failure.
Frame recv_frame(Stream& stream, std::uint64_t max_payload);

/// Read one frame and require `expected`; an error_report frame is
/// re-thrown as aptq::Error carrying the peer's message, anything else is
/// a protocol error.
Frame expect_frame(Stream& stream, MsgType expected,
                   std::uint64_t max_payload);

/// Best-effort error_report with a text payload; swallows transport
/// failures (the sender is already on an error path).
void try_send_error(Stream& stream, const std::string& message) noexcept;

/// Fixed-width scalar payloads (hello / shard_ready frames). Decoders
/// require the exact byte count.
std::vector<std::uint8_t> encode_u32(std::uint32_t v);
std::uint32_t decode_u32(std::span<const std::uint8_t> bytes);
std::vector<std::uint8_t> encode_u64(std::uint64_t v);
std::uint64_t decode_u64(std::span<const std::uint8_t> bytes);

}  // namespace aptq::net
