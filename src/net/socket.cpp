#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace aptq::net {

namespace {

std::string errno_text() { return std::strerror(errno); }

void set_nodelay(int fd) {
  const int one = 1;
  // Best-effort: a transport that ignores the option still works, just
  // with Nagle latency.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  APTQ_CHECK(::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) == 1,
             "not a numeric IPv4 address: " + host);
  return addr;
}

}  // namespace

Socket::Socket(int fd, std::string peer) : fd_(fd), peer_(std::move(peer)) {
  set_nodelay(fd_);
}

Socket::Socket(Socket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), peer_(std::move(other.peer_)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    peer_ = std::move(other.peer_);
  }
  return *this;
}

Socket::~Socket() { close(); }

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket Socket::connect(const std::string& host, std::uint16_t port) {
  const sockaddr_in addr = make_addr(host, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  APTQ_CHECK(fd >= 0, "socket(): " + errno_text());
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const std::string err = errno_text();
    ::close(fd);
    APTQ_FAIL("connect to " + host + ":" + std::to_string(port) + ": " + err);
  }
  return Socket(fd, host + ":" + std::to_string(port));
}

std::size_t Socket::read_some(void* buf, std::size_t len) {
  APTQ_CHECK(fd_ >= 0, "read on closed socket " + peer_);
  while (true) {
    const ssize_t n = ::recv(fd_, buf, len, 0);
    if (n >= 0) {
      return static_cast<std::size_t>(n);
    }
    if (errno == EINTR) {
      continue;
    }
    APTQ_FAIL("recv from " + peer_ + ": " + errno_text());
  }
}

void Socket::write_all(const void* buf, std::size_t len) {
  APTQ_CHECK(fd_ >= 0, "write on closed socket " + peer_);
  const auto* src = static_cast<const std::uint8_t*>(buf);
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd_, src + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    APTQ_FAIL("send to " + peer_ + ": " + errno_text());
  }
}

Listener::Listener(std::uint16_t port, const std::string& host) {
  sockaddr_in addr = make_addr(host, port);
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  APTQ_CHECK(fd_ >= 0, "socket(): " + errno_text());
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const std::string err = errno_text();
    ::close(fd_);
    fd_ = -1;
    APTQ_FAIL("bind " + host + ":" + std::to_string(port) + ": " + err);
  }
  if (::listen(fd_, 16) != 0) {
    const std::string err = errno_text();
    ::close(fd_);
    fd_ = -1;
    APTQ_FAIL("listen: " + err);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  APTQ_CHECK(::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound),
                           &bound_len) == 0,
             "getsockname: " + errno_text());
  port_ = ntohs(bound.sin_port);
}

Listener::~Listener() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Socket Listener::accept() {
  APTQ_CHECK(fd_ >= 0, "accept on closed listener");
  while (true) {
    sockaddr_in peer{};
    socklen_t peer_len = sizeof peer;
    const int fd =
        ::accept(fd_, reinterpret_cast<sockaddr*>(&peer), &peer_len);
    if (fd >= 0) {
      char text[INET_ADDRSTRLEN] = {};
      ::inet_ntop(AF_INET, &peer.sin_addr, text, sizeof text);
      return Socket(fd, std::string(text) + ":" +
                            std::to_string(ntohs(peer.sin_port)));
    }
    if (errno == EINTR) {
      continue;
    }
    APTQ_FAIL("accept: " + errno_text());
  }
}

}  // namespace aptq::net
