// Minimal HTTP/1.1 front-end for the serving engine (modelled on
// distributed-llama's dllama-api): blocking accept loop, one request per
// connection, JSON in / JSON out. Routes:
//
//   GET  /healthz      → {"ok":true, "version":..., "proto_version":...,
//                         "uptime_seconds":...}
//   GET  /metrics      → Prometheus text exposition of every registered
//                        counter/gauge/histogram (obs::metrics_prometheus)
//   GET  /statz        → JSON snapshot: queue depth, in-flight batch, KV
//                        pool residency, backpressure/eviction causes, and
//                        whatever HttpOptions::statz_extra appends (the
//                        sharded front-end adds per-worker link RTT/bytes)
//   POST /v1/generate  → body {"prompt":[ids...], "max_new_tokens":N,
//                        "temperature":T, "top_k":K, "seed":S,
//                        "eos_token":E, "stream":false}
//       stream:false → one JSON object with the generated tokens;
//       stream:true  → chunked transfer, one JSON line per sampled token
//                      (via ServeEngine's token callback) plus a summary.
//
// Parsing follows the repo's validation discipline: every line, header
// count, and body length is capped BEFORE allocation (HttpLimits), and
// malformed input costs the client a 400, never a crash or a hang
// (tests/net_test.cpp). The JSON parser is a from-scratch recursive
// descent — obs/json.hpp only emits.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "net/socket.hpp"
#include "net/stream.hpp"
#include "serve/engine.hpp"

namespace aptq::net {

/// Input caps, enforced before allocating.
struct HttpLimits {
  std::size_t max_line = 8192;        ///< request line / single header line
  std::size_t max_headers = 64;
  std::size_t max_body = 1u << 20;    ///< request body bytes
};

struct HttpRequest {
  std::string method;
  std::string target;
  /// Header (name, value) pairs; names lower-cased, values trimmed.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Value of `name_lower`, or nullptr.
  const std::string* header(const std::string& name_lower) const;
};

/// Line/byte reader over a Stream with an internal buffer.
class BufferedReader {
 public:
  explicit BufferedReader(Stream& stream) : stream_(stream) {}

  /// Read one LF-terminated line (trailing CR/LF stripped) into `line`.
  /// Returns false on clean EOF before the first byte of the line; throws
  /// on EOF mid-line or a line longer than max_len.
  bool read_line(std::string& line, std::size_t max_len);

  /// Read exactly n bytes; throws on EOF.
  void read_n(char* out, std::size_t n);

 private:
  bool fill();

  Stream& stream_;
  char buf_[4096];
  std::size_t pos_ = 0;
  std::size_t len_ = 0;
};

/// Parse one HTTP/1.1 request. Returns false on clean EOF before the
/// request line (client closed); throws aptq::Error on malformed or
/// over-limit input. Chunked request bodies are rejected.
bool read_http_request(BufferedReader& in, HttpRequest& out,
                       const HttpLimits& limits = {});

/// Minimal JSON document (numbers are doubles, like the format).
struct JsonValue {
  enum class Kind { null, boolean, number, string, array, object };
  Kind kind = Kind::null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> items;                            ///< array
  std::vector<std::pair<std::string, JsonValue>> members;  ///< object

  /// Object member by key, or nullptr (also nullptr on non-objects).
  const JsonValue* find(const std::string& key) const;
};

/// Recursive-descent parse of a complete JSON text; throws aptq::Error on
/// syntax errors, trailing garbage, or nesting beyond max_depth.
JsonValue parse_json(std::string_view text, std::size_t max_depth = 32);

/// JSON string escaping (quotes not included).
std::string json_escape(std::string_view text);

/// Fixed-length response with Connection: close.
void write_http_response(Stream& out, int status, const std::string& reason,
                         const std::string& content_type,
                         const std::string& body);

/// Chunked-transfer response: head, then chunks, then the final chunk.
void write_chunked_head(Stream& out, int status, const std::string& reason,
                        const std::string& content_type);
void write_chunk(Stream& out, std::string_view data);
void write_last_chunk(Stream& out);

struct HttpOptions {
  /// Stop after this many accepted connections; 0 = serve forever.
  std::size_t max_requests = 0;
  HttpLimits limits;
  /// Extra top-level members for /statz, returned as a JSON fragment like
  /// `"workers": [...]` (no surrounding braces, no leading comma); empty
  /// string or null callable adds nothing. Called per /statz request.
  std::function<std::string()> statz_extra;
};

/// Accept loop over `listener`, one connection at a time (the engine is
/// single-submitter). Per-connection errors are answered with a 400/404
/// and never leave the loop.
void serve_http(Listener& listener, serve::ServeEngine& engine,
                const HttpOptions& options = {});

}  // namespace aptq::net
