#include "net/http.hpp"

#include <cctype>
#include <cstdlib>
#include <cstring>

#include "net/frame.hpp"
#include "net/shard.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/timer.hpp"
#include "util/version.hpp"

namespace aptq::net {

// --- request parsing -------------------------------------------------------

const std::string* HttpRequest::header(const std::string& name_lower) const {
  for (const auto& [name, value] : headers) {
    if (name == name_lower) {
      return &value;
    }
  }
  return nullptr;
}

bool BufferedReader::fill() {
  len_ = stream_.read_some(buf_, sizeof buf_);
  pos_ = 0;
  return len_ > 0;
}

bool BufferedReader::read_line(std::string& line, std::size_t max_len) {
  line.clear();
  while (true) {
    if (pos_ == len_ && !fill()) {
      APTQ_CHECK(line.empty(), "http: connection closed mid-line");
      return false;
    }
    const char c = buf_[pos_++];
    if (c == '\n') {
      if (!line.empty() && line.back() == '\r') {
        line.pop_back();
      }
      return true;
    }
    APTQ_CHECK(line.size() < max_len,
               "http: line exceeds the " + std::to_string(max_len) +
                   "-byte cap");
    line.push_back(c);
  }
}

void BufferedReader::read_n(char* out, std::size_t n) {
  while (n > 0) {
    if (pos_ == len_) {
      APTQ_CHECK(fill(), "http: connection closed mid-body");
    }
    const std::size_t take = std::min(n, len_ - pos_);
    std::memcpy(out, buf_ + pos_, take);
    pos_ += take;
    out += take;
    n -= take;
  }
}

namespace {

std::string lower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

}  // namespace

bool read_http_request(BufferedReader& in, HttpRequest& out,
                       const HttpLimits& limits) {
  std::string line;
  if (!in.read_line(line, limits.max_line)) {
    return false;
  }
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.rfind(' ');
  APTQ_CHECK(sp1 != std::string::npos && sp2 > sp1,
             "http: malformed request line");
  out.method = line.substr(0, sp1);
  out.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = line.substr(sp2 + 1);
  APTQ_CHECK(!out.method.empty() && !out.target.empty(),
             "http: malformed request line");
  APTQ_CHECK(version.rfind("HTTP/1.", 0) == 0,
             "http: unsupported protocol \"" + version + "\"");

  out.headers.clear();
  out.body.clear();
  while (true) {
    APTQ_CHECK(in.read_line(line, limits.max_line),
               "http: connection closed inside headers");
    if (line.empty()) {
      break;
    }
    APTQ_CHECK(out.headers.size() < limits.max_headers,
               "http: more than " + std::to_string(limits.max_headers) +
                   " headers");
    const std::size_t colon = line.find(':');
    APTQ_CHECK(colon != std::string::npos && colon > 0,
               "http: malformed header line");
    out.headers.emplace_back(lower(line.substr(0, colon)),
                             trim(line.substr(colon + 1)));
  }

  APTQ_CHECK(out.header("transfer-encoding") == nullptr,
             "http: chunked request bodies are not supported");
  if (const std::string* cl = out.header("content-length")) {
    APTQ_CHECK(!cl->empty() &&
                   cl->find_first_not_of("0123456789") == std::string::npos,
               "http: malformed content-length");
    const unsigned long long n = std::strtoull(cl->c_str(), nullptr, 10);
    APTQ_CHECK(n <= limits.max_body,
               "http: body length " + *cl + " exceeds the " +
                   std::to_string(limits.max_body) + "-byte cap");
    out.body.resize(static_cast<std::size_t>(n));
    if (n > 0) {
      in.read_n(out.body.data(), out.body.size());
    }
  }
  return true;
}

// --- JSON ------------------------------------------------------------------

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::object) {
    return nullptr;
  }
  for (const auto& [name, value] : members) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

namespace {

class JsonParser {
 public:
  JsonParser(std::string_view text, std::size_t max_depth)
      : s_(text), max_depth_(max_depth) {}

  JsonValue parse() {
    JsonValue v = value(0);
    skip_ws();
    APTQ_CHECK(i_ == s_.size(), "json: trailing characters after the value");
    return v;
  }

 private:
  void skip_ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' ||
                              s_[i_] == '\n' || s_[i_] == '\r')) {
      ++i_;
    }
  }

  char peek() {
    APTQ_CHECK(i_ < s_.size(), "json: unexpected end of input");
    return s_[i_];
  }

  void expect(char c) {
    APTQ_CHECK(i_ < s_.size() && s_[i_] == c,
               std::string("json: expected '") + c + "' at offset " +
                   std::to_string(i_));
    ++i_;
  }

  bool consume_literal(std::string_view lit) {
    if (s_.substr(i_, lit.size()) != lit) {
      return false;
    }
    i_ += lit.size();
    return true;
  }

  JsonValue value(std::size_t depth) {
    APTQ_CHECK(depth < max_depth_, "json: nesting exceeds the depth limit");
    skip_ws();
    const char c = peek();
    JsonValue v;
    if (c == 'n') {
      APTQ_CHECK(consume_literal("null"), "json: bad literal");
      return v;
    }
    if (c == 't' || c == 'f') {
      v.kind = JsonValue::Kind::boolean;
      v.boolean = (c == 't');
      APTQ_CHECK(consume_literal(c == 't' ? "true" : "false"),
                 "json: bad literal");
      return v;
    }
    if (c == '"') {
      v.kind = JsonValue::Kind::string;
      v.string = string_body();
      return v;
    }
    if (c == '[') {
      ++i_;
      v.kind = JsonValue::Kind::array;
      skip_ws();
      if (peek() == ']') {
        ++i_;
        return v;
      }
      while (true) {
        v.items.push_back(value(depth + 1));
        skip_ws();
        if (peek() == ']') {
          ++i_;
          return v;
        }
        expect(',');
      }
    }
    if (c == '{') {
      ++i_;
      v.kind = JsonValue::Kind::object;
      skip_ws();
      if (peek() == '}') {
        ++i_;
        return v;
      }
      while (true) {
        skip_ws();
        APTQ_CHECK(peek() == '"', "json: object key must be a string");
        std::string key = string_body();
        skip_ws();
        expect(':');
        v.members.emplace_back(std::move(key), value(depth + 1));
        skip_ws();
        if (peek() == '}') {
          ++i_;
          return v;
        }
        expect(',');
      }
    }
    APTQ_CHECK(c == '-' || (c >= '0' && c <= '9'),
               std::string("json: unexpected character '") + c + "'");
    v.kind = JsonValue::Kind::number;
    v.number = number_body();
    return v;
  }

  std::string string_body() {
    expect('"');
    std::string out;
    while (true) {
      APTQ_CHECK(i_ < s_.size(), "json: unterminated string");
      const char c = s_[i_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      APTQ_CHECK(i_ < s_.size(), "json: unterminated escape");
      const char e = s_[i_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_utf8(out, hex4()); break;
        default: APTQ_FAIL("json: bad escape sequence");
      }
    }
  }

  std::uint32_t hex4() {
    APTQ_CHECK(i_ + 4 <= s_.size(), "json: truncated \\u escape");
    std::uint32_t v = 0;
    for (int k = 0; k < 4; ++k) {
      const char c = s_[i_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        APTQ_FAIL("json: bad \\u escape");
      }
    }
    return v;
  }

  void append_utf8(std::string& out, std::uint32_t cp) {
    // Combine a surrogate pair when the low half follows.
    if (cp >= 0xd800 && cp <= 0xdbff && i_ + 6 <= s_.size() &&
        s_[i_] == '\\' && s_[i_ + 1] == 'u') {
      i_ += 2;
      const std::uint32_t lo = hex4();
      APTQ_CHECK(lo >= 0xdc00 && lo <= 0xdfff, "json: unpaired surrogate");
      cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
    }
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else {
      out.push_back(static_cast<char>(0xf0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    }
  }

  double number_body() {
    const std::size_t start = i_;
    if (peek() == '-') ++i_;
    while (i_ < s_.size() &&
           ((s_[i_] >= '0' && s_[i_] <= '9') || s_[i_] == '.' ||
            s_[i_] == 'e' || s_[i_] == 'E' || s_[i_] == '+' ||
            s_[i_] == '-')) {
      ++i_;
    }
    const std::string text(s_.substr(start, i_ - start));
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    APTQ_CHECK(end == text.c_str() + text.size() && !text.empty(),
               "json: malformed number \"" + text + "\"");
    return v;
  }

  std::string_view s_;
  std::size_t i_ = 0;
  std::size_t max_depth_;
};

}  // namespace

JsonValue parse_json(std::string_view text, std::size_t max_depth) {
  return JsonParser(text, max_depth).parse();
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// --- responses -------------------------------------------------------------

namespace {

void write_text(Stream& out, const std::string& text) {
  out.write_all(text.data(), text.size());
}

std::string status_head(int status, const std::string& reason,
                        const std::string& content_type) {
  return "HTTP/1.1 " + std::to_string(status) + " " + reason +
         "\r\nContent-Type: " + content_type + "\r\nConnection: close\r\n";
}

}  // namespace

void write_http_response(Stream& out, int status, const std::string& reason,
                         const std::string& content_type,
                         const std::string& body) {
  write_text(out, status_head(status, reason, content_type) +
                      "Content-Length: " + std::to_string(body.size()) +
                      "\r\n\r\n" + body);
}

void write_chunked_head(Stream& out, int status, const std::string& reason,
                        const std::string& content_type) {
  write_text(out, status_head(status, reason, content_type) +
                      "Transfer-Encoding: chunked\r\n\r\n");
}

void write_chunk(Stream& out, std::string_view data) {
  if (data.empty()) {
    return;  // an empty chunk would terminate the stream
  }
  char size_hex[32];
  std::snprintf(size_hex, sizeof size_hex, "%zx\r\n", data.size());
  write_text(out, size_hex);
  out.write_all(data.data(), data.size());
  write_text(out, "\r\n");
}

void write_last_chunk(Stream& out) { write_text(out, "0\r\n\r\n"); }

// --- routes ----------------------------------------------------------------

namespace {

/// Integral JSON field with a default; throws on non-integers.
long long json_int(const JsonValue* v, const char* name, long long fallback) {
  if (v == nullptr) {
    return fallback;
  }
  APTQ_CHECK(v->kind == JsonValue::Kind::number &&
                 v->number == static_cast<double>(
                                  static_cast<long long>(v->number)),
             std::string("generate: \"") + name + "\" must be an integer");
  return static_cast<long long>(v->number);
}

double json_number(const JsonValue* v, const char* name, double fallback) {
  if (v == nullptr) {
    return fallback;
  }
  APTQ_CHECK(v->kind == JsonValue::Kind::number,
             std::string("generate: \"") + name + "\" must be a number");
  return v->number;
}

bool json_bool(const JsonValue* v, const char* name, bool fallback) {
  if (v == nullptr) {
    return fallback;
  }
  APTQ_CHECK(v->kind == JsonValue::Kind::boolean,
             std::string("generate: \"") + name + "\" must be a boolean");
  return v->boolean;
}

std::string result_json(const serve::GenerationResult& r) {
  std::string out = "{\"id\":" + std::to_string(r.id) + ",\"finish\":\"" +
                    serve::to_string(r.finish) + "\",\"tokens\":[";
  for (std::size_t i = 0; i < r.tokens.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += std::to_string(r.tokens[i]);
  }
  out += "]";
  if (!r.error.empty()) {
    out += ",\"error\":\"" + json_escape(r.error) + "\"";
  }
  out += "}";
  return out;
}

const serve::GenerationResult* find_result(
    const std::vector<serve::GenerationResult>& results,
    serve::RequestId id) {
  for (const auto& r : results) {
    if (r.id == id) {
      return &r;
    }
  }
  return nullptr;
}

void handle_generate(Stream& conn, serve::ServeEngine& engine,
                     const HttpRequest& request) {
  const JsonValue body = parse_json(request.body);
  APTQ_CHECK(body.kind == JsonValue::Kind::object,
             "generate: request body must be a JSON object");
  const JsonValue* prompt = body.find("prompt");
  APTQ_CHECK(prompt != nullptr && prompt->kind == JsonValue::Kind::array,
             "generate: \"prompt\" must be an array of token ids");

  serve::Request req;
  req.prompt.reserve(prompt->items.size());
  for (const JsonValue& item : prompt->items) {
    req.prompt.push_back(
        static_cast<TokenId>(json_int(&item, "prompt", 0)));
  }
  req.max_new_tokens = static_cast<std::size_t>(
      json_int(body.find("max_new_tokens"), "max_new_tokens", 16));
  req.sampling.temperature = static_cast<float>(
      json_number(body.find("temperature"), "temperature", 1.0));
  req.sampling.top_k = static_cast<std::size_t>(
      json_int(body.find("top_k"), "top_k", 0));
  req.seed =
      static_cast<std::uint64_t>(json_int(body.find("seed"), "seed", 0));
  req.eos_token =
      static_cast<TokenId>(json_int(body.find("eos_token"), "eos_token", -1));
  const bool stream = json_bool(body.find("stream"), "stream", false);

  const serve::RequestId id = engine.submit(std::move(req));
  if (!stream) {
    const auto results = engine.run();
    const serve::GenerationResult* r = find_result(results, id);
    APTQ_CHECK(r != nullptr, "generate: engine returned no result");
    write_http_response(conn, 200, "OK", "application/json",
                        result_json(*r));
    return;
  }

  // Streaming: one JSON line per sampled token as a chunk, then a summary
  // line. The callback fires inline from engine.run().
  write_chunked_head(conn, 200, "OK", "application/json");
  engine.set_token_callback([&conn, id](serve::RequestId rid, TokenId token,
                                        serve::FinishReason) {
    if (rid != id) {
      return;
    }
    write_chunk(conn, "{\"token\":" + std::to_string(token) + "}\n");
  });
  std::vector<serve::GenerationResult> results;
  try {
    results = engine.run();
  } catch (...) {
    engine.set_token_callback({});
    throw;
  }
  engine.set_token_callback({});
  const serve::GenerationResult* r = find_result(results, id);
  APTQ_CHECK(r != nullptr, "generate: engine returned no result");
  write_chunk(conn, result_json(*r) + "\n");
  write_last_chunk(conn);
}

std::string statz_json(const serve::ServeEngine& engine,
                       const HttpOptions& options) {
  const serve::ServeStats& s = engine.stats();
  const serve::KvPool& pool = engine.pool();
  std::string out = "{\"backend\":\"" + json_escape(engine.backend_name()) +
                    "\",\"queue_depth\":" + std::to_string(engine.queue_depth()) +
                    ",\"active_requests\":" + std::to_string(engine.active_count()) +
                    ",\"submitted\":" + std::to_string(s.submitted) +
                    ",\"completed\":" + std::to_string(s.completed) +
                    ",\"rejected\":" + std::to_string(s.rejected) +
                    ",\"generated_tokens\":" + std::to_string(s.generated_tokens) +
                    ",\"engine_steps\":" + std::to_string(s.engine_steps) +
                    ",\"kv\":{\"slots\":" + std::to_string(pool.slots()) +
                    ",\"slots_in_use\":" + std::to_string(pool.in_use()) +
                    ",\"pages\":" + std::to_string(pool.pages()) +
                    ",\"pages_in_use\":" + std::to_string(pool.pages_in_use()) +
                    ",\"page_positions\":" + std::to_string(pool.page_positions()) +
                    ",\"bytes\":" + std::to_string(pool.bytes()) +
                    ",\"mapped_bytes\":" + std::to_string(pool.mapped_bytes()) +
                    "},\"backpressure\":{\"slots\":" +
                    std::to_string(s.backpressure_slots) +
                    ",\"pages\":" + std::to_string(s.backpressure_pages) +
                    "},\"evicted\":{\"capacity\":" +
                    std::to_string(s.evicted_capacity) +
                    ",\"pages\":" + std::to_string(s.evicted_pages) + "}";
  if (options.statz_extra) {
    const std::string extra = options.statz_extra();
    if (!extra.empty()) {
      out += "," + extra;
    }
  }
  out += "}";
  return out;
}

void handle_connection(Stream& conn, serve::ServeEngine& engine,
                       const HttpOptions& options, const Timer& uptime) {
  const HttpLimits& limits = options.limits;
  BufferedReader reader(conn);
  HttpRequest request;
  try {
    if (!read_http_request(reader, request, limits)) {
      return;  // client connected and closed without a request
    }
    if (request.method == "GET" && request.target == "/healthz") {
      write_http_response(
          conn, 200, "OK", "application/json",
          std::string("{\"ok\":true,\"version\":\"") + kAptqVersion +
              "\",\"proto_version\":" + std::to_string(kProtoVersion) +
              ",\"uptime_seconds\":" + obs::json_double(uptime.seconds()) +
              "}");
      return;
    }
    if (request.method == "GET" && request.target == "/metrics") {
      write_http_response(conn, 200, "OK",
                          "text/plain; version=0.0.4; charset=utf-8",
                          obs::metrics_prometheus());
      return;
    }
    if (request.method == "GET" && request.target == "/statz") {
      write_http_response(conn, 200, "OK", "application/json",
                          statz_json(engine, options));
      return;
    }
    if (request.method == "POST" && request.target == "/v1/generate") {
      handle_generate(conn, engine, request);
      return;
    }
    write_http_response(conn, 404, "Not Found", "application/json",
                        "{\"error\":\"no route for " +
                            json_escape(request.method + " " +
                                        request.target) +
                            "\"}");
  } catch (const Error& e) {
    // Best-effort 400; if the response head already went out (streaming)
    // the client sees a truncated chunk stream instead.
    try {
      write_http_response(conn, 400, "Bad Request", "application/json",
                          "{\"error\":\"" + json_escape(e.what()) + "\"}");
    } catch (...) {
    }
  }
}

}  // namespace

void serve_http(Listener& listener, serve::ServeEngine& engine,
                const HttpOptions& options) {
  const Timer uptime;  // /healthz reports time since the accept loop began
  std::size_t served = 0;
  while (options.max_requests == 0 || served < options.max_requests) {
    Socket conn = listener.accept();
    ++served;
    handle_connection(conn, engine, options, uptime);
  }
}

}  // namespace aptq::net
