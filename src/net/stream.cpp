#include "net/stream.hpp"

#include <algorithm>
#include <cstring>

namespace aptq::net {

void Stream::read_exact(void* buf, std::size_t len) {
  auto* dst = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < len) {
    const std::size_t n = read_some(dst + got, len - got);
    APTQ_CHECK(n > 0, "unexpected end of stream from " + name() + " (" +
                          std::to_string(got) + " of " + std::to_string(len) +
                          " bytes)");
    got += n;
  }
}

std::size_t MemStream::read_some(void* buf, std::size_t len) {
  const std::size_t n = std::min(len, input_.size() - read_pos_);
  if (n > 0) {
    std::memcpy(buf, input_.data() + read_pos_, n);
    read_pos_ += n;
  }
  return n;
}

void MemStream::write_all(const void* buf, std::size_t len) {
  const auto* src = static_cast<const std::uint8_t*>(buf);
  written_.insert(written_.end(), src, src + len);
}

void MemStream::set_input(std::vector<std::uint8_t> input) {
  input_ = std::move(input);
  read_pos_ = 0;
}

}  // namespace aptq::net
