// Blocking TCP transport: RAII socket + listener over the POSIX API.
//
// The sharded decode path exchanges one small frame pair per projection,
// so TCP_NODELAY is set on every connection (Nagle batching would add an
// RTT of latency to each of the ~7·n_layers round trips per token).
// Hosts are numeric IPv4 addresses ("127.0.0.1"); "localhost" is accepted
// as an alias. Writes use MSG_NOSIGNAL so a peer that disappears surfaces
// as aptq::Error instead of SIGPIPE.
#pragma once

#include <cstdint>
#include <string>

#include "net/stream.hpp"

namespace aptq::net {

/// One connected TCP endpoint. Move-only; the destructor closes the fd.
class Socket : public Stream {
 public:
  Socket() = default;
  /// Adopt an already-connected fd (Listener::accept()).
  Socket(int fd, std::string peer);
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket() override;

  /// Connect to host:port (numeric IPv4 or "localhost"). Throws
  /// aptq::Error on refusal or bad address.
  static Socket connect(const std::string& host, std::uint16_t port);

  std::size_t read_some(void* buf, std::size_t len) override;
  void write_all(const void* buf, std::size_t len) override;
  std::string name() const override { return peer_; }

  bool valid() const { return fd_ >= 0; }
  /// Close the fd early (idempotent).
  void close();

 private:
  int fd_ = -1;
  std::string peer_;
};

/// Listening TCP socket bound to one interface. Pass port 0 to bind an
/// ephemeral port and read the kernel's choice back via port() — the
/// in-process tests and benches use this to avoid port collisions.
class Listener {
 public:
  /// Bind + listen on host:port. Throws aptq::Error on failure.
  explicit Listener(std::uint16_t port, const std::string& host = "127.0.0.1");
  Listener(Listener&&) = delete;
  ~Listener();

  /// Block until one connection arrives.
  Socket accept();

  std::uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace aptq::net
