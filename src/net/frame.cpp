#include "net/frame.hpp"

#include <cstring>

namespace aptq::net {

namespace {

const char* type_name(MsgType t) {
  switch (t) {
    case MsgType::hello: return "hello";
    case MsgType::hello_ack: return "hello_ack";
    case MsgType::load_shard: return "load_shard";
    case MsgType::shard_ready: return "shard_ready";
    case MsgType::project: return "project";
    case MsgType::project_out: return "project_out";
    case MsgType::shutdown: return "shutdown";
    case MsgType::bye: return "bye";
    case MsgType::error_report: return "error_report";
    case MsgType::trace_flush: return "trace_flush";
    case MsgType::trace_data: return "trace_data";
  }
  return "?";
}

}  // namespace

void send_frame(Stream& stream, MsgType type,
                std::span<const std::uint8_t> payload) {
  std::uint8_t header[16];
  const std::uint32_t magic = kFrameMagic;
  const std::uint32_t type_code = static_cast<std::uint32_t>(type);
  const std::uint64_t len = payload.size();
  std::memcpy(header, &magic, 4);
  std::memcpy(header + 4, &type_code, 4);
  std::memcpy(header + 8, &len, 8);
  stream.write_all(header, sizeof header);
  if (!payload.empty()) {
    stream.write_all(payload.data(), payload.size());
  }
}

Frame recv_frame(Stream& stream, std::uint64_t max_payload) {
  std::uint8_t header[16];
  stream.read_exact(header, sizeof header);
  std::uint32_t magic = 0;
  std::uint32_t type_code = 0;
  std::uint64_t len = 0;
  std::memcpy(&magic, header, 4);
  std::memcpy(&type_code, header + 4, 4);
  std::memcpy(&len, header + 8, 8);
  APTQ_CHECK(magic == kFrameMagic,
             "bad frame magic from " + stream.name() + " (stream out of sync)");
  APTQ_CHECK(type_code >= 1 && type_code <= kMsgTypeMax,
             "unknown frame type " + std::to_string(type_code) + " from " +
                 stream.name());
  APTQ_CHECK(len <= max_payload,
             "frame payload length " + std::to_string(len) +
                 " exceeds the " + std::to_string(max_payload) +
                 "-byte cap from " + stream.name());
  Frame f;
  f.type = static_cast<MsgType>(type_code);
  f.payload.resize(len);
  if (len > 0) {
    stream.read_exact(f.payload.data(), f.payload.size());
  }
  return f;
}

Frame expect_frame(Stream& stream, MsgType expected,
                   std::uint64_t max_payload) {
  Frame f = recv_frame(stream, max_payload);
  if (f.type == MsgType::error_report && expected != MsgType::error_report) {
    APTQ_FAIL("peer " + stream.name() + " reported: " +
              std::string(f.payload.begin(), f.payload.end()));
  }
  APTQ_CHECK(f.type == expected,
             std::string("expected ") + type_name(expected) + " frame, got " +
                 type_name(f.type) + " from " + stream.name());
  return f;
}

std::vector<std::uint8_t> encode_u32(std::uint32_t v) {
  std::vector<std::uint8_t> out(4);
  std::memcpy(out.data(), &v, 4);
  return out;
}

std::uint32_t decode_u32(std::span<const std::uint8_t> bytes) {
  APTQ_CHECK(bytes.size() == 4, "u32 payload must be exactly 4 bytes");
  std::uint32_t v = 0;
  std::memcpy(&v, bytes.data(), 4);
  return v;
}

std::vector<std::uint8_t> encode_u64(std::uint64_t v) {
  std::vector<std::uint8_t> out(8);
  std::memcpy(out.data(), &v, 8);
  return out;
}

std::uint64_t decode_u64(std::span<const std::uint8_t> bytes) {
  APTQ_CHECK(bytes.size() == 8, "u64 payload must be exactly 8 bytes");
  std::uint64_t v = 0;
  std::memcpy(&v, bytes.data(), 8);
  return v;
}

void try_send_error(Stream& stream, const std::string& message) noexcept {
  try {
    const auto* data = reinterpret_cast<const std::uint8_t*>(message.data());
    send_frame(stream, MsgType::error_report,
               std::span<const std::uint8_t>(data, message.size()));
  } catch (...) {
    // Already failing; the close will tell the peer.
  }
}

}  // namespace aptq::net
