#include "net/shard.hpp"

#include <cstring>
#include <sstream>

#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"

namespace aptq::net {

namespace {

// Same record as packed_model.cpp's file-local write_matrix/read_matrix
// (u64 rows, u64 cols, length-prefixed f32 payload) so shard files reuse
// the loader's corruption discipline.
void write_matrix(BinaryWriter& w, const Matrix& m) {
  w.write_u64(m.rows());
  w.write_u64(m.cols());
  std::vector<float> flat(m.flat().begin(), m.flat().end());
  w.write_f32_vector(flat);
}

Matrix read_matrix(BinaryReader& r) {
  const std::size_t rows = r.read_u64();
  const std::size_t cols = r.read_u64();
  const std::vector<float> flat = r.read_f32_vector();
  // Division form so a stomped dimension pair cannot overflow rows * cols
  // into coincidentally matching the payload length.
  APTQ_CHECK((rows == 0 && flat.empty()) ||
                 (rows > 0 && cols == flat.size() / rows &&
                  rows * cols == flat.size()),
             "shard: matrix corrupt");
  Matrix m(rows, cols);
  std::copy(flat.begin(), flat.end(), m.data());
  return m;
}

void write_config(BinaryWriter& w, const ModelConfig& c) {
  w.write_u64(c.vocab_size);
  w.write_u64(c.dim);
  w.write_u64(c.n_layers);
  w.write_u64(c.n_heads);
  w.write_u64(c.ffn_dim);
  w.write_u64(c.n_kv_heads);
  w.write_f32(c.rope_theta);
  w.write_f32(c.norm_eps);
}

ModelConfig read_config(BinaryReader& r) {
  ModelConfig c;
  c.vocab_size = r.read_u64();
  c.dim = r.read_u64();
  c.n_layers = r.read_u64();
  c.n_heads = r.read_u64();
  c.ffn_dim = r.read_u64();
  c.n_kv_heads = r.read_u64();
  c.rope_theta = r.read_f32();
  c.norm_eps = r.read_f32();
  c.validate();
  return c;
}

/// Columns [range) of an input-major (d_in × d_out) weight.
Matrix col_slice(const Matrix& m, const ShardRange& range) {
  APTQ_CHECK(range.end <= m.cols(), "col_slice: range out of bounds");
  Matrix out(m.rows(), range.size());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const float* src = m.data() + r * m.cols() + range.begin;
    std::copy(src, src + range.size(), out.row(r).begin());
  }
  return out;
}

/// Stitch column slices back together (inverse of col_slice over a full
/// worker set).
Matrix col_concat(const std::vector<const Matrix*>& parts) {
  APTQ_CHECK(!parts.empty(), "col_concat: no parts");
  const std::size_t rows = parts.front()->rows();
  std::size_t cols = 0;
  for (const Matrix* p : parts) {
    APTQ_CHECK(p->rows() == rows, "col_concat: row count mismatch");
    cols += p->cols();
  }
  Matrix out(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    float* dst = out.data() + r * cols;
    for (const Matrix* p : parts) {
      const float* src = p->data() + r * p->cols();
      dst = std::copy(src, src + p->cols(), dst);
    }
  }
  return out;
}

const Matrix& dense_weight(const BlockWeights& b, std::size_t idx) {
  switch (idx) {
    case 0: return b.wq;
    case 1: return b.wk;
    case 2: return b.wv;
    case 3: return b.wo;
    case 4: return b.w_gate;
    case 5: return b.w_up;
    case 6: return b.w_down;
    default: break;
  }
  APTQ_FAIL("dense_weight: bad linear index");
}

constexpr LinearKind kBlockKinds[7] = {
    LinearKind::q_proj,  LinearKind::k_proj, LinearKind::v_proj,
    LinearKind::o_proj,  LinearKind::gate_proj, LinearKind::up_proj,
    LinearKind::down_proj};

void check_workers(std::size_t worker, std::size_t n_workers) {
  APTQ_CHECK(n_workers >= 1, "make_shard: need at least one worker");
  APTQ_CHECK(worker < n_workers, "make_shard: worker index out of range");
}

void copy_root_tensors(ModelShard& shard, const Matrix& tok_embed,
                       std::span<const std::vector<float>> attn,
                       std::span<const std::vector<float>> ffn,
                       std::span<const float> final_norm) {
  shard.has_root_tensors = true;
  shard.tok_embed = tok_embed;
  shard.attn_norms.assign(attn.begin(), attn.end());
  shard.ffn_norms.assign(ffn.begin(), ffn.end());
  shard.final_norm.assign(final_norm.begin(), final_norm.end());
}

/// Validate a reassembly set: one shard per worker of a single split,
/// same kind/config, worker 0 carrying the root tensors. Returns the
/// shards sorted by worker index.
std::vector<const ModelShard*> order_shards(
    std::span<const ModelShard> shards, ShardKind kind) {
  APTQ_CHECK(!shards.empty(), "reassemble: no shards");
  const std::size_t n = shards.front().n_workers;
  APTQ_CHECK(shards.size() == n,
             "reassemble: expected " + std::to_string(n) + " shards, got " +
                 std::to_string(shards.size()));
  std::vector<const ModelShard*> ordered(n, nullptr);
  for (const ModelShard& s : shards) {
    APTQ_CHECK(s.kind == kind, "reassemble: shard kind mismatch");
    APTQ_CHECK(s.n_workers == n && s.config == shards.front().config,
               "reassemble: shards from different splits");
    APTQ_CHECK(s.worker < n && ordered[s.worker] == nullptr,
               "reassemble: duplicate or out-of-range worker index");
    ordered[s.worker] = &s;
  }
  APTQ_CHECK(ordered.front()->has_root_tensors,
             "reassemble: worker 0 shard lacks the root tensors");
  return ordered;
}

}  // namespace

ShardRange shard_range(std::size_t n, std::size_t worker,
                       std::size_t n_workers) {
  check_workers(worker, n_workers);
  return {n * worker / n_workers, n * (worker + 1) / n_workers};
}

std::size_t linear_out_features(const ModelConfig& config, LinearKind kind) {
  switch (kind) {
    case LinearKind::q_proj:
    case LinearKind::o_proj:
    case LinearKind::down_proj:
      return config.dim;
    case LinearKind::k_proj:
    case LinearKind::v_proj:
      return config.kv_dim();
    case LinearKind::gate_proj:
    case LinearKind::up_proj:
      return config.ffn_dim;
    case LinearKind::lm_head:
      return config.vocab_size;
  }
  APTQ_FAIL("linear_out_features: bad kind");
}

std::size_t ModelShard::weight_bytes() const {
  std::size_t bytes = lm_head.size() * sizeof(float);
  for (const Matrix& m : dense) {
    bytes += m.size() * sizeof(float);
  }
  for (const QuantizedLinear& q : packed) {
    bytes += q.storage_bytes();
  }
  return bytes;
}

ModelShard make_shard(const Model& model, std::size_t worker,
                      std::size_t n_workers) {
  check_workers(worker, n_workers);
  model.config.validate();
  ModelShard shard;
  shard.kind = ShardKind::dense;
  shard.worker = static_cast<std::uint32_t>(worker);
  shard.n_workers = static_cast<std::uint32_t>(n_workers);
  shard.config = model.config;
  shard.dense.reserve(model.config.n_layers * 7);
  for (const BlockWeights& b : model.blocks) {
    for (std::size_t i = 0; i < 7; ++i) {
      const std::size_t out =
          linear_out_features(model.config, kBlockKinds[i]);
      shard.dense.push_back(
          col_slice(dense_weight(b, i), shard_range(out, worker, n_workers)));
    }
  }
  shard.lm_head = col_slice(
      model.lm_head,
      shard_range(model.config.vocab_size, worker, n_workers));
  if (worker == 0) {
    std::vector<std::vector<float>> attn, ffn;
    for (const BlockWeights& b : model.blocks) {
      attn.push_back(b.attn_norm);
      ffn.push_back(b.ffn_norm);
    }
    copy_root_tensors(shard, model.tok_embed, attn, ffn, model.final_norm);
  }
  return shard;
}

ModelShard make_shard(const PackedModel& model, std::size_t worker,
                      std::size_t n_workers) {
  check_workers(worker, n_workers);
  const ModelConfig& cfg = model.config();
  APTQ_CHECK(model.linears().size() == cfg.n_layers * 7,
             "make_shard: packed model not initialized");
  ModelShard shard;
  shard.kind = ShardKind::packed;
  shard.worker = static_cast<std::uint32_t>(worker);
  shard.n_workers = static_cast<std::uint32_t>(n_workers);
  shard.config = cfg;
  shard.packed.reserve(cfg.n_layers * 7);
  for (std::size_t layer = 0; layer < cfg.n_layers; ++layer) {
    for (std::size_t i = 0; i < 7; ++i) {
      const QuantizedLinear& lin = model.linears()[layer * 7 + i];
      const ShardRange r = shard_range(lin.rows(), worker, n_workers);
      shard.packed.push_back(lin.row_slice(r.begin, r.end));
    }
  }
  shard.lm_head = col_slice(
      model.lm_head(), shard_range(cfg.vocab_size, worker, n_workers));
  if (worker == 0) {
    std::vector<std::vector<float>> attn, ffn;
    for (std::size_t l = 0; l < cfg.n_layers; ++l) {
      attn.emplace_back(model.attn_norm(l).begin(), model.attn_norm(l).end());
      ffn.emplace_back(model.ffn_norm(l).begin(), model.ffn_norm(l).end());
    }
    copy_root_tensors(shard, model.tok_embed(), attn, ffn,
                      model.final_norm());
  }
  return shard;
}

void ModelShard::serialize(BinaryWriter& writer) const {
  writer.write_u32(kShardMagic);
  writer.write_u32(kShardVersion);
  writer.write_u32(static_cast<std::uint32_t>(kind));
  writer.write_u32(worker);
  writer.write_u32(n_workers);
  write_config(writer, config);
  writer.write_u32(has_root_tensors ? 1u : 0u);
  if (has_root_tensors) {
    write_matrix(writer, tok_embed);
    for (std::size_t l = 0; l < config.n_layers; ++l) {
      writer.write_f32_vector(attn_norms[l]);
      writer.write_f32_vector(ffn_norms[l]);
    }
    writer.write_f32_vector(final_norm);
  }
  write_matrix(writer, lm_head);
  if (kind == ShardKind::dense) {
    writer.write_u64(dense.size());
    for (const Matrix& m : dense) {
      write_matrix(writer, m);
    }
  } else {
    writer.write_u64(packed.size());
    for (const QuantizedLinear& q : packed) {
      q.serialize(writer);
    }
  }
}

ModelShard ModelShard::deserialize(BinaryReader& reader) {
  APTQ_CHECK(reader.read_u32() == kShardMagic, "shard: bad magic");
  const std::uint32_t version = reader.read_u32();
  APTQ_CHECK(version == kShardVersion,
             "shard: unsupported version " + std::to_string(version));
  ModelShard shard;
  const std::uint32_t kind_code = reader.read_u32();
  APTQ_CHECK(kind_code <= static_cast<std::uint32_t>(ShardKind::packed),
             "shard: unknown kind " + std::to_string(kind_code));
  shard.kind = static_cast<ShardKind>(kind_code);
  shard.worker = reader.read_u32();
  shard.n_workers = reader.read_u32();
  APTQ_CHECK(shard.n_workers >= 1 && shard.worker < shard.n_workers,
             "shard: corrupt worker index");
  shard.config = read_config(reader);
  shard.has_root_tensors = reader.read_u32() != 0;
  if (shard.has_root_tensors) {
    shard.tok_embed = read_matrix(reader);
    for (std::size_t l = 0; l < shard.config.n_layers; ++l) {
      shard.attn_norms.push_back(reader.read_f32_vector());
      shard.ffn_norms.push_back(reader.read_f32_vector());
    }
    shard.final_norm = reader.read_f32_vector();
  }
  shard.lm_head = read_matrix(reader);
  const std::uint64_t count = reader.read_u64();
  APTQ_CHECK(count == shard.config.n_layers * 7,
             "shard: expected 7 linears per layer, got " +
                 std::to_string(count));
  if (shard.kind == ShardKind::dense) {
    for (std::uint64_t i = 0; i < count; ++i) {
      shard.dense.push_back(read_matrix(reader));
    }
  } else {
    for (std::uint64_t i = 0; i < count; ++i) {
      shard.packed.push_back(QuantizedLinear::deserialize(reader));
    }
  }
  // Geometry cross-checks: every slice must match its shard_range under
  // the declared config, so a stomped header cannot smuggle in weights of
  // the wrong shape.
  for (std::size_t l = 0; l < shard.config.n_layers; ++l) {
    for (std::size_t i = 0; i < 7; ++i) {
      const std::size_t out =
          linear_out_features(shard.config, kBlockKinds[i]);
      const ShardRange r = shard_range(out, shard.worker, shard.n_workers);
      if (shard.kind == ShardKind::dense) {
        const Matrix& m = shard.dense[l * 7 + i];
        APTQ_CHECK(m.cols() == r.size(), "shard: dense slice width mismatch");
      } else {
        const QuantizedLinear& q = shard.packed[l * 7 + i];
        APTQ_CHECK(q.rows() == r.size(), "shard: packed slice height mismatch");
      }
    }
  }
  const ShardRange head =
      shard_range(shard.config.vocab_size, shard.worker, shard.n_workers);
  APTQ_CHECK(shard.lm_head.rows() == shard.config.dim &&
                 shard.lm_head.cols() == head.size(),
             "shard: lm head slice shape mismatch");
  return shard;
}

void save_shard(const ModelShard& shard, const std::string& path) {
  BinaryWriter w(path);
  shard.serialize(w);
}

ModelShard load_shard(const std::string& path) {
  BinaryReader r(path);
  return ModelShard::deserialize(r);
}

std::vector<std::uint8_t> shard_to_bytes(const ModelShard& shard) {
  std::ostringstream os(std::ios::binary);
  BinaryWriter w(os, "<shard>");
  shard.serialize(w);
  const std::string s = os.str();
  return {s.begin(), s.end()};
}

ModelShard shard_from_bytes(std::span<const std::uint8_t> bytes) {
  std::istringstream is(
      std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size()),
      std::ios::binary);
  BinaryReader r(is, bytes.size(), "<shard>");
  return ModelShard::deserialize(r);
}

Model reassemble_dense(std::span<const ModelShard> shards) {
  const auto ordered = order_shards(shards, ShardKind::dense);
  const ModelShard& root = *ordered.front();
  Model model;
  model.config = root.config;
  model.tok_embed = root.tok_embed;
  model.final_norm = root.final_norm;
  model.blocks.resize(root.config.n_layers);
  for (std::size_t l = 0; l < root.config.n_layers; ++l) {
    BlockWeights& b = model.blocks[l];
    b.attn_norm = root.attn_norms[l];
    b.ffn_norm = root.ffn_norms[l];
    Matrix* dst[7] = {&b.wq, &b.wk, &b.wv, &b.wo,
                      &b.w_gate, &b.w_up, &b.w_down};
    for (std::size_t i = 0; i < 7; ++i) {
      std::vector<const Matrix*> parts;
      for (const ModelShard* s : ordered) {
        parts.push_back(&s->dense[l * 7 + i]);
      }
      *dst[i] = col_concat(parts);
    }
  }
  std::vector<const Matrix*> head_parts;
  for (const ModelShard* s : ordered) {
    head_parts.push_back(&s->lm_head);
  }
  model.lm_head = col_concat(head_parts);
  return model;
}

PackedModel reassemble_packed(std::span<const ModelShard> shards) {
  const auto ordered = order_shards(shards, ShardKind::packed);
  const ModelShard& root = *ordered.front();
  std::vector<QuantizedLinear> linears;
  linears.reserve(root.config.n_layers * 7);
  for (std::size_t l = 0; l < root.config.n_layers; ++l) {
    for (std::size_t i = 0; i < 7; ++i) {
      std::vector<QuantizedLinear> parts;
      for (const ModelShard* s : ordered) {
        parts.push_back(s->packed[l * 7 + i]);
      }
      linears.push_back(QuantizedLinear::row_concat(parts));
    }
  }
  std::vector<const Matrix*> head_parts;
  for (const ModelShard* s : ordered) {
    head_parts.push_back(&s->lm_head);
  }
  return PackedModel::assemble(root.config, root.tok_embed, root.attn_norms,
                               root.ffn_norms, root.final_norm,
                               col_concat(head_parts), linears);
}

std::vector<std::uint8_t> encode_project(ProjectOp op, std::uint32_t layer,
                                         LinearKind kind, const Matrix& x,
                                         std::uint64_t trace_id,
                                         std::uint64_t parent_span_id) {
  std::ostringstream os(std::ios::binary);
  BinaryWriter w(os, "<project>");
  w.write_u32(static_cast<std::uint32_t>(op));
  w.write_u32(layer);
  w.write_u32(static_cast<std::uint32_t>(kind));
  w.write_u64(trace_id);
  w.write_u64(parent_span_id);
  write_matrix(w, x);
  const std::string s = os.str();
  return {s.begin(), s.end()};
}

ProjectRequest decode_project(std::span<const std::uint8_t> bytes) {
  std::istringstream is(
      std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size()),
      std::ios::binary);
  BinaryReader r(is, bytes.size(), "<project>");
  ProjectRequest req;
  const std::uint32_t op = r.read_u32();
  APTQ_CHECK(op <= static_cast<std::uint32_t>(ProjectOp::batch),
             "project: unknown op " + std::to_string(op));
  req.op = static_cast<ProjectOp>(op);
  req.layer = r.read_u32();
  const std::uint32_t kind = r.read_u32();
  APTQ_CHECK(kind <= static_cast<std::uint32_t>(LinearKind::lm_head),
             "project: unknown linear kind " + std::to_string(kind));
  req.kind = static_cast<LinearKind>(kind);
  req.trace_id = r.read_u64();
  req.parent_span_id = r.read_u64();
  // A parent span without a trace (or vice versa) means a stomped context
  // field; reject rather than attribute spans to trace 0.
  APTQ_CHECK((req.trace_id == 0) == (req.parent_span_id == 0),
             "project: inconsistent trace context");
  req.x = read_matrix(r);
  APTQ_CHECK(req.x.rows() >= 1, "project: empty input");
  return req;
}

std::vector<std::uint8_t> encode_hello_ack(const HelloAck& ack) {
  std::vector<std::uint8_t> out(12);
  std::memcpy(out.data(), &ack.version, 4);
  std::memcpy(out.data() + 4, &ack.clock_ns, 8);
  return out;
}

HelloAck decode_hello_ack(std::span<const std::uint8_t> bytes) {
  HelloAck ack;
  if (bytes.size() == 4) {  // v1 peer: bare version, no clock
    std::memcpy(&ack.version, bytes.data(), 4);
    return ack;
  }
  APTQ_CHECK(bytes.size() == 12,
             "hello_ack payload must be 12 bytes (or legacy 4)");
  std::memcpy(&ack.version, bytes.data(), 4);
  std::memcpy(&ack.clock_ns, bytes.data() + 4, 8);
  return ack;
}

const char* span_name_str(SpanName name) {
  switch (name) {
    case SpanName::recv: return "worker.recv";
    case SpanName::compute: return "worker.compute";
    case SpanName::send: return "worker.send";
  }
  return "worker.?";
}

namespace {
constexpr std::size_t kSpanRecordBytes = 44;  // u32 name + 5 × u64
}  // namespace

std::vector<std::uint8_t> encode_trace_spans(
    std::span<const WorkerSpan> spans) {
  APTQ_CHECK(spans.size() <= kMaxTraceSpans,
             "trace_data: too many spans to encode");
  std::vector<std::uint8_t> out(8 + spans.size() * kSpanRecordBytes);
  const std::uint64_t count = spans.size();
  std::memcpy(out.data(), &count, 8);
  std::uint8_t* p = out.data() + 8;
  for (const WorkerSpan& s : spans) {
    const std::uint32_t code = static_cast<std::uint32_t>(s.name);
    std::memcpy(p, &code, 4);
    std::memcpy(p + 4, &s.start_ns, 8);
    std::memcpy(p + 12, &s.dur_ns, 8);
    std::memcpy(p + 20, &s.trace_id, 8);
    std::memcpy(p + 28, &s.span_id, 8);
    std::memcpy(p + 36, &s.parent_span_id, 8);
    p += kSpanRecordBytes;
  }
  return out;
}

std::vector<WorkerSpan> decode_trace_spans(
    std::span<const std::uint8_t> bytes) {
  APTQ_CHECK(bytes.size() >= 8, "trace_data: truncated count");
  std::uint64_t count = 0;
  std::memcpy(&count, bytes.data(), 8);
  APTQ_CHECK(count <= kMaxTraceSpans,
             "trace_data: span count " + std::to_string(count) +
                 " exceeds the " + std::to_string(kMaxTraceSpans) + " cap");
  // Division form so a stomped count cannot overflow count · record_size
  // into coincidentally matching the payload length.
  APTQ_CHECK((bytes.size() - 8) / kSpanRecordBytes == count &&
                 (bytes.size() - 8) % kSpanRecordBytes == 0,
             "trace_data: payload length does not match span count");
  std::vector<WorkerSpan> spans(count);
  const std::uint8_t* p = bytes.data() + 8;
  for (WorkerSpan& s : spans) {
    std::uint32_t code = 0;
    std::memcpy(&code, p, 4);
    APTQ_CHECK(code <= static_cast<std::uint32_t>(SpanName::send),
               "trace_data: unknown span name code " + std::to_string(code));
    s.name = static_cast<SpanName>(code);
    std::memcpy(&s.start_ns, p + 4, 8);
    std::memcpy(&s.dur_ns, p + 12, 8);
    std::memcpy(&s.trace_id, p + 20, 8);
    std::memcpy(&s.span_id, p + 28, 8);
    std::memcpy(&s.parent_span_id, p + 36, 8);
    p += kSpanRecordBytes;
  }
  return spans;
}

Matrix shard_project(const ModelShard& shard, const ProjectRequest& req) {
  const ModelConfig& cfg = shard.config;
  // The op discriminator picks the same kernel family the solo adapters
  // dispatch to, so every per-row fold is bit-identical to the
  // single-process run (docs/SHARDING.md):
  //   single → matmul / matmul_transposed (gemv, qgemv, qgemv_multi)
  //   batch  → gemv_batch / qgemv_batch
  if (req.layer == kLmHeadLayer) {
    APTQ_CHECK(req.kind == LinearKind::lm_head,
               "project: head frame must carry lm_head kind");
    const Matrix& w = shard.lm_head;
    APTQ_CHECK(req.x.cols() == w.rows(), "project: lm head width mismatch");
    if (req.op == ProjectOp::single) {
      return matmul_col_shard(req.x, w, cfg.vocab_size);
    }
    Matrix out(req.x.rows(), w.cols());
    kern::gemv_batch(req.x.data(), w.data(), req.x.rows(), req.x.cols(),
                     w.cols(), out.data());
    return out;
  }
  APTQ_CHECK(req.layer < cfg.n_layers, "project: layer out of range");
  APTQ_CHECK(req.kind != LinearKind::lm_head,
             "project: lm_head must address kLmHeadLayer");
  const std::size_t slot =
      static_cast<std::size_t>(req.layer) * 7 +
      static_cast<std::size_t>(req.kind);
  if (shard.kind == ShardKind::dense) {
    const Matrix& w = shard.dense[slot];
    APTQ_CHECK(req.x.cols() == w.rows(), "project: input width mismatch");
    if (req.op == ProjectOp::single) {
      return matmul_col_shard(req.x, w, linear_out_features(cfg, req.kind));
    }
    Matrix out(req.x.rows(), w.cols());
    kern::gemv_batch(req.x.data(), w.data(), req.x.rows(), req.x.cols(),
                     w.cols(), out.data());
    return out;
  }
  const QuantizedLinear& lin = shard.packed[slot];
  APTQ_CHECK(req.x.cols() == lin.cols(), "project: input width mismatch");
  if (req.op == ProjectOp::single) {
    return lin.matmul_transposed(req.x);
  }
  Matrix out(req.x.rows(), lin.rows());
  lin.matvec_transposed_batch(req.x, out);
  return out;
}

std::vector<std::uint8_t> encode_matrix(const Matrix& m) {
  std::ostringstream os(std::ios::binary);
  BinaryWriter w(os, "<matrix>");
  write_matrix(w, m);
  const std::string s = os.str();
  return {s.begin(), s.end()};
}

Matrix decode_matrix(std::span<const std::uint8_t> bytes) {
  std::istringstream is(
      std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size()),
      std::ios::binary);
  BinaryReader r(is, bytes.size(), "<matrix>");
  return read_matrix(r);
}

}  // namespace aptq::net
