// Byte-stream abstraction under the wire protocol. Socket (socket.hpp) is
// the production implementation; MemStream backs the frame/protocol unit
// and fuzz tests with crafted byte sequences — truncations and bit flips
// exercise exactly the code paths a hostile peer would hit, without a
// kernel socket in the loop.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace aptq::net {

/// Blocking byte stream. Implementations throw aptq::Error on transport
/// failure; orderly end-of-stream is reported as a 0 return from
/// read_some so framing code can distinguish "peer went away" from
/// "transport broke".
class Stream {
 public:
  virtual ~Stream() = default;

  /// Read up to `len` bytes into `buf`; returns the count actually read,
  /// 0 only at end-of-stream. Throws aptq::Error on transport failure.
  virtual std::size_t read_some(void* buf, std::size_t len) = 0;

  /// Write all `len` bytes. Throws aptq::Error on failure (including a
  /// peer that closed mid-write).
  virtual void write_all(const void* buf, std::size_t len) = 0;

  /// Human-readable endpoint label for error messages.
  virtual std::string name() const = 0;

  /// Read exactly `len` bytes; end-of-stream before `len` throws
  /// aptq::Error — a truncated frame is always a loud error, never a
  /// short buffer handed to a parser.
  void read_exact(void* buf, std::size_t len);
};

/// In-memory stream: reads drain a fixed input buffer (then report
/// end-of-stream), writes append to an output buffer. Single-threaded;
/// tests wire two of these back-to-back or hand-craft the input bytes.
class MemStream : public Stream {
 public:
  MemStream() = default;
  explicit MemStream(std::vector<std::uint8_t> input)
      : input_(std::move(input)) {}

  std::size_t read_some(void* buf, std::size_t len) override;
  void write_all(const void* buf, std::size_t len) override;
  std::string name() const override { return "<mem>"; }

  const std::vector<std::uint8_t>& written() const { return written_; }
  /// Replace the input buffer and rewind the read cursor.
  void set_input(std::vector<std::uint8_t> input);

 private:
  std::vector<std::uint8_t> input_;
  std::size_t read_pos_ = 0;
  std::vector<std::uint8_t> written_;
};

}  // namespace aptq::net
