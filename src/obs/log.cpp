#include "obs/log.hpp"

#include <cstdio>
#include <mutex>

#include "util/check.hpp"

namespace aptq::obs {

namespace detail {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
}

namespace {

std::mutex& log_mutex() {
  static std::mutex* m = new std::mutex;  // immortal
  return *m;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "error";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kDebug:
      return "debug";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  detail::g_log_level.store(static_cast<int>(level),
                            std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(
      detail::g_log_level.load(std::memory_order_relaxed));
}

LogLevel parse_log_level(const std::string& name) {
  if (name == "error") {
    return LogLevel::kError;
  }
  if (name == "warn") {
    return LogLevel::kWarn;
  }
  if (name == "info") {
    return LogLevel::kInfo;
  }
  if (name == "debug") {
    return LogLevel::kDebug;
  }
  APTQ_FAIL("unknown log level: " + name +
            " (expected error|warn|info|debug)");
}

void log(LogLevel level, const std::string& message) {
  if (!log_enabled(level)) {
    return;
  }
  std::lock_guard<std::mutex> lock(log_mutex());
  std::fprintf(stderr, "[aptq %s] %s\n", level_tag(level), message.c_str());
  std::fflush(stderr);
}

}  // namespace aptq::obs
