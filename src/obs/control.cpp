#include "obs/control.hpp"

#include <chrono>

namespace aptq::obs {

#ifndef APTQ_OBS_DISABLE
namespace detail {
std::atomic<bool> g_tracing{false};
std::atomic<bool> g_telemetry{false};
}  // namespace detail
#endif

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::atomic<ClockFn> g_clock{nullptr};

}  // namespace

void set_tracing(bool on) {
#ifdef APTQ_OBS_DISABLE
  (void)on;
#else
  detail::g_tracing.store(on, std::memory_order_relaxed);
#endif
}

void set_telemetry(bool on) {
#ifdef APTQ_OBS_DISABLE
  (void)on;
#else
  detail::g_telemetry.store(on, std::memory_order_relaxed);
#endif
}

std::uint64_t now_ns() {
  const ClockFn fn = g_clock.load(std::memory_order_relaxed);
  return fn != nullptr ? fn() : steady_now_ns();
}

void set_clock_for_testing(ClockFn fn) {
  g_clock.store(fn, std::memory_order_relaxed);
}

}  // namespace aptq::obs
