// Structured run-report artifact (--report report.json) and the shared
// CLI wiring for the observability flags.
//
// A RunReport collects what only the caller knows — the configuration it
// ran with and any eval results — and json() joins that with what the
// observability layer recorded on its own: the per-layer quantization
// telemetry table, accumulated phase timings, and a full metrics
// snapshot. Schema (pinned by tests/obs_test.cpp):
//
//   {
//     "schema": "aptq.run_report.v1",
//     "clock_ns": <u64>,
//     "config":  { "<key>": <string|number>, ... },
//     "layers":  [ {"name": "...", "hessian.avg_trace": ..,
//                   "alloc.bits": .., "quant.mse": .., ...}, ... ],
//     "phases":  [ {"name": "...", "seconds": .., "count": ..}, ... ],
//     "evals":   [ {"name": "...", "perplexity": .., "nll": ..,
//                   "tokens": ..}, ... ],
//     "serving": { "schema_version": 2,        // only when add_serving ran
//                  "<key>": <number>, ... },
//     "metrics": { ...metrics_snapshot_json()... }
//   }
//
// CLI tools call configure_observability(args) once after parsing
// (applies --log-level, --trace-out, --report) and
// finalize_observability(...) on the way out to write the artifacts.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace aptq {
class ArgParser;
}

namespace aptq::obs {

inline constexpr const char* kRunReportSchema = "aptq.run_report.v1";

class RunReport {
 public:
  void add_config(const std::string& key, const std::string& value);
  void add_config(const std::string& key, double value);
  void add_config(const std::string& key, long value);

  void add_eval(const std::string& name, double perplexity, double nll,
                std::uint64_t tokens);

  /// Serving-run statistics (queue/throughput aggregates from the serving
  /// engine). The "serving" section is emitted only when at least one
  /// entry was added, so quantization-only reports keep their exact
  /// pre-serving byte layout (pinned by tests/report_golden_test.cpp).
  void add_serving(const std::string& key, double value);
  void add_serving(const std::string& key, std::uint64_t value);

  /// Serializes the report, snapshotting layer stats / phase totals /
  /// metrics at call time.
  std::string json() const;

 private:
  // Values stored pre-encoded as JSON fragments.
  std::vector<std::pair<std::string, std::string>> config_;
  struct EvalRow {
    std::string name;
    double perplexity;
    double nll;
    std::uint64_t tokens;
  };
  std::vector<EvalRow> evals_;
  std::vector<std::pair<std::string, std::string>> serving_;
};

/// Writes report.json() to `path`. Throws aptq::Error on I/O failure.
void write_run_report(const RunReport& report, const std::string& path);

struct ObsOptions {
  std::string trace_path;   // empty: tracing stays off
  std::string report_path;  // empty: telemetry stays off
};

/// Applies the shared observability flags: `--log-level LVL` sets the
/// logger, `--trace-out FILE` enables tracing, `--report FILE` enables
/// telemetry. Returns the chosen output paths for finalize.
ObsOptions configure_observability(const ArgParser& args);

/// Writes the trace and/or report artifacts configured earlier (no-op
/// for paths that weren't requested) and logs where they went.
void finalize_observability(const ObsOptions& options,
                            const RunReport& report);

/// Clears every recording the observability layer holds: trace events,
/// phase totals, metric values, layer stats. Flags are left as-is.
void reset_observability();

}  // namespace aptq::obs
