#include "obs/trace.hpp"

#include <fstream>
#include <memory>
#include <mutex>

#include "obs/json.hpp"
#include "util/check.hpp"
#include "util/threadpool.hpp"

namespace aptq::obs {

namespace {

struct Event {
  std::string name;
  const char* category;
  std::uint64_t start_ns;
  std::uint64_t dur_ns;
};

// One buffer per thread that ever recorded a span. The owning thread
// appends under buffer.mutex (uncontended except while trace_json() or
// reset_trace_events() briefly holds it), so recording never serializes
// distinct threads against each other.
struct ThreadBuffer {
  int tid = 0;
  std::string thread_name;
  std::mutex mutex;
  std::vector<Event> events;
};

struct TraceRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  int next_tid = 0;
};

TraceRegistry& registry() {
  static TraceRegistry* r = new TraceRegistry;  // immortal: threads may
  return *r;                                    // outlive static dtors
}

thread_local int t_span_depth = 0;

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    TraceRegistry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    b->tid = reg.next_tid++;
    const int wid = ThreadPool::worker_id();
    if (wid >= 0) {
      b->thread_name = "pool-worker-" + std::to_string(wid);
    } else if (b->tid == 0) {
      b->thread_name = "main";
    } else {
      b->thread_name = "thread-" + std::to_string(b->tid);
    }
    reg.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

void record_event(std::string name, const char* category,
                  std::uint64_t start_ns, std::uint64_t dur_ns) {
  ThreadBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.events.push_back(Event{std::move(name), category, start_ns, dur_ns});
}

struct PhaseTable {
  std::mutex mutex;
  std::vector<PhaseTotal> totals;
};

PhaseTable& phase_table() {
  static PhaseTable* t = new PhaseTable;
  return *t;
}

void add_phase_sample(const char* name, double seconds) {
  PhaseTable& table = phase_table();
  std::lock_guard<std::mutex> lock(table.mutex);
  for (PhaseTotal& total : table.totals) {
    if (total.name == name) {
      total.seconds += seconds;
      ++total.count;
      return;
    }
  }
  table.totals.push_back(PhaseTotal{name, seconds, 1});
}

}  // namespace

void TraceSpan::begin(const char* name, const char* category) {
  name_ = name;
  category_ = category;
  start_ns_ = now_ns();
  active_ = true;
  ++t_span_depth;
}

void TraceSpan::begin_dynamic(const std::string& name, const char* category) {
  dynamic_name_ = name;
  category_ = category;
  start_ns_ = now_ns();
  active_ = true;
  ++t_span_depth;
}

void TraceSpan::end() {
  const std::uint64_t end_ns = now_ns();
  --t_span_depth;
  active_ = false;
  // Tracing may have been switched off while the span was live; the event
  // is still completed so begin/end always pair up.
  record_event(name_ != nullptr ? std::string(name_) : dynamic_name_,
               category_, start_ns_, end_ns - start_ns_);
}

void PhaseSpan::begin(const char* name) {
  name_ = name;
  start_ns_ = now_ns();
  active_ = true;
  ++t_span_depth;
}

void PhaseSpan::end() {
  const std::uint64_t end_ns = now_ns();
  --t_span_depth;
  active_ = false;
  const std::uint64_t dur_ns = end_ns - start_ns_;
  add_phase_sample(name_, static_cast<double>(dur_ns) * 1e-9);
  if (tracing_enabled()) {
    record_event(name_, "phase", start_ns_, dur_ns);
  }
}

int current_span_depth() { return t_span_depth; }

std::size_t trace_event_count() {
  TraceRegistry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::size_t n = 0;
  for (const auto& buf : reg.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mutex);
    n += buf->events.size();
  }
  return n;
}

std::string trace_json() { return trace_json({}); }

std::string trace_json(const std::vector<RemoteProcess>& remotes) {
  TraceRegistry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::string out;
  out += "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  bool first = true;
  auto sep = [&] {
    if (!first) {
      out += ",\n";
    }
    first = false;
  };
  for (const auto& buf : reg.buffers) {
    sep();
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(buf->tid) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
           json_escape(buf->thread_name) + "\"}}";
  }
  for (const RemoteProcess& proc : remotes) {
    sep();
    out += "{\"ph\":\"M\",\"pid\":" + std::to_string(proc.pid) +
           ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"" +
           json_escape(proc.name) + "\"}}";
    sep();
    out += "{\"ph\":\"M\",\"pid\":" + std::to_string(proc.pid) +
           ",\"tid\":0,\"name\":\"thread_name\",\"args\":{\"name\":\"rpc\"}}";
  }
  for (const auto& buf : reg.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mutex);
    for (const Event& ev : buf->events) {
      sep();
      // Timestamps are microseconds in the trace_event format.
      out += "{\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(buf->tid) +
             ",\"name\":\"" + json_escape(ev.name) + "\",\"cat\":\"" +
             json_escape(ev.category) + "\",\"ts\":" +
             json_double(static_cast<double>(ev.start_ns) * 1e-3) +
             ",\"dur\":" +
             json_double(static_cast<double>(ev.dur_ns) * 1e-3) + "}";
    }
  }
  for (const RemoteProcess& proc : remotes) {
    for (const RemoteSpan& span : proc.spans) {
      sep();
      out += "{\"ph\":\"X\",\"pid\":" + std::to_string(proc.pid) +
             ",\"tid\":0,\"name\":\"" + json_escape(span.name) +
             "\",\"cat\":\"worker\",\"ts\":" +
             json_double(static_cast<double>(span.start_ns) * 1e-3) +
             ",\"dur\":" +
             json_double(static_cast<double>(span.dur_ns) * 1e-3) +
             ",\"args\":{\"trace\":" + json_u64(span.trace_id) +
             ",\"span\":" + json_u64(span.span_id) +
             ",\"parent\":" + json_u64(span.parent_span_id) + "}}";
    }
  }
  out += "\n]\n}\n";
  return out;
}

void write_trace(const std::string& path) { write_trace(path, {}); }

void write_trace(const std::string& path,
                 const std::vector<RemoteProcess>& remotes) {
  std::ofstream out(path, std::ios::binary);
  APTQ_CHECK(out.good(), "cannot open trace output: " + path);
  out << trace_json(remotes);
  APTQ_CHECK(out.good(), "failed writing trace output: " + path);
}

void reset_trace_events() {
  TraceRegistry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& buf : reg.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mutex);
    buf->events.clear();
  }
}

std::vector<PhaseTotal> phase_totals() {
  PhaseTable& table = phase_table();
  std::lock_guard<std::mutex> lock(table.mutex);
  return table.totals;
}

void reset_phase_totals() {
  PhaseTable& table = phase_table();
  std::lock_guard<std::mutex> lock(table.mutex);
  table.totals.clear();
}

}  // namespace aptq::obs
