// Runtime switches and the clock for the observability layer.
//
// Two independent switches, both off by default so the instrumented hot
// paths cost one relaxed atomic load when idle:
//
//   - tracing: gates TraceSpan event recording (--trace-out sets it).
//   - telemetry: gates metric/layer-stat recording at the hot call sites
//     that would otherwise perturb micro-bench numbers (--report sets it).
//
// Defining APTQ_OBS_DISABLE at compile time turns both predicates into
// `constexpr false`, letting the optimizer delete every instrumentation
// site outright.
//
// All observability timestamps flow through now_ns(), which tests can pin
// to a fixed function via set_clock_for_testing() so JSON snapshots are
// byte-deterministic.
#pragma once

#include <atomic>
#include <cstdint>

namespace aptq::obs {

#ifdef APTQ_OBS_DISABLE

constexpr bool tracing_enabled() { return false; }
constexpr bool telemetry_enabled() { return false; }

#else

namespace detail {
extern std::atomic<bool> g_tracing;
extern std::atomic<bool> g_telemetry;
}  // namespace detail

inline bool tracing_enabled() {
  return detail::g_tracing.load(std::memory_order_relaxed);
}

inline bool telemetry_enabled() {
  return detail::g_telemetry.load(std::memory_order_relaxed);
}

#endif  // APTQ_OBS_DISABLE

void set_tracing(bool on);
void set_telemetry(bool on);

/// Monotonic nanoseconds since an arbitrary epoch (steady_clock by
/// default; whatever the injected clock returns under test).
using ClockFn = std::uint64_t (*)();
std::uint64_t now_ns();

/// Replace the observability clock (nullptr restores steady_clock).
/// Test-only: not synchronized against concurrent now_ns() callers.
void set_clock_for_testing(ClockFn fn);

}  // namespace aptq::obs
