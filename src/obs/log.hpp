// Leveled logger for human-facing diagnostics.
//
// Logs go to stderr (stdout stays machine-readable for tables and JSON),
// one line per call, serialized under a mutex so concurrent workers don't
// interleave. Level is a process-wide runtime setting (`--log-level` on
// the CLI tools); messages above the level cost one relaxed atomic load.
//
//   obs::log_info("loaded model " + name);
//   if (obs::log_enabled(obs::LogLevel::kDebug)) {
//     obs::log_debug(expensive_summary());
//   }
#pragma once

#include <atomic>
#include <string>

namespace aptq::obs {

enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
};

namespace detail {
extern std::atomic<int> g_log_level;
}

inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <=
         detail::g_log_level.load(std::memory_order_relaxed);
}

void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses "error" / "warn" / "info" / "debug" (throws aptq::Error on
/// anything else).
LogLevel parse_log_level(const std::string& name);

void log(LogLevel level, const std::string& message);
inline void log_error(const std::string& message) {
  log(LogLevel::kError, message);
}
inline void log_warn(const std::string& message) {
  log(LogLevel::kWarn, message);
}
inline void log_info(const std::string& message) {
  log(LogLevel::kInfo, message);
}
inline void log_debug(const std::string& message) {
  log(LogLevel::kDebug, message);
}

}  // namespace aptq::obs
