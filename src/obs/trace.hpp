// RAII span tracing with Chrome/Perfetto trace_event JSON export.
//
// Usage at an instrumentation site:
//
//   void gptq_quantize(...) {
//     obs::TraceSpan span("gptq.solve", "quant");
//     ...
//   }
//
// When tracing is off (the default) the constructor is a relaxed atomic
// load and an early return: no clock read, no allocation, no lock. When
// on, each completed span is appended to a per-thread buffer (one mutex
// acquisition per span, never contended on the hot path because every
// thread owns its buffer) and later serialized by trace_json() as a
// complete "X" (duration) event. Thread attribution comes from
// ThreadPool::worker_id(): buffers register themselves with a stable
// small tid and a thread_name metadata record ("main", "pool-worker-N"),
// so a Pipeline run renders as a flame chart across worker threads.
//
// PhaseSpan is the coarse sibling used for the phase timings reported in
// run reports (pipeline.calibration, pipeline.solve, eval.perplexity...):
// it additionally accumulates wall seconds into a global phase table that
// is active when *either* tracing or telemetry is on, so `--report` alone
// still yields phase timings without paying for full span recording.
//
// Spans may nest freely and may be constructed on any thread, including
// inside ThreadPool workers. A span must be destroyed on the thread that
// created it (automatic with RAII block scoping).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/control.hpp"

namespace aptq::obs {

class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "aptq") {
    if (tracing_enabled()) {
      begin(name, category);
    }
  }
  /// Dynamic-name overload (e.g. per-layer spans). Only copies the string
  /// when tracing is on.
  TraceSpan(const std::string& name, const char* category = "aptq") {
    if (tracing_enabled()) {
      begin_dynamic(name, category);
    }
  }
  ~TraceSpan() {
    if (active_) {
      end();
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void begin(const char* name, const char* category);
  void begin_dynamic(const std::string& name, const char* category);
  void end();

  const char* name_ = nullptr;       // static-name fast path
  std::string dynamic_name_;         // empty unless the dynamic ctor ran
  const char* category_ = nullptr;
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
};

/// Coarse phase timer: records a trace event like TraceSpan *and*
/// accumulates (seconds, count) into the global phase table consumed by
/// run reports. Active when tracing or telemetry is enabled.
class PhaseSpan {
 public:
  explicit PhaseSpan(const char* name) {
    if (tracing_enabled() || telemetry_enabled()) {
      begin(name);
    }
  }
  ~PhaseSpan() {
    if (active_) {
      end();
    }
  }

  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

 private:
  void begin(const char* name);
  void end();

  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
};

/// Nesting depth of live spans on the calling thread (tests).
int current_span_depth();

/// Total recorded trace events across all threads.
std::size_t trace_event_count();

/// One span received from a remote process (a shard worker), with its
/// timestamps already rebased into the local observability clock by the
/// caller's clock-offset estimate. trace/span/parent ids tie the span to
/// the root-side projection that caused it; they are emitted as event
/// args so Perfetto can correlate lanes across processes.
struct RemoteSpan {
  std::string name;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
};

/// A remote process's span lane in the merged trace. pid must be unique
/// and != 1 (the local process). Spans render on one thread lane ("rpc")
/// in the order given, which is the order the remote recorded them.
struct RemoteProcess {
  int pid = 2;
  std::string name;  ///< e.g. "worker-0 (127.0.0.1:9101)"
  std::vector<RemoteSpan> spans;
};

/// Serializes every recorded span as Chrome trace_event JSON
/// (chrome://tracing and https://ui.perfetto.dev both load it). One event
/// per line; "M" thread_name metadata first, then "X" duration events.
std::string trace_json();

/// Merged multi-process variant: local events (pid 1) plus one lane per
/// remote process. Output is byte-deterministic given deterministic
/// inputs and clock (tests/shard_test.cpp pins it).
std::string trace_json(const std::vector<RemoteProcess>& remotes);

/// Writes trace_json() to `path`. Throws aptq::Error on I/O failure.
void write_trace(const std::string& path);

/// Writes the merged multi-process trace to `path`.
void write_trace(const std::string& path,
                 const std::vector<RemoteProcess>& remotes);

/// Drops all recorded events (thread registrations persist).
void reset_trace_events();

/// Accumulated wall-clock per phase, insertion-ordered by first entry.
struct PhaseTotal {
  std::string name;
  double seconds = 0.0;
  std::uint64_t count = 0;  // completed PhaseSpans folded in
};
std::vector<PhaseTotal> phase_totals();
void reset_phase_totals();

}  // namespace aptq::obs
