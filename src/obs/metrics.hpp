// Lock-sharded metrics registry: counters, gauges, histograms, and the
// per-layer quantization telemetry table behind run reports.
//
// Hot-path idiom — resolve once, then touch an atomic:
//
//   if (obs::telemetry_enabled()) {
//     static auto& tokens = obs::counter("hessian.tokens");
//     tokens.add(x.rows());
//   }
//
// counter()/gauge()/histogram() return references that stay valid for the
// life of the process (instruments are heap-allocated and never removed;
// reset_metrics() zeroes values but keeps the objects). Lookups hash the
// name to one of a fixed set of shards so concurrent registrations from
// pool workers don't serialize on one mutex.
//
// Naming scheme (see docs/OBSERVABILITY.md): dot-separated
// `<subsystem>.<what>[_<unit>]`, e.g. "gptq.cols_quantized",
// "decode.step_ms", "eval.tokens".
//
// Quantization telemetry: layer_stat(layer, key, value) upserts one
// numeric fact about one layer ("hessian.avg_trace", "alloc.bits",
// "quant.mse", ...). It is a no-op unless telemetry is enabled, so
// instrumentation sites can call it unconditionally; sites should still
// gate any *expensive computation* of the value on telemetry_enabled().
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/control.hpp"

namespace aptq::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed geometric buckets: bucket i holds values in
/// [upper_bound(i-1), upper_bound(i)) with upper_bound(i) = 1e-3 · 2^i,
/// i.e. 1 µs resolution at the bottom when recording milliseconds, ~4.4e9
/// at the top; the last bucket is unbounded and values ≤ 1e-3 (including
/// negatives) land in bucket 0. Percentiles interpolate linearly inside
/// the selected bucket, clamped to the observed [min, max] — so a
/// histogram whose samples are all equal reports that exact value at
/// every percentile.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 44;
  static double upper_bound(std::size_t i);

  void record(double v);

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
  };
  Snapshot snapshot() const;

  /// p in [0, 100]. Returns 0 when empty.
  double percentile(double p) const;

  void reset();

 private:
  double percentile_locked(double p) const;

  mutable std::mutex mutex_;
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Find-or-create by name. References remain valid forever.
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name);

/// Deterministic JSON snapshot of every registered instrument, keys
/// sorted, timestamped with the (injectable) observability clock.
std::string metrics_snapshot_json();

/// Prometheus text exposition (format 0.0.4) of every registered
/// instrument, keys sorted. Names are prefixed "aptq_" with dots mapped
/// to underscores ("serve.ttft_ms" -> "aptq_serve_ttft_ms"); histograms
/// render as summaries (quantile series + _sum/_count/_min/_max), which
/// matches what the fixed-bucket Histogram can answer exactly. Served by
/// the HTTP front-end's GET /metrics route.
std::string metrics_prometheus();

/// Zeroes every instrument (objects and references survive).
void reset_metrics();

/// Upsert one numeric stat for one layer; no-op unless telemetry is on.
void layer_stat(const std::string& layer, const char* key, double value);

struct LayerStatRow {
  std::string name;
  std::vector<std::pair<std::string, double>> stats;  // sorted by key
};

/// All recorded layer stats, sorted by layer name (recording order is
/// thread-scheduling dependent; the snapshot is not).
std::vector<LayerStatRow> layer_stats_snapshot();

void reset_layer_stats();

}  // namespace aptq::obs
