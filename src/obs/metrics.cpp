#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <map>
#include <memory>

#include "obs/json.hpp"

namespace aptq::obs {

double Histogram::upper_bound(std::size_t i) {
  if (i + 1 >= kBuckets) {
    return std::numeric_limits<double>::infinity();
  }
  return 1e-3 * static_cast<double>(std::uint64_t{1} << i);
}

void Histogram::record(double v) {
  if (std::isnan(v)) {
    return;
  }
  std::size_t b = 0;
  while (b + 1 < kBuckets && v >= upper_bound(b)) {
    ++b;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++buckets_[b];
  sum_ += v;
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
}

double Histogram::percentile_locked(double p) const {
  if (count_ == 0) {
    return 0.0;
  }
  // 1-based rank of the requested order statistic.
  double rank = std::ceil(p / 100.0 * static_cast<double>(count_));
  rank = std::clamp(rank, 1.0, static_cast<double>(count_));
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::uint64_t in_bucket = buckets_[b];
    if (in_bucket == 0) {
      continue;
    }
    if (rank <= static_cast<double>(cumulative + in_bucket)) {
      double lo = b == 0 ? min_ : upper_bound(b - 1);
      double hi = upper_bound(b);
      lo = std::max(lo, min_);
      hi = std::min(hi, max_);
      if (hi < lo) {
        hi = lo;
      }
      const double frac =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
      return lo + frac * (hi - lo);
    }
    cumulative += in_bucket;
  }
  return max_;
}

double Histogram::percentile(double p) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return percentile_locked(p);
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot s;
  s.count = count_;
  s.sum = sum_;
  s.min = min_;
  s.max = max_;
  s.p50 = percentile_locked(50.0);
  s.p90 = percentile_locked(90.0);
  s.p99 = percentile_locked(99.0);
  return s;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  buckets_.fill(0);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
}

namespace {

constexpr std::size_t kShards = 8;

struct Shard {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

struct MetricsRegistry {
  std::array<Shard, kShards> shards;
};

MetricsRegistry& metrics_registry() {
  static MetricsRegistry* r = new MetricsRegistry;  // immortal
  return *r;
}

Shard& shard_for(const std::string& name) {
  return metrics_registry().shards[std::hash<std::string>{}(name) % kShards];
}

template <typename T>
T& find_or_create(std::map<std::string, std::unique_ptr<T>>& table,
                  std::mutex& mutex, const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex);
  auto& slot = table[name];
  if (!slot) {
    slot = std::make_unique<T>();
  }
  return *slot;
}

struct LayerShard {
  std::mutex mutex;
  std::map<std::string, std::map<std::string, double>> layers;
};

struct LayerRegistry {
  std::array<LayerShard, kShards> shards;
};

LayerRegistry& layer_registry() {
  static LayerRegistry* r = new LayerRegistry;  // immortal
  return *r;
}

}  // namespace

Counter& counter(const std::string& name) {
  Shard& s = shard_for(name);
  return find_or_create(s.counters, s.mutex, name);
}

Gauge& gauge(const std::string& name) {
  Shard& s = shard_for(name);
  return find_or_create(s.gauges, s.mutex, name);
}

Histogram& histogram(const std::string& name) {
  Shard& s = shard_for(name);
  return find_or_create(s.histograms, s.mutex, name);
}

std::string metrics_snapshot_json() {
  // Merge all shards into sorted maps so output is deterministic.
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram::Snapshot> histograms;
  for (Shard& s : metrics_registry().shards) {
    std::lock_guard<std::mutex> lock(s.mutex);
    for (const auto& [name, c] : s.counters) {
      counters[name] = c->value();
    }
    for (const auto& [name, g] : s.gauges) {
      gauges[name] = g->value();
    }
    for (const auto& [name, h] : s.histograms) {
      histograms[name] = h->snapshot();
    }
  }
  std::string out = "{\"clock_ns\": " + json_u64(now_ns());
  out += ", \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    out += (first ? "" : ", ");
    out += "\"" + json_escape(name) + "\": " + json_u64(v);
    first = false;
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    out += (first ? "" : ", ");
    out += "\"" + json_escape(name) + "\": " + json_double(v);
    first = false;
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, s] : histograms) {
    out += (first ? "" : ", ");
    out += "\"" + json_escape(name) + "\": {\"count\": " + json_u64(s.count) +
           ", \"sum\": " + json_double(s.sum) +
           ", \"min\": " + json_double(s.min) +
           ", \"max\": " + json_double(s.max) +
           ", \"p50\": " + json_double(s.p50) +
           ", \"p90\": " + json_double(s.p90) +
           ", \"p99\": " + json_double(s.p99) + "}";
    first = false;
  }
  out += "}}";
  return out;
}

namespace {

// "serve.ttft_ms" -> "aptq_serve_ttft_ms". Prometheus metric names admit
// [a-zA-Z0-9_:]; anything else (dots in our scheme) maps to '_'.
std::string prom_name(const std::string& name) {
  std::string out = "aptq_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string prom_double(double v) {
  if (std::isinf(v)) {
    return v > 0 ? "+Inf" : "-Inf";
  }
  return json_double(v);
}

}  // namespace

std::string metrics_prometheus() {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram::Snapshot> histograms;
  for (Shard& s : metrics_registry().shards) {
    std::lock_guard<std::mutex> lock(s.mutex);
    for (const auto& [name, c] : s.counters) {
      counters[name] = c->value();
    }
    for (const auto& [name, g] : s.gauges) {
      gauges[name] = g->value();
    }
    for (const auto& [name, h] : s.histograms) {
      histograms[name] = h->snapshot();
    }
  }
  std::string out;
  for (const auto& [name, v] : counters) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " counter\n";
    out += p + " " + json_u64(v) + "\n";
  }
  for (const auto& [name, v] : gauges) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " gauge\n";
    out += p + " " + prom_double(v) + "\n";
  }
  for (const auto& [name, s] : histograms) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " summary\n";
    out += p + "{quantile=\"0.5\"} " + prom_double(s.p50) + "\n";
    out += p + "{quantile=\"0.9\"} " + prom_double(s.p90) + "\n";
    out += p + "{quantile=\"0.99\"} " + prom_double(s.p99) + "\n";
    out += p + "_sum " + prom_double(s.sum) + "\n";
    out += p + "_count " + json_u64(s.count) + "\n";
    out += "# TYPE " + p + "_min gauge\n";
    out += p + "_min " + prom_double(s.min) + "\n";
    out += "# TYPE " + p + "_max gauge\n";
    out += p + "_max " + prom_double(s.max) + "\n";
  }
  return out;
}

void reset_metrics() {
  for (Shard& s : metrics_registry().shards) {
    std::lock_guard<std::mutex> lock(s.mutex);
    for (auto& [name, c] : s.counters) {
      c->reset();
    }
    for (auto& [name, g] : s.gauges) {
      g->reset();
    }
    for (auto& [name, h] : s.histograms) {
      h->reset();
    }
  }
}

void layer_stat(const std::string& layer, const char* key, double value) {
  if (!telemetry_enabled()) {
    return;
  }
  LayerShard& s =
      layer_registry().shards[std::hash<std::string>{}(layer) % kShards];
  std::lock_guard<std::mutex> lock(s.mutex);
  s.layers[layer][key] = value;
}

std::vector<LayerStatRow> layer_stats_snapshot() {
  std::map<std::string, std::map<std::string, double>> merged;
  for (LayerShard& s : layer_registry().shards) {
    std::lock_guard<std::mutex> lock(s.mutex);
    for (const auto& [layer, stats] : s.layers) {
      merged[layer].insert(stats.begin(), stats.end());
    }
  }
  std::vector<LayerStatRow> rows;
  rows.reserve(merged.size());
  for (auto& [layer, stats] : merged) {
    LayerStatRow row;
    row.name = layer;
    row.stats.assign(stats.begin(), stats.end());
    rows.push_back(std::move(row));
  }
  return rows;
}

void reset_layer_stats() {
  for (LayerShard& s : layer_registry().shards) {
    std::lock_guard<std::mutex> lock(s.mutex);
    s.layers.clear();
  }
}

}  // namespace aptq::obs
