#include "obs/report.hpp"

#include <fstream>

#include "obs/control.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/args.hpp"
#include "util/check.hpp"

namespace aptq::obs {

void RunReport::add_config(const std::string& key, const std::string& value) {
  config_.emplace_back(key, "\"" + json_escape(value) + "\"");
}

void RunReport::add_config(const std::string& key, double value) {
  config_.emplace_back(key, json_double(value));
}

void RunReport::add_config(const std::string& key, long value) {
  config_.emplace_back(key, std::to_string(value));
}

void RunReport::add_eval(const std::string& name, double perplexity,
                         double nll, std::uint64_t tokens) {
  evals_.push_back(EvalRow{name, perplexity, nll, tokens});
}

void RunReport::add_serving(const std::string& key, double value) {
  serving_.emplace_back(key, json_double(value));
}

void RunReport::add_serving(const std::string& key, std::uint64_t value) {
  serving_.emplace_back(key, json_u64(value));
}

std::string RunReport::json() const {
  std::string out = "{\n\"schema\": \"";
  out += kRunReportSchema;
  out += "\",\n\"clock_ns\": " + json_u64(now_ns());
  out += ",\n\"config\": {";
  bool first = true;
  for (const auto& [key, value] : config_) {
    out += (first ? "" : ", ");
    out += "\"" + json_escape(key) + "\": " + value;
    first = false;
  }
  out += "},\n\"layers\": [";
  first = true;
  for (const LayerStatRow& row : layer_stats_snapshot()) {
    out += (first ? "\n" : ",\n");
    out += "{\"name\": \"" + json_escape(row.name) + "\"";
    for (const auto& [key, value] : row.stats) {
      out += ", \"" + json_escape(key) + "\": " + json_double(value);
    }
    out += "}";
    first = false;
  }
  out += "\n],\n\"phases\": [";
  first = true;
  for (const PhaseTotal& phase : phase_totals()) {
    out += (first ? "\n" : ",\n");
    out += "{\"name\": \"" + json_escape(phase.name) +
           "\", \"seconds\": " + json_double(phase.seconds) +
           ", \"count\": " + json_u64(phase.count) + "}";
    first = false;
  }
  out += "\n],\n\"evals\": [";
  first = true;
  for (const EvalRow& eval : evals_) {
    out += (first ? "\n" : ",\n");
    out += "{\"name\": \"" + json_escape(eval.name) +
           "\", \"perplexity\": " + json_double(eval.perplexity) +
           ", \"nll\": " + json_double(eval.nll) +
           ", \"tokens\": " + json_u64(eval.tokens) + "}";
    first = false;
  }
  out += "\n]";
  if (!serving_.empty()) {
    // schema_version 2: the latency-breakdown fields (queue_wait/prefill/
    // tpot percentiles, backpressure causes) joined the flat aggregates.
    // Versioned here rather than in kRunReportSchema so reports without a
    // serving section keep their exact v1 byte layout.
    out += ",\n\"serving\": {\"schema_version\": 2";
    for (const auto& [key, value] : serving_) {
      out += ", \"" + json_escape(key) + "\": " + value;
    }
    out += "}";
  }
  out += ",\n\"metrics\": " + metrics_snapshot_json();
  out += "\n}\n";
  return out;
}

void write_run_report(const RunReport& report, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  APTQ_CHECK(out.good(), "cannot open report output: " + path);
  out << report.json();
  APTQ_CHECK(out.good(), "failed writing report output: " + path);
}

ObsOptions configure_observability(const ArgParser& args) {
  set_log_level(parse_log_level(args.log_level()));
  ObsOptions options;
  options.trace_path = args.get_string("trace-out", "");
  options.report_path = args.get_string("report", "");
  if (!options.trace_path.empty()) {
    set_tracing(true);
  }
  if (!options.report_path.empty()) {
    set_telemetry(true);
  }
  return options;
}

void finalize_observability(const ObsOptions& options,
                            const RunReport& report) {
  if (!options.trace_path.empty()) {
    write_trace(options.trace_path);
    log_info("wrote trace: " + options.trace_path + " (" +
             std::to_string(trace_event_count()) +
             " events; open at ui.perfetto.dev)");
  }
  if (!options.report_path.empty()) {
    write_run_report(report, options.report_path);
    log_info("wrote run report: " + options.report_path);
  }
}

void reset_observability() {
  reset_trace_events();
  reset_phase_totals();
  reset_metrics();
  reset_layer_stats();
}

}  // namespace aptq::obs
