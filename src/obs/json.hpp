// Tiny JSON emission helpers shared by the trace/metrics/report writers.
// Emission only — the repo never parses JSON, it just writes artifacts.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

namespace aptq::obs {

/// Escapes a string for embedding inside JSON double quotes.
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Shortest round-trippable-enough decimal for a finite double; JSON has
/// no NaN/Inf, so non-finite values become null.
inline std::string json_double(double v) {
  if (!std::isfinite(v)) {
    return "null";
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

inline std::string json_u64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace aptq::obs
