// Latency-under-load harness: open-loop workload generation against a
// ServeEngine.
//
// Closed-loop driving (submit everything, run() to drain) measures
// throughput but hides queueing: every request is "waiting" from t=0, so
// TTFT means nothing. run_load() instead replays a deterministic arrival
// schedule against the wall clock — Poisson (exponential inter-arrival
// gaps, the standard traffic model) or bursty (whole bursts arriving at
// Poisson-spaced instants) — submitting each request only when its
// arrival time passes, and stepping the engine in between. That makes
// queue_wait/TTFT/TPOT distributions a function of offered load, which is
// what the goodput-vs-load curve in BENCH_serve.json sweeps
// (docs/SERVING.md has the methodology).
//
// The schedule, prompts, priorities, and seeds are all pure functions of
// LoadSpec — only the measured timings vary between runs. Engine
// determinism is untouched: each request's token stream is still fixed by
// (prompt, sampling, seed, id) regardless of arrival timing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "serve/engine.hpp"

namespace aptq::serve {

/// One workload: `requests` arrivals at `offered_rps` mean rate, prompts
/// mixing short/long at `long_fraction`, priorities cycling over
/// `priority_levels` (level = id % levels, higher admits first).
struct LoadSpec {
  double offered_rps = 50.0;
  std::size_t requests = 32;
  enum class Arrival { poisson, bursty } arrival = Arrival::poisson;
  std::size_t burst = 4;  ///< bursty: requests per burst instant

  std::size_t short_prompt = 4;
  std::size_t long_prompt = 24;
  double long_fraction = 0.25;
  std::size_t max_new_tokens = 8;
  int priority_levels = 1;

  std::uint64_t seed = 1234;  ///< schedule + prompt + sampling seeds

  /// SLO gates for goodput (completions meeting BOTH, per wall second).
  /// 0 disables a gate.
  double slo_ttft_ms = 0.0;
  double slo_tpot_ms = 0.0;

  /// Client-side timeout: cancel any request still unfinished this many ms
  /// after its submission (0 = never). Models impatient callers; cancelled
  /// requests count in LoadPoint::cancelled and nowhere else. Which
  /// requests hit the timeout depends on wall-clock timing — the schedule
  /// and prompts stay deterministic, the cancellation outcomes do not.
  double cancel_after_ms = 0.0;
};

/// One measured point of the goodput-vs-offered-load curve.
struct LoadPoint {
  double offered_rps = 0.0;
  double achieved_rps = 0.0;  ///< completions / wall_seconds
  double goodput_rps = 0.0;   ///< SLO-meeting completions / wall_seconds
  double wall_seconds = 0.0;
  std::size_t completed = 0;
  std::size_t evicted = 0;    ///< context_full completions
  std::size_t rejected = 0;
  std::size_t cancelled = 0;  ///< client-timeout cancellations (excluded
                              ///< from completed and every latency array)
  double p50_ttft_ms = 0.0;
  double p99_ttft_ms = 0.0;
  double p50_tpot_ms = 0.0;   ///< over requests with >= 2 tokens
  double p99_tpot_ms = 0.0;
  double p50_queue_wait_ms = 0.0;
  double p99_queue_wait_ms = 0.0;
};

/// The arrival schedule in seconds from workload start, non-decreasing,
/// one entry per request. Deterministic in (spec.seed, spec.arrival,
/// spec.offered_rps, spec.requests, spec.burst).
std::vector<double> arrival_times(const LoadSpec& spec);

/// Deterministic request i of the workload (prompt drawn from the vocab,
/// long with probability long_fraction, priority = i % priority_levels).
Request make_request(const LoadSpec& spec, std::size_t index,
                     std::size_t vocab_size);

/// Replay the workload open-loop against `engine` (which must be idle)
/// and summarize the completed requests. The engine's own stats/metrics
/// accumulate as usual on top.
LoadPoint run_load(ServeEngine& engine, const LoadSpec& spec);

/// Exact order statistic over a copy of `values` (nearest-rank); 0 when
/// empty. Shared by run_load and the benches.
double exact_percentile(std::vector<double> values, double p);

}  // namespace aptq::serve
