#include "serve/loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace aptq::serve {

std::vector<double> arrival_times(const LoadSpec& spec) {
  APTQ_CHECK(spec.offered_rps > 0.0, "loadgen: offered_rps must be > 0");
  APTQ_CHECK(spec.requests >= 1, "loadgen: need at least one request");
  Rng rng = Rng::for_stream(spec.seed, 0);  // stream 0: the schedule
  std::vector<double> times;
  times.reserve(spec.requests);
  double t = 0.0;
  if (spec.arrival == LoadSpec::Arrival::poisson) {
    for (std::size_t i = 0; i < spec.requests; ++i) {
      // Exponential inter-arrival gap with mean 1/rate; 1-u keeps the
      // argument of log strictly positive.
      t += -std::log(1.0 - rng.uniform()) / spec.offered_rps;
      times.push_back(t);
    }
    return times;
  }
  // Bursty: whole bursts of `burst` requests land at one instant; the
  // instants are Poisson at rate/burst so the mean offered load matches.
  const std::size_t burst = std::max<std::size_t>(spec.burst, 1);
  const double burst_rate = spec.offered_rps / static_cast<double>(burst);
  while (times.size() < spec.requests) {
    t += -std::log(1.0 - rng.uniform()) / burst_rate;
    for (std::size_t b = 0; b < burst && times.size() < spec.requests; ++b) {
      times.push_back(t);
    }
  }
  return times;
}

Request make_request(const LoadSpec& spec, std::size_t index,
                     std::size_t vocab_size) {
  APTQ_CHECK(vocab_size >= 1, "loadgen: empty vocab");
  // Stream index+1: independent of the schedule stream and of every other
  // request.
  Rng rng = Rng::for_stream(spec.seed, index + 1);
  Request req;
  const bool is_long = rng.uniform() < spec.long_fraction;
  const std::size_t len =
      std::max<std::size_t>(is_long ? spec.long_prompt : spec.short_prompt, 1);
  req.prompt.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    req.prompt.push_back(static_cast<TokenId>(rng.index(vocab_size)));
  }
  req.max_new_tokens = std::max<std::size_t>(spec.max_new_tokens, 1);
  req.seed = spec.seed;
  const int levels = std::max(spec.priority_levels, 1);
  req.priority = static_cast<int>(index % static_cast<std::size_t>(levels));
  return req;
}

double exact_percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  const double rank =
      std::ceil(p / 100.0 * static_cast<double>(values.size()));
  const std::size_t idx = static_cast<std::size_t>(
      std::clamp(rank, 1.0, static_cast<double>(values.size())));
  return values[idx - 1];
}

LoadPoint run_load(ServeEngine& engine, const LoadSpec& spec) {
  APTQ_CHECK(engine.idle(), "loadgen: engine must start idle");
  const std::vector<double> schedule = arrival_times(spec);
  const std::size_t vocab = engine.model_config().vocab_size;
  const Timer wall;
  std::size_t next = 0;
  std::size_t rejected_at_submit = 0;
  // Client timeouts, in submission (= deadline) order. cancel() on an
  // already-finished id is a harmless no-op returning false.
  std::vector<std::pair<RequestId, double>> deadlines;
  std::size_t next_deadline = 0;
  const double cancel_after_s = spec.cancel_after_ms / 1e3;
  const auto apply_cancels = [&](double elapsed) {
    if (spec.cancel_after_ms <= 0.0) {
      return;
    }
    while (next_deadline < deadlines.size() &&
           elapsed >= deadlines[next_deadline].second) {
      engine.cancel(deadlines[next_deadline].first);
      ++next_deadline;
    }
  };
  while (next < schedule.size()) {
    const double elapsed = wall.seconds();
    apply_cancels(elapsed);
    if (elapsed >= schedule[next]) {
      try {
        const RequestId id = engine.submit(make_request(spec, next, vocab));
        if (spec.cancel_after_ms > 0.0) {
          deadlines.emplace_back(id, elapsed + cancel_after_s);
        }
      } catch (const Error&) {
        // Queue full (max_queue): the open-loop client drops the request
        // and keeps offering — exactly what an overloaded server sees.
        ++rejected_at_submit;
      }
      ++next;
      continue;
    }
    if (engine.step() == 0) {
      // Idle until the next arrival: yield instead of spinning flat out.
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  // Drain step-by-step so timeouts keep firing for in-flight requests.
  while (!engine.idle()) {
    apply_cancels(wall.seconds());
    engine.step();
  }
  std::vector<GenerationResult> results = engine.run();
  const double wall_seconds = std::max(wall.seconds(), 1e-9);

  LoadPoint point;
  point.offered_rps = spec.offered_rps;
  point.wall_seconds = wall_seconds;
  std::vector<double> ttft, tpot, wait;
  for (const GenerationResult& r : results) {
    if (r.finish == FinishReason::rejected) {
      ++point.rejected;
      continue;
    }
    if (r.finish == FinishReason::cancelled) {
      ++point.cancelled;
      continue;
    }
    ++point.completed;
    if (r.finish == FinishReason::context_full) {
      ++point.evicted;
    }
    ttft.push_back(r.ttft_ms);
    wait.push_back(r.queue_wait_ms);
    if (r.tokens.size() > 1) {
      tpot.push_back(r.tpot_ms);
    }
    const bool meets_ttft =
        spec.slo_ttft_ms <= 0.0 || r.ttft_ms <= spec.slo_ttft_ms;
    const bool meets_tpot =
        spec.slo_tpot_ms <= 0.0 || r.tokens.size() <= 1 ||
        r.tpot_ms <= spec.slo_tpot_ms;
    if (meets_ttft && meets_tpot) {
      point.goodput_rps += 1.0;
    }
  }
  point.rejected += rejected_at_submit;
  point.achieved_rps = static_cast<double>(point.completed) / wall_seconds;
  point.goodput_rps /= wall_seconds;
  point.p50_ttft_ms = exact_percentile(ttft, 50.0);
  point.p99_ttft_ms = exact_percentile(ttft, 99.0);
  point.p50_tpot_ms = exact_percentile(tpot, 50.0);
  point.p99_tpot_ms = exact_percentile(tpot, 99.0);
  point.p50_queue_wait_ms = exact_percentile(wait, 50.0);
  point.p99_queue_wait_ms = exact_percentile(wait, 99.0);
  return point;
}

}  // namespace aptq::serve
