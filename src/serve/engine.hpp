// Continuous-batching serving engine over the shared KV-cache decode
// engine (model/decode.hpp).
//
// The engine multiplexes many concurrent generation requests over one
// model. Each scheduler step
//
//   1. admits queued requests (highest priority first, FIFO within a
//      level) while a batch seat, a KvPool slot, and enough KV pages for
//      the prompt are all free,
//   2. prefills freshly admitted requests (each a batched decode_prefill
//      over the whole prompt), then advances every older request one
//      token through a single decode_step_batch forward pass — the
//      in-flight activations are stacked into one (batch × dim) matrix so
//      the batched kernels stream each weight row once per step and the
//      global ThreadPool parallelizes inside the GEMMs,
//   3. samples each request's next token from its private RNG stream
//      (Rng::for_stream(seed, request_id)) with its own temperature/top_k,
//   4. retires finished requests (eos / max_new_tokens / KV capacity) and
//      recycles their KV slot.
//
// Determinism contract: a request's token stream is a pure function of
// (model, prompt, sampling, seed, request id) — byte-identical to running
// it alone through decode_prefill/decode_step + sample_token — regardless
// of batch composition, arrival order, or thread count. Enforced by
// tests/serve_test.cpp; design notes in docs/SERVING.md.
//
// The engine is single-submitter: submit()/step()/run() are called from
// one thread; parallelism lives inside step(). Instrumentation (spans,
// serve.* metrics, the run-report serving section) activates with the
// usual obs switches and costs one relaxed load when off.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "serve/backend.hpp"
#include "serve/kv_pool.hpp"
#include "serve/request.hpp"
#include "serve/spec.hpp"
#include "tensor/matrix.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace aptq::obs {
class RunReport;
}

namespace aptq::serve {

class ServeEngine {
 public:
  ServeEngine(Backend backend, const ServeConfig& config);

  /// Engine with speculative decoding available: requests that set
  /// Request::speculative decode through draft-propose / batched-verify
  /// cycles (emitting the exact same token streams, usually in fewer
  /// target passes); other requests are served as usual. Requires the
  /// target backend to provide verify.
  ServeEngine(Backend backend, const ServeConfig& config, SpecConfig spec);

  /// Enqueue one request; returns its id. Throws aptq::Error on invalid
  /// requests (empty prompt, out-of-vocab token, zero max_new_tokens,
  /// non-positive temperature) or when the queue is at max_queue.
  RequestId submit(Request request);

  /// One scheduler iteration (admission + one prefill-or-step per active
  /// request + retirement). Returns the number of tokens sampled; 0 means
  /// the engine is idle.
  std::size_t step();

  /// Cancel a request by id, from the submitter thread. Queued requests
  /// leave immediately; in-flight requests retire with the tokens
  /// generated so far. Either way the result carries
  /// FinishReason::cancelled. Returns false when the id is unknown or the
  /// request already finished.
  bool cancel(RequestId id);

  /// Drive step() until queue and batch are empty, then return every
  /// result accumulated since construction (or the last run()), sorted by
  /// request id.
  std::vector<GenerationResult> run();

  bool idle() const { return queue_.empty() && active_.empty(); }
  std::size_t queue_depth() const { return queue_.size(); }
  std::size_t active_count() const { return active_.size(); }
  const KvPool& pool() const { return pool_; }
  const ServeConfig& config() const { return config_; }
  /// The backend's model geometry (vocab for workload generation, dims
  /// for sizing heuristics).
  const ModelConfig& model_config() const { return backend_.config; }
  /// Backend label ("dense", "packed", "sharded_packed", ...).
  const std::string& backend_name() const { return backend_.name; }
  const ServeStats& stats() const { return stats_; }
  /// Speculation counters; nullptr when the engine was built without a
  /// SpecConfig.
  const SpecStats* spec_stats() const {
    return spec_ != nullptr ? &spec_->stats() : nullptr;
  }

  /// Adds the engine's aggregate stats to the report's "serving" section
  /// (keys prefixed "<backend>.", e.g. "packed.tokens_per_sec").
  void fill_report(obs::RunReport& report) const;

  /// Streaming hook: fires once per sampled token, right after the stopping
  /// rules run — `finish` is FinishReason::none while the request keeps
  /// going, else the reason it stopped on this token. Called inline from
  /// step()'s thread between forward passes, so the callback must be cheap
  /// relative to a decode step (the HTTP front-end writes one chunk). Does
  /// not alter scheduling or sampling: token streams are byte-identical
  /// with or without a callback installed.
  using TokenCallback =
      std::function<void(RequestId, TokenId, FinishReason)>;
  void set_token_callback(TokenCallback cb) { on_token_ = std::move(cb); }

 private:
  struct Pending {
    RequestId id = 0;
    Request request;
    Timer since_submit;
  };
  struct Active {
    RequestId id = 0;
    Request request;
    Rng rng;
    DecodeState* state = nullptr;
    TokenSeq generated;
    TokenId next_input = 0;      ///< token to feed the next decode_step
    bool needs_prefill = true;
    bool evicted_by_pages = false;  ///< context_full cause: arena, not pos
    FinishReason finish = FinishReason::none;
    double ttft_ms = 0.0;
    double queue_wait_ms = 0.0;  ///< submit -> admission
    double prefill_ms = 0.0;     ///< prompt forward pass
    double decode_ms = 0.0;      ///< accumulated step_batch/verify time
    std::size_t spec_cycles = 0;
    std::size_t spec_proposed = 0;
    std::size_t spec_accepted = 0;
    double spec_draft_ms = 0.0;
    double spec_verify_ms = 0.0;
    Timer since_submit;
  };

  void admit();
  void prefill_one(Active& a);
  /// Sample from `logits` into `a` and run the stopping rules as if the
  /// sampled token's decode step had advanced the context to `ctx_pos`
  /// consumed positions (== a.state->pos() on the plain path; spec cycles
  /// pass the solo-equivalent position of each verify row).
  TokenId sample_and_stop(Active& a, std::vector<float> logits,
                          std::size_t ctx_pos);
  /// One draft-propose / batched-verify / accept-reject cycle; returns
  /// the number of tokens emitted (>= 1 unless evicted for pages).
  std::size_t spec_cycle(Active& a);
  void retire_finished();
  void update_gauges();

  Backend backend_;
  std::unique_ptr<SpecDecoder> spec_;
  TokenCallback on_token_;
  ServeConfig config_;
  KvPool pool_;
  RequestId next_id_ = 0;
  std::vector<Pending> queue_;
  std::vector<Active> active_;
  std::vector<GenerationResult> results_;
  ServeStats stats_;
};

}  // namespace aptq::serve
