// Continuous-batching serving engine over the shared KV-cache decode
// engine (model/decode.hpp).
//
// The engine multiplexes many concurrent generation requests over one
// model. Each scheduler step
//
//   1. admits queued requests (highest priority first, FIFO within a
//      level) while a batch seat, a KvPool slot, and enough KV pages for
//      the prompt are all free,
//   2. prefills freshly admitted requests (each a batched decode_prefill
//      over the whole prompt), then advances every older request one
//      token through a single decode_step_batch forward pass — the
//      in-flight activations are stacked into one (batch × dim) matrix so
//      the batched kernels stream each weight row once per step and the
//      global ThreadPool parallelizes inside the GEMMs,
//   3. samples each request's next token from its private RNG stream
//      (Rng::for_stream(seed, request_id)) with its own temperature/top_k,
//   4. retires finished requests (eos / max_new_tokens / KV capacity) and
//      recycles their KV slot.
//
// Determinism contract: a request's token stream is a pure function of
// (model, prompt, sampling, seed, request id) — byte-identical to running
// it alone through decode_prefill/decode_step + sample_token — regardless
// of batch composition, arrival order, or thread count. Enforced by
// tests/serve_test.cpp; design notes in docs/SERVING.md.
//
// The engine is single-submitter: submit()/step()/run() are called from
// one thread; parallelism lives inside step(). Instrumentation (spans,
// serve.* metrics, the run-report serving section) activates with the
// usual obs switches and costs one relaxed load when off.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "serve/kv_pool.hpp"
#include "serve/request.hpp"
#include "tensor/matrix.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace aptq {
class PackedModel;  // full definition only needed by make_backend's impl
}

namespace aptq::obs {
class RunReport;
}

namespace aptq::serve {

/// Type-erased decode backend: the engine drives any model that offers
/// prefill/step over a DecodeState. The callables borrow the model — it
/// must outlive the backend. step_batch advances one token for each of a
/// batch of independent requests in a single forward pass (row i of the
/// returned logits is bitwise identical to step on request i alone); the
/// engine feeds every in-flight request through it, so the batched
/// kernels see all rows at once and the pool parallelizes inside the
/// GEMMs instead of across requests.
struct Backend {
  std::string name;  ///< "dense" / "packed" (report + bench labels)
  ModelConfig config;
  std::function<Matrix(std::span<const TokenId>, DecodeState&)> prefill;
  std::function<std::vector<float>(TokenId, DecodeState&)> step;
  std::function<Matrix(std::span<const TokenId>,
                       std::span<DecodeState* const>)>
      step_batch;
};

/// Backend over the dense fp32 model.
Backend make_backend(const Model& model);
/// Backend over the bit-packed model (steps hit the fused dequant GEMV).
Backend make_backend(const PackedModel& model);

class ServeEngine {
 public:
  ServeEngine(Backend backend, const ServeConfig& config);

  /// Enqueue one request; returns its id. Throws aptq::Error on invalid
  /// requests (empty prompt, out-of-vocab token, zero max_new_tokens,
  /// non-positive temperature) or when the queue is at max_queue.
  RequestId submit(Request request);

  /// One scheduler iteration (admission + one prefill-or-step per active
  /// request + retirement). Returns the number of tokens sampled; 0 means
  /// the engine is idle.
  std::size_t step();

  /// Drive step() until queue and batch are empty, then return every
  /// result accumulated since construction (or the last run()), sorted by
  /// request id.
  std::vector<GenerationResult> run();

  bool idle() const { return queue_.empty() && active_.empty(); }
  std::size_t queue_depth() const { return queue_.size(); }
  std::size_t active_count() const { return active_.size(); }
  const KvPool& pool() const { return pool_; }
  const ServeConfig& config() const { return config_; }
  /// The backend's model geometry (vocab for workload generation, dims
  /// for sizing heuristics).
  const ModelConfig& model_config() const { return backend_.config; }
  /// Backend label ("dense", "packed", "sharded_packed", ...).
  const std::string& backend_name() const { return backend_.name; }
  const ServeStats& stats() const { return stats_; }

  /// Adds the engine's aggregate stats to the report's "serving" section
  /// (keys prefixed "<backend>.", e.g. "packed.tokens_per_sec").
  void fill_report(obs::RunReport& report) const;

  /// Streaming hook: fires once per sampled token, right after the stopping
  /// rules run — `finish` is FinishReason::none while the request keeps
  /// going, else the reason it stopped on this token. Called inline from
  /// step()'s thread between forward passes, so the callback must be cheap
  /// relative to a decode step (the HTTP front-end writes one chunk). Does
  /// not alter scheduling or sampling: token streams are byte-identical
  /// with or without a callback installed.
  using TokenCallback =
      std::function<void(RequestId, TokenId, FinishReason)>;
  void set_token_callback(TokenCallback cb) { on_token_ = std::move(cb); }

 private:
  struct Pending {
    RequestId id = 0;
    Request request;
    Timer since_submit;
  };
  struct Active {
    RequestId id = 0;
    Request request;
    Rng rng;
    DecodeState* state = nullptr;
    TokenSeq generated;
    TokenId next_input = 0;      ///< token to feed the next decode_step
    bool needs_prefill = true;
    bool evicted_by_pages = false;  ///< context_full cause: arena, not pos
    FinishReason finish = FinishReason::none;
    double ttft_ms = 0.0;
    double queue_wait_ms = 0.0;  ///< submit -> admission
    double prefill_ms = 0.0;     ///< prompt forward pass
    double decode_ms = 0.0;      ///< accumulated step_batch time
    Timer since_submit;
  };

  void admit();
  void prefill_one(Active& a);
  void sample_and_stop(Active& a, std::vector<float> logits);
  void retire_finished();
  void update_gauges();

  Backend backend_;
  TokenCallback on_token_;
  ServeConfig config_;
  KvPool pool_;
  RequestId next_id_ = 0;
  std::vector<Pending> queue_;
  std::vector<Active> active_;
  std::vector<GenerationResult> results_;
  ServeStats stats_;
};

}  // namespace aptq::serve
