#include "serve/spec.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/timer.hpp"

namespace aptq::serve {

namespace {

TokenId argmax_token(std::span<const float> logits) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < logits.size(); ++i) {
    if (logits[i] > logits[best]) {
      best = i;
    }
  }
  return static_cast<TokenId>(best);
}

}  // namespace

SpecDecoder::SpecDecoder(SpecConfig config, std::size_t max_context)
    : config_(std::move(config)), max_context_(max_context) {
  APTQ_CHECK(config_.k >= 1, "SpecDecoder: k must be >= 1");
  APTQ_CHECK(config_.draft.prefill && config_.draft.step,
             "SpecDecoder: draft backend missing prefill/step");
  APTQ_CHECK(max_context_ >= 1, "SpecDecoder: max_context must be >= 1");
}

std::vector<TokenId> SpecDecoder::propose(RequestId id,
                                          std::span<const TokenId> prompt,
                                          std::span<const TokenId> generated,
                                          std::size_t k) {
  APTQ_CHECK(k >= 1, "SpecDecoder: propose with k == 0");
  APTQ_CHECK(!generated.empty(),
             "SpecDecoder: propose before the request's first token");
  const Timer draft_timer;
  Session& s = sessions_[id];
  if (s.state == nullptr) {
    s.state = std::make_unique<DecodeState>(config_.draft.config,
                                            max_context_);
  }
  // The true stream is prompt + generated; its last token is the one the
  // target is about to consume, so the draft consumes it too and then
  // chains k greedy steps. `base` = index of that last token.
  const std::size_t total = prompt.size() + generated.size();
  const std::size_t base = total - 1;
  // Roll back proposals a previous cycle rejected: the session keeps only
  // the prefix verified against the true stream.
  if (s.state->pos() > s.consumed) {
    s.state->rewind(s.consumed);
  }
  APTQ_CHECK(s.consumed <= base, "SpecDecoder: draft ahead of true stream");
  // Catch-up feed: everything in (consumed, base] — after a rejection this
  // is the corrected token plus any bonus tokens, on the first cycle it is
  // the whole prompt plus the first sampled token. One batched prefill.
  std::vector<TokenId> feed;
  feed.reserve(base + 1 - s.consumed);
  for (std::size_t i = s.consumed; i <= base; ++i) {
    feed.push_back(i < prompt.size() ? prompt[i]
                                     : generated[i - prompt.size()]);
  }
  const Matrix caught = config_.draft.prefill(feed, *s.state);
  s.consumed = base + 1;
  s.base = base;

  std::vector<TokenId> proposals;
  proposals.reserve(k);
  proposals.push_back(argmax_token(caught.row(caught.rows() - 1)));
  for (std::size_t j = 1; j < k; ++j) {
    // Chain: the draft consumes its own previous proposal. Proposals are
    // tentative context — commit() decides how much of it survives.
    const std::vector<float> logits =
        config_.draft.step(proposals[j - 1], *s.state);
    proposals.push_back(argmax_token(logits));
  }
  stats_.draft_ms += draft_timer.millis();
  return proposals;
}

void SpecDecoder::commit(RequestId id, std::size_t proposed,
                         std::size_t accepted, std::size_t emitted,
                         double verify_ms) {
  const auto it = sessions_.find(id);
  APTQ_CHECK(it != sessions_.end(), "SpecDecoder: commit without propose");
  APTQ_CHECK(proposed >= 1 && accepted <= proposed,
             "SpecDecoder: inconsistent commit");
  Session& s = it->second;
  // The draft consumed the cycle's first input plus proposals d_1..d_{k-1}
  // (the last proposal is never fed back). The first min(accepted, k-1) of
  // those now belong to the true stream; the rest are rolled back on the
  // next propose().
  s.consumed = s.base + 1 + std::min(accepted, proposed - 1);
  ++stats_.cycles;
  stats_.proposed += proposed;
  stats_.accepted += accepted;
  stats_.emitted += emitted;
  stats_.verify_ms += verify_ms;
}

void SpecDecoder::detach(RequestId id) { sessions_.erase(id); }

}  // namespace aptq::serve
