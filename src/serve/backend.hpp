// Type-erased decode backend shared by the serving engine (engine.hpp)
// and the speculative decoder (spec.hpp). Split out of engine.hpp so the
// SpecConfig/SpecDecoder types can name a Backend without a circular
// include.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "model/decode.hpp"
#include "tensor/matrix.hpp"

namespace aptq {
class PackedModel;  // full definition only needed by make_backend's impl
}

namespace aptq::serve {

/// Type-erased decode backend: the engine drives any model that offers
/// prefill/step over a DecodeState. The callables borrow the model — it
/// must outlive the backend. step_batch advances one token for each of a
/// batch of independent requests in a single forward pass (row i of the
/// returned logits is bitwise identical to step on request i alone); the
/// engine feeds every in-flight request through it, so the batched
/// kernels see all rows at once and the pool parallelizes inside the
/// GEMMs instead of across requests. verify consumes m candidate tokens
/// on ONE session with row j bitwise identical to the j-th of m
/// sequential step calls (the speculative-decoding verifier; see
/// decode_verify in model/decode.hpp). Backends that cannot offer it
/// leave it empty — the engine then rejects speculative requests at
/// submit().
struct Backend {
  std::string name;  ///< "dense" / "packed" (report + bench labels)
  ModelConfig config;
  std::function<Matrix(std::span<const TokenId>, DecodeState&)> prefill;
  std::function<std::vector<float>(TokenId, DecodeState&)> step;
  std::function<Matrix(std::span<const TokenId>,
                       std::span<DecodeState* const>)>
      step_batch;
  std::function<Matrix(std::span<const TokenId>, DecodeState&)> verify;
};

/// Backend over the dense fp32 model.
Backend make_backend(const Model& model);
/// Backend over the bit-packed model (steps hit the fused dequant GEMV).
Backend make_backend(const PackedModel& model);

}  // namespace aptq::serve
