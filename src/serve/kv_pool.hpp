// Paged KV-cache pool for the serving engine.
//
// One shared KvArena (model/decode.hpp) backs every slot: the slab is
// allocated once at construction and cut into fixed-size pages; each
// DecodeState maps pages on demand through its page table as its context
// grows, and returns them the moment the request retires. Thousands of
// requests can therefore cycle through bounded memory — the arena's page
// count, not slots × max_context, is the engine's hard bound on resident
// KV — and bytes() reports what is actually allocated (slab + page
// tables) rather than a nominal per-slot figure. acquire()/release() are
// O(1): a free list plus a slot index keyed by pointer.
#pragma once

#include <cstddef>
#include <memory>
#include <unordered_map>
#include <vector>

#include "model/decode.hpp"

namespace aptq::serve {

class KvPool {
 public:
  /// `slots` states for `config`-shaped layers, each able to map up to
  /// `max_context` positions from a shared arena of `pages` pages of
  /// `page_positions` positions each. page_positions == 0 picks
  /// kKvPagePositions; pages == 0 provisions enough for every slot to
  /// reach max_context simultaneously (no oversubscription). Throws if
  /// slots or max_context is zero.
  KvPool(const ModelConfig& config, std::size_t max_context,
         std::size_t slots, std::size_t page_positions = 0,
         std::size_t pages = 0);

  std::size_t slots() const { return states_.size(); }
  std::size_t in_use() const { return states_.size() - free_.size(); }
  std::size_t available() const { return free_.size(); }
  std::size_t max_context() const { return max_context_; }

  std::size_t page_positions() const { return arena_.page_positions(); }
  std::size_t pages() const { return arena_.pages(); }
  std::size_t free_pages() const { return arena_.free_pages(); }
  std::size_t pages_in_use() const {
    return arena_.pages() - arena_.free_pages();
  }

  /// Resident bytes: the arena slab (allocated up front, mapped or not)
  /// plus every slot's page table.
  std::size_t bytes() const;

  /// Bytes actually mapped by in-flight requests (pages held via page
  /// tables) — the demand-side counterpart of bytes().
  std::size_t mapped_bytes() const;

  /// A reset state, or nullptr when every slot is in use. The pool keeps
  /// ownership; hand the pointer back via release(). The state holds no
  /// pages yet — callers reserve via DecodeState::try_reserve.
  DecodeState* acquire();

  /// Return a state obtained from acquire(); its pages go back to the
  /// arena immediately. Throws if `state` is not a pool slot or is not
  /// currently in use.
  void release(DecodeState* state);

 private:
  std::size_t max_context_ = 0;
  KvArena arena_;
  std::vector<std::unique_ptr<DecodeState>> states_;
  std::vector<DecodeState*> free_;
  std::unordered_map<const DecodeState*, std::size_t> index_;
  std::vector<std::uint8_t> busy_;
};

}  // namespace aptq::serve
