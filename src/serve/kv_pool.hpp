// Pooled arena of DecodeStates for the serving engine.
//
// Every slot is allocated once at construction (config-shaped caches of
// max_context positions) and recycled across requests: acquire() hands out
// a reset state, release() returns it. No per-request heap traffic on the
// serving hot path, and the slot count is the engine's hard bound on
// resident KV memory — bytes() reports it for capacity planning.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "model/decode.hpp"

namespace aptq::serve {

class KvPool {
 public:
  /// `slots` states for `config`-shaped layers, each holding up to
  /// `max_context` positions. Throws if slots or max_context is zero.
  KvPool(const ModelConfig& config, std::size_t max_context,
         std::size_t slots);

  std::size_t slots() const { return states_.size(); }
  std::size_t in_use() const { return states_.size() - free_.size(); }
  std::size_t available() const { return free_.size(); }
  std::size_t max_context() const { return max_context_; }

  /// KV bytes resident across all slots (f32 K and V per layer).
  std::size_t bytes() const;

  /// A reset state, or nullptr when every slot is in use. The pool keeps
  /// ownership; hand the pointer back via release().
  DecodeState* acquire();

  /// Return a state obtained from acquire(). Throws if `state` is not a
  /// pool slot or is not currently in use.
  void release(DecodeState* state);

 private:
  std::size_t max_context_ = 0;
  std::vector<std::unique_ptr<DecodeState>> states_;
  std::vector<DecodeState*> free_;
};

}  // namespace aptq::serve
