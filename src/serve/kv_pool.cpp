#include "serve/kv_pool.hpp"

#include "util/check.hpp"

namespace aptq::serve {

namespace {

std::size_t resolve_page_positions(std::size_t page_positions) {
  return page_positions == 0 ? kKvPagePositions : page_positions;
}

std::size_t resolve_pages(std::size_t pages, std::size_t page_positions,
                          std::size_t max_context, std::size_t slots) {
  if (pages != 0) {
    return pages;
  }
  const std::size_t pp = resolve_page_positions(page_positions);
  return slots * ((max_context + pp - 1) / pp);
}

}  // namespace

KvPool::KvPool(const ModelConfig& config, std::size_t max_context,
               std::size_t slots, std::size_t page_positions,
               std::size_t pages)
    : max_context_(max_context),
      arena_(config, resolve_page_positions(page_positions),
             resolve_pages(pages, page_positions, max_context, slots)) {
  APTQ_CHECK(slots >= 1, "KvPool: need at least one slot");
  states_.reserve(slots);
  free_.reserve(slots);
  busy_.assign(slots, 0);
  for (std::size_t i = 0; i < slots; ++i) {
    states_.push_back(
        std::make_unique<DecodeState>(config, max_context, arena_));
    index_.emplace(states_.back().get(), i);
  }
  // Free list in reverse so acquire() hands out slot 0 first (stable slot
  // order is convenient when reading traces).
  for (std::size_t i = slots; i > 0; --i) {
    free_.push_back(states_[i - 1].get());
  }
}

std::size_t KvPool::bytes() const {
  std::size_t total = arena_.bytes();
  for (const auto& s : states_) {
    total += s->pages_held() * sizeof(std::uint32_t);
  }
  return total;
}

std::size_t KvPool::mapped_bytes() const {
  const std::size_t page_bytes = arena_.page_stride() * sizeof(float);
  std::size_t total = 0;
  for (const auto& s : states_) {
    total += s->pages_held() * page_bytes;
  }
  return total;
}

DecodeState* KvPool::acquire() {
  if (free_.empty()) {
    return nullptr;
  }
  DecodeState* state = free_.back();
  free_.pop_back();
  busy_[index_.at(state)] = 1;
  state->reset();
  return state;
}

void KvPool::release(DecodeState* state) {
  const auto it = index_.find(state);
  APTQ_CHECK(it != index_.end(),
             "KvPool::release: state not owned by this pool");
  APTQ_CHECK(busy_[it->second] != 0, "KvPool::release: state already free");
  busy_[it->second] = 0;
  // Pages go back to the arena now, not at the next acquire — a retired
  // request must not hold capacity hostage while its slot idles.
  state->reset();
  free_.push_back(state);
}

}  // namespace aptq::serve
