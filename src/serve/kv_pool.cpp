#include "serve/kv_pool.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace aptq::serve {

KvPool::KvPool(const ModelConfig& config, std::size_t max_context,
               std::size_t slots)
    : max_context_(max_context) {
  APTQ_CHECK(slots >= 1, "KvPool: need at least one slot");
  states_.reserve(slots);
  free_.reserve(slots);
  for (std::size_t i = 0; i < slots; ++i) {
    states_.push_back(std::make_unique<DecodeState>(config, max_context));
  }
  // Free list in reverse so acquire() hands out slot 0 first (stable slot
  // order is convenient when reading traces).
  for (std::size_t i = slots; i > 0; --i) {
    free_.push_back(states_[i - 1].get());
  }
}

std::size_t KvPool::bytes() const {
  if (states_.empty()) {
    return 0;
  }
  const ModelConfig& cfg = states_.front()->config();
  return states_.size() * cfg.n_layers * 2 * max_context_ * cfg.kv_dim() *
         sizeof(float);
}

DecodeState* KvPool::acquire() {
  if (free_.empty()) {
    return nullptr;
  }
  DecodeState* state = free_.back();
  free_.pop_back();
  state->reset();
  return state;
}

void KvPool::release(DecodeState* state) {
  const bool owned =
      std::any_of(states_.begin(), states_.end(),
                  [state](const auto& s) { return s.get() == state; });
  APTQ_CHECK(owned, "KvPool::release: state not owned by this pool");
  APTQ_CHECK(std::find(free_.begin(), free_.end(), state) == free_.end(),
             "KvPool::release: state already free");
  free_.push_back(state);
}

}  // namespace aptq::serve
