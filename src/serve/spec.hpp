// Speculative decoding for the serving engine: a cheap draft model
// proposes k greedy tokens per cycle, the target backend verifies all of
// them in one batched decode_verify pass, and exact accept/reject keeps
// the emitted stream bitwise identical to non-speculative decoding.
//
// Exactness argument (docs/SERVING.md has the long form): verify row j is
// bitwise identical to the logits a solo decode_step would produce after
// consuming the same prefix, and the engine samples row j with the same
// sample_token call and the same per-request RNG draw order as solo
// decoding. The sampled token t_j either equals proposal d_{j+1} — the
// draft guessed what the target was going to emit anyway — or it doesn't,
// in which case t_j itself is the corrected emitted token and the rest of
// the proposals are discarded. Either way every emitted token is exactly
// the token solo decoding would have emitted; the draft only ever decides
// how many target steps were *skipped*, never what was produced. Rejected
// positions are rolled back with DecodeState::rewind, which also releases
// their KV pages, so paged-arena residency matches solo decoding between
// cycles.
//
// SpecDecoder owns the draft sessions (one private DecodeState per
// speculative request) and tracks the accepted prefix of each request's
// true stream, rewinding and re-feeding the draft after rejections. The
// ServeEngine calls propose() before each verify pass and commit() after,
// and detach() when the request retires.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "model/decode.hpp"
#include "serve/backend.hpp"
#include "serve/request.hpp"

namespace aptq::serve {

/// Speculative-decoding configuration for a ServeEngine tier: the draft
/// backend and the number of tokens it proposes per cycle. The draft must
/// share the target's vocabulary (checked per request at submit()).
struct SpecConfig {
  Backend draft;
  std::size_t k = 4;  ///< proposals per cycle (>= 1); clamped per cycle
};

/// Aggregate speculation counters for one engine lifetime.
struct SpecStats {
  std::size_t cycles = 0;       ///< verify passes with >= 1 proposal
  std::uint64_t proposed = 0;   ///< draft tokens offered for verification
  std::uint64_t accepted = 0;   ///< proposals that matched the target
  std::uint64_t emitted = 0;    ///< tokens emitted by spec cycles
  double draft_ms = 0.0;        ///< total propose() time
  double verify_ms = 0.0;       ///< total decode_verify time

  double accept_rate() const {
    return proposed > 0
               ? static_cast<double>(accepted) / static_cast<double>(proposed)
               : 0.0;
  }
  double emitted_per_cycle() const {
    return cycles > 0
               ? static_cast<double>(emitted) / static_cast<double>(cycles)
               : 0.0;
  }
};

/// Draft-session manager: greedy proposal generation plus the
/// rewind-and-refeed bookkeeping that keeps each draft session consistent
/// with its request's true (verified) token stream.
class SpecDecoder {
 public:
  /// `max_context` bounds each draft session's KV cache; the engine passes
  /// its own max_context (a draft never consumes more positions than the
  /// target, see propose()).
  SpecDecoder(SpecConfig config, std::size_t max_context);

  const SpecConfig& config() const { return config_; }
  const SpecStats& stats() const { return stats_; }
  std::size_t sessions() const { return sessions_.size(); }

  /// Greedy-argmax proposals continuing request `id`'s true stream
  /// (`prompt` + `generated`, the last element of which is the target's
  /// next input). Catches the draft up to the accepted prefix — rewinding
  /// past any proposals a previous cycle rejected — then chains k
  /// argmax steps. Returns exactly k tokens.
  std::vector<TokenId> propose(RequestId id, std::span<const TokenId> prompt,
                               std::span<const TokenId> generated,
                               std::size_t k);

  /// Record the verify outcome of the last propose() on `id`: `proposed`
  /// tokens were offered, the first `accepted` matched, `emitted` tokens
  /// were produced by the cycle (accepted + correction or bonus), and the
  /// verify pass took `verify_ms`. Marks the draft's validated prefix; the
  /// rewind itself happens lazily on the next propose().
  void commit(RequestId id, std::size_t proposed, std::size_t accepted,
              std::size_t emitted, double verify_ms);

  /// Drop request `id`'s draft session (request retired).
  void detach(RequestId id);

 private:
  struct Session {
    std::unique_ptr<DecodeState> state;
    std::size_t consumed = 0;  ///< validated true-stream prefix held
    std::size_t base = 0;      ///< true-stream length - 1 at last propose()
  };

  SpecConfig config_;
  std::size_t max_context_ = 0;
  SpecStats stats_;
  std::unordered_map<RequestId, Session> sessions_;
};

}  // namespace aptq::serve
