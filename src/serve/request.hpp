// Request/response types and configuration for the continuous-batching
// serving engine (serve/engine.hpp).
//
// A Request carries everything that makes one generation independent of
// every other: the prompt, the stopping rules, the per-request sampling
// parameters, and the seed of its private RNG stream
// (Rng::for_stream(seed, request_id)). The engine's determinism contract —
// each request's token stream is byte-identical to decoding it alone —
// rests on requests never sharing mutable state; see docs/SERVING.md.
#pragma once

#include <cstdint>
#include <string>

#include "data/vocab.hpp"
#include "model/sampler.hpp"

namespace aptq::serve {

/// Engine-assigned request identity (dense, starting at 0 per engine).
using RequestId = std::uint64_t;

/// Why a request left the engine.
enum class FinishReason {
  none,          ///< still queued or in flight
  eos,           ///< sampled the request's eos_token
  max_tokens,    ///< generated max_new_tokens
  context_full,  ///< KV capacity reached before the other limits (evicted)
  rejected,      ///< never admitted (e.g. prompt longer than max_context)
  cancelled,     ///< caller cancelled via ServeEngine::cancel()
};

const char* to_string(FinishReason reason);

/// One generation request. Validated at submit(): non-empty prompt, every
/// token in vocab, max_new_tokens >= 1, temperature > 0.
struct Request {
  TokenSeq prompt;
  std::size_t max_new_tokens = 16;
  SampleConfig sampling;        ///< per-request temperature / top_k
  std::uint64_t seed = 0;       ///< per-request RNG stream seed
  int priority = 0;             ///< higher admits first; FIFO within a level
  TokenId eos_token = -1;       ///< stop when sampled; -1 disables
  /// Opt into speculative decoding (requires the engine to be constructed
  /// with a SpecConfig whose draft shares the target's vocab — both are
  /// validated at submit()). The token stream is bitwise identical either
  /// way; only latency changes.
  bool speculative = false;
};

/// Completed (or rejected) request. The latency breakdown decomposes
/// total_ms: queue_wait (submit → admission) + prefill (the prompt's
/// forward pass) + decode (all step_batch passes this request rode in);
/// the remainder is scheduler time spent on co-batched requests.
struct GenerationResult {
  RequestId id = 0;
  TokenSeq tokens;              ///< generated tokens (prompt excluded)
  FinishReason finish = FinishReason::none;
  std::string error;            ///< set when finish == rejected
  double ttft_ms = 0.0;         ///< submit -> first sampled token
  double total_ms = 0.0;        ///< submit -> completion
  double queue_wait_ms = 0.0;   ///< submit -> admitted into the batch
  double prefill_ms = 0.0;      ///< prompt forward pass
  double decode_ms = 0.0;       ///< sum of this request's decode passes
  double tpot_ms = 0.0;  ///< decode_ms per post-first token; 0 when the
                         ///< request produced <= 1 token (no decode pass
                         ///< ran — aggregations must skip, not average, it)
  std::size_t prompt_tokens = 0;
  std::size_t completion_step = 0;  ///< engine step() count at completion
  // Speculative-decoding breakdown (all zero for non-speculative requests).
  std::size_t spec_cycles = 0;     ///< verify passes with >= 1 proposal
  std::size_t spec_proposed = 0;   ///< draft tokens offered
  std::size_t spec_accepted = 0;   ///< draft tokens accepted
  double spec_draft_ms = 0.0;      ///< time in draft propose()
  double spec_verify_ms = 0.0;     ///< time in decode_verify passes
};

/// Engine sizing. Defaults suit the sim-scale models; production values
/// scale max_context / slots with available memory.
struct ServeConfig {
  std::size_t max_batch = 8;    ///< requests decoded per engine step
  std::size_t max_context = 256;  ///< KV capacity per pooled DecodeState
  std::size_t kv_slots = 0;     ///< pooled DecodeStates; 0 = max_batch
  std::size_t max_queue = 0;    ///< submit() throws past this; 0 = unbounded
  /// Positions per KV page in the shared paged arena; must be a power of
  /// two. 0 = kKvPagePositions (decode.hpp).
  std::size_t kv_page_positions = 0;
  /// Total pages in the shared arena. 0 = enough for every slot to reach
  /// max_context (the historical fully-provisioned bound). Smaller values
  /// oversubscribe: admission waits for pages, and a request that cannot
  /// map its next position mid-flight is evicted as context_full.
  std::size_t kv_pages = 0;
};

/// Aggregate counters for one engine lifetime (reported via
/// RunReport::add_serving; see ServeEngine::fill_report).
struct ServeStats {
  std::size_t submitted = 0;
  std::size_t completed = 0;   ///< includes evictions and in-flight
                               ///< cancellations, excludes rejections and
                               ///< queue cancellations
  std::size_t rejected = 0;
  std::size_t cancelled = 0;   ///< via ServeEngine::cancel(), any stage
  std::uint64_t prefill_tokens = 0;
  std::uint64_t generated_tokens = 0;
  std::size_t engine_steps = 0;
  std::size_t peak_active = 0;
  double busy_seconds = 0.0;   ///< wall time spent inside step()
  // Latency breakdown + pressure causes (schema_version 2 of the report's
  // serving section).
  double queue_wait_ms_sum = 0.0;   ///< across admitted requests
  double queue_wait_ms_max = 0.0;
  std::size_t evicted_capacity = 0;  ///< context_full: pos hit max_context
  std::size_t evicted_pages = 0;     ///< context_full: KV arena exhausted
  std::size_t backpressure_slots = 0;  ///< admission stalls: no KV slot
  std::size_t backpressure_pages = 0;  ///< admission stalls: no KV pages

  double tokens_per_sec() const {
    return busy_seconds > 0.0
               ? static_cast<double>(generated_tokens) / busy_seconds
               : 0.0;
  }
};

}  // namespace aptq::serve
