#include "serve/engine.hpp"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>

#include "obs/control.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "quant/packed_model.hpp"

namespace aptq::serve {

const char* to_string(FinishReason reason) {
  switch (reason) {
    case FinishReason::none: return "none";
    case FinishReason::eos: return "eos";
    case FinishReason::max_tokens: return "max_tokens";
    case FinishReason::context_full: return "context_full";
    case FinishReason::rejected: return "rejected";
    case FinishReason::cancelled: return "cancelled";
  }
  return "unknown";
}

Backend make_backend(const Model& model) {
  model.config.validate();
  Backend b;
  b.name = "dense";
  b.config = model.config;
  b.prefill = [&model](std::span<const TokenId> tokens, DecodeState& state) {
    return decode_prefill(model, tokens, state);
  };
  b.step = [&model](TokenId token, DecodeState& state) {
    return decode_step(model, token, state);
  };
  b.step_batch = [&model](std::span<const TokenId> tokens,
                          std::span<DecodeState* const> states) {
    return decode_step_batch(model, tokens, states);
  };
  b.verify = [&model](std::span<const TokenId> tokens, DecodeState& state) {
    return decode_verify(model, tokens, state);
  };
  return b;
}

Backend make_backend(const PackedModel& model) {
  Backend b;
  b.name = "packed";
  b.config = model.config();
  b.prefill = [&model](std::span<const TokenId> tokens, DecodeState& state) {
    return decode_prefill(model, tokens, state);
  };
  b.step = [&model](TokenId token, DecodeState& state) {
    return decode_step(model, token, state);
  };
  b.step_batch = [&model](std::span<const TokenId> tokens,
                          std::span<DecodeState* const> states) {
    return decode_step_batch(model, tokens, states);
  };
  b.verify = [&model](std::span<const TokenId> tokens, DecodeState& state) {
    return decode_verify(model, tokens, state);
  };
  return b;
}

ServeEngine::ServeEngine(Backend backend, const ServeConfig& config)
    : backend_(std::move(backend)),
      config_(config),
      pool_(backend_.config, config.max_context,
            config.kv_slots == 0 ? config.max_batch : config.kv_slots,
            config.kv_page_positions, config.kv_pages) {
  APTQ_CHECK(config_.max_batch >= 1, "ServeEngine: max_batch must be >= 1");
  APTQ_CHECK(backend_.prefill && backend_.step && backend_.step_batch,
             "ServeEngine: backend missing prefill/step/step_batch");
}

ServeEngine::ServeEngine(Backend backend, const ServeConfig& config,
                         SpecConfig spec)
    : ServeEngine(std::move(backend), config) {
  APTQ_CHECK(backend_.verify,
             "ServeEngine: speculative decoding needs a backend with verify");
  spec_ = std::make_unique<SpecDecoder>(std::move(spec), config_.max_context);
}

RequestId ServeEngine::submit(Request request) {
  APTQ_CHECK(config_.max_queue == 0 || queue_.size() < config_.max_queue,
             "ServeEngine: queue full (max_queue " +
                 std::to_string(config_.max_queue) + "); admission refused");
  APTQ_CHECK(!request.prompt.empty(), "ServeEngine: empty prompt");
  APTQ_CHECK(request.max_new_tokens >= 1,
             "ServeEngine: max_new_tokens must be >= 1");
  APTQ_CHECK(request.sampling.temperature > 0.0f,
             "ServeEngine: temperature must be positive");
  if (request.speculative) {
    // Reject at submit so a bad pairing never throws mid-flight from a
    // verify pass with co-batched requests in the engine.
    APTQ_CHECK(spec_ != nullptr,
               "ServeEngine: speculative request on an engine with no draft "
               "configured (construct with a SpecConfig)");
    APTQ_CHECK(
        spec_->config().draft.config.vocab_size == backend_.config.vocab_size,
        "ServeEngine: draft vocab " +
            std::to_string(spec_->config().draft.config.vocab_size) +
            " != target vocab " +
            std::to_string(backend_.config.vocab_size) +
            "; speculative verification requires a shared vocabulary");
  }
  for (const TokenId t : request.prompt) {
    APTQ_CHECK(t >= 0 && static_cast<std::size_t>(t) <
                             backend_.config.vocab_size,
               "ServeEngine: prompt token " + std::to_string(t) +
                   " out of vocab range");
  }
  Pending p;
  p.id = next_id_++;
  p.request = std::move(request);
  queue_.push_back(std::move(p));
  ++stats_.submitted;
  if (obs::telemetry_enabled()) {
    static auto& submitted = obs::counter("serve.requests_submitted");
    submitted.add(1);
  }
  update_gauges();
  return queue_.back().id;
}

void ServeEngine::admit() {
  while (active_.size() < config_.max_batch && !queue_.empty()) {
    // Highest priority first; FIFO (smallest id) within a level.
    auto best = queue_.begin();
    for (auto it = queue_.begin() + 1; it != queue_.end(); ++it) {
      if (it->request.priority > best->request.priority ||
          (it->request.priority == best->request.priority &&
           it->id < best->id)) {
        best = it;
      }
    }
    if (best->request.prompt.size() > config_.max_context) {
      // Can never prefill: fail the request, keep serving the rest.
      GenerationResult r;
      r.id = best->id;
      r.finish = FinishReason::rejected;
      r.error = "prompt of " + std::to_string(best->request.prompt.size()) +
                " tokens exceeds max_context " +
                std::to_string(config_.max_context);
      r.prompt_tokens = best->request.prompt.size();
      r.total_ms = best->since_submit.millis();
      r.completion_step = stats_.engine_steps;
      results_.push_back(std::move(r));
      ++stats_.rejected;
      if (obs::telemetry_enabled()) {
        static auto& rejected = obs::counter("serve.requests_rejected");
        rejected.add(1);
      }
      queue_.erase(best);
      continue;
    }
    DecodeState* state = pool_.acquire();
    if (state == nullptr) {
      // No KV slot free: stays queued. Counted once per stalled step so
      // the counter reads "steps spent blocked on slots".
      ++stats_.backpressure_slots;
      if (obs::telemetry_enabled()) {
        static auto& stalls = obs::counter("serve.backpressure_slots");
        stalls.add(1);
      }
      break;
    }
    // Reserve pages for the whole prompt plus the first decode position up
    // front, so prefill cannot die mid-flight on an exhausted arena. When
    // pages are oversubscribed (kv_pages below the full bound) this is the
    // backpressure point: the request stays queued until retirements
    // return enough pages.
    const std::size_t want =
        std::min(best->request.prompt.size() + 1, config_.max_context);
    if (!state->try_reserve(want)) {
      pool_.release(state);  // also returns any partially acquired pages
      ++stats_.backpressure_pages;
      if (obs::telemetry_enabled()) {
        static auto& stalls = obs::counter("serve.backpressure_pages");
        stalls.add(1);
      }
      break;
    }
    Active a;
    a.id = best->id;
    a.request = std::move(best->request);
    a.rng = Rng::for_stream(a.request.seed, a.id);
    a.state = state;
    a.since_submit = best->since_submit;
    a.queue_wait_ms = a.since_submit.millis();
    stats_.queue_wait_ms_sum += a.queue_wait_ms;
    stats_.queue_wait_ms_max =
        std::max(stats_.queue_wait_ms_max, a.queue_wait_ms);
    if (obs::telemetry_enabled()) {
      static auto& wait = obs::histogram("serve.queue_wait_ms");
      wait.record(a.queue_wait_ms);
    }
    queue_.erase(best);
    active_.push_back(std::move(a));
    stats_.peak_active = std::max(stats_.peak_active, active_.size());
  }
}

// Prefill a freshly admitted request's whole prompt (internally parallel
// across the pool), then sample its first token from the prefill logits.
void ServeEngine::prefill_one(Active& a) {
  // Per-request span; the dynamic name is only built when tracing is on so
  // the disabled path stays allocation-free.
  std::optional<obs::TraceSpan> span;
  if (obs::tracing_enabled()) {
    span.emplace("serve.request." + std::to_string(a.id), "serve");
  }
  const Timer prefill_timer;
  const Matrix all = backend_.prefill(a.request.prompt, *a.state);
  a.prefill_ms = prefill_timer.millis();
  const auto last = all.row(all.rows() - 1);
  a.needs_prefill = false;
  a.ttft_ms = a.since_submit.millis();
  if (obs::telemetry_enabled()) {
    static auto& prefill = obs::histogram("serve.prefill_ms");
    prefill.record(a.prefill_ms);
  }
  sample_and_stop(a, std::vector<float>(last.begin(), last.end()),
                  a.state->pos());
}

// Sample the next token from the request's private stream and evaluate the
// stopping rules against `ctx_pos`, the number of positions a solo decode
// would have consumed after this token's step.
TokenId ServeEngine::sample_and_stop(Active& a, std::vector<float> logits,
                                     std::size_t ctx_pos) {
  const TokenId token = sample_token(logits, a.request.sampling, a.rng);
  a.generated.push_back(token);
  a.next_input = token;
  // Stopping rules, in contract order (eos beats max_tokens beats KV
  // capacity; see docs/SERVING.md).
  if (a.request.eos_token >= 0 && token == a.request.eos_token) {
    a.finish = FinishReason::eos;
  } else if (a.generated.size() >= a.request.max_new_tokens) {
    a.finish = FinishReason::max_tokens;
  } else if (ctx_pos >= a.state->max_context()) {
    // decode_step would throw "context capacity exceeded": evict instead.
    a.finish = FinishReason::context_full;
  }
  if (on_token_) {
    on_token_(a.id, token, a.finish);
  }
  return token;
}

// One speculative cycle: the draft proposes up to k tokens continuing the
// request's stream, a single decode_verify pass scores the pending input
// plus every proposal, and the accept loop samples those rows in order with
// the request's RNG — draw-for-draw the sequence solo decoding would have
// drawn — until a stop rule fires or a proposal is contradicted (the
// sampled token then IS the corrected emission). Rejected positions are
// rolled back, pages and all. Returns the number of tokens emitted.
std::size_t ServeEngine::spec_cycle(Active& a) {
  const std::size_t pos0 = a.state->pos();
  const std::size_t cap = a.state->max_context();
  // k_eff counts proposals; the verify pass consumes k_eff + 1 positions
  // (the pending input plus the proposals). Clamp so the cycle can never
  // emit past max_new_tokens nor consume past max_context.
  const std::size_t remaining = a.request.max_new_tokens - a.generated.size();
  std::size_t k_eff = std::min(spec_->config().k, remaining - 1);
  k_eff = std::min(k_eff, cap - pos0 - 1);
  // Degrade instead of evicting when the paged arena is tight: a shorter
  // cycle needs fewer pages, and at k_eff == 0 the verify pass is exactly
  // a solo step. Any pages over-acquired by a failed attempt are released
  // by the rewind below.
  while (k_eff > 0 && !a.state->try_reserve(k_eff + 1)) {
    --k_eff;
  }
  if (k_eff == 0 && !a.state->try_reserve(1)) {
    // Arena exhausted even for a plain step: evict, same as the batch path.
    a.finish = FinishReason::context_full;
    a.evicted_by_pages = true;
    return 0;
  }

  std::vector<TokenId> inputs;
  inputs.reserve(k_eff + 1);
  inputs.push_back(a.next_input);
  double cycle_draft_ms = 0.0;
  if (k_eff > 0) {
    const Timer draft_timer;
    const std::vector<TokenId> proposals =
        spec_->propose(a.id, a.request.prompt, a.generated, k_eff);
    cycle_draft_ms = draft_timer.millis();
    a.spec_draft_ms += cycle_draft_ms;
    inputs.insert(inputs.end(), proposals.begin(), proposals.end());
  }

  const Timer verify_timer;
  const Matrix logits = backend_.verify(inputs, *a.state);
  const double verify_ms = verify_timer.millis();
  a.decode_ms += verify_ms;
  a.spec_verify_ms += verify_ms;

  // Row j is bitwise identical to the logits of the solo decode step that
  // consumed inputs[j]; its solo-equivalent context is pos0 + j + 1.
  std::size_t emitted = 0;
  std::size_t accepted = 0;
  for (std::size_t j = 0; j <= k_eff; ++j) {
    const auto row = logits.row(j);
    const TokenId t = sample_and_stop(
        a, std::vector<float>(row.begin(), row.end()), pos0 + j + 1);
    ++emitted;
    if (a.finish != FinishReason::none) {
      break;
    }
    if (j < k_eff) {
      if (t != inputs[j + 1]) {
        break;  // mismatch: t is the correction, rest of the cycle dies
      }
      ++accepted;  // draft guessed the target's own next token
    }
  }
  // Solo decoding would have consumed exactly pos0 + emitted positions;
  // roll the target back there, releasing the rejected rows' KV pages.
  a.state->rewind(pos0 + emitted);

  if (k_eff > 0) {
    spec_->commit(a.id, k_eff, accepted, emitted, verify_ms);
    ++a.spec_cycles;
    a.spec_proposed += k_eff;
    a.spec_accepted += accepted;
    if (obs::telemetry_enabled()) {
      static auto& cycles = obs::counter("spec.cycles");
      static auto& proposed = obs::counter("spec.proposed");
      static auto& acc = obs::counter("spec.accepted");
      static auto& rate = obs::histogram("spec.accept_rate");
      static auto& draft = obs::histogram("spec.draft_ms");
      static auto& verify = obs::histogram("spec.verify_ms");
      cycles.add(1);
      proposed.add(k_eff);
      acc.add(accepted);
      rate.record(static_cast<double>(accepted) / static_cast<double>(k_eff));
      draft.record(cycle_draft_ms);
      verify.record(verify_ms);
    }
  }
  return emitted;
}

bool ServeEngine::cancel(RequestId id) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->id != id) {
      continue;
    }
    // Never admitted: synthesize the result directly (no KV slot to free).
    GenerationResult r;
    r.id = id;
    r.finish = FinishReason::cancelled;
    r.prompt_tokens = it->request.prompt.size();
    r.total_ms = it->since_submit.millis();
    r.completion_step = stats_.engine_steps;
    results_.push_back(std::move(r));
    queue_.erase(it);
    ++stats_.cancelled;
    if (obs::telemetry_enabled()) {
      static auto& cancelled = obs::counter("serve.requests_cancelled");
      cancelled.add(1);
    }
    update_gauges();
    return true;
  }
  for (Active& a : active_) {
    if (a.id != id || a.finish != FinishReason::none) {
      continue;
    }
    a.finish = FinishReason::cancelled;
    ++stats_.cancelled;
    if (obs::telemetry_enabled()) {
      static auto& cancelled = obs::counter("serve.requests_cancelled");
      cancelled.add(1);
    }
    // Retire immediately so the KV slot frees without waiting for the next
    // step(); the result keeps the tokens generated so far.
    retire_finished();
    update_gauges();
    return true;
  }
  return false;
}

void ServeEngine::retire_finished() {
  for (auto it = active_.begin(); it != active_.end();) {
    if (it->finish == FinishReason::none) {
      ++it;
      continue;
    }
    GenerationResult r;
    r.id = it->id;
    r.tokens = std::move(it->generated);
    r.finish = it->finish;
    r.ttft_ms = it->ttft_ms;
    r.total_ms = it->since_submit.millis();
    r.queue_wait_ms = it->queue_wait_ms;
    r.prefill_ms = it->prefill_ms;
    r.decode_ms = it->decode_ms;
    if (r.tokens.size() > 1) {
      r.tpot_ms = r.decode_ms / static_cast<double>(r.tokens.size() - 1);
    }
    r.prompt_tokens = it->request.prompt.size();
    r.completion_step = stats_.engine_steps;
    r.spec_cycles = it->spec_cycles;
    r.spec_proposed = it->spec_proposed;
    r.spec_accepted = it->spec_accepted;
    r.spec_draft_ms = it->spec_draft_ms;
    r.spec_verify_ms = it->spec_verify_ms;
    if (spec_ != nullptr && it->request.speculative) {
      spec_->detach(it->id);
    }
    if (it->finish == FinishReason::context_full) {
      if (it->evicted_by_pages) {
        ++stats_.evicted_pages;
      } else {
        ++stats_.evicted_capacity;
      }
    }
    pool_.release(it->state);
    ++stats_.completed;
    stats_.prefill_tokens += r.prompt_tokens;
    if (obs::telemetry_enabled()) {
      static auto& completed = obs::counter("serve.requests_completed");
      static auto& ttft = obs::histogram("serve.ttft_ms");
      static auto& e2e = obs::histogram("serve.e2e_ms");
      static auto& rate = obs::histogram("serve.request_tokens_per_sec");
      completed.add(1);
      ttft.record(r.ttft_ms);
      e2e.record(r.total_ms);
      if (r.total_ms > 0.0) {
        rate.record(static_cast<double>(r.tokens.size()) * 1e3 / r.total_ms);
      }
      if (it->finish == FinishReason::context_full) {
        static auto& ev_pages = obs::counter("serve.evicted_pages");
        static auto& ev_cap = obs::counter("serve.evicted_capacity");
        (it->evicted_by_pages ? ev_pages : ev_cap).add(1);
      }
    }
    results_.push_back(std::move(r));
    it = active_.erase(it);
  }
}

void ServeEngine::update_gauges() {
  if (!obs::telemetry_enabled()) {
    return;
  }
  static auto& depth = obs::gauge("serve.queue_depth");
  static auto& active = obs::gauge("serve.active_requests");
  static auto& slots = obs::gauge("serve.kv_slots_in_use");
  static auto& pages = obs::gauge("serve.kv_pages_in_use");
  static auto& mapped = obs::gauge("serve.kv_mapped_bytes");
  depth.set(static_cast<double>(queue_.size()));
  active.set(static_cast<double>(active_.size()));
  slots.set(static_cast<double>(pool_.in_use()));
  pages.set(static_cast<double>(pool_.pages_in_use()));
  mapped.set(static_cast<double>(pool_.mapped_bytes()));
}

std::size_t ServeEngine::step() {
  obs::TraceSpan span("serve.step", "serve");
  const Timer step_timer;
  admit();
  if (active_.empty()) {
    update_gauges();
    return 0;
  }
  // Requests already in flight before this step decode together through
  // one step_batch forward pass: their activations stack into a
  // (batch × dim) matrix, so the batched kernels stream each weight row
  // once per step and the ThreadPool parallelizes inside the GEMMs rather
  // than across requests (which pinned each request's math to one worker
  // and left threads idle whenever batch < threads). Row i of the batched
  // logits is bitwise identical to stepping request i alone — the
  // determinism contract is unchanged. Collect the batch before the
  // prefills run so a request admitted this step is not double-advanced.
  std::vector<Active*> batch;
  std::vector<TokenId> batch_tokens;
  std::vector<DecodeState*> batch_states;
  std::vector<Active*> spec_batch;
  batch.reserve(active_.size());
  for (Active& a : active_) {
    if (a.needs_prefill || a.finish != FinishReason::none) {
      continue;
    }
    if (a.request.speculative) {
      // Speculative requests advance through private propose/verify cycles
      // (variable positions per step) rather than the one-token shared
      // batch; submit() guarantees spec_ is configured.
      spec_batch.push_back(&a);
      continue;
    }
    if (!a.state->try_reserve(1)) {
      // Arena exhausted mid-flight (oversubscribed kv_pages): evict with
      // the tokens generated so far instead of letting decode throw. The
      // co-scheduled requests keep their already-mapped pages and are
      // unaffected.
      a.finish = FinishReason::context_full;
      a.evicted_by_pages = true;
      continue;
    }
    batch.push_back(&a);
    batch_tokens.push_back(a.next_input);
    batch_states.push_back(a.state);
  }
  std::size_t produced = 0;
  for (Active& a : active_) {
    if (a.needs_prefill) {
      prefill_one(a);
      ++produced;
    }
  }
  for (Active* a : spec_batch) {
    produced += spec_cycle(*a);
  }
  if (!batch.empty()) {
    const Timer decode_timer;
    const Matrix logits = backend_.step_batch(batch_tokens, batch_states);
    // The shared forward pass IS each rider's per-token latency: every
    // batch member waited the full pass for its one token.
    const double pass_ms = decode_timer.millis();
    const bool telemetry = obs::telemetry_enabled();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch[i]->decode_ms += pass_ms;
      if (telemetry) {
        static auto& tpot = obs::histogram("serve.tpot_ms");
        tpot.record(pass_ms);
      }
      const auto row = logits.row(i);
      sample_and_stop(*batch[i], std::vector<float>(row.begin(), row.end()),
                      batch[i]->state->pos());
      ++produced;
    }
  }
  ++stats_.engine_steps;
  stats_.generated_tokens += produced;
  retire_finished();
  stats_.busy_seconds += step_timer.seconds();
  if (obs::telemetry_enabled()) {
    static auto& tokens = obs::counter("serve.tokens_generated");
    static auto& steps = obs::counter("serve.engine_steps");
    static auto& batch = obs::histogram("serve.batch_size");
    tokens.add(produced);
    steps.add(1);
    batch.record(static_cast<double>(produced));
  }
  update_gauges();
  return produced;
}

std::vector<GenerationResult> ServeEngine::run() {
  obs::PhaseSpan phase("serve.run");
  while (!idle()) {
    step();
  }
  std::sort(results_.begin(), results_.end(),
            [](const GenerationResult& a, const GenerationResult& b) {
              return a.id < b.id;
            });
  return std::exchange(results_, {});
}

void ServeEngine::fill_report(obs::RunReport& report) const {
  const std::string p = backend_.name + ".";
  report.add_serving(p + "requests_submitted",
                     static_cast<std::uint64_t>(stats_.submitted));
  report.add_serving(p + "requests_completed",
                     static_cast<std::uint64_t>(stats_.completed));
  report.add_serving(p + "requests_rejected",
                     static_cast<std::uint64_t>(stats_.rejected));
  report.add_serving(p + "requests_cancelled",
                     static_cast<std::uint64_t>(stats_.cancelled));
  report.add_serving(p + "prefill_tokens", stats_.prefill_tokens);
  report.add_serving(p + "generated_tokens", stats_.generated_tokens);
  report.add_serving(p + "engine_steps",
                     static_cast<std::uint64_t>(stats_.engine_steps));
  report.add_serving(p + "peak_active",
                     static_cast<std::uint64_t>(stats_.peak_active));
  report.add_serving(p + "kv_slots", static_cast<std::uint64_t>(pool_.slots()));
  report.add_serving(p + "kv_pages", static_cast<std::uint64_t>(pool_.pages()));
  report.add_serving(p + "kv_page_positions",
                     static_cast<std::uint64_t>(pool_.page_positions()));
  report.add_serving(p + "kv_bytes", static_cast<std::uint64_t>(pool_.bytes()));
  report.add_serving(p + "kv_mapped_bytes",
                     static_cast<std::uint64_t>(pool_.mapped_bytes()));
  report.add_serving(p + "busy_seconds", stats_.busy_seconds);
  report.add_serving(p + "tokens_per_sec", stats_.tokens_per_sec());
  report.add_serving(p + "queue_wait_ms_sum", stats_.queue_wait_ms_sum);
  report.add_serving(p + "queue_wait_ms_max", stats_.queue_wait_ms_max);
  report.add_serving(
      p + "queue_wait_ms_avg",
      stats_.completed > 0
          ? stats_.queue_wait_ms_sum / static_cast<double>(stats_.completed)
          : 0.0);
  report.add_serving(p + "evicted_capacity",
                     static_cast<std::uint64_t>(stats_.evicted_capacity));
  report.add_serving(p + "evicted_pages",
                     static_cast<std::uint64_t>(stats_.evicted_pages));
  report.add_serving(p + "backpressure_slots",
                     static_cast<std::uint64_t>(stats_.backpressure_slots));
  report.add_serving(p + "backpressure_pages",
                     static_cast<std::uint64_t>(stats_.backpressure_pages));
  if (spec_ != nullptr) {
    const SpecStats& s = spec_->stats();
    report.add_serving(p + "spec.cycles",
                       static_cast<std::uint64_t>(s.cycles));
    report.add_serving(p + "spec.proposed", s.proposed);
    report.add_serving(p + "spec.accepted", s.accepted);
    report.add_serving(p + "spec.accept_rate", s.accept_rate());
    report.add_serving(p + "spec.emitted_per_cycle", s.emitted_per_cycle());
    report.add_serving(p + "spec.draft_ms", s.draft_ms);
    report.add_serving(p + "spec.verify_ms", s.verify_ms);
  }
}

}  // namespace aptq::serve
