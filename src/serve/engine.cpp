#include "serve/engine.hpp"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>

#include "obs/control.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "quant/packed_model.hpp"
#include "util/threadpool.hpp"

namespace aptq::serve {

const char* to_string(FinishReason reason) {
  switch (reason) {
    case FinishReason::none: return "none";
    case FinishReason::eos: return "eos";
    case FinishReason::max_tokens: return "max_tokens";
    case FinishReason::context_full: return "context_full";
    case FinishReason::rejected: return "rejected";
  }
  return "unknown";
}

Backend make_backend(const Model& model) {
  model.config.validate();
  Backend b;
  b.name = "dense";
  b.config = model.config;
  b.prefill = [&model](std::span<const TokenId> tokens, DecodeState& state) {
    return decode_prefill(model, tokens, state);
  };
  b.step = [&model](TokenId token, DecodeState& state) {
    return decode_step(model, token, state);
  };
  return b;
}

Backend make_backend(const PackedModel& model) {
  Backend b;
  b.name = "packed";
  b.config = model.config();
  b.prefill = [&model](std::span<const TokenId> tokens, DecodeState& state) {
    return decode_prefill(model, tokens, state);
  };
  b.step = [&model](TokenId token, DecodeState& state) {
    return decode_step(model, token, state);
  };
  return b;
}

ServeEngine::ServeEngine(Backend backend, const ServeConfig& config)
    : backend_(std::move(backend)),
      config_(config),
      pool_(backend_.config, config.max_context,
            config.kv_slots == 0 ? config.max_batch : config.kv_slots) {
  APTQ_CHECK(config_.max_batch >= 1, "ServeEngine: max_batch must be >= 1");
  APTQ_CHECK(backend_.prefill && backend_.step,
             "ServeEngine: backend missing prefill/step");
}

RequestId ServeEngine::submit(Request request) {
  APTQ_CHECK(config_.max_queue == 0 || queue_.size() < config_.max_queue,
             "ServeEngine: queue full (max_queue " +
                 std::to_string(config_.max_queue) + "); admission refused");
  APTQ_CHECK(!request.prompt.empty(), "ServeEngine: empty prompt");
  APTQ_CHECK(request.max_new_tokens >= 1,
             "ServeEngine: max_new_tokens must be >= 1");
  APTQ_CHECK(request.sampling.temperature > 0.0f,
             "ServeEngine: temperature must be positive");
  for (const TokenId t : request.prompt) {
    APTQ_CHECK(t >= 0 && static_cast<std::size_t>(t) <
                             backend_.config.vocab_size,
               "ServeEngine: prompt token " + std::to_string(t) +
                   " out of vocab range");
  }
  Pending p;
  p.id = next_id_++;
  p.request = std::move(request);
  queue_.push_back(std::move(p));
  ++stats_.submitted;
  if (obs::telemetry_enabled()) {
    static auto& submitted = obs::counter("serve.requests_submitted");
    submitted.add(1);
  }
  update_gauges();
  return queue_.back().id;
}

void ServeEngine::admit() {
  while (active_.size() < config_.max_batch && !queue_.empty()) {
    // Highest priority first; FIFO (smallest id) within a level.
    auto best = queue_.begin();
    for (auto it = queue_.begin() + 1; it != queue_.end(); ++it) {
      if (it->request.priority > best->request.priority ||
          (it->request.priority == best->request.priority &&
           it->id < best->id)) {
        best = it;
      }
    }
    if (best->request.prompt.size() > config_.max_context) {
      // Can never prefill: fail the request, keep serving the rest.
      GenerationResult r;
      r.id = best->id;
      r.finish = FinishReason::rejected;
      r.error = "prompt of " + std::to_string(best->request.prompt.size()) +
                " tokens exceeds max_context " +
                std::to_string(config_.max_context);
      r.prompt_tokens = best->request.prompt.size();
      r.total_ms = best->since_submit.millis();
      r.completion_step = stats_.engine_steps;
      results_.push_back(std::move(r));
      ++stats_.rejected;
      if (obs::telemetry_enabled()) {
        static auto& rejected = obs::counter("serve.requests_rejected");
        rejected.add(1);
      }
      queue_.erase(best);
      continue;
    }
    DecodeState* state = pool_.acquire();
    if (state == nullptr) {
      break;  // no KV slot free: stays queued
    }
    Active a;
    a.id = best->id;
    a.request = std::move(best->request);
    a.rng = Rng::for_stream(a.request.seed, a.id);
    a.state = state;
    a.since_submit = best->since_submit;
    queue_.erase(best);
    active_.push_back(std::move(a));
    stats_.peak_active = std::max(stats_.peak_active, active_.size());
  }
}

// One unit of work for one request: prefill-or-step, then sample the next
// token from the request's private stream and evaluate the stopping rules.
// Touches only `a` (plus the const backend), so requests advance in
// parallel without synchronization.
void ServeEngine::advance_one(Active& a) {
  // Per-request span; the dynamic name is only built when tracing is on so
  // the disabled path stays allocation-free.
  std::optional<obs::TraceSpan> span;
  if (obs::tracing_enabled()) {
    span.emplace("serve.request." + std::to_string(a.id), "serve");
  }
  std::vector<float> logits;
  if (a.needs_prefill) {
    const Matrix all = backend_.prefill(a.request.prompt, *a.state);
    const auto last = all.row(all.rows() - 1);
    logits.assign(last.begin(), last.end());
    a.needs_prefill = false;
    a.ttft_ms = a.since_submit.millis();
  } else {
    logits = backend_.step(a.next_input, *a.state);
  }
  const TokenId token = sample_token(logits, a.request.sampling, a.rng);
  a.generated.push_back(token);
  a.next_input = token;
  // Stopping rules, in contract order (eos beats max_tokens beats KV
  // capacity; see docs/SERVING.md).
  if (a.request.eos_token >= 0 && token == a.request.eos_token) {
    a.finish = FinishReason::eos;
  } else if (a.generated.size() >= a.request.max_new_tokens) {
    a.finish = FinishReason::max_tokens;
  } else if (a.state->pos() >= a.state->max_context()) {
    // decode_step would throw "context capacity exceeded": evict instead.
    a.finish = FinishReason::context_full;
  }
}

void ServeEngine::retire_finished() {
  for (auto it = active_.begin(); it != active_.end();) {
    if (it->finish == FinishReason::none) {
      ++it;
      continue;
    }
    GenerationResult r;
    r.id = it->id;
    r.tokens = std::move(it->generated);
    r.finish = it->finish;
    r.ttft_ms = it->ttft_ms;
    r.total_ms = it->since_submit.millis();
    r.prompt_tokens = it->request.prompt.size();
    r.completion_step = stats_.engine_steps;
    pool_.release(it->state);
    ++stats_.completed;
    stats_.prefill_tokens += r.prompt_tokens;
    if (obs::telemetry_enabled()) {
      static auto& completed = obs::counter("serve.requests_completed");
      static auto& ttft = obs::histogram("serve.ttft_ms");
      static auto& e2e = obs::histogram("serve.e2e_ms");
      static auto& rate = obs::histogram("serve.request_tokens_per_sec");
      completed.add(1);
      ttft.record(r.ttft_ms);
      e2e.record(r.total_ms);
      if (r.total_ms > 0.0) {
        rate.record(static_cast<double>(r.tokens.size()) * 1e3 / r.total_ms);
      }
    }
    results_.push_back(std::move(r));
    it = active_.erase(it);
  }
}

void ServeEngine::update_gauges() {
  if (!obs::telemetry_enabled()) {
    return;
  }
  static auto& depth = obs::gauge("serve.queue_depth");
  static auto& active = obs::gauge("serve.active_requests");
  static auto& slots = obs::gauge("serve.kv_slots_in_use");
  depth.set(static_cast<double>(queue_.size()));
  active.set(static_cast<double>(active_.size()));
  slots.set(static_cast<double>(pool_.in_use()));
}

std::size_t ServeEngine::step() {
  obs::TraceSpan span("serve.step", "serve");
  const Timer step_timer;
  admit();
  if (active_.empty()) {
    update_gauges();
    return 0;
  }
  // One prefill-or-step per in-flight request, swept across the pool.
  // Inside a worker the decode kernels detect the nesting and run their
  // own loops inline, so every request's math is bitwise identical to a
  // solo run at any thread count and batch size (the determinism
  // contract). With a single active request the sweep collapses to the
  // calling thread and the kernels parallelize internally instead.
  parallel_for(0, active_.size(), 1, [this](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      advance_one(active_[i]);
    }
  });
  const std::size_t produced = active_.size();
  ++stats_.engine_steps;
  stats_.generated_tokens += produced;
  retire_finished();
  stats_.busy_seconds += step_timer.seconds();
  if (obs::telemetry_enabled()) {
    static auto& tokens = obs::counter("serve.tokens_generated");
    static auto& steps = obs::counter("serve.engine_steps");
    static auto& batch = obs::histogram("serve.batch_size");
    tokens.add(produced);
    steps.add(1);
    batch.record(static_cast<double>(produced));
  }
  update_gauges();
  return produced;
}

std::vector<GenerationResult> ServeEngine::run() {
  obs::PhaseSpan phase("serve.run");
  while (!idle()) {
    step();
  }
  std::sort(results_.begin(), results_.end(),
            [](const GenerationResult& a, const GenerationResult& b) {
              return a.id < b.id;
            });
  return std::exchange(results_, {});
}

void ServeEngine::fill_report(obs::RunReport& report) const {
  const std::string p = backend_.name + ".";
  report.add_serving(p + "requests_submitted",
                     static_cast<std::uint64_t>(stats_.submitted));
  report.add_serving(p + "requests_completed",
                     static_cast<std::uint64_t>(stats_.completed));
  report.add_serving(p + "requests_rejected",
                     static_cast<std::uint64_t>(stats_.rejected));
  report.add_serving(p + "prefill_tokens", stats_.prefill_tokens);
  report.add_serving(p + "generated_tokens", stats_.generated_tokens);
  report.add_serving(p + "engine_steps",
                     static_cast<std::uint64_t>(stats_.engine_steps));
  report.add_serving(p + "peak_active",
                     static_cast<std::uint64_t>(stats_.peak_active));
  report.add_serving(p + "kv_slots", static_cast<std::uint64_t>(pool_.slots()));
  report.add_serving(p + "kv_bytes", static_cast<std::uint64_t>(pool_.bytes()));
  report.add_serving(p + "busy_seconds", stats_.busy_seconds);
  report.add_serving(p + "tokens_per_sec", stats_.tokens_per_sec());
}

}  // namespace aptq::serve
