#include "eval/harness.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace aptq {

double continuation_logprob(const Model& model, const TokenSeq& context,
                            const TokenSeq& continuation,
                            const ForwardOptions& options) {
  APTQ_CHECK(!context.empty() && !continuation.empty(),
             "continuation_logprob: empty input");
  TokenSeq full = context;
  full.insert(full.end(), continuation.begin(), continuation.end());
  const Matrix logits = model_forward(model, full, options);

  // Sum log p(full[t+1] | full[..t]) over the continuation positions,
  // normalized by continuation length (acc_norm convention).
  double total = 0.0;
  std::vector<double> probs(logits.cols());
  for (std::size_t t = context.size() - 1; t + 1 < full.size(); ++t) {
    const auto row = logits.row(t);
    double max_v = row[0];
    for (const float v : row) {
      max_v = std::max(max_v, static_cast<double>(v));
    }
    double sum = 0.0;
    for (std::size_t c = 0; c < probs.size(); ++c) {
      probs[c] = std::exp(row[c] - max_v);
      sum += probs[c];
    }
    const auto target = static_cast<std::size_t>(full[t + 1]);
    total += std::log(std::max(probs[target] / sum, 1e-30));
  }
  return total / static_cast<double>(continuation.size());
}

std::size_t predict_choice(const Model& model, const TaskItem& item,
                           const ForwardOptions& options) {
  APTQ_CHECK(item.choices.size() >= 2, "predict_choice: need >= 2 choices");
  std::size_t best = 0;
  double best_score = -1e300;
  for (std::size_t i = 0; i < item.choices.size(); ++i) {
    const double score =
        continuation_logprob(model, item.context, item.choices[i], options);
    if (score > best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

TaskResult evaluate_task(const Model& model, const std::string& name,
                         std::span<const TaskItem> items,
                         const ForwardOptions& options) {
  obs::TraceSpan span("task:" + name, "eval");
  APTQ_CHECK(!items.empty(), "evaluate_task: no items");
  std::size_t correct = 0;
  for (const auto& item : items) {
    correct += predict_choice(model, item, options) == item.label ? 1 : 0;
  }
  if (obs::telemetry_enabled()) {
    static auto& items_scored = obs::counter("eval.task_items");
    items_scored.add(items.size());
  }
  TaskResult result;
  result.task = name;
  result.n_items = items.size();
  result.accuracy =
      static_cast<double>(correct) / static_cast<double>(items.size());
  return result;
}

ZeroShotReport evaluate_zero_shot(
    const Model& model, std::span<const std::vector<TaskItem>> suite,
    const ForwardOptions& options) {
  obs::PhaseSpan phase("eval.zeroshot");
  APTQ_CHECK(suite.size() == all_task_families().size(),
             "evaluate_zero_shot: suite must hold all five tasks");
  ZeroShotReport report;
  double total = 0.0;
  for (std::size_t i = 0; i < suite.size(); ++i) {
    report.tasks.push_back(evaluate_task(
        model, task_name(all_task_families()[i]), suite[i], options));
    total += report.tasks.back().accuracy;
  }
  report.mean_accuracy = total / static_cast<double>(suite.size());
  return report;
}

}  // namespace aptq
