// Zero-shot scoring harness: length-normalized log-likelihood choice
// selection, the scoring rule of EleutherAI's lm-eval-harness (`acc_norm`)
// that the paper's Table 2 uses.
#pragma once

#include <string>
#include <vector>

#include "eval/tasks.hpp"
#include "model/forward.hpp"
#include "model/model.hpp"

namespace aptq {

/// Mean per-token log-probability of `continuation` given `context`.
double continuation_logprob(const Model& model, const TokenSeq& context,
                            const TokenSeq& continuation,
                            const ForwardOptions& options = {});

/// Index of the highest-scoring choice of an item.
std::size_t predict_choice(const Model& model, const TaskItem& item,
                           const ForwardOptions& options = {});

/// Accuracy of a model on one task's item set.
struct TaskResult {
  std::string task;
  double accuracy = 0.0;
  std::size_t n_items = 0;
};

TaskResult evaluate_task(const Model& model, const std::string& name,
                         std::span<const TaskItem> items,
                         const ForwardOptions& options = {});

/// Full-suite evaluation (the Table 2 row for one model/method).
struct ZeroShotReport {
  std::vector<TaskResult> tasks;
  double mean_accuracy = 0.0;
};

ZeroShotReport evaluate_zero_shot(
    const Model& model, std::span<const std::vector<TaskItem>> suite,
    const ForwardOptions& options = {});

}  // namespace aptq
