// Synthetic zero-shot multiple-choice task families — the offline stand-ins
// for the paper's lm-eval-harness suite (PIQA, HellaSwag, ARC-E, ARC-C,
// WinoGrande). Each family controls its difficulty through how distractor
// continuations are constructed (DESIGN.md §6); the correct choice is always
// the true continuation of the corpus process.
#pragma once

#include <string>
#include <vector>

#include "data/corpus.hpp"
#include "data/vocab.hpp"

namespace aptq {

/// One multiple-choice item.
struct TaskItem {
  TokenSeq context;
  std::vector<TokenSeq> choices;
  std::size_t label = 0;  ///< index of the correct choice
};

/// The five task families mirrored from the paper's evaluation suite.
enum class TaskFamily {
  piqa,           ///< 2 choices; distractor from a different hidden topic
  hellaswag,      ///< 4 choices; distractors from re-seeded same-topic chains
  arc_easy,       ///< 4 choices; uniform-random distractors (easiest)
  arc_challenge,  ///< 4 choices; near-miss perturbed true continuations (hardest)
  winogrande,     ///< 2 choices; minimal-pair contexts, continuation mismatch
};

/// All families in the order the paper reports them.
std::span<const TaskFamily> all_task_families();

/// Display name ("piqa-sim", ...).
std::string task_name(TaskFamily family);

/// Generation knobs.
struct TaskGenConfig {
  std::size_t n_items = 200;
  std::size_t context_len = 16;
  std::size_t continuation_len = 8;
  std::uint64_t seed = 0x7A5C;
};

/// Generate one family's item set from the corpus's underlying process.
std::vector<TaskItem> generate_task(TaskFamily family, const Corpus& corpus,
                                    const TaskGenConfig& config);

/// Generate the full five-family suite.
std::vector<std::vector<TaskItem>> generate_task_suite(
    const Corpus& corpus, const TaskGenConfig& config);

}  // namespace aptq
