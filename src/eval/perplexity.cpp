#include "eval/perplexity.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "train/loss.hpp"
#include "util/check.hpp"
#include "util/threadpool.hpp"

namespace aptq {

namespace {

// Per-segment contribution: summed NLL and the token count behind it.
struct SegmentStat {
  double nll = 0.0;
  std::size_t tokens = 0;
};

}  // namespace

PerplexityResult evaluate_perplexity(const Model& model,
                                     std::span<const TokenSeq> segments,
                                     const ForwardOptions& options) {
  obs::PhaseSpan phase("eval.perplexity");
  APTQ_CHECK(!segments.empty(), "evaluate_perplexity: no segments");
  // Segments evaluate independently (each forward uses its own cache), so
  // they fan out across the thread pool; grain 1 plus the fixed-order fold
  // of parallel_reduce reproduces the serial left fold over segments
  // bitwise at any thread count.
  const SegmentStat total = parallel_reduce(
      0, segments.size(), 1, SegmentStat{},
      [&](std::size_t b, std::size_t e) {
        // One span per chunk, recorded on whichever pool thread ran it —
        // this is the eval-side flame-chart fan-out.
        obs::TraceSpan chunk_span("eval.segment", "eval");
        SegmentStat stat;
        for (std::size_t si = b; si < e; ++si) {
          const auto& segment = segments[si];
          APTQ_CHECK(segment.size() >= 2,
                     "evaluate_perplexity: segment too short");
          const Matrix logits = model_forward(model, segment, options);
          const auto ce =
              cross_entropy_next_token(logits, segment, /*want_grad=*/false);
          stat.nll += ce.loss * static_cast<double>(ce.count);
          stat.tokens += ce.count;
        }
        return stat;
      },
      [](SegmentStat acc, const SegmentStat& part) {
        acc.nll += part.nll;
        acc.tokens += part.tokens;
        return acc;
      });
  PerplexityResult result;
  result.tokens = total.tokens;
  result.nll = total.nll / static_cast<double>(total.tokens);
  result.perplexity = std::exp(result.nll);
  if (obs::telemetry_enabled()) {
    static auto& tokens = obs::counter("eval.tokens");
    tokens.add(result.tokens);
  }
  return result;
}

}  // namespace aptq
