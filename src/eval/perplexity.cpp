#include "eval/perplexity.hpp"

#include <cmath>

#include "train/loss.hpp"
#include "util/check.hpp"

namespace aptq {

PerplexityResult evaluate_perplexity(const Model& model,
                                     std::span<const TokenSeq> segments,
                                     const ForwardOptions& options) {
  APTQ_CHECK(!segments.empty(), "evaluate_perplexity: no segments");
  double total_nll = 0.0;
  std::size_t total_tokens = 0;
  for (const auto& segment : segments) {
    APTQ_CHECK(segment.size() >= 2, "evaluate_perplexity: segment too short");
    const Matrix logits = model_forward(model, segment, options);
    const auto ce =
        cross_entropy_next_token(logits, segment, /*want_grad=*/false);
    total_nll += ce.loss * static_cast<double>(ce.count);
    total_tokens += ce.count;
  }
  PerplexityResult result;
  result.tokens = total_tokens;
  result.nll = total_nll / static_cast<double>(total_tokens);
  result.perplexity = std::exp(result.nll);
  return result;
}

}  // namespace aptq
