// Perplexity evaluation over held-out corpus segments — the metric of the
// paper's Table 1 and Figure 2.
#pragma once

#include <span>

#include "data/vocab.hpp"
#include "model/forward.hpp"
#include "model/model.hpp"

namespace aptq {

/// Aggregate perplexity over a segment set.
struct PerplexityResult {
  double nll = 0.0;        ///< mean NLL in nats per scored token
  double perplexity = 0.0; ///< exp(nll)
  std::size_t tokens = 0;  ///< scored (next-token) positions
};

/// Evaluate mean next-token NLL / perplexity of `model` over `segments`.
/// Each segment is scored independently (fresh context), exactly like the
/// stride-free protocol GPTQ-style papers use on C4 samples.
PerplexityResult evaluate_perplexity(const Model& model,
                                     std::span<const TokenSeq> segments,
                                     const ForwardOptions& options = {});

}  // namespace aptq
