#include "eval/tasks.hpp"

#include <algorithm>
#include <array>

#include "util/check.hpp"

namespace aptq {

namespace {

constexpr std::array<TaskFamily, 5> kFamilies = {
    TaskFamily::piqa, TaskFamily::hellaswag, TaskFamily::arc_easy,
    TaskFamily::arc_challenge, TaskFamily::winogrande};

// Sample a fresh context under a fixed topic: two unigram tokens then a
// chain continuation.
TokenSeq sample_context(const MarkovSource& src, std::size_t topic,
                        std::size_t len, Rng& rng) {
  APTQ_CHECK(len >= 3, "sample_context: context too short");
  TokenSeq ctx;
  ctx.push_back(static_cast<TokenId>(rng.categorical(src.unigram())));
  ctx.push_back(static_cast<TokenId>(rng.categorical(src.unigram())));
  const TokenSeq tail =
      src.continue_sequence(ctx[0], ctx[1], topic, len - 2, rng);
  ctx.insert(ctx.end(), tail.begin(), tail.end());
  return ctx;
}

TokenSeq true_continuation(const MarkovSource& src, const TokenSeq& ctx,
                           std::size_t topic, std::size_t len, Rng& rng) {
  return src.continue_sequence(ctx[ctx.size() - 2], ctx.back(), topic, len,
                               rng);
}

// Insert `correct` among `distractors` at a random position; returns label.
std::size_t assemble_choices(TaskItem& item, TokenSeq correct,
                             std::vector<TokenSeq> distractors, Rng& rng) {
  const std::size_t label = rng.index(distractors.size() + 1);
  item.choices.clear();
  std::size_t d = 0;
  for (std::size_t i = 0; i < distractors.size() + 1; ++i) {
    if (i == label) {
      item.choices.push_back(std::move(correct));
    } else {
      item.choices.push_back(std::move(distractors[d++]));
    }
  }
  item.label = label;
  return label;
}

}  // namespace

std::span<const TaskFamily> all_task_families() {
  return {kFamilies.data(), kFamilies.size()};
}

std::string task_name(TaskFamily family) {
  switch (family) {
    case TaskFamily::piqa: return "piqa-sim";
    case TaskFamily::hellaswag: return "hellaswag-sim";
    case TaskFamily::arc_easy: return "arce-sim";
    case TaskFamily::arc_challenge: return "arcc-sim";
    case TaskFamily::winogrande: return "winogrande-sim";
  }
  APTQ_FAIL("unknown TaskFamily");
}

std::vector<TaskItem> generate_task(TaskFamily family, const Corpus& corpus,
                                    const TaskGenConfig& config) {
  APTQ_CHECK(config.n_items >= 1, "generate_task: need items");
  APTQ_CHECK(config.continuation_len >= 3,
             "generate_task: continuation too short");
  const MarkovSource& src = corpus.source();
  const std::size_t topics = src.spec().topics;
  const std::size_t v = src.spec().vocab_size;
  Rng rng(config.seed ^ (static_cast<std::uint64_t>(family) * 0x9E3779B9ull));

  std::vector<TaskItem> items;
  items.reserve(config.n_items);
  for (std::size_t i = 0; i < config.n_items; ++i) {
    const std::size_t topic = rng.index(topics);
    TaskItem item;
    item.context = sample_context(src, topic, config.context_len, rng);
    TokenSeq correct = true_continuation(src, item.context, topic,
                                         config.continuation_len, rng);
    std::vector<TokenSeq> distractors;
    switch (family) {
      case TaskFamily::piqa: {
        // One distractor: the same context continued under a different
        // hidden topic (physically implausible continuation).
        const std::size_t other =
            topics > 1 ? (topic + 1 + rng.index(topics - 1)) % topics : topic;
        TokenSeq d = src.continue_sequence(item.context[item.context.size() - 2],
                                           item.context.back(), other,
                                           config.continuation_len, rng);
        if (d == correct) {
          d = src.continue_sequence(item.context[item.context.size() - 2],
                                    item.context.back(), other,
                                    config.continuation_len, rng);
        }
        distractors.push_back(std::move(d));
        break;
      }
      case TaskFamily::hellaswag: {
        // Three locally plausible but context-mismatched continuations:
        // chains restarted from fresh contexts under the same topic.
        for (int k = 0; k < 3; ++k) {
          const TokenSeq fresh = sample_context(src, topic, 4, rng);
          distractors.push_back(src.continue_sequence(
              fresh[fresh.size() - 2], fresh.back(), topic,
              config.continuation_len, rng));
        }
        break;
      }
      case TaskFamily::arc_easy: {
        // Unigram-sampled distractors — off-distribution but with realistic
        // marginals (trivially detectable; the suite's easiest task).
        for (int k = 0; k < 3; ++k) {
          TokenSeq d(config.continuation_len);
          for (auto& t : d) {
            t = static_cast<TokenId>(rng.categorical(src.unigram()));
          }
          distractors.push_back(std::move(d));
        }
        break;
      }
      case TaskFamily::arc_challenge: {
        // Near misses: a *coherent* alternative branch — at one position the
        // continuation takes a plausible-but-not-taken successor and the
        // tail is regenerated consistently. The only likelihood signal is a
        // single branch choice, making this the suite's hardest task.
        for (int k = 0; k < 3; ++k) {
          const std::size_t pos = rng.index(config.continuation_len - 2);
          TokenSeq d(correct.begin(),
                     correct.begin() + static_cast<std::ptrdiff_t>(pos));
          const TokenId p2 = pos >= 2 ? d[pos - 2]
                             : pos == 1 ? item.context.back()
                                        : item.context[item.context.size() - 2];
          const TokenId p1 = pos >= 1 ? d[pos - 1] : item.context.back();
          const TokenId flipped =
              src.sample_alternative(p2, p1, topic, correct[pos], rng);
          d.push_back(flipped);
          const TokenSeq tail = src.continue_sequence(
              p1, flipped, topic, config.continuation_len - pos - 1, rng);
          d.insert(d.end(), tail.begin(), tail.end());
          distractors.push_back(std::move(d));
        }
        break;
      }
      case TaskFamily::winogrande: {
        // Minimal pair: flip one mid-context token, re-cohere the altered
        // context, and offer its continuation as the distractor.
        const std::size_t m = item.context.size() / 2;
        TokenSeq altered(item.context.begin(),
                         item.context.begin() + static_cast<std::ptrdiff_t>(m));
        TokenId flipped = static_cast<TokenId>(rng.index(v));
        while (flipped == item.context[m]) {
          flipped = static_cast<TokenId>(rng.index(v));
        }
        altered.push_back(flipped);
        const TokenSeq tail = src.continue_sequence(
            altered[altered.size() - 2], altered.back(), topic,
            item.context.size() - altered.size(), rng);
        altered.insert(altered.end(), tail.begin(), tail.end());
        distractors.push_back(true_continuation(
            src, altered, topic, config.continuation_len, rng));
        break;
      }
    }
    assemble_choices(item, std::move(correct), std::move(distractors), rng);
    items.push_back(std::move(item));
  }
  return items;
}

std::vector<std::vector<TaskItem>> generate_task_suite(
    const Corpus& corpus, const TaskGenConfig& config) {
  std::vector<std::vector<TaskItem>> suite;
  suite.reserve(kFamilies.size());
  for (const TaskFamily family : kFamilies) {
    suite.push_back(generate_task(family, corpus, config));
  }
  return suite;
}

}  // namespace aptq
