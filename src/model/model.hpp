// LLaMA-architecture transformer: configuration, weights, the named
// parameter registry used by the quantization pipeline, and checkpoint I/O.
//
// The architecture matches LLaMA (Touvron et al. 2023) exactly in structure:
// pre-RMSNorm blocks, rotary position embeddings, multi-head attention with
// separate q/k/v/o projections, SwiGLU feed-forward, untied LM head. Layer
// names follow the HuggingFace convention the paper's Algorithm 1 keys on
// ("self_attn.k_proj", ...).
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "data/vocab.hpp"
#include "tensor/matrix.hpp"

namespace aptq {

/// Hyperparameters of a model instance.
struct ModelConfig {
  std::size_t vocab_size = 64;
  std::size_t dim = 48;        ///< model width d
  std::size_t n_layers = 4;    ///< transformer blocks
  std::size_t n_heads = 4;     ///< attention heads (dim % n_heads == 0)
  std::size_t ffn_dim = 128;   ///< SwiGLU hidden width
  /// Grouped-query attention: number of shared key/value heads
  /// (LLaMA-2-70B style). 0 means n_heads (standard multi-head attention).
  std::size_t n_kv_heads = 0;
  float rope_theta = 10000.0f;
  float norm_eps = 1e-5f;

  std::size_t head_dim() const { return dim / n_heads; }
  std::size_t kv_heads() const { return n_kv_heads == 0 ? n_heads
                                                        : n_kv_heads; }
  /// Width of the k/v projections (kv_heads × head_dim).
  std::size_t kv_dim() const { return kv_heads() * head_dim(); }
  /// Query heads sharing one kv head.
  std::size_t group_factor() const { return n_heads / kv_heads(); }

  /// Throws aptq::Error if the configuration is inconsistent.
  void validate() const;

  bool operator==(const ModelConfig&) const = default;
};

/// Weights of one transformer block. All projection matrices are stored
/// input-major: out = x · W with W of shape (d_in × d_out).
struct BlockWeights {
  std::vector<float> attn_norm;  // (d)
  Matrix wq, wk, wv, wo;         // (d × d)
  std::vector<float> ffn_norm;   // (d)
  Matrix w_gate, w_up;           // (d × ffn)
  Matrix w_down;                 // (ffn × d)
};

/// A full model: embeddings, blocks, final norm, LM head.
struct Model {
  ModelConfig config;
  Matrix tok_embed;               // (V × d)
  std::vector<BlockWeights> blocks;
  std::vector<float> final_norm;  // (d)
  Matrix lm_head;                 // (d × V)

  /// Randomly initialized model (deterministic in `seed`).
  static Model init(const ModelConfig& config, std::uint64_t seed);

  /// Total parameter count.
  std::size_t parameter_count() const;
};

/// Which linear layer a LinearRef points at.
enum class LinearKind {
  q_proj,
  k_proj,
  v_proj,
  o_proj,
  gate_proj,
  up_proj,
  down_proj,
  lm_head,
};

/// True for the four attention projections.
bool is_attention(LinearKind kind);

/// Short name ("q_proj", ...).
std::string to_string(LinearKind kind);

/// A named, mutable reference to one quantizable linear layer of a model.
struct LinearRef {
  std::string name;    ///< e.g. "layers.2.self_attn.k_proj"
  LinearKind kind;
  std::size_t block;   ///< owning block index; unused for lm_head
  Matrix* weight;      ///< (d_in × d_out), borrowed from the Model
};

/// A named, read-only reference to one quantizable linear layer.
struct ConstLinearRef {
  std::string name;    ///< e.g. "layers.2.self_attn.k_proj"
  LinearKind kind;
  std::size_t block;   ///< owning block index; unused for lm_head
  const Matrix* weight;  ///< (d_in × d_out), borrowed from the Model
};

/// All quantizable linear layers in network order. `include_lm_head`
/// defaults to false per the GPTQ evaluation convention. The const
/// overload serves read-only consumers (packing, sensitivity ranking,
/// calibration) without const_cast.
std::vector<LinearRef> collect_linears(Model& model,
                                       bool include_lm_head = false);
std::vector<ConstLinearRef> collect_linears(const Model& model,
                                            bool include_lm_head = false);

/// Apply `fn` to every trainable parameter span in a fixed canonical order
/// (used by the optimizer; Gradients::visit uses the same order).
void visit_params(Model& model,
                  const std::function<void(std::span<float>)>& fn);

/// Checkpoint I/O. Format versioned; load validates the magic and throws on
/// mismatch.
void save_checkpoint(const Model& model, const std::string& path);
Model load_checkpoint(const std::string& path);

}  // namespace aptq
