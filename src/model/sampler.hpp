// Autoregressive sampling from a model — used by the data-free QAT baseline
// (LLM-QAT samples its training data from the full-precision model) and by
// the example programs. Sampling runs on the incremental decoding engine
// (model/decode.hpp): one batched prefill over the prompt, then one
// KV-cached step per generated token.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "data/vocab.hpp"
#include "model/model.hpp"
#include "util/rng.hpp"

namespace aptq {

/// Sampling options.
struct SampleConfig {
  float temperature = 1.0f;  ///< logit divisor; must be > 0
  std::size_t top_k = 0;     ///< keep only the k most likely tokens (0 = all)
};

/// Draw one token from `logits` under `config`, consuming exactly one
/// categorical draw from `rng`. This is the single sampling primitive every
/// decoding path shares (sequential sampling loops and the serving engine),
/// which is what makes their token streams comparable draw-for-draw.
TokenId sample_token(std::span<const float> logits, const SampleConfig& config,
                     Rng& rng);

/// Sample `length` tokens autoregressively. `prompt` seeds the context; if
/// empty, one token is drawn uniformly first. The returned sequence includes
/// the prompt.
TokenSeq sample_from_model(const Model& model, std::size_t length, Rng& rng,
                           const SampleConfig& config = {},
                           const TokenSeq& prompt = {});

/// Model-agnostic sampling loop over a decoding engine: `prefill` consumes
/// the seed context and returns its last-token logits, `step` consumes one
/// generated token and returns the next logits. Shared by the dense and
/// packed samplers so both draw identical sequences from identical RNG
/// state.
TokenSeq sample_with_engine(
    std::size_t vocab_size, std::size_t length, Rng& rng,
    const SampleConfig& config, const TokenSeq& prompt,
    const std::function<std::vector<float>(std::span<const TokenId>)>& prefill,
    const std::function<std::vector<float>(TokenId)>& step);

}  // namespace aptq
