// Autoregressive sampling from a model — used by the data-free QAT baseline
// (LLM-QAT samples its training data from the full-precision model) and by
// the example programs.
#pragma once

#include "data/vocab.hpp"
#include "model/model.hpp"
#include "util/rng.hpp"

namespace aptq {

/// Sampling options.
struct SampleConfig {
  float temperature = 1.0f;  ///< logit divisor; must be > 0
  std::size_t top_k = 0;     ///< keep only the k most likely tokens (0 = all)
};

/// Sample `length` tokens autoregressively. `prompt` seeds the context; if
/// empty, one token is drawn uniformly first. The returned sequence includes
/// the prompt.
TokenSeq sample_from_model(const Model& model, std::size_t length, Rng& rng,
                           const SampleConfig& config = {},
                           const TokenSeq& prompt = {});

}  // namespace aptq
