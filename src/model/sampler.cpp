#include "model/sampler.hpp"

#include <algorithm>
#include <cmath>

#include "model/decode.hpp"

namespace aptq {

TokenId sample_token(std::span<const float> logits, const SampleConfig& config,
                     Rng& rng) {
  APTQ_CHECK(config.temperature > 0.0f,
             "sample_token: temperature must be positive");
  APTQ_CHECK(!logits.empty(), "sample_token: empty logits");
  const std::size_t v = logits.size();
  float max_v = logits[0];
  for (const float x : logits) {
    max_v = std::max(max_v, x);
  }
  std::vector<float> probs(v);
  for (std::size_t i = 0; i < v; ++i) {
    probs[i] = std::exp((logits[i] - max_v) / config.temperature);
  }
  if (config.top_k > 0 && config.top_k < v) {
    std::vector<float> sorted = probs;
    std::nth_element(sorted.begin(),
                     sorted.begin() + static_cast<std::ptrdiff_t>(
                                          config.top_k - 1),
                     sorted.end(), std::greater<>());
    const float cutoff = sorted[config.top_k - 1];
    for (auto& p : probs) {
      if (p < cutoff) {
        p = 0.0f;
      }
    }
  }
  return static_cast<TokenId>(rng.categorical(probs));
}

TokenSeq sample_with_engine(
    std::size_t vocab_size, std::size_t length, Rng& rng,
    const SampleConfig& config, const TokenSeq& prompt,
    const std::function<std::vector<float>(std::span<const TokenId>)>& prefill,
    const std::function<std::vector<float>(TokenId)>& step) {
  APTQ_CHECK(config.temperature > 0.0f,
             "sample_with_engine: temperature must be positive");
  APTQ_CHECK(length > prompt.size(),
             "sample_with_engine: length must exceed prompt");
  const std::size_t v = vocab_size;

  TokenSeq tokens = prompt;
  if (tokens.empty()) {
    tokens.push_back(static_cast<TokenId>(rng.index(v)));
  }
  std::vector<float> logits = prefill(tokens);
  while (tokens.size() < length) {
    APTQ_CHECK(logits.size() == v, "sample_with_engine: logit size mismatch");
    const TokenId next = sample_token(logits, config, rng);
    tokens.push_back(next);
    if (tokens.size() < length) {
      logits = step(next);
    }
  }
  return tokens;
}

TokenSeq sample_from_model(const Model& model, std::size_t length, Rng& rng,
                           const SampleConfig& config, const TokenSeq& prompt) {
  DecodeState state(model.config, length);
  return sample_with_engine(
      model.config.vocab_size, length, rng, config, prompt,
      [&](std::span<const TokenId> tokens) {
        const Matrix logits = decode_prefill(model, tokens, state);
        const auto last = logits.row(logits.rows() - 1);
        return std::vector<float>(last.begin(), last.end());
      },
      [&](TokenId token) { return decode_step(model, token, state); });
}

}  // namespace aptq
