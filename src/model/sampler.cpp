#include "model/sampler.hpp"

#include <algorithm>
#include <cmath>

#include "model/forward.hpp"

namespace aptq {

TokenSeq sample_from_model(const Model& model, std::size_t length, Rng& rng,
                           const SampleConfig& config, const TokenSeq& prompt) {
  APTQ_CHECK(config.temperature > 0.0f,
             "sample_from_model: temperature must be positive");
  APTQ_CHECK(length > prompt.size(),
             "sample_from_model: length must exceed prompt");
  const std::size_t v = model.config.vocab_size;

  TokenSeq tokens = prompt;
  if (tokens.empty()) {
    tokens.push_back(static_cast<TokenId>(rng.index(v)));
  }
  std::vector<float> probs(v);
  while (tokens.size() < length) {
    const Matrix logits = model_forward(model, tokens);
    const auto last = logits.row(logits.rows() - 1);
    float max_v = last[0];
    for (const float x : last) {
      max_v = std::max(max_v, x);
    }
    for (std::size_t i = 0; i < v; ++i) {
      probs[i] = std::exp((last[i] - max_v) / config.temperature);
    }
    if (config.top_k > 0 && config.top_k < v) {
      std::vector<float> sorted = probs;
      std::nth_element(sorted.begin(),
                       sorted.begin() + static_cast<std::ptrdiff_t>(
                                            config.top_k - 1),
                       sorted.end(), std::greater<>());
      const float cutoff = sorted[config.top_k - 1];
      for (auto& p : probs) {
        if (p < cutoff) {
          p = 0.0f;
        }
      }
    }
    tokens.push_back(static_cast<TokenId>(rng.categorical(probs)));
  }
  return tokens;
}

}  // namespace aptq
