// Transformer forward pass with full activation caching.
//
// The cache serves three consumers: the training backward pass, the APTQ
// attention-probe backward pass (which needs per-block attention internals),
// and the calibration pipeline (which reads each linear layer's input
// activations out of the cache). Sequence lengths and widths are small in
// this build, so caching everything is cheap.
#pragma once

#include <span>
#include <vector>

#include "data/vocab.hpp"
#include "model/model.hpp"
#include "tensor/matrix.hpp"

namespace aptq {

/// Forward-pass options. `act_quant_bits > 0` applies per-token symmetric
/// fake quantization to every linear layer input (simulates W·A quantized
/// inference, used by the SmoothQuant W4A8 baseline).
struct ForwardOptions {
  int act_quant_bits = 0;
};

/// Cached activations of one block (T = sequence length).
struct BlockCache {
  Matrix x_in;                 // (T×d) block input
  Matrix normed1;              // (T×d) input to q/k/v projections
  std::vector<float> inv_rms1;
  Matrix q_rot, k_rot, v;      // (T×d) post-RoPE q/k and raw v
  std::vector<Matrix> probs;   // per head: (T×T) post-softmax attention
  Matrix attn_cat;             // (T×d) concatenated heads = o_proj input
  Matrix x_mid;                // (T×d) after attention residual
  Matrix normed2;              // (T×d) input to gate/up projections
  std::vector<float> inv_rms2;
  Matrix gate_pre, silu_gate, up, act;  // (T×ffn); act = down_proj input
  Matrix x_out;                // (T×d) block output
};

/// Full-model activation cache.
struct ForwardCache {
  Matrix x0;                   // (T×d) embedded input
  std::vector<BlockCache> blocks;
  Matrix normed_final;         // (T×d) lm_head input
  std::vector<float> inv_rms_final;
  std::size_t seq_len = 0;
};

/// Run the model over `tokens`; returns (T×V) logits and fills `cache`.
Matrix model_forward(const Model& model, std::span<const TokenId> tokens,
                     ForwardCache& cache, const ForwardOptions& options = {});

/// Convenience overload without cache retention.
Matrix model_forward(const Model& model, std::span<const TokenId> tokens,
                     const ForwardOptions& options = {});

/// Extract head `h` (columns [h*head_dim, (h+1)*head_dim)) as a copy.
Matrix extract_head(const Matrix& x, std::size_t h, std::size_t head_dim);

/// dst columns of head `h` += src (T×head_dim).
void accumulate_head(Matrix& dst, const Matrix& src, std::size_t h,
                     std::size_t head_dim);

/// Per-token symmetric fake quantization to `bits` (activation simulation):
/// each row is scaled by max|row|/(2^{bits-1}-1), rounded, and dequantized.
void fake_quant_rows(Matrix& m, int bits);

}  // namespace aptq
