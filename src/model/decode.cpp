#include "model/decode.hpp"

namespace aptq {

DecodeState::DecodeState(const ModelConfig& config, std::size_t max_context)
    : config_(config), max_context_(max_context) {
  config.validate();
  APTQ_CHECK(max_context >= 1, "DecodeState: max_context must be positive");
  const std::size_t kv_dim = config.kv_dim();
  k_cache_.reserve(config.n_layers);
  v_cache_.reserve(config.n_layers);
  for (std::size_t l = 0; l < config.n_layers; ++l) {
    k_cache_.emplace_back(max_context, kv_dim);
    v_cache_.emplace_back(max_context, kv_dim);
  }
}

void DecodeState::reset() {
  // The engine only reads rows [0, pos_), so rewinding the cursor suffices;
  // stale rows beyond it are overwritten before they are read.
  pos_ = 0;
}

void DecodeState::advance(std::size_t n) {
  APTQ_CHECK(pos_ + n <= max_context_,
             "DecodeState: advance past capacity (" + std::to_string(pos_) +
                 " + " + std::to_string(n) + " > " +
                 std::to_string(max_context_) + ")");
  pos_ += n;
}

Matrix cache_head(const Matrix& cache, std::size_t rows, std::size_t h,
                  std::size_t head_dim) {
  APTQ_CHECK(rows <= cache.rows() && (h + 1) * head_dim <= cache.cols(),
             "cache_head: slice out of range");
  Matrix out(rows, head_dim);
  for (std::size_t r = 0; r < rows; ++r) {
    const float* src = cache.data() + r * cache.cols() + h * head_dim;
    std::copy(src, src + head_dim, out.row(r).begin());
  }
  return out;
}

namespace {

// Weight access over the dense fp32 model (see the adapter contract in
// decode.hpp).
class DenseDecodeAdapter {
 public:
  explicit DenseDecodeAdapter(const Model& model) : model_(model) {}

  const ModelConfig& config() const { return model_.config; }
  std::span<const float> embedding(std::size_t token) const {
    return model_.tok_embed.row(token);
  }
  std::span<const float> attn_norm(std::size_t layer) const {
    return model_.blocks[layer].attn_norm;
  }
  std::span<const float> ffn_norm(std::size_t layer) const {
    return model_.blocks[layer].ffn_norm;
  }
  std::span<const float> final_norm() const { return model_.final_norm; }

  Matrix project(std::size_t layer, LinearKind kind, const Matrix& x) const {
    const BlockWeights& b = model_.blocks[layer];
    switch (kind) {
      case LinearKind::q_proj: return matmul(x, b.wq);
      case LinearKind::k_proj: return matmul(x, b.wk);
      case LinearKind::v_proj: return matmul(x, b.wv);
      case LinearKind::o_proj: return matmul(x, b.wo);
      case LinearKind::gate_proj: return matmul(x, b.w_gate);
      case LinearKind::up_proj: return matmul(x, b.w_up);
      case LinearKind::down_proj: return matmul(x, b.w_down);
      case LinearKind::lm_head: break;
    }
    APTQ_FAIL("DenseDecodeAdapter: unexpected projection kind");
  }

  Matrix head(const Matrix& x) const { return matmul(x, model_.lm_head); }

 private:
  const Model& model_;
};

}  // namespace

Matrix decode_prefill(const Model& model, std::span<const TokenId> tokens,
                      DecodeState& state, const ForwardOptions& options) {
  return detail::decode_prefill_impl(DenseDecodeAdapter(model), tokens, state,
                                     options);
}

std::vector<float> decode_step(const Model& model, TokenId token,
                               DecodeState& state,
                               const ForwardOptions& options) {
  return detail::decode_step_impl(DenseDecodeAdapter(model), token, state,
                                  options);
}

}  // namespace aptq
