#include "model/decode.hpp"

#include "tensor/kernels.hpp"

namespace aptq {

namespace {

bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

std::size_t log2_of(std::size_t v) {
  std::size_t s = 0;
  while ((std::size_t{1} << s) < v) {
    ++s;
  }
  return s;
}

}  // namespace

KvArena::KvArena(const ModelConfig& config, std::size_t page_positions,
                 std::size_t pages)
    : page_positions_(page_positions), pages_(pages) {
  config.validate();
  APTQ_CHECK(is_pow2(page_positions),
             "KvArena: page_positions must be a power of two (got " +
                 std::to_string(page_positions) + ")");
  APTQ_CHECK(pages >= 1, "KvArena: need at least one page");
  stride_ = config.n_layers * 2 * page_positions * config.kv_dim();
  slab_.assign(pages * stride_, 0.0f);
  in_use_.assign(pages, 0);
  free_.reserve(pages);
  // Free list in reverse so acquire hands out page 0 first (stable page
  // order is convenient when reading traces).
  for (std::size_t i = pages; i > 0; --i) {
    free_.push_back(static_cast<std::uint32_t>(i - 1));
  }
}

std::uint32_t KvArena::acquire_page() {
  if (free_.empty()) {
    return kNoPage;
  }
  const std::uint32_t page = free_.back();
  free_.pop_back();
  in_use_[page] = 1;
  return page;
}

void KvArena::release_page(std::uint32_t page) {
  APTQ_CHECK(page < pages_, "KvArena: release of out-of-range page");
  APTQ_CHECK(in_use_[page] != 0, "KvArena: page released twice");
  in_use_[page] = 0;
  free_.push_back(page);
}

DecodeState::DecodeState(const ModelConfig& config, std::size_t max_context,
                         KvArena* arena, std::unique_ptr<KvArena> owned)
    : config_(config),
      max_context_(max_context),
      kv_dim_(config.kv_dim()),
      arena_(arena),
      arena_owned_(std::move(owned)) {
  if (arena_ == nullptr) {
    arena_ = arena_owned_.get();
  }
  config.validate();
  APTQ_CHECK(max_context >= 1, "DecodeState: max_context must be positive");
  page_shift_ = log2_of(arena_->page_positions());
  page_mask_ = arena_->page_positions() - 1;
  table_.reserve(arena_->pages_for(max_context));
}

DecodeState::DecodeState(const ModelConfig& config, std::size_t max_context)
    : DecodeState(config, max_context, nullptr,
                  std::make_unique<KvArena>(
                      config, kKvPagePositions,
                      (max_context + kKvPagePositions - 1) /
                          kKvPagePositions)) {
  // Solo states keep the historical always-available semantics: the
  // private arena is exactly big enough and fully mapped up front.
  APTQ_CHECK(try_reserve(max_context_), "DecodeState: private arena sizing");
}

DecodeState::DecodeState(const ModelConfig& config, std::size_t max_context,
                         KvArena& arena)
    : DecodeState(config, max_context, &arena, nullptr) {}

DecodeState::~DecodeState() {
  if (arena_ != nullptr && arena_owned_ == nullptr) {
    for (const std::uint32_t page : table_) {
      arena_->release_page(page);
    }
  }
}

void DecodeState::reset() {
  // The engine only reads rows [0, pos_), so rewinding the cursor suffices;
  // stale rows beyond it are overwritten before they are read. Shared-arena
  // states additionally return their pages so other sessions can map them.
  pos_ = 0;
  if (arena_owned_ == nullptr && arena_ != nullptr) {
    for (const std::uint32_t page : table_) {
      arena_->release_page(page);
    }
    table_.clear();
  }
}

bool DecodeState::try_reserve(std::size_t n) {
  const std::size_t want = std::min(pos_ + n, max_context_);
  const std::size_t need_pages = arena_->pages_for(want);
  while (table_.size() < need_pages) {
    const std::uint32_t page = arena_->acquire_page();
    if (page == KvArena::kNoPage) {
      return false;  // already-mapped pages stay mapped
    }
    table_.push_back(page);
  }
  return true;
}

void DecodeState::rewind(std::size_t new_pos) {
  APTQ_CHECK(new_pos <= pos_,
             "DecodeState: rewind forwards (" + std::to_string(new_pos) +
                 " > " + std::to_string(pos_) + ")");
  pos_ = new_pos;
  if (arena_owned_ == nullptr && arena_ != nullptr) {
    const std::size_t keep = arena_->pages_for(new_pos);
    while (table_.size() > keep) {
      arena_->release_page(table_.back());
      table_.pop_back();
    }
  }
}

std::size_t DecodeState::footprint_bytes() const {
  const std::size_t table_bytes = table_.capacity() * sizeof(std::uint32_t);
  if (arena_owned_ != nullptr) {
    return arena_owned_->bytes() + table_bytes;
  }
  const std::size_t page_bytes =
      arena_ != nullptr ? arena_->page_stride() * sizeof(float) : 0;
  return table_.size() * page_bytes + table_bytes;
}

void DecodeState::advance(std::size_t n) {
  APTQ_CHECK(pos_ + n <= max_context_,
             "DecodeState: advance past capacity (" + std::to_string(pos_) +
                 " + " + std::to_string(n) + " > " +
                 std::to_string(max_context_) + ")");
  APTQ_CHECK(pos_ + n <= table_.size() * arena_->page_positions(),
             "DecodeState: advance past reserved pages");
  pos_ += n;
}

namespace {

// Weight access over the dense fp32 model (see the adapter contract in
// decode.hpp).
class DenseDecodeAdapter {
 public:
  explicit DenseDecodeAdapter(const Model& model) : model_(model) {}

  const ModelConfig& config() const { return model_.config; }
  std::span<const float> embedding(std::size_t token) const {
    return model_.tok_embed.row(token);
  }
  std::span<const float> attn_norm(std::size_t layer) const {
    return model_.blocks[layer].attn_norm;
  }
  std::span<const float> ffn_norm(std::size_t layer) const {
    return model_.blocks[layer].ffn_norm;
  }
  std::span<const float> final_norm() const { return model_.final_norm; }

  Matrix project(std::size_t layer, LinearKind kind, const Matrix& x) const {
    const BlockWeights& b = model_.blocks[layer];
    switch (kind) {
      case LinearKind::q_proj: return matmul(x, b.wq);
      case LinearKind::k_proj: return matmul(x, b.wk);
      case LinearKind::v_proj: return matmul(x, b.wv);
      case LinearKind::o_proj: return matmul(x, b.wo);
      case LinearKind::gate_proj: return matmul(x, b.w_gate);
      case LinearKind::up_proj: return matmul(x, b.w_up);
      case LinearKind::down_proj: return matmul(x, b.w_down);
      case LinearKind::lm_head: break;
    }
    APTQ_FAIL("DenseDecodeAdapter: unexpected projection kind");
  }

  Matrix head(const Matrix& x) const { return matmul(x, model_.lm_head); }

  // Batched projections: row i of the result is bitwise identical to
  // project()/head() on row i alone, because kern::gemv_batch replays the
  // solo gemv fold per row (it only shares the streaming of B's rows).
  Matrix project_batch(std::size_t layer, LinearKind kind,
                       const Matrix& x) const {
    const BlockWeights& b = model_.blocks[layer];
    const Matrix* w = nullptr;
    switch (kind) {
      case LinearKind::q_proj: w = &b.wq; break;
      case LinearKind::k_proj: w = &b.wk; break;
      case LinearKind::v_proj: w = &b.wv; break;
      case LinearKind::o_proj: w = &b.wo; break;
      case LinearKind::gate_proj: w = &b.w_gate; break;
      case LinearKind::up_proj: w = &b.w_up; break;
      case LinearKind::down_proj: w = &b.w_down; break;
      case LinearKind::lm_head:
        APTQ_FAIL("DenseDecodeAdapter: unexpected projection kind");
    }
    APTQ_CHECK(x.cols() == w->rows(), "project_batch: shape mismatch");
    Matrix out(x.rows(), w->cols());
    kern::gemv_batch(x.data(), w->data(), x.rows(), x.cols(), w->cols(),
                     out.data());
    return out;
  }

  Matrix head_batch(const Matrix& x) const {
    APTQ_CHECK(x.cols() == model_.lm_head.rows(),
               "head_batch: shape mismatch");
    Matrix out(x.rows(), model_.lm_head.cols());
    kern::gemv_batch(x.data(), model_.lm_head.data(), x.rows(), x.cols(),
                     model_.lm_head.cols(), out.data());
    return out;
  }

 private:
  const Model& model_;
};

}  // namespace

Matrix decode_prefill(const Model& model, std::span<const TokenId> tokens,
                      DecodeState& state, const ForwardOptions& options) {
  return detail::decode_prefill_impl(DenseDecodeAdapter(model), tokens, state,
                                     options);
}

std::vector<float> decode_step(const Model& model, TokenId token,
                               DecodeState& state,
                               const ForwardOptions& options) {
  return detail::decode_step_impl(DenseDecodeAdapter(model), token, state,
                                  options);
}

Matrix decode_step_batch(const Model& model, std::span<const TokenId> tokens,
                         std::span<DecodeState* const> states,
                         const ForwardOptions& options) {
  return detail::decode_step_batch_impl(DenseDecodeAdapter(model), tokens,
                                        states, options);
}

Matrix decode_verify(const Model& model, std::span<const TokenId> tokens,
                     DecodeState& state, const ForwardOptions& options) {
  return detail::decode_verify_impl(DenseDecodeAdapter(model), tokens, state,
                                    options);
}

}  // namespace aptq
