// Streaming decoder façade over the incremental decoding engine
// (model/decode.hpp): owns a DecodeState and pairs it with a borrowed dense
// model. Kept for callers that want an object-style API; new code can use
// decode_prefill / decode_step with an explicit DecodeState directly.
#pragma once

#include "data/vocab.hpp"
#include "model/decode.hpp"
#include "model/forward.hpp"
#include "model/model.hpp"
#include "util/rng.hpp"

namespace aptq {

/// Streaming decoder over a borrowed model. The model must outlive the
/// decoder and stay unmodified while decoding.
class Decoder {
 public:
  /// `max_seq` bounds the context (cache capacity).
  Decoder(const Model& model, std::size_t max_seq,
          const ForwardOptions& options = {});

  /// Number of tokens processed so far.
  std::size_t position() const { return state_.pos(); }
  std::size_t capacity() const { return state_.max_context(); }

  /// Process `tokens` (appended to the context) in one batched pass;
  /// returns the logits of the last token. Throws if the context would
  /// exceed capacity.
  std::vector<float> prefill(std::span<const TokenId> tokens);

  /// Process one token; returns the next-token logits.
  std::vector<float> step(TokenId token);

  /// Drop all cached state and restart from an empty context.
  void reset() { state_.reset(); }

 private:
  const Model& model_;
  ForwardOptions options_;
  DecodeState state_;
};

/// Sample `length` tokens with the incremental decoder (same token
/// distribution as sample_from_model, O(context) per generated token
/// instead of a full-prefix forward pass).
TokenSeq decode_sample(const Model& model, std::size_t length, Rng& rng,
                       float temperature = 1.0f, const TokenSeq& prompt = {});

}  // namespace aptq
