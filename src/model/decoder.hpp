// Incremental autoregressive decoding with per-layer KV caches.
//
// model_forward() recomputes the whole prefix at every step — fine for
// training and calibration, quadratic waste for generation. Decoder keeps
// the rotated keys and values of every processed position per layer and
// advances one token at a time at O(context) cost. Produces logits
// bit-identical (up to f32 rounding) to the full forward pass; the
// equivalence is enforced by tests/decoder_test.cpp.
#pragma once

#include "data/vocab.hpp"
#include "model/forward.hpp"
#include "model/model.hpp"
#include "util/rng.hpp"

namespace aptq {

/// Streaming decoder over a borrowed model. The model must outlive the
/// decoder and stay unmodified while decoding.
class Decoder {
 public:
  /// `max_seq` bounds the context (cache capacity).
  Decoder(const Model& model, std::size_t max_seq,
          const ForwardOptions& options = {});

  /// Number of tokens processed so far.
  std::size_t position() const { return position_; }
  std::size_t capacity() const { return max_seq_; }

  /// Process `tokens` (appended to the context); returns the logits of the
  /// last token. Throws if the context would exceed capacity.
  std::vector<float> prefill(std::span<const TokenId> tokens);

  /// Process one token; returns the next-token logits.
  std::vector<float> step(TokenId token);

  /// Drop all cached state and restart from an empty context.
  void reset();

 private:
  const Model& model_;
  ForwardOptions options_;
  std::size_t max_seq_ = 0;
  std::size_t position_ = 0;
  // Per layer: rotated keys and raw values, (max_seq × d), filled row by row.
  std::vector<Matrix> k_cache_;
  std::vector<Matrix> v_cache_;
};

/// Sample `length` tokens with the incremental decoder (same token
/// distribution as sample_from_model, O(context) per generated token
/// instead of a full-prefix forward pass).
TokenSeq decode_sample(const Model& model, std::size_t length, Rng& rng,
                       float temperature = 1.0f, const TokenSeq& prompt = {});

}  // namespace aptq
