#include "model/model.hpp"

#include <cmath>

#include "util/io.hpp"

namespace aptq {

void ModelConfig::validate() const {
  APTQ_CHECK(vocab_size >= 4, "ModelConfig: vocab_size too small");
  APTQ_CHECK(dim >= 8, "ModelConfig: dim too small");
  APTQ_CHECK(n_layers >= 1, "ModelConfig: need at least one layer");
  APTQ_CHECK(n_heads >= 1 && dim % n_heads == 0,
             "ModelConfig: dim must be divisible by n_heads");
  APTQ_CHECK(head_dim() % 2 == 0, "ModelConfig: head_dim must be even (RoPE)");
  APTQ_CHECK(kv_heads() >= 1 && kv_heads() <= n_heads &&
                 n_heads % kv_heads() == 0,
             "ModelConfig: n_heads must be a multiple of n_kv_heads");
  APTQ_CHECK(ffn_dim >= 8, "ModelConfig: ffn_dim too small");
  APTQ_CHECK(norm_eps > 0.0f, "ModelConfig: norm_eps must be positive");
}

Model Model::init(const ModelConfig& config, std::uint64_t seed) {
  config.validate();
  Rng rng(seed);
  Model m;
  m.config = config;
  const auto d = config.dim;
  const auto f = config.ffn_dim;
  const float proj_std = 1.0f / std::sqrt(static_cast<float>(d));
  const float ffn_std = 1.0f / std::sqrt(static_cast<float>(f));
  // Residual-branch outputs (wo, w_down) are further scaled by 1/sqrt(2L)
  // (GPT-2-style) so deep stacks start stable.
  const float residual_scale =
      1.0f / std::sqrt(2.0f * static_cast<float>(config.n_layers));

  m.tok_embed = Matrix::randn(config.vocab_size, d, rng, 0.0f, 0.5f);
  m.blocks.resize(config.n_layers);
  for (auto& b : m.blocks) {
    b.attn_norm.assign(d, 1.0f);
    b.wq = Matrix::randn(d, d, rng, 0.0f, proj_std);
    b.wk = Matrix::randn(d, config.kv_dim(), rng, 0.0f, proj_std);
    b.wv = Matrix::randn(d, config.kv_dim(), rng, 0.0f, proj_std);
    b.wo = Matrix::randn(d, d, rng, 0.0f, proj_std * residual_scale);
    b.ffn_norm.assign(d, 1.0f);
    b.w_gate = Matrix::randn(d, f, rng, 0.0f, proj_std);
    b.w_up = Matrix::randn(d, f, rng, 0.0f, proj_std);
    b.w_down = Matrix::randn(f, d, rng, 0.0f, ffn_std * residual_scale);
  }
  m.final_norm.assign(d, 1.0f);
  m.lm_head = Matrix::randn(d, config.vocab_size, rng, 0.0f, proj_std);
  return m;
}

std::size_t Model::parameter_count() const {
  std::size_t n = tok_embed.size() + final_norm.size() + lm_head.size();
  for (const auto& b : blocks) {
    n += b.attn_norm.size() + b.wq.size() + b.wk.size() + b.wv.size() +
         b.wo.size() + b.ffn_norm.size() + b.w_gate.size() + b.w_up.size() +
         b.w_down.size();
  }
  return n;
}

bool is_attention(LinearKind kind) {
  switch (kind) {
    case LinearKind::q_proj:
    case LinearKind::k_proj:
    case LinearKind::v_proj:
    case LinearKind::o_proj:
      return true;
    default:
      return false;
  }
}

std::string to_string(LinearKind kind) {
  switch (kind) {
    case LinearKind::q_proj: return "q_proj";
    case LinearKind::k_proj: return "k_proj";
    case LinearKind::v_proj: return "v_proj";
    case LinearKind::o_proj: return "o_proj";
    case LinearKind::gate_proj: return "gate_proj";
    case LinearKind::up_proj: return "up_proj";
    case LinearKind::down_proj: return "down_proj";
    case LinearKind::lm_head: return "lm_head";
  }
  APTQ_FAIL("unknown LinearKind");
}

namespace {

// Shared walk for the mutable and const collect_linears overloads (RefT
// differs only in the constness of its weight pointer).
template <typename RefT, typename ModelT>
std::vector<RefT> collect_linears_impl(ModelT& model, bool include_lm_head) {
  std::vector<RefT> out;
  for (std::size_t i = 0; i < model.blocks.size(); ++i) {
    auto& b = model.blocks[i];
    const std::string prefix = "layers." + std::to_string(i) + ".";
    out.push_back({prefix + "self_attn.q_proj", LinearKind::q_proj, i, &b.wq});
    out.push_back({prefix + "self_attn.k_proj", LinearKind::k_proj, i, &b.wk});
    out.push_back({prefix + "self_attn.v_proj", LinearKind::v_proj, i, &b.wv});
    out.push_back({prefix + "self_attn.o_proj", LinearKind::o_proj, i, &b.wo});
    out.push_back({prefix + "mlp.gate_proj", LinearKind::gate_proj, i,
                   &b.w_gate});
    out.push_back({prefix + "mlp.up_proj", LinearKind::up_proj, i, &b.w_up});
    out.push_back({prefix + "mlp.down_proj", LinearKind::down_proj, i,
                   &b.w_down});
  }
  if (include_lm_head) {
    out.push_back({"lm_head", LinearKind::lm_head, 0, &model.lm_head});
  }
  return out;
}

}  // namespace

std::vector<LinearRef> collect_linears(Model& model, bool include_lm_head) {
  return collect_linears_impl<LinearRef>(model, include_lm_head);
}

std::vector<ConstLinearRef> collect_linears(const Model& model,
                                            bool include_lm_head) {
  return collect_linears_impl<ConstLinearRef>(model, include_lm_head);
}

void visit_params(Model& model,
                  const std::function<void(std::span<float>)>& fn) {
  fn(model.tok_embed.flat());
  for (auto& b : model.blocks) {
    fn({b.attn_norm.data(), b.attn_norm.size()});
    fn(b.wq.flat());
    fn(b.wk.flat());
    fn(b.wv.flat());
    fn(b.wo.flat());
    fn({b.ffn_norm.data(), b.ffn_norm.size()});
    fn(b.w_gate.flat());
    fn(b.w_up.flat());
    fn(b.w_down.flat());
  }
  fn({model.final_norm.data(), model.final_norm.size()});
  fn(model.lm_head.flat());
}

namespace {

constexpr std::uint32_t kCheckpointMagic = 0x41505451u;  // "APTQ"
// v1: pre-GQA (no n_kv_heads field); v2 adds it. v1 loads as n_kv_heads=0.
constexpr std::uint32_t kCheckpointVersion = 2u;

void write_matrix(BinaryWriter& w, const Matrix& m) {
  w.write_u64(m.rows());
  w.write_u64(m.cols());
  std::vector<float> flat(m.flat().begin(), m.flat().end());
  w.write_f32_vector(flat);
}

Matrix read_matrix(BinaryReader& r) {
  const std::size_t rows = r.read_u64();
  const std::size_t cols = r.read_u64();
  const std::vector<float> flat = r.read_f32_vector();
  APTQ_CHECK(flat.size() == rows * cols, "checkpoint: matrix size mismatch");
  Matrix m(rows, cols);
  std::copy(flat.begin(), flat.end(), m.data());
  return m;
}

}  // namespace

void save_checkpoint(const Model& model, const std::string& path) {
  BinaryWriter w(path);
  w.write_u32(kCheckpointMagic);
  w.write_u32(kCheckpointVersion);
  const auto& c = model.config;
  w.write_u64(c.vocab_size);
  w.write_u64(c.dim);
  w.write_u64(c.n_layers);
  w.write_u64(c.n_heads);
  w.write_u64(c.ffn_dim);
  w.write_u64(c.n_kv_heads);
  w.write_f32(c.rope_theta);
  w.write_f32(c.norm_eps);
  write_matrix(w, model.tok_embed);
  for (const auto& b : model.blocks) {
    w.write_f32_vector(b.attn_norm);
    write_matrix(w, b.wq);
    write_matrix(w, b.wk);
    write_matrix(w, b.wv);
    write_matrix(w, b.wo);
    w.write_f32_vector(b.ffn_norm);
    write_matrix(w, b.w_gate);
    write_matrix(w, b.w_up);
    write_matrix(w, b.w_down);
  }
  w.write_f32_vector(model.final_norm);
  write_matrix(w, model.lm_head);
}

Model load_checkpoint(const std::string& path) {
  BinaryReader r(path);
  APTQ_CHECK(r.read_u32() == kCheckpointMagic,
             "checkpoint: bad magic in " + path);
  const std::uint32_t version = r.read_u32();
  APTQ_CHECK(version == 1u || version == kCheckpointVersion,
             "checkpoint: unsupported version in " + path);
  ModelConfig c;
  c.vocab_size = r.read_u64();
  c.dim = r.read_u64();
  c.n_layers = r.read_u64();
  c.n_heads = r.read_u64();
  c.ffn_dim = r.read_u64();
  c.n_kv_heads = version >= 2u ? r.read_u64() : 0;
  c.rope_theta = r.read_f32();
  c.norm_eps = r.read_f32();
  c.validate();
  Model m;
  m.config = c;
  m.tok_embed = read_matrix(r);
  m.blocks.resize(c.n_layers);
  for (auto& b : m.blocks) {
    b.attn_norm = r.read_f32_vector();
    b.wq = read_matrix(r);
    b.wk = read_matrix(r);
    b.wv = read_matrix(r);
    b.wo = read_matrix(r);
    b.ffn_norm = r.read_f32_vector();
    b.w_gate = read_matrix(r);
    b.w_up = read_matrix(r);
    b.w_down = read_matrix(r);
  }
  m.final_norm = r.read_f32_vector();
  m.lm_head = read_matrix(r);
  APTQ_CHECK(m.tok_embed.rows() == c.vocab_size && m.tok_embed.cols() == c.dim,
             "checkpoint: embedding shape mismatch");
  return m;
}

}  // namespace aptq
