#include "model/decoder.hpp"

#include "model/sampler.hpp"
#include "obs/control.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace aptq {

Decoder::Decoder(const Model& model, std::size_t max_seq,
                 const ForwardOptions& options)
    : model_(model), options_(options), state_(model.config, max_seq) {}

std::vector<float> Decoder::prefill(std::span<const TokenId> tokens) {
  const Matrix logits = decode_prefill(model_, tokens, state_, options_);
  const auto last = logits.row(logits.rows() - 1);
  return {last.begin(), last.end()};
}

std::vector<float> Decoder::step(TokenId token) {
  return decode_step(model_, token, state_, options_);
}

TokenSeq decode_sample(const Model& model, std::size_t length, Rng& rng,
                       float temperature, const TokenSeq& prompt) {
  obs::TraceSpan span("decode.sample", "decode");
  const std::uint64_t obs_start =
      obs::telemetry_enabled() ? obs::now_ns() : 0;
  // sample_from_model runs on the same decode engine, so the two paths
  // draw identical token sequences from identical RNG state.
  SampleConfig config;
  config.temperature = temperature;
  TokenSeq out = sample_from_model(model, length, rng, config, prompt);
  if (obs_start != 0) {
    const double seconds =
        static_cast<double>(obs::now_ns() - obs_start) * 1e-9;
    if (seconds > 0.0) {
      obs::gauge("decode.tokens_per_sec")
          .set(static_cast<double>(out.size()) / seconds);
    }
  }
  return out;
}

}  // namespace aptq
