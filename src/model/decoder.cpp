#include "model/decoder.hpp"

#include "model/sampler.hpp"

namespace aptq {

Decoder::Decoder(const Model& model, std::size_t max_seq,
                 const ForwardOptions& options)
    : model_(model), options_(options), state_(model.config, max_seq) {}

std::vector<float> Decoder::prefill(std::span<const TokenId> tokens) {
  const Matrix logits = decode_prefill(model_, tokens, state_, options_);
  const auto last = logits.row(logits.rows() - 1);
  return {last.begin(), last.end()};
}

std::vector<float> Decoder::step(TokenId token) {
  return decode_step(model_, token, state_, options_);
}

TokenSeq decode_sample(const Model& model, std::size_t length, Rng& rng,
                       float temperature, const TokenSeq& prompt) {
  // sample_from_model runs on the same decode engine, so the two paths
  // draw identical token sequences from identical RNG state.
  SampleConfig config;
  config.temperature = temperature;
  return sample_from_model(model, length, rng, config, prompt);
}

}  // namespace aptq
