#include "model/decoder.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/ops.hpp"

namespace aptq {

Decoder::Decoder(const Model& model, std::size_t max_seq,
                 const ForwardOptions& options)
    : model_(model), options_(options), max_seq_(max_seq) {
  APTQ_CHECK(max_seq >= 1, "Decoder: capacity must be positive");
  const auto& cfg = model.config;
  k_cache_.assign(cfg.n_layers, Matrix(max_seq, cfg.kv_dim()));
  v_cache_.assign(cfg.n_layers, Matrix(max_seq, cfg.kv_dim()));
}

void Decoder::reset() {
  position_ = 0;
  for (auto& m : k_cache_) {
    m.set_zero();
  }
  for (auto& m : v_cache_) {
    m.set_zero();
  }
}

std::vector<float> Decoder::prefill(std::span<const TokenId> tokens) {
  APTQ_CHECK(!tokens.empty(), "Decoder::prefill: empty input");
  std::vector<float> logits;
  for (const TokenId t : tokens) {
    logits = step(t);
  }
  return logits;
}

std::vector<float> Decoder::step(TokenId token) {
  const auto& cfg = model_.config;
  APTQ_CHECK(position_ < max_seq_, "Decoder: context capacity exceeded");
  APTQ_CHECK(token >= 0 && static_cast<std::size_t>(token) < cfg.vocab_size,
             "Decoder: token id out of range");
  const std::size_t d = cfg.dim;
  const std::size_t hd = cfg.head_dim();
  const std::size_t heads = cfg.n_heads;
  const std::size_t pos = position_;
  const std::size_t ctx = pos + 1;
  const float inv_sqrt_hd = 1.0f / std::sqrt(static_cast<float>(hd));

  const auto maybe_quant = [this](Matrix& m) {
    if (options_.act_quant_bits > 0) {
      fake_quant_rows(m, options_.act_quant_bits);
    }
  };

  Matrix x(1, d);
  {
    const auto src = model_.tok_embed.row(static_cast<std::size_t>(token));
    std::copy(src.begin(), src.end(), x.row(0).begin());
  }

  Matrix normed;
  std::vector<float> inv_rms;
  for (std::size_t layer = 0; layer < cfg.n_layers; ++layer) {
    const auto& w = model_.blocks[layer];
    rmsnorm_forward(x, w.attn_norm, cfg.norm_eps, normed, inv_rms);
    maybe_quant(normed);

    Matrix q = matmul(normed, w.wq);
    Matrix k = matmul(normed, w.wk);
    const Matrix v = matmul(normed, w.wv);
    rope_apply(q, hd, cfg.rope_theta, /*inverse=*/false, pos);
    rope_apply(k, hd, cfg.rope_theta, /*inverse=*/false, pos);
    std::copy(k.row(0).begin(), k.row(0).end(),
              k_cache_[layer].row(pos).begin());
    std::copy(v.row(0).begin(), v.row(0).end(),
              v_cache_[layer].row(pos).begin());

    Matrix attn_cat(1, d);
    std::vector<float> scores(ctx);
    const std::size_t kv_dim = cfg.kv_dim();
    const std::size_t group_factor = cfg.group_factor();
    for (std::size_t h = 0; h < heads; ++h) {
      const std::size_t g = h / group_factor;  // shared kv head (GQA)
      const float* qh = q.data() + h * hd;
      // scores over all cached positions (causality is implicit: only
      // positions <= pos are cached).
      float max_s = -1e30f;
      for (std::size_t t = 0; t < ctx; ++t) {
        const float* kh = k_cache_[layer].data() + t * kv_dim + g * hd;
        float acc = 0.0f;
        for (std::size_t c = 0; c < hd; ++c) {
          acc += qh[c] * kh[c];
        }
        scores[t] = acc * inv_sqrt_hd;
        max_s = std::max(max_s, scores[t]);
      }
      float sum = 0.0f;
      for (std::size_t t = 0; t < ctx; ++t) {
        scores[t] = std::exp(scores[t] - max_s);
        sum += scores[t];
      }
      const float inv_sum = 1.0f / sum;
      float* out = attn_cat.data() + h * hd;
      for (std::size_t t = 0; t < ctx; ++t) {
        const float p = scores[t] * inv_sum;
        const float* vh = v_cache_[layer].data() + t * kv_dim + g * hd;
        for (std::size_t c = 0; c < hd; ++c) {
          out[c] += p * vh[c];
        }
      }
    }
    maybe_quant(attn_cat);
    const Matrix attn_out = matmul(attn_cat, w.wo);
    axpy(1.0f, attn_out, x);

    rmsnorm_forward(x, w.ffn_norm, cfg.norm_eps, normed, inv_rms);
    maybe_quant(normed);
    const Matrix gate_pre = matmul(normed, w.w_gate);
    const Matrix up = matmul(normed, w.w_up);
    Matrix act;
    silu(gate_pre, act);
    for (std::size_t i = 0; i < act.size(); ++i) {
      act.flat()[i] *= up.flat()[i];
    }
    maybe_quant(act);
    const Matrix ffn_out = matmul(act, w.w_down);
    axpy(1.0f, ffn_out, x);
  }

  rmsnorm_forward(x, model_.final_norm, cfg.norm_eps, normed, inv_rms);
  maybe_quant(normed);
  const Matrix logits = matmul(normed, model_.lm_head);
  ++position_;
  return {logits.row(0).begin(), logits.row(0).end()};
}

TokenSeq decode_sample(const Model& model, std::size_t length, Rng& rng,
                       float temperature, const TokenSeq& prompt) {
  APTQ_CHECK(temperature > 0.0f, "decode_sample: temperature must be positive");
  APTQ_CHECK(length > prompt.size(), "decode_sample: length must exceed prompt");
  const std::size_t v = model.config.vocab_size;

  Decoder decoder(model, length);
  TokenSeq tokens = prompt;
  if (tokens.empty()) {
    tokens.push_back(static_cast<TokenId>(rng.index(v)));
  }
  std::vector<float> logits = decoder.prefill(tokens);
  std::vector<float> probs(v);
  while (tokens.size() < length) {
    float max_v = logits[0];
    for (const float x : logits) {
      max_v = std::max(max_v, x);
    }
    for (std::size_t i = 0; i < v; ++i) {
      probs[i] = std::exp((logits[i] - max_v) / temperature);
    }
    const auto next = static_cast<TokenId>(rng.categorical(probs));
    tokens.push_back(next);
    if (tokens.size() < length) {
      logits = decoder.step(next);
    }
  }
  return tokens;
}

}  // namespace aptq
