#include "model/forward.hpp"

#include <cmath>

#include "tensor/ops.hpp"

namespace aptq {

Matrix extract_head(const Matrix& x, std::size_t h, std::size_t head_dim) {
  APTQ_CHECK((h + 1) * head_dim <= x.cols(), "extract_head: out of range");
  Matrix out(x.rows(), head_dim);
  for (std::size_t t = 0; t < x.rows(); ++t) {
    const float* src = x.data() + t * x.cols() + h * head_dim;
    float* dst = out.data() + t * head_dim;
    for (std::size_t c = 0; c < head_dim; ++c) {
      dst[c] = src[c];
    }
  }
  return out;
}

void accumulate_head(Matrix& dst, const Matrix& src, std::size_t h,
                     std::size_t head_dim) {
  APTQ_CHECK(src.rows() == dst.rows() && src.cols() == head_dim &&
                 (h + 1) * head_dim <= dst.cols(),
             "accumulate_head: shape mismatch");
  for (std::size_t t = 0; t < dst.rows(); ++t) {
    float* d = dst.data() + t * dst.cols() + h * head_dim;
    const float* s = src.data() + t * head_dim;
    for (std::size_t c = 0; c < head_dim; ++c) {
      d[c] += s[c];
    }
  }
}

void fake_quant_rows(Matrix& m, int bits) {
  APTQ_CHECK(bits >= 2 && bits <= 16, "fake_quant_rows: bits out of range");
  const float levels = static_cast<float>((1 << (bits - 1)) - 1);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    auto row = m.row(r);
    float max_abs = 0.0f;
    for (const float v : row) {
      max_abs = std::max(max_abs, std::fabs(v));
    }
    if (max_abs == 0.0f) {
      continue;
    }
    const float scale = max_abs / levels;
    for (float& v : row) {
      v = std::round(v / scale) * scale;
    }
  }
}

namespace {

// Applies the optional activation fake-quant before a linear layer.
void maybe_quant(Matrix& m, const ForwardOptions& options) {
  if (options.act_quant_bits > 0) {
    fake_quant_rows(m, options.act_quant_bits);
  }
}

}  // namespace

Matrix model_forward(const Model& model, std::span<const TokenId> tokens,
                     ForwardCache& cache, const ForwardOptions& options) {
  const auto& cfg = model.config;
  const std::size_t t_len = tokens.size();
  APTQ_CHECK(t_len >= 1, "model_forward: empty input");
  const std::size_t d = cfg.dim;
  const std::size_t hd = cfg.head_dim();
  const std::size_t heads = cfg.n_heads;

  cache.seq_len = t_len;
  cache.x0.resize(t_len, d);
  for (std::size_t t = 0; t < t_len; ++t) {
    const TokenId tok = tokens[t];
    APTQ_CHECK(tok >= 0 && static_cast<std::size_t>(tok) < cfg.vocab_size,
               "model_forward: token id out of range");
    const auto src = model.tok_embed.row(static_cast<std::size_t>(tok));
    std::copy(src.begin(), src.end(), cache.x0.row(t).begin());
  }

  cache.blocks.resize(cfg.n_layers);
  const Matrix* x = &cache.x0;
  const float inv_sqrt_hd = 1.0f / std::sqrt(static_cast<float>(hd));

  for (std::size_t layer = 0; layer < cfg.n_layers; ++layer) {
    const auto& w = model.blocks[layer];
    BlockCache& bc = cache.blocks[layer];
    bc.x_in = *x;

    rmsnorm_forward(bc.x_in, w.attn_norm, cfg.norm_eps, bc.normed1,
                    bc.inv_rms1);
    maybe_quant(bc.normed1, options);

    bc.q_rot = matmul(bc.normed1, w.wq);
    bc.k_rot = matmul(bc.normed1, w.wk);
    bc.v = matmul(bc.normed1, w.wv);
    rope_apply(bc.q_rot, hd, cfg.rope_theta);
    rope_apply(bc.k_rot, hd, cfg.rope_theta);

    bc.probs.assign(heads, Matrix());
    bc.attn_cat.resize(t_len, d);
    const std::size_t group_factor = cfg.group_factor();
    for (std::size_t h = 0; h < heads; ++h) {
      const std::size_t g = h / group_factor;  // shared kv head (GQA)
      const Matrix qh = extract_head(bc.q_rot, h, hd);
      const Matrix kh = extract_head(bc.k_rot, g, hd);
      const Matrix vh = extract_head(bc.v, g, hd);
      Matrix scores(t_len, t_len);
      gemm(qh, Trans::no, kh, Trans::yes, scores, inv_sqrt_hd);
      softmax_rows(scores, /*causal_offset=*/0);
      bc.probs[h] = std::move(scores);
      const Matrix oh = matmul(bc.probs[h], vh);
      accumulate_head(bc.attn_cat, oh, h, hd);
    }

    Matrix attn_in = bc.attn_cat;  // o_proj input (possibly fake-quantized)
    maybe_quant(attn_in, options);
    if (options.act_quant_bits > 0) {
      bc.attn_cat = attn_in;  // keep cache consistent with what was used
    }
    Matrix attn_out = matmul(bc.attn_cat, w.wo);

    bc.x_mid = bc.x_in;
    axpy(1.0f, attn_out, bc.x_mid);

    rmsnorm_forward(bc.x_mid, w.ffn_norm, cfg.norm_eps, bc.normed2,
                    bc.inv_rms2);
    maybe_quant(bc.normed2, options);

    bc.gate_pre = matmul(bc.normed2, w.w_gate);
    bc.up = matmul(bc.normed2, w.w_up);
    silu(bc.gate_pre, bc.silu_gate);
    bc.act.resize(t_len, cfg.ffn_dim);
    for (std::size_t i = 0; i < bc.act.size(); ++i) {
      bc.act.flat()[i] = bc.silu_gate.flat()[i] * bc.up.flat()[i];
    }
    maybe_quant(bc.act, options);
    Matrix ffn_out = matmul(bc.act, w.w_down);

    bc.x_out = bc.x_mid;
    axpy(1.0f, ffn_out, bc.x_out);
    x = &bc.x_out;
  }

  rmsnorm_forward(*x, model.final_norm, cfg.norm_eps, cache.normed_final,
                  cache.inv_rms_final);
  maybe_quant(cache.normed_final, options);
  return matmul(cache.normed_final, model.lm_head);
}

Matrix model_forward(const Model& model, std::span<const TokenId> tokens,
                     const ForwardOptions& options) {
  ForwardCache cache;
  return model_forward(model, tokens, cache, options);
}

}  // namespace aptq
