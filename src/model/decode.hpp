// Incremental decoding engine with per-layer KV caches, shared by the
// dense Model and (via an adapter instantiated in src/quant) the bit-packed
// PackedModel.
//
// model_forward() recomputes the whole prefix at every step — fine for
// training and calibration, quadratic waste for generation. The engine
// keeps the rotated keys and raw values of every processed position per
// layer in a DecodeState and offers two entry points:
//
//   decode_prefill(model, tokens, state)  — consume a batch of tokens with
//       one batched causal-attention pass (GEMM-shaped, O(T²) once),
//       filling the caches and returning the (T × V) logits of the batch;
//   decode_step(model, token, state)      — consume one token, attending
//       only to the cached context: O(context) per generated token.
//
// Logits agree with the full forward pass up to f32 rounding (the batched
// and single-row kernels reassociate differently); the equivalence is
// enforced by tests/decode_test.cpp and tests/decoder_test.cpp for both
// model types, serial and multi-threaded.
//
// The shared implementation is a template over a small weight-access
// adapter (config / embedding / norms / per-layer projections / lm head),
// so the packed overloads can live in src/quant without aptq_model
// depending on aptq_quant. See docs/DECODING.md for the design.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "data/vocab.hpp"
#include "model/forward.hpp"
#include "model/model.hpp"
#include "obs/control.hpp"
#include "obs/metrics.hpp"
#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"
#include "util/threadpool.hpp"

namespace aptq {

/// Default positions per KV page (must be a power of two).
inline constexpr std::size_t kKvPagePositions = 16;

/// Slab of fixed-size KV pages with a free list — the backing store for
/// paged DecodeStates (vLLM-style paged attention, CPU edition). One page
/// holds `page_positions` consecutive context positions of *every* layer's
/// K and V rows, so a request's page table is a single flat array and
/// mapping one page extends all layers at once. Within a page, the row of
/// (layer, K|V, local position p) sits at
///   ((layer·2 + kind) · page_positions + p) · kv_dim
/// — consecutive positions of one layer stay contiguous for the attention
/// sweep. The slab is allocated once; acquire/release only touch the free
/// list, so page churn is O(1) and allocation-free.
class KvArena {
 public:
  /// Sentinel for "no page".
  static constexpr std::uint32_t kNoPage = 0xffffffffu;

  KvArena() = default;

  /// `pages` pages of `page_positions` positions each, shaped for
  /// `config`'s layers. page_positions must be a power of two >= 1.
  KvArena(const ModelConfig& config, std::size_t page_positions,
          std::size_t pages);

  std::size_t page_positions() const { return page_positions_; }
  std::size_t pages() const { return pages_; }
  std::size_t free_pages() const { return free_.size(); }
  /// Floats per page.
  std::size_t page_stride() const { return stride_; }
  /// Resident slab bytes (allocated once, independent of occupancy).
  std::size_t bytes() const { return slab_.size() * sizeof(float); }
  /// Pages needed to hold `positions` context positions.
  std::size_t pages_for(std::size_t positions) const {
    return (positions + page_positions_ - 1) / page_positions_;
  }

  /// Pop a free page, or kNoPage when the slab is exhausted.
  std::uint32_t acquire_page();
  /// Push a page back. Throws on out-of-range or double release.
  void release_page(std::uint32_t page);

  float* page_data(std::uint32_t page) {
    return slab_.data() + static_cast<std::size_t>(page) * stride_;
  }
  const float* page_data(std::uint32_t page) const {
    return slab_.data() + static_cast<std::size_t>(page) * stride_;
  }

 private:
  std::size_t page_positions_ = 0;
  std::size_t pages_ = 0;
  std::size_t stride_ = 0;  // floats per page
  std::vector<float> slab_;
  std::vector<std::uint32_t> free_;
  std::vector<std::uint8_t> in_use_;  // O(1) double-release guard
};

/// One decoding session's KV cache: a cursor plus a page table into a
/// KvArena. Attention reads go through k_row()/v_row() page indirection;
/// pages are mapped on demand by try_reserve(), so a pool of sessions
/// shares a bounded slab and bytes held track actual context depth, not
/// the max_context worst case.
///
/// The solo constructor (config, max_context) keeps the historical
/// semantics — it owns a private, fully mapped arena, so try_reserve never
/// fails and no sharing is involved. The arena-backed constructor borrows
/// a shared slab (the serve pool's); reset() then returns its pages.
class DecodeState {
 public:
  DecodeState() = default;

  /// Self-contained state holding up to `max_context` positions (private
  /// arena, fully mapped). Throws if max_context is zero.
  DecodeState(const ModelConfig& config, std::size_t max_context);

  /// State over a shared arena; pages are mapped lazily by try_reserve()
  /// and returned by reset()/destruction. `arena` must outlive this state.
  DecodeState(const ModelConfig& config, std::size_t max_context,
              KvArena& arena);

  DecodeState(DecodeState&&) = default;
  DecodeState& operator=(DecodeState&&) = default;
  ~DecodeState();

  /// Number of tokens consumed so far.
  std::size_t pos() const { return pos_; }
  /// Cache capacity in positions.
  std::size_t max_context() const { return max_context_; }
  const ModelConfig& config() const { return config_; }

  /// Drop all cached state and restart from an empty context (shared-arena
  /// states also return their pages to the arena).
  void reset();

  /// Ensure pages are mapped for positions [0, pos() + n). Returns false —
  /// leaving already-mapped pages in place — when the arena is exhausted;
  /// always true for solo states and when pos() + n exceeds max_context()
  /// by page rounding (capacity itself is checked by the engine).
  bool try_reserve(std::size_t n);

  /// Rewind the cursor to `new_pos` (<= pos()), discarding the newest
  /// positions — the speculative-decoding rollback. Shared-arena states
  /// release the pages that only held discarded positions, so
  /// mapped-bytes accounting matches a state that never consumed them;
  /// solo states keep their private fully-mapped arena. Rows at or beyond
  /// `new_pos` are overwritten before they are next read, exactly like
  /// reset().
  void rewind(std::size_t new_pos);

  /// Pages currently mapped by this state.
  std::size_t pages_held() const { return table_.size(); }

  /// Bytes this state pins exclusively: the private arena slab for solo
  /// states, the mapped pages for shared-arena states, plus the page
  /// table — the true resident footprint serve.kv_bytes reports.
  std::size_t footprint_bytes() const;

  // Engine internals: the kv_dim-float K/V rows of consumed positions,
  // resolved through the page table. `t` must lie below the reserved
  // position count (the engine try_reserve()s before writing).
  float* k_row(std::size_t layer, std::size_t t) {
    return row_ptr(layer, 0, t);
  }
  float* v_row(std::size_t layer, std::size_t t) {
    return row_ptr(layer, 1, t);
  }
  const float* k_row(std::size_t layer, std::size_t t) const {
    return row_ptr(layer, 0, t);
  }
  const float* v_row(std::size_t layer, std::size_t t) const {
    return row_ptr(layer, 1, t);
  }
  void advance(std::size_t n);

 private:
  DecodeState(const ModelConfig& config, std::size_t max_context,
              KvArena* arena, std::unique_ptr<KvArena> owned);

  float* row_ptr(std::size_t layer, std::size_t kind, std::size_t t) const {
    const std::size_t pp = arena_->page_positions();
    float* page = arena_->page_data(table_[t >> page_shift_]);
    return page + ((layer * 2 + kind) * pp + (t & page_mask_)) * kv_dim_;
  }

  ModelConfig config_;
  std::size_t max_context_ = 0;
  std::size_t pos_ = 0;
  std::size_t kv_dim_ = 0;
  std::size_t page_shift_ = 0;
  std::size_t page_mask_ = 0;
  KvArena* arena_ = nullptr;            // borrowed unless arena_owned_
  std::unique_ptr<KvArena> arena_owned_;
  std::vector<std::uint32_t> table_;    // page id per page-sized span
};

/// Batched prefill over the dense model: appends `tokens` to the context
/// and returns their (T × V) logits. Throws if capacity would be exceeded.
Matrix decode_prefill(const Model& model, std::span<const TokenId> tokens,
                      DecodeState& state, const ForwardOptions& options = {});

/// One incremental step over the dense model: appends `token` and returns
/// its next-token logits.
std::vector<float> decode_step(const Model& model, TokenId token,
                               DecodeState& state,
                               const ForwardOptions& options = {});

/// One incremental step over a whole batch of independent sessions: row i
/// of the returned (batch × V) logits is bitwise identical to
/// decode_step(model, tokens[i], *states[i]) — the batched kernels replay
/// the solo fold per row (see kern::gemv_batch / kern::qgemv_batch) — but
/// each weight is streamed once per layer for the whole batch instead of
/// once per request, and threads parallelize inside the batched kernels
/// where there is real work. States must be distinct; tokens.size() must
/// equal states.size().
Matrix decode_step_batch(const Model& model, std::span<const TokenId> tokens,
                         std::span<DecodeState* const> states,
                         const ForwardOptions& options = {});

/// Speculative verification: consume `tokens` on ONE session as if by m
/// sequential decode_step() calls, in a single batched pass. Row j of the
/// returned (m × V) logits is bitwise identical to the logits of
/// decode_step(model, tokens[j], state) after steps 0..j-1 — same batched
/// kernels as decode_step_batch, with row j attending causally to the
/// prior context plus rows 0..j-1 of the batch. decode_prefill is NOT a
/// substitute: its GEMM attention reassociates the f32 reductions
/// differently from the solo fold, so its logits only agree up to
/// rounding. After a verify pass the caller typically accepts a prefix of
/// e tokens and calls state.rewind(pos_before + e).
Matrix decode_verify(const Model& model, std::span<const TokenId> tokens,
                     DecodeState& state, const ForwardOptions& options = {});

namespace detail {

// --- shared engine -------------------------------------------------------
//
// Adapter requirements (duck-typed; see DenseDecodeAdapter below and
// PackedDecodeAdapter in src/quant/packed_model.cpp):
//   const ModelConfig& config() const;
//   std::span<const float> embedding(std::size_t token) const;
//   std::span<const float> attn_norm(std::size_t layer) const;
//   std::span<const float> ffn_norm(std::size_t layer) const;
//   std::span<const float> final_norm() const;
//   Matrix project(std::size_t layer, LinearKind kind, const Matrix& x);
//   Matrix project_batch(std::size_t layer, LinearKind kind,
//                        const Matrix& x);  // row i == project(row i) bitwise
//   Matrix head(const Matrix& x) const;   // lm_head logits
//   Matrix head_batch(const Matrix& x) const;  // row i == head(row i) bitwise

template <typename Adapter>
void decode_check_token(const Adapter& adapter, TokenId token) {
  APTQ_CHECK(token >= 0 && static_cast<std::size_t>(token) <
                               adapter.config().vocab_size,
             "decode: token id out of range");
}

template <typename Adapter>
Matrix decode_prefill_impl(const Adapter& adapter,
                           std::span<const TokenId> tokens,
                           DecodeState& state,
                           const ForwardOptions& options) {
  // Per-batch timing is gated on telemetry so the default decode path pays
  // one relaxed load, never a clock read.
  const std::uint64_t obs_start =
      obs::telemetry_enabled() ? obs::now_ns() : 0;
  const ModelConfig& cfg = adapter.config();
  APTQ_CHECK(state.config() == cfg,
             "decode_prefill: state built for a different model config");
  APTQ_CHECK(!tokens.empty(), "decode_prefill: empty input");
  APTQ_CHECK(state.pos() + tokens.size() <= state.max_context(),
             "decode_prefill: context capacity exceeded (" +
                 std::to_string(state.pos()) + " cached + " +
                 std::to_string(tokens.size()) + " new > max_context " +
                 std::to_string(state.max_context()) + ")");
  const std::size_t t_len = tokens.size();
  const std::size_t prior = state.pos();
  const std::size_t d = cfg.dim;
  const std::size_t hd = cfg.head_dim();
  APTQ_CHECK(state.try_reserve(t_len),
             "decode_prefill: KV pages exhausted (" +
                 std::to_string(state.pages_held()) +
                 " pages mapped; the pool must admit fewer requests)");
  const float inv_sqrt_hd = 1.0f / std::sqrt(static_cast<float>(hd));
  const auto maybe_quant = [&options](Matrix& m) {
    if (options.act_quant_bits > 0) {
      fake_quant_rows(m, options.act_quant_bits);
    }
  };
  // Per-head K/V gather through the page table — the paged equivalent of
  // the old contiguous cache_head slice (same values, same row order).
  const auto gather_head = [&](std::size_t layer, bool want_v,
                               std::size_t rows, std::size_t g) {
    Matrix out(rows, hd);
    for (std::size_t r = 0; r < rows; ++r) {
      const float* src = (want_v ? state.v_row(layer, r)
                                 : state.k_row(layer, r)) +
                         g * hd;
      std::copy(src, src + hd, out.row(r).begin());
    }
    return out;
  };

  Matrix x(t_len, d);
  for (std::size_t t = 0; t < t_len; ++t) {
    decode_check_token(adapter, tokens[t]);
    const auto src =
        adapter.embedding(static_cast<std::size_t>(tokens[t]));
    std::copy(src.begin(), src.end(), x.row(t).begin());
  }

  Matrix normed;
  std::vector<float> inv_rms;
  for (std::size_t layer = 0; layer < cfg.n_layers; ++layer) {
    rmsnorm_forward(x, adapter.attn_norm(layer), cfg.norm_eps, normed,
                    inv_rms);
    maybe_quant(normed);

    Matrix q = adapter.project(layer, LinearKind::q_proj, normed);
    Matrix k = adapter.project(layer, LinearKind::k_proj, normed);
    const Matrix v = adapter.project(layer, LinearKind::v_proj, normed);
    rope_apply(q, hd, cfg.rope_theta, /*inverse=*/false, prior);
    rope_apply(k, hd, cfg.rope_theta, /*inverse=*/false, prior);
    for (std::size_t t = 0; t < t_len; ++t) {
      std::copy(k.row(t).begin(), k.row(t).end(), state.k_row(layer, prior + t));
      std::copy(v.row(t).begin(), v.row(t).end(), state.v_row(layer, prior + t));
    }

    const std::size_t ctx = prior + t_len;
    Matrix attn_cat(t_len, d);
    const std::size_t group_factor = cfg.group_factor();
    for (std::size_t h = 0; h < cfg.n_heads; ++h) {
      const std::size_t g = h / group_factor;  // shared kv head (GQA)
      const Matrix qh = extract_head(q, h, hd);
      const Matrix kh = gather_head(layer, /*want_v=*/false, ctx, g);
      const Matrix vh = gather_head(layer, /*want_v=*/true, ctx, g);
      Matrix scores(t_len, ctx);
      gemm(qh, Trans::no, kh, Trans::yes, scores, inv_sqrt_hd);
      // Row r sits at absolute position prior + r, so it may attend to the
      // prior context plus its own causal prefix of the batch.
      softmax_rows(scores, static_cast<long>(prior));
      accumulate_head(attn_cat, matmul(scores, vh), h, hd);
    }
    maybe_quant(attn_cat);
    axpy(1.0f, adapter.project(layer, LinearKind::o_proj, attn_cat), x);

    rmsnorm_forward(x, adapter.ffn_norm(layer), cfg.norm_eps, normed,
                    inv_rms);
    maybe_quant(normed);
    Matrix gate_pre = adapter.project(layer, LinearKind::gate_proj, normed);
    const Matrix up = adapter.project(layer, LinearKind::up_proj, normed);
    Matrix act;
    silu(gate_pre, act);
    for (std::size_t i = 0; i < act.size(); ++i) {
      act.flat()[i] *= up.flat()[i];
    }
    maybe_quant(act);
    axpy(1.0f, adapter.project(layer, LinearKind::down_proj, act), x);
  }

  rmsnorm_forward(x, adapter.final_norm(), cfg.norm_eps, normed, inv_rms);
  maybe_quant(normed);
  state.advance(t_len);
  Matrix logits = adapter.head(normed);
  if (obs_start != 0) {
    static auto& prefill_ms = obs::histogram("decode.prefill_ms");
    static auto& prefill_tokens = obs::counter("decode.prefill_tokens");
    prefill_ms.record(static_cast<double>(obs::now_ns() - obs_start) * 1e-6);
    prefill_tokens.add(t_len);
  }
  return logits;
}

template <typename Adapter>
std::vector<float> decode_step_impl(const Adapter& adapter, TokenId token,
                                    DecodeState& state,
                                    const ForwardOptions& options) {
  const std::uint64_t obs_start =
      obs::telemetry_enabled() ? obs::now_ns() : 0;
  const ModelConfig& cfg = adapter.config();
  APTQ_CHECK(state.config() == cfg,
             "decode_step: state built for a different model config");
  APTQ_CHECK(state.pos() < state.max_context(),
             "decode_step: context capacity exceeded (" +
                 std::to_string(state.pos()) +
                 " positions cached, max_context " +
                 std::to_string(state.max_context()) +
                 "); the caller must evict or grow the state");
  decode_check_token(adapter, token);
  APTQ_CHECK(state.try_reserve(1),
             "decode_step: KV pages exhausted; the caller must evict");
  const std::size_t d = cfg.dim;
  const std::size_t hd = cfg.head_dim();
  const std::size_t pos = state.pos();
  const std::size_t ctx = pos + 1;
  const float inv_sqrt_hd = 1.0f / std::sqrt(static_cast<float>(hd));
  const auto maybe_quant = [&options](Matrix& m) {
    if (options.act_quant_bits > 0) {
      fake_quant_rows(m, options.act_quant_bits);
    }
  };

  Matrix x(1, d);
  {
    const auto src = adapter.embedding(static_cast<std::size_t>(token));
    std::copy(src.begin(), src.end(), x.row(0).begin());
  }

  Matrix normed;
  std::vector<float> inv_rms;
  std::vector<float> scores(ctx);
  for (std::size_t layer = 0; layer < cfg.n_layers; ++layer) {
    rmsnorm_forward(x, adapter.attn_norm(layer), cfg.norm_eps, normed,
                    inv_rms);
    maybe_quant(normed);

    Matrix q = adapter.project(layer, LinearKind::q_proj, normed);
    Matrix k = adapter.project(layer, LinearKind::k_proj, normed);
    const Matrix v = adapter.project(layer, LinearKind::v_proj, normed);
    rope_apply(q, hd, cfg.rope_theta, /*inverse=*/false, pos);
    rope_apply(k, hd, cfg.rope_theta, /*inverse=*/false, pos);
    std::copy(k.row(0).begin(), k.row(0).end(), state.k_row(layer, pos));
    std::copy(v.row(0).begin(), v.row(0).end(), state.v_row(layer, pos));

    Matrix attn_cat(1, d);
    const std::size_t group_factor = cfg.group_factor();
    for (std::size_t h = 0; h < cfg.n_heads; ++h) {
      const std::size_t g = h / group_factor;  // shared kv head (GQA)
      const float* qh = q.data() + h * hd;
      // Scores over all cached positions (causality is implicit: only
      // positions <= pos are cached), read through the page table; within
      // a page consecutive positions stay kv_dim-contiguous. The
      // four-accumulator dot is the kernel layer's; the dense 1-row
      // projections above already ride the gemv fast path inside gemm().
      float max_s = -1e30f;
      for (std::size_t t = 0; t < ctx; ++t) {
        const float* kh = state.k_row(layer, t) + g * hd;
        scores[t] = kern::dot4(qh, kh, hd) * inv_sqrt_hd;
        max_s = std::max(max_s, scores[t]);
      }
      float sum = 0.0f;
      for (std::size_t t = 0; t < ctx; ++t) {
        scores[t] = std::exp(scores[t] - max_s);
        sum += scores[t];
      }
      const float inv_sum = 1.0f / sum;
      float* out = attn_cat.data() + h * hd;
      for (std::size_t t = 0; t < ctx; ++t) {
        const float p = scores[t] * inv_sum;
        const float* vh = state.v_row(layer, t) + g * hd;
        for (std::size_t c = 0; c < hd; ++c) {
          out[c] += p * vh[c];
        }
      }
    }
    maybe_quant(attn_cat);
    axpy(1.0f, adapter.project(layer, LinearKind::o_proj, attn_cat), x);

    rmsnorm_forward(x, adapter.ffn_norm(layer), cfg.norm_eps, normed,
                    inv_rms);
    maybe_quant(normed);
    Matrix gate_pre = adapter.project(layer, LinearKind::gate_proj, normed);
    const Matrix up = adapter.project(layer, LinearKind::up_proj, normed);
    Matrix act;
    silu(gate_pre, act);
    for (std::size_t i = 0; i < act.size(); ++i) {
      act.flat()[i] *= up.flat()[i];
    }
    maybe_quant(act);
    axpy(1.0f, adapter.project(layer, LinearKind::down_proj, act), x);
  }

  rmsnorm_forward(x, adapter.final_norm(), cfg.norm_eps, normed, inv_rms);
  maybe_quant(normed);
  const Matrix logits = adapter.head(normed);
  state.advance(1);
  if (obs_start != 0) {
    static auto& step_ms = obs::histogram("decode.step_ms");
    static auto& tokens = obs::counter("decode.tokens");
    step_ms.record(static_cast<double>(obs::now_ns() - obs_start) * 1e-6);
    tokens.add(1);
  }
  return {logits.row(0).begin(), logits.row(0).end()};
}

// One incremental step for a batch of independent sessions. The activations
// of the in-flight requests are stacked into (batch × d) matrices and every
// projection hits a batched kernel once per layer per weight — the weight
// stream (dense rows, packed code bytes + nibble unpack) is paid once per
// batch instead of once per request, and threads split the *inside* of each
// kernel instead of sweeping requests at grain 1.
//
// Determinism: every batched stage is row-independent with the solo fold
// per row (gemv_batch / qgemv_batch replay the solo kernels bit-for-bit;
// rmsnorm / rope / silu / axpy are row-wise or elementwise; the attention
// sweep runs the exact decode_step_impl head loop per (request, head) with
// disjoint outputs). Row i of the returned logits is therefore bitwise
// identical to decode_step_impl(adapter, tokens[i], *states[i]) at any
// batch size and thread count — the serve engine's equivalence gate.
template <typename Adapter>
Matrix decode_step_batch_impl(const Adapter& adapter,
                              std::span<const TokenId> tokens,
                              std::span<DecodeState* const> states,
                              const ForwardOptions& options) {
  const std::uint64_t obs_start =
      obs::telemetry_enabled() ? obs::now_ns() : 0;
  const ModelConfig& cfg = adapter.config();
  const std::size_t n = tokens.size();
  APTQ_CHECK(n >= 1, "decode_step_batch: empty batch");
  APTQ_CHECK(states.size() == n,
             "decode_step_batch: one state per token required");
  std::vector<std::size_t> positions(n);
  std::size_t max_ctx = 0;
  for (std::size_t i = 0; i < n; ++i) {
    APTQ_CHECK(states[i] != nullptr, "decode_step_batch: null state");
    APTQ_CHECK(states[i]->config() == cfg,
               "decode_step_batch: state built for a different model config");
    for (std::size_t j = i + 1; j < n; ++j) {
      APTQ_CHECK(states[i] != states[j],
                 "decode_step_batch: duplicate state in batch");
    }
    decode_check_token(adapter, tokens[i]);
    APTQ_CHECK(states[i]->pos() < states[i]->max_context(),
               "decode_step_batch: context capacity exceeded (" +
                   std::to_string(states[i]->pos()) +
                   " positions cached, max_context " +
                   std::to_string(states[i]->max_context()) +
                   "); the caller must evict or grow the state");
    APTQ_CHECK(states[i]->try_reserve(1),
               "decode_step_batch: KV pages exhausted; the caller must evict");
    positions[i] = states[i]->pos();
    max_ctx = std::max(max_ctx, positions[i] + 1);
  }
  const std::size_t d = cfg.dim;
  const std::size_t hd = cfg.head_dim();
  const float inv_sqrt_hd = 1.0f / std::sqrt(static_cast<float>(hd));
  const auto maybe_quant = [&options](Matrix& m) {
    if (options.act_quant_bits > 0) {
      fake_quant_rows(m, options.act_quant_bits);
    }
  };

  Matrix x(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    const auto src =
        adapter.embedding(static_cast<std::size_t>(tokens[i]));
    std::copy(src.begin(), src.end(), x.row(i).begin());
  }

  Matrix normed;
  std::vector<float> inv_rms;
  // One scores row per (request, head) task so concurrent heads of the
  // same request never share a buffer; sized once for the deepest context
  // in the batch (ctx is fixed during the step).
  Matrix scores_ws(n * cfg.n_heads, max_ctx);
  for (std::size_t layer = 0; layer < cfg.n_layers; ++layer) {
    rmsnorm_forward(x, adapter.attn_norm(layer), cfg.norm_eps, normed,
                    inv_rms);
    maybe_quant(normed);

    Matrix q = adapter.project_batch(layer, LinearKind::q_proj, normed);
    Matrix k = adapter.project_batch(layer, LinearKind::k_proj, normed);
    const Matrix v = adapter.project_batch(layer, LinearKind::v_proj, normed);
    rope_apply_rows(q, hd, positions, cfg.rope_theta);
    rope_apply_rows(k, hd, positions, cfg.rope_theta);
    for (std::size_t i = 0; i < n; ++i) {
      std::copy(k.row(i).begin(), k.row(i).end(),
                states[i]->k_row(layer, positions[i]));
      std::copy(v.row(i).begin(), v.row(i).end(),
                states[i]->v_row(layer, positions[i]));
    }

    Matrix attn_cat(n, d);
    const std::size_t group_factor = cfg.group_factor();
    const std::size_t tasks = n * cfg.n_heads;
    // Flattened (request × head) sweep: each task runs decode_step_impl's
    // per-head loop verbatim against its own state's paged rows and writes
    // a disjoint attn_cat slice. Chunk boundaries depend only on the
    // shape; the pool is skipped when it cannot realize parallelism.
    const auto attend = [&](std::size_t tb, std::size_t te) {
      for (std::size_t task = tb; task < te; ++task) {
        const std::size_t i = task / cfg.n_heads;
        const std::size_t h = task % cfg.n_heads;
        const std::size_t g = h / group_factor;  // shared kv head (GQA)
        const DecodeState& st = *states[i];
        const std::size_t ctx = positions[i] + 1;
        const float* qh = q.data() + i * d + h * hd;
        float* scores = scores_ws.data() + task * max_ctx;
        float max_s = -1e30f;
        for (std::size_t t = 0; t < ctx; ++t) {
          const float* kh = st.k_row(layer, t) + g * hd;
          scores[t] = kern::dot4(qh, kh, hd) * inv_sqrt_hd;
          max_s = std::max(max_s, scores[t]);
        }
        float sum = 0.0f;
        for (std::size_t t = 0; t < ctx; ++t) {
          scores[t] = std::exp(scores[t] - max_s);
          sum += scores[t];
        }
        const float inv_sum = 1.0f / sum;
        float* out = attn_cat.data() + i * d + h * hd;
        for (std::size_t t = 0; t < ctx; ++t) {
          const float p = scores[t] * inv_sum;
          const float* vh = st.v_row(layer, t) + g * hd;
          for (std::size_t c = 0; c < hd; ++c) {
            out[c] += p * vh[c];
          }
        }
      }
    };
    if (tasks > 1 && ThreadPool::effective_global_threads() > 1) {
      parallel_for(0, tasks, 1, attend);
    } else {
      attend(0, tasks);
    }
    maybe_quant(attn_cat);
    axpy(1.0f, adapter.project_batch(layer, LinearKind::o_proj, attn_cat), x);

    rmsnorm_forward(x, adapter.ffn_norm(layer), cfg.norm_eps, normed,
                    inv_rms);
    maybe_quant(normed);
    Matrix gate_pre =
        adapter.project_batch(layer, LinearKind::gate_proj, normed);
    const Matrix up = adapter.project_batch(layer, LinearKind::up_proj, normed);
    Matrix act;
    silu(gate_pre, act);
    for (std::size_t i = 0; i < act.size(); ++i) {
      act.flat()[i] *= up.flat()[i];
    }
    maybe_quant(act);
    axpy(1.0f, adapter.project_batch(layer, LinearKind::down_proj, act), x);
  }

  rmsnorm_forward(x, adapter.final_norm(), cfg.norm_eps, normed, inv_rms);
  maybe_quant(normed);
  Matrix logits = adapter.head_batch(normed);
  for (std::size_t i = 0; i < n; ++i) {
    states[i]->advance(1);
  }
  if (obs_start != 0) {
    static auto& step_ms = obs::histogram("decode.step_batch_ms");
    static auto& rows = obs::histogram("decode.step_batch_rows");
    static auto& tokens_c = obs::counter("decode.tokens");
    step_ms.record(static_cast<double>(obs::now_ns() - obs_start) * 1e-6);
    rows.record(static_cast<double>(n));
    tokens_c.add(n);
  }
  return logits;
}

// Batched verification of m candidate tokens on ONE session, bitwise
// identical per row to m sequential decode_step_impl calls.
//
// Why this works: within a layer, the K/V row of batch row j depends only
// on row j's layer input, which earlier (row-independent) stages computed
// exactly as solo decoding would. So all m K/V rows of a layer can be
// written before the attention sweep, and row j's sweep then reads context
// [0, pos0 + j] — the prior context plus this batch's causal prefix —
// through the same per-head dot4/softmax/accumulate fold as decode_step.
// Projections ride the batched kernels (gemv_batch / qgemv_batch), whose
// rows replay the solo fold bit-for-bit, which is what makes speculative
// verification both cheaper than m solo steps and exactly equal to them.
template <typename Adapter>
Matrix decode_verify_impl(const Adapter& adapter,
                          std::span<const TokenId> tokens, DecodeState& state,
                          const ForwardOptions& options) {
  const std::uint64_t obs_start =
      obs::telemetry_enabled() ? obs::now_ns() : 0;
  const ModelConfig& cfg = adapter.config();
  const std::size_t m = tokens.size();
  APTQ_CHECK(m >= 1, "decode_verify: empty candidate batch");
  APTQ_CHECK(state.config() == cfg,
             "decode_verify: state built for a different model config");
  APTQ_CHECK(state.pos() + m <= state.max_context(),
             "decode_verify: context capacity exceeded (" +
                 std::to_string(state.pos()) + " cached + " +
                 std::to_string(m) + " new > max_context " +
                 std::to_string(state.max_context()) + ")");
  APTQ_CHECK(state.try_reserve(m),
             "decode_verify: KV pages exhausted; the caller must degrade k "
             "or evict");
  const std::size_t pos0 = state.pos();
  const std::size_t d = cfg.dim;
  const std::size_t hd = cfg.head_dim();
  const std::size_t max_ctx = pos0 + m;
  const float inv_sqrt_hd = 1.0f / std::sqrt(static_cast<float>(hd));
  const auto maybe_quant = [&options](Matrix& m_) {
    if (options.act_quant_bits > 0) {
      fake_quant_rows(m_, options.act_quant_bits);
    }
  };
  std::vector<std::size_t> positions(m);
  for (std::size_t j = 0; j < m; ++j) {
    decode_check_token(adapter, tokens[j]);
    positions[j] = pos0 + j;
  }

  Matrix x(m, d);
  for (std::size_t j = 0; j < m; ++j) {
    const auto src = adapter.embedding(static_cast<std::size_t>(tokens[j]));
    std::copy(src.begin(), src.end(), x.row(j).begin());
  }

  Matrix normed;
  std::vector<float> inv_rms;
  Matrix scores_ws(m * cfg.n_heads, max_ctx);
  for (std::size_t layer = 0; layer < cfg.n_layers; ++layer) {
    rmsnorm_forward(x, adapter.attn_norm(layer), cfg.norm_eps, normed,
                    inv_rms);
    maybe_quant(normed);

    Matrix q = adapter.project_batch(layer, LinearKind::q_proj, normed);
    Matrix k = adapter.project_batch(layer, LinearKind::k_proj, normed);
    const Matrix v = adapter.project_batch(layer, LinearKind::v_proj, normed);
    rope_apply_rows(q, hd, positions, cfg.rope_theta);
    rope_apply_rows(k, hd, positions, cfg.rope_theta);
    for (std::size_t j = 0; j < m; ++j) {
      std::copy(k.row(j).begin(), k.row(j).end(),
                state.k_row(layer, positions[j]));
      std::copy(v.row(j).begin(), v.row(j).end(),
                state.v_row(layer, positions[j]));
    }

    Matrix attn_cat(m, d);
    const std::size_t group_factor = cfg.group_factor();
    const std::size_t tasks = m * cfg.n_heads;
    const auto attend = [&](std::size_t tb, std::size_t te) {
      for (std::size_t task = tb; task < te; ++task) {
        const std::size_t j = task / cfg.n_heads;
        const std::size_t h = task % cfg.n_heads;
        const std::size_t g = h / group_factor;  // shared kv head (GQA)
        const std::size_t ctx = positions[j] + 1;
        const float* qh = q.data() + j * d + h * hd;
        float* scores = scores_ws.data() + task * max_ctx;
        float max_s = -1e30f;
        for (std::size_t t = 0; t < ctx; ++t) {
          const float* kh = state.k_row(layer, t) + g * hd;
          scores[t] = kern::dot4(qh, kh, hd) * inv_sqrt_hd;
          max_s = std::max(max_s, scores[t]);
        }
        float sum = 0.0f;
        for (std::size_t t = 0; t < ctx; ++t) {
          scores[t] = std::exp(scores[t] - max_s);
          sum += scores[t];
        }
        const float inv_sum = 1.0f / sum;
        float* out = attn_cat.data() + j * d + h * hd;
        for (std::size_t t = 0; t < ctx; ++t) {
          const float p = scores[t] * inv_sum;
          const float* vh = state.v_row(layer, t) + g * hd;
          for (std::size_t c = 0; c < hd; ++c) {
            out[c] += p * vh[c];
          }
        }
      }
    };
    if (tasks > 1 && ThreadPool::effective_global_threads() > 1) {
      parallel_for(0, tasks, 1, attend);
    } else {
      attend(0, tasks);
    }
    maybe_quant(attn_cat);
    axpy(1.0f, adapter.project_batch(layer, LinearKind::o_proj, attn_cat), x);

    rmsnorm_forward(x, adapter.ffn_norm(layer), cfg.norm_eps, normed,
                    inv_rms);
    maybe_quant(normed);
    Matrix gate_pre =
        adapter.project_batch(layer, LinearKind::gate_proj, normed);
    const Matrix up = adapter.project_batch(layer, LinearKind::up_proj, normed);
    Matrix act;
    silu(gate_pre, act);
    for (std::size_t i = 0; i < act.size(); ++i) {
      act.flat()[i] *= up.flat()[i];
    }
    maybe_quant(act);
    axpy(1.0f, adapter.project_batch(layer, LinearKind::down_proj, act), x);
  }

  rmsnorm_forward(x, adapter.final_norm(), cfg.norm_eps, normed, inv_rms);
  maybe_quant(normed);
  Matrix logits = adapter.head_batch(normed);
  state.advance(m);
  if (obs_start != 0) {
    static auto& verify_ms = obs::histogram("decode.verify_ms");
    static auto& verify_rows = obs::histogram("decode.verify_rows");
    verify_ms.record(static_cast<double>(obs::now_ns() - obs_start) * 1e-6);
    verify_rows.record(static_cast<double>(m));
  }
  return logits;
}

}  // namespace detail

}  // namespace aptq
