// Incremental decoding engine with per-layer KV caches, shared by the
// dense Model and (via an adapter instantiated in src/quant) the bit-packed
// PackedModel.
//
// model_forward() recomputes the whole prefix at every step — fine for
// training and calibration, quadratic waste for generation. The engine
// keeps the rotated keys and raw values of every processed position per
// layer in a DecodeState and offers two entry points:
//
//   decode_prefill(model, tokens, state)  — consume a batch of tokens with
//       one batched causal-attention pass (GEMM-shaped, O(T²) once),
//       filling the caches and returning the (T × V) logits of the batch;
//   decode_step(model, token, state)      — consume one token, attending
//       only to the cached context: O(context) per generated token.
//
// Logits agree with the full forward pass up to f32 rounding (the batched
// and single-row kernels reassociate differently); the equivalence is
// enforced by tests/decode_test.cpp and tests/decoder_test.cpp for both
// model types, serial and multi-threaded.
//
// The shared implementation is a template over a small weight-access
// adapter (config / embedding / norms / per-layer projections / lm head),
// so the packed overloads can live in src/quant without aptq_model
// depending on aptq_quant. See docs/DECODING.md for the design.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "data/vocab.hpp"
#include "model/forward.hpp"
#include "model/model.hpp"
#include "obs/control.hpp"
#include "obs/metrics.hpp"
#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"

namespace aptq {

/// Per-layer K/V buffers for one decoding session, sized to a maximum
/// context. Reusable across sessions via reset(); the engine throws before
/// writing past max_context().
class DecodeState {
 public:
  DecodeState() = default;

  /// Buffers for `config`-shaped layers holding up to `max_context`
  /// positions. Throws if max_context is zero.
  DecodeState(const ModelConfig& config, std::size_t max_context);

  /// Number of tokens consumed so far.
  std::size_t pos() const { return pos_; }
  /// Cache capacity in positions.
  std::size_t max_context() const { return max_context_; }
  const ModelConfig& config() const { return config_; }

  /// Drop all cached state and restart from an empty context.
  void reset();

  // Engine internals: rows [0, pos()) of layer `layer`'s caches hold the
  // rotated keys / raw values of the consumed positions, (max_context ×
  // kv_dim) each.
  Matrix& k_cache(std::size_t layer) { return k_cache_[layer]; }
  Matrix& v_cache(std::size_t layer) { return v_cache_[layer]; }
  const Matrix& k_cache(std::size_t layer) const { return k_cache_[layer]; }
  const Matrix& v_cache(std::size_t layer) const { return v_cache_[layer]; }
  void advance(std::size_t n);

 private:
  ModelConfig config_;
  std::size_t max_context_ = 0;
  std::size_t pos_ = 0;
  std::vector<Matrix> k_cache_;
  std::vector<Matrix> v_cache_;
};

/// Batched prefill over the dense model: appends `tokens` to the context
/// and returns their (T × V) logits. Throws if capacity would be exceeded.
Matrix decode_prefill(const Model& model, std::span<const TokenId> tokens,
                      DecodeState& state, const ForwardOptions& options = {});

/// One incremental step over the dense model: appends `token` and returns
/// its next-token logits.
std::vector<float> decode_step(const Model& model, TokenId token,
                               DecodeState& state,
                               const ForwardOptions& options = {});

/// First `rows` rows of head `h` (columns [h·head_dim, (h+1)·head_dim)) of
/// a cache matrix, as a copy — the per-head K/V view used by prefill.
Matrix cache_head(const Matrix& cache, std::size_t rows, std::size_t h,
                  std::size_t head_dim);

namespace detail {

// --- shared engine -------------------------------------------------------
//
// Adapter requirements (duck-typed; see DenseDecodeAdapter below and
// PackedDecodeAdapter in src/quant/packed_model.cpp):
//   const ModelConfig& config() const;
//   std::span<const float> embedding(std::size_t token) const;
//   std::span<const float> attn_norm(std::size_t layer) const;
//   std::span<const float> ffn_norm(std::size_t layer) const;
//   std::span<const float> final_norm() const;
//   Matrix project(std::size_t layer, LinearKind kind, const Matrix& x);
//   Matrix head(const Matrix& x) const;   // lm_head logits

template <typename Adapter>
void decode_check_token(const Adapter& adapter, TokenId token) {
  APTQ_CHECK(token >= 0 && static_cast<std::size_t>(token) <
                               adapter.config().vocab_size,
             "decode: token id out of range");
}

template <typename Adapter>
Matrix decode_prefill_impl(const Adapter& adapter,
                           std::span<const TokenId> tokens,
                           DecodeState& state,
                           const ForwardOptions& options) {
  // Per-batch timing is gated on telemetry so the default decode path pays
  // one relaxed load, never a clock read.
  const std::uint64_t obs_start =
      obs::telemetry_enabled() ? obs::now_ns() : 0;
  const ModelConfig& cfg = adapter.config();
  APTQ_CHECK(state.config() == cfg,
             "decode_prefill: state built for a different model config");
  APTQ_CHECK(!tokens.empty(), "decode_prefill: empty input");
  APTQ_CHECK(state.pos() + tokens.size() <= state.max_context(),
             "decode_prefill: context capacity exceeded (" +
                 std::to_string(state.pos()) + " cached + " +
                 std::to_string(tokens.size()) + " new > max_context " +
                 std::to_string(state.max_context()) + ")");
  const std::size_t t_len = tokens.size();
  const std::size_t prior = state.pos();
  const std::size_t d = cfg.dim;
  const std::size_t hd = cfg.head_dim();
  const float inv_sqrt_hd = 1.0f / std::sqrt(static_cast<float>(hd));
  const auto maybe_quant = [&options](Matrix& m) {
    if (options.act_quant_bits > 0) {
      fake_quant_rows(m, options.act_quant_bits);
    }
  };

  Matrix x(t_len, d);
  for (std::size_t t = 0; t < t_len; ++t) {
    decode_check_token(adapter, tokens[t]);
    const auto src =
        adapter.embedding(static_cast<std::size_t>(tokens[t]));
    std::copy(src.begin(), src.end(), x.row(t).begin());
  }

  Matrix normed;
  std::vector<float> inv_rms;
  for (std::size_t layer = 0; layer < cfg.n_layers; ++layer) {
    rmsnorm_forward(x, adapter.attn_norm(layer), cfg.norm_eps, normed,
                    inv_rms);
    maybe_quant(normed);

    Matrix q = adapter.project(layer, LinearKind::q_proj, normed);
    Matrix k = adapter.project(layer, LinearKind::k_proj, normed);
    const Matrix v = adapter.project(layer, LinearKind::v_proj, normed);
    rope_apply(q, hd, cfg.rope_theta, /*inverse=*/false, prior);
    rope_apply(k, hd, cfg.rope_theta, /*inverse=*/false, prior);
    Matrix& kc = state.k_cache(layer);
    Matrix& vc = state.v_cache(layer);
    for (std::size_t t = 0; t < t_len; ++t) {
      std::copy(k.row(t).begin(), k.row(t).end(), kc.row(prior + t).begin());
      std::copy(v.row(t).begin(), v.row(t).end(), vc.row(prior + t).begin());
    }

    const std::size_t ctx = prior + t_len;
    Matrix attn_cat(t_len, d);
    const std::size_t group_factor = cfg.group_factor();
    for (std::size_t h = 0; h < cfg.n_heads; ++h) {
      const std::size_t g = h / group_factor;  // shared kv head (GQA)
      const Matrix qh = extract_head(q, h, hd);
      const Matrix kh = cache_head(kc, ctx, g, hd);
      const Matrix vh = cache_head(vc, ctx, g, hd);
      Matrix scores(t_len, ctx);
      gemm(qh, Trans::no, kh, Trans::yes, scores, inv_sqrt_hd);
      // Row r sits at absolute position prior + r, so it may attend to the
      // prior context plus its own causal prefix of the batch.
      softmax_rows(scores, static_cast<long>(prior));
      accumulate_head(attn_cat, matmul(scores, vh), h, hd);
    }
    maybe_quant(attn_cat);
    axpy(1.0f, adapter.project(layer, LinearKind::o_proj, attn_cat), x);

    rmsnorm_forward(x, adapter.ffn_norm(layer), cfg.norm_eps, normed,
                    inv_rms);
    maybe_quant(normed);
    Matrix gate_pre = adapter.project(layer, LinearKind::gate_proj, normed);
    const Matrix up = adapter.project(layer, LinearKind::up_proj, normed);
    Matrix act;
    silu(gate_pre, act);
    for (std::size_t i = 0; i < act.size(); ++i) {
      act.flat()[i] *= up.flat()[i];
    }
    maybe_quant(act);
    axpy(1.0f, adapter.project(layer, LinearKind::down_proj, act), x);
  }

  rmsnorm_forward(x, adapter.final_norm(), cfg.norm_eps, normed, inv_rms);
  maybe_quant(normed);
  state.advance(t_len);
  Matrix logits = adapter.head(normed);
  if (obs_start != 0) {
    static auto& prefill_ms = obs::histogram("decode.prefill_ms");
    static auto& prefill_tokens = obs::counter("decode.prefill_tokens");
    prefill_ms.record(static_cast<double>(obs::now_ns() - obs_start) * 1e-6);
    prefill_tokens.add(t_len);
  }
  return logits;
}

template <typename Adapter>
std::vector<float> decode_step_impl(const Adapter& adapter, TokenId token,
                                    DecodeState& state,
                                    const ForwardOptions& options) {
  const std::uint64_t obs_start =
      obs::telemetry_enabled() ? obs::now_ns() : 0;
  const ModelConfig& cfg = adapter.config();
  APTQ_CHECK(state.config() == cfg,
             "decode_step: state built for a different model config");
  APTQ_CHECK(state.pos() < state.max_context(),
             "decode_step: context capacity exceeded (" +
                 std::to_string(state.pos()) +
                 " positions cached, max_context " +
                 std::to_string(state.max_context()) +
                 "); the caller must evict or grow the state");
  decode_check_token(adapter, token);
  const std::size_t d = cfg.dim;
  const std::size_t hd = cfg.head_dim();
  const std::size_t kv_dim = cfg.kv_dim();
  const std::size_t pos = state.pos();
  const std::size_t ctx = pos + 1;
  const float inv_sqrt_hd = 1.0f / std::sqrt(static_cast<float>(hd));
  const auto maybe_quant = [&options](Matrix& m) {
    if (options.act_quant_bits > 0) {
      fake_quant_rows(m, options.act_quant_bits);
    }
  };

  Matrix x(1, d);
  {
    const auto src = adapter.embedding(static_cast<std::size_t>(token));
    std::copy(src.begin(), src.end(), x.row(0).begin());
  }

  Matrix normed;
  std::vector<float> inv_rms;
  std::vector<float> scores(ctx);
  for (std::size_t layer = 0; layer < cfg.n_layers; ++layer) {
    rmsnorm_forward(x, adapter.attn_norm(layer), cfg.norm_eps, normed,
                    inv_rms);
    maybe_quant(normed);

    Matrix q = adapter.project(layer, LinearKind::q_proj, normed);
    Matrix k = adapter.project(layer, LinearKind::k_proj, normed);
    const Matrix v = adapter.project(layer, LinearKind::v_proj, normed);
    rope_apply(q, hd, cfg.rope_theta, /*inverse=*/false, pos);
    rope_apply(k, hd, cfg.rope_theta, /*inverse=*/false, pos);
    const Matrix& kc = state.k_cache(layer);
    const Matrix& vc = state.v_cache(layer);
    std::copy(k.row(0).begin(), k.row(0).end(),
              state.k_cache(layer).row(pos).begin());
    std::copy(v.row(0).begin(), v.row(0).end(),
              state.v_cache(layer).row(pos).begin());

    Matrix attn_cat(1, d);
    const std::size_t group_factor = cfg.group_factor();
    for (std::size_t h = 0; h < cfg.n_heads; ++h) {
      const std::size_t g = h / group_factor;  // shared kv head (GQA)
      const float* qh = q.data() + h * hd;
      // Scores over all cached positions (causality is implicit: only
      // positions <= pos are cached). The four-accumulator dot is the
      // kernel layer's; the dense 1-row projections above already ride the
      // gemv fast path inside gemm().
      float max_s = -1e30f;
      for (std::size_t t = 0; t < ctx; ++t) {
        const float* kh = kc.data() + t * kv_dim + g * hd;
        scores[t] = kern::dot4(qh, kh, hd) * inv_sqrt_hd;
        max_s = std::max(max_s, scores[t]);
      }
      float sum = 0.0f;
      for (std::size_t t = 0; t < ctx; ++t) {
        scores[t] = std::exp(scores[t] - max_s);
        sum += scores[t];
      }
      const float inv_sum = 1.0f / sum;
      float* out = attn_cat.data() + h * hd;
      for (std::size_t t = 0; t < ctx; ++t) {
        const float p = scores[t] * inv_sum;
        const float* vh = vc.data() + t * kv_dim + g * hd;
        for (std::size_t c = 0; c < hd; ++c) {
          out[c] += p * vh[c];
        }
      }
    }
    maybe_quant(attn_cat);
    axpy(1.0f, adapter.project(layer, LinearKind::o_proj, attn_cat), x);

    rmsnorm_forward(x, adapter.ffn_norm(layer), cfg.norm_eps, normed,
                    inv_rms);
    maybe_quant(normed);
    Matrix gate_pre = adapter.project(layer, LinearKind::gate_proj, normed);
    const Matrix up = adapter.project(layer, LinearKind::up_proj, normed);
    Matrix act;
    silu(gate_pre, act);
    for (std::size_t i = 0; i < act.size(); ++i) {
      act.flat()[i] *= up.flat()[i];
    }
    maybe_quant(act);
    axpy(1.0f, adapter.project(layer, LinearKind::down_proj, act), x);
  }

  rmsnorm_forward(x, adapter.final_norm(), cfg.norm_eps, normed, inv_rms);
  maybe_quant(normed);
  const Matrix logits = adapter.head(normed);
  state.advance(1);
  if (obs_start != 0) {
    static auto& step_ms = obs::histogram("decode.step_ms");
    static auto& tokens = obs::counter("decode.tokens");
    step_ms.record(static_cast<double>(obs::now_ns() - obs_start) * 1e-6);
    tokens.add(1);
  }
  return {logits.row(0).begin(), logits.row(0).end()};
}

}  // namespace detail

}  // namespace aptq
