// Manual backward pass for the transformer.
//
// Two consumers:
//  1. Training (src/train): full parameter gradients from an upstream logits
//     gradient.
//  2. APTQ calibration (src/quant/aptq): the attention-probe backward, which
//     backpropagates a seed gradient from one block's attention output F
//     down through softmax, the QKᵀ/PV matmuls, RoPE and the head concat to
//     the outputs of the q/k/v/o projections. The per-token squared norms of
//     those gradients are the γ_t weights realizing the paper's eqs. (9),
//     (10), (12), (13) (see DESIGN.md §2.2).
#pragma once

#include "model/forward.hpp"
#include "model/model.hpp"

namespace aptq {

/// Parameter gradients of one block (same shapes as BlockWeights).
struct BlockGradients {
  std::vector<float> attn_norm;
  Matrix wq, wk, wv, wo;
  std::vector<float> ffn_norm;
  Matrix w_gate, w_up, w_down;
};

/// Full-model parameter gradients.
struct Gradients {
  Matrix tok_embed;
  std::vector<BlockGradients> blocks;
  std::vector<float> final_norm;
  Matrix lm_head;

  /// Zero gradients with shapes matching `model`.
  static Gradients zeros_like(const Model& model);

  void set_zero();

  /// Global L2 norm over all gradient entries.
  double l2_norm() const;

  /// Multiply every gradient entry by `factor`.
  void scale_all(float factor);
};

/// Same canonical order as visit_params(Model&); the optimizer walks the two
/// in lockstep.
void visit_params(Gradients& grads,
                  const std::function<void(std::span<float>)>& fn);

/// Full backward: given the forward cache for `tokens` and dL/dlogits,
/// accumulates parameter gradients into `grads` (callers zero it first when
/// they want fresh gradients).
void model_backward(const Model& model, std::span<const TokenId> tokens,
                    const ForwardCache& cache, const Matrix& grad_logits,
                    Gradients& grads);

/// Gradients at the attention projections' outputs produced by the probe.
struct AttentionProbeGrads {
  Matrix dq;        // (T×d) at q_proj output (pre-RoPE)
  Matrix dk;        // (T×d) at k_proj output (pre-RoPE)
  Matrix dv;        // (T×d) at v_proj output
  Matrix d_attn_cat;  // (T×d) at o_proj input (for the full backward path)
};

/// Backpropagate `d_attn_out` (a gradient seed at the attention-block output
/// F, i.e. at the o_proj output) down to the q/k/v projection outputs and
/// the o_proj input, using the cached forward state of block `layer`.
AttentionProbeGrads attention_probe_backward(const Model& model,
                                             std::size_t layer,
                                             const BlockCache& bc,
                                             const Matrix& d_attn_out);

}  // namespace aptq
