#include "model/backward.hpp"

#include <cmath>

#include "tensor/ops.hpp"

namespace aptq {

Gradients Gradients::zeros_like(const Model& model) {
  const auto& c = model.config;
  Gradients g;
  g.tok_embed.resize(c.vocab_size, c.dim);
  g.blocks.resize(c.n_layers);
  for (auto& b : g.blocks) {
    b.attn_norm.assign(c.dim, 0.0f);
    b.wq.resize(c.dim, c.dim);
    b.wk.resize(c.dim, c.kv_dim());
    b.wv.resize(c.dim, c.kv_dim());
    b.wo.resize(c.dim, c.dim);
    b.ffn_norm.assign(c.dim, 0.0f);
    b.w_gate.resize(c.dim, c.ffn_dim);
    b.w_up.resize(c.dim, c.ffn_dim);
    b.w_down.resize(c.ffn_dim, c.dim);
  }
  g.final_norm.assign(c.dim, 0.0f);
  g.lm_head.resize(c.dim, c.vocab_size);
  return g;
}

void Gradients::set_zero() {
  tok_embed.set_zero();
  for (auto& b : blocks) {
    std::fill(b.attn_norm.begin(), b.attn_norm.end(), 0.0f);
    b.wq.set_zero();
    b.wk.set_zero();
    b.wv.set_zero();
    b.wo.set_zero();
    std::fill(b.ffn_norm.begin(), b.ffn_norm.end(), 0.0f);
    b.w_gate.set_zero();
    b.w_up.set_zero();
    b.w_down.set_zero();
  }
  std::fill(final_norm.begin(), final_norm.end(), 0.0f);
  lm_head.set_zero();
}

void visit_params(Gradients& grads,
                  const std::function<void(std::span<float>)>& fn) {
  fn(grads.tok_embed.flat());
  for (auto& b : grads.blocks) {
    fn({b.attn_norm.data(), b.attn_norm.size()});
    fn(b.wq.flat());
    fn(b.wk.flat());
    fn(b.wv.flat());
    fn(b.wo.flat());
    fn({b.ffn_norm.data(), b.ffn_norm.size()});
    fn(b.w_gate.flat());
    fn(b.w_up.flat());
    fn(b.w_down.flat());
  }
  fn({grads.final_norm.data(), grads.final_norm.size()});
  fn(grads.lm_head.flat());
}

double Gradients::l2_norm() const {
  double acc = 0.0;
  const auto add = [&acc](std::span<float> s) {
    for (const float v : s) {
      acc += static_cast<double>(v) * v;
    }
  };
  visit_params(const_cast<Gradients&>(*this), add);
  return std::sqrt(acc);
}

void Gradients::scale_all(float factor) {
  visit_params(*this, [factor](std::span<float> s) {
    for (float& v : s) {
      v *= factor;
    }
  });
}

AttentionProbeGrads attention_probe_backward(const Model& model,
                                             std::size_t layer,
                                             const BlockCache& bc,
                                             const Matrix& d_attn_out) {
  const auto& cfg = model.config;
  APTQ_CHECK(layer < model.blocks.size(),
             "attention_probe_backward: layer out of range");
  const auto& w = model.blocks[layer];
  const std::size_t t_len = bc.normed1.rows();
  const std::size_t d = cfg.dim;
  const std::size_t hd = cfg.head_dim();
  const std::size_t heads = cfg.n_heads;
  APTQ_CHECK(d_attn_out.rows() == t_len && d_attn_out.cols() == d,
             "attention_probe_backward: seed shape mismatch");
  const float inv_sqrt_hd = 1.0f / std::sqrt(static_cast<float>(hd));

  AttentionProbeGrads out;
  // o_proj input gradient: dAttnCat = dF · Woᵀ.
  out.d_attn_cat = matmul(d_attn_out, w.wo, Trans::no, Trans::yes);

  out.dq.resize(t_len, d);
  out.dk.resize(t_len, cfg.kv_dim());
  out.dv.resize(t_len, cfg.kv_dim());
  Matrix d_scores;
  const std::size_t group_factor = cfg.group_factor();
  for (std::size_t h = 0; h < heads; ++h) {
    const std::size_t g = h / group_factor;  // shared kv head (GQA):
    // gradients of all query heads in the group accumulate into slice g.
    const Matrix d_oh = extract_head(out.d_attn_cat, h, hd);
    const Matrix qh = extract_head(bc.q_rot, h, hd);
    const Matrix kh = extract_head(bc.k_rot, g, hd);
    const Matrix vh = extract_head(bc.v, g, hd);
    const Matrix& p = bc.probs[h];

    // O_h = P · V_h  ⇒  dP = dO·V_hᵀ, dV_h = Pᵀ·dO.
    const Matrix d_probs = matmul(d_oh, vh, Trans::no, Trans::yes);
    const Matrix d_vh = matmul(p, d_oh, Trans::yes, Trans::no);
    softmax_rows_backward(p, d_probs, d_scores);
    // S = (Q Kᵀ)/√hd  ⇒  dQ = dS·K/√hd, dK = dSᵀ·Q/√hd.
    Matrix d_qh(t_len, hd);
    gemm(d_scores, Trans::no, kh, Trans::no, d_qh, inv_sqrt_hd);
    Matrix d_kh(t_len, hd);
    gemm(d_scores, Trans::yes, qh, Trans::no, d_kh, inv_sqrt_hd);

    accumulate_head(out.dq, d_qh, h, hd);
    accumulate_head(out.dk, d_kh, g, hd);
    accumulate_head(out.dv, d_vh, g, hd);
  }
  // Undo RoPE (orthogonal per-position rotation ⇒ backward = inverse rotate).
  rope_apply(out.dq, hd, cfg.rope_theta, /*inverse=*/true);
  rope_apply(out.dk, hd, cfg.rope_theta, /*inverse=*/true);
  return out;
}

void model_backward(const Model& model, std::span<const TokenId> tokens,
                    const ForwardCache& cache, const Matrix& grad_logits,
                    Gradients& grads) {
  const auto& cfg = model.config;
  const std::size_t t_len = cache.seq_len;
  APTQ_CHECK(tokens.size() == t_len, "model_backward: token count mismatch");
  APTQ_CHECK(grad_logits.rows() == t_len &&
                 grad_logits.cols() == cfg.vocab_size,
             "model_backward: grad_logits shape mismatch");
  APTQ_CHECK(cache.blocks.size() == cfg.n_layers,
             "model_backward: cache/model layer mismatch");

  // LM head and final norm.
  gemm(cache.normed_final, Trans::yes, grad_logits, Trans::no, grads.lm_head,
       1.0f, 1.0f);
  const Matrix d_normed_final =
      matmul(grad_logits, model.lm_head, Trans::no, Trans::yes);
  const Matrix& x_last = cfg.n_layers > 0
                             ? cache.blocks.back().x_out
                             : cache.x0;
  Matrix dx;
  rmsnorm_backward(x_last, model.final_norm, cache.inv_rms_final,
                   d_normed_final, dx,
                   {grads.final_norm.data(), grads.final_norm.size()});

  Matrix tmp_dx;
  for (std::size_t layer = cfg.n_layers; layer-- > 0;) {
    const auto& w = model.blocks[layer];
    auto& gw = grads.blocks[layer];
    const BlockCache& bc = cache.blocks[layer];

    // --- Feed-forward branch; dx currently holds dL/dx_out. ---
    const Matrix& d_ffn_out = dx;  // residual: x_out = x_mid + ffn_out
    gemm(bc.act, Trans::yes, d_ffn_out, Trans::no, gw.w_down, 1.0f, 1.0f);
    const Matrix d_act = matmul(d_ffn_out, w.w_down, Trans::no, Trans::yes);

    // act = silu(gate_pre) ∘ up
    Matrix d_silu_gate(t_len, cfg.ffn_dim);
    Matrix d_up(t_len, cfg.ffn_dim);
    for (std::size_t i = 0; i < d_act.size(); ++i) {
      d_silu_gate.flat()[i] = d_act.flat()[i] * bc.up.flat()[i];
      d_up.flat()[i] = d_act.flat()[i] * bc.silu_gate.flat()[i];
    }
    Matrix d_gate_pre;
    silu_backward(bc.gate_pre, d_silu_gate, d_gate_pre);

    gemm(bc.normed2, Trans::yes, d_gate_pre, Trans::no, gw.w_gate, 1.0f, 1.0f);
    gemm(bc.normed2, Trans::yes, d_up, Trans::no, gw.w_up, 1.0f, 1.0f);
    Matrix d_normed2 = matmul(d_gate_pre, w.w_gate, Trans::no, Trans::yes);
    gemm(d_up, Trans::no, w.w_up, Trans::yes, d_normed2, 1.0f, 1.0f);

    rmsnorm_backward(bc.x_mid, w.ffn_norm, bc.inv_rms2, d_normed2, tmp_dx,
                     {gw.ffn_norm.data(), gw.ffn_norm.size()});
    Matrix dx_mid = dx;  // residual path
    axpy(1.0f, tmp_dx, dx_mid);

    // --- Attention branch; dx_mid holds dL/dx_mid = dL/d(attn residual sum). ---
    const Matrix& d_attn_out = dx_mid;
    gemm(bc.attn_cat, Trans::yes, d_attn_out, Trans::no, gw.wo, 1.0f, 1.0f);
    const AttentionProbeGrads ag =
        attention_probe_backward(model, layer, bc, d_attn_out);

    gemm(bc.normed1, Trans::yes, ag.dq, Trans::no, gw.wq, 1.0f, 1.0f);
    gemm(bc.normed1, Trans::yes, ag.dk, Trans::no, gw.wk, 1.0f, 1.0f);
    gemm(bc.normed1, Trans::yes, ag.dv, Trans::no, gw.wv, 1.0f, 1.0f);
    Matrix d_normed1 = matmul(ag.dq, w.wq, Trans::no, Trans::yes);
    gemm(ag.dk, Trans::no, w.wk, Trans::yes, d_normed1, 1.0f, 1.0f);
    gemm(ag.dv, Trans::no, w.wv, Trans::yes, d_normed1, 1.0f, 1.0f);

    rmsnorm_backward(bc.x_in, w.attn_norm, bc.inv_rms1, d_normed1, tmp_dx,
                     {gw.attn_norm.data(), gw.attn_norm.size()});
    dx = dx_mid;  // residual path into x_in
    axpy(1.0f, tmp_dx, dx);
  }

  // Embedding scatter-add.
  for (std::size_t t = 0; t < t_len; ++t) {
    const auto tok = static_cast<std::size_t>(tokens[t]);
    auto dst = grads.tok_embed.row(tok);
    const auto src = dx.row(t);
    for (std::size_t c = 0; c < dst.size(); ++c) {
      dst[c] += src[c];
    }
  }
}

}  // namespace aptq
